package knw

import (
	"bytes"
	"encoding"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden wire-format tests. The files under testdata/ are committed
// payloads in each framing the readers promise to accept forever:
//
//	*_v1.golden        legacy unframed format (pre-framing writers)
//	*_v2.golden        bare framed format (pre-envelope writers)
//	*_envelope.golden  current self-describing envelope
//
// The test asserts two independent things: (a) today's writers still
// produce byte-identical v2/envelope payloads for the same sketch
// state (format stability — any drift must be a deliberate version
// bump plus a -update regeneration), and (b) today's readers load
// every committed payload back to the recorded estimate (compatibility
// — old checkpoints keep working).
//
// Regenerate with: go test -run TestGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// goldenSketches builds the deterministic fixtures the golden files
// capture. Small on purpose (copies=1, coarse ε) so the committed
// files stay a few KB.
func goldenSketches() (f *F0, l *L0, cf *ConcurrentF0, cl *ConcurrentL0) {
	keys := make([]uint64, 3000)
	deltas := make([]int64, len(keys))
	for i := range keys {
		keys[i] = (uint64(i)*0x9e3779b97f4a7c15>>16 + 1) & (1<<16 - 1)
		deltas[i] = int64(i%5 - 2)
	}
	// WithK(32) pins the counter count at the floor and the narrow
	// universe/update bounds shrink the L0 levels, keeping the
	// committed files small.
	small := []Option{WithEpsilon(0.3), WithCopies(1), WithK(32),
		WithUniverseBits(16), WithUpdateBits(8)}
	f = NewF0(append([]Option{WithSeed(1001)}, small...)...)
	f.AddBatch(keys)
	l = NewL0(append([]Option{WithSeed(1002)}, small...)...)
	l.UpdateBatch(keys, deltas)
	cf = NewConcurrentF0(2, append([]Option{WithSeed(1003)}, small...)...)
	cf.AddBatch(keys)
	cl = NewConcurrentL0(2, append([]Option{WithSeed(1004)}, small...)...)
	cl.UpdateBatch(keys, deltas)
	return
}

func TestGoldenWireFormats(t *testing.T) {
	f, l, cf, cl := goldenSketches()
	cases := []struct {
		file string
		data []byte  // what today's writer produces for this framing
		want float64 // estimate the payload must restore to
	}{
		{"f0_v1.golden", marshalV1F0(f), f.Estimate()},
		{"f0_v2.golden", f.marshalLegacy(), f.Estimate()},
		{"f0_envelope.golden", mustMarshal(t, f), f.Estimate()},
		{"l0_v1.golden", marshalV1L0(l), l.Estimate()},
		{"l0_v2.golden", l.marshalLegacy(), l.Estimate()},
		{"l0_envelope.golden", mustMarshal(t, l), l.Estimate()},
		{"concurrent_f0_v2.golden", cf.marshalLegacy(), cf.Estimate()},
		{"concurrent_f0_envelope.golden", mustMarshal(t, cf), cf.Estimate()},
		{"concurrent_l0_v2.golden", cl.marshalLegacy(), cl.Estimate()},
		{"concurrent_l0_envelope.golden", mustMarshal(t, cl), cl.Estimate()},
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cases {
		path := filepath.Join("testdata", c.file)
		if *updateGolden {
			if err := os.WriteFile(path, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (run `go test -run TestGolden -update .`): %v", c.file, err)
		}
		// (a) Writer stability.
		if !bytes.Equal(golden, c.data) {
			t.Errorf("%s: writer output drifted from committed golden bytes", c.file)
		}
		// (b) Reader compatibility, through the one front door.
		est, err := Open(golden)
		if err != nil {
			t.Errorf("%s: Open: %v", c.file, err)
			continue
		}
		if got := est.Estimate(); got != c.want {
			t.Errorf("%s: restored estimate %v, want %v", c.file, got, c.want)
		}
		// Re-marshaling a restored golden produces the current
		// (enveloped) framing and round-trips again.
		blob, err := est.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Errorf("%s: re-marshal: %v", c.file, err)
			continue
		}
		if _, err := Open(blob); err != nil {
			t.Errorf("%s: reopen of re-marshal: %v", c.file, err)
		}
	}
}
