package knw

// This file defines the package's unifying interfaces. Every sketch in
// the library — F0, L0, the concurrent wrappers, and the Figure 1
// comparators in internal/baseline — presents the same ingestion and
// reporting surface, so harnesses, pipelines, and storage layers can be
// written once and swept across implementations.

// Estimator is the uniform interface over every insertion-stream
// cardinality sketch in this module. It extends the scalar surface the
// experiment harness has always used (Add/Estimate/SpaceBits/Name)
// with batched ingestion: AddBatch must be equivalent to calling Add
// on each key in order, but lets implementations amortize per-call
// overhead — hash pipelining in the core sketches, one lock
// acquisition per shard per batch in the concurrent wrappers.
type Estimator interface {
	// Add records one stream element.
	Add(key uint64)
	// AddBatch records the keys as if Add had been called on each in
	// order. For the deterministic sketches in this module the
	// resulting state is byte-identical (under MarshalBinary) to the
	// sequential-Add state.
	AddBatch(keys []uint64)
	// Estimate returns the current estimate (NaN if every internal
	// copy has failed; see the concrete types' EstimateErr).
	Estimate() float64
	// SpaceBits returns the accounted size of the sketch's state.
	SpaceBits() int
	// Name identifies the sketch in experiment tables.
	Name() string
}

// TurnstileEstimator is an Estimator over turnstile streams: elements
// carry signed frequency deltas and a fully deleted element stops
// counting. Add/AddBatch are the all-deltas-+1 special case, as the
// paper notes when relating F0 to L0.
type TurnstileEstimator interface {
	Estimator
	// Update applies x_key ← x_key + delta.
	Update(key uint64, delta int64)
	// UpdateBatch applies the updates as if Update had been called on
	// each (key, delta) pair in order. A nil deltas slice means every
	// delta is +1; otherwise len(deltas) must equal len(keys).
	UpdateBatch(keys []uint64, deltas []int64)
}

// Mergeable is implemented by sketches that can fold a same-configured,
// same-seed peer into themselves so the receiver reflects the union
// (F0) or sum (L0) of both streams. Merging is the library's
// scale-out primitive: disjoint substreams are ingested by independent
// sketches — goroutines, processes, or machines — and folded at read
// time.
type Mergeable[T any] interface {
	Merge(other T) error
}

// Compile-time interface conformance for every public sketch.
var (
	_ Estimator = (*F0)(nil)
	_ Estimator = (*L0)(nil)
	_ Estimator = (*ConcurrentF0)(nil)
	_ Estimator = (*ConcurrentL0)(nil)

	_ TurnstileEstimator = (*L0)(nil)
	_ TurnstileEstimator = (*ConcurrentL0)(nil)

	_ Mergeable[*F0]           = (*F0)(nil)
	_ Mergeable[*L0]           = (*L0)(nil)
	_ Mergeable[*ConcurrentF0] = (*ConcurrentF0)(nil)
	_ Mergeable[*ConcurrentL0] = (*ConcurrentL0)(nil)
)
