package knw

import "repro/internal/hashfn"

// This file defines the typed-key hashing layer: how caller-side keys
// (strings, byte slices, raw integers) are mapped into the sketch's
// key universe [2^universeBits]. The sketches themselves only ever see
// uint64 keys inside that universe; Keyed[K] (keyed.go) composes a
// Hasher with any Estimator to give callers a typed front door.
//
// The default hash is deliberately boring and documented, because it
// is part of the wire contract: two sketches built with the same seed
// must hash the same string to the same key on every machine and every
// release, or merged / restored sketches silently diverge.
//
//	H(b)   = Mix64(FNV1a64(b), seed)       // bytes and strings
//	H(x)   = x                             // uint64 keys (pre-hashed)
//	key    = fold(H, universeBits)
//	fold(h, b) = (h ^ (h >> b)) & (2^b - 1)
//
// FNV1a64 is the standard 64-bit FNV-1a; Mix64 is the SplitMix64
// avalanche finalizer (internal/hashfn), which both seeds the hash and
// repairs FNV's weak high bits. The XOR-fold keeps all 64 hash bits in
// play when the universe is narrower than 64 bits — this replaces the
// old behaviour of handing the sketch a full 64-bit FNV value and
// letting the universe mask silently discard the high bits.
//
// Collision semantics: distinct string/byte keys collide in the folded
// universe with the usual birthday probability ≈ n²/2^(b+1) for n
// distinct keys and b universe bits — at the default b = 32, about 1%
// once n reaches 10⁴ and near-certainty by n = 10⁶. Keep n well below
// 2^((b+1)/2)·√p for a target collision probability p, or widen the
// universe with WithUniverseBits. Collisions make the sketch under-count (two keys
// become one), which is invisible to the estimator; sizing the
// universe is the caller's job and is why fold/universe handling is
// explicit here rather than implicit truncation downstream.
//
// For uint64 keys the identity is used instead of Mix64: raw-key
// callers have always been required to present keys already inside
// the universe, and fold(x, b) = x whenever x < 2^b, so the default
// hasher is exactly backward compatible with Add(key) for in-universe
// keys while out-of-universe keys now fold instead of truncate.

// Key enumerates the key types the typed front-end accepts: text,
// binary blobs, and pre-hashed 64-bit values.
type Key interface {
	string | []byte | uint64
}

// Hasher maps typed keys into the sketch's key universe. Implementations
// must be deterministic (same key → same value, across processes) and
// goroutine-safe; the fold to the configured universe is the Hasher's
// responsibility. Use NewHasher for the default, or provide your own to
// bring an existing hash (e.g. a precomputed shard key) — but note the
// hash is part of the persisted state's identity: restoring or merging
// sketches only makes sense under the same Hasher.
type Hasher[K Key] interface {
	// Hash maps key into [2^universeBits] as configured at construction.
	Hash(key K) uint64
}

// SeededHasher is the default Hasher: seeded FNV-1a+Mix64 for strings
// and byte slices, identity for uint64, XOR-folded into a b-bit
// universe (see the package comment above for the exact definition and
// collision semantics). The zero value hashes into the full 64-bit
// universe with seed 0; prefer NewHasher.
type SeededHasher[K Key] struct {
	seed uint64
	bits uint
}

// NewHasher returns the default deterministic Hasher for seed and a
// universeBits-bit key universe. universeBits 0 (or ≥ 64) means the
// full 64-bit space. Keyed estimators pick these parameters up from
// the wrapped sketch automatically; NewHasher is for callers composing
// the hash themselves (e.g. pre-hashing keys on the client side of an
// ingestion RPC).
func NewHasher[K Key](seed int64, universeBits uint) SeededHasher[K] {
	if universeBits == 0 || universeBits > 64 {
		universeBits = 64
	}
	return SeededHasher[K]{seed: uint64(seed), bits: universeBits}
}

// Hash implements Hasher.
func (h SeededHasher[K]) Hash(key K) uint64 {
	bits := h.bits
	if bits == 0 {
		bits = 64
	}
	switch k := any(key).(type) {
	case string:
		return foldUniverse(hashfn.Mix64(fnv1aString(k), h.seed), bits)
	case []byte:
		return foldUniverse(hashfn.Mix64(fnv1a(k), h.seed), bits)
	case uint64:
		return foldUniverse(k, bits)
	default:
		panic("knw: unreachable key type")
	}
}

// foldUniverse XOR-folds a 64-bit hash into a b-bit universe. It is
// the identity on values already inside the universe.
func foldUniverse(h uint64, b uint) uint64 {
	if b >= 64 {
		return h
	}
	return (h ^ (h >> b)) & (1<<b - 1)
}

// fnv1a is the 64-bit FNV-1a hash over a byte slice — the base hash
// for typed keys (the sketch's own hash functions do the probabilistic
// work; this only flattens variable-length keys to words).
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// fnv1aString is fnv1a over a string without converting to []byte
// (the conversion would allocate on every Add).
func fnv1aString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
