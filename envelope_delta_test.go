package knw

import (
	"bytes"
	"testing"
)

// wireKindsUnderTest builds one small ingested sketch per wire kind.
func wireKindsUnderTest(t *testing.T) map[Kind]Estimator {
	t.Helper()
	out := make(map[Kind]Estimator)
	for _, kind := range []Kind{KindF0, KindL0, KindConcurrentF0, KindConcurrentL0} {
		est, err := New(kind, WithEpsilon(0.2), WithSeed(7))
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = uint64(i) * 2654435761
		}
		est.AddBatch(keys)
		out[kind] = est
	}
	return out
}

func marshalSketch(t *testing.T, est Estimator) []byte {
	t.Helper()
	m, ok := est.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		t.Fatalf("%s does not marshal", est.Name())
	}
	env, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return env
}

// TestSplitAppendIdentity: SplitEnvelope → AppendEnvelope must be the
// identity on every wire kind's envelope.
func TestSplitAppendIdentity(t *testing.T) {
	for kind, est := range wireKindsUnderTest(t) {
		env := marshalSketch(t, est)
		es, err := SplitEnvelope(env)
		if err != nil {
			t.Fatalf("%s: SplitEnvelope: %v", kind, err)
		}
		if es.Kind != kind {
			t.Fatalf("%s: split reports kind %s", kind, es.Kind)
		}
		if len(es.Sections) == 0 {
			t.Fatalf("%s: split found no sections", kind)
		}
		if got := es.AppendEnvelope(nil); !bytes.Equal(got, env) {
			t.Fatalf("%s: reassembled envelope differs (%d vs %d bytes)", kind, len(got), len(env))
		}
	}
}

// TestDeltaRoundTrip: diffing two states of the same sketch and
// applying the delta to the old full envelope must reproduce the new
// full envelope byte for byte — compressed and uncompressed.
func TestDeltaRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for kind, est := range wireKindsUnderTest(t) {
			before := marshalSketch(t, est)
			extra := make([]uint64, 200)
			for i := range extra {
				extra[i] = uint64(1_000_000+i) * 11400714819323198485
			}
			est.AddBatch(extra)
			after := marshalSketch(t, est)

			oldES, err := SplitEnvelope(before)
			if err != nil {
				t.Fatalf("%s: split before: %v", kind, err)
			}
			newES, err := SplitEnvelope(after)
			if err != nil {
				t.Fatalf("%s: split after: %v", kind, err)
			}
			if len(oldES.Sections) != len(newES.Sections) {
				t.Fatalf("%s: section count changed %d → %d", kind, len(oldES.Sections), len(newES.Sections))
			}
			var changed []int
			for i := range newES.Sections {
				if !bytes.Equal(oldES.Sections[i], newES.Sections[i]) {
					changed = append(changed, i)
				}
			}
			if len(changed) == 0 {
				t.Fatalf("%s: ingest changed no sections", kind)
			}
			delta, err := AppendDelta(nil, newES, 3, 4, changed, compress)
			if err != nil {
				t.Fatalf("%s: AppendDelta: %v", kind, err)
			}
			if !IsDelta(delta) {
				t.Fatalf("%s: IsDelta(delta) = false", kind)
			}
			if IsDelta(after) {
				t.Fatalf("%s: IsDelta(full envelope) = true", kind)
			}
			d, err := DecodeDelta(delta)
			if err != nil {
				t.Fatalf("%s: DecodeDelta: %v", kind, err)
			}
			if d.Kind != kind || d.Base != 3 || d.Next != 4 || d.TotalSections != len(newES.Sections) {
				t.Fatalf("%s: decoded delta header %+v", kind, d)
			}
			got, err := ApplyDelta(before, delta)
			if err != nil {
				t.Fatalf("%s: ApplyDelta: %v", kind, err)
			}
			if !bytes.Equal(got, after) {
				t.Fatalf("%s (compress=%v): applied delta differs from the full envelope", kind, compress)
			}
			// The applied envelope must open into a sketch with the same
			// estimate as the source.
			opened, err := Open(got)
			if err != nil {
				t.Fatalf("%s: Open(applied): %v", kind, err)
			}
			if opened.Estimate() != est.Estimate() {
				t.Fatalf("%s: applied estimate %v != source %v", kind, opened.Estimate(), est.Estimate())
			}
		}
	}
}

// TestDeltaCompressionShrinks: a sparse delta body of mostly-zero
// counters must compress.
func TestDeltaCompressionShrinks(t *testing.T) {
	est, err := New(KindF0, WithEpsilon(0.05), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	est.AddBatch([]uint64{1, 2, 3})
	es, err := SplitEnvelope(marshalSketch(t, est))
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(es.Sections))
	for i := range all {
		all[i] = i
	}
	plain, err := AppendDelta(nil, es, 0, 1, all, false)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := AppendDelta(nil, es, 0, 1, all, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain) {
		t.Fatalf("compressed delta %dB not smaller than plain %dB", len(packed), len(plain))
	}
	got, err := DecodeDelta(packed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeDelta(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Sections {
		if !bytes.Equal(got.Sections[i], want.Sections[i]) {
			t.Fatalf("section %d differs after compression round-trip", i)
		}
	}
}

// TestDeltaMismatchRejected: structural guards on apply.
func TestDeltaMismatchRejected(t *testing.T) {
	sketches := wireKindsUnderTest(t)
	f0 := marshalSketch(t, sketches[KindF0])
	l0 := marshalSketch(t, sketches[KindL0])
	f0ES, err := SplitEnvelope(f0)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AppendDelta(nil, f0ES, 1, 2, []int{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(l0, delta); err == nil {
		t.Fatal("F0 delta applied to an L0 base")
	}
	// Same kind, different settings → header checksum mismatch.
	other, err := New(KindF0, WithEpsilon(0.1), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	other.AddBatch([]uint64{1})
	if _, err := ApplyDelta(marshalSketch(t, other), delta); err == nil {
		t.Fatal("delta applied across differing settings")
	}
	// Out-of-order / out-of-range encode requests fail.
	if _, err := AppendDelta(nil, f0ES, 1, 2, []int{2, 1}, false); err == nil {
		t.Fatal("out-of-order section list encoded")
	}
	if _, err := AppendDelta(nil, f0ES, 1, 2, []int{len(f0ES.Sections)}, false); err == nil {
		t.Fatal("out-of-range section index encoded")
	}
	// Open must refuse a bare delta with a useful error.
	if _, err := Open(delta); err == nil {
		t.Fatal("Open accepted a KNWD delta")
	}
}

// TestSplitRejectsUnframed: version-1 (unframed) payloads and
// pre-envelope blobs cannot be split.
func TestSplitRejectsUnframed(t *testing.T) {
	est := wireKindsUnderTest(t)[KindF0]
	legacy := est.(*F0).marshalLegacy()
	if _, err := SplitEnvelope(legacy); err == nil {
		t.Fatal("split accepted a pre-envelope payload")
	}
	if _, err := SplitEnvelope([]byte{0x01, 0x02}); err == nil {
		t.Fatal("split accepted garbage")
	}
	if _, err := SplitEnvelope(nil); err == nil {
		t.Fatal("split accepted empty input")
	}
}

// FuzzDeltaEnvelope drives the KNWD decode/apply path with arbitrary
// bytes: DecodeDelta and ApplyDelta must return errors, never panic,
// and a valid round-trip must stay byte-identical.
func FuzzDeltaEnvelope(f *testing.F) {
	est, err := New(KindF0, WithEpsilon(0.2), WithSeed(7))
	if err != nil {
		f.Fatal(err)
	}
	est.AddBatch([]uint64{1, 2, 3, 4, 5})
	full, _ := est.(*F0).MarshalBinary()
	es, err := SplitEnvelope(full)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := AppendDelta(nil, es, 1, 2, []int{0}, false)
	if err != nil {
		f.Fatal(err)
	}
	seedZ, err := AppendDelta(nil, es, 1, 2, []int{0}, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, full)
	f.Add(seedZ, full)
	f.Add(full, seed)
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, delta, base []byte) {
		d, err := DecodeDelta(delta)
		if err == nil {
			// A decodable delta must re-decode identically after a strict
			// re-encode of its own sections.
			if len(d.Indexes) != len(d.Sections) {
				t.Fatalf("decoded delta with %d indexes, %d sections", len(d.Indexes), len(d.Sections))
			}
		}
		out, err := ApplyDelta(base, delta)
		if err != nil {
			return
		}
		// A successful apply must produce a splittable envelope of the
		// same shape.
		res, err := SplitEnvelope(out)
		if err != nil {
			t.Fatalf("applied delta is not splittable: %v", err)
		}
		if len(res.Sections) != d.TotalSections {
			t.Fatalf("applied envelope has %d sections, delta claimed %d", len(res.Sections), d.TotalSections)
		}
	})
}
