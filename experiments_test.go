package knw_test

// Cross-module integration tests reproducing the paper's evaluation
// artifacts end-to-end (the per-experiment index lives in DESIGN.md §3;
// measured-vs-paper numbers are recorded in EXPERIMENTS.md). Benchmarks
// for the same experiments are in bench_test.go.

import (
	"math"
	"math/rand"
	"testing"

	knw "repro"
	"repro/internal/baseline"
	"repro/internal/simulate"
	"repro/internal/stream"
)

// TestFigure1SpaceTable is experiment E1's space column: for fixed ε,
// KNW's space must be flat in the universe size up to an additive
// O(log n) term, while the identifier-storing baselines (GT, KMV) pay
// ε⁻²·log n — i.e. their space keeps a multiplicative relationship to
// log n. We measure loaded sketches at logN = 16 and 32 over the same
// stream.
func TestFigure1SpaceTable(t *testing.T) {
	const eps = 0.1
	const f0 = 100_000
	load := func(e baseline.F0Estimator) int {
		s := stream.NewUniform(f0, f0, 7)
		stream.Drain(s, e.Add)
		return e.SpaceBits()
	}
	rng := func() *rand.Rand { return rand.New(rand.NewSource(7)) }

	knw16 := load(knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(7), knw.WithCopies(1), knw.WithUniverseBits(16)))
	knw32 := load(knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(7), knw.WithCopies(1), knw.WithUniverseBits(32)))
	gt16 := load(baseline.NewGT(baseline.TForEpsilon(eps)/24, 16, rng()))
	gt32 := load(baseline.NewGT(baseline.TForEpsilon(eps)/24, 32, rng()))

	// KNW: doubling log n adds little (counters unchanged; only seeds,
	// levels, and the 100-item exact set scale mildly).
	if g := float64(knw32) / float64(knw16); g > 1.3 {
		t.Errorf("KNW space grew %.2fx when log n doubled; want ~flat (%d -> %d bits)",
			g, knw16, knw32)
	}
	// GT: stored identifiers are log n bits, so state grows markedly.
	if g := float64(gt32) / float64(gt16); g < 1.5 {
		t.Errorf("GT space grew only %.2fx when log n doubled; expected ~2x (%d -> %d bits)",
			g, gt16, gt32)
	}
}

// TestFigure1AccuracyAllAlgorithms drives every Figure 1 row over the
// same workload and checks each lands within its documented error
// class — the "who wins" shape of the comparison table.
func TestFigure1AccuracyAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison sweep")
	}
	const eps = 0.1
	const f0 = 300_000
	type row struct {
		est   baseline.F0Estimator
		limit float64 // acceptable |rel err| for this error class
	}
	rng := func(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
	rows := []row{
		{knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(11)), 1.2 * eps},
		{baseline.NewFM85(64, 11), 1.0},        // constant-factor class
		{baseline.NewAMS(9, 32, rng(11)), 2.0}, // constant-factor class
		{baseline.NewGT(4096, 32, rng(12)), 3 * eps},
		{baseline.NewKMV(4096, rng(13)), 3 * eps},
		{baseline.NewBJKST(4096, 32, rng(14)), 3 * eps},
		{baseline.NewLogLog(2048, 15), 3 * eps},
		{baseline.NewHyperLogLog(baseline.MForEpsilon(eps), 16), 3 * eps},
		{baseline.NewLinearCounting(f0*8, 17), eps},
	}
	s := stream.NewUniform(f0, 2*f0, 18)
	stream.Drain(s, func(k uint64) {
		for _, r := range rows {
			r.est.Add(k)
		}
	})
	for _, r := range rows {
		got := r.est.Estimate()
		rel := math.Abs(got-f0) / f0
		if rel > r.limit {
			t.Errorf("%s: rel err %.4f beyond its class limit %.4f (est %.0f)",
				r.est.Name(), rel, r.limit, got)
		}
	}
}

// TestFigure1UpdateTimeShape: KNW's O(1) update must not degrade as ε
// shrinks, unlike algorithms whose update carries ε⁻² or log(1/ε)
// work. We compare measured ns/update at ε=0.1 and ε=0.03 and require
// KNW's ratio to stay near 1 (generous band: timers are noisy).
func TestFigure1UpdateTimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	measure := func(eps float64) float64 {
		sk := knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(3), knw.WithCopies(1))
		r := simulate.RunF0(wrap{sk}, stream.NewUniform(400_000, 400_000, 3))
		return r.NsPerUpdate
	}
	wide := measure(0.1)
	narrow := measure(0.03)
	if narrow > 3*wide {
		t.Errorf("KNW update slowed %.1fx when ε shrank 0.1→0.03; want O(1)", narrow/wide)
	}
}

// TestEndToEndWorkloads runs the amplified sketch across every F0
// workload generator (experiment E12's integration surface).
func TestEndToEndWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	streams := []stream.F0Stream{
		stream.NewUniform(50_000, 150_000, 21),
		stream.NewSequential(50_000, 150_000),
		stream.NewZipf(1<<22, 1.1, 300_000, 22),
	}
	for _, s := range streams {
		sk := knw.NewF0(knw.WithEpsilon(0.1), knw.WithSeed(23))
		r := simulate.RunF0(wrap{sk}, s)
		if math.Abs(r.RelErr) > 0.12 {
			t.Errorf("%s: rel err %.4f", r.Workload, r.RelErr)
		}
	}
}

// TestNetTraceDetection is experiment E12: the netmon thresholds must
// actually fire on the synthetic trace's attack phases and stay quiet
// in the baseline phase.
func TestNetTraceDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tr := stream.NewNetTrace(stream.NetTraceConfig{Seed: 31})
	const epoch = 10_000
	mk := func(s int64) *knw.F0 {
		return knw.NewF0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(s))
	}
	srcs := mk(1)
	var perEpochSrcs []float64
	var epochStart []int
	i := 0
	start := 0
	for {
		p, ok := tr.Next()
		if !ok {
			break
		}
		srcs.Add(p.SrcKey())
		i++
		if i%epoch == 0 {
			perEpochSrcs = append(perEpochSrcs, srcs.Estimate())
			epochStart = append(epochStart, start)
			start = i
			srcs = mk(int64(i))
		}
	}
	// Baseline epochs (entirely before DDoSStart) must be far below the
	// attack epochs (entirely inside the DDoS window).
	var base, attack float64
	var nb, na int
	for e, v := range perEpochSrcs {
		s0, s1 := epochStart[e], epochStart[e]+epoch
		if s1 <= tr.DDoSStart {
			base += v
			nb++
		} else if s0 >= tr.DDoSStart && s1 <= tr.DDoSEnd {
			attack += v
			na++
		}
	}
	if nb == 0 || na == 0 {
		t.Fatalf("trace phases not covered: %d baseline, %d attack epochs", nb, na)
	}
	base /= float64(nb)
	attack /= float64(na)
	if attack < 4*base {
		t.Errorf("DDoS signal too weak: baseline %.0f vs attack %.0f distinct sources/epoch",
			base, attack)
	}
}

// TestL0ColumnPairEndToEnd is the data-cleaning integration
// (experiment E12): symmetric difference of two shuffled columns.
func TestL0ColumnPairEndToEnd(t *testing.T) {
	cp := stream.NewColumnPair(60_000, 700, 500, 41)
	sk := knw.NewL0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(42))
	stream.DrainTurnstile(cp, sk.Update)
	got := sk.Estimate()
	if math.Abs(got-1200)/1200 > 0.25 {
		t.Errorf("column diff %v want ~1200", got)
	}
}

// wrap adapts *knw.F0 to the harness interface.
type wrap struct{ *knw.F0 }

var _ baseline.F0Estimator = wrap{}
