package knw

import (
	"bytes"
	"encoding"
	"testing"
)

// Fuzz targets for the deserialization surface: corrupted, truncated,
// or adversarial payloads must produce errors, never panics or
// unbounded allocations. The settings validator (serialize.go) is the
// load-bearing wall here — it bounds copies·K and rejects the
// non-power-of-two K overrides the core constructors panic on.
//
// Run with: go test -fuzz=FuzzOpen (or -fuzz=FuzzUnmarshal)

// fuzzSeeds returns valid payloads in every framing, as mutation
// starting points.
func fuzzSeeds() [][]byte {
	keys := make([]uint64, 500)
	deltas := make([]int64, len(keys))
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15>>32 + 1
		deltas[i] = int64(i%3 - 1)
	}
	small := []Option{WithEpsilon(0.3), WithCopies(1), WithK(32),
		WithUniverseBits(16), WithUpdateBits(8)}
	f := NewF0(append([]Option{WithSeed(2001)}, small...)...)
	f.AddBatch(keys)
	l := NewL0(append([]Option{WithSeed(2002)}, small...)...)
	l.UpdateBatch(keys, deltas)
	cf := NewConcurrentF0(2, append([]Option{WithSeed(2003)}, small...)...)
	cf.AddBatch(keys)
	cl := NewConcurrentL0(2, append([]Option{WithSeed(2004)}, small...)...)
	cl.UpdateBatch(keys, deltas)

	fEnv, _ := f.MarshalBinary()
	lEnv, _ := l.MarshalBinary()
	cfEnv, _ := cf.MarshalBinary()
	clEnv, _ := cl.MarshalBinary()
	return [][]byte{
		fEnv, lEnv, cfEnv, clEnv,
		f.marshalLegacy(), l.marshalLegacy(),
		cf.marshalLegacy(), cl.marshalLegacy(),
		marshalV1F0(f), marshalV1L0(l),
		wrapEnvelope(Kind(99), []byte("junk")),
		fEnv[:len(fEnv)/2],
		nil,
	}
}

// FuzzOpen: Open must never panic; when it accepts a payload, the
// restored sketch must be fully functional (re-marshal, re-open,
// byte-identical the second time around).
func FuzzOpen(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		est, err := Open(data)
		if err != nil {
			return
		}
		blob, err := est.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatalf("accepted payload failed to re-marshal: %v", err)
		}
		again, err := Open(blob)
		if err != nil {
			t.Fatalf("re-marshal of accepted payload failed to re-open: %v", err)
		}
		blob2, err := again.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatal("re-marshal after Open is not a fixed point")
		}
		// The restored sketch must take updates without panicking.
		est.Add(12345)
		est.Estimate()
	})
}

// FuzzUnmarshal drives the four concrete decoders directly (the typed
// paths a service would call when it knows what it stored).
func FuzzUnmarshal(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var f0 F0
		if err := f0.UnmarshalBinary(data); err == nil {
			f0.Add(1)
			f0.Estimate()
		}
		var l0 L0
		if err := l0.UnmarshalBinary(data); err == nil {
			l0.Update(1, -1)
			l0.Estimate()
		}
		var cf ConcurrentF0
		if err := cf.UnmarshalBinary(data); err == nil {
			cf.Add(1)
			cf.Estimate()
		}
		var cl ConcurrentL0
		if err := cl.UnmarshalBinary(data); err == nil {
			cl.Update(1, -1)
			cl.Estimate()
		}
	})
}
