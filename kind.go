package knw

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bitutil"
)

// Kind names an estimator implementation: the four KNW sketch types
// plus the Figure 1 / Section 4 comparators from internal/baseline.
// Kinds are the registry keys for the New factory and the type tags in
// the self-describing wire envelope (envelope.go), so harnesses, the
// cmd/* benches, and the planned service front-end select
// implementations by name instead of hard-coded switches.
//
// Kind values are persisted in envelopes: never renumber existing
// kinds, only append.
type Kind uint8

const (
	// KindInvalid is the zero Kind; no estimator has it.
	KindInvalid Kind = iota

	// The KNW sketches (the paper's algorithms). These four are wire
	// kinds: they serialize, and Open restores them.
	KindF0           // insertion-only distinct elements (Theorems 2, 3, 9)
	KindL0           // turnstile L0 / Hamming norm (Theorem 10)
	KindConcurrentF0 // sharded goroutine-safe F0
	KindConcurrentL0 // sharded goroutine-safe L0

	// The prior-art comparators (internal/baseline). In-memory only:
	// they estimate but do not serialize.
	KindExact          // exact hash-set counter (ground truth)
	KindFM85           // Flajolet–Martin PCSA [20]
	KindAMS            // Alon–Matias–Szegedy [3]
	KindGT             // Gibbons–Tirthapura [24]
	KindKMV            // k-minimum-values / BJKST-I [4]
	KindBJKST          // BJKST-II [4]
	KindLogLog         // Durand–Flajolet LogLog [16]
	KindLinearCounting // Estan–Varghese–Fisk bitmaps [17]
	KindHyperLogLog    // HyperLogLog [19]
	KindGangulyL0      // Ganguly's L0 with deletions [22]
)

// kindInfo is one registry row: the canonical name (what String prints
// and ParseKind accepts, along with the aliases), the factory, and —
// for wire kinds — the envelope/legacy-payload hooks used by Open.
type kindInfo struct {
	name    string
	aliases []string
	// make builds the estimator. cfg is the resolved option set; opts
	// is the raw option list for constructors that re-resolve (the KNW
	// sketches, so their own defaulting stays the single source of
	// truth).
	make func(cfg settings, opts []Option) Estimator
	// turnstile marks kinds whose estimators implement
	// TurnstileEstimator.
	turnstile bool
	// legacyMagic is the pre-envelope wire magic (wire kinds only).
	legacyMagic uint64
	// empty returns a zero sketch ready for unmarshalLegacy (wire
	// kinds only).
	empty func() wireSketch
}

// wireSketch is the serialization surface a wire kind's estimator
// provides: Estimator plus the legacy-payload decoder Open dispatches
// to after unwrapping the envelope.
type wireSketch interface {
	Estimator
	unmarshalLegacy(data []byte) error
}

// kindRegistry drives New, Open, ParseKind, and Kinds. Adding an
// estimator to the library means adding one row here.
var kindRegistry = map[Kind]kindInfo{
	KindF0: {
		name: "f0", aliases: []string{"knw-f0", "knw"},
		make:        func(_ settings, opts []Option) Estimator { return NewF0(opts...) },
		legacyMagic: f0Magic,
		empty:       func() wireSketch { return new(F0) },
	},
	KindL0: {
		name: "l0", aliases: []string{"knw-l0"},
		make:        func(_ settings, opts []Option) Estimator { return NewL0(opts...) },
		turnstile:   true,
		legacyMagic: l0Magic,
		empty:       func() wireSketch { return new(L0) },
	},
	KindConcurrentF0: {
		name: "concurrent-f0", aliases: []string{"sharded-f0", "cf0"},
		make: func(cfg settings, opts []Option) Estimator {
			return NewConcurrentF0(defaultShards(cfg), opts...)
		},
		legacyMagic: f0ShardedMagic,
		empty:       func() wireSketch { return new(ConcurrentF0) },
	},
	KindConcurrentL0: {
		name: "concurrent-l0", aliases: []string{"sharded-l0", "cl0"},
		make: func(cfg settings, opts []Option) Estimator {
			return NewConcurrentL0(defaultShards(cfg), opts...)
		},
		turnstile:   true,
		legacyMagic: l0ShardedMagic,
		empty:       func() wireSketch { return new(ConcurrentL0) },
	},

	KindExact: {
		name: "exact",
		make: func(_ settings, _ []Option) Estimator { return baseline.NewExact() },
	},
	KindFM85: {
		name: "fm85", aliases: []string{"pcsa", "flajolet-martin"},
		make: func(cfg settings, _ []Option) Estimator {
			return baseline.NewFM85(sizeOverride(cfg, 64), uint64(cfg.seed))
		},
	},
	KindAMS: {
		name: "ams",
		make: func(cfg settings, _ []Option) Estimator {
			return baseline.NewAMS(cfg.copies, cfg.logN, cfg.rng())
		},
	},
	KindGT: {
		name: "gt", aliases: []string{"gibbons-tirthapura"},
		make: func(cfg settings, _ []Option) Estimator {
			return baseline.NewGT(tFor(cfg), cfg.logN, cfg.rng())
		},
	},
	KindKMV: {
		name: "kmv", aliases: []string{"bjkst-1", "bottom-k"},
		make: func(cfg settings, _ []Option) Estimator {
			return baseline.NewKMV(tFor(cfg), cfg.rng())
		},
	},
	KindBJKST: {
		name: "bjkst", aliases: []string{"bjkst-2"},
		make: func(cfg settings, _ []Option) Estimator {
			return baseline.NewBJKST(tFor(cfg), cfg.logN, cfg.rng())
		},
	},
	KindLogLog: {
		name: "loglog",
		make: func(cfg settings, _ []Option) Estimator {
			m := baseline.MForEpsilon(cfg.eps) * 2
			if m < 64 {
				m = 64
			}
			return baseline.NewLogLog(sizeOverride(cfg, m), uint64(cfg.seed))
		},
	},
	KindLinearCounting: {
		name: "linear-counting", aliases: []string{"estan-bitmap", "lc"},
		make: func(cfg settings, _ []Option) Estimator {
			// Linear counting needs its bitmap sized to the expected
			// cardinality; there is no universal default, so WithK is
			// effectively mandatory for serious use (1<<23 ≈ 8M bits
			// covers ~1M distinct at ≤1% error).
			return baseline.NewLinearCounting(sizeOverride(cfg, 1<<23), uint64(cfg.seed))
		},
	},
	KindHyperLogLog: {
		name: "hyperloglog", aliases: []string{"hll"},
		make: func(cfg settings, _ []Option) Estimator {
			return baseline.NewHyperLogLog(sizeOverride(cfg, baseline.MForEpsilon(cfg.eps)), uint64(cfg.seed))
		},
	},
	KindGangulyL0: {
		name: "ganguly-l0", aliases: []string{"ganguly"},
		make: func(cfg settings, _ []Option) Estimator {
			// Ganguly's structure requires a power-of-two table.
			s := int(bitutil.NextPow2(uint64(tFor(cfg))))
			if s < 32 {
				s = 32
			}
			return baseline.NewGangulyL0(s, cfg.logN, cfg.rng())
		},
		turnstile: true,
	},
}

// tFor maps the resolved ε to the sample-size parameter the
// ε⁻²-sample comparators (GT, KMV, BJKST, Ganguly) take, using the
// measured calibration from experiment E1 (the published constants are
// ~24× conservative at these workloads; see cmd/f0bench).
func tFor(cfg settings) int {
	if cfg.kOverride != 0 {
		return cfg.kOverride
	}
	t := baseline.TForEpsilon(cfg.eps) / 24
	if t < 16 {
		t = 16
	}
	return t
}

// sizeOverride lets WithK set the size parameter (bitmap width, bucket
// count) of the baseline kinds, mirroring its role as the direct size
// knob for the KNW sketches.
func sizeOverride(cfg settings, def int) int {
	if cfg.kOverride != 0 {
		return cfg.kOverride
	}
	return def
}

// defaultShards resolves the shard count for the concurrent kinds:
// WithShards if given, else one shard per CPU.
func defaultShards(cfg settings) int {
	if cfg.shards != 0 {
		return cfg.shards
	}
	return runtime.GOMAXPROCS(0)
}

// String returns the canonical kind name (the one ParseKind accepts
// and the kind tables in cmd/* print).
func (k Kind) String() string {
	if info, ok := kindRegistry[k]; ok {
		return info.name
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Turnstile reports whether the kind's estimators support deletions
// (implement TurnstileEstimator).
func (k Kind) Turnstile() bool { return kindRegistry[k].turnstile }

// Wire reports whether the kind serializes: its estimators implement
// MarshalBinary and Open can restore them.
func (k Kind) Wire() bool { return kindRegistry[k].empty != nil }

// ParseKind resolves a kind name (canonical or alias, case-insensitive)
// to its Kind.
func ParseKind(name string) (Kind, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for k, info := range kindRegistry {
		if info.name == want {
			return k, nil
		}
		for _, a := range info.aliases {
			if a == want {
				return k, nil
			}
		}
	}
	return KindInvalid, fmt.Errorf("knw: unknown kind %q (known: %s)", name, kindNames())
}

// Kinds returns every registered kind in stable (numeric) order.
func Kinds() []Kind {
	ks := make([]Kind, 0, len(kindRegistry))
	for k := range kindRegistry {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func kindNames() string {
	names := make([]string, 0, len(kindRegistry))
	for _, k := range Kinds() {
		names = append(names, kindRegistry[k].name)
	}
	return strings.Join(names, ", ")
}

// New builds an estimator of the given kind. All kinds accept the
// standard options (ε, δ, seed, universe bits, …); the concurrent
// kinds additionally honour WithShards, and WithK sets the direct size
// parameter of whichever structure the kind names. Unknown kinds
// return an error; invalid option values panic, as they do on the
// concrete constructors.
//
//	est, err := knw.New(knw.KindConcurrentF0,
//		knw.WithEpsilon(0.02), knw.WithShards(16), knw.WithSeed(7))
//
// The concrete type behind the interface is the kind's own (type-assert
// to *F0 etc. for type-specific surfaces like Merge); the baseline
// kinds return internal comparators usable only through Estimator /
// TurnstileEstimator.
func New(kind Kind, opts ...Option) (Estimator, error) {
	info, ok := kindRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("knw: unknown kind %d (known: %s)", uint8(kind), kindNames())
	}
	cfg := defaultSettings()
	cfg.resolve(opts)
	return info.make(cfg, opts), nil
}

// NewTurnstile is New restricted to kinds that support deletions; it
// returns an error for insertion-only kinds.
func NewTurnstile(kind Kind, opts ...Option) (TurnstileEstimator, error) {
	info, ok := kindRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("knw: unknown kind %d (known: %s)", uint8(kind), kindNames())
	}
	if !info.turnstile {
		return nil, fmt.Errorf("knw: kind %s does not support turnstile updates", kind)
	}
	est, err := New(kind, opts...)
	if err != nil {
		return nil, err
	}
	return est.(TurnstileEstimator), nil
}
