package knw_test

import (
	"fmt"

	knw "repro"
)

// Counting distinct items in a stream: duplicates are free, and small
// counts are exact (the Section 3.3 regime).
func ExampleNewF0() {
	sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1))
	for _, user := range []string{"alice", "bob", "alice", "carol", "bob", "alice"} {
		sk.AddString(user)
	}
	fmt.Printf("distinct users: %.0f\n", sk.Estimate())
	// Output: distinct users: 3
}

// Counting surviving items in a stream with deletions: fully deleted
// keys stop counting, negative net counts still count.
func ExampleNewL0() {
	hs := knw.NewL0(knw.WithSeed(1))
	hs.Update(100, +5)
	hs.Update(200, +2)
	hs.Update(100, -5) // fully deleted
	hs.Update(300, -7) // negative net count: still a nonzero coordinate
	fmt.Printf("live keys: %.0f\n", hs.Estimate())
	// Output: live keys: 2
}

// Same-seed sketches merge into the union of their streams.
func ExampleF0_Merge() {
	east := knw.NewF0(knw.WithSeed(7))
	west := knw.NewF0(knw.WithSeed(7)) // same seed: mergeable
	for i := uint64(1); i <= 30; i++ {
		east.Add(i)
	}
	for i := uint64(21); i <= 50; i++ { // overlaps 21..30
		west.Add(i)
	}
	if err := east.Merge(west); err != nil {
		panic(err)
	}
	fmt.Printf("union: %.0f\n", east.Estimate())
	// Output: union: 50
}

// HammingDiff estimates how many keys two streams disagree on — the
// paper's data-cleaning statistic — without modifying either sketch.
func ExampleHammingDiff() {
	a := knw.NewL0(knw.WithSeed(9))
	b := knw.NewL0(knw.WithSeed(9))
	for i := uint64(1); i <= 40; i++ {
		a.Update(i, 1)
		b.Update(i, 1)
	}
	b.Update(41, 1) // b has one extra row
	a.Update(7, 1)  // and they disagree on key 7's count
	diff, err := knw.HammingDiff(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("differing keys: %.0f\n", diff)
	// Output: differing keys: 2
}

// Jaccard similarity from two same-seed sketches, by inclusion–
// exclusion on merged clones: |A∩B| = |A| + |B| − |A∪B|. In the exact
// small-count regime the identity is exact too.
func ExampleJaccard() {
	a := knw.NewF0(knw.WithSeed(5))
	b := knw.NewF0(knw.WithSeed(5)) // same seed: comparable
	for i := uint64(1); i <= 60; i++ {
		a.Add(i)
	}
	for i := uint64(31); i <= 90; i++ { // overlaps 31..60
		b.Add(i)
	}
	j, err := knw.Jaccard(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("jaccard: %.3f\n", j) // 30 shared / 90 total
	// Output: jaccard: 0.333
}

// Sketches round-trip through their binary form; the payload carries
// only counter state (hash functions rebuild from the seed).
func ExampleF0_MarshalBinary() {
	sk := knw.NewF0(knw.WithSeed(3))
	for i := uint64(1); i <= 25; i++ {
		sk.Add(i)
	}
	data, _ := sk.MarshalBinary()

	var restored knw.F0
	if err := restored.UnmarshalBinary(data); err != nil {
		panic(err)
	}
	restored.Add(26)
	fmt.Printf("restored and extended: %.0f\n", restored.Estimate())
	// Output: restored and extended: 26
}
