package knw

import (
	"math/rand"
	"time"

	"repro/internal/core"
)

// settings is the resolved option set shared by F0 and L0.
//
// The shards field is construction-only routing state for the New
// factory: every constructor clears it (takeShards) before storing the
// settings, so it never participates in the == comparisons that gate
// Merge and never reaches the wire.
type settings struct {
	eps       float64
	copies    int // 0: derive from delta
	delta     float64
	seed      int64
	seedSet   bool
	logN      uint
	logMM     uint
	kOverride int
	reference bool
	lnTable   bool
	strict    bool
	shards    int
}

func defaultSettings() settings {
	return settings{
		eps:   0.05,
		delta: 0.05,
		logN:  32,
		logMM: 32,
	}
}

func (s *settings) resolve(opts []Option) {
	for _, o := range opts {
		o(s)
	}
	if s.copies == 0 {
		s.copies = core.CopiesForDelta(s.delta)
	}
	if !s.seedSet {
		s.seed = time.Now().UnixNano()
	}
	// Post-resolve the seed is always determined, so normalize the
	// flag: resolved settings are compared with == to gate Merge, and
	// a restored sketch (readSettings sets seedSet) must compare equal
	// to the time-seeded original it was checkpointed from.
	s.seedSet = true
}

func (s *settings) rng() *rand.Rand { return rand.New(rand.NewSource(s.seed)) }

// takeShards consumes the shard-count hint (see the settings doc).
func (s *settings) takeShards() int {
	n := s.shards
	s.shards = 0
	return n
}

func (s *settings) k() int {
	if s.kOverride != 0 {
		return s.kOverride
	}
	return core.KForEpsilon(s.eps)
}

// Option configures an F0 or L0 sketch.
type Option func(*settings)

// WithEpsilon sets the target relative standard error ε ∈ (0, 1)
// (default 0.05). Space grows as ε⁻².
func WithEpsilon(eps float64) Option {
	return func(s *settings) {
		if eps <= 0 || eps >= 1 {
			panic("knw: epsilon must be in (0,1)")
		}
		s.eps = eps
	}
}

// WithDelta sets the failure probability δ (default 0.05); the sketch
// runs ⌈O(log 1/δ)⌉ independent copies and reports the median, as the
// paper prescribes ("amplified by independent repetition").
func WithDelta(delta float64) Option {
	return func(s *settings) {
		if delta <= 0 || delta >= 1 {
			panic("knw: delta must be in (0,1)")
		}
		s.delta = delta
	}
}

// WithCopies overrides the number of independent copies directly
// (use an odd number; 1 gives the raw single-shot sketch with the
// paper's per-copy success probability).
func WithCopies(c int) Option {
	return func(s *settings) {
		if c < 1 {
			panic("knw: need at least one copy")
		}
		s.copies = c
	}
}

// WithSeed makes the sketch deterministic. Two sketches built with the
// same options and seed are mergeable. Without it, a time-derived seed
// is used.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = seed; s.seedSet = true }
}

// WithUniverseBits sets log2 of the key universe (default 32; up to
// 62). Space grows additively with this (the paper's log n term).
func WithUniverseBits(b uint) Option {
	return func(s *settings) {
		if b < 4 || b > 62 {
			panic("knw: universe bits must be in [4, 62]")
		}
		s.logN = b
	}
}

// WithUpdateBits (L0 only) sets log2 of the maximum absolute frequency
// any item can reach (the paper's mM; default 32).
func WithUpdateBits(b uint) Option {
	return func(s *settings) {
		if b < 1 || b > 62 {
			panic("knw: update bits must be in [1, 62]")
		}
		s.logMM = b
	}
}

// WithK overrides the counter count K = 1/ε'² directly (a power of two
// ≥ 32), bypassing the calibrated ε→K mapping. For experiments.
func WithK(k int) Option {
	return func(s *settings) { s.kOverride = k }
}

// WithShards sets the shard count for the concurrent kinds built
// through the New factory (rounded up to a power of two; default: one
// shard per CPU). The non-concurrent kinds ignore it, and
// NewConcurrentF0/NewConcurrentL0's explicit shard argument takes
// precedence over it.
func WithShards(n int) Option {
	return func(s *settings) {
		if n < 1 {
			panic("knw: need at least one shard")
		}
		if n > maxShards {
			panic("knw: shard count exceeds the supported maximum")
		}
		s.shards = n
	}
}

// WithReference selects the reference implementations (Figure 3 with
// plain counters and Carter–Wegman polynomial hashing; O(1) amortized
// rather than worst-case time). Default is the Theorem 9 fast variant.
func WithReference() Option {
	return func(s *settings) { s.reference = true }
}

// WithLnTable routes reporting through the Appendix A.2 logarithm
// table (paper-exact Theorem 9 reporting) instead of the hardware
// log1p. F0 fast variant only.
func WithLnTable() Option {
	return func(s *settings) { s.lnTable = true }
}

// WithStrictRescale makes mid-rescale rough-estimate jumps FAIL the
// affected copy, exactly as in the proof of Theorem 9, instead of
// draining the copy phase synchronously.
func WithStrictRescale() Option {
	return func(s *settings) { s.strict = true }
}
