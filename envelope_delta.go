package knw

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"repro/internal/binenc"
)

// The KNWD delta envelope: the incremental counterpart of the KNWE
// snapshot envelope, carrying only the payload sections that changed
// since a base version instead of the whole sketch.
//
// The version-2 payload formats (serialize.go) already frame their
// dynamic state as length-prefixed sections — one per copy for F0/L0,
// one per shard for the concurrent kinds — behind a fixed header
// (per-type magic, version, settings, shard count). That framing makes
// a generic splitter possible: SplitEnvelope cuts any enveloped wire
// sketch into (header, sections) without knowing the section contents,
// and a delta is just "replace sections i, j, k of the base". Applying
// a delta to the full envelope it was diffed against reproduces the
// new full envelope byte for byte, so delta transfer is invisible to
// everything downstream of knw.Open.
//
// Wire layout:
//
//	uvarint deltaMagic ("KNWD")
//	uvarint delta version (currently 1)
//	uvarint kind               (the envelope Kind the delta applies to)
//	uvarint base version       (the version the receiver must hold)
//	uvarint next version       (the version the receiver holds after)
//	uvarint total sections     (section count of the base payload)
//	uvarint header checksum    (FNV-1a 64 of the base payload header)
//	uvarint flags              (bit 0: body is DEFLATE-compressed)
//	bytes   body               (length-prefixed)
//
//	body: uvarint changed count, then per changed section
//	  uvarint section index    (strictly increasing)
//	  bytes   section payload
//
// Base/next versions are opaque to this package — the store layer
// stamps them from its per-entry change counters — but the kind, the
// section count, and the header checksum are verified on apply, so a
// delta can never be spliced into a base with a different shape or
// configuration. Like every decoder in this package, DecodeDelta and
// ApplyDelta return errors on corrupt, truncated, or adversarial
// input; they never panic.
const (
	deltaMagic   = 0x4b4e5744 // "KNWD"
	deltaVersion = 1

	// deltaFlagDeflate marks a DEFLATE-compressed body.
	deltaFlagDeflate = 1 << 0
)

// Decode-side bounds: a corrupt header must not force an unbounded
// allocation. maxDeltaSections dwarfs any real payload (copies ≤ 2^10,
// shards ≤ 2^16); maxDeltaBodyBytes bounds DEFLATE expansion.
const (
	maxDeltaSections  = 1 << 20
	maxDeltaBodyBytes = 256 << 20
)

// EnvelopeSections is the section-level view of a full KNWE envelope:
// the payload header (everything before the first section frame) and
// the framed sections themselves. Header and Sections alias the input
// envelope; callers that outlive it must copy.
type EnvelopeSections struct {
	Kind     Kind
	Header   []byte
	Sections [][]byte
}

// SplitEnvelope cuts an enveloped version-2 wire payload into its
// header and framed sections. Version-1 payloads are unframed and
// pre-envelope blobs carry no kind tag, so both return an error —
// callers fall back to shipping the full envelope.
func SplitEnvelope(env []byte) (EnvelopeSections, error) {
	var es EnvelopeSections
	r := binenc.Reader{Buf: env}
	if magic := r.Uvarint(); r.Err() != nil || magic != envMagic {
		return es, fmt.Errorf("knw: not an enveloped sketch (pre-envelope payloads cannot be section-split)")
	}
	kind, payload, err := openEnvelope(&r)
	if err != nil {
		return es, err
	}
	info, ok := kindRegistry[kind]
	if !ok || info.legacyMagic == 0 {
		return es, fmt.Errorf("knw: kind %s has no sectioned payload", kind)
	}
	pr := binenc.Reader{Buf: payload}
	pr.Expect(info.legacyMagic, "payload magic")
	ver := pr.Uvarint()
	cfg := readSettings(&pr)
	sharded := info.legacyMagic == f0ShardedMagic || info.legacyMagic == l0ShardedMagic
	var shards uint64
	if sharded {
		shards = pr.Uvarint()
	}
	if err := pr.Err(); err != nil {
		return es, fmt.Errorf("knw: splitting %s payload: %w", kind, err)
	}
	if ver != version {
		return es, fmt.Errorf("knw: version-%d %s payloads are unframed and cannot be section-split", ver, kind)
	}
	if !cfg.valid() || (sharded && (shards < 1 || shards > maxShards)) {
		return es, fmt.Errorf("knw: corrupt %s header", kind)
	}
	es.Kind = kind
	es.Header = payload[:len(payload)-len(pr.Buf)]
	for len(pr.Buf) > 0 {
		sec := pr.BytesView()
		if err := pr.Err(); err != nil {
			return es, fmt.Errorf("knw: corrupt %s section frame: %w", kind, err)
		}
		es.Sections = append(es.Sections, sec)
	}
	return es, nil
}

// AppendEnvelope reassembles the full KNWE envelope from the split
// view, appending to dst (which may be nil). SplitEnvelope followed by
// AppendEnvelope is the identity on enveloped version-2 payloads.
func (es EnvelopeSections) AppendEnvelope(dst []byte) []byte {
	return appendEnvelope(dst, es.Kind, func(buf []byte) []byte {
		w := binenc.Writer{Buf: append(buf, es.Header...)}
		for _, sec := range es.Sections {
			w.Bytes(sec)
		}
		return w.Buf
	})
}

// deltaHeaderSum is the FNV-1a 64 checksum ApplyDelta uses to verify a
// delta targets the base it was diffed against (same settings, same
// shard count — anything header-identical is splice-compatible).
func deltaHeaderSum(header []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range header {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// AppendDelta encodes a KNWD delta from the current split view: the
// sections at the changed indexes, stamped with the (base, next)
// version pair. With compress set the body is DEFLATE-compressed when
// that actually shrinks it. The encoded delta applies only to the full
// envelope whose split has the same header and section count.
func AppendDelta(dst []byte, es EnvelopeSections, base, next uint64, changed []int, compress bool) ([]byte, error) {
	var body binenc.Writer
	body.Uvarint(uint64(len(changed)))
	prev := -1
	for _, i := range changed {
		if i <= prev || i >= len(es.Sections) {
			return nil, fmt.Errorf("knw: delta section index %d out of order or range (%d sections)", i, len(es.Sections))
		}
		prev = i
		body.Uvarint(uint64(i))
		body.Bytes(es.Sections[i])
	}
	payload := body.Buf
	flags := uint64(0)
	if compress {
		var zb bytes.Buffer
		zw, err := flate.NewWriter(&zb, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		if zb.Len() < len(payload) {
			payload = zb.Bytes()
			flags |= deltaFlagDeflate
		}
	}
	w := binenc.Writer{Buf: dst}
	w.Uvarint(deltaMagic)
	w.Uvarint(deltaVersion)
	w.Uvarint(uint64(es.Kind))
	w.Uvarint(base)
	w.Uvarint(next)
	w.Uvarint(uint64(len(es.Sections)))
	w.Uvarint(deltaHeaderSum(es.Header))
	w.Uvarint(flags)
	w.Bytes(payload)
	return w.Buf, nil
}

// IsDelta reports whether data starts with the KNWD magic — how
// receivers on a mixed full/delta stream dispatch without decoding.
func IsDelta(data []byte) bool {
	r := binenc.Reader{Buf: data}
	magic := r.Uvarint()
	return r.Err() == nil && magic == deltaMagic
}

// Delta is a decoded KNWD envelope.
type Delta struct {
	Kind          Kind
	Base, Next    uint64
	TotalSections int
	Indexes       []int
	Sections      [][]byte

	headerSum uint64
}

// DecodeDelta parses and validates a KNWD envelope. Section bytes may
// alias data (when the body was not compressed).
func DecodeDelta(data []byte) (Delta, error) {
	var d Delta
	r := binenc.Reader{Buf: data}
	r.Expect(deltaMagic, "delta magic")
	if v := r.Uvarint(); r.Err() == nil && v != deltaVersion {
		return d, fmt.Errorf("knw: unsupported delta version %d", v)
	}
	kind := r.Uvarint()
	d.Base = r.Uvarint()
	d.Next = r.Uvarint()
	total := r.Uvarint()
	d.headerSum = r.Uvarint()
	flags := r.Uvarint()
	body := r.BytesView()
	if err := r.Err(); err != nil {
		return d, fmt.Errorf("knw: corrupt delta header: %w", err)
	}
	if len(r.Buf) != 0 {
		return d, fmt.Errorf("knw: %d trailing bytes after delta", len(r.Buf))
	}
	if kind > uint64(^Kind(0)) || total > maxDeltaSections {
		return d, fmt.Errorf("knw: corrupt delta header")
	}
	d.Kind = Kind(kind)
	d.TotalSections = int(total)
	if flags&deltaFlagDeflate != 0 {
		zr := flate.NewReader(bytes.NewReader(body))
		raw, err := io.ReadAll(io.LimitReader(zr, maxDeltaBodyBytes+1))
		zr.Close()
		if err != nil {
			return d, fmt.Errorf("knw: corrupt delta body: %w", err)
		}
		if len(raw) > maxDeltaBodyBytes {
			return d, fmt.Errorf("knw: delta body exceeds %d bytes", maxDeltaBodyBytes)
		}
		body = raw
	}
	br := binenc.Reader{Buf: body}
	count := br.Uvarint()
	if br.Err() != nil || count > total {
		return d, fmt.Errorf("knw: corrupt delta body")
	}
	d.Indexes = make([]int, 0, count)
	d.Sections = make([][]byte, 0, count)
	prev := -1
	for j := uint64(0); j < count; j++ {
		idx := br.Uvarint()
		sec := br.BytesView()
		if err := br.Err(); err != nil {
			return d, fmt.Errorf("knw: corrupt delta section frame: %w", err)
		}
		if int(idx) <= prev || idx >= total {
			return d, fmt.Errorf("knw: delta section index %d out of order or range", idx)
		}
		prev = int(idx)
		d.Indexes = append(d.Indexes, int(idx))
		d.Sections = append(d.Sections, sec)
	}
	if len(br.Buf) != 0 {
		return d, fmt.Errorf("knw: %d trailing bytes in delta body", len(br.Buf))
	}
	return d, nil
}

// ApplyDelta splices a KNWD delta into the full envelope it was diffed
// against and returns the new full envelope. The base must match the
// delta's kind, section count, and header checksum; version agreement
// (delta.Base against the receiver's held version) is the caller's
// bookkeeping — this function only verifies structural compatibility.
func ApplyDelta(full, delta []byte) ([]byte, error) {
	d, err := DecodeDelta(delta)
	if err != nil {
		return nil, err
	}
	es, err := SplitEnvelope(full)
	if err != nil {
		return nil, fmt.Errorf("knw: delta base: %w", err)
	}
	if es.Kind != d.Kind {
		return nil, fmt.Errorf("knw: delta for kind %s cannot apply to a %s base", d.Kind, es.Kind)
	}
	if len(es.Sections) != d.TotalSections {
		return nil, fmt.Errorf("knw: delta expects %d sections, base has %d", d.TotalSections, len(es.Sections))
	}
	if deltaHeaderSum(es.Header) != d.headerSum {
		return nil, fmt.Errorf("knw: delta header checksum mismatch (different base configuration)")
	}
	for j, i := range d.Indexes {
		es.Sections[i] = d.Sections[j]
	}
	return es.AppendEnvelope(nil), nil
}
