package knw_test

// Benchmark harness: one target per experiment in DESIGN.md §3.
// Regenerate all numbers with
//
//	go test -bench=. -benchmem .
//
// and per-experiment with -bench=BenchmarkFigure1UpdateTime etc.
// EXPERIMENTS.md records a reference run.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	knw "repro"
	"repro/internal/baseline"
	"repro/internal/l0core"
	"repro/internal/rough"
	"repro/internal/simulate"
	"repro/internal/stream"
)

// --- E1: Figure 1's update-time column ------------------------------

// BenchmarkFigure1UpdateTime measures ns/update for every implemented
// Figure 1 row at ε = 0.05 (where applicable).
func BenchmarkFigure1UpdateTime(b *testing.B) {
	const eps = 0.05
	rng := func(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
	algos := map[string]baseline.F0Estimator{
		"KNW-fast":       knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(1), knw.WithCopies(1)),
		"KNW-reference":  knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(1), knw.WithCopies(1), knw.WithReference()),
		"FM85":           baseline.NewFM85(64, 1),
		"AMS":            baseline.NewAMS(9, 32, rng(2)),
		"GT":             baseline.NewGT(4096, 32, rng(3)),
		"KMV":            baseline.NewKMV(4096, rng(4)),
		"BJKST":          baseline.NewBJKST(4096, 32, rng(5)),
		"LogLog":         baseline.NewLogLog(2048, 6),
		"HyperLogLog":    baseline.NewHyperLogLog(baseline.MForEpsilon(eps), 7),
		"LinearCounting": baseline.NewLinearCounting(1<<23, 8),
	}
	for name, est := range algos {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est.Add(uint64(i) * 0x9e3779b97f4a7c15)
			}
		})
	}
}

// --- E2: RoughEstimator (Figure 2 / Theorem 1) ----------------------

func BenchmarkRoughEstimatorUpdate(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast-tabulation", true}, {"reference-polynomial", false}} {
		b.Run(mode.name, func(b *testing.B) {
			re := rough.New(rough.Config{LogN: 32, Fast: mode.fast}, rand.New(rand.NewSource(1)))
			for i := 0; i < b.N; i++ {
				re.Update(uint64(i) * 0x9e3779b97f4a7c15)
			}
		})
	}
}

func BenchmarkRoughEstimatorReport(b *testing.B) {
	re := rough.New(rough.Config{LogN: 32, Fast: true}, rand.New(rand.NewSource(1)))
	for i := 0; i < 1<<20; i++ {
		re.Update(uint64(i) * 0x9e3779b97f4a7c15)
	}
	var s uint64
	for i := 0; i < b.N; i++ {
		s += re.Estimate()
	}
	_ = s
}

// --- E3: the full F0 algorithm (Figure 3 / Theorems 3, 9) -----------

func BenchmarkKNWUpdate(b *testing.B) {
	for _, eps := range []float64{0.1, 0.05, 0.03} {
		b.Run(epsName(eps), func(b *testing.B) {
			sk := knw.NewF0(knw.WithEpsilon(eps), knw.WithSeed(1), knw.WithCopies(1))
			for i := 0; i < b.N; i++ {
				sk.Add(uint64(i) * 0x9e3779b97f4a7c15)
			}
		})
	}
}

func BenchmarkKNWReport(b *testing.B) {
	sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1), knw.WithCopies(1))
	for i := 0; i < 1<<21; i++ {
		sk.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		v = sk.Estimate()
	}
	_ = v
}

// BenchmarkKNWAmplified measures the amplified (δ = 0.05) sketch the
// public API defaults to — the cost the paper's "independent
// repetition" multiplies in.
func BenchmarkKNWAmplified(b *testing.B) {
	sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1))
	for i := 0; i < b.N; i++ {
		sk.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

// --- E13: batched ingestion (DESIGN.md §13) -------------------------

// benchBatch is the micro-batch size the batched benchmarks use.
// Sized so each of the 8 shards still receives full precompute chunks
// after routing (4096/8 = 512 = 2 chunks per shard per batch).
const benchBatch = 4096

// BenchmarkKNWIngest compares the scalar and batched single-sketch
// ingestion paths; the batch path amortizes hash evaluation across
// pipelined chunk loops.
func BenchmarkKNWIngest(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1), knw.WithCopies(1))
		for i := 0; i < b.N; i++ {
			sk.Add(uint64(i) * 0x9e3779b97f4a7c15)
		}
	})
	b.Run("batch", func(b *testing.B) {
		sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1), knw.WithCopies(1))
		keys := make([]uint64, benchBatch)
		for i := 0; i < b.N; i += len(keys) {
			n := len(keys)
			if rem := b.N - i; rem < n {
				n = rem
			}
			for j := 0; j < n; j++ {
				keys[j] = uint64(i+j) * 0x9e3779b97f4a7c15
			}
			sk.AddBatch(keys[:n])
		}
	})
}

// BenchmarkKeyedIngest compares typed-key batched ingestion against
// the raw uint64 path on the same sketch configuration — the PR-2
// acceptance gate is keyed-string within 10% of raw-uint64. The
// string keys are realistic short ids (~12 bytes); "raw-uint64" is
// the floor (no per-key hash at all).
func BenchmarkKeyedIngest(b *testing.B) {
	mkKeys := func() ([]uint64, []string) {
		raw := make([]uint64, benchBatch)
		str := make([]string, benchBatch)
		for i := range raw {
			raw[i] = uint64(i) * 0x9e3779b97f4a7c15 >> 32
			str[i] = fmt.Sprintf("user-%07d", i)
		}
		return raw, str
	}
	opts := []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(1)}
	b.Run("raw-uint64", func(b *testing.B) {
		sk := knw.NewF0(opts...)
		raw, _ := mkKeys()
		b.ResetTimer()
		for i := 0; i < b.N; i += benchBatch {
			sk.AddBatch(raw)
		}
	})
	b.Run("keyed-uint64", func(b *testing.B) {
		k := knw.NewKeyed[uint64](knw.NewF0(opts...))
		raw, _ := mkKeys()
		b.ResetTimer()
		for i := 0; i < b.N; i += benchBatch {
			k.AddBatch(raw)
		}
	})
	b.Run("keyed-string", func(b *testing.B) {
		k := knw.NewKeyed[string](knw.NewF0(opts...))
		_, str := mkKeys()
		b.ResetTimer()
		for i := 0; i < b.N; i += benchBatch {
			k.AddBatch(str)
		}
	})
	b.Run("keyed-string-concurrent", func(b *testing.B) {
		k := knw.NewKeyed[string](knw.NewConcurrentF0(runtime.GOMAXPROCS(0), opts...))
		_, str := mkKeys()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				k.AddBatch(str)
			}
		})
	})
}

// BenchmarkL0IngestBatch is the turnstile analogue.
func BenchmarkL0IngestBatch(b *testing.B) {
	sk := knw.NewL0(knw.WithEpsilon(0.1), knw.WithSeed(1), knw.WithCopies(1))
	keys := make([]uint64, benchBatch)
	for i := 0; i < b.N; i += len(keys) {
		n := len(keys)
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			keys[j] = uint64(i+j) * 0x9e3779b97f4a7c15
		}
		sk.UpdateBatch(keys[:n], nil)
	}
}

// benchKeyspace bounds the distinct keys the concurrent ingest
// benchmarks draw from: production streams re-see items — that is the
// point of distinct counting — so the steady state has a stable
// subsampling offset rather than one growing with b.N.
const benchKeyspace = 1 << 21

// BenchmarkConcurrentF0Ingest is the headline concurrency comparison:
// per-key ingestion (one shard-lock acquisition per key — the pre-v2
// write path) against pre-routed batched ingestion (one lock per shard
// per batch) on the same workload, with at least 8 writer goroutines.
func BenchmarkConcurrentF0Ingest(b *testing.B) {
	parallelism := 1
	for p := runtime.GOMAXPROCS(0); p < 8; p *= 2 {
		parallelism *= 2 // ensure ≥ 8 goroutines even on small machines
	}
	b.Run("per-key-lock", func(b *testing.B) {
		c := knw.NewConcurrentF0(8, knw.WithSeed(1), knw.WithCopies(1))
		b.SetParallelism(parallelism)
		b.RunParallel(func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				c.Add((i%benchKeyspace)*0x9e3779b97f4a7c15 + 1)
				i++
			}
		})
	})
	b.Run("batch", func(b *testing.B) {
		c := knw.NewConcurrentF0(8, knw.WithSeed(1), knw.WithCopies(1))
		b.SetParallelism(parallelism)
		b.RunParallel(func(pb *testing.PB) {
			buf := make([]uint64, 0, benchBatch)
			i := uint64(0)
			for pb.Next() {
				buf = append(buf, (i%benchKeyspace)*0x9e3779b97f4a7c15+1)
				i++
				if len(buf) == cap(buf) {
					c.AddBatch(buf)
					buf = buf[:0]
				}
			}
			c.AddBatch(buf)
		})
	})
}

// BenchmarkConcurrentL0Ingest mirrors the F0 comparison for turnstile
// updates.
func BenchmarkConcurrentL0Ingest(b *testing.B) {
	parallelism := 1
	for p := runtime.GOMAXPROCS(0); p < 8; p *= 2 {
		parallelism *= 2 // ensure ≥ 8 goroutines even on small machines
	}
	b.Run("per-key-lock", func(b *testing.B) {
		c := knw.NewConcurrentL0(8, knw.WithSeed(1), knw.WithCopies(1))
		b.SetParallelism(parallelism)
		b.RunParallel(func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				c.Update(i*0x9e3779b97f4a7c15+1, 1)
				i++
			}
		})
	})
	b.Run("batch", func(b *testing.B) {
		c := knw.NewConcurrentL0(8, knw.WithSeed(1), knw.WithCopies(1))
		b.SetParallelism(parallelism)
		b.RunParallel(func(pb *testing.PB) {
			buf := make([]uint64, 0, benchBatch)
			i := uint64(0)
			for pb.Next() {
				buf = append(buf, i*0x9e3779b97f4a7c15+1)
				i++
				if len(buf) == cap(buf) {
					c.UpdateBatch(buf, nil)
					buf = buf[:0]
				}
			}
			c.UpdateBatch(buf, nil)
		})
	})
}

// BenchmarkConcurrentF0Estimate measures the pooled-scratch merge read
// path (the pre-v2 implementation rebuilt the scratch sketch — hash
// draws included — on every call).
func BenchmarkConcurrentF0Estimate(b *testing.B) {
	c := knw.NewConcurrentF0(8, knw.WithSeed(1), knw.WithCopies(1))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	c.AddBatch(keys)
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		v = c.Estimate()
	}
	_ = v
}

// --- E6: worst-case update time (Theorem 9) -------------------------

// BenchmarkWorstCaseUpdate reports per-update latency quantiles across
// a stream crossing many rescale boundaries, comparing the deamortized
// FastSketch against the reference's Θ(K) rescale spikes. Quantiles
// are attached as custom benchmark metrics (ns units).
func BenchmarkWorstCaseUpdate(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []knw.Option
	}{
		{"fast-deamortized", []knw.Option{knw.WithCopies(1)}},
		{"reference-amortized", []knw.Option{knw.WithCopies(1), knw.WithReference()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := append([]knw.Option{knw.WithEpsilon(0.03), knw.WithSeed(1)}, mode.opts...)
			sk := knw.NewF0(opts...)
			prof := simulate.MeasureLatency(wrap{sk}, stream.NewUniform(2_000_000, 2_000_000, 1))
			b.ReportMetric(float64(prof.P50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(prof.P999.Nanoseconds()), "p999-ns")
			b.ReportMetric(float64(prof.Max.Nanoseconds()), "max-ns")
			// Keep the runtime loop honest.
			for i := 0; i < b.N; i++ {
				sk.Add(uint64(i))
			}
		})
	}
}

// --- E7: L0 estimation (Figure 4 / Theorem 10) ----------------------

func BenchmarkL0Update(b *testing.B) {
	b.Run("KNW-L0", func(b *testing.B) {
		sk := knw.NewL0(knw.WithEpsilon(0.1), knw.WithSeed(1), knw.WithCopies(1))
		for i := 0; i < b.N; i++ {
			sk.Update(uint64(i)*0x9e3779b97f4a7c15, 1)
		}
	})
	b.Run("Ganguly", func(b *testing.B) {
		g := baseline.NewGangulyL0(4096, 32, rand.New(rand.NewSource(1)))
		for i := 0; i < b.N; i++ {
			g.Update(uint64(i)*0x9e3779b97f4a7c15, 1)
		}
	})
}

func BenchmarkL0Report(b *testing.B) {
	sk := knw.NewL0(knw.WithEpsilon(0.1), knw.WithSeed(1), knw.WithCopies(1))
	for i := 0; i < 500_000; i++ {
		sk.Update(uint64(i)*0x9e3779b97f4a7c15, 1)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		v = sk.Estimate()
	}
	_ = v
}

// --- E8/E9: the small-L0 structures ---------------------------------

func BenchmarkExactSmallL0Update(b *testing.B) {
	e := l0core.NewExactSmallL0(141, 1.0/16, 32, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i)&1023, 1)
	}
}

func BenchmarkRoughL0Update(b *testing.B) {
	e := l0core.NewRoughL0(l0core.RoughL0Config{LogN: 32}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i)*0x9e3779b97f4a7c15, 1)
	}
}

// --- E12: application workloads --------------------------------------

func BenchmarkNetmonPacket(b *testing.B) {
	tr := stream.NewNetTrace(stream.NetTraceConfig{Seed: 1})
	srcs := knw.NewF0(knw.WithEpsilon(0.1), knw.WithSeed(1), knw.WithCopies(1))
	flows := knw.NewF0(knw.WithEpsilon(0.1), knw.WithSeed(2), knw.WithCopies(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := tr.Next()
		if !ok {
			b.StopTimer()
			tr = stream.NewNetTrace(stream.NetTraceConfig{Seed: int64(i)})
			b.StartTimer()
			p, _ = tr.Next()
		}
		srcs.Add(p.SrcKey())
		flows.Add(p.FlowKey())
	}
}

// --- E14: service snapshot/merge hot path ----------------------------

// BenchmarkSnapshotRoundTrip measures the knwd checkpoint/merge cycle:
// encode a sketch to its envelope (AppendBinary into a reused buffer —
// the pooled path the store checkpointer and /v1/snapshot use) and
// restore it with knw.Open (the /v1/merge and startup-restore path).
// ReportAllocs makes encode-side pooling regressions visible.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	for _, bc := range []struct {
		name string
		make func() knw.Estimator
	}{
		{"F0", func() knw.Estimator {
			return knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1))
		}},
		{"ConcurrentF0-8", func() knw.Estimator {
			return knw.NewConcurrentF0(8, knw.WithEpsilon(0.05), knw.WithSeed(1))
		}},
		{"L0", func() knw.Estimator {
			return knw.NewL0(knw.WithEpsilon(0.05), knw.WithSeed(1))
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sk := bc.make()
			keys := make([]uint64, 1<<16)
			for i := range keys {
				keys[i] = uint64(i) * 0x9e3779b97f4a7c15
			}
			sk.AddBatch(keys)
			enc := sk.(interface {
				AppendBinary([]byte) ([]byte, error)
			})
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = enc.AppendBinary(buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				if _, err := knw.Open(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(buf)))
		})
	}
}

// BenchmarkSnapshotEncode isolates the encode half (what a checkpoint
// tick pays per store entry when nothing is restored).
func BenchmarkSnapshotEncode(b *testing.B) {
	sk := knw.NewConcurrentF0(8, knw.WithEpsilon(0.05), knw.WithSeed(1))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	sk.AddBatch(keys)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = sk.AppendBinary(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func epsName(eps float64) string {
	switch eps {
	case 0.1:
		return "eps=0.10"
	case 0.05:
		return "eps=0.05"
	case 0.03:
		return "eps=0.03"
	}
	return "eps=?"
}
