package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"testing"

	knw "repro"
	"repro/store"
)

// FuzzIngestStream drives arbitrary bodies through the streaming
// ingest path (both the newline scanner and the NDJSON decoder), with
// the body delivered in adversarially small read chunks so every
// split-read refill boundary in the scanner is exercised. Invariants:
// the handler never panics, always answers with a JSON body, and the
// reported ingested count never exceeds the number of keys actually
// present in the input.
//
// Run with: go test -fuzz=FuzzIngestStream ./service
func FuzzIngestStream(f *testing.F) {
	f.Add([]byte("alice\nbob\ncarol\n"), uint8(1), false)
	f.Add([]byte("alice\r\nbob\r\n\r\n\ntrailing-unterminated"), uint8(3), false)
	f.Add([]byte(`{"store":"t/m","keys":["a","b","c"]}`), uint8(5), true)
	f.Add([]byte(`{"keys":["a"]}`+"\n"+`{"store":"u/m","keys":["b","c"]}`), uint8(2), true)
	f.Add([]byte(`{"store":"t/m","keys":["a"]}garbage`), uint8(7), true)
	f.Add([]byte{}, uint8(1), false)
	f.Add([]byte("\n\n\n"), uint8(1), true)
	f.Add(bytes.Repeat([]byte{0xff, '\n'}, 300), uint8(13), false)

	f.Fuzz(func(t *testing.T, body []byte, chunk uint8, jsonMode bool) {
		srv, err := New(Config{Store: store.Config{
			Kind: knw.KindF0,
			Options: []knw.Option{
				knw.WithEpsilon(0.3), knw.WithCopies(1), knw.WithK(32),
				knw.WithUniverseBits(16), knw.WithSeed(1),
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		ct := "text/plain"
		if jsonMode {
			ct = "application/json"
		}
		req := httptest.NewRequest("POST", "/v1/ingest?store=fuzz/t", &chunkReader{
			data: body,
			n:    int(chunk)%31 + 1,
		})
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic

		var resp struct {
			Ingested *int `json:"ingested"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("non-JSON response (HTTP %d): %q", rec.Code, rec.Body.Bytes())
		}
		if resp.Ingested == nil {
			t.Fatalf("response missing ingested count (HTTP %d): %q", rec.Code, rec.Body.Bytes())
		}
		var limit int
		if jsonMode {
			limit = countJSONKeys(body)
		} else {
			limit = countLineKeys(body)
		}
		if *resp.Ingested > limit {
			t.Fatalf("ingested %d > %d keys sent (json=%v, HTTP %d)",
				*resp.Ingested, limit, jsonMode, rec.Code)
		}
	})
}

// chunkReader delivers its data at most n bytes per Read — the
// split-read torture the streaming scanner must survive.
type chunkReader struct {
	data []byte
	n    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := min(r.n, min(len(p), len(r.data)))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// countLineKeys counts the non-empty newline-delimited keys in body,
// mirroring the scanner's semantics (CR trimmed, final unterminated
// line counts).
func countLineKeys(body []byte) int {
	n := 0
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(trimCR(line)) > 0 {
			n++
		}
	}
	return n
}

// countJSONKeys upper-bounds the keys a JSON body can deliver: the sum
// over every decodable document. The handler stops at the first bad
// document, so its count can only be lower.
func countJSONKeys(body []byte) int {
	dec := json.NewDecoder(bytes.NewReader(body))
	n := 0
	for {
		var req ingestRequest
		err := dec.Decode(&req)
		if errors.Is(err, io.EOF) || err != nil {
			return n
		}
		n += len(req.Keys)
	}
}
