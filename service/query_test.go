package service

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	knw "repro"
	"repro/store"
)

// Single-node /v1/query and /v1/series tests. Counts sit in the
// sketch's exact small-count regime, so the set-algebra and series
// expectations are asserted exactly; the statistical guarantees are
// covered by the library's acceptance tests.

// qkeys renders a newline-delimited ingest body of prefixed keys.
func qkeys(prefix string, lo, hi int) string {
	var b strings.Builder
	for i := lo; i < hi; i++ {
		b.WriteString(prefix)
		b.WriteString("-")
		b.WriteByte('0' + byte(i/1000%10))
		b.WriteByte('0' + byte(i/100%10))
		b.WriteByte('0' + byte(i/10%10))
		b.WriteByte('0' + byte(i%10))
		b.WriteString("\n")
	}
	return b.String()
}

// ingestKeys POSTs keys and then reads the estimate as a drain
// barrier, so fake-clock tests attribute the write to the current
// window bucket before the clock moves.
func ingestKeys(t *testing.T, base, name, body string) {
	t.Helper()
	resp, out := post(t, base+"/v1/ingest?store="+name, "text/plain", []byte(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: HTTP %d: %s", name, resp.StatusCode, out)
	}
	estimateOf(t, base, name)
}

func getQuery(t *testing.T, base, params string) (queryResponse, *http.Response, []byte) {
	t.Helper()
	resp, body := get(t, base+"/v1/query?"+params)
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("decoding query response: %v (%s)", err, body)
		}
	}
	return qr, resp, body
}

func TestQueryEndpoint(t *testing.T) {
	_, hs := newTestServer(t, testConfig(""))
	ingestKeys(t, hs.URL, "q/a", qkeys("k", 0, 40))
	ingestKeys(t, hs.URL, "q/b", qkeys("k", 20, 60))

	for _, params := range []string{
		"stores=q/a,q/b",
		"store=q/a&store=q/b", // repeated-param spelling
		"stores=q/a&store=q/b",
	} {
		qr, resp, body := getQuery(t, hs.URL, params)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", params, resp.StatusCode, body)
		}
		if qr.Mode != "shard" || qr.Scope != "all" {
			t.Errorf("%s: mode/scope = %s/%s, want shard/all", params, qr.Mode, qr.Scope)
		}
		if len(qr.Cardinalities) != 2 || qr.Cardinalities[0] != 40 || qr.Cardinalities[1] != 40 {
			t.Errorf("%s: cards = %v, want [40 40]", params, qr.Cardinalities)
		}
		if qr.Union != 60 || qr.Intersection != 20 {
			t.Errorf("%s: union/inter = %v/%v, want 60/20", params, qr.Union, qr.Intersection)
		}
		if qr.Jaccard != 20.0/60 {
			t.Errorf("%s: jaccard = %v, want %v", params, qr.Jaccard, 20.0/60)
		}
		if qr.Pair == nil {
			t.Fatalf("%s: pair stats missing for a two-store query", params)
		}
		if qr.Pair.DiffAB != 20 || qr.Pair.DiffBA != 20 || qr.Pair.SymmetricDiff != 40 {
			t.Errorf("%s: diffs = %+v, want 20/20/40", params, qr.Pair)
		}
		if qr.Pair.Hamming != nil {
			t.Errorf("%s: F0 sketches reported a Hamming distance", params)
		}
		if qr.Epsilon != 0.05 || qr.Terms != 3 {
			t.Errorf("%s: epsilon/terms = %v/%d, want 0.05/3", params, qr.Epsilon, qr.Terms)
		}
		// ε·(|A| + |B| + |A∪B|) = 0.05·140.
		if math.Abs(qr.IntersectionErrBound-7) > 1e-9 {
			t.Errorf("%s: err bound = %v, want 7", params, qr.IntersectionErrBound)
		}
		if qr.Nodes != 0 || qr.StalenessSeconds != nil {
			t.Errorf("%s: single-node answer carries cluster fields: %+v", params, qr)
		}
	}
}

// An L0 server answers the Hamming distance too.
func TestQueryHammingL0(t *testing.T) {
	cfg := testConfig("")
	cfg.Store.Kind = knw.KindL0
	_, hs := newTestServer(t, cfg)
	ingestKeys(t, hs.URL, "q/a", qkeys("k", 0, 40))
	ingestKeys(t, hs.URL, "q/b", qkeys("k", 20, 60))
	qr, resp, body := getQuery(t, hs.URL, "stores=q/a,q/b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if qr.Pair == nil || qr.Pair.Hamming == nil {
		t.Fatalf("L0 query missing Hamming: %+v", qr.Pair)
	}
	// Insertion-only streams: Hamming = symmetric difference = 40.
	if *qr.Pair.Hamming != 40 {
		t.Errorf("hamming = %v, want 40", *qr.Pair.Hamming)
	}
}

func TestQueryThreeWay(t *testing.T) {
	_, hs := newTestServer(t, testConfig(""))
	ingestKeys(t, hs.URL, "q/a", qkeys("k", 0, 40))
	ingestKeys(t, hs.URL, "q/b", qkeys("k", 20, 60))
	ingestKeys(t, hs.URL, "q/c", qkeys("k", 30, 70))
	qr, resp, body := getQuery(t, hs.URL, "stores=q/a,q/b,q/c")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	// Triple overlap [30,40); union [0,70); 2^3−1 subset terms.
	if qr.Union != 70 || qr.Intersection != 10 || qr.Terms != 7 {
		t.Errorf("union/inter/terms = %v/%v/%d, want 70/10/7", qr.Union, qr.Intersection, qr.Terms)
	}
	if qr.Pair != nil {
		t.Errorf("three-way query reported pair stats")
	}
}

func TestQueryErrors(t *testing.T) {
	_, hs := newTestServer(t, testConfig(""))
	ingestKeys(t, hs.URL, "q/a", qkeys("k", 0, 10))
	ingestKeys(t, hs.URL, "q/b", qkeys("k", 0, 10))
	many := "stores=" + strings.Join(strings.Fields("a b c d e f g h i"), ",")
	cases := []struct {
		params string
		status int
	}{
		{"stores=q/a", http.StatusBadRequest},                 // one store
		{"stores=", http.StatusBadRequest},                    // none
		{many, http.StatusBadRequest},                         // 9 > MaxSetQuery
		{"stores=q/a,q/a", http.StatusBadRequest},             // duplicate
		{"stores=q/a,q/b&scope=bogus", http.StatusBadRequest}, // bad scope
		{"stores=q/a,q/b&mode=bogus", http.StatusBadRequest},  // bad mode
		{"stores=q/a,q/b&mode=local", http.StatusBadRequest},  // no gossip here
		{"stores=q/a,q/b&mode=gather", http.StatusBadRequest}, // no cluster here
		{"stores=q/a,never/written", http.StatusNotFound},     // unknown store
		{"stores=q/a,bad name!", http.StatusBadRequest},       // invalid name
	}
	for _, tc := range cases {
		if _, resp, body := getQuery(t, hs.URL, tc.params); resp.StatusCode != tc.status {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.params, resp.StatusCode, tc.status, body)
		}
	}
	// /v1/series on an unwindowed server, and on a missing store.
	if resp, _ := get(t, hs.URL+"/v1/series?store=q/a"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("series on unwindowed store: HTTP %d, want 400", resp.StatusCode)
	}
}

// testClock is a mutex-guarded fake clock: handler goroutines read it
// through store.Config.Now while the test advances it between
// requests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) get() time.Time  { c.mu.Lock(); defer c.mu.Unlock(); return c.now }
func (c *testClock) set(v time.Time) { c.mu.Lock(); defer c.mu.Unlock(); c.now = v }

func TestSeriesEndpoint(t *testing.T) {
	base := time.Unix(1_700_000_000, 0).Truncate(time.Minute)
	clock := &testClock{now: base}
	cfg := testConfig("")
	cfg.Store.Window = store.Window{Buckets: 4, Interval: time.Minute}
	cfg.Store.Now = clock.get
	_, hs := newTestServer(t, cfg)

	// t=0: 24 keys; t=1: 12; t=2: 48 new + 12 shared with t=0.
	ingestKeys(t, hs.URL, "t/m", qkeys("a", 0, 24))
	clock.set(base.Add(time.Minute))
	ingestKeys(t, hs.URL, "t/m", qkeys("b", 0, 12))
	clock.set(base.Add(2 * time.Minute))
	ingestKeys(t, hs.URL, "t/m", qkeys("c", 0, 48)+qkeys("a", 0, 12))

	getSeries := func(params string) (seriesResponse, *http.Response, []byte) {
		t.Helper()
		resp, body := get(t, hs.URL+"/v1/series?"+params)
		var sr seriesResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatalf("decoding series: %v (%s)", err, body)
			}
		}
		return sr, resp, body
	}

	sr, resp, body := getSeries("store=t/m")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if sr.Mode != "shard" || sr.Nodes != 0 {
		t.Errorf("mode/nodes = %s/%d, want shard/0", sr.Mode, sr.Nodes)
	}
	wantEsts := []float64{0, 24, 12, 60}
	if len(sr.Buckets) != len(wantEsts) {
		t.Fatalf("got %d buckets, want %d (%s)", len(sr.Buckets), len(wantEsts), body)
	}
	for i, want := range wantEsts {
		if sr.Buckets[i].Estimate != want {
			t.Errorf("bucket %d = %v, want exactly %v", i, sr.Buckets[i].Estimate, want)
		}
	}
	// Union over the span, not the 96 a per-bucket sum would read.
	if sr.Window != 84 || sr.Delta != 48 || sr.RatePerSec != 48.0/60 {
		t.Errorf("window/delta/rate = %v/%v/%v, want 84/48/0.8", sr.Window, sr.Delta, sr.RatePerSec)
	}

	// 90s rounds up to two buckets.
	sr, resp, body = getSeries("store=t/m&span=90s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("span=90s: HTTP %d: %s", resp.StatusCode, body)
	}
	if len(sr.Buckets) != 2 || sr.Buckets[0].Estimate != 12 || sr.Buckets[1].Estimate != 60 || sr.Window != 72 {
		t.Errorf("span=90s: buckets/window = %v/%v, want [12 60]/72", sr.Buckets, sr.Window)
	}

	for _, tc := range []struct {
		params string
		status int
	}{
		{"store=t/m&span=bogus", http.StatusBadRequest},
		{"store=t/m&mode=local", http.StatusBadRequest},
		{"store=t/m&mode=gather", http.StatusBadRequest}, // single node
		{"store=t/m&mode=bogus", http.StatusBadRequest},
		{"store=never/written", http.StatusNotFound},
	} {
		if _, resp, body := getSeries(tc.params); resp.StatusCode != tc.status {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.params, resp.StatusCode, tc.status, body)
		}
	}

	// scope=window queries see only the live ring: expire everything,
	// re-ingest one store, and the windowed view diverges from all-time.
	ingestKeys(t, hs.URL, "t/n", qkeys("a", 0, 24))
	clock.set(base.Add(20 * time.Minute))
	ingestKeys(t, hs.URL, "t/n", qkeys("z", 0, 10))
	qr, resp, body := getQuery(t, hs.URL, "stores=t/m,t/n&scope=window")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed query: HTTP %d: %s", resp.StatusCode, body)
	}
	if qr.Scope != "window" || qr.Cardinalities[0] != 0 || qr.Cardinalities[1] != 10 || qr.Intersection != 0 {
		t.Errorf("windowed query = %+v, want cards [0 10], inter 0", qr)
	}
	qr, _, _ = getQuery(t, hs.URL, "stores=t/m,t/n&scope=all")
	if qr.Cardinalities[0] != 84 || qr.Intersection != 24 {
		t.Errorf("all-time query = %+v, want card 84, inter 24", qr)
	}

	// scope=buckets snapshots serve the decodable KNWB ring export.
	resp, blob := get(t, hs.URL+"/v1/snapshot?store=t/n&scope=buckets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buckets snapshot: HTTP %d", resp.StatusCode)
	}
	rs, err := store.DecodeRingSnapshot(blob)
	if err != nil {
		t.Fatalf("decoding ring snapshot: %v", err)
	}
	if rs.Interval != time.Minute || len(rs.Buckets) != 4 {
		t.Errorf("ring snapshot = %v/%d buckets, want 1m/4", rs.Interval, len(rs.Buckets))
	}
}
