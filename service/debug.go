package service

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/httpx"
	"repro/internal/trace"
)

// GET /v1/debug/traces: the node's sampled-trace ring as JSON.
//
// Query parameters:
//
//	trace=<16 hex>   only this trace id
//	store=<name>     only traces with a span touching the store
//	min_ms=<float>   only traces at least this slow
//	limit=<n>        at most n traces (default 50), newest first
//	scope=cluster    merge every peer's spans in, so one response
//	                 shows the full cross-node tree (cluster mode)
type debugTraces struct {
	Node   string       `json:"node"`
	Traces []trace.Tree `json:"traces"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f trace.Filter
	if t := q.Get("trace"); t != "" {
		id, ok := trace.ParseHex(t)
		if !ok {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad trace id %q (want 16 hex digits)", t))
			return
		}
		f.Trace = id
	}
	f.Store = q.Get("store")
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q: %w", v, err))
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		f.Limit = n
	}
	out := debugTraces{Node: s.tracer.Node(), Traces: s.tracer.Snapshot(f)}
	switch scope := q.Get("scope"); scope {
	case "", "local":
	case "cluster":
		if s.router == nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("scope=cluster needs cluster mode (-peers)"))
			return
		}
		lists := [][]trace.Tree{out.Traces}
		for _, res := range s.router.GatherTraces(localQuery(q)) {
			if res.Err != nil {
				// Best-effort: a peer that cannot answer just contributes no
				// spans; its absence is visible in the tree itself.
				continue
			}
			lists = append(lists, res.Traces)
		}
		out.Traces = trace.MergeTrees(lists...)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown traces scope %q (local or cluster)", scope))
		return
	}
	httpx.Reply(w, http.StatusOK, out)
}

// localQuery strips scope so the per-peer fan-out fetches each node's
// local ring (no recursive cluster gathers).
func localQuery(q url.Values) string {
	out := url.Values{}
	for k, vs := range q {
		if k == "scope" {
			continue
		}
		out[k] = vs
	}
	return out.Encode()
}
