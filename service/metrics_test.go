package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	knw "repro"
	"repro/store"
)

// scrape fetches /metrics and returns every sample keyed by its full
// series name (labels included).
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	return parseExposition(t, string(body))
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)

func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("exposition line does not parse: %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(m[2], "%g", &v); err != nil {
			t.Fatalf("exposition value %q: %v", m[2], err)
		}
		out[m[1]] = v
	}
	return out
}

// TestMetricsCountersAdvance drives ingest (both body forms), estimate,
// and merge, and checks the corresponding counters move.
func TestMetricsCountersAdvance(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))
	_ = srv

	before := scrape(t, hs.URL)
	if v := before[`knwd_http_requests_total{route="/v1/ingest",code="200"}`]; v != 0 {
		t.Fatalf("fresh server has nonzero ingest requests: %v", v)
	}

	resp, body := post(t, hs.URL+"/v1/ingest?store=m/a", "text/plain", []byte("k1\nk2\nk3\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, hs.URL+"/v1/ingest", "application/json",
		[]byte(`{"store":"m/a","keys":["k4","k5"]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	estimateOf(t, hs.URL, "m/a")

	// Merge a snapshot of m/a into m/b.
	resp, env := get(t, hs.URL+"/v1/snapshot?store=m/a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d", resp.StatusCode)
	}
	resp, body = post(t, hs.URL+"/v1/merge?store=m/b", "application/octet-stream", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge: HTTP %d: %s", resp.StatusCode, body)
	}

	after := scrape(t, hs.URL)
	wantMoved := map[string]float64{
		`knwd_http_requests_total{route="/v1/ingest",code="200"}`:   2,
		`knwd_http_requests_total{route="/v1/estimate",code="200"}`: 1,
		`knwd_http_requests_total{route="/v1/merge",code="200"}`:    1,
		`knwd_http_requests_total{route="/v1/snapshot",code="200"}`: 1,
		`knwd_ingest_keys_total`:                                    5,
		`knwd_store_ingested_keys_total`:                            5,
		`knwd_store_entries`:                                        2, // m/a + m/b (created by merge)
	}
	for name, want := range wantMoved {
		if got := after[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if after[`knwd_ingest_bytes_total`] <= 0 {
		t.Error("knwd_ingest_bytes_total did not advance")
	}
	if after[`knwd_snapshot_bytes_total`] != float64(len(env)) {
		t.Errorf("knwd_snapshot_bytes_total = %v, want %d",
			after[`knwd_snapshot_bytes_total`], len(env))
	}
	lat := `knwd_http_request_seconds_count{route="/v1/ingest"}`
	if after[lat] != 2 {
		t.Errorf("%s = %v, want 2", lat, after[lat])
	}
}

// errAfterReader yields its payload in tiny reads, then fails.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p[:min(3, len(p))], r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestStreamingIngestSplitReads delivers a newline body a few bytes
// per Read — keys split across read boundaries — and checks every key
// lands exactly once.
func TestStreamingIngestSplitReads(t *testing.T) {
	srv, err := New(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	const n = 100
	for i := 0; i < n; i++ {
		fmt.Fprintf(&payload, "key-%03d\r\n", i)
	}
	payload.WriteString("final-unterminated")
	req := httptest.NewRequest("POST", "/v1/ingest?store=split/a",
		&errAfterReader{data: payload.Bytes(), err: io.EOF})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Ingested int `json:"ingested"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Ingested != n+1 {
		t.Fatalf("ingested = %d, want %d", out.Ingested, n+1)
	}
	est, err := srv.Store().Estimate("split/a")
	if err != nil {
		t.Fatal(err)
	}
	if est.AllTime < 0.9*float64(n+1) || est.AllTime > 1.1*float64(n+1) {
		t.Fatalf("estimate = %v, want ≈ %d", est.AllTime, n+1)
	}
}

// TestStreamingIngestManyBatches pushes enough keys through one body
// to force several batch flushes and a buffer-boundary crossing.
func TestStreamingIngestManyBatches(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))
	var payload bytes.Buffer
	const n = 3*ingestBatchKeys + 17
	for i := 0; i < n; i++ {
		fmt.Fprintf(&payload, "stream-key-%07d\n", i)
	}
	resp, body := post(t, hs.URL+"/v1/ingest?store=big/a", "text/plain", payload.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Ingested int `json:"ingested"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ingested != n {
		t.Fatalf("ingested = %d, want %d", out.Ingested, n)
	}
	est := estimateOf(t, hs.URL, "big/a")
	if relErr := est.AllTime/float64(n) - 1; relErr < -0.2 || relErr > 0.2 {
		t.Fatalf("estimate %v too far from %d", est.AllTime, n)
	}
	if srv.met.ingestKeys.Value() != n {
		t.Fatalf("ingest keys counter = %d, want %d", srv.met.ingestKeys.Value(), n)
	}
}

// TestIngestMidStreamReadError: a body that fails partway through the
// stream must produce a JSON-bodied 400 (reporting partial progress),
// not an empty-bodied 500.
func TestIngestMidStreamReadError(t *testing.T) {
	srv, err := New(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/ingest?store=err/a",
		&errAfterReader{data: []byte("a\nb\nc\n"), err: errors.New("connection reset by peer")})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400; body: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	var out struct {
		Error    string `json:"error"`
		Ingested *int   `json:"ingested"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("error body is not JSON: %q", rec.Body)
	}
	if out.Error == "" || !strings.Contains(out.Error, "connection reset") {
		t.Fatalf("error body %q does not carry the read failure", out.Error)
	}
	if out.Ingested == nil {
		t.Fatal("error body missing partial-progress ingested count")
	}
	// JSON mode: same mapping when the document stream dies mid-read.
	req = httptest.NewRequest("POST", "/v1/ingest?store=err/a",
		&errAfterReader{data: []byte(`{"keys":["x"]}{"keys":`), err: errors.New("unexpected EOF")})
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("JSON mid-stream: HTTP %d, want 400; body: %s", rec.Code, rec.Body)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("JSON mid-stream error body is not JSON: %q", rec.Body)
	}
}

// TestIngestNDJSONRoutesPerStore: one connection, three documents, two
// stores — the JSON stream routes each batch to its own store.
func TestIngestNDJSONRoutesPerStore(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))
	body := `{"store":"t1/users","keys":["a","b"]}
{"store":"t2/users","keys":["c"]}
{"store":"t1/users","keys":["d","e","f"]}`
	resp, out := post(t, hs.URL+"/v1/ingest", "application/json", []byte(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, out)
	}
	var rep struct {
		Ingested int `json:"ingested"`
		Batches  int `json:"batches"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ingested != 6 || rep.Batches != 3 {
		t.Fatalf("reply = %+v, want ingested 6 in 3 batches", rep)
	}
	if got := srv.Store().Names(); len(got) != 2 {
		t.Fatalf("stores = %v, want t1/users + t2/users", got)
	}
	e1, _ := srv.Store().Estimate("t1/users")
	e2, _ := srv.Store().Estimate("t2/users")
	if e1.AllTime != 5 || e2.AllTime != 1 {
		t.Fatalf("estimates = %v / %v, want 5 / 1", e1.AllTime, e2.AllTime)
	}
}

// TestIngestEmptyBodyCreatesStore: an empty body — newline or JSON —
// still creates the ?store= target (pre-create semantics), and a
// missing name stays 400.
func TestIngestEmptyBodyCreatesStore(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))
	for _, ct := range []string{"text/plain", "application/json"} {
		name := "empty/" + ct[:4]
		resp, body := post(t, hs.URL+"/v1/ingest?store="+name, ct, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s empty body: HTTP %d: %s", ct, resp.StatusCode, body)
		}
		if _, err := srv.Store().Estimate(name); err != nil {
			t.Fatalf("%s empty body did not create store: %v", ct, err)
		}
		resp, _ = post(t, hs.URL+"/v1/ingest", ct, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s empty body without store name: HTTP %d, want 400", ct, resp.StatusCode)
		}
	}
}

// TestIngestOversizeKeyRejected: a single line longer than maxKeyBytes
// fails with 400 instead of growing the scan buffer without bound.
func TestIngestOversizeKeyRejected(t *testing.T) {
	_, hs := newTestServer(t, testConfig(""))
	huge := bytes.Repeat([]byte{'x'}, maxKeyBytes+16)
	resp, body := post(t, hs.URL+"/v1/ingest?store=huge/a", "text/plain", huge)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400; body: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("exceeds")) {
		t.Fatalf("error body %q does not mention the size limit", body)
	}
}

// TestEstimateContentType: success and error responses both carry
// application/json.
func TestEstimateContentType(t *testing.T) {
	_, hs := newTestServer(t, testConfig(""))
	post(t, hs.URL+"/v1/ingest?store=ct/a", "text/plain", []byte("one\n"))
	resp, _ := get(t, hs.URL+"/v1/estimate?store=ct/a")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("estimate Content-Type = %q, want application/json", ct)
	}
	resp, _ = get(t, hs.URL+"/v1/estimate?store=ct/missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing store: HTTP %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("404 Content-Type = %q, want application/json", ct)
	}
}

// TestOnListenReadyHook: Run reports the bound address through
// OnListen before serving — the contract behind knwd -ready-file.
func TestOnListenReadyHook(t *testing.T) {
	cfg := testConfig("")
	ready := make(chan net.Addr, 1)
	cfg.OnListen = func(a net.Addr) { ready <- a }
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0") }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("OnListen never fired")
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after OnListen: HTTP %d", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatal(err)
	}
}

// TestMetricsLifecycleE2E walks the whole daemon lifecycle — ingest
// both body forms, estimate, snapshot, merge, checkpoint — and checks
// the scrape reflects every stage. Heavier than the unit tests, so
// gated behind -short like the other e2e suites.
func TestMetricsLifecycleE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("metrics e2e skipped in -short mode")
	}
	cfg := Config{
		Store: store.Config{
			Kind:    knw.KindConcurrentF0,
			Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(7)},
			Window:  store.Window{Buckets: 4, Interval: 50 * time.Millisecond},
		},
		CheckpointDir: t.TempDir(),
	}
	srv, hs := newTestServer(t, cfg)

	const keysPerTenant = 2000
	tenants := []string{"t1/users", "t2/users", "t3/users"}
	for _, tn := range tenants {
		var payload bytes.Buffer
		for i := 0; i < keysPerTenant; i++ {
			fmt.Fprintf(&payload, "%s-key-%d\n", tn, i)
		}
		resp, body := post(t, hs.URL+"/v1/ingest?store="+tn, "text/plain", payload.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: HTTP %d: %s", tn, resp.StatusCode, body)
		}
		estimateOf(t, hs.URL, tn)
	}
	// Let at least one window interval elapse so an estimate rotates.
	time.Sleep(60 * time.Millisecond)
	estimateOf(t, hs.URL, tenants[0])

	// Merge t1 into a fresh aggregate store.
	_, env := get(t, hs.URL+"/v1/snapshot?store="+tenants[0])
	resp, body := post(t, hs.URL+"/v1/merge?store=agg/users", "application/octet-stream", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge: HTTP %d: %s", resp.StatusCode, body)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	m := scrape(t, hs.URL)
	checks := []struct {
		name string
		ok   func(v float64) bool
		desc string
	}{
		{`knwd_ingest_keys_total`, func(v float64) bool { return v == 3*keysPerTenant }, "all keys counted"},
		{`knwd_store_entries`, func(v float64) bool { return v == 4 }, "3 tenants + aggregate"},
		{`knwd_http_requests_total{route="/v1/ingest",code="200"}`, func(v float64) bool { return v == 3 }, "ingest requests"},
		{`knwd_http_requests_total{route="/v1/merge",code="200"}`, func(v float64) bool { return v == 1 }, "merge requests"},
		{`knwd_http_request_seconds_count{route="/v1/estimate"}`, func(v float64) bool { return v == 4 }, "estimate latency observations"},
		{`knwd_store_window_rotations_total`, func(v float64) bool { return v >= 1 }, "a rotation happened"},
		{`knwd_store_checkpoints_total`, func(v float64) bool { return v == 1 }, "checkpoint counted"},
		{`knwd_store_checkpoint_bytes`, func(v float64) bool { return v > 0 }, "checkpoint size recorded"},
		{`knwd_store_checkpoint_seconds_count`, func(v float64) bool { return v == 1 }, "checkpoint duration observed"},
		{`knwd_store_checkpoint_age_seconds`, func(v float64) bool { return v >= 0 && v < 60 }, "age since last checkpoint"},
	}
	for _, c := range checks {
		v, present := m[c.name]
		if !present {
			t.Errorf("scrape missing %s (%s)", c.name, c.desc)
			continue
		}
		if !c.ok(v) {
			t.Errorf("%s = %v: want %s", c.name, v, c.desc)
		}
	}
}
