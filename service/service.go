// Package service is knwd's HTTP layer: it binds a store.Store to a
// small versioned API (ingest, estimate, merge, snapshot) and runs the
// background checkpoint loop that makes the daemon restartable. The
// handlers are deliberately thin — every piece of sketch logic lives
// in the store and knw packages — so the same Server drives production
// listeners, httptest harnesses, and the in-process nodes of
// examples/service.
//
// API (all store names come from the required ?store= query parameter
// unless noted):
//
//	POST /v1/ingest    newline-delimited keys; JSON
//	                   {"store": "...", "keys": [...]} documents (the
//	                   JSON body may carry the store name itself); or
//	                   binary frames of pre-hashed keys (Content-Type
//	                   application/x-knw-frame, see internal/frame)
//	GET  /v1/estimate  → JSON store.Estimate
//	POST /v1/merge     body = a peer sketch envelope; folds it into the
//	                   named store (409 on kind/settings mismatch)
//	GET  /v1/snapshot  → the named store's envelope bytes
//	                   (&scope=window: the live window ring's union;
//	                   &scope=buckets: the per-bucket ring export the
//	                   cluster series gather ships)
//	PUT  /v1/snapshot  body = an envelope; replaces the named store's
//	                   all-time sketch (409 on mismatch)
//	GET  /v1/stores    → JSON {"stores": [...], "kind": "..."}
//	GET  /v1/query     set algebra over ?stores=a,b[,...]: union,
//	                   intersection, Jaccard, differences, Hamming (L0)
//	                   by inclusion–exclusion over snapshots;
//	                   &scope=window restricts to live windows; cluster
//	                   nodes add &mode=local|gather
//	GET  /v1/series    → per-bucket cardinality time-series of the
//	                   ?store= window ring over &span=, with span union
//	                   and rate-of-change fields; cluster nodes gather
//	                   rings and union same-epoch buckets
//	POST /v1/cluster/ingest    cluster mode: route keys to ring owners
//	GET  /v1/cluster/estimate  cluster mode: ?mode=local the merged
//	                   gossip view (O(1), X-KNW-Staleness header),
//	                   ?mode=gather the scatter-gather union; local is
//	                   the default once gossip is on
//	GET  /v1/cluster/info      cluster mode: membership and settings
//	POST /v1/cluster/join      membership: add {"url": ...} to the ring
//	                   and cut over (two-phase: union routing + sketch
//	                   handoff, then epoch commit)
//	POST /v1/cluster/leave     membership: remove a member (alive —
//	                   drained first — or dead) and cut over
//	GET/POST /v1/cluster/ring  membership control plane: descriptor
//	                   state; prepare (KNWM body); ?phase=commit
//	POST /v1/cluster/handoff   rebalance data plane: a KNWH envelope
//	                   stream from a re-owned peer, merged on arrival
//	GET  /v1/cluster/handoff/status  per-epoch handoff progress
//	GET  /v1/gossip/digest     gossip: this node's version vector
//	POST /v1/gossip/pull       gossip: delta/full envelopes since the
//	                   caller's base versions
//	GET  /metrics      → Prometheus text exposition (service + store
//	                   instruments; see internal/metrics)
//	GET  /healthz      → 200 once serving
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	knw "repro"
	"repro/cluster"
	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/store"
)

// maxBodyBytes bounds any request body; shared with the cluster
// router so the routed and leaf ingest paths can never drift apart.
const maxBodyBytes = httpx.MaxBodyBytes

// Config configures a Server.
type Config struct {
	// Store configures the underlying sketch registry.
	Store store.Config
	// CheckpointDir enables envelope-backed checkpointing: restored on
	// New, written every CheckpointEvery by Run, and once more on
	// shutdown. Empty disables persistence.
	CheckpointDir string
	// CheckpointEvery is the background checkpoint interval (default
	// 30s). A restart loses at most this much ingestion.
	CheckpointEvery time.Duration
	// Log receives structured operational logs (startup, checkpoints,
	// slow requests). Nil discards them. The cluster layer inherits it
	// unless Cluster.Log is set.
	Log *slog.Logger
	// Trace configures request tracing (sampling rate, slow threshold,
	// ring size; see internal/trace). The zero value disables
	// probabilistic sampling but still honors sampled X-KNW-Trace
	// headers from upstream, so cross-node traces stay complete.
	Trace trace.Config
	// Metrics is the instrument registry /metrics serves. Nil means the
	// Server creates its own. The store shares it (unless Store.Metrics
	// is already set), so one scrape covers both layers.
	Metrics *metrics.Registry
	// OnListen, when non-nil, is called once with the bound listener
	// address right after Run's net.Listen succeeds — the readiness
	// hook behind knwd's -ready-file flag.
	OnListen func(net.Addr)
	// Cluster, when non-nil, mounts the /v1/cluster/... routes: this
	// node joins the described static cluster, routing ingested keys to
	// their ring owners and scatter-gathering estimates (see package
	// cluster). The plain /v1/ingest route stays strictly local — it is
	// the leaf API cluster forwarding itself targets, so routed traffic
	// can never loop.
	Cluster *cluster.Config
	// JoinVia, when set on a cluster node, makes serve() announce this
	// node to an existing member (POST {url: self} to
	// JoinVia/v1/cluster/join) once the listener is up, retrying with
	// backoff until the join commits — knwd's -join flag. The node
	// starts on its boot ring (typically just itself) and cuts over to
	// the cluster's epoch during the join's prepare phase.
	JoinVia string
	// DrainOnShutdown makes a cancelled Run leave the ring first —
	// Drain() hands this node's re-owned sketches to the surviving
	// owners and commits the shrunken epoch before the listener stops —
	// knwd's -drain flag. Without it the node just stops serving and
	// peers mark it dead.
	DrainOnShutdown bool
	// Pprof mounts net/http/pprof under /debug/pprof/ on the service
	// mux (knwd's -pprof flag), so the ingest hot path can be profiled
	// in place. Off by default: the endpoints expose goroutine dumps
	// and heap contents, which do not belong on an open ingest port.
	Pprof bool
}

// Server is the knwd HTTP service: a store, its handlers, and the
// checkpoint loop.
type Server struct {
	cfg    Config
	st     *store.Store
	mux    *http.ServeMux
	reg    *metrics.Registry
	met    serviceMetrics
	log    *slog.Logger
	tracer *trace.Tracer
	router *cluster.Router // non-nil iff Config.Cluster was given
	batch  *batchSizer     // adaptive ingest flush batch size
	bufs   sync.Pool       // pooled request-body scratch (merge, restore)
	snaps  sync.Pool       // pooled *[]byte envelope scratch for snapshot responses
}

// New builds a Server and, when a checkpoint directory is configured,
// restores the latest checkpoint from it.
func New(cfg Config) (*Server, error) {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = trace.DiscardLogger()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Store.Metrics == nil {
		cfg.Store.Metrics = cfg.Metrics
	}
	if cfg.Trace.Log == nil {
		cfg.Trace.Log = cfg.Log
	}
	if cfg.Trace.Node == "" && cfg.Cluster != nil {
		cfg.Trace.Node = cfg.Cluster.Self
	}
	// The stage vec is created before the store so both layers (and the
	// cluster router below) observe into one knwd_stage_seconds family.
	met := newServiceMetrics(cfg.Metrics)
	if cfg.Store.Stages == nil {
		cfg.Store.Stages = met.stages
	}
	st, err := store.New(cfg.Store)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, st: st, reg: cfg.Metrics, met: met, log: cfg.Log,
		tracer: trace.New(cfg.Trace), batch: newBatchSizer()}
	s.bufs.New = func() any { return new(bytes.Buffer) }
	s.snaps.New = func() any { return new([]byte) }
	cfg.Metrics.NewGaugeFunc("knwd_ingest_batch_size",
		"Current adaptive ingest flush batch size (keys per store flush).",
		func() float64 { return float64(s.batch.get()) })
	if cfg.CheckpointDir != "" {
		n, err := st.LoadCheckpoint(cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("service: restoring checkpoint: %w", err)
		}
		if n > 0 {
			s.log.Info("restored checkpoint", "stores", n, "dir", cfg.CheckpointDir)
		}
	}
	s.mux = http.NewServeMux()
	s.handle("POST /v1/ingest", "/v1/ingest", s.handleIngest)
	s.handle("GET /v1/estimate", "/v1/estimate", s.handleEstimate)
	s.handle("POST /v1/merge", "/v1/merge", s.handleMerge)
	s.handle("GET /v1/snapshot", "/v1/snapshot", s.handleSnapshotGet)
	s.handle("PUT /v1/snapshot", "/v1/snapshot", s.handleSnapshotPut)
	s.handle("GET /v1/stores", "/v1/stores", s.handleStores)
	s.handle("GET /v1/query", "/v1/query", s.handleQuery)
	s.handle("GET /v1/series", "/v1/series", s.handleSeries)
	s.handle("GET /v1/debug/traces", "/v1/debug/traces", s.handleDebugTraces)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	if cfg.Cluster != nil {
		cc := *cfg.Cluster
		if cc.Log == nil {
			cc.Log = cfg.Log
		}
		if cc.Tracer == nil {
			cc.Tracer = s.tracer
		}
		if cc.Stages == nil {
			cc.Stages = met.stages
		}
		rt, err := cluster.New(cc, st, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		s.router = rt
		s.handle("POST /v1/cluster/ingest", "/v1/cluster/ingest", rt.HandleIngest)
		s.handle("GET /v1/cluster/estimate", "/v1/cluster/estimate", rt.HandleEstimate)
		s.handle("GET /v1/cluster/info", "/v1/cluster/info", rt.HandleInfo)
		s.handle("POST /v1/cluster/join", "/v1/cluster/join", rt.HandleJoin)
		s.handle("POST /v1/cluster/leave", "/v1/cluster/leave", rt.HandleLeave)
		s.handle("/v1/cluster/ring", "/v1/cluster/ring", rt.HandleRing)
		s.handle("POST /v1/cluster/handoff", "/v1/cluster/handoff", rt.HandleHandoff)
		s.handle("GET /v1/cluster/handoff/status", "/v1/cluster/handoff/status", rt.HandleHandoffStatus)
		if rt.GossipEnabled() {
			s.handle("GET /v1/gossip/digest", "/v1/gossip/digest", rt.HandleGossipDigest)
			s.handle("POST /v1/gossip/pull", "/v1/gossip/pull", rt.HandleGossipPull)
			if cfg.CheckpointDir != "" {
				n, err := rt.Replicas().LoadCheckpoint(cfg.CheckpointDir)
				if err != nil {
					// A lost replica view is not data loss — the next gossip
					// sweep rebuilds it — so restore best-effort.
					s.log.Warn("replica view restore failed", "err", err)
				} else if n > 0 {
					s.log.Info("restored replica envelopes", "envelopes", n, "dir", cfg.CheckpointDir)
				}
			}
		}
	}
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Cluster returns the node's cluster router (nil on single-node
// servers) — in-process access for tests and embeddings.
func (s *Server) Cluster() *cluster.Router { return s.router }

// Tracer exposes the request tracer (tests, embeddings).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Metrics exposes the registry (embedding, tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Store exposes the underlying registry (tests, in-process embedding).
func (s *Server) Store() *store.Store { return s.st }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Checkpoint writes a full checkpoint now (no-op without a configured
// directory), plus the replica view when gossip is on.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	s.checkpointReplicas()
	return s.st.Checkpoint(s.cfg.CheckpointDir)
}

// checkpointTick is the background-loop variant: deltas against the
// last full checkpoint file, with a full rewrite every Nth tick (see
// store.Config.CheckpointFullEvery).
func (s *Server) checkpointTick() error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	s.checkpointReplicas()
	return s.st.CheckpointIncremental(s.cfg.CheckpointDir)
}

// checkpointReplicas persists the gossip replica view beside the store
// checkpoint. Best-effort: the view is reconstructible from peers.
func (s *Server) checkpointReplicas() {
	if s.router == nil || !s.router.GossipEnabled() {
		return
	}
	if err := s.router.Replicas().Checkpoint(s.cfg.CheckpointDir); err != nil {
		s.log.Warn("replica checkpoint failed", "err", err)
	}
}

// Run serves the API on addr until ctx is cancelled, checkpointing
// every CheckpointEvery. On cancellation it drains in-flight requests
// and writes a final checkpoint, so a clean shutdown loses nothing.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	if s.cfg.OnListen != nil {
		s.cfg.OnListen(ln.Addr())
	}
	if s.cfg.Trace.Node == "" {
		// Single-node daemons get their span node name from the bound
		// address (cluster nodes already carry their self URL).
		s.tracer.SetNode(ln.Addr().String())
	}
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.log.Info("serving", "addr", ln.Addr().String(), "kind", s.st.Kind().String(),
		"checkpoint_dir", s.cfg.CheckpointDir, "checkpoint_every", s.cfg.CheckpointEvery.String(),
		"trace_sample", s.cfg.Trace.Sample, "trace_slow", s.cfg.Trace.Slow.String())
	if s.router != nil {
		s.router.StartGossip()
		defer s.router.StopGossip()
		defer s.router.Close()
		if s.cfg.JoinVia != "" {
			go s.announceJoin(ctx)
		}
	}

	ticker := time.NewTicker(s.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := s.checkpointTick(); err != nil {
				s.log.Warn("checkpoint failed", "err", err)
			}
		case err := <-errc:
			return err
		case <-ctx.Done():
			// Drain before the listener stops: the handoff push and the
			// peers' commit broadcast both need this node still serving.
			if s.cfg.DrainOnShutdown && s.router != nil {
				if res, err := s.router.Drain(); err != nil {
					s.log.Warn("drain failed; shutting down without handoff", "err", err)
				} else if res.Changed {
					s.log.Info("drained from ring", "epoch", res.Epoch, "members", len(res.Members))
				}
			}
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			serr := hs.Shutdown(shutCtx)
			<-errc // Serve has returned http.ErrServerClosed
			// Quiesce gossip before the final checkpoint so the persisted
			// replica view is not mid-splice.
			if s.router != nil {
				s.router.StopGossip()
			}
			// Stop the store's epoch loop and drain pending deltas so
			// the final checkpoint captures every acknowledged write.
			s.st.Close()
			if err := s.Checkpoint(); err != nil {
				return fmt.Errorf("service: final checkpoint: %w", err)
			}
			s.log.Info("shut down cleanly, final checkpoint written")
			return serr
		}
	}
}

// announceJoin asks an existing cluster member to admit this node
// (Config.JoinVia): POST {"url": self} to its /v1/cluster/join,
// retrying with capped backoff until the join commits or ctx ends.
// Joining is driven by the seed member — it computes the new epoch,
// streams re-owned sketches here, and commits — so this side only has
// to keep asking; the request is idempotent once membership sticks.
func (s *Server) announceJoin(ctx context.Context) {
	self := s.cfg.Cluster.Self
	body, _ := json.Marshal(map[string]string{"url": self})
	backoff := 200 * time.Millisecond
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			s.cfg.JoinVia+"/v1/cluster/join", bytes.NewReader(body))
		if err != nil {
			s.log.Error("join request build failed", "via", s.cfg.JoinVia, "err", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				s.log.Info("joined cluster", "via", s.cfg.JoinVia,
					"epoch", s.router.Epoch(), "attempt", attempt)
				return
			}
			err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		}
		s.log.Warn("join attempt failed", "via", s.cfg.JoinVia,
			"attempt", attempt, "err", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// --- handlers -------------------------------------------------------

// ingestRequest is the JSON body form of POST /v1/ingest. A body may
// carry any number of these documents (NDJSON or concatenated); each
// routes to its own store. See ingest.go for the streaming consumer.
type ingestRequest struct {
	Store string   `json:"store"`
	Keys  []string `json:"keys"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	view := r.URL.Query().Get("view")
	switch view {
	case "merged":
		if s.router == nil || !s.router.GossipEnabled() {
			s.fail(w, http.StatusBadRequest,
				errors.New("view=merged needs gossip replication (-gossip-interval)"))
			return
		}
	case "":
		if s.router == nil || !s.router.GossipEnabled() {
			view = "shard"
		}
	case "shard":
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown estimate view %q", view))
		return
	}
	// With gossip on, /v1/estimate answers from the merged local+replica
	// view by default — O(1), cluster-wide, bounded staleness — so "how
	// many distinct users" needs no scatter-gather. view=shard keeps the
	// raw this-node-only estimate reachable (debugging, shard balance).
	if view != "shard" {
		est, err := s.router.LocalEstimate(name)
		if err != nil {
			s.failStore(w, err)
			return
		}
		w.Header().Set(cluster.StalenessHeader, fmt.Sprintf("%.3f", est.StalenessSeconds))
		s.reply(w, http.StatusOK, est)
		return
	}
	est, err := s.st.Estimate(name)
	if err != nil {
		s.failStore(w, err)
		return
	}
	s.reply(w, http.StatusOK, est)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	buf, done := s.readBody(w, r)
	if !done {
		return
	}
	defer s.putBuf(buf)
	if err := s.st.Merge(name, buf.Bytes()); err != nil {
		s.failStore(w, err)
		return
	}
	s.reply(w, http.StatusOK, map[string]any{"store": name, "merged": true})
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	// The grown slice is stored back into the pooled holder, so
	// steady-state snapshots reuse one encode buffer per concurrent
	// request instead of reallocating the envelope each time.
	p := s.snaps.Get().(*[]byte)
	defer s.snaps.Put(p)
	var env []byte
	var err error
	switch scope := r.URL.Query().Get("scope"); scope {
	case "", "all":
		env, err = s.st.Snapshot(r.URL.Query().Get("store"), (*p)[:0])
	case "window":
		// The union-of-the-live-ring envelope: what cluster peers gather
		// to serve windowed estimates without shipping bucket state.
		env, err = s.st.WindowSnapshot(r.URL.Query().Get("store"), (*p)[:0])
	case "buckets":
		// The per-bucket ring export (KNWB): what a cluster series
		// gather scatters for. Preserves bucket boundaries so same-epoch
		// buckets union across nodes, at N envelopes of cost.
		var rs store.RingSnapshot
		if rs, err = s.st.RingSnapshot(r.URL.Query().Get("store")); err == nil {
			env = rs.Encode((*p)[:0])
		}
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown snapshot scope %q", scope))
		return
	}
	if err != nil {
		s.failStore(w, err)
		return
	}
	*p = env
	s.met.snapshotBytes.Add(uint64(len(env)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(env)))
	_, _ = w.Write(env)
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	buf, done := s.readBody(w, r)
	if !done {
		return
	}
	defer s.putBuf(buf)
	if err := s.st.Restore(name, buf.Bytes()); err != nil {
		s.failStore(w, err)
		return
	}
	s.reply(w, http.StatusOK, map[string]any{"store": name, "restored": true})
}

func (s *Server) handleStores(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, map[string]any{
		"stores": s.st.Names(),
		"kind":   s.st.Kind().String(),
	})
}

// --- plumbing -------------------------------------------------------

func (s *Server) getBuf() *bytes.Buffer {
	buf := s.bufs.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func (s *Server) putBuf(buf *bytes.Buffer) { s.bufs.Put(buf) }

// readBody reads the (size-capped) request body into a pooled buffer.
// On failure it writes the error response itself and reports done =
// false; the caller returns the buffer with putBuf only when done.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, bool) {
	buf := s.getBuf()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		s.putBuf(buf)
		s.fail(w, readStatus(err), fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return buf, true
}

// readStatus maps a request-body read failure to a status (shared
// with the cluster router; see internal/httpx).
func readStatus(err error) int { return httpx.ReadStatus(err) }

// storeStatus maps store/knw errors to status codes: unknown stores
// are 404, kind/settings mismatches (foreign envelopes) are 409,
// anything else — bad names, corrupt payloads — is 400.
func storeStatus(err error) int {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, knw.ErrIncompatible):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) failStore(w http.ResponseWriter, err error) {
	s.fail(w, storeStatus(err), err)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	httpx.Fail(w, status, err)
}

func (s *Server) reply(w http.ResponseWriter, status int, v any) {
	httpx.Reply(w, status, v)
}
