package service

import (
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/trace"
)

// Binary-frame ingest: Content-Type application/x-knw-frame bodies
// carry pre-hashed uint64 keys in the internal/frame format, decoded
// incrementally and fed straight into Store.IngestHashed — no string
// materialization, no per-key allocation, no JSON. This is the fast
// path knwload -codec binary and the cluster forwarder use; the
// streaming contract (incremental flushes, partial progress on error,
// create-on-empty) matches the newline and JSON forms exactly.

// frameScanner is the pooled per-request decode state: the frame scan
// buffer and the flush batch.
type frameScanner struct {
	buf  []byte
	keys []uint64
}

var frameScanners = sync.Pool{New: func() any {
	return &frameScanner{
		buf:  make([]byte, ingestChunkBytes),
		keys: make([]uint64, batchStart),
	}
}}

func (fs *frameScanner) release() {
	if len(fs.buf) > 4*ingestChunkBytes {
		fs.buf = make([]byte, ingestChunkBytes)
	}
	if cap(fs.keys) > 4*batchStart {
		// The adaptive sizer can grow batches to batchMax; don't let
		// every pooled scanner pin a max-size key buffer forever.
		fs.keys = make([]uint64, batchStart)
	}
	frameScanners.Put(fs)
}

// batch returns a key buffer of length n.
func (fs *frameScanner) batch(n int) []uint64 {
	if cap(fs.keys) < n {
		fs.keys = make([]uint64, n)
	}
	return fs.keys[:n]
}

// countingReader feeds the ingest byte counter on every read, so the
// bytes/keys dashboards cover all three codecs alike.
type countingReader struct {
	r io.Reader
	n *uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	*c.n += uint64(n)
	return n, err
}

// storeError tags a store rejection so the error→status mapping uses
// the store codes (404/409/400) instead of the body-read ones.
type storeError struct{ err error }

func (e *storeError) Error() string { return e.err.Error() }
func (e *storeError) Unwrap() error { return e.err }

// ingestFrame streams a binary frame body into the store. Docs with an
// empty name target the ?store= query parameter; a header-only frame
// creates the query target, and a zero-count doc creates its named
// store — the same create-on-empty contract as the other codecs.
func (s *Server) ingestFrame(w http.ResponseWriter, r *http.Request, name string) {
	fs := frameScanners.Get().(*frameScanner)
	defer fs.release()
	var bodyBytes uint64
	defer func() { s.met.ingestBytes.Add(bodyBytes) }()
	fr := frame.NewReader(
		&countingReader{r: http.MaxBytesReader(w, r.Body, maxBodyBytes), n: &bodyBytes},
		fs.buf)
	if err := fr.ReadHeader(); err != nil {
		s.failIngest(w, readStatus(err), err, 0)
		return
	}
	start := time.Now()
	var ingestDur time.Duration
	total, docs := 0, 0
	last := name
	for {
		nameView, _, err := fr.NextDoc()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			s.failIngest(w, readStatus(err), err, total)
			return
		}
		target := name
		if len(nameView) > 0 {
			target = string(nameView)
		}
		ingested, dur, err := s.ingestFrameDoc(fr, fs, target)
		total += ingested
		ingestDur += dur
		if err != nil {
			status := readStatus(err)
			var serr *storeError
			if errors.As(err, &serr) {
				status = storeStatus(serr.err)
			}
			s.failIngest(w, status, err, total)
			return
		}
		docs++
		last = target
	}
	if docs == 0 {
		// Header-only frame: still create the ?store= target, matching
		// the empty newline body and zero-document JSON stream.
		if err := s.st.IngestHashed(name, nil); err != nil {
			s.failIngest(w, storeStatus(err), err, total)
			return
		}
	}
	s.noteIngest(trace.FromContext(r.Context()), last, total, start, ingestDur)
	s.reply(w, http.StatusOK, map[string]any{"store": last, "ingested": total, "batches": docs})
}

// ingestFrameDoc drains one doc's keys into target in adaptive-size
// batches. Each batch is filled completely before it is ingested (Keys
// returns whatever the scan buffer holds, which tracks network read
// boundaries): full batches keep the per-call overhead amortized, and
// they make the store's ingest call sequence a function of the frame
// alone — which is what lets replicas fed the same frames converge on
// byte-identical sketch state (DESIGN.md §18 has the exact
// conditions). A zero-count doc still creates its store.
func (s *Server) ingestFrameDoc(fr *frame.Reader, fs *frameScanner, target string) (int, time.Duration, error) {
	ingested := 0
	var dur time.Duration
	for {
		batch := fs.batch(s.batch.get())
		fill := 0
		var rerr error
		for fill < len(batch) {
			n, err := fr.Keys(batch[fill:])
			fill += n
			if err != nil {
				rerr = err
				break
			}
			if n == 0 {
				break // doc exhausted
			}
		}
		if fill > 0 {
			t0 := time.Now()
			if serr := s.st.IngestHashed(target, batch[:fill]); serr != nil {
				return ingested, dur, &storeError{err: serr}
			}
			d := time.Since(t0)
			dur += d
			s.batch.observe(fill, d)
			ingested += fill
			s.met.ingestKeys.Add(uint64(fill))
		}
		if rerr != nil {
			return ingested, dur, rerr
		}
		if fill < len(batch) {
			break
		}
	}
	if ingested == 0 {
		// Zero-count doc: create the named store, like a JSON document
		// with empty keys.
		if serr := s.st.IngestHashed(target, nil); serr != nil {
			return ingested, dur, &storeError{err: serr}
		}
	}
	return ingested, dur, nil
}
