package service

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// serviceMetrics are the HTTP-layer instruments. Store-layer
// instruments (entries, rotations, checkpoints) live in store/ and
// share the same registry, so one GET /metrics scrape covers the whole
// daemon.
type serviceMetrics struct {
	requests      *metrics.CounterVec   // route, code
	latency       *metrics.HistogramVec // route
	ingestKeys    *metrics.Counter      // keys accepted over HTTP
	ingestBytes   *metrics.Counter      // raw ingest body bytes read
	snapshotBytes *metrics.Counter      // envelope bytes served by GET /v1/snapshot
}

func newServiceMetrics(reg *metrics.Registry) serviceMetrics {
	return serviceMetrics{
		requests: reg.NewCounterVec("knwd_http_requests_total",
			"HTTP requests by route and status code.", "route", "code"),
		latency: reg.NewHistogramVec("knwd_http_request_seconds",
			"HTTP request handling latency.", metrics.DefBuckets, "route"),
		ingestKeys: reg.NewCounter("knwd_ingest_keys_total",
			"Keys accepted through POST /v1/ingest."),
		ingestBytes: reg.NewCounter("knwd_ingest_bytes_total",
			"Request body bytes read by POST /v1/ingest."),
		snapshotBytes: reg.NewCounter("knwd_snapshot_bytes_total",
			"Envelope bytes served by GET /v1/snapshot."),
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// handle mounts h on the mux wrapped with per-route request counting
// and latency observation. route is the metric label (the pattern
// without its method).
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.requests.With(route, strconv.Itoa(sw.code)).Inc()
		s.met.latency.With(route).Observe(time.Since(start).Seconds())
	})
}
