package service

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/version"
)

// serviceMetrics are the HTTP-layer instruments. Store-layer
// instruments (entries, rotations, checkpoints) live in store/ and
// share the same registry, so one GET /metrics scrape covers the whole
// daemon.
type serviceMetrics struct {
	requests      *metrics.CounterVec   // route, code
	latency       *metrics.HistogramVec // route
	ingestKeys    *metrics.Counter      // keys accepted over HTTP
	ingestBytes   *metrics.Counter      // raw ingest body bytes read
	snapshotBytes *metrics.Counter      // envelope bytes served by GET /v1/snapshot

	// stages is the daemon-wide knwd_stage_seconds pipeline histogram:
	// the service observes the request-facing stages (body_scan,
	// store_ingest), while the store and cluster layers observe theirs
	// (slot_claim, hash, append, epoch_merge, peer_forward, gossip_*)
	// into the same family. Handles for the hot stages are cached so
	// the ingest path never takes the vec's series-lookup lock.
	stages           *metrics.HistogramVec // stage
	stageBodyScan    *metrics.Histogram
	stageStoreIngest *metrics.Histogram
}

// stageBuckets spread 1µs..~4s: stage shares range from sub-batch
// sketch appends to whole slow requests.
var stageBuckets = metrics.ExponentialBuckets(1e-6, 4, 12)

func newServiceMetrics(reg *metrics.Registry) serviceMetrics {
	m := serviceMetrics{
		requests: reg.NewCounterVec("knwd_http_requests_total",
			"HTTP requests by route and status code.", "route", "code"),
		latency: reg.NewHistogramVec("knwd_http_request_seconds",
			"HTTP request handling latency.", metrics.DefBuckets, "route"),
		ingestKeys: reg.NewCounter("knwd_ingest_keys_total",
			"Keys accepted through POST /v1/ingest."),
		ingestBytes: reg.NewCounter("knwd_ingest_bytes_total",
			"Request body bytes read by POST /v1/ingest."),
		snapshotBytes: reg.NewCounter("knwd_snapshot_bytes_total",
			"Envelope bytes served by GET /v1/snapshot."),
		stages: reg.NewHistogramVec("knwd_stage_seconds",
			"Server-side pipeline stage latency, labeled by stage (body_scan, "+
				"hash, append, slot_claim, epoch_merge, store_ingest, peer_forward, "+
				"gossip_pull, gossip_apply, set_algebra, series).", stageBuckets, "stage"),
	}
	m.stageBodyScan = m.stages.With("body_scan")
	m.stageStoreIngest = m.stages.With("store_ingest")
	reg.NewGaugeVec("knwd_build_info",
		"Build identity; always 1. Labels carry the version, Go runtime, and GOMAXPROCS.",
		"version", "goversion", "gomaxprocs").
		With(version.Version, runtime.Version(), strconv.Itoa(runtime.GOMAXPROCS(0))).Set(1)
	return m
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// handle mounts h on the mux wrapped with per-route request counting,
// latency observation, and request tracing. route is the metric label
// (the pattern without its method). Tracing costs one header lookup
// when the request is unsampled; when sampled (locally, or because the
// caller forwarded a sampled X-KNW-Trace header), the span rides the
// request context for handlers to annotate, and is recorded at the
// end.
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		act := s.tracer.StartRequest(route, r.Header.Get(trace.Header))
		if act != nil {
			r = r.WithContext(trace.NewContext(r.Context(), act))
		}
		h(sw, r)
		dur := time.Since(start)
		s.met.requests.With(route, strconv.Itoa(sw.code)).Inc()
		s.met.latency.With(route).Observe(dur.Seconds())
		s.tracer.FinishRequest(act, route, sw.code, start, dur)
	})
}
