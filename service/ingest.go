package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/trace"
	"repro/store"
)

// Streaming ingest: POST /v1/ingest bodies are consumed incrementally
// — a pooled fixed-size read buffer scanned for newline-delimited keys
// (or a json.Decoder loop for JSON bodies), flushed to the store in
// batches of ingestBatchKeys — instead of buffering the whole body.
// A single connection can therefore push an arbitrarily long key
// stream at batched-AddBatch speed with O(batch) memory, and the JSON
// form accepts a *sequence* of {"store","keys"} documents (NDJSON or
// concatenated), each routed to its own store: one connection, many
// tenants.
//
// Flushes are incremental, so ingest is not atomic: a body that fails
// mid-stream (client abort, oversize key, corrupt JSON document) has
// already landed every previously flushed batch. That is the right
// trade for a cardinality sketch — re-sending the same keys is
// idempotent for distinct counting — and the error response reports
// how many keys were ingested before the failure.
const (
	// ingestBatchKeys is the pooled key-buffer capacity (the initial
	// flush granularity; the live flush size adapts around it — see
	// adaptive.go).
	ingestBatchKeys = 4096
	// ingestChunkBytes is the pooled read-buffer size.
	ingestChunkBytes = 64 << 10
	// maxKeyBytes caps one newline-delimited key (shared with the
	// cluster router's scanner; see internal/httpx).
	maxKeyBytes = httpx.MaxKeyBytes
)

// ingestScanner is the pooled per-request scan state.
type ingestScanner struct {
	buf  []byte
	keys []string
}

var ingestScanners = sync.Pool{New: func() any {
	return &ingestScanner{
		buf:  make([]byte, ingestChunkBytes),
		keys: make([]string, 0, ingestBatchKeys),
	}
}}

func (sc *ingestScanner) release() {
	if len(sc.buf) > 4*ingestChunkBytes {
		// A huge key grew the buffer; don't let one outlier request
		// pin megabytes in the pool forever.
		sc.buf = make([]byte, ingestChunkBytes)
	}
	if cap(sc.keys) > 4*ingestBatchKeys {
		// Same for batches the adaptive sizer grew toward batchMax.
		sc.keys = make([]string, 0, ingestBatchKeys)
	}
	clear(sc.keys) // drop string references so flushed keys can be collected
	sc.keys = sc.keys[:0]
	ingestScanners.Put(sc)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	ct := r.Header.Get("Content-Type")
	switch {
	case httpx.IsFrame(ct):
		s.ingestFrame(w, r, name)
	case isJSON(ct):
		s.ingestJSON(w, r, name)
	default:
		s.ingestLines(w, r, name)
	}
}

func isJSON(contentType string) bool { return httpx.IsJSON(contentType) }

// ingestLines streams a newline-delimited body into the named store.
func (s *Server) ingestLines(w http.ResponseWriter, r *http.Request, name string) {
	// Validate up front: with incremental flushing a bad name should
	// fail before any of the body is consumed.
	if err := store.ValidateName(name); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	sc := ingestScanners.Get().(*ingestScanner)
	defer sc.release()

	start := time.Now()
	var ingestDur time.Duration
	total := 0
	flush := func() error {
		if len(sc.keys) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := s.st.Ingest(name, sc.keys); err != nil {
			return err
		}
		d := time.Since(t0)
		ingestDur += d
		s.batch.observe(len(sc.keys), d)
		total += len(sc.keys)
		s.met.ingestKeys.Add(uint64(len(sc.keys)))
		clear(sc.keys)
		sc.keys = sc.keys[:0]
		return nil
	}

	fill := 0 // length of the partial line parked at buf[:fill]
	for {
		if fill == len(sc.buf) {
			if len(sc.buf) >= maxKeyBytes {
				s.failIngest(w, http.StatusBadRequest,
					fmt.Errorf("ingest: key exceeds %d bytes", maxKeyBytes), total)
				return
			}
			grown := make([]byte, min(2*len(sc.buf), maxKeyBytes))
			copy(grown, sc.buf[:fill])
			sc.buf = grown
		}
		n, err := body.Read(sc.buf[fill:])
		s.met.ingestBytes.Add(uint64(n))
		data := sc.buf[:fill+n]
		for {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				break
			}
			if key := trimCR(data[:nl]); len(key) > 0 {
				sc.keys = append(sc.keys, string(key))
				if len(sc.keys) >= s.batch.get() {
					if ferr := flush(); ferr != nil {
						s.failIngest(w, storeStatus(ferr), ferr, total)
						return
					}
				}
			}
			data = data[nl+1:]
		}
		fill = copy(sc.buf, data)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			if key := trimCR(sc.buf[:fill]); len(key) > 0 {
				sc.keys = append(sc.keys, string(key)) // unterminated final line
			}
			if total == 0 && len(sc.keys) == 0 {
				// Empty body: still create the store (the pre-streaming
				// behavior, and what the JSON form does with empty keys).
				if ferr := s.st.Ingest(name, nil); ferr != nil {
					s.failIngest(w, storeStatus(ferr), ferr, total)
					return
				}
			}
			if ferr := flush(); ferr != nil {
				s.failIngest(w, storeStatus(ferr), ferr, total)
				return
			}
			s.noteIngest(trace.FromContext(r.Context()), name, total, start, ingestDur)
			s.reply(w, http.StatusOK, map[string]any{"store": name, "ingested": total})
			return
		default:
			// Mid-stream read failure (client abort, oversize body):
			// a JSON-bodied 400/413 like every other bad-request path,
			// never a bare 500.
			s.failIngest(w, readStatus(err), fmt.Errorf("reading body: %w", err), total)
			return
		}
	}
}

// ingestJSON consumes a stream of {"store","keys"} documents (a single
// object, NDJSON, or concatenated JSON), routing each document's batch
// to its own store. Documents without a store name fall back to the
// ?store= query parameter.
func (s *Server) ingestJSON(w http.ResponseWriter, r *http.Request, name string) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	// Count consumed body bytes on every exit path, error or not, so
	// bytes/keys dashboards stay consistent with the newline path.
	defer func() { s.met.ingestBytes.Add(uint64(dec.InputOffset())) }()
	start := time.Now()
	var ingestDur time.Duration
	total, docs := 0, 0
	last := name
	for {
		var req ingestRequest
		err := dec.Decode(&req)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			s.failIngest(w, readStatus(err), fmt.Errorf("decoding JSON body: %w", err), total)
			return
		}
		target := name
		if req.Store != "" {
			target = req.Store
		}
		t0 := time.Now()
		if err := s.st.Ingest(target, req.Keys); err != nil {
			s.failIngest(w, storeStatus(err), err, total)
			return
		}
		ingestDur += time.Since(t0)
		total += len(req.Keys)
		s.met.ingestKeys.Add(uint64(len(req.Keys)))
		docs++
		last = target
	}
	if docs == 0 {
		// Zero documents: still create the ?store= target, matching the
		// empty newline body (and 400 on a missing/invalid name).
		if err := s.st.Ingest(name, nil); err != nil {
			s.failIngest(w, storeStatus(err), err, total)
			return
		}
	}
	s.noteIngest(trace.FromContext(r.Context()), last, total, start, ingestDur)
	s.reply(w, http.StatusOK, map[string]any{"store": last, "ingested": total, "batches": docs})
}

// noteIngest attributes a finished ingest request's wall time to the
// two HTTP-layer stages — store_ingest (time inside Store.Ingest /
// IngestHashed) and body_scan (everything else: network reads, newline
// scanning, JSON or frame decoding) — and annotates the sampled span,
// if any. Called only on success paths; failed requests keep their
// latency in knwd_http_request_seconds alone.
func (s *Server) noteIngest(act *trace.Active, store string, keys int, start time.Time, ingest time.Duration) {
	scan := time.Since(start) - ingest
	if scan < 0 {
		scan = 0
	}
	s.met.stageBodyScan.Observe(scan.Seconds())
	s.met.stageStoreIngest.Observe(ingest.Seconds())
	if act != nil {
		act.SetStore(store)
		act.AddKeys(keys)
		act.Stage("body_scan", scan)
		act.Stage("store_ingest", ingest)
	}
}

// failIngest is fail plus the partial-progress count: callers that
// stream batches may have ingested keys before the failure, and a
// retrying client needs to know the request was not a no-op (re-sends
// are idempotent for distinct counting, so the safe recovery is to
// re-send the whole body).
func (s *Server) failIngest(w http.ResponseWriter, status int, err error, ingested int) {
	s.reply(w, status, map[string]any{"error": err.Error(), "ingested": ingested})
}

func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}
