package service

import (
	"sync/atomic"
	"time"
)

// batchSizer adapts the ingest flush batch size to the store's
// observed drain latency, AIMD-style: while full-batch flushes stay
// fast, the batch grows additively (fewer slot claims and metric
// updates per key); once flushes slow past the upper band — lock-free
// ingest still serializes on the entry drain eventually, and oversized
// batches stretch read-barrier tail latency — it halves. One sizer
// serves the whole server: every ingest route observes into it and
// reads the shared size, so the server converges on one operating
// point instead of per-connection guesses.
type batchSizer struct {
	size atomic.Int64
}

const (
	// batchStart is the initial flush batch size, the PR-4 fixed value.
	batchStart = 4096
	// batchMin / batchMax bound adaptation: below ~512 keys per flush
	// the per-batch overhead dominates again; above 64k one flush can
	// hold a read barrier for milliseconds.
	batchMin = 512
	batchMax = 64 << 10
	// batchStep is the additive growth per fast flush.
	batchStep = 512
	// batchGrowBelow / batchShrinkAbove are the latency bands: flushes
	// faster than the lower bound grow the batch, slower than the upper
	// bound shrink it, and the band between is stable.
	batchGrowBelow   = time.Millisecond
	batchShrinkAbove = 4 * time.Millisecond
)

func newBatchSizer() *batchSizer {
	b := &batchSizer{}
	b.size.Store(batchStart)
	return b
}

// get returns the current flush batch size.
func (b *batchSizer) get() int { return int(b.size.Load()) }

// observe records one flush of n keys taking d. Partial batches
// (n below the size in force) carry no signal about the batch size and
// are ignored. Concurrent observers race benignly: CAS keeps the size
// in bounds, and a lost update is just one skipped step.
func (b *batchSizer) observe(n int, d time.Duration) {
	cur := b.size.Load()
	if int64(n) < cur {
		return
	}
	switch {
	case d < batchGrowBelow && cur < batchMax:
		b.size.CompareAndSwap(cur, min(cur+batchStep, batchMax))
	case d > batchShrinkAbove && cur > batchMin:
		b.size.CompareAndSwap(cur, max(cur/2, batchMin))
	}
}
