package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	knw "repro"
	"repro/internal/frame"
	"repro/internal/httpx"
	"repro/store"
)

// frameBody builds a complete ingest frame from (store, keys) docs,
// hashing string keys through the server's own hash contract.
func frameBody(st *store.Store, docs ...struct {
	name string
	keys []string
}) []byte {
	buf := frame.AppendHeader(nil)
	for _, d := range docs {
		hashed := make([]uint64, len(d.keys))
		for i, k := range d.keys {
			hashed[i] = st.HashKey(k)
		}
		buf = frame.AppendDoc(buf, d.name, hashed)
	}
	return buf
}

type frameDoc = struct {
	name string
	keys []string
}

// TestIngestFrameEndToEnd drives the binary codec through the real
// HTTP stack: a two-doc frame (one named, one falling back to the
// ?store= target), response accounting, and estimates that match what
// the same keys produce through the string path.
func TestIngestFrameEndToEnd(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))
	body := frameBody(srv.Store(),
		frameDoc{name: "acme/users", keys: keyBatch("acme", 0, 3000)},
		frameDoc{name: "", keys: keyBatch("fallback", 0, 500)},
	)
	resp, out := post(t, hs.URL+"/v1/ingest?store=deflt/users", httpx.FrameContentType, body)
	if resp.StatusCode != 200 {
		t.Fatalf("frame ingest: HTTP %d: %s", resp.StatusCode, out)
	}
	var rep struct {
		Store    string `json:"store"`
		Ingested int    `json:"ingested"`
		Batches  int    `json:"batches"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("decoding %q: %v", out, err)
	}
	if rep.Ingested != 3500 || rep.Batches != 2 || rep.Store != "deflt/users" {
		t.Fatalf("report = %+v, want 3500 keys in 2 batches ending at deflt/users", rep)
	}
	for name, n := range map[string]float64{"acme/users": 3000, "deflt/users": 500} {
		est := estimateOf(t, hs.URL, name)
		if math.Abs(est.AllTime-n)/n > 0.20 {
			t.Fatalf("%s estimate %.0f, want ~%.0f", name, est.AllTime, n)
		}
	}
}

// TestIngestCodecsSnapshotIdentical is the byte-level equivalence
// check across all three ingest codecs: three seed-identical servers
// ingest the same key stream into the same store — one as newline
// text, one as NDJSON, one as pre-hashed binary frames — and must end
// with byte-identical sketch snapshots, because the frame's
// client-side hash is exactly the hash the server would have applied.
//
// The stream is sent as 500-key requests (below batchMin) so all three
// codecs perform the identical sequence of store ingest calls, and the
// background epoch loop is disabled so a mid-ingest drain can never
// hold a delta slot busy and shift the slot round-robin: sketch state
// is exact under any interleaving, but its byte encoding depends on
// how keys were split across delta slots, so byte-level comparison
// requires the fully deterministic regime.
func TestIngestCodecsSnapshotIdentical(t *testing.T) {
	const (
		name  = "codec/t"
		total = 5000
		step  = 500
	)
	snaps := make(map[string][]byte, 3)

	for _, codec := range []string{"newline", "json", "frame"} {
		cfg := testConfig("")
		cfg.Store.EpochInterval = -1 // drains only at read barriers
		srv, hs := newTestServer(t, cfg)
		for lo := 0; lo < total; lo += step {
			keys := keyBatch("codec", lo, lo+step)
			var (
				ct   string
				body []byte
			)
			switch codec {
			case "newline":
				ct = "text/plain"
				for _, k := range keys {
					body = append(append(body, k...), '\n')
				}
			case "json":
				ct = "application/json"
				body, _ = json.Marshal(map[string]any{"store": name, "keys": keys})
			case "frame":
				ct = httpx.FrameContentType
				body = frameBody(srv.Store(), frameDoc{name: name, keys: keys})
			}
			if resp, out := post(t, hs.URL+"/v1/ingest?store="+name, ct, body); resp.StatusCode != 200 {
				t.Fatalf("%s: HTTP %d: %s", codec, resp.StatusCode, out)
			}
		}
		snap, err := srv.Store().Snapshot(name, nil)
		if err != nil {
			t.Fatalf("%s snapshot: %v", codec, err)
		}
		snaps[codec] = snap
	}
	for _, codec := range []string{"json", "frame"} {
		if !bytes.Equal(snaps[codec], snaps["newline"]) {
			t.Fatalf("%s snapshot diverged from newline (codec paths not equivalent)", codec)
		}
	}
}

// TestIngestFrameErrors: malformed frames answer with a JSON error and
// the right status, and partial progress before the damage is kept.
func TestIngestFrameErrors(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))

	bad := binary.AppendUvarint(nil, 0xDEAD)
	bad = binary.AppendUvarint(bad, 1)
	resp, out := post(t, hs.URL+"/v1/ingest?store=f/x", httpx.FrameContentType, bad)
	if resp.StatusCode != 400 {
		t.Fatalf("bad magic: HTTP %d: %s", resp.StatusCode, out)
	}

	// A valid doc followed by a truncated one: the first doc's keys
	// must land even though the request fails.
	body := frameBody(srv.Store(), frameDoc{name: "f/ok", keys: keyBatch("k", 0, 100)})
	body = append(body, binary.AppendUvarint(nil, 4)...) // name len 4, then EOF
	resp, out = post(t, hs.URL+"/v1/ingest?store=f/x", httpx.FrameContentType, body)
	if resp.StatusCode != 400 {
		t.Fatalf("truncated frame: HTTP %d: %s", resp.StatusCode, out)
	}
	var rep struct {
		Ingested int `json:"ingested"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("decoding %q: %v", out, err)
	}
	if rep.Ingested != 100 {
		t.Fatalf("partial progress = %d keys, want 100", rep.Ingested)
	}
	if est := estimateOf(t, hs.URL, "f/ok"); est.AllTime < 80 {
		t.Fatalf("f/ok estimate %.0f after partial ingest, want ~100", est.AllTime)
	}
}

// FuzzBinaryFrame drives arbitrary bodies through the frame ingest
// path with adversarially small read chunks. Invariants: no panics,
// always a JSON response, and the ingested count never exceeds the
// whole 8-byte keys the body could possibly contain.
//
// Run with: go test -fuzz=FuzzBinaryFrame ./service
func FuzzBinaryFrame(f *testing.F) {
	valid := frame.AppendHeader(nil)
	valid = frame.AppendDoc(valid, "t/m", []uint64{1, 2, 3})
	valid = frame.AppendDoc(valid, "", []uint64{4})
	f.Add(valid, uint8(1))
	f.Add(frame.AppendHeader(nil), uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add(valid[:len(valid)-3], uint8(5)) // truncated mid-key
	f.Add(append(frame.AppendHeader(nil), 0xff, 0xff, 0xff, 0xff, 0xff), uint8(2))
	huge := binary.AppendUvarint(frame.AppendHeader(nil), 1<<20) // oversize name claim
	f.Add(huge, uint8(7))

	f.Fuzz(func(t *testing.T, body []byte, chunk uint8) {
		srv, err := New(Config{Store: store.Config{
			Kind: knw.KindF0,
			Options: []knw.Option{
				knw.WithEpsilon(0.3), knw.WithCopies(1), knw.WithK(32),
				knw.WithUniverseBits(16), knw.WithSeed(1),
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/ingest?store=fuzz/t", &chunkReader{
			data: body,
			n:    int(chunk)%31 + 1,
		})
		req.Header.Set("Content-Type", httpx.FrameContentType)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic

		var resp struct {
			Ingested *int `json:"ingested"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("non-JSON response (HTTP %d): %q", rec.Code, rec.Body.Bytes())
		}
		if resp.Ingested == nil {
			t.Fatalf("response missing ingested count (HTTP %d): %q", rec.Code, rec.Body.Bytes())
		}
		if limit := len(body) / frame.KeyBytes; *resp.Ingested > limit {
			t.Fatalf("ingested %d > %d possible keys in %d body bytes (HTTP %d)",
				*resp.Ingested, limit, len(body), rec.Code)
		}
	})
}
