package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	knw "repro"
	"repro/cluster"
	"repro/internal/trace"
	"repro/store"
)

// GET /v1/query and GET /v1/series — the query subsystem. Both are
// read-only compositions of snapshots the daemon already serves: a set
// query opens 2..knw.MaxSetQuery store envelopes and runs one
// inclusion–exclusion pass (knw.NewSetStats); a series exports the
// window ring bucket by bucket. Cluster nodes additionally answer in
// mode=gather (scatter-gather, complete but fan-out per read) and —
// for all-time set queries only — mode=local (the O(1) gossip merged
// view, bounded staleness, X-KNW-Staleness header).

// queryResponse is the GET /v1/query body: the knw.SetStats fields
// under wire names, plus the completeness/staleness detail of whatever
// cluster mode answered.
type queryResponse struct {
	Stores        []string  `json:"stores"`
	Scope         string    `json:"scope"`
	Mode          string    `json:"mode"`
	Cardinalities []float64 `json:"cardinalities"`
	Union         float64   `json:"union"`
	Intersection  float64   `json:"intersection"`
	Jaccard       float64   `json:"jaccard"`
	// Pair carries the order-dependent statistics a two-store query
	// additionally answers; nil for k ≥ 3.
	Pair *pairStats `json:"pair,omitempty"`
	// Epsilon is the per-sketch relative-error budget; the estimated
	// intersection is within IntersectionErrBound = ε·Σ|unions| of the
	// truth with probability ≥ 1 − Terms·δ (see DESIGN.md §21 — the
	// error scales with the union magnitudes, not the intersection).
	Epsilon              float64 `json:"epsilon"`
	IntersectionErrBound float64 `json:"intersection_err_bound"`
	Terms                int     `json:"terms"`

	// Cluster detail: gather completeness, or local-view staleness.
	Nodes            int      `json:"nodes,omitempty"`
	NodesOK          int      `json:"nodes_ok,omitempty"`
	Partial          bool     `json:"partial,omitempty"`
	FailedPeers      []string `json:"failed_peers,omitempty"`
	StalenessSeconds *float64 `json:"staleness_seconds,omitempty"`
}

// pairStats are the two-store extras: set differences and — for L0
// sketches, which can subtract — the Hamming distance between the key
// multisets (count disagreements included, unlike the symmetric
// difference, which only sees membership).
type pairStats struct {
	DiffAB        float64  `json:"diff_a_minus_b"`
	DiffBA        float64  `json:"diff_b_minus_a"`
	SymmetricDiff float64  `json:"symmetric_diff"`
	Hamming       *float64 `json:"hamming,omitempty"`
}

// seriesResponse is the GET /v1/series body: store.Series plus the
// answering mode and, for gathers, the completeness detail.
type seriesResponse struct {
	store.Series
	Mode        string   `json:"mode"`
	Nodes       int      `json:"nodes,omitempty"`
	NodesOK     int      `json:"nodes_ok,omitempty"`
	Partial     bool     `json:"partial,omitempty"`
	FailedPeers []string `json:"failed_peers,omitempty"`
}

// queryStores collects a set query's store names: the comma-separated
// ?stores= list plus any repeated ?store= parameters, validated and
// deduplicated (a duplicate name is a client mistake — its
// "intersection" with itself is just its cardinality).
func queryStores(q url.Values) ([]string, error) {
	var names []string
	for _, part := range strings.Split(q.Get("stores"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	names = append(names, q["store"]...)
	if len(names) < 2 || len(names) > knw.MaxSetQuery {
		return nil, fmt.Errorf("set queries take 2..%d stores (?stores=a,b), got %d", knw.MaxSetQuery, len(names))
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if err := store.ValidateName(n); err != nil {
			return nil, err
		}
		if seen[n] {
			return nil, fmt.Errorf("store %q named twice in one set query", n)
		}
		seen[n] = true
	}
	return names, nil
}

// queryMode resolves the ?mode= of a set query. The default mirrors
// /v1/cluster/estimate: single-node servers answer from their own
// store (shard), cluster nodes prefer the O(1) local view once gossip
// is on, falling back to gather. Windowed scopes can never answer
// locally — gossip replicas hold all-time envelopes only (deltas carry
// no event times) — so their cluster default is gather.
func (s *Server) queryMode(mode string, windowed bool) (string, error) {
	switch mode {
	case "":
		if s.router == nil {
			return "shard", nil
		}
		if s.router.GossipEnabled() && !windowed {
			return "local", nil
		}
		return "gather", nil
	case "shard":
		return "shard", nil
	case "local":
		if s.router == nil || !s.router.GossipEnabled() {
			return "", errors.New("mode=local needs gossip replication (-gossip-interval)")
		}
		if windowed {
			return "", errors.New("mode=local cannot answer scope=window: gossip replicas hold all-time envelopes only (use mode=gather)")
		}
		return "local", nil
	case "gather":
		if s.router == nil {
			return "", errors.New("mode=gather needs cluster mode")
		}
		return "gather", nil
	default:
		return "", fmt.Errorf("unknown query mode %q (shard, local, or gather)", mode)
	}
}

// handleQuery is GET /v1/query?stores=a,b[,...]: set algebra — union,
// intersection, Jaccard, differences, Hamming — across named stores by
// inclusion–exclusion over their snapshot envelopes. scope=window
// restricts every operand to its live window ring. See queryMode for
// the cluster modes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	names, err := queryStores(q)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	scope := q.Get("scope")
	windowed := false
	switch scope {
	case "", "all":
		scope = "all"
	case "window":
		windowed = true
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown query scope %q (all or window)", scope))
		return
	}
	mode, err := s.queryMode(q.Get("mode"), windowed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	act := trace.FromContext(r.Context())
	t0 := time.Now()
	var (
		stats knw.SetStats
		info  cluster.GatherInfo
		stale *float64
		nodes int
	)
	switch mode {
	case "shard":
		stats, err = s.st.SetQuery(names, windowed)
		if err != nil {
			s.failStore(w, err)
			return
		}
	case "gather":
		sketches := make([]knw.Estimator, 0, len(names))
		for _, name := range names {
			est, gi, gerr := s.router.GatherSketch(name, windowed, act)
			info.Merge(gi)
			if gerr != nil {
				s.failGather(w, gerr, info)
				return
			}
			sketches = append(sketches, est)
		}
		if stats, err = knw.NewSetStats(sketches...); err != nil {
			s.failStore(w, err)
			return
		}
		nodes = info.Nodes
	case "local":
		sketches := make([]knw.Estimator, 0, len(names))
		for _, name := range names {
			est, le, lerr := s.router.LocalSketch(name)
			if lerr != nil {
				s.failStore(w, lerr)
				return
			}
			sketches = append(sketches, est)
			stale = &le.StalenessSeconds
			nodes = le.Nodes
		}
		if stats, err = knw.NewSetStats(sketches...); err != nil {
			s.failStore(w, err)
			return
		}
	}
	d := time.Since(t0)
	s.met.stages.With("set_algebra").Observe(d.Seconds())
	act.Stage("set_algebra", d)

	resp := queryResponse{
		Stores:               names,
		Scope:                scope,
		Mode:                 mode,
		Cardinalities:        stats.Cards,
		Union:                stats.Union,
		Intersection:         stats.Intersection,
		Jaccard:              stats.Jaccard,
		Epsilon:              stats.Epsilon,
		IntersectionErrBound: stats.IntersectionErrBound,
		Terms:                stats.Terms,
		Nodes:                nodes,
	}
	if len(names) == 2 {
		resp.Pair = &pairStats{DiffAB: stats.DiffAB, DiffBA: stats.DiffBA, SymmetricDiff: stats.SymmetricDiff}
		if stats.HammingOK {
			h := stats.Hamming
			resp.Pair.Hamming = &h
		}
	}
	if mode == "gather" {
		resp.NodesOK, resp.Partial, resp.FailedPeers = info.NodesOK, info.Partial, info.FailedPeers
		if info.Partial {
			w.Header().Set(cluster.PartialHeader, strings.Join(info.FailedPeers, ","))
		}
	}
	if stale != nil {
		resp.StalenessSeconds = stale
		w.Header().Set(cluster.StalenessHeader, strconv.FormatFloat(*stale, 'f', 3, 64))
	}
	s.reply(w, http.StatusOK, resp)
}

// handleSeries is GET /v1/series?store=x[&span=15m]: the per-bucket
// cardinality time-series of the store's window ring, with the span
// union and rate-of-change fields (store.Series). span rounds up to
// whole buckets and clamps to the ring; absent or ≤ 0 means the full
// ring. Cluster nodes default to mode=gather — every member ships its
// ring bucket by bucket and same-epoch buckets union, so the answer
// matches a single node that had ingested everything. There is no
// mode=local series: replicas hold all-time envelopes only.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("store")
	var span time.Duration
	if v := q.Get("span"); v != "" {
		var err error
		if span, err = time.ParseDuration(v); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad span %q: %w", v, err))
			return
		}
	}
	mode := q.Get("mode")
	switch mode {
	case "":
		if s.router == nil {
			mode = "shard"
		} else {
			mode = "gather"
		}
	case "shard":
	case "gather":
		if s.router == nil {
			s.fail(w, http.StatusBadRequest, errors.New("mode=gather needs cluster mode"))
			return
		}
	case "local":
		s.fail(w, http.StatusBadRequest, errors.New(
			"mode=local cannot answer a series: gossip replicas hold all-time envelopes only (use mode=gather)"))
		return
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown series mode %q (shard or gather)", mode))
		return
	}

	act := trace.FromContext(r.Context())
	t0 := time.Now()
	resp := seriesResponse{Mode: mode}
	if mode == "gather" {
		ser, info, err := s.router.GatherSeries(name, span, act)
		if err != nil {
			s.failGather(w, err, info)
			return
		}
		resp.Series = ser
		resp.Nodes, resp.NodesOK, resp.Partial, resp.FailedPeers = info.Nodes, info.NodesOK, info.Partial, info.FailedPeers
		if info.Partial {
			w.Header().Set(cluster.PartialHeader, strings.Join(info.FailedPeers, ","))
		}
	} else {
		ser, err := s.st.Series(name, span)
		if err != nil {
			s.failStore(w, err)
			return
		}
		resp.Series = ser
	}
	d := time.Since(t0)
	s.met.stages.With("series").Observe(d.Seconds())
	act.SetStore(name)
	act.Stage("series", d)
	s.reply(w, http.StatusOK, resp)
}

// failGather writes a gather failure the way /v1/cluster/estimate
// does: store unknown everywhere is 404, a partial assembly that still
// produced nothing is 503, anything else is 400. Failed peers ride the
// X-KNW-Partial header either way.
func (s *Server) failGather(w http.ResponseWriter, err error, info cluster.GatherInfo) {
	if len(info.FailedPeers) > 0 {
		w.Header().Set(cluster.PartialHeader, strings.Join(info.FailedPeers, ","))
	}
	switch {
	case errors.Is(err, store.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case info.Partial:
		s.fail(w, http.StatusServiceUnavailable, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}
