package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/version"
)

func traceConfig(dir string, sample float64) Config {
	cfg := testConfig(dir)
	cfg.Trace = trace.Config{Node: "test-node", Sample: sample}
	return cfg
}

// TestTracedIngestRecorded: a sampled ingest shows up in
// GET /v1/debug/traces with its store, key count, and the
// body_scan/store_ingest stage split.
func TestTracedIngestRecorded(t *testing.T) {
	_, hs := newTestServer(t, traceConfig(t.TempDir(), 1))
	resp, body := post(t, hs.URL+"/v1/ingest?store=web", "text/plain",
		[]byte("a\nb\nc\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
	}

	resp, body = get(t, hs.URL+"/v1/debug/traces?store=web")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug traces: HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Node   string       `json:"node"`
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Node != "test-node" {
		t.Errorf("node = %q, want test-node", out.Node)
	}
	if len(out.Traces) == 0 {
		t.Fatal("no traces recorded at sample=1")
	}
	var ingest *trace.SpanView
	for i := range out.Traces {
		for j := range out.Traces[i].Spans {
			if out.Traces[i].Spans[j].Name == "/v1/ingest" {
				ingest = &out.Traces[i].Spans[j]
			}
		}
	}
	if ingest == nil {
		t.Fatalf("no /v1/ingest span in %s", body)
	}
	if ingest.Store != "web" || ingest.Keys != 3 || ingest.Status != 200 {
		t.Errorf("ingest span = %+v, want store=web keys=3 status=200", ingest)
	}
	stages := map[string]bool{}
	for _, st := range ingest.Stages {
		stages[st.Stage] = true
	}
	if !stages["body_scan"] || !stages["store_ingest"] {
		t.Errorf("ingest span stages = %v, want body_scan and store_ingest", ingest.Stages)
	}
}

// TestHeaderPropagatedSpan: a request carrying a sampled X-KNW-Trace
// header is recorded as a child of the sender's span regardless of the
// local sampling rate.
func TestHeaderPropagatedSpan(t *testing.T) {
	_, hs := newTestServer(t, traceConfig(t.TempDir(), 0))
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/ingest?store=web",
		bytes.NewReader([]byte("a\n")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, "00000000deadbeef-0000000000000001-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	_, body := get(t, hs.URL+"/v1/debug/traces?trace=00000000deadbeef")
	var out struct {
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 || len(out.Traces[0].Spans) != 1 {
		t.Fatalf("adopted trace missing: %s", body)
	}
	sp := out.Traces[0].Spans[0]
	if sp.Trace != "00000000deadbeef" || sp.Parent != "0000000000000001" {
		t.Errorf("span = trace %s parent %s, want adopted header ids", sp.Trace, sp.Parent)
	}
}

func TestDebugTracesBadParams(t *testing.T) {
	_, hs := newTestServer(t, traceConfig(t.TempDir(), 0))
	for _, q := range []string{"trace=xyz", "min_ms=abc", "limit=0", "scope=galaxy"} {
		resp, body := get(t, hs.URL+"/v1/debug/traces?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: HTTP %d (%s), want 400", q, resp.StatusCode, body)
		}
	}
	// scope=cluster without cluster mode is a 400, not a crash.
	resp, _ := get(t, hs.URL+"/v1/debug/traces?scope=cluster")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("scope=cluster single-node: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestStageMetricsExposed: an ingest populates the knwd_stage_seconds
// histogram for the service and store stages, and build info carries
// the version.
func TestStageMetricsExposed(t *testing.T) {
	_, hs := newTestServer(t, traceConfig(t.TempDir(), 0))
	post(t, hs.URL+"/v1/ingest?store=web", "text/plain", []byte("a\nb\n"))
	resp, body := get(t, hs.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	text := string(body)
	for _, stage := range []string{"body_scan", "store_ingest", "slot_claim", "hash"} {
		want := `knwd_stage_seconds_count{stage="` + stage + `"}`
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if !strings.Contains(text, `knwd_build_info{version="`+version.Version+`"`) {
		t.Errorf("metrics missing knwd_build_info with version %s", version.Version)
	}
}

// TestSlowRequestAlwaysRecorded: with Slow set to 1ns every request
// lands in the ring even at sample 0.
func TestSlowRequestAlwaysRecorded(t *testing.T) {
	cfg := traceConfig(t.TempDir(), 0)
	cfg.Trace.Slow = time.Nanosecond
	_, hs := newTestServer(t, cfg)
	post(t, hs.URL+"/v1/ingest?store=web", "text/plain", []byte("a\n"))
	_, body := get(t, hs.URL+"/v1/debug/traces")
	var out struct {
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range out.Traces {
		for _, sp := range tr.Spans {
			if sp.Name == "/v1/ingest" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("slow-threshold request not recorded: %s", body)
	}
}
