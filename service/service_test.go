package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	knw "repro"
	"repro/store"
)

func testConfig(dir string) Config {
	return Config{
		Store: store.Config{
			Kind:    knw.KindF0,
			Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(1)},
		},
		CheckpointDir: dir,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func post(t *testing.T, url, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func estimateOf(t *testing.T, base, name string) store.Estimate {
	t.Helper()
	resp, body := get(t, base+"/v1/estimate?store="+name)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate %s: HTTP %d: %s", name, resp.StatusCode, body)
	}
	var est store.Estimate
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	return est
}

func keyBatch(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

// TestServiceEndToEnd is the full daemon lifecycle: 4 tenants ingest
// batched keys over HTTP (both body formats), estimates land within
// the sketch's configured error bound, and a kill → restart from
// checkpoint serves byte-identical estimates and snapshots. Long-ish,
// so gated behind -short like the other heavy suites.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end service test skipped in -short mode")
	}
	dir := t.TempDir()
	srv, hs := newTestServer(t, testConfig(dir))

	// ε = 0.05 per-copy standard error, amplified by median-of-copies:
	// 4σ keeps the test deterministic in practice.
	const tol = 0.20
	tenants := map[string]int{
		"acme/users":     20000,
		"globex/users":   8000,
		"initech/users":  2500,
		"umbrella/users": 600,
	}
	for name, n := range tenants {
		for lo := 0; lo < n; lo += 1000 {
			hi := min(lo+1000, n)
			batch := keyBatch(name, lo, hi)
			if lo%2000 == 0 {
				// JSON form, store name in the body.
				body, _ := json.Marshal(ingestRequest{Store: name, Keys: batch})
				resp, out := post(t, hs.URL+"/v1/ingest", "application/json", body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("JSON ingest: HTTP %d: %s", resp.StatusCode, out)
				}
			} else {
				// Newline form, store name in the query.
				resp, out := post(t, hs.URL+"/v1/ingest?store="+name, "text/plain",
					[]byte(strings.Join(batch, "\n")+"\n"))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("newline ingest: HTTP %d: %s", resp.StatusCode, out)
				}
			}
		}
		// Re-ingest a prefix to prove distinct counting, not counting.
		body, _ := json.Marshal(ingestRequest{Store: name, Keys: keyBatch(name, 0, min(500, n))})
		post(t, hs.URL+"/v1/ingest", "application/json", body)
	}

	before := map[string]store.Estimate{}
	for name, n := range tenants {
		est := estimateOf(t, hs.URL, name)
		if math.Abs(est.AllTime-float64(n)) > tol*float64(n) {
			t.Fatalf("%s: estimate %.0f, want %d ± %.0f%%", name, est.AllTime, n, tol*100)
		}
		before[name] = est
	}

	// Stores listing sees all four tenants.
	resp, body := get(t, hs.URL+"/v1/stores")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "acme/users") {
		t.Fatalf("stores: HTTP %d: %s", resp.StatusCode, body)
	}

	snaps := map[string][]byte{}
	for name := range tenants {
		_, snaps[name] = get(t, hs.URL+"/v1/snapshot?store="+name)
	}

	// "Kill": final checkpoint, drop the server. "Restart": a fresh
	// Server over the same directory.
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	_, hs2 := newTestServer(t, testConfig(dir))
	for name := range tenants {
		est := estimateOf(t, hs2.URL, name)
		if est != before[name] {
			t.Fatalf("%s: restored estimate %+v != pre-restart %+v", name, est, before[name])
		}
		_, snap := get(t, hs2.URL+"/v1/snapshot?store="+name)
		if !bytes.Equal(snap, snaps[name]) {
			t.Fatalf("%s: restored snapshot differs from pre-restart bytes", name)
		}
	}
}

// TestServiceWindowedEstimate drives a windowed store through bucket
// boundaries with a fake clock and checks the last-window cardinality
// lands within the sketch's error bound.
func TestServiceWindowedEstimate(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig("")
	cfg.Store.Window = store.Window{Buckets: 3, Interval: time.Minute}
	cfg.Store.Now = func() time.Time { return now }
	_, hs := newTestServer(t, cfg)

	ingest := func(lo, hi int) {
		body, _ := json.Marshal(ingestRequest{Store: "t/m", Keys: keyBatch("w", lo, hi)})
		resp, out := post(t, hs.URL+"/v1/ingest", "application/json", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, out)
		}
	}
	ingest(0, 2000)
	now = now.Add(time.Minute)
	ingest(1000, 3000) // 1000 overlap with the previous bucket

	est := estimateOf(t, hs.URL, "t/m")
	if !est.Windowed {
		t.Fatal("estimate not windowed")
	}
	const tol = 0.20
	if math.Abs(est.Window-3000) > tol*3000 {
		t.Fatalf("window estimate %.0f, want 3000 ± %.0f%%", est.Window, tol*100)
	}
	if est.WindowSpan != "3m0s" {
		t.Fatalf("window span %q, want 3m0s", est.WindowSpan)
	}

	// Expire the ring: the window drains, the total does not.
	now = now.Add(time.Hour)
	est = estimateOf(t, hs.URL, "t/m")
	if est.Window != 0 {
		t.Fatalf("window after expiry %.0f, want 0", est.Window)
	}
	if math.Abs(est.AllTime-3000) > tol*3000 {
		t.Fatalf("all-time after expiry %.0f, want 3000 ± %.0f%%", est.AllTime, tol*100)
	}
}

// TestMergeEndpoint checks cross-node aggregation over HTTP: two
// same-seed nodes exchange a snapshot envelope and the receiver
// reports the union.
func TestMergeEndpoint(t *testing.T) {
	_, hsA := newTestServer(t, testConfig(""))
	_, hsB := newTestServer(t, testConfig(""))

	bodyA, _ := json.Marshal(ingestRequest{Store: "t/m", Keys: keyBatch("k", 0, 3000)})
	post(t, hsA.URL+"/v1/ingest", "application/json", bodyA)
	bodyB, _ := json.Marshal(ingestRequest{Store: "t/m", Keys: keyBatch("k", 2000, 5000)})
	post(t, hsB.URL+"/v1/ingest", "application/json", bodyB)

	_, env := get(t, hsA.URL+"/v1/snapshot?store=t/m")
	resp, out := post(t, hsB.URL+"/v1/merge?store=t/m", "application/octet-stream", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge: HTTP %d: %s", resp.StatusCode, out)
	}
	est := estimateOf(t, hsB.URL, "t/m")
	if math.Abs(est.AllTime-5000) > 0.2*5000 {
		t.Fatalf("merged union %.0f, want 5000 ± 20%%", est.AllTime)
	}

	// PUT /v1/snapshot replaces B's other store with A's state.
	resp, out = putBytes(t, hsB.URL+"/v1/snapshot?store=copy/m", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot PUT: HTTP %d: %s", resp.StatusCode, out)
	}
	est = estimateOf(t, hsB.URL, "copy/m")
	if math.Abs(est.AllTime-3000) > 0.2*3000 {
		t.Fatalf("restored copy %.0f, want 3000 ± 20%%", est.AllTime)
	}
}

// TestHTTPErrorMapping is the regression suite for the status-code
// contract: mismatched envelopes are 409 (typed ErrIncompatible
// underneath), unknown stores 404, corrupt payloads 400 — and none of
// them panic the daemon.
func TestHTTPErrorMapping(t *testing.T) {
	srv, hs := newTestServer(t, testConfig(""))
	body, _ := json.Marshal(ingestRequest{Store: "t/m", Keys: keyBatch("k", 0, 50)})
	post(t, hs.URL+"/v1/ingest", "application/json", body)

	// 409: wrong kind, wrong options, wrong seed.
	wrongKind, _ := knw.New(knw.KindL0, knw.WithEpsilon(0.05), knw.WithSeed(1))
	envKind, _ := wrongKind.(*knw.L0).MarshalBinary()
	wrongSeed := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(9))
	envSeed, _ := wrongSeed.MarshalBinary()
	for what, env := range map[string][]byte{"kind": envKind, "seed": envSeed} {
		resp, out := post(t, hs.URL+"/v1/merge?store=t/m", "application/octet-stream", env)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("merge %s mismatch: HTTP %d, want 409 (%s)", what, resp.StatusCode, out)
		}
		resp, out = putBytes(t, hs.URL+"/v1/snapshot?store=t/m", env)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("restore %s mismatch: HTTP %d, want 409 (%s)", what, resp.StatusCode, out)
		}
	}
	// The typed error is what drives the mapping.
	if err := srv.Store().Merge("t/m", envSeed); !errors.Is(err, knw.ErrIncompatible) {
		t.Fatalf("store error not typed: %v", err)
	}

	// 400: corrupt envelope.
	resp, _ := post(t, hs.URL+"/v1/merge?store=t/m", "application/octet-stream", []byte("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt merge: HTTP %d, want 400", resp.StatusCode)
	}

	// 404: estimate/snapshot of a never-written store.
	resp, _ = get(t, hs.URL+"/v1/estimate?store=nope/m")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown estimate: HTTP %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, hs.URL+"/v1/snapshot?store=nope/m")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown snapshot: HTTP %d, want 404", resp.StatusCode)
	}

	// 400: bad store names.
	resp, _ = post(t, hs.URL+"/v1/ingest?store=", "text/plain", []byte("a\nb"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty name: HTTP %d, want 400", resp.StatusCode)
	}

	// The sketch behind t/m is untouched by all of the above.
	est := estimateOf(t, hs.URL, "t/m")
	if math.Abs(est.AllTime-50) > 15 {
		t.Fatalf("estimate disturbed by rejected requests: %.1f", est.AllTime)
	}
}

// TestRunGracefulShutdown exercises the real listener path: Run serves
// until the context is cancelled, then writes a final checkpoint.
func TestRunGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Store().Ingest("t/m", keyBatch("k", 0, 100)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown timed out")
	}

	// The final checkpoint restored into a fresh server keeps the data.
	srv2, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	est, err := srv2.Store().Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.AllTime-100) > 25 {
		t.Fatalf("post-shutdown estimate %.1f, want ≈100", est.AllTime)
	}
}

func putBytes(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}
