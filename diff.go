package knw

import "fmt"

// MergeNegated folds −1 times other's stream into l, so that l's
// estimate becomes L0(x_l − x_other): the number of keys whose net
// counts differ between the two streams. Requires identical options
// and seed, like Merge. The receiver is modified; other is not.
func (l *L0) MergeNegated(other *L0) error {
	if l.cfg != other.cfg {
		return fmt.Errorf("knw: cannot diff sketches with different configurations")
	}
	for i := range l.copies {
		l.copies[i].MergeFromNegated(other.copies[i])
	}
	return nil
}

// HammingDiff estimates |{i : count_a(i) ≠ count_b(i)}| — how many
// keys the two streams disagree on — without modifying either sketch
// (a is cloned through its serialized form). This is the paper's
// data-cleaning / packet-tracing statistic: stream each column (or
// each router's view) into its own same-seed L0 sketch with +1
// updates, then diff the sketches; row order never matters.
func HammingDiff(a, b *L0) (float64, error) {
	data, err := a.MarshalBinary()
	if err != nil {
		return 0, err
	}
	var clone L0
	if err := clone.UnmarshalBinary(data); err != nil {
		return 0, err
	}
	if err := clone.MergeNegated(b); err != nil {
		return 0, err
	}
	return clone.EstimateErr()
}
