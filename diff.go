package knw

import "fmt"

// MergeNegated folds −1 times other's stream into l, so that l's
// estimate becomes L0(x_l − x_other): the number of keys whose net
// counts differ between the two streams. Requires identical options
// and seed, like Merge. The receiver is modified; other is not.
func (l *L0) MergeNegated(other *L0) error {
	if l.cfg != other.cfg {
		return fmt.Errorf("knw: cannot diff sketches with different configurations")
	}
	for i := range l.copies {
		l.copies[i].MergeFromNegated(other.copies[i])
	}
	return nil
}

// MergeNegated folds −1 times other's stream into c, shard-wise (see
// L0.MergeNegated). Both wrappers must share options and seed; shard
// counts may differ. Safe for concurrent use with writers on either
// wrapper, but two wrappers must not concurrently diff each other.
func (c *ConcurrentL0) MergeNegated(other *ConcurrentL0) error {
	if c == other {
		return fmt.Errorf("knw: cannot diff a sketch with itself")
	}
	if c.cfg != other.cfg {
		return fmt.Errorf("knw: cannot diff sketches with different configurations")
	}
	for i := range other.shards {
		os := &other.shards[i]
		cs := &c.shards[uint64(i)&c.mask]
		os.mu.Lock()
		cs.mu.Lock()
		err := cs.sk.MergeNegated(os.sk)
		cs.mu.Unlock()
		os.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// HammingDiff estimates |{i : count_a(i) ≠ count_b(i)}| — how many
// keys the two streams disagree on — without modifying either sketch
// (a is cloned through its serialized form). This is the paper's
// data-cleaning / packet-tracing statistic: stream each column (or
// each router's view) into its own same-seed L0 sketch with +1
// updates, then diff the sketches; row order never matters.
func HammingDiff(a, b *L0) (float64, error) {
	data, err := a.MarshalBinary()
	if err != nil {
		return 0, err
	}
	var clone L0
	if err := clone.UnmarshalBinary(data); err != nil {
		return 0, err
	}
	if err := clone.MergeNegated(b); err != nil {
		return 0, err
	}
	return clone.EstimateErr()
}
