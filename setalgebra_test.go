package knw_test

import (
	"errors"
	"math"
	"testing"

	knw "repro"
)

// fillRange adds keys [lo, hi] to every given sketch.
func fillRange(t *testing.T, lo, hi uint64, sketches ...knw.Estimator) {
	t.Helper()
	keys := make([]uint64, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		keys = append(keys, k)
	}
	for _, s := range sketches {
		s.AddBatch(keys)
	}
}

// pairF0 builds two same-seed F0 sketches with A = [1,600],
// B = [301,900]: union 900, intersection 300, Jaccard 1/3.
func pairF0(t *testing.T) (a, b *knw.F0) {
	t.Helper()
	a = knw.NewF0(knw.WithSeed(11), knw.WithEpsilon(0.05))
	b = knw.NewF0(knw.WithSeed(11), knw.WithEpsilon(0.05))
	fillRange(t, 1, 600, a)
	fillRange(t, 301, 900, b)
	return a, b
}

// wantNear fails unless got is within tol of want.
func wantNear(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.2f, want %.2f ± %.1f", what, got, want, tol)
	}
}

func TestSetStatsPair(t *testing.T) {
	a, b := pairF0(t)
	st, err := knw.NewSetStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// ε=0.05 with defaults: allow 3ε·|A∪B| absolute slack on every
	// inclusion–exclusion answer (the documented propagated bound).
	slack := 3 * 0.05 * 900
	wantNear(t, "card A", st.Cards[0], 600, 0.05*600*3)
	wantNear(t, "card B", st.Cards[1], 600, 0.05*600*3)
	wantNear(t, "union", st.Union, 900, slack)
	wantNear(t, "intersection", st.Intersection, 300, slack)
	wantNear(t, "jaccard", st.Jaccard, 1.0/3, 0.15)
	wantNear(t, "diff A\\B", st.DiffAB, 300, slack)
	wantNear(t, "diff B\\A", st.DiffBA, 300, slack)
	wantNear(t, "symmetric diff", st.SymmetricDiff, 600, 2*slack)
	if st.Epsilon != 0.05 {
		t.Errorf("Epsilon = %v, want 0.05", st.Epsilon)
	}
	if st.Terms != 3 {
		t.Errorf("Terms = %d, want 3 for a pair", st.Terms)
	}
	if st.IntersectionErrBound <= 0 || st.IntersectionErrBound > slack*1.5 {
		t.Errorf("IntersectionErrBound = %.2f, want in (0, %.2f]", st.IntersectionErrBound, slack*1.5)
	}
	if st.HammingOK {
		t.Error("HammingOK set for F0 sketches (max-merge cannot subtract)")
	}
}

// Set algebra must not mutate its arguments: estimates before and
// after a full stats pass agree exactly.
func TestSetAlgebraDoesNotMutateArguments(t *testing.T) {
	a, b := pairF0(t)
	ea, eb := a.Estimate(), b.Estimate()
	if _, err := knw.NewSetStats(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := knw.Union(a, b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(); got != ea {
		t.Errorf("a changed: %v -> %v", ea, got)
	}
	if got := b.Estimate(); got != eb {
		t.Errorf("b changed: %v -> %v", eb, got)
	}
}

func TestSetStatsHammingL0(t *testing.T) {
	a := knw.NewL0(knw.WithSeed(13))
	b := knw.NewL0(knw.WithSeed(13))
	fillRange(t, 1, 200, a, b) // identical prefix
	fillRange(t, 201, 230, a)  // 30 keys only in a
	b.Update(5, 3)             // count disagreement on a shared key
	st, err := knw.NewSetStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HammingOK {
		t.Fatal("HammingOK unset for an L0 pair")
	}
	wantNear(t, "hamming", st.Hamming, 31, 3*0.05*231)

	if _, err := knw.Hamming(knw.NewF0(knw.WithSeed(1)), knw.NewF0(knw.WithSeed(1))); !errors.Is(err, knw.ErrIncompatible) {
		t.Errorf("Hamming on F0: err = %v, want ErrIncompatible", err)
	}
}

func TestHammingConcurrentL0(t *testing.T) {
	a := knw.NewConcurrentL0(4, knw.WithSeed(17))
	b := knw.NewConcurrentL0(4, knw.WithSeed(17))
	fillRange(t, 1, 300, a, b)
	fillRange(t, 301, 320, b) // 20 extra keys in b
	h, err := knw.Hamming(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantNear(t, "hamming", h, 20, 3*0.05*320)
	// Neither argument changed.
	wantNear(t, "a after", a.Estimate(), 300, 3*0.05*300)
	wantNear(t, "b after", b.Estimate(), 320, 3*0.05*320)
}

func TestIntersectionThreeWay(t *testing.T) {
	mk := func() *knw.F0 { return knw.NewF0(knw.WithSeed(23), knw.WithEpsilon(0.05)) }
	a, b, c := mk(), mk(), mk()
	fillRange(t, 1, 500, a)
	fillRange(t, 201, 700, b)
	fillRange(t, 401, 900, c)
	// Pairwise overlaps 300 each; triple overlap [401,500] = 100.
	got, err := knw.Intersection(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// 7 union terms, each ≤ ε·900: generous absolute slack.
	wantNear(t, "3-way intersection", got, 100, 7*0.05*900)

	j, err := knw.Jaccard(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	wantNear(t, "3-way jaccard", j, 100.0/900, 0.3)
}

func TestSetAlgebraArgumentErrors(t *testing.T) {
	a := knw.NewF0(knw.WithSeed(1))
	if _, err := knw.NewSetStats(a); err == nil {
		t.Error("single-sketch stats succeeded")
	}
	many := make([]knw.Estimator, knw.MaxSetQuery+1)
	for i := range many {
		many[i] = knw.NewF0(knw.WithSeed(1))
	}
	if _, err := knw.Intersection(many...); err == nil {
		t.Errorf("intersection over %d sketches succeeded", len(many))
	}
	// Seed mismatch is an incompatibility, reported before any work.
	other := knw.NewF0(knw.WithSeed(2))
	if _, err := knw.Union(a, other); !errors.Is(err, knw.ErrIncompatible) {
		t.Errorf("seed mismatch: err = %v, want ErrIncompatible", err)
	}
	// Kind mismatch likewise.
	if _, err := knw.Union(a, knw.NewL0(knw.WithSeed(1))); !errors.Is(err, knw.ErrIncompatible) {
		t.Errorf("kind mismatch: err = %v, want ErrIncompatible", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := knw.NewF0(knw.WithSeed(3))
	fillRange(t, 1, 50, a)
	c, err := knw.Clone(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Estimate(), a.Estimate(); got != want {
		t.Fatalf("clone estimate %v != original %v", got, want)
	}
	fillRange(t, 51, 100, a)
	if got := c.Estimate(); got != 50 {
		t.Errorf("clone tracked the original after divergence: %v", got)
	}
	if got := a.Estimate(); got != 100 {
		t.Errorf("original = %v, want 100", got)
	}
}

func TestDifference(t *testing.T) {
	a, b := pairF0(t)
	d, err := knw.Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantNear(t, "difference", d, 300, 3*0.05*900)
	// A \ A is (near) empty and never negative.
	self, err := knw.Difference(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if self < 0 {
		t.Errorf("|A\\A| = %v < 0", self)
	}
	wantNear(t, "self difference", self, 0, 2*0.05*600)
}

func TestUnionSketchConcurrentKinds(t *testing.T) {
	a := knw.NewConcurrentF0(4, knw.WithSeed(29))
	b := knw.NewConcurrentF0(2, knw.WithSeed(29))
	fillRange(t, 1, 400, a)
	fillRange(t, 201, 600, b)
	u, err := knw.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantNear(t, "concurrent union", u, 600, 3*0.05*600)
}
