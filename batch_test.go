package knw

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/binenc"
)

// batchKeys builds a stream with duplicates, clusters, and enough
// distinct keys to push the sketches through several rescales.
func batchKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1 // fresh
		case 1:
			keys[i] = uint64(i/7)*0x9e3779b97f4a7c15 + 1 // recent repeat
		default:
			keys[i] = uint64(i % 1000) // hot set
		}
	}
	return keys
}

// feedBatches drives AddBatch with deliberately ragged batch sizes so
// chunk boundaries (including short and oversized batches) are hit.
func feedBatches(add func([]uint64), keys []uint64) {
	sizes := []int{1, 97, 256, 3, 1000, 513}
	for i, pos := 0, 0; pos < len(keys); i++ {
		n := sizes[i%len(sizes)]
		if pos+n > len(keys) {
			n = len(keys) - pos
		}
		add(keys[pos : pos+n])
		pos += n
	}
}

// TestF0AddBatchMatchesScalar: same seed ⇒ AddBatch state is
// byte-identical under MarshalBinary to sequential Add, for every
// implementation variant.
func TestF0AddBatchMatchesScalar(t *testing.T) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"fast", nil},
		{"fast-lntable", []Option{WithLnTable()}},
		{"fast-strict", []Option{WithStrictRescale()}},
		{"reference", []Option{WithReference()}},
	}
	keys := batchKeys(120_000)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			opts := append([]Option{WithSeed(7), WithEpsilon(0.1), WithCopies(3)}, v.opts...)
			scalar := NewF0(opts...)
			batched := NewF0(opts...)
			for _, k := range keys {
				scalar.Add(k)
			}
			feedBatches(batched.AddBatch, keys)

			a, err := scalar.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			b, err := batched.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("batched state diverged from scalar state (%d vs %d bytes)", len(a), len(b))
			}
		})
	}
}

// TestL0UpdateBatchMatchesScalar covers turnstile batches with mixed
// signs, zero deltas, and the nil-deltas (+1) form.
func TestL0UpdateBatchMatchesScalar(t *testing.T) {
	keys := batchKeys(40_000)
	deltas := make([]int64, len(keys))
	for i := range deltas {
		switch i % 5 {
		case 0:
			deltas[i] = 3
		case 1:
			deltas[i] = -3
		case 2:
			deltas[i] = 0
		default:
			deltas[i] = 1
		}
	}
	opts := []Option{WithSeed(8), WithEpsilon(0.1), WithCopies(3)}
	scalar := NewL0(opts...)
	batched := NewL0(opts...)
	for i, k := range keys {
		scalar.Update(k, deltas[i])
	}
	pos := 0
	feedBatches(func(chunk []uint64) {
		batched.UpdateBatch(chunk, deltas[pos:pos+len(chunk)])
		pos += len(chunk)
	}, keys)

	a, err := scalar.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("batched L0 state diverged from scalar state")
	}

	// nil deltas ≡ all +1.
	plus := NewL0(opts...)
	ones := NewL0(opts...)
	plus.AddBatch(keys[:5000])
	for _, k := range keys[:5000] {
		ones.Update(k, 1)
	}
	pa, _ := plus.MarshalBinary()
	oa, _ := ones.MarshalBinary()
	if !bytes.Equal(pa, oa) {
		t.Fatal("AddBatch (nil deltas) diverged from Update(+1)")
	}
}

// TestConcurrentBatchMatchesScalar: batched pre-routed ingestion must
// leave every shard byte-identical to per-key ingestion of the same
// stream (routing preserves per-shard order).
func TestConcurrentBatchMatchesScalar(t *testing.T) {
	keys := batchKeys(60_000)
	opts := []Option{WithSeed(9), WithEpsilon(0.1), WithCopies(1)}
	scalar := NewConcurrentF0(4, opts...)
	batched := NewConcurrentF0(4, opts...)
	for _, k := range keys {
		scalar.Add(k)
	}
	feedBatches(batched.AddBatch, keys)
	a, _ := scalar.MarshalBinary()
	b, _ := batched.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("batched concurrent state diverged from per-key state")
	}
}

// TestConcurrentF0SerializeRoundTrip checkpoints a sharded sketch and
// restores it into a differently-shaped wrapper.
func TestConcurrentF0SerializeRoundTrip(t *testing.T) {
	c := NewConcurrentF0(4, WithSeed(10), WithEpsilon(0.1), WithCopies(3))
	keys := batchKeys(80_000)
	c.AddBatch(keys)
	want := c.Estimate()

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewConcurrentF0(1) // shape is replaced by the payload
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Shards() != c.Shards() {
		t.Fatalf("Shards=%d want %d", restored.Shards(), c.Shards())
	}
	if got := restored.Estimate(); got != want {
		t.Fatalf("estimate %v after round trip, want %v", got, want)
	}
	// The restored wrapper must remain ingestible and mergeable.
	restored.AddBatch(keys)
	if got := restored.Estimate(); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("re-ingesting the same stream moved the estimate %v → %v", want, got)
	}
	blob2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) == 0 {
		t.Fatal("empty remarshal")
	}
}

// TestConcurrentL0SerializeRoundTrip is the turnstile analogue, with
// deletions surviving the round trip.
func TestConcurrentL0SerializeRoundTrip(t *testing.T) {
	c := NewConcurrentL0(4, WithSeed(11), WithEpsilon(0.1), WithCopies(3))
	const live = 20_000
	keys := make([]uint64, 0, 2*live)
	deltas := make([]int64, 0, 2*live)
	for i := 0; i < live+8000; i++ {
		k := uint64(i)*0x9e3779b97f4a7c15 + 1
		keys = append(keys, k)
		deltas = append(deltas, 4)
		if i >= live {
			keys = append(keys, k)
			deltas = append(deltas, -4)
		}
	}
	c.UpdateBatch(keys, deltas)
	want := c.Estimate()
	if rel := math.Abs(want-live) / live; rel > 0.2 {
		t.Fatalf("pre-marshal estimate %v (rel %.3f)", want, rel)
	}

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewConcurrentL0(1)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got := restored.Estimate(); got != want {
		t.Fatalf("estimate %v after round trip, want %v", got, want)
	}
}

// marshalV1 writes the legacy version-1 (unframed) payload for f.
func marshalV1F0(f *F0) []byte {
	var w binenc.Writer
	w.Uvarint(f0Magic)
	w.Uvarint(1)
	appendSettings(&w, f.cfg)
	for _, s := range f.fast {
		s.AppendState(&w)
	}
	for _, s := range f.ref {
		s.AppendState(&w)
	}
	return w.Buf
}

func marshalV1L0(l *L0) []byte {
	var w binenc.Writer
	w.Uvarint(l0Magic)
	w.Uvarint(1)
	appendSettings(&w, l.cfg)
	for _, s := range l.copies {
		s.AppendState(&w)
	}
	return w.Buf
}

// TestVersion1PayloadStillUnmarshals: payloads written by the v1
// (unframed) format load under the version-2 reader and re-marshal to
// the same state as the original sketch's v2 payload.
func TestVersion1PayloadStillUnmarshals(t *testing.T) {
	f := NewF0(WithSeed(12), WithEpsilon(0.1), WithCopies(3))
	keys := batchKeys(50_000)
	f.AddBatch(keys)

	var restored F0
	if err := restored.UnmarshalBinary(marshalV1F0(f)); err != nil {
		t.Fatalf("v1 F0 payload rejected: %v", err)
	}
	wantBlob, _ := f.MarshalBinary()
	gotBlob, _ := restored.MarshalBinary()
	if !bytes.Equal(wantBlob, gotBlob) {
		t.Fatal("state restored from v1 differs from the original")
	}

	l := NewL0(WithSeed(13), WithEpsilon(0.1), WithCopies(3))
	for i, k := range keys[:20_000] {
		l.Update(k, int64(i%5-2))
	}
	var lr L0
	if err := lr.UnmarshalBinary(marshalV1L0(l)); err != nil {
		t.Fatalf("v1 L0 payload rejected: %v", err)
	}
	wantBlob, _ = l.MarshalBinary()
	gotBlob, _ = lr.MarshalBinary()
	if !bytes.Equal(wantBlob, gotBlob) {
		t.Fatal("L0 state restored from v1 differs from the original")
	}
}

// TestResetPreservesMergeability: a Reset sketch behaves like a fresh
// same-seed sketch (the pooled-scratch contract).
func TestResetPreservesMergeability(t *testing.T) {
	opts := []Option{WithSeed(14), WithEpsilon(0.1), WithCopies(3)}
	a := NewF0(opts...)
	keys := batchKeys(60_000)
	a.AddBatch(keys)
	a.Reset()
	fresh, _ := NewF0(opts...).MarshalBinary()
	after, _ := a.MarshalBinary()
	if !bytes.Equal(fresh, after) {
		t.Fatal("Reset F0 state differs from a fresh same-seed sketch")
	}
	a.AddBatch(keys)
	b := NewF0(opts...)
	b.AddBatch(keys)
	ab, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if !bytes.Equal(ab, bb) {
		t.Fatal("re-used F0 diverged from fresh sketch over the same stream")
	}

	l := NewL0(opts...)
	l.AddBatch(keys[:20_000])
	l.Reset()
	freshL, _ := NewL0(opts...).MarshalBinary()
	afterL, _ := l.MarshalBinary()
	if !bytes.Equal(freshL, afterL) {
		t.Fatal("Reset L0 state differs from a fresh same-seed sketch")
	}
}

// TestConcurrentMerge folds one sharded wrapper into another,
// including mismatched shard counts.
func TestConcurrentMerge(t *testing.T) {
	opts := []Option{WithSeed(15), WithEpsilon(0.1), WithCopies(1)}
	a := NewConcurrentF0(4, opts...)
	b := NewConcurrentF0(8, opts...)
	keys := batchKeys(100_000)
	half := len(keys) / 2
	a.AddBatch(keys[:half])
	b.AddBatch(keys[half:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	single := NewF0(opts...)
	single.AddBatch(keys)
	want := single.Estimate()
	if got := a.Estimate(); math.Abs(got-want)/want > 0.15 {
		t.Fatalf("merged estimate %v, single-sketch %v", got, want)
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge must error")
	}
	other := NewConcurrentF0(4, WithSeed(16), WithEpsilon(0.1), WithCopies(1))
	if err := a.Merge(other); err == nil {
		t.Fatal("merge across seeds must error")
	}
}
