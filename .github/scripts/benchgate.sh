#!/usr/bin/env bash
# benchgate.sh BASELINE NEW [THRESHOLD_PCT]
#
# The CI perf-regression gate: compares per-benchmark MINIMUM ns/op
# between two `go test -bench` output files and fails (exit 1) when any
# benchmark regressed by more than THRESHOLD_PCT (default 20).
#
# benchstat renders the human-readable comparison that CI displays and
# uploads; this script is the *hard* gate, because benchstat has no
# fail-on-threshold mode and its table format is not stable enough to
# parse. The gate statistic is the min over the -count=N runs, not the
# median: at -benchtime=100x the microsecond-scale benchmarks measure
# ~100 us per run, where scheduler noise inflates individual runs 2x
# (the committed baseline's own 5 runs show that spread) — the minimum
# is the closest estimate of the true cost and by far the most stable
# across runs. Benchmarks present in only one file (new/renamed/
# removed) are reported but never fail the gate — the baseline refresh
# workflow is to commit the uploaded bench-new artifact as the new
# testdata/bench_baseline.txt.
set -euo pipefail

baseline=${1:?usage: benchgate.sh BASELINE NEW [THRESHOLD_PCT]}
new=${2:?usage: benchgate.sh BASELINE NEW [THRESHOLD_PCT]}
threshold=${3:-20}

awk -v thr="$threshold" '
  # Collect ns/op samples keyed by benchmark name. The trailing -N
  # GOMAXPROCS suffix is stripped so runs from machines with different
  # core counts still line up.
  FNR == 1 { file++ }
  $1 ~ /^Benchmark/ {
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op") {
        name = $1
        sub(/-[0-9]+$/, "", name)
        n = ++count[file, name]
        sample[file, name, n] = $i + 0
        if (file == 1) seen1[name] = 1; else seen2[name] = 1
        break
      }
    }
  }
  function minof(f, name,   n, i, m) {
    n = count[f, name]
    m = sample[f, name, 1]
    for (i = 2; i <= n; i++) if (sample[f, name, i] < m) m = sample[f, name, i]
    return m
  }
  END {
    status = 0
    printf "%-55s %14s %14s %9s\n", "benchmark (min ns/op)", "baseline", "new", "delta"
    for (name in seen1) {
      if (!(name in seen2)) { only1[name] = 1; continue }
      om = minof(1, name); nm = minof(2, name)
      delta = (om > 0) ? (nm - om) / om * 100 : 0
      flag = ""
      if (delta > thr) { flag = "  << REGRESSION"; bad[name] = delta; status = 1 }
      printf "%-55s %14.0f %14.0f %+8.1f%%%s\n", name, om, nm, delta, flag
    }
    for (name in only1) printf "%-55s %14.0f %14s\n", name, minof(1, name), "(gone)"
    for (name in seen2) if (!(name in seen1))
      printf "%-55s %14s %14.0f\n", name, "(new)", minof(2, name)
    if (status) {
      printf "\nFAIL: ns/op regression over %s%% threshold:\n", thr
      for (name in bad) printf "  %s: +%.1f%%\n", name, bad[name]
    } else {
      printf "\nOK: no benchmark regressed more than %s%%\n", thr
    }
    exit status
  }
' "$baseline" "$new"
