package knw

import (
	"fmt"
	"sync"

	"repro/internal/binenc"
)

// The self-describing wire envelope. Every MarshalBinary in this
// package now emits
//
//	uvarint envMagic ("KNWE")
//	uvarint envelope version (currently 1)
//	uvarint kind             (the Kind registry tag — stable, append-only)
//	bytes   payload          (length-prefixed; the type's own format)
//
// so a stored blob identifies what it contains: Open restores the
// right concrete type without the caller dispatching by hand, and a
// future service can route checkpoints by kind without decoding the
// payload. The payload is byte-for-byte the pre-envelope (version-2)
// per-type format, and the pre-envelope formats remain readable — both
// through Open (dispatching on their per-type magic) and through each
// type's UnmarshalBinary — so blobs written before the envelope
// existed still load. See DESIGN.md §14 for the rationale and layout.
const (
	envMagic   = 0x4b4e5745 // "KNWE"
	envVersion = 1
)

// wrapEnvelope frames a type's payload with the envelope header.
func wrapEnvelope(kind Kind, payload []byte) []byte {
	var w binenc.Writer
	w.Uvarint(envMagic)
	w.Uvarint(envVersion)
	w.Uvarint(uint64(kind))
	w.Bytes(payload)
	return w.Buf
}

// payloadScratch pools the intermediate payload buffers the
// AppendBinary path needs (the envelope length-prefixes the payload,
// so the payload must be sized before the header is written). Pooling
// keeps the snapshot/merge hot path — a service checkpointing every
// store on a tick, or streaming snapshots to peers — from re-growing a
// fresh buffer per sketch per round.
var payloadScratch = sync.Pool{New: func() any { return new([]byte) }}

// appendEnvelope appends an envelope for kind to dst, obtaining the
// payload from appendPayload via a pooled scratch buffer.
func appendEnvelope(dst []byte, kind Kind, appendPayload func([]byte) []byte) []byte {
	p := payloadScratch.Get().(*[]byte)
	*p = appendPayload((*p)[:0])
	w := binenc.Writer{Buf: dst}
	w.Uvarint(envMagic)
	w.Uvarint(envVersion)
	w.Uvarint(uint64(kind))
	w.Bytes(*p)
	payloadScratch.Put(p)
	return w.Buf
}

// unwrapEnvelope returns the inner payload if data is an envelope
// (verifying it holds the wanted kind), or data unchanged if it is a
// pre-envelope payload (anything not starting with the envelope
// magic — the per-type decoders validate those themselves).
func unwrapEnvelope(data []byte, want Kind) ([]byte, error) {
	r := binenc.Reader{Buf: data}
	if magic := r.Uvarint(); r.Err() != nil || magic != envMagic {
		return data, nil
	}
	kind, payload, err := openEnvelope(&r)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("knw: envelope holds a %s, not a %s", kind, want)
	}
	return payload, nil
}

// openEnvelope parses the envelope after its magic has been consumed.
// The returned payload aliases r's buffer (the per-type decoders copy
// whatever state they keep), so unwrapping a snapshot or a peer's
// merge envelope allocates nothing.
func openEnvelope(r *binenc.Reader) (Kind, []byte, error) {
	ver := r.Uvarint()
	kind := r.Uvarint()
	payload := r.BytesView()
	if err := r.Err(); err != nil {
		return KindInvalid, nil, fmt.Errorf("knw: corrupt envelope: %w", err)
	}
	if ver != envVersion {
		return KindInvalid, nil, fmt.Errorf("knw: unsupported envelope version %d", ver)
	}
	if len(r.Buf) != 0 {
		return KindInvalid, nil, fmt.Errorf("knw: %d trailing bytes after envelope", len(r.Buf))
	}
	if kind > uint64(^Kind(0)) {
		return KindInvalid, nil, fmt.Errorf("knw: envelope kind %d out of range", kind)
	}
	return Kind(kind), payload, nil
}

// Open restores a sketch from a MarshalBinary blob, picking the
// concrete type from the envelope's kind tag (or, for pre-envelope
// blobs, from the per-type magic), so callers keep exactly one restore
// path however the sketch was built:
//
//	est, err := knw.Open(blob)
//	if err != nil { ... }
//	fmt.Println(est.Name(), est.Estimate())
//
// The returned estimator is the kind's concrete type (*F0, *L0,
// *ConcurrentF0, *ConcurrentL0) behind the Estimator interface;
// type-assert — or probe for TurnstileEstimator — for the wider
// surfaces. Open never panics on corrupt, truncated, or adversarial
// input; it returns an error.
func Open(data []byte) (Estimator, error) {
	r := binenc.Reader{Buf: data}
	magic := r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("knw: not a sketch payload: %w", r.Err())
	}
	if magic == deltaMagic {
		return nil, fmt.Errorf("knw: KNWD delta envelope needs a base to apply to (see ApplyDelta)")
	}
	if magic == envMagic {
		kind, payload, err := openEnvelope(&r)
		if err != nil {
			return nil, err
		}
		info, ok := kindRegistry[kind]
		if !ok {
			return nil, fmt.Errorf("knw: envelope holds unknown kind %d (newer writer?)", uint64(kind))
		}
		if info.empty == nil {
			return nil, fmt.Errorf("knw: kind %s does not serialize", kind)
		}
		sk := info.empty()
		if err := sk.unmarshalLegacy(payload); err != nil {
			return nil, err
		}
		return sk, nil
	}
	// Pre-envelope blob: dispatch on the per-type magic.
	for _, kind := range Kinds() {
		info := kindRegistry[kind]
		if info.empty == nil || info.legacyMagic != magic {
			continue
		}
		sk := info.empty()
		if err := sk.unmarshalLegacy(data); err != nil {
			return nil, err
		}
		return sk, nil
	}
	return nil, fmt.Errorf("knw: unrecognized payload magic %#x", magic)
}
