package knw

import (
	"fmt"
	"math"
	"testing"
)

func TestF0EndToEnd(t *testing.T) {
	sk := NewF0(WithEpsilon(0.1), WithSeed(1))
	const f0 = 300000
	for i := 0; i < f0; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		sk.Add(k)
		sk.Add(k) // duplicates are free
	}
	got := sk.Estimate()
	if rel := math.Abs(got-f0) / f0; rel > 0.1 {
		t.Errorf("estimate %v (rel %.3f > ε)", got, rel)
	}
}

func TestF0SmallCountsExact(t *testing.T) {
	sk := NewF0(WithSeed(2))
	for i := 0; i < 42; i++ {
		sk.AddString(fmt.Sprintf("user-%d", i))
	}
	if got := sk.Estimate(); got != 42 {
		t.Errorf("small count not exact: %v", got)
	}
}

func TestF0StringsAndBytes(t *testing.T) {
	a := NewF0(WithSeed(3))
	b := NewF0(WithSeed(3))
	a.AddString("hello")
	b.AddBytes([]byte("hello"))
	if a.Estimate() != b.Estimate() {
		t.Error("AddString and AddBytes disagree")
	}
}

func TestF0DeterministicWithSeed(t *testing.T) {
	mk := func() float64 {
		sk := NewF0(WithSeed(4), WithEpsilon(0.2))
		for i := 0; i < 100000; i++ {
			sk.Add(uint64(i) * 2654435761)
		}
		return sk.Estimate()
	}
	if mk() != mk() {
		t.Error("same seed produced different estimates")
	}
}

func TestF0Merge(t *testing.T) {
	opts := []Option{WithSeed(5), WithEpsilon(0.1)}
	a, b, whole := NewF0(opts...), NewF0(opts...), NewF0(opts...)
	for i := 0; i < 200000; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		whole.Add(k)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, want := a.Estimate(), whole.Estimate()
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("merged %v vs whole-stream %v", got, want)
	}
}

func TestF0MergeConfigMismatch(t *testing.T) {
	a := NewF0(WithSeed(6))
	b := NewF0(WithSeed(7))
	if err := a.Merge(b); err == nil {
		t.Error("merging different seeds must fail")
	}
	c := NewF0(WithSeed(6), WithEpsilon(0.1))
	if err := a.Merge(c); err == nil {
		t.Error("merging different epsilons must fail")
	}
}

func TestF0ReferenceMode(t *testing.T) {
	sk := NewF0(WithReference(), WithSeed(8), WithEpsilon(0.2), WithCopies(1))
	for i := 0; i < 50000; i++ {
		sk.Add(uint64(i) * 2654435761)
	}
	if rel := math.Abs(sk.Estimate()-50000) / 50000; rel > 0.3 {
		t.Errorf("reference mode rel error %.3f", rel)
	}
	if sk.Name() != "KNW-F0(ref)" {
		t.Errorf("Name()=%q", sk.Name())
	}
}

func TestF0LnTableMode(t *testing.T) {
	sk := NewF0(WithLnTable(), WithSeed(9), WithEpsilon(0.2), WithCopies(1))
	for i := 0; i < 50000; i++ {
		sk.Add(uint64(i) * 2654435761)
	}
	if rel := math.Abs(sk.Estimate()-50000) / 50000; rel > 0.3 {
		t.Errorf("lntable mode rel error %.3f", rel)
	}
}

func TestF0CopiesFromDelta(t *testing.T) {
	few := NewF0(WithSeed(10), WithDelta(0.4))
	many := NewF0(WithSeed(10), WithDelta(0.001))
	if many.Copies() <= few.Copies() {
		t.Errorf("copies: δ=0.4 → %d, δ=0.001 → %d", few.Copies(), many.Copies())
	}
	if got := NewF0(WithSeed(10), WithCopies(7)).Copies(); got != 7 {
		t.Errorf("WithCopies(7) → %d", got)
	}
}

func TestF0SpaceBitsPositiveAndScales(t *testing.T) {
	small := NewF0(WithSeed(11), WithEpsilon(0.2), WithCopies(1)).SpaceBits()
	big := NewF0(WithSeed(11), WithEpsilon(0.02), WithCopies(1)).SpaceBits()
	if small <= 0 || big <= small {
		t.Errorf("space: ε=0.2 → %d, ε=0.02 → %d", small, big)
	}
}

func TestOptionValidation(t *testing.T) {
	for _, opt := range []Option{
		WithEpsilon(0), WithEpsilon(1), WithDelta(0), WithDelta(1),
		WithCopies(0), WithUniverseBits(3), WithUniverseBits(63),
		WithUpdateBits(0), WithUpdateBits(63),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from invalid option")
				}
			}()
			NewF0(opt)
		}()
	}
}

func TestL0EndToEnd(t *testing.T) {
	sk := NewL0(WithEpsilon(0.1), WithSeed(12))
	const live = 50000
	keys := make([]uint64, live+20000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		sk.Update(keys[i], 7)
	}
	for i := live; i < len(keys); i++ {
		sk.Update(keys[i], -7) // fully delete the extras
	}
	got := sk.Estimate()
	if rel := math.Abs(got-live) / live; rel > 0.15 {
		t.Errorf("L0 estimate %v (rel %.3f)", got, rel)
	}
}

func TestL0SmallExact(t *testing.T) {
	sk := NewL0(WithSeed(13))
	for i := 0; i < 70; i++ {
		sk.Update(uint64(i)+1, int64(i%5)-2) // some zero deltas: no-ops
	}
	// Keys with delta 0 (i%5==2) were never actually inserted.
	want := 0
	for i := 0; i < 70; i++ {
		if int64(i%5)-2 != 0 {
			want++
		}
	}
	if got := sk.Estimate(); got != float64(want) {
		t.Errorf("small L0: got %v want %d", got, want)
	}
}

func TestL0AddMatchesF0Semantics(t *testing.T) {
	sk := NewL0(WithSeed(14))
	for i := 0; i < 80; i++ {
		sk.Add(uint64(i) + 1)
		sk.Add(uint64(i) + 1) // duplicate inserts accumulate frequency 2
	}
	if got := sk.Estimate(); got != 80 {
		t.Errorf("L0 Add semantics: %v want 80", got)
	}
}

func TestL0MergeColumnDiff(t *testing.T) {
	// The data-cleaning pattern: column A as +1s, column B as −1s in a
	// second sketch, merged; the estimate is the symmetric difference.
	opts := []Option{WithSeed(15), WithEpsilon(0.1)}
	a, b := NewL0(opts...), NewL0(opts...)
	for i := 0; i < 30000; i++ {
		k := uint64(i)*0x9e3779b97f4a7c15 + 1
		a.Update(k, 1)
		if i < 29000 { // B misses the last 1000 rows
			b.Update(k, -1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Estimate()
	if math.Abs(got-1000)/1000 > 0.25 {
		t.Errorf("column diff %v want ~1000", got)
	}
}

func TestFnv1a(t *testing.T) {
	// Spot-check against the published FNV-1a test vector.
	if got := fnv1a([]byte("")); got != 14695981039346656037 {
		t.Errorf("fnv1a(\"\") = %d", got)
	}
	if fnv1a([]byte("a")) == fnv1a([]byte("b")) {
		t.Error("collision on trivial inputs")
	}
}

func BenchmarkF0Add(b *testing.B) {
	sk := NewF0(WithSeed(1), WithCopies(1))
	for i := 0; i < b.N; i++ {
		sk.Add(uint64(i) * 2654435761)
	}
}

func BenchmarkL0UpdatePublic(b *testing.B) {
	sk := NewL0(WithSeed(1), WithCopies(1))
	for i := 0; i < b.N; i++ {
		sk.Update(uint64(i)*2654435761, 1)
	}
}
