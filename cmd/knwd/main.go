// Command knwd is the KNW sketch daemon: a multi-tenant cardinality
// service over the paper's F0/L0 estimators. Pods POST keys at it,
// dashboards GET estimates, Prometheus scrapes /metrics, peer nodes
// exchange snapshot envelopes through /v1/merge, and a background
// checkpoint loop makes restarts lose at most one checkpoint
// interval.
//
//	knwd -listen :7070 -checkpoint-dir /var/lib/knwd \
//	     -kind concurrent-f0 -epsilon 0.02 -seed 1 \
//	     -window-buckets 6 -window-interval 10m \
//	     -ready-file /run/knwd/ready
//
// Cluster mode joins N such daemons into one logical service (all
// peers must share -kind, sketch options, and -seed):
//
//	knwd -listen :7070 -seed 1 -replication 2 \
//	     -self http://10.0.0.1:7070 \
//	     -peers http://10.0.0.1:7070,http://10.0.0.2:7070,http://10.0.0.3:7070
//
// Membership is dynamic: a new node can join a running cluster through
// any existing member (-join), and -drain makes SIGTERM hand the
// node's sketches to the surviving owners before it stops:
//
//	knwd -listen :7074 -seed 1 -drain \
//	     -self http://10.0.0.4:7070 -join http://10.0.0.1:7070
//
// See the repository README ("Running knwd", "Cluster mode") for the
// API and curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	knw "repro"
	"repro/cluster"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/service"
	"repro/store"
)

func main() {
	var (
		listen       = flag.String("listen", ":7070", "HTTP listen address")
		kindName     = flag.String("kind", "concurrent-f0", "sketch kind for every store (a wire kind: f0, l0, concurrent-f0, concurrent-l0)")
		eps          = flag.Float64("epsilon", 0.05, "target relative standard error")
		delta        = flag.Float64("delta", 0.05, "failure probability (copies = O(log 1/delta))")
		seed         = flag.Int64("seed", 0, "sketch seed; REQUIRED (non-zero) for cross-node merging — peers must share it")
		shards       = flag.Int("shards", 0, "shard count for the concurrent kinds (0 = one per CPU)")
		universeBits = flag.Uint("universe-bits", 32, "log2 of the key universe")
		ckptDir      = flag.String("checkpoint-dir", "", "checkpoint directory (empty = no persistence)")
		ckptEvery    = flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint interval")
		winBuckets   = flag.Int("window-buckets", 0, "window ring size (0 = windowing off)")
		winInterval  = flag.Duration("window-interval", time.Minute, "width of one window bucket")
		readyFile    = flag.String("ready-file", "", "write the bound listen address to this file once serving (readiness probe for scripts)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling; do not expose publicly)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every cluster member including this node (e.g. http://10.0.0.1:7070,...); empty = single-node mode")
		selfURL      = flag.String("self", "", "this node's own base URL, exactly as it appears in -peers (required with -peers or -join)")
		joinVia      = flag.String("join", "", "base URL of an existing cluster member to join through; the node boots alone and is rebalanced in (requires -self and a shared -seed)")
		drain        = flag.Bool("drain", false, "on SIGTERM/SIGINT, leave the ring first: hand re-owned sketches to the surviving owners and commit the shrunken epoch before stopping")
		replication  = flag.Int("replication", 1, "cluster replicas per key, in [1, len(peers)]")
		gossipEvery  = flag.Duration("gossip-interval", 0, "anti-entropy gossip interval (cluster mode); 0 disables gossip. With gossip on, estimates answer O(1) from the merged replica view, staleness bounded by ~2x this interval")
		gossipFanout = flag.Int("gossip-fanout", 0, "peers synced per gossip round (0 = all peers every round)")
		traceSample  = flag.Float64("trace-sample", 0.01, "probability a request starts a trace, in [0, 1] (sampled traces appear in GET /v1/debug/traces)")
		traceSlowMs  = flag.Float64("trace-slow-ms", 250, "record and log every request at least this slow even when unsampled; 0 disables")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		showVersion  = flag.Bool("version", false, "print the knwd version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Printf("knwd %s (%s)\n", version.Version, runtime.Version())
		return
	}

	logger, err := trace.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatalf("knwd: %v", err)
	}

	kind, err := knw.ParseKind(*kindName)
	if err != nil {
		log.Fatalf("knwd: %v", err)
	}
	opts := []knw.Option{
		knw.WithEpsilon(*eps),
		knw.WithDelta(*delta),
		knw.WithUniverseBits(*universeBits),
	}
	switch {
	case *seed != 0:
		opts = append(opts, knw.WithSeed(*seed))
	case *ckptDir != "":
		// Persistence without an explicit seed: pin a per-directory seed
		// in a sidecar file. Without this, every restart would draw a
		// fresh time seed and reject its own checkpoint as incompatible.
		s, err := loadOrCreateSeed(*ckptDir)
		if err != nil {
			log.Fatalf("knwd: %v", err)
		}
		opts = append(opts, knw.WithSeed(s))
		fmt.Fprintf(os.Stderr, "knwd: no -seed given; using persisted seed %d from %s (peers need the same seed to merge)\n", s, *ckptDir)
	default:
		fmt.Fprintln(os.Stderr, "knwd: warning: no -seed given; snapshots from this node will not merge into other nodes")
	}
	if *shards > 0 {
		opts = append(opts, knw.WithShards(*shards))
	}

	var clusterCfg *cluster.Config
	if *peers != "" || *joinVia != "" {
		if *selfURL == "" {
			log.Fatal("knwd: cluster mode requires -self (this node's own URL)")
		}
		if *seed == 0 {
			// Merging across nodes is the whole point of cluster mode, and
			// envelopes only merge under a shared seed.
			log.Fatal("knwd: cluster mode requires an explicit -seed shared by every peer")
		}
		peerList := []string{*selfURL}
		if *peers != "" {
			peerList = strings.Split(*peers, ",")
		}
		clusterCfg = &cluster.Config{
			Self:           *selfURL,
			Peers:          peerList,
			Replication:    *replication,
			GossipInterval: *gossipEvery,
			GossipFanout:   *gossipFanout,
			Log:            logger,
		}
	} else if *gossipEvery > 0 {
		log.Fatal("knwd: -gossip-interval needs cluster mode (-peers/-self)")
	}
	if *drain && clusterCfg == nil {
		log.Fatal("knwd: -drain needs cluster mode (-peers or -join)")
	}

	srv, err := service.New(service.Config{
		Store: store.Config{
			Kind:    kind,
			Options: opts,
			Window:  store.Window{Buckets: *winBuckets, Interval: *winInterval},
		},
		Cluster:         clusterCfg,
		JoinVia:         *joinVia,
		DrainOnShutdown: *drain,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Pprof:           *pprofOn,
		Log:             logger,
		Trace: trace.Config{
			Sample: *traceSample,
			Slow:   time.Duration(*traceSlowMs * float64(time.Millisecond)),
			Log:    logger,
		},
		OnListen: func(addr net.Addr) {
			// The ready file appears only after the listener is bound, so
			// scripts wait on the file instead of sleep-polling the port.
			if *readyFile == "" {
				return
			}
			if werr := os.WriteFile(*readyFile, []byte(addr.String()+"\n"), 0o644); werr != nil {
				logger.Error("writing ready file", "path", *readyFile, "err", werr)
			}
		},
	})
	if err != nil {
		log.Fatalf("knwd: %v", err)
	}

	// SIGINT/SIGTERM cancel the context; Run drains requests and writes
	// the final checkpoint before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *listen); err != nil {
		log.Fatalf("knwd: %v", err)
	}
}

// loadOrCreateSeed reads dir/seed, or draws a time seed and writes it
// on first run, so unseeded daemons keep one sketch identity across
// restarts (checkpoints only load under the seed they were written
// with).
func loadOrCreateSeed(dir string) (int64, error) {
	path := filepath.Join(dir, "seed")
	if b, err := os.ReadFile(path); err == nil {
		s, perr := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
		if perr != nil || s == 0 {
			return 0, fmt.Errorf("corrupt seed file %s: %q", path, b)
		}
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	s := time.Now().UnixNano()
	if err := os.WriteFile(path, []byte(strconv.FormatInt(s, 10)+"\n"), 0o644); err != nil {
		return 0, err
	}
	return s, nil
}
