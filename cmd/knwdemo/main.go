// knwdemo explores the KNW sketch interactively: accuracy sweeps
// across ε and F0, the RoughEstimator's all-times behaviour, and the
// worst-case update-latency profile of the Theorem 9 implementation.
//
// Usage:
//
//	knwdemo -mode sweep            # error vs ε and F0 (default)
//	knwdemo -mode rough            # RoughEstimator tracking a growing stream
//	knwdemo -mode latency          # per-update latency quantiles at rescales
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	knw "repro"
	"repro/internal/baseline"
	"repro/internal/rough"
	"repro/internal/simulate"
	"repro/internal/stream"
)

func main() {
	mode := flag.String("mode", "sweep", "sweep | rough | latency")
	seed := flag.Int64("seed", 1, "random seed")
	kindName := flag.String("kind", "f0", "estimator kind for -mode sweep (see knw.Kinds)")
	flag.Parse()

	switch *mode {
	case "sweep":
		kind, err := knw.ParseKind(*kindName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sweep(kind, *seed)
	case "rough":
		roughDemo(*seed)
	case "latency":
		latency(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// sweep drives any registered estimator kind through the accuracy
// grid — the registry means this demo needs no per-algorithm code.
func sweep(kind knw.Kind, seed int64) {
	fmt.Printf("accuracy sweep: kind=%s (δ=0.05)\n", kind)
	fmt.Printf("%8s %10s %12s %12s %10s\n", "eps", "F0", "estimate", "rel.err", "KiB")
	for _, eps := range []float64{0.3, 0.1, 0.05, 0.03} {
		for _, f0 := range []int{1000, 100_000, 2_000_000} {
			sk, err := knw.New(kind, knw.WithEpsilon(eps), knw.WithSeed(seed))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			s := stream.NewUniform(f0, f0, seed)
			stream.Drain(s, sk.Add)
			est := sk.Estimate()
			fmt.Printf("%8.2f %10d %12.0f %11.3f%% %10d\n",
				eps, f0, est, 100*(est-float64(f0))/float64(f0), sk.SpaceBits()/8/1024)
		}
	}
}

func roughDemo(seed int64) {
	fmt.Println("RoughEstimator (Figure 2): the estimate must stay within [F0, 8·F0]")
	fmt.Println("at EVERY point of the stream (Theorem 1), using O(log n) bits.")
	rng := rand.New(rand.NewSource(seed))
	re := rough.New(rough.Config{LogN: 32, Fast: true}, rng)
	fmt.Printf("%12s %12s %8s %s\n", "F0(t)", "estimate", "ratio", "within [1x, 8x]?")
	n := uint64(0)
	for _, target := range []uint64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		for n < target {
			n++
			re.Update(rng.Uint64())
		}
		est := re.Estimate()
		ratio := float64(est) / float64(n)
		ok := "YES"
		if est < n || est > 8*n {
			ok = "NO (failure event, prob o(1))"
		}
		fmt.Printf("%12d %12d %8.2f %s\n", n, est, ratio, ok)
	}
	fmt.Printf("\nstate: %d bits (K_RE=%d, three sub-estimators)\n",
		re.SpaceBits(), re.KRE())
}

func latency(seed int64) {
	fmt.Println("per-update latency of the Theorem 9 (worst-case O(1)) implementation")
	fmt.Println("across a stream crossing many rescale boundaries:")
	sk := knw.NewF0(knw.WithEpsilon(0.03), knw.WithSeed(seed), knw.WithCopies(1))
	prof := simulate.MeasureLatency(adapter{sk}, stream.NewUniform(4_000_000, 4_000_000, seed))
	fmt.Printf("  p50=%v p99=%v p99.9=%v max=%v over %d updates\n",
		prof.P50, prof.P99, prof.P999, prof.Max, prof.N)
	fmt.Println("\nfor contrast, the reference (amortized) implementation pays Θ(K) at")
	fmt.Println("each rescale:")
	ref := knw.NewF0(knw.WithEpsilon(0.03), knw.WithSeed(seed), knw.WithCopies(1), knw.WithReference())
	prof2 := simulate.MeasureLatency(adapter{ref}, stream.NewUniform(4_000_000, 4_000_000, seed))
	fmt.Printf("  p50=%v p99=%v p99.9=%v max=%v over %d updates\n",
		prof2.P50, prof2.P99, prof2.P999, prof2.Max, prof2.N)
}

// adapter narrows *knw.F0 to the harness interface.
type adapter struct{ *knw.F0 }

var _ baseline.F0Estimator = adapter{}
