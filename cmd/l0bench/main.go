// l0bench compares the paper's L0 sketch against the Ganguly-style
// baseline (experiment E7) on turnstile workloads with deletions,
// reporting accuracy, space, and update latency — including the
// mixed-sign-frequency case Ganguly's algorithm does not support.
//
// Usage:
//
//	l0bench [-live N] [-churn N] [-eps E] [-trials T] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	knw "repro"
	"repro/internal/stream"
)

func main() {
	live := flag.Int("live", 100_000, "items with nonzero final frequency")
	churn := flag.Int("churn", 100_000, "items inserted then fully deleted")
	eps := flag.Float64("eps", 0.1, "target relative error")
	trials := flag.Int("trials", 5, "independent trials")
	seed := flag.Int64("seed", 1, "base random seed")
	batch := flag.Int("batch", 1024, "ingest through UpdateBatch in batches of this many updates (0: per-update)")
	flag.Parse()

	type result struct {
		name             string
		rms, maxErr      float64
		bits             int
		nsPerUpdate      float64
		handlesNegatives bool
	}

	type turnstile interface {
		Update(key uint64, delta int64)
		UpdateBatch(keys []uint64, deltas []int64)
		Estimate() float64
		SpaceBits() int
	}

	run := func(name string, handlesNeg bool, mk func(trial int) turnstile) result {
		sum2, maxe, sumNs := 0.0, 0.0, 0.0
		bits := 0
		for trial := 0; trial < *trials; trial++ {
			sk := mk(trial)
			est, spaceBits := sk.Estimate, sk.SpaceBits
			cfg := stream.ChurnConfig{
				Live: *live, Churned: *churn,
				Negative: 0, Seed: *seed + int64(trial),
			}
			if handlesNeg {
				cfg.Negative = *live / 10
			}
			ch := stream.NewChurn(cfg)
			start := time.Now()
			var n int
			if *batch > 0 {
				n = stream.DrainTurnstileBatch(ch, *batch, sk.UpdateBatch)
			} else {
				n = stream.DrainTurnstile(ch, sk.Update)
			}
			sumNs += float64(time.Since(start).Nanoseconds()) / float64(n)
			rel := (est() - float64(ch.TrueL0())) / float64(ch.TrueL0())
			sum2 += rel * rel
			if a := math.Abs(rel); a > maxe {
				maxe = a
			}
			bits = spaceBits()
		}
		return result{name, math.Sqrt(sum2 / float64(*trials)), maxe, bits,
			sumNs / float64(*trials), handlesNeg}
	}

	// Both rows come out of the kind registry: knw.NewTurnstile is the
	// deletion-supporting slice of the same factory the service layer
	// uses.
	mkKind := func(kind knw.Kind, opts ...knw.Option) func(t int) turnstile {
		return func(t int) turnstile {
			est, err := knw.NewTurnstile(kind, append(opts[:len(opts):len(opts)],
				knw.WithSeed(*seed+int64(t)))...)
			if err != nil {
				panic(err)
			}
			return est
		}
	}
	knwRes := run("KNW-L0 (this paper)", true,
		mkKind(knw.KindL0, knw.WithEpsilon(*eps), knw.WithCopies(1)))
	gangulyRes := run("Ganguly-style [22]", false,
		mkKind(knw.KindGangulyL0, knw.WithEpsilon(*eps), knw.WithK(4096)))

	fmt.Printf("L0 with deletions: live=%d churned=%d eps=%.3f (%d trials, batch=%d)\n\n",
		*live, *churn, *eps, *trials, *batch)
	fmt.Printf("%-24s %10s %10s %14s %12s %14s\n",
		"algorithm", "rms.err", "max.err", "space(bits)", "ns/update", "neg. freqs?")
	for _, r := range []result{knwRes, gangulyRes} {
		fmt.Printf("%-24s %9.3f%% %9.3f%% %14d %12.1f %14v\n",
			r.name, 100*r.rms, 100*r.maxErr, r.bits, r.nsPerUpdate, r.handlesNegatives)
	}
	fmt.Println("\npaper claim (Section 1): KNW improves Ganguly's O(eps^-2 log n log mM) bits")
	fmt.Println("to O(eps^-2 log n (log 1/eps + loglog mM)) and O(log 1/eps) update to O(1),")
	fmt.Println("while additionally supporting negative frequencies.")
}
