// f0bench reproduces Figure 1 of the paper empirically (experiment
// E1): it sweeps every implemented algorithm over the same workloads
// and prints measured space (bits of state), update latency, and
// accuracy, alongside each algorithm's theoretical space formula.
//
// Usage:
//
//	f0bench [-f0 N] [-eps E] [-trials T] [-workload uniform|zipf|sequential] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	knw "repro"
	"repro/internal/baseline"
	"repro/internal/simulate"
	"repro/internal/stream"
)

func main() {
	f0 := flag.Int("f0", 1_000_000, "distinct elements in the stream")
	eps := flag.Float64("eps", 0.05, "target relative error for the ε-parameterized algorithms")
	trials := flag.Int("trials", 5, "independent trials per algorithm")
	workload := flag.String("workload", "uniform", "uniform | zipf | sequential")
	seed := flag.Int64("seed", 1, "base random seed")
	batch := flag.Int("batch", 1024, "ingest through AddBatch in batches of this many keys (0: per-key Add)")
	flag.Parse()

	mkStream := func(trial int) stream.F0Stream {
		s := *seed + int64(trial)*1000
		switch *workload {
		case "uniform":
			return stream.NewUniform(*f0, *f0*2, s)
		case "zipf":
			return stream.NewZipf(uint64(*f0)*8, 1.1, *f0*2, s)
		case "sequential":
			return stream.NewSequential(*f0, *f0*2)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
			panic("unreachable")
		}
	}

	// The sweep is registry-driven: every row names a knw.Kind and the
	// options that parameterize it, and knw.New builds the estimator —
	// the same front door a service or harness uses, so adding an
	// algorithm to the registry is all it takes to appear here.
	type algo struct {
		name    string
		formula string   // the Figure 1 space bound
		kind    knw.Kind // registry tag
		opts    []knw.Option
	}
	common := []knw.Option{knw.WithEpsilon(*eps)}
	algos := []algo{
		{"KNW-F0 (this paper)", "O(eps^-2 + log n)", knw.KindF0,
			append([]knw.Option{knw.WithCopies(1)}, common...)},
		{"KNW-F0 (reference)", "O(eps^-2 + log n)", knw.KindF0,
			append([]knw.Option{knw.WithCopies(1), knw.WithReference()}, common...)},
		{"FM85-PCSA [20]", "O(log n), const eps", knw.KindFM85, common},
		{"AMS [3]", "O(log n), const eps", knw.KindAMS,
			append([]knw.Option{knw.WithCopies(9)}, common...)},
		{"GT [24]", "O(eps^-2 log n)", knw.KindGT, common},
		{"KMV / BJKST-I [4]", "O(eps^-2 log n)", knw.KindKMV, common},
		{"BJKST-II [4]", "O(eps^-2 loglog n + ...)", knw.KindBJKST, common},
		{"LogLog [16]", "O(eps^-2 loglog n)", knw.KindLogLog, common},
		{"Estan bitmap [17]", "O(eps^-2 log n)", knw.KindLinearCounting,
			append([]knw.Option{knw.WithK(*f0 * 8)}, common...)},
		{"HyperLogLog [19]", "O(eps^-2 loglog n)", knw.KindHyperLogLog, common},
	}
	mkAlgo := func(a algo) func(trial int) baseline.F0Estimator {
		return func(t int) baseline.F0Estimator {
			est, err := knw.New(a.kind, append(a.opts[:len(a.opts):len(a.opts)],
				knw.WithSeed(*seed+int64(t)))...)
			if err != nil {
				panic(err)
			}
			return est
		}
	}

	fmt.Printf("Figure 1 reproduction: F0=%d, eps=%.3f, workload=%s, %d trials, batch=%d\n\n",
		*f0, *eps, *workload, *trials, *batch)
	var rows []simulate.Aggregate
	for _, a := range algos {
		mk := mkAlgo(a)
		var agg simulate.Aggregate
		if *batch > 0 {
			agg = simulate.RunTrialsBatch(*trials, *batch, mk, mkStream)
		} else {
			agg = simulate.RunTrials(*trials, mk, mkStream)
		}
		agg.Algorithm = a.name
		rows = append(rows, agg)
	}
	fmt.Print(simulate.FormatAggregates(rows))

	fmt.Println("\ntheoretical space (Figure 1):")
	for _, a := range algos {
		fmt.Printf("  %-24s %s\n", a.name, a.formula)
	}
	fmt.Println("\nNotes: KNW's win is asymptotic — its eps^-2 term carries no log n factor")
	fmt.Println("and no random-oracle assumption; at practical (eps, n) the oracle-based")
	fmt.Println("HyperLogLog has smaller constants. See EXPERIMENTS.md §E1.")
}
