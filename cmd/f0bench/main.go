// f0bench reproduces Figure 1 of the paper empirically (experiment
// E1): it sweeps every implemented algorithm over the same workloads
// and prints measured space (bits of state), update latency, and
// accuracy, alongside each algorithm's theoretical space formula.
//
// Usage:
//
//	f0bench [-f0 N] [-eps E] [-trials T] [-workload uniform|zipf|sequential] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	knw "repro"
	"repro/internal/baseline"
	"repro/internal/simulate"
	"repro/internal/stream"
)

func main() {
	f0 := flag.Int("f0", 1_000_000, "distinct elements in the stream")
	eps := flag.Float64("eps", 0.05, "target relative error for the ε-parameterized algorithms")
	trials := flag.Int("trials", 5, "independent trials per algorithm")
	workload := flag.String("workload", "uniform", "uniform | zipf | sequential")
	seed := flag.Int64("seed", 1, "base random seed")
	batch := flag.Int("batch", 1024, "ingest through AddBatch in batches of this many keys (0: per-key Add)")
	flag.Parse()

	mkStream := func(trial int) stream.F0Stream {
		s := *seed + int64(trial)*1000
		switch *workload {
		case "uniform":
			return stream.NewUniform(*f0, *f0*2, s)
		case "zipf":
			return stream.NewZipf(uint64(*f0)*8, 1.1, *f0*2, s)
		case "sequential":
			return stream.NewSequential(*f0, *f0*2)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
			panic("unreachable")
		}
	}

	type algo struct {
		name    string
		formula string // the Figure 1 space bound
		mk      func(trial int) baseline.F0Estimator
	}
	algos := []algo{
		{"KNW-F0 (this paper)", "O(eps^-2 + log n)", func(t int) baseline.F0Estimator {
			return knw.NewF0(knw.WithEpsilon(*eps), knw.WithSeed(*seed+int64(t)), knw.WithCopies(1))
		}},
		{"KNW-F0 (reference)", "O(eps^-2 + log n)", func(t int) baseline.F0Estimator {
			return knw.NewF0(knw.WithEpsilon(*eps), knw.WithSeed(*seed+int64(t)), knw.WithCopies(1), knw.WithReference())
		}},
		{"FM85-PCSA [20]", "O(log n), const eps", func(t int) baseline.F0Estimator {
			return baseline.NewFM85(64, uint64(*seed)+uint64(t))
		}},
		{"AMS [3]", "O(log n), const eps", func(t int) baseline.F0Estimator {
			return baseline.NewAMS(9, 32, rand.New(rand.NewSource(*seed+int64(t))))
		}},
		{"GT [24]", "O(eps^-2 log n)", func(t int) baseline.F0Estimator {
			return baseline.NewGT(baseline.TForEpsilon(*eps)/24, 32, rand.New(rand.NewSource(*seed+int64(t))))
		}},
		{"KMV / BJKST-I [4]", "O(eps^-2 log n)", func(t int) baseline.F0Estimator {
			return baseline.NewKMV(baseline.TForEpsilon(*eps)/24, rand.New(rand.NewSource(*seed+int64(t))))
		}},
		{"BJKST-II [4]", "O(eps^-2 loglog n + ...)", func(t int) baseline.F0Estimator {
			return baseline.NewBJKST(baseline.TForEpsilon(*eps)/24, 32, rand.New(rand.NewSource(*seed+int64(t))))
		}},
		{"LogLog [16]", "O(eps^-2 loglog n)", func(t int) baseline.F0Estimator {
			return baseline.NewLogLog(maxi(64, baseline.MForEpsilon(*eps)*2), uint64(*seed)+uint64(t))
		}},
		{"Estan bitmap [17]", "O(eps^-2 log n)", func(t int) baseline.F0Estimator {
			return baseline.NewLinearCounting(*f0*8, uint64(*seed)+uint64(t))
		}},
		{"HyperLogLog [19]", "O(eps^-2 loglog n)", func(t int) baseline.F0Estimator {
			return baseline.NewHyperLogLog(baseline.MForEpsilon(*eps), uint64(*seed)+uint64(t))
		}},
	}

	fmt.Printf("Figure 1 reproduction: F0=%d, eps=%.3f, workload=%s, %d trials, batch=%d\n\n",
		*f0, *eps, *workload, *trials, *batch)
	var rows []simulate.Aggregate
	for _, a := range algos {
		var agg simulate.Aggregate
		if *batch > 0 {
			agg = simulate.RunTrialsBatch(*trials, *batch, a.mk, mkStream)
		} else {
			agg = simulate.RunTrials(*trials, a.mk, mkStream)
		}
		agg.Algorithm = a.name
		rows = append(rows, agg)
	}
	fmt.Print(simulate.FormatAggregates(rows))

	fmt.Println("\ntheoretical space (Figure 1):")
	for _, a := range algos {
		fmt.Printf("  %-24s %s\n", a.name, a.formula)
	}
	fmt.Println("\nNotes: KNW's win is asymptotic — its eps^-2 term carries no log n factor")
	fmt.Println("and no random-oracle assumption; at practical (eps, n) the oracle-based")
	fmt.Println("HyperLogLog has smaller constants. See EXPERIMENTS.md §E1.")
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
