package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Query-side load and truth validation (-query-ratio): /v1/query reads
// interleaved into the mixed phase, a dedicated per-mode query QPS
// phase, and — the part no estimate-only run covers — a final
// validation of the set-algebra answers against exact truth. The
// generator already tracks every drawn key id in per-store bitsets, so
// the true union is popcount(A|B), the true intersection popcount(A&B),
// and /v1/query's inclusion–exclusion estimates are judged against the
// paper bounds: union within ε·|A∪B|, intersection within
// ε·(|A|+|B|+|A∪B|) (error scales with the unions, not the
// intersection).

// boundSlack widens the (ε,δ) bounds for single-run CI checks: each
// bound holds with probability ≥ 1−δ per sketch, and the slack keeps
// the rare tail from flaking a pipeline.
const boundSlack = 1.5

// queryWire is the slice of the /v1/query response the harness reads.
type queryWire struct {
	Mode                 string    `json:"mode"`
	Cardinalities        []float64 `json:"cardinalities"`
	Union                float64   `json:"union"`
	Intersection         float64   `json:"intersection"`
	Jaccard              float64   `json:"jaccard"`
	Epsilon              float64   `json:"epsilon"`
	IntersectionErrBound float64   `json:"intersection_err_bound"`
	Partial              bool      `json:"partial"`
}

// getSetQuery reads one store pair's set algebra through the named
// mode ("" = the server default).
func getSetQuery(client *http.Client, base, mode, a, b string) (queryWire, error) {
	url := base + "/v1/query?stores=" + a + "," + b
	if mode != "" {
		url += "&mode=" + mode
	}
	var qw queryWire
	resp, err := client.Get(url)
	if err != nil {
		return qw, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return qw, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return qw, errStoreMiss
	}
	if resp.StatusCode != http.StatusOK {
		return qw, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qw); err != nil {
		return qw, err
	}
	return qw, nil
}

// queryStats accumulates one mode's query-read observations.
type queryStats struct {
	lats   []float64
	count  int
	errors int
}

func (st *queryStats) observe(client *http.Client, base, mode, a, b string) error {
	t0 := time.Now()
	_, err := getSetQuery(client, base, mode, a, b)
	st.count++
	if err != nil && !errors.Is(err, errStoreMiss) {
		st.errors++
		return err
	}
	st.lats = append(st.lats, time.Since(t0).Seconds()*1e3)
	return nil
}

func (st *queryStats) merge(other *queryStats) {
	st.lats = append(st.lats, other.lats...)
	st.count += other.count
	st.errors += other.errors
}

// queryPhase hammers /v1/query in one mode with the full worker pool
// for dur — the set-algebra read-throughput counterpart of readPhase.
func queryPhase(client *http.Client, addrs []string, mode string, names []string, workers int, dur time.Duration) (*queryStats, time.Duration) {
	var (
		wg  sync.WaitGroup
		out = make(chan *queryStats, workers)
	)
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &queryStats{}
			for i := w; time.Now().Before(deadline); i++ {
				a := names[i%len(names)]
				b := names[(i+1)%len(names)]
				if err := st.observe(client, addrs[i%len(addrs)], mode, a, b); err != nil {
					logx.Warn("query phase request failed", "mode", mode, "err", err)
				}
			}
			out <- st
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(out)
	total := &queryStats{}
	for st := range out {
		total.merge(st)
	}
	return total, wall
}

// queryReport is one query mode's scorecard.
type queryReport struct {
	Mode      string    `json:"mode"` // shard, gather, or local
	Requests  int       `json:"requests"`
	Errors    int       `json:"errors"`
	QPS       float64   `json:"qps"`
	LatencyMs quantiles `json:"latency_ms"`
}

// pairCheck is one store pair's set-algebra answers vs exact truth.
type pairCheck struct {
	Stores                []string `json:"stores"`
	Mode                  string   `json:"mode"`
	TrueUnion             int      `json:"true_union"`
	TrueIntersection      int      `json:"true_intersection"`
	TrueJaccard           float64  `json:"true_jaccard"`
	EstUnion              float64  `json:"est_union"`
	EstIntersection       float64  `json:"est_intersection"`
	EstJaccard            float64  `json:"est_jaccard"`
	UnionAbsRelErr        float64  `json:"union_abs_rel_err"`
	IntersectionAbsErr    float64  `json:"intersection_abs_err"`
	IntersectionErrBudget float64  `json:"intersection_err_budget"` // ε·(|A|+|B|+|A∪B|)
	OK                    bool     `json:"ok"`
}

// pairTruth computes the exact union and intersection cardinality of
// two per-store key-id bitsets.
func pairTruth(a, b []uint64) (union, inter int) {
	for w := range a {
		union += bits.OnesCount64(a[w] | b[w])
		inter += bits.OnesCount64(a[w] & b[w])
	}
	return union, inter
}

// validateQueryTruth judges every adjacent store pair's /v1/query
// answer, in every given mode, against the exact bitset truth. The
// second return is the number of answers outside the (slacked) paper
// bounds.
func validateQueryTruth(client *http.Client, addrs, names []string, seen [][]uint64, modes []string, eps float64) ([]pairCheck, int) {
	var checks []pairCheck
	violations := 0
	for _, mode := range modes {
		for i := 0; i+1 < len(names); i++ {
			trueU, trueI := pairTruth(seen[i], seen[i+1])
			qw, err := getSetQuery(client, addrs[i%len(addrs)], mode, names[i], names[i+1])
			if err != nil {
				logx.Error("query truth check failed", "mode", mode, "stores",
					names[i]+","+names[i+1], "err", err)
				violations++
				continue
			}
			e := qw.Epsilon
			if e == 0 {
				e = eps
			}
			ck := pairCheck{
				Stores:                []string{names[i], names[i+1]},
				Mode:                  mode,
				TrueUnion:             trueU,
				TrueIntersection:      trueI,
				EstUnion:              qw.Union,
				EstIntersection:       qw.Intersection,
				EstJaccard:            qw.Jaccard,
				IntersectionAbsErr:    abs(qw.Intersection - float64(trueI)),
				IntersectionErrBudget: e * (float64(popcount(seen[i])) + float64(popcount(seen[i+1])) + float64(trueU)),
			}
			if trueU > 0 {
				ck.TrueJaccard = float64(trueI) / float64(trueU)
				ck.UnionAbsRelErr = abs(qw.Union-float64(trueU)) / float64(trueU)
			}
			ck.OK = ck.UnionAbsRelErr <= boundSlack*e &&
				ck.IntersectionAbsErr <= boundSlack*ck.IntersectionErrBudget
			if !ck.OK {
				violations++
				logx.Error("set-algebra answer outside bounds", "mode", mode,
					"stores", names[i]+","+names[i+1],
					"est_union", qw.Union, "true_union", trueU,
					"est_inter", qw.Intersection, "true_inter", trueI,
					"inter_budget", ck.IntersectionErrBudget)
			}
			checks = append(checks, ck)
		}
	}
	return checks, violations
}

// seriesCheck is one store's /v1/series structural + truth check.
type seriesCheck struct {
	Store       string  `json:"store"`
	Mode        string  `json:"mode"`
	Buckets     int     `json:"buckets"`
	Window      float64 `json:"window"`
	LiveBucket  float64 `json:"live_bucket"`
	AllTimeTrue int     `json:"all_time_true"`
	OK          bool    `json:"ok"`
}

// validateSeries reads every store's window series and checks it
// against what a fresh short run guarantees regardless of the server's
// ring configuration: buckets exist with consecutive wall-aligned
// epochs, the span union never exceeds the all-time truth (a window is
// a subset of history), and the union is at least the live bucket.
// Skipped entirely (nil) when the server has no window ring.
func validateSeries(client *http.Client, addrs, names []string, seen [][]uint64, mode string, eps float64) ([]seriesCheck, int) {
	var checks []seriesCheck
	violations := 0
	for i, name := range names {
		url := addrs[i%len(addrs)] + "/v1/series?store=" + name
		if mode != "" {
			url += "&mode=" + mode
		}
		resp, err := client.Get(url)
		if err != nil {
			logx.Error("series check failed", "store", name, "err", err)
			violations++
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusBadRequest && i == 0 {
			// Unwindowed server: series is not part of this deployment.
			return nil, 0
		}
		if resp.StatusCode != http.StatusOK {
			logx.Error("series check failed", "store", name, "status", resp.StatusCode, "body", string(body))
			violations++
			continue
		}
		var sr struct {
			Mode    string  `json:"mode"`
			Window  float64 `json:"window"`
			Buckets []struct {
				Epoch    int64   `json:"epoch"`
				Estimate float64 `json:"estimate"`
			} `json:"buckets"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			logx.Error("series check failed", "store", name, "err", err)
			violations++
			continue
		}
		truth := popcount(seen[i])
		ck := seriesCheck{Store: name, Mode: sr.Mode, Buckets: len(sr.Buckets),
			Window: sr.Window, AllTimeTrue: truth}
		ok := len(sr.Buckets) >= 1
		for j := 1; j < len(sr.Buckets); j++ {
			if sr.Buckets[j].Epoch != sr.Buckets[j-1].Epoch+1 {
				ok = false
			}
		}
		if len(sr.Buckets) > 0 {
			ck.LiveBucket = sr.Buckets[len(sr.Buckets)-1].Estimate
		}
		// The window union is a subset of history (≤ truth within ε) and
		// a superset of any single bucket (≥ live bucket within ε).
		ok = ok && ck.Window <= float64(truth)*(1+boundSlack*eps) &&
			ck.Window >= ck.LiveBucket*(1-boundSlack*eps)
		ck.OK = ok
		if !ok {
			violations++
			logx.Error("series answer outside bounds", "store", name,
				"window", ck.Window, "live", ck.LiveBucket, "true_all_time", truth,
				"buckets", ck.Buckets)
		}
		checks = append(checks, ck)
	}
	return checks, violations
}

// runQueryReports drives the dedicated query QPS phase for each mode,
// folding in the mixed-phase latencies.
func runQueryReports(client *http.Client, addrs []string, modes []string, names []string, mixed *queryStats, workers int, dur time.Duration) []queryReport {
	reports := make([]queryReport, 0, len(modes))
	for i, m := range modes {
		st, phaseWall := queryPhase(client, addrs, m, names, workers, dur)
		qps := float64(st.count) / phaseWall.Seconds()
		if i == 0 && mixed != nil {
			st.merge(mixed) // latency quantiles cover both phases
		}
		sort.Float64s(st.lats)
		label := m
		if label == "" {
			label = "shard"
		}
		reports = append(reports, queryReport{
			Mode:     label,
			Requests: st.count,
			Errors:   st.errors,
			QPS:      qps,
			LatencyMs: quantiles{
				P50: quantile(st.lats, 0.50), P90: quantile(st.lats, 0.90),
				P99: quantile(st.lats, 0.99), Max: quantile(st.lats, 1),
			},
		})
	}
	return reports
}
