// Command knwload is the knwd load generator and benchmark harness:
// it fans out N workers × M tenant stores of synthetic keys against a
// running knwd, measures client-side latency quantiles and throughput,
// scrapes the daemon's /metrics before and after the run, checks each
// store's estimate against the true cardinality it generated, and
// writes the whole result as machine-readable JSON (the BENCH_pr*.json
// artifact the CI bench job uploads).
//
//	knwd -listen 127.0.0.1:7070 -seed 1 &
//	knwload -addr http://127.0.0.1:7070 -workers 8 -stores 4 \
//	        -requests 400 -batch 2000 -dist zipf -out BENCH.json
//
// -codec picks the request body format: newline (text, one key per
// line), json (document stream), or binary (length-prefixed frames of
// pre-hashed keys — internal/frame). Binary is the fast path the
// daemon ingests without allocating; it requires -sketch-seed and
// -universe-bits to match the server's -seed and -universe-bits, since
// the client runs the sketch hash itself.
//
// With -cluster it drives a whole knwd cluster instead: ingest
// requests go to POST /v1/cluster/ingest round-robin over every node
// (so routing and replication are on the measured path), and each
// store's estimate is judged against the scatter-gathered
// GET /v1/cluster/estimate:
//
//	knwload -cluster http://127.0.0.1:7070,http://127.0.0.1:7071,http://127.0.0.1:7072
//
// -churn layers dynamic membership on a cluster run: the listed
// standby daemons (each booted alone with the same -seed) are joined
// through the first cluster node a third of the way in and removed at
// two thirds, and at every membership step the merged estimates are
// judged against the generator's exact truth — the scale-up/scale-down
// soak that proves sketch handoff loses nothing:
//
//	knwload -cluster http://127.0.0.1:7070,... \
//	        -churn http://127.0.0.1:7073,http://127.0.0.1:7074
//
// Key streams are drawn per worker from a zipf or uniform distribution
// over a bounded keyspace — production streams re-see hot keys, which
// is the regime distinct counting exists for — and every drawn key id
// is recorded in a per-store bitset, so the "true" cardinality the
// estimates are judged against is exact, not itself sampled.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/bits"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	knw "repro"
	"repro/internal/frame"
	"repro/internal/httpx"
)

// logx is the harness's structured logger (stderr text). Fatal paths
// keep the stdlib log.Fatal* helpers for their exit semantics.
var logx = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:7070", "knwd base URL")
		clusterF = flag.String("cluster", "", "comma-separated base URLs of all cluster nodes: drive POST /v1/cluster/ingest round-robin across them and judge the merged GET /v1/cluster/estimate (overrides -addr)")
		workers  = flag.Int("workers", 8, "concurrent load workers")
		stores   = flag.Int("stores", 4, "tenant stores to spread load across")
		prefix   = flag.String("store-prefix", "load/tenant", "store name prefix; stores are <prefix>-<i>")
		requests = flag.Int("requests", 400, "total ingest requests to send")
		batch    = flag.Int("batch", 2000, "keys per ingest request")
		mode     = flag.String("mode", "", "deprecated alias for -codec")
		codec    = flag.String("codec", "newline", "ingest body format: newline, json, or binary (pre-hashed frames)")
		dist     = flag.String("dist", "zipf", "key distribution: zipf or uniform")
		zipfS    = flag.Float64("zipf-s", 1.1, "zipf exponent (>1)")
		keyspace = flag.Uint64("keyspace", 200_000, "distinct key ids per store")
		seed     = flag.Int64("seed", 1, "generator seed (deterministic streams)")
		skSeed   = flag.Int64("sketch-seed", 1, "server sketch seed for -codec binary (must match knwd -seed)")
		uBits    = flag.Uint("universe-bits", 32, "server key-universe width for -codec binary (must match knwd -universe-bits)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		out      = flag.String("out", "BENCH.json", "output JSON path (empty = stdout only)")
		readR    = flag.Float64("read-ratio", 0, "fraction of mixed-phase requests that are estimate reads (0 = pure ingest). With -cluster the reads alternate mode=local and mode=gather; after the mixed phase a dedicated timed phase measures each mode's read QPS")
		readDur  = flag.Duration("read-duration", 2*time.Second, "length of each mode's dedicated read-throughput phase (with -read-ratio)")
		queryR   = flag.Float64("query-ratio", 0, "fraction of mixed-phase requests that are /v1/query set-algebra reads over adjacent store pairs (needs -stores >= 2). Also enables a dedicated query QPS phase and the final exact-truth validation of /v1/query and /v1/series against the generator's bitsets")
		epsF     = flag.Float64("epsilon", 0.05, "server sketch epsilon the truth-bound checks assume (must match knwd -epsilon)")
		churnF   = flag.String("churn", "", "comma-separated base URLs of standby knwd nodes (running alone with the same -seed): join them all through the first -cluster node at ~1/3 of the requests and remove them at ~2/3, judging every store's merged estimate against exact truth at each membership step (needs -cluster)")
	)
	flag.Parse()
	if *mode != "" {
		*codec = *mode
	}
	if *codec != "newline" && *codec != "json" && *codec != "binary" {
		log.Fatalf("knwload: -codec must be newline, json, or binary, got %q", *codec)
	}
	if *dist != "zipf" && *dist != "uniform" {
		log.Fatalf("knwload: -dist must be zipf or uniform, got %q", *dist)
	}
	if *workers < 1 || *stores < 1 || *requests < 1 || *batch < 1 || *keyspace < 1 {
		log.Fatal("knwload: -workers, -stores, -requests, -batch, -keyspace must be positive")
	}
	if *readR < 0 || *readR >= 1 {
		log.Fatalf("knwload: -read-ratio must be in [0, 1), got %v", *readR)
	}
	if *queryR < 0 || *queryR >= 1 {
		log.Fatalf("knwload: -query-ratio must be in [0, 1), got %v", *queryR)
	}
	if *queryR > 0 && *stores < 2 {
		log.Fatal("knwload: -query-ratio needs -stores >= 2 (set queries take store pairs)")
	}

	// Cluster mode: spread ingest requests round-robin over every node's
	// routed endpoint and judge the scatter-gathered estimate, so the
	// truth check covers routing + replication + merge, not one store.
	addrs := []string{*addr}
	ingestPath, estimatePath := "/v1/ingest", "/v1/estimate"
	if *clusterF != "" {
		addrs = strings.Split(*clusterF, ",")
		ingestPath, estimatePath = "/v1/cluster/ingest", "/v1/cluster/estimate"
	}
	if *churnF != "" && *clusterF == "" {
		log.Fatal("knwload: -churn needs -cluster (the stable members the standbys join through)")
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	names := make([]string, *stores)
	seen := make([][]uint64, *stores) // per-store key-id bitsets (atomic OR)
	words := (*keyspace + 63) / 64
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", *prefix, i)
		seen[i] = make([]uint64, words)
	}

	// Binary codec: hash the whole (bounded) keyspace once up front.
	// The generator's job is to saturate the server, not to model a
	// client's hashing budget — and on a shared core every cycle spent
	// hashing here is a cycle stolen from the daemon being measured.
	var hashes []uint64
	if *codec == "binary" {
		hasher := knw.NewHasher[[]byte](*skSeed, *uBits)
		hashes = make([]uint64, *keyspace)
		var keyBuf []byte
		for id := range hashes {
			keyBuf = strconv.AppendUint(append(keyBuf[:0], "user-"...), uint64(id), 10)
			hashes[id] = hasher.Hash(keyBuf)
		}
	}

	before, err := scrapeAll(client, addrs)
	if err != nil {
		logx.Warn("pre-run /metrics scrape failed (continuing without server deltas)", "err", err)
	}

	// Read modes the mixed phase and the dedicated throughput phase
	// drive: against a cluster the merged-view and scatter-gather read
	// paths are measured side by side; single-node has one path.
	var readModes []string
	if *readR > 0 {
		if *clusterF != "" {
			readModes = []string{"local", "gather"}
		} else {
			readModes = []string{"single"}
		}
	}

	var (
		next      atomic.Int64 // request index dispenser
		errCount  atomic.Int64
		readErrs  atomic.Int64
		ingests   atomic.Int64 // slots that actually carried keys
		bytesSent atomic.Int64
		wg        sync.WaitGroup
		latCh     = make(chan []float64, *workers)
		readCh    = make(chan map[string]*readStats, *workers)
		queryCh   = make(chan *queryStats, *workers)
	)
	// The mixed-phase query mode: cluster nodes answer gather (always
	// valid, gossip or not); single-node answers from its own store.
	mixedQueryMode := ""
	if *clusterF != "" {
		mixedQueryMode = "gather"
	}
	// Churn mode: workers hold churnGate read-locked per request so the
	// controller can quiesce in-flight ingest around membership steps.
	var churnGate sync.RWMutex
	var churn *churnController
	if *churnF != "" {
		churn = newChurnController(client, addrs, strings.Split(*churnF, ","),
			names, seen, *epsF, &churnGate)
		go churn.run(&next, *requests)
	}
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			var zipf *rand.Zipf
			if *dist == "zipf" {
				zipf = rand.NewZipf(rng, *zipfS, 1, *keyspace-1)
			}
			draw := func() uint64 {
				if zipf != nil {
					return zipf.Uint64()
				}
				return uint64(rng.Int63n(int64(*keyspace)))
			}
			lats := make([]float64, 0, *requests / *workers + 1)
			ids := make([]uint64, *batch)
			var (
				body   bytes.Buffer
				hashed []uint64 // binary codec: pre-hashed batch
				fbuf   []byte   // binary codec: frame scratch
				nreads int
			)
			reads := make(map[string]*readStats, len(readModes))
			for _, m := range readModes {
				reads[m] = &readStats{}
			}
			qs := &queryStats{}
			if *codec == "binary" {
				hashed = make([]uint64, *batch)
			}
			work := func(r int) {
				si := r % *stores
				if readModes != nil && rng.Float64() < *readR {
					// A read slot: estimate the store mid-ingest, alternating
					// modes so both read paths share the same contention.
					m := readModes[nreads%len(readModes)]
					nreads++
					if err := reads[m].observe(client, addrs[r%len(addrs)], m, names[si], estimatePath); err != nil {
						readErrs.Add(1)
						logx.Warn("read failed", "request", r, "mode", m, "err", err)
					}
					return
				}
				if *queryR > 0 && rng.Float64() < *queryR {
					// A set-algebra slot: union/intersection/Jaccard over an
					// adjacent store pair, mid-ingest.
					if err := qs.observe(client, addrs[r%len(addrs)], mixedQueryMode,
						names[si], names[(si+1)%*stores]); err != nil {
						readErrs.Add(1)
						logx.Warn("query failed", "request", r, "err", err)
					}
					return
				}
				ingests.Add(1)
				for i := range ids {
					id := draw()
					ids[i] = id
					atomicOr(&seen[si][id/64], 1<<(id%64))
				}
				body.Reset()
				switch *codec {
				case "json":
					encodeJSONBody(&body, names[si], ids)
				case "binary":
					// Ship the precomputed sketch hashes as one frame doc —
					// identical to what the server would hash from the string.
					for i, id := range ids {
						hashed[i] = hashes[id]
					}
					fbuf = frame.AppendHeader(fbuf[:0])
					fbuf = frame.AppendDoc(fbuf, names[si], hashed)
					body.Write(fbuf)
				default:
					for _, id := range ids {
						body.WriteString("user-")
						body.WriteString(strconv.FormatUint(id, 10))
						body.WriteByte('\n')
					}
				}
				bytesSent.Add(int64(body.Len()))
				t0 := time.Now()
				err := postIngest(client, addrs[r%len(addrs)]+ingestPath, names[si], *codec, body.Bytes())
				lats = append(lats, time.Since(t0).Seconds()*1e3)
				if err != nil {
					errCount.Add(1)
					logx.Warn("ingest request failed", "request", r, "err", err)
				}
			}
			for {
				r := int(next.Add(1)) - 1
				if r >= *requests {
					break
				}
				churnGate.RLock()
				work(r)
				churnGate.RUnlock()
			}
			latCh <- lats
			readCh <- reads
			queryCh <- qs
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if churn != nil {
		// The leave wave fires before the request budget runs out, so the
		// controller is normally done already; wait out stragglers.
		<-churn.done
	}
	close(latCh)
	close(readCh)
	close(queryCh)
	var lats []float64
	for l := range latCh {
		lats = append(lats, l...)
	}
	sort.Float64s(lats)
	mixedReads := make(map[string]*readStats, len(readModes))
	for _, m := range readModes {
		mixedReads[m] = &readStats{}
	}
	for per := range readCh {
		for m, st := range per {
			mixedReads[m].merge(st)
		}
	}

	// Dedicated read-throughput phase: each mode gets the full worker
	// pool for -read-duration, so the reported QPS is what that read
	// path sustains, not an artifact of the mixed interleaving.
	readReports := make([]readReport, 0, len(readModes))
	for _, m := range readModes {
		st, phaseWall := readPhase(client, addrs, m, names, estimatePath, *workers, *readDur)
		qps := float64(st.count) / phaseWall.Seconds()
		phaseErrs := st.errors
		st.merge(mixedReads[m]) // latency quantiles cover both phases
		sort.Float64s(st.lats)
		readReports = append(readReports, readReport{
			Mode:     m,
			Requests: st.count,
			Errors:   st.errors,
			QPS:      qps,
			LatencyMs: quantiles{
				P50: quantile(st.lats, 0.50), P90: quantile(st.lats, 0.90),
				P99: quantile(st.lats, 0.99), Max: quantile(st.lats, 1),
			},
			MaxStalenessSeconds: st.maxStale,
		})
		readErrs.Add(int64(phaseErrs))
	}

	// Query side (-query-ratio): pool the mixed-phase stats, run the
	// dedicated per-mode QPS phase, then validate /v1/query and
	// /v1/series against the exact bitset truth.
	var (
		queryReports []queryReport
		queryTruth   []pairCheck
		seriesChecks []seriesCheck
		violations   int
	)
	mixedQueries := &queryStats{}
	for qs := range queryCh {
		mixedQueries.merge(qs)
	}
	if *queryR > 0 {
		queryModes := []string{mixedQueryMode}
		if *clusterF != "" {
			// mode=local needs gossip on the server; probe before measuring.
			if _, err := getSetQuery(client, addrs[0], "local", names[0], names[1]); err == nil || errors.Is(err, errStoreMiss) {
				queryModes = append(queryModes, "local")
			}
		}
		queryReports = runQueryReports(client, addrs, queryModes, names, mixedQueries, *workers, *readDur)
		var v int
		queryTruth, v = validateQueryTruth(client, addrs, names, seen, queryModes, *epsF)
		violations += v
		seriesChecks, v = validateSeries(client, addrs, names, seen, mixedQueryMode, *epsF)
		violations += v
	}

	after, err := scrapeAll(client, addrs)
	if err != nil {
		logx.Warn("post-run /metrics scrape failed", "err", err)
	}

	// Judge estimates against the exact generated cardinality.
	perStore := make(map[string]storeError, *stores)
	var sumRel, maxRel float64
	for i, name := range names {
		truth := popcount(seen[i])
		est, err := fetchEstimate(client, addrs[i%len(addrs)]+estimatePath, name)
		if err != nil {
			log.Fatalf("knwload: estimate %s: %v", name, err)
		}
		rel := 0.0
		if truth > 0 {
			rel = abs(est-float64(truth)) / float64(truth)
		}
		perStore[name] = storeError{Estimate: est, True: truth, AbsRelErr: rel}
		sumRel += rel
		if rel > maxRel {
			maxRel = rel
		}
	}

	// Each read mode is judged against the same exact truth, so the
	// report shows the merged view costs no accuracy vs scatter-gather.
	for i := range readReports {
		rr := &readReports[i]
		var sum, worst float64
		for si, name := range names {
			truth := popcount(seen[si])
			est, _, err := modeEstimate(client, addrs[si%len(addrs)], rr.Mode, name, estimatePath)
			if err != nil {
				log.Fatalf("knwload: %s estimate %s: %v", rr.Mode, name, err)
			}
			rel := 0.0
			if truth > 0 {
				rel = abs(est-float64(truth)) / float64(truth)
			}
			sum += rel
			if rel > worst {
				worst = rel
			}
		}
		rr.MeanAbsRel = sum / float64(*stores)
		rr.MaxAbsRel = worst
	}

	sent := ingests.Load() * int64(*batch)
	report := benchReport{
		Bench:     "knwload",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: benchConfig{
			Addr: *addr, Cluster: *clusterF, Workers: *workers, Stores: *stores, Requests: *requests,
			Batch: *batch, Mode: *codec, Dist: *dist, ZipfS: *zipfS,
			Keyspace: *keyspace, Seed: *seed, ReadRatio: *readR, QueryRatio: *queryR,
		},
		WallSeconds:          wall.Seconds(),
		RequestsSent:         *requests,
		RequestErrors:        int(errCount.Load() + readErrs.Load()),
		Reads:                readReports,
		KeysSent:             sent,
		BodyBytesSent:        bytesSent.Load(),
		ThroughputKeysPerSec: float64(sent) / wall.Seconds(),
		LatencyMs: quantiles{
			P50: quantile(lats, 0.50), P90: quantile(lats, 0.90),
			P99: quantile(lats, 0.99), Max: quantile(lats, 1),
		},
		EstimateError: estimateError{MeanAbsRel: sumRel / float64(*stores), MaxAbsRel: maxRel, PerStore: perStore},
		Queries:       queryReports,
		QueryTruth:    queryTruth,
		Series:        seriesChecks,
		Server:        serverDelta(before, after, wall),
	}
	if churn != nil {
		report.Churn = churn.steps
		violations += churn.violations
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatalf("knwload: writing %s: %v", *out, err)
		}
	}
	os.Stdout.Write(blob)
	fmt.Fprintf(os.Stderr,
		"knwload: %d keys in %.2fs = %.0f keys/s; p50 %.2fms p99 %.2fms; mean est err %.3f%%; %d errors\n",
		sent, wall.Seconds(), report.ThroughputKeysPerSec,
		report.LatencyMs.P50, report.LatencyMs.P99, 100*report.EstimateError.MeanAbsRel,
		report.RequestErrors)
	for _, rr := range readReports {
		fmt.Fprintf(os.Stderr,
			"knwload: reads mode=%s: %.0f QPS, p50 %.2fms p99 %.2fms, mean err %.3f%%, max staleness %.3fs\n",
			rr.Mode, rr.QPS, rr.LatencyMs.P50, rr.LatencyMs.P99, 100*rr.MeanAbsRel, rr.MaxStalenessSeconds)
	}
	for _, qr := range queryReports {
		fmt.Fprintf(os.Stderr,
			"knwload: queries mode=%s: %.0f QPS, p50 %.2fms p99 %.2fms, %d errors\n",
			qr.Mode, qr.QPS, qr.LatencyMs.P50, qr.LatencyMs.P99, qr.Errors)
	}
	if len(queryTruth) > 0 {
		ok := 0
		for _, ck := range queryTruth {
			if ck.OK {
				ok++
			}
		}
		fmt.Fprintf(os.Stderr, "knwload: set-algebra truth: %d/%d pair answers within bounds\n", ok, len(queryTruth))
	}
	if len(seriesChecks) > 0 {
		ok := 0
		for _, ck := range seriesChecks {
			if ck.OK {
				ok++
			}
		}
		fmt.Fprintf(os.Stderr, "knwload: window series: %d/%d stores within bounds\n", ok, len(seriesChecks))
	}
	if churn != nil {
		churn.summarize()
	}
	printStages(report.Server.Stages)
	if report.Server.MaxPeerStaleness > 0 {
		fmt.Fprintf(os.Stderr, "knwload: worst per-peer gossip staleness %.3fs\n",
			report.Server.MaxPeerStaleness)
	}
	printTrace(fetchTrace(client, addrs[0]))
	if errCount.Load()+readErrs.Load() > 0 || violations > 0 {
		os.Exit(1)
	}
}

// printStages renders the server-side stage attribution as a table:
// where the daemon itself says the run's time went, stage by stage.
func printStages(stages map[string]stageDelta) {
	if len(stages) == 0 {
		return
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return stages[names[i]].Seconds > stages[names[j]].Seconds
	})
	fmt.Fprintf(os.Stderr, "knwload: server stage breakdown (knwd_stage_seconds delta):\n")
	fmt.Fprintf(os.Stderr, "  %-14s %12s %10s %10s\n", "stage", "seconds", "count", "mean µs")
	for _, name := range names {
		d := stages[name]
		fmt.Fprintf(os.Stderr, "  %-14s %12.4f %10.0f %10.2f\n", name, d.Seconds, d.Count, d.MeanUs)
	}
}

// printTrace renders one sampled trace's span/stage tree, when the
// server's sampling recorded any.
func printTrace(tr *traceSummary) {
	if tr == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "knwload: sampled trace %s (%.2fms, %d spans):\n",
		tr.Trace, tr.DurationMs, len(tr.Spans))
	for _, sp := range tr.Spans {
		fmt.Fprintf(os.Stderr, "  %s %s store=%s %.2fms", sp.Node, sp.Name, sp.Store, sp.DurationMs)
		for _, st := range sp.Stages {
			fmt.Fprintf(os.Stderr, " %s=%.2fms", st.Stage, st.Ms)
		}
		fmt.Fprintln(os.Stderr)
	}
}

// --- report schema ---------------------------------------------------

type benchConfig struct {
	Addr       string  `json:"addr"`
	Cluster    string  `json:"cluster,omitempty"`
	Workers    int     `json:"workers"`
	Stores     int     `json:"stores"`
	Requests   int     `json:"requests"`
	Batch      int     `json:"batch"`
	Mode       string  `json:"mode"`
	Dist       string  `json:"dist"`
	ZipfS      float64 `json:"zipf_s"`
	Keyspace   uint64  `json:"keyspace"`
	Seed       int64   `json:"seed"`
	ReadRatio  float64 `json:"read_ratio,omitempty"`
	QueryRatio float64 `json:"query_ratio,omitempty"`
}

type quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type storeError struct {
	Estimate  float64 `json:"estimate"`
	True      int     `json:"true"`
	AbsRelErr float64 `json:"abs_rel_err"`
}

type estimateError struct {
	MeanAbsRel float64               `json:"mean_abs_rel"`
	MaxAbsRel  float64               `json:"max_abs_rel"`
	PerStore   map[string]storeError `json:"per_store"`
}

// serverSide is the daemon's own view of the run, from /metrics deltas.
type serverSide struct {
	Scraped            bool    `json:"scraped"`
	IngestKeysDelta    float64 `json:"ingest_keys_delta"`
	IngestBytesDelta   float64 `json:"ingest_bytes_delta"`
	IngestReqsDelta    float64 `json:"ingest_requests_delta"`
	StoreEntries       float64 `json:"store_entries"`
	KeysPerSecObserved float64 `json:"keys_per_sec_observed"`
	// Gossip transfer accounting (cluster runs with -gossip-interval):
	// bytes and record counts shipped as KNWD section deltas vs full
	// KNWE envelopes. avg(delta) = delta_bytes/deltas vs avg(full) =
	// full_bytes/fulls is the steady-state delta-compression proof.
	GossipTxDeltaBytes float64 `json:"gossip_tx_delta_bytes_delta,omitempty"`
	GossipTxFullBytes  float64 `json:"gossip_tx_full_bytes_delta,omitempty"`
	GossipTxDeltas     float64 `json:"gossip_tx_deltas_delta,omitempty"`
	GossipTxFulls      float64 `json:"gossip_tx_fulls_delta,omitempty"`
	GossipRounds       float64 `json:"gossip_rounds_delta,omitempty"`
	// Stages is the run's knwd_stage_seconds delta per stage label: the
	// server's own attribution of where ingest/merge/forward time went.
	Stages map[string]stageDelta `json:"stages,omitempty"`
	// MaxPeerStaleness is the worst per-peer gossip lag (seconds) any
	// node reported at the end of the run.
	MaxPeerStaleness float64 `json:"max_peer_staleness_seconds,omitempty"`
}

type benchReport struct {
	Bench                string        `json:"bench"`
	Timestamp            string        `json:"timestamp"`
	Config               benchConfig   `json:"config"`
	WallSeconds          float64       `json:"wall_seconds"`
	RequestsSent         int           `json:"requests_sent"`
	RequestErrors        int           `json:"request_errors"`
	KeysSent             int64         `json:"keys_sent"`
	BodyBytesSent        int64         `json:"body_bytes_sent"`
	ThroughputKeysPerSec float64       `json:"throughput_keys_per_sec"`
	LatencyMs            quantiles     `json:"latency_ms"`
	EstimateError        estimateError `json:"estimate_error"`
	Reads                []readReport  `json:"reads,omitempty"`
	Queries              []queryReport `json:"queries,omitempty"`
	QueryTruth           []pairCheck   `json:"query_truth,omitempty"`
	Series               []seriesCheck `json:"series,omitempty"`
	Churn                []churnStep   `json:"churn,omitempty"`
	Server               serverSide    `json:"server"`
}

// readReport is one estimate read path's scorecard (-read-ratio): the
// mixed-phase and dedicated-phase latencies pooled, the dedicated
// phase's sustained QPS, and accuracy vs exact truth.
type readReport struct {
	Mode                string    `json:"mode"` // local, gather, or single
	Requests            int       `json:"requests"`
	Errors              int       `json:"errors"`
	QPS                 float64   `json:"qps"`
	LatencyMs           quantiles `json:"latency_ms"`
	MeanAbsRel          float64   `json:"mean_abs_rel"`
	MaxAbsRel           float64   `json:"max_abs_rel"`
	MaxStalenessSeconds float64   `json:"max_staleness_seconds,omitempty"`
}

// --- load plumbing ---------------------------------------------------

func encodeJSONBody(buf *bytes.Buffer, store string, ids []uint64) {
	buf.WriteString(`{"store":`)
	name, _ := json.Marshal(store)
	buf.Write(name)
	buf.WriteString(`,"keys":[`)
	for i, id := range ids {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(`"user-`)
		buf.WriteString(strconv.FormatUint(id, 10))
		buf.WriteByte('"')
	}
	buf.WriteString("]}")
}

func postIngest(client *http.Client, endpoint, store, codec string, body []byte) error {
	url := endpoint + "?store=" + store
	ct := "text/plain"
	switch codec {
	case "json":
		ct = "application/json"
	case "binary":
		ct = httpx.FrameContentType
	}
	resp, err := client.Post(url, ct, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// readStats accumulates one mode's read observations.
type readStats struct {
	lats     []float64
	count    int
	errors   int
	maxStale float64
}

// errStoreMiss marks a 404 read: early in a mixed run the store may
// not exist anywhere yet (or not yet on the merged view's node), which
// is a served answer, not a failure.
var errStoreMiss = errors.New("store not present yet")

// observe issues one estimate read and records its latency/staleness.
func (st *readStats) observe(client *http.Client, base, mode, name, path string) error {
	t0 := time.Now()
	_, stale, err := modeEstimate(client, base, mode, name, path)
	st.count++
	if errors.Is(err, errStoreMiss) {
		st.lats = append(st.lats, time.Since(t0).Seconds()*1e3)
		return nil
	}
	if err != nil {
		st.errors++
		return err
	}
	st.lats = append(st.lats, time.Since(t0).Seconds()*1e3)
	if stale > st.maxStale {
		st.maxStale = stale
	}
	return nil
}

func (st *readStats) merge(other *readStats) {
	st.lats = append(st.lats, other.lats...)
	st.count += other.count
	st.errors += other.errors
	if other.maxStale > st.maxStale {
		st.maxStale = other.maxStale
	}
}

// modeEstimate reads one store's estimate through the named read path
// and reports the X-KNW-Staleness the answer carried (merged-view
// reads only; zero otherwise).
func modeEstimate(client *http.Client, base, mode, name, path string) (float64, float64, error) {
	url := base + path + "?store=" + name
	if mode != "single" {
		url += "&mode=" + mode
	}
	resp, err := client.Get(url)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return 0, 0, errStoreMiss
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	var est struct {
		AllTime float64 `json:"all_time"`
	}
	if err := json.Unmarshal(body, &est); err != nil {
		return 0, 0, err
	}
	stale, _ := strconv.ParseFloat(resp.Header.Get("X-KNW-Staleness"), 64)
	return est.AllTime, stale, nil
}

// readPhase hammers one read path with the full worker pool for dur
// and returns the pooled stats plus the actual phase wall time.
func readPhase(client *http.Client, addrs []string, mode string, names []string, path string, workers int, dur time.Duration) (*readStats, time.Duration) {
	var (
		wg  sync.WaitGroup
		out = make(chan *readStats, workers)
	)
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &readStats{}
			for i := w; time.Now().Before(deadline); i++ {
				if err := st.observe(client, addrs[i%len(addrs)], mode, names[i%len(names)], path); err != nil {
					logx.Warn("read phase request failed", "mode", mode, "err", err)
				}
			}
			out <- st
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(out)
	total := &readStats{}
	for st := range out {
		total.merge(st)
	}
	return total, wall
}

func fetchEstimate(client *http.Client, endpoint, store string) (float64, error) {
	resp, err := client.Get(endpoint + "?store=" + store)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	var est struct {
		AllTime float64 `json:"all_time"`
	}
	if err := json.Unmarshal(body, &est); err != nil {
		return 0, err
	}
	return est.AllTime, nil
}

// metricsScrape is one pass over the fleet's /metrics: family totals
// (labels collapsed — what the before/after deltas want), plus full
// labeled series both summed and maxed across nodes (stage histograms
// are counters, so sums are right; per-peer staleness gauges want the
// worst node).
type metricsScrape struct {
	sums   map[string]float64
	series map[string]float64
	maxes  map[string]float64
}

// scrapeAll sums /metrics across every node — in cluster mode each
// node's leaf counters only see its own ring share, so the fleet-wide
// sum is the number comparable to the keys the client sent (replicas
// make it R× the sent count).
func scrapeAll(client *http.Client, addrs []string) (*metricsScrape, error) {
	total := &metricsScrape{
		sums:   make(map[string]float64),
		series: make(map[string]float64),
		maxes:  make(map[string]float64),
	}
	for _, a := range addrs {
		m, err := scrapeMetrics(client, a)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		for k, v := range m.sums {
			total.sums[k] += v
		}
		for k, v := range m.series {
			total.series[k] += v
			if v > total.maxes[k] {
				total.maxes[k] = v
			}
		}
	}
	return total, nil
}

// scrapeMetrics fetches one node's /metrics.
func scrapeMetrics(client *http.Client, base string) (*metricsScrape, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	out := &metricsScrape{
		sums:   make(map[string]float64),
		series: make(map[string]float64),
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		series := line[:sp]
		out.series[series] += v
		if br := strings.IndexByte(series, '{'); br >= 0 {
			series = series[:br]
		}
		out.sums[series] += v
	}
	return out, nil
}

// stageDelta is one knwd_stage_seconds{stage} family's share of the
// run: total server-side seconds, observation count, and mean.
type stageDelta struct {
	Seconds float64 `json:"seconds"`
	Count   float64 `json:"count"`
	MeanUs  float64 `json:"mean_us"`
}

// stageBreakdown diffs the per-stage histogram sums/counts between the
// two scrapes, keyed by stage label.
func stageBreakdown(before, after *metricsScrape) map[string]stageDelta {
	const (
		sumPre   = `knwd_stage_seconds_sum{stage="`
		countPre = `knwd_stage_seconds_count{stage="`
	)
	out := make(map[string]stageDelta)
	for series, v := range after.series {
		if !strings.HasPrefix(series, sumPre) {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(series, sumPre), `"}`)
		countKey := countPre + stage + `"}`
		d := stageDelta{
			Seconds: v - before.series[series],
			Count:   after.series[countKey] - before.series[countKey],
		}
		if d.Count > 0 {
			d.MeanUs = d.Seconds / d.Count * 1e6
		}
		if d.Count > 0 || d.Seconds > 0 {
			out[stage] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// maxPeerStaleness is the worst per-peer gossip lag any node reports.
func maxPeerStaleness(s *metricsScrape) float64 {
	worst := 0.0
	for series, v := range s.maxes {
		if strings.HasPrefix(series, `knwd_gossip_peer_staleness_seconds{`) && v > worst {
			worst = v
		}
	}
	return worst
}

func serverDelta(before, after *metricsScrape, wall time.Duration) serverSide {
	if before == nil || after == nil {
		return serverSide{}
	}
	b, a := before.sums, after.sums
	// Leaf HTTP ingest keys plus cluster-locally-applied replicas (the
	// routed slices that never cross HTTP; zero in single-node mode):
	// in cluster mode the sum is replication × keys sent.
	keys := a["knwd_ingest_keys_total"] - b["knwd_ingest_keys_total"] +
		a["knwd_cluster_local_keys_total"] - b["knwd_cluster_local_keys_total"]
	return serverSide{
		Scraped:            true,
		IngestKeysDelta:    keys,
		IngestBytesDelta:   a["knwd_ingest_bytes_total"] - b["knwd_ingest_bytes_total"],
		IngestReqsDelta:    a["knwd_http_requests_total"] - b["knwd_http_requests_total"],
		StoreEntries:       a["knwd_store_entries"],
		KeysPerSecObserved: keys / wall.Seconds(),
		GossipTxDeltaBytes: a["knwd_gossip_tx_delta_bytes_total"] - b["knwd_gossip_tx_delta_bytes_total"],
		GossipTxFullBytes:  a["knwd_gossip_tx_full_bytes_total"] - b["knwd_gossip_tx_full_bytes_total"],
		GossipTxDeltas:     a["knwd_gossip_tx_deltas_total"] - b["knwd_gossip_tx_deltas_total"],
		GossipTxFulls:      a["knwd_gossip_tx_fulls_total"] - b["knwd_gossip_tx_fulls_total"],
		GossipRounds:       a["knwd_gossip_rounds_total"] - b["knwd_gossip_rounds_total"],
		Stages:             stageBreakdown(before, after),
		MaxPeerStaleness:   maxPeerStaleness(after),
	}
}

// fetchTrace pulls the newest sampled trace from a node's debug ring
// (nil when sampling recorded nothing).
func fetchTrace(client *http.Client, base string) *traceSummary {
	resp, err := client.Get(base + "/v1/debug/traces?limit=1")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Traces []traceSummary `json:"traces"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&body); err != nil || len(body.Traces) == 0 {
		return nil
	}
	return &body.Traces[0]
}

// traceSummary mirrors the /v1/debug/traces tree shape, just deep
// enough to print a span/stage breakdown.
type traceSummary struct {
	Trace      string  `json:"trace"`
	DurationMs float64 `json:"duration_ms"`
	Spans      []struct {
		Node       string  `json:"node"`
		Name       string  `json:"name"`
		Store      string  `json:"store"`
		DurationMs float64 `json:"duration_ms"`
		Stages     []struct {
			Stage string  `json:"stage"`
			Ms    float64 `json:"ms"`
		} `json:"stages"`
	} `json:"spans"`
}

// --- small math ------------------------------------------------------

func atomicOr(addr *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == mask || atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}

func popcount(bs []uint64) int {
	n := 0
	for _, w := range bs {
		n += bits.OnesCount64(w)
	}
	return n
}

// quantile reads the q-quantile from an ascending-sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
