package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Churn mode (-churn): scale the cluster up and back down in the
// middle of the load run and prove the estimates survive it. The
// named standby nodes (running knwd daemons booted alone with the
// same -seed) are joined through the first cluster node at ~1/3 of
// the request budget and removed again at ~2/3, so the run exercises
// ring-version cutover and sketch handoff under live ingest. At every
// membership step the controller pauses the workers (so the exact
// bitset truth and the acked key set coincide), drives the change,
// and judges every store's merged estimate two-sided against the
// exact truth — a lost handoff slice shows up as an estimate dip the
// tolerance does not cover.

// churnCheck is one store's estimate-vs-truth verdict at a step.
type churnCheck struct {
	Store     string  `json:"store"`
	Estimate  float64 `json:"estimate"`
	True      int     `json:"true"`
	AbsRelErr float64 `json:"abs_rel_err"`
	OK        bool    `json:"ok"`
}

// churnStep is one membership change and its aftermath.
type churnStep struct {
	Action     string       `json:"action"` // join or leave
	Node       string       `json:"node"`
	AtRequest  int64        `json:"at_request"`
	Epoch      uint64       `json:"epoch"` // committed epoch after the step
	DurationMs float64      `json:"duration_ms"`
	Checks     []churnCheck `json:"checks"`
	OK         bool         `json:"ok"`
	Err        string       `json:"err,omitempty"`
}

// churnController drives the scale-up/scale-down schedule against the
// live run. The gate is the worker pause point: workers hold it
// RLocked per request, the controller takes the write lock to
// quiesce in-flight ingest before each membership step.
type churnController struct {
	client   *http.Client
	addrs    []string // stable cluster members (ingest keeps targeting these)
	standbys []string
	names    []string
	seen     [][]uint64
	eps      float64

	gate       *sync.RWMutex
	steps      []churnStep
	violations int
	done       chan struct{}
}

func newChurnController(client *http.Client, addrs, standbys, names []string,
	seen [][]uint64, eps float64, gate *sync.RWMutex) *churnController {
	return &churnController{
		client: client, addrs: addrs, standbys: standbys, names: names,
		seen: seen, eps: eps, gate: gate, done: make(chan struct{}),
	}
}

// run watches the request dispenser and fires the join wave at 1/3 of
// the budget, the leave wave at 2/3. Returns (closing done) once both
// waves ran — the workers may still be draining the final third.
func (c *churnController) run(next *atomic.Int64, total int) {
	defer close(c.done)
	joinAt, leaveAt := int64(total)/3, 2*int64(total)/3
	joined, left := false, false
	for !(joined && left) {
		n := next.Load()
		if !joined && n >= joinAt {
			for _, node := range c.standbys {
				c.step("join", node, n)
			}
			joined = true
		}
		if joined && !left && n >= leaveAt {
			for _, node := range c.standbys {
				c.step("leave", node, n)
			}
			left = true
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// step quiesces ingest, applies one membership change through the
// first stable node, and judges every store's merged estimate against
// the exact truth under the frozen key set.
func (c *churnController) step(action, node string, at int64) {
	c.gate.Lock()
	defer c.gate.Unlock()
	t0 := time.Now()
	st := churnStep{Action: action, Node: node, AtRequest: at, OK: true}
	defer func() {
		st.DurationMs = time.Since(t0).Seconds() * 1e3
		if !st.OK {
			c.violations++
		}
		c.steps = append(c.steps, st)
		logx.Info("churn step", "action", action, "node", node,
			"epoch", st.Epoch, "ok", st.OK, "ms", fmt.Sprintf("%.0f", st.DurationMs))
	}()
	if err := c.postChange(action, node); err != nil {
		st.OK, st.Err = false, err.Error()
		return
	}
	st.Epoch = c.ringEpoch()
	// Workers are quiesced and every acked request's keys are in the
	// bitsets, so truth is exact here: a handoff that dropped a slice
	// (or double-committed an epoch and orphaned keys) fails two-sided.
	tol := 4*c.eps + 0.02
	for i, name := range c.names {
		truth := popcount(c.seen[i])
		if truth == 0 {
			continue
		}
		est, err := fetchEstimate(c.client, c.addrs[0]+"/v1/cluster/estimate", name)
		if err != nil {
			st.OK, st.Err = false, fmt.Sprintf("estimate %s: %v", name, err)
			return
		}
		rel := abs(est-float64(truth)) / float64(truth)
		ok := rel <= tol
		st.Checks = append(st.Checks, churnCheck{
			Store: name, Estimate: est, True: truth, AbsRelErr: rel, OK: ok,
		})
		if !ok {
			st.OK = false
		}
	}
}

// postChange POSTs one join/leave through the first stable member.
func (c *churnController) postChange(action, node string) error {
	body, _ := json.Marshal(map[string]string{"url": node})
	resp, err := c.client.Post(c.addrs[0]+"/v1/cluster/"+action,
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := make([]byte, 512)
		n, _ := resp.Body.Read(msg)
		return fmt.Errorf("%s %s: HTTP %d: %s", action, node, resp.StatusCode, msg[:n])
	}
	return nil
}

// ringEpoch reads the committed epoch off the first stable member.
func (c *churnController) ringEpoch() uint64 {
	resp, err := c.client.Get(c.addrs[0] + "/v1/cluster/ring")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return 0
	}
	return out.Epoch
}

// summarize prints the per-step verdicts to stderr.
func (c *churnController) summarize() {
	for _, st := range c.steps {
		verdict := "ok"
		if !st.OK {
			verdict = "FAILED"
			if st.Err != "" {
				verdict += " (" + st.Err + ")"
			}
		}
		fmt.Fprintf(os.Stderr, "knwload: churn %-5s %s → epoch %d in %.0fms: %s\n",
			st.Action, st.Node, st.Epoch, st.DurationMs, verdict)
	}
}
