package knw

import (
	"strings"
	"testing"
)

// TestNewAllKinds: every registered kind constructs through the
// factory, ingests, and reports — the uniform front door the benches
// and the service layer rely on.
func TestNewAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		est, err := New(kind, WithSeed(81), WithEpsilon(0.2), WithCopies(3))
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		for i := uint64(1); i <= 5000; i++ {
			est.Add(i * 0x9e3779b97f4a7c15 >> 32)
		}
		est.AddBatch([]uint64{1, 2, 3})
		if est.Name() == "" {
			t.Errorf("New(%s): empty Name", kind)
		}
		if est.SpaceBits() <= 0 {
			t.Errorf("New(%s): SpaceBits %d", kind, est.SpaceBits())
		}
		if est.Estimate() <= 0 {
			t.Errorf("New(%s): estimate %v after 5000 adds", kind, est.Estimate())
		}

		// The registry's turnstile flag must match the estimator's
		// actual surface.
		_, isTurnstile := est.(TurnstileEstimator)
		if isTurnstile != kind.Turnstile() {
			t.Errorf("kind %s: Turnstile()=%v but estimator turnstile=%v",
				kind, kind.Turnstile(), isTurnstile)
		}
		tu, err := NewTurnstile(kind, WithSeed(82), WithEpsilon(0.2), WithCopies(3))
		if kind.Turnstile() {
			if err != nil {
				t.Errorf("NewTurnstile(%s): %v", kind, err)
			} else {
				tu.Update(7, +2)
				tu.Update(7, -2)
			}
		} else if err == nil {
			t.Errorf("NewTurnstile(%s) succeeded for an insertion-only kind", kind)
		}
	}
}

// TestParseKindRoundTrip: String() names parse back, aliases resolve,
// junk errors.
func TestParseKindRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		got, err := ParseKind(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", kind.String(), got, err, kind)
		}
	}
	for alias, want := range map[string]Kind{
		"HLL": KindHyperLogLog, "cf0": KindConcurrentF0, "knw": KindF0,
		" Sharded-L0 ": KindConcurrentL0, "bottom-k": KindKMV,
	} {
		got, err := ParseKind(alias)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := ParseKind("no-such-sketch"); err == nil {
		t.Error("ParseKind accepted junk")
	} else if !strings.Contains(err.Error(), "f0") {
		t.Errorf("ParseKind error does not list known kinds: %v", err)
	}
	if _, err := New(Kind(200)); err == nil {
		t.Error("New accepted an unregistered kind")
	}
}

// TestKindAccessorsAndWireFlags: the concrete types report their
// registry tags; exactly the four KNW sketches are wire kinds.
func TestKindAccessorsAndWireFlags(t *testing.T) {
	if k := NewF0(WithSeed(1), WithCopies(1)).Kind(); k != KindF0 {
		t.Errorf("F0.Kind() = %v", k)
	}
	if k := NewL0(WithSeed(1), WithCopies(1)).Kind(); k != KindL0 {
		t.Errorf("L0.Kind() = %v", k)
	}
	if k := NewConcurrentF0(2, WithSeed(1), WithCopies(1)).Kind(); k != KindConcurrentF0 {
		t.Errorf("ConcurrentF0.Kind() = %v", k)
	}
	if k := NewConcurrentL0(2, WithSeed(1), WithCopies(1)).Kind(); k != KindConcurrentL0 {
		t.Errorf("ConcurrentL0.Kind() = %v", k)
	}
	for _, kind := range Kinds() {
		wantWire := kind == KindF0 || kind == KindL0 ||
			kind == KindConcurrentF0 || kind == KindConcurrentL0
		if kind.Wire() != wantWire {
			t.Errorf("kind %s: Wire() = %v, want %v", kind, kind.Wire(), wantWire)
		}
	}
}

// TestWithShards: the factory honours the shard-count option, the
// explicit constructor argument wins over it, and the hint never leaks
// into the stored configuration (mergeability across construction
// paths).
func TestWithShards(t *testing.T) {
	est, err := New(KindConcurrentF0, WithShards(4), WithSeed(83), WithCopies(1))
	if err != nil {
		t.Fatal(err)
	}
	c := est.(*ConcurrentF0)
	if c.Shards() != 4 {
		t.Fatalf("WithShards(4) gave %d shards", c.Shards())
	}

	// Default: some power of two ≥ 1, without WithShards.
	est2, err := New(KindConcurrentL0, WithSeed(83), WithCopies(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := est2.(*ConcurrentL0).Shards(); n < 1 || n&(n-1) != 0 {
		t.Fatalf("default shard count %d not a power of two", n)
	}

	// Explicit argument beats the option.
	if n := NewConcurrentF0(2, WithShards(8), WithSeed(83), WithCopies(1)).Shards(); n != 2 {
		t.Fatalf("explicit shard argument lost to WithShards: %d", n)
	}

	// WithShards on a non-sharded kind is inert: the sketch merges with
	// one built without it.
	plain := NewF0(WithSeed(84), WithCopies(1))
	est3, err := New(KindF0, WithShards(8), WithSeed(84), WithCopies(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Merge(est3.(*F0)); err != nil {
		t.Fatalf("WithShards leaked into F0 config: %v", err)
	}
	// And the factory-built concurrent sketch merges with a
	// constructor-built one.
	d := NewConcurrentF0(4, WithSeed(83), WithCopies(1))
	if err := c.Merge(d); err != nil {
		t.Fatalf("factory and constructor configs diverge: %v", err)
	}
}
