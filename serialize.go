package knw

import (
	"fmt"
	"math"

	"repro/internal/binenc"
	"repro/internal/bitutil"
)

// Serialization format: every MarshalBinary wraps its payload in the
// self-describing envelope of envelope.go (kind tag + payload), so
// knw.Open can restore the right concrete type. The payload itself is
// this file's per-type format: a magic/version header, the full option
// set (including the seed), then the dynamic counter state. Hash functions
// never hit the wire — on load the sketch is rebuilt deterministically
// from (options, seed) and only counters are restored, so payload size
// tracks the sketch's accounted state, not its tabulation tables.
//
// Version 2 (current) wraps each copy's state in a length-prefixed
// frame, which lets readers validate section boundaries and lets the
// sharded (concurrent) formats reuse the same per-copy encoding: a
// sharded payload is the shared settings plus one framed section per
// shard. Version 1 concatenated the copy states unframed; the readers
// still accept it.
//
// A sketch can therefore only be unmarshaled by a binary using the
// same construction logic (this library), which is the usual contract
// for sketch stores (statistics catalogs, checkpoint files).
const (
	f0Magic        = 0x4b4e5746 // "KNWF"
	l0Magic        = 0x4b4e574c // "KNWL"
	f0ShardedMagic = 0x4b4e5753 // "KNWS"
	l0ShardedMagic = 0x4b4e5754 // "KNWT"
	version        = 2
)

// maxShards bounds the shard count a sharded header may claim, so a
// corrupt payload cannot force an unbounded allocation.
const maxShards = 1 << 16

func appendSettings(w *binenc.Writer, s settings) {
	w.Uvarint(math.Float64bits(s.eps))
	w.Uvarint(uint64(s.copies))
	w.Uvarint(math.Float64bits(s.delta))
	w.Varint(s.seed)
	w.Uvarint(uint64(s.logN))
	w.Uvarint(uint64(s.logMM))
	w.Uvarint(uint64(s.kOverride))
	w.Bool(s.reference)
	w.Bool(s.lnTable)
	w.Bool(s.strict)
}

func readSettings(r *binenc.Reader) settings {
	var s settings
	s.eps = math.Float64frombits(r.Uvarint())
	s.copies = int(r.Uvarint())
	s.delta = math.Float64frombits(r.Uvarint())
	s.seed = r.Varint()
	s.seedSet = true
	s.logN = uint(r.Uvarint())
	s.logMM = uint(r.Uvarint())
	s.kOverride = int(r.Uvarint())
	s.reference = r.Bool()
	s.lnTable = r.Bool()
	s.strict = r.Bool()
	return s
}

// maxRestoredK / maxRestoredCounters bound the per-copy K and the
// total copies·K of a payload we are willing to reconstruct: a corrupt
// (or adversarial) header must not be able to force an unbounded
// allocation, and the core constructors panic outright on a
// non-power-of-two K or on K ≥ 2^22 (the K³ hash range overflows
// uint64), which a decoder must never do. K = 2^20 per copy is the
// ε = 0.01 point and 2^24 total is far beyond the paper's regime
// (ε = 0.01 at δ = 0.05 uses ~7.3M); sketches built past these bounds
// simply don't round-trip.
const (
	maxRestoredK        = 1 << 20
	maxRestoredCounters = 1 << 24
)

func (s settings) valid() bool {
	if !(s.eps > 0 && s.eps < 1 &&
		s.copies >= 1 && s.copies <= 1<<10 &&
		s.delta > 0 && s.delta < 1 &&
		s.logN >= 4 && s.logN <= 62 &&
		s.logMM >= 1 && s.logMM <= 62) {
		return false
	}
	if s.kOverride != 0 &&
		(s.kOverride < 32 || !bitutil.IsPow2(uint64(s.kOverride))) {
		return false
	}
	k := s.k()
	return k >= 32 && k <= maxRestoredK && s.copies*k <= maxRestoredCounters
}

// readVersion consumes the version marker, accepting the current
// version and the legacy unframed version 1.
func readVersion(r *binenc.Reader, what string) (uint64, error) {
	v := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if v != 1 && v != version {
		return 0, fmt.Errorf("knw: unsupported %s version %d", what, v)
	}
	return v, nil
}

// restoreFrame decodes one length-prefixed frame with fn, requiring fn
// to consume the frame exactly.
func restoreFrame(r *binenc.Reader, fn func(*binenc.Reader) error) error {
	frame := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	sub := binenc.Reader{Buf: frame}
	if err := fn(&sub); err != nil {
		return err
	}
	if err := sub.Err(); err != nil {
		return err
	}
	if len(sub.Buf) != 0 {
		return binenc.ErrCorrupt
	}
	return nil
}

// appendCopyFrames writes each copy's state as a length-prefixed frame
// (the version-2 section layout, shared with the sharded format). One
// scratch buffer is reused across copies.
func (f *F0) appendCopyFrames(w *binenc.Writer) {
	var cw binenc.Writer
	for _, s := range f.fast {
		cw.Buf = cw.Buf[:0]
		s.AppendState(&cw)
		w.Bytes(cw.Buf)
	}
	for _, s := range f.ref {
		cw.Buf = cw.Buf[:0]
		s.AppendState(&cw)
		w.Bytes(cw.Buf)
	}
}

// restoreCopyFrames reads what appendCopyFrames wrote.
func (f *F0) restoreCopyFrames(r *binenc.Reader) error {
	for _, s := range f.fast {
		if err := restoreFrame(r, s.RestoreState); err != nil {
			return fmt.Errorf("knw: restoring F0 copy: %w", err)
		}
	}
	for _, s := range f.ref {
		if err := restoreFrame(r, s.RestoreState); err != nil {
			return fmt.Errorf("knw: restoring F0 copy: %w", err)
		}
	}
	return nil
}

// restoreCopiesV1 reads the legacy unframed copy-state concatenation.
func (f *F0) restoreCopiesV1(r *binenc.Reader) error {
	for _, s := range f.fast {
		if err := s.RestoreState(r); err != nil {
			return fmt.Errorf("knw: restoring F0 copy: %w", err)
		}
	}
	for _, s := range f.ref {
		if err := s.RestoreState(r); err != nil {
			return fmt.Errorf("knw: restoring F0 copy: %w", err)
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler, wrapping the
// type's payload in the self-describing envelope (envelope.go) so
// readers can restore it without knowing the concrete type. Any
// in-progress deamortized phases are drained first, so marshaling is
// an O(state) operation, not a hot-path one.
func (f *F0) MarshalBinary() ([]byte, error) {
	return f.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender: MarshalBinary
// appending to b. Callers on a snapshot loop (the store checkpointer,
// the service's snapshot endpoint) pass a reused buffer so steady-state
// encoding allocates nothing beyond destination growth.
func (f *F0) AppendBinary(b []byte) ([]byte, error) {
	return appendEnvelope(b, KindF0, f.appendLegacy), nil
}

// marshalLegacy produces the pre-envelope (version-2) payload — the
// bytes the envelope carries.
func (f *F0) marshalLegacy() []byte { return f.appendLegacy(nil) }

func (f *F0) appendLegacy(buf []byte) []byte {
	w := binenc.Writer{Buf: buf}
	w.Uvarint(f0Magic)
	w.Uvarint(version)
	appendSettings(&w, f.cfg)
	f.appendCopyFrames(&w)
	return w.Buf
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// configuration and state entirely. Enveloped, bare version-2, and
// legacy version-1 payloads are all accepted.
func (f *F0) UnmarshalBinary(data []byte) error {
	payload, err := unwrapEnvelope(data, KindF0)
	if err != nil {
		return err
	}
	return f.unmarshalLegacy(payload)
}

func (f *F0) unmarshalLegacy(data []byte) error {
	r := binenc.Reader{Buf: data}
	r.Expect(f0Magic, "F0 magic")
	ver, err := readVersion(&r, "F0")
	if err != nil {
		return err
	}
	cfg := readSettings(&r)
	if err := r.Err(); err != nil {
		return err
	}
	if !cfg.valid() {
		return fmt.Errorf("knw: corrupt F0 header")
	}
	fresh := newF0From(cfg)
	if ver == 1 {
		err = fresh.restoreCopiesV1(&r)
	} else {
		err = fresh.restoreCopyFrames(&r)
	}
	if err != nil {
		return err
	}
	if len(r.Buf) != 0 {
		return fmt.Errorf("knw: %d trailing bytes in F0 payload", len(r.Buf))
	}
	*f = *fresh
	return nil
}

// appendCopyFrames / restoreCopyFrames / restoreCopiesV1: the L0
// equivalents of the F0 section helpers.
func (l *L0) appendCopyFrames(w *binenc.Writer) {
	var cw binenc.Writer
	for _, s := range l.copies {
		cw.Buf = cw.Buf[:0]
		s.AppendState(&cw)
		w.Bytes(cw.Buf)
	}
}

func (l *L0) restoreCopyFrames(r *binenc.Reader) error {
	for _, s := range l.copies {
		if err := restoreFrame(r, s.RestoreState); err != nil {
			return fmt.Errorf("knw: restoring L0 copy: %w", err)
		}
	}
	return nil
}

func (l *L0) restoreCopiesV1(r *binenc.Reader) error {
	for _, s := range l.copies {
		if err := s.RestoreState(r); err != nil {
			return fmt.Errorf("knw: restoring L0 copy: %w", err)
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for L0 (enveloped;
// see F0.MarshalBinary).
func (l *L0) MarshalBinary() ([]byte, error) {
	return l.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender (see F0.AppendBinary).
func (l *L0) AppendBinary(b []byte) ([]byte, error) {
	return appendEnvelope(b, KindL0, l.appendLegacy), nil
}

func (l *L0) marshalLegacy() []byte { return l.appendLegacy(nil) }

func (l *L0) appendLegacy(buf []byte) []byte {
	w := binenc.Writer{Buf: buf}
	w.Uvarint(l0Magic)
	w.Uvarint(version)
	appendSettings(&w, l.cfg)
	l.appendCopyFrames(&w)
	return w.Buf
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for L0.
// Enveloped, bare version-2, and legacy version-1 payloads are all
// accepted.
func (l *L0) UnmarshalBinary(data []byte) error {
	payload, err := unwrapEnvelope(data, KindL0)
	if err != nil {
		return err
	}
	return l.unmarshalLegacy(payload)
}

func (l *L0) unmarshalLegacy(data []byte) error {
	r := binenc.Reader{Buf: data}
	r.Expect(l0Magic, "L0 magic")
	ver, err := readVersion(&r, "L0")
	if err != nil {
		return err
	}
	cfg := readSettings(&r)
	if err := r.Err(); err != nil {
		return err
	}
	if !cfg.valid() {
		return fmt.Errorf("knw: corrupt L0 header")
	}
	fresh := newL0From(cfg)
	if ver == 1 {
		err = fresh.restoreCopiesV1(&r)
	} else {
		err = fresh.restoreCopyFrames(&r)
	}
	if err != nil {
		return err
	}
	if len(r.Buf) != 0 {
		return fmt.Errorf("knw: %d trailing bytes in L0 payload", len(r.Buf))
	}
	*l = *fresh
	return nil
}

// MarshalBinary serializes the sharded wrapper: shared settings, the
// shard count, then one framed section per shard holding that shard's
// framed copy states. Each shard is encoded under its own lock, so
// marshaling is safe while writers run, though the snapshot is then
// per-shard consistent rather than globally atomic (checkpoint the
// wrapper from a quiesced moment if exact cut semantics matter).
func (c *ConcurrentF0) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender (see F0.AppendBinary).
func (c *ConcurrentF0) AppendBinary(b []byte) ([]byte, error) {
	return appendEnvelope(b, KindConcurrentF0, c.appendLegacy), nil
}

func (c *ConcurrentF0) marshalLegacy() []byte { return c.appendLegacy(nil) }

func (c *ConcurrentF0) appendLegacy(buf []byte) []byte {
	w := binenc.Writer{Buf: buf}
	w.Uvarint(f0ShardedMagic)
	w.Uvarint(version)
	appendSettings(&w, c.cfg)
	w.Uvarint(uint64(len(c.shards)))
	var sw binenc.Writer
	for i := range c.shards {
		s := &c.shards[i]
		sw.Buf = sw.Buf[:0]
		s.mu.Lock()
		s.sk.appendCopyFrames(&sw)
		s.mu.Unlock()
		w.Bytes(sw.Buf)
	}
	return w.Buf
}

// UnmarshalBinary replaces c's configuration and state entirely. It is
// not safe to call concurrently with writers or readers on c.
// Enveloped and bare payloads are both accepted.
func (c *ConcurrentF0) UnmarshalBinary(data []byte) error {
	payload, err := unwrapEnvelope(data, KindConcurrentF0)
	if err != nil {
		return err
	}
	return c.unmarshalLegacy(payload)
}

func (c *ConcurrentF0) unmarshalLegacy(data []byte) error {
	r := binenc.Reader{Buf: data}
	r.Expect(f0ShardedMagic, "sharded F0 magic")
	if _, err := readVersion(&r, "sharded F0"); err != nil {
		return err
	}
	cfg := readSettings(&r)
	shards := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if !cfg.valid() || shards < 1 || shards > maxShards || shards&(shards-1) != 0 {
		return fmt.Errorf("knw: corrupt sharded F0 header")
	}
	fresh := make([]f0Shard, shards)
	for i := range fresh {
		fresh[i].sk = newF0From(cfg)
		if err := restoreFrame(&r, fresh[i].sk.restoreCopyFrames); err != nil {
			return fmt.Errorf("knw: restoring F0 shard %d: %w", i, err)
		}
	}
	if len(r.Buf) != 0 {
		return fmt.Errorf("knw: %d trailing bytes in sharded F0 payload", len(r.Buf))
	}
	c.cfg = cfg
	c.mask = shards - 1
	c.shards = fresh
	c.initPools()
	return nil
}

// MarshalBinary serializes the sharded L0 wrapper (see
// ConcurrentF0.MarshalBinary for the snapshot semantics).
func (c *ConcurrentL0) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender (see F0.AppendBinary).
func (c *ConcurrentL0) AppendBinary(b []byte) ([]byte, error) {
	return appendEnvelope(b, KindConcurrentL0, c.appendLegacy), nil
}

func (c *ConcurrentL0) marshalLegacy() []byte { return c.appendLegacy(nil) }

func (c *ConcurrentL0) appendLegacy(buf []byte) []byte {
	w := binenc.Writer{Buf: buf}
	w.Uvarint(l0ShardedMagic)
	w.Uvarint(version)
	appendSettings(&w, c.cfg)
	w.Uvarint(uint64(len(c.shards)))
	var sw binenc.Writer
	for i := range c.shards {
		s := &c.shards[i]
		sw.Buf = sw.Buf[:0]
		s.mu.Lock()
		s.sk.appendCopyFrames(&sw)
		s.mu.Unlock()
		w.Bytes(sw.Buf)
	}
	return w.Buf
}

// UnmarshalBinary replaces c's configuration and state entirely. It is
// not safe to call concurrently with writers or readers on c.
// Enveloped and bare payloads are both accepted.
func (c *ConcurrentL0) UnmarshalBinary(data []byte) error {
	payload, err := unwrapEnvelope(data, KindConcurrentL0)
	if err != nil {
		return err
	}
	return c.unmarshalLegacy(payload)
}

func (c *ConcurrentL0) unmarshalLegacy(data []byte) error {
	r := binenc.Reader{Buf: data}
	r.Expect(l0ShardedMagic, "sharded L0 magic")
	if _, err := readVersion(&r, "sharded L0"); err != nil {
		return err
	}
	cfg := readSettings(&r)
	shards := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if !cfg.valid() || shards < 1 || shards > maxShards || shards&(shards-1) != 0 {
		return fmt.Errorf("knw: corrupt sharded L0 header")
	}
	fresh := make([]l0Shard, shards)
	for i := range fresh {
		fresh[i].sk = newL0From(cfg)
		if err := restoreFrame(&r, fresh[i].sk.restoreCopyFrames); err != nil {
			return fmt.Errorf("knw: restoring L0 shard %d: %w", i, err)
		}
	}
	if len(r.Buf) != 0 {
		return fmt.Errorf("knw: %d trailing bytes in sharded L0 payload", len(r.Buf))
	}
	c.cfg = cfg
	c.mask = shards - 1
	c.shards = fresh
	c.initPools()
	return nil
}
