package knw

import (
	"fmt"
	"math"

	"repro/internal/binenc"
)

// Serialization format: a magic/version header, the full option set
// (including the seed), then each copy's dynamic counter state. Hash
// functions never hit the wire — on load the sketch is rebuilt
// deterministically from (options, seed) and only counters are
// restored, so payload size tracks the sketch's accounted state, not
// its tabulation tables.
//
// A sketch can therefore only be unmarshaled by a binary using the
// same construction logic (this library), which is the usual contract
// for sketch stores (statistics catalogs, checkpoint files).
const (
	f0Magic = 0x4b4e5746 // "KNWF"
	l0Magic = 0x4b4e574c // "KNWL"
	version = 1
)

func appendSettings(w *binenc.Writer, s settings) {
	w.Uvarint(math.Float64bits(s.eps))
	w.Uvarint(uint64(s.copies))
	w.Uvarint(math.Float64bits(s.delta))
	w.Varint(s.seed)
	w.Uvarint(uint64(s.logN))
	w.Uvarint(uint64(s.logMM))
	w.Uvarint(uint64(s.kOverride))
	w.Bool(s.reference)
	w.Bool(s.lnTable)
	w.Bool(s.strict)
}

func readSettings(r *binenc.Reader) settings {
	var s settings
	s.eps = math.Float64frombits(r.Uvarint())
	s.copies = int(r.Uvarint())
	s.delta = math.Float64frombits(r.Uvarint())
	s.seed = r.Varint()
	s.seedSet = true
	s.logN = uint(r.Uvarint())
	s.logMM = uint(r.Uvarint())
	s.kOverride = int(r.Uvarint())
	s.reference = r.Bool()
	s.lnTable = r.Bool()
	s.strict = r.Bool()
	return s
}

func (s settings) valid() bool {
	return s.eps > 0 && s.eps < 1 &&
		s.copies >= 1 && s.copies <= 1<<10 &&
		s.delta > 0 && s.delta < 1 &&
		s.logN >= 4 && s.logN <= 62 &&
		s.logMM >= 1 && s.logMM <= 62
}

// MarshalBinary implements encoding.BinaryMarshaler. Any in-progress
// deamortized phases are drained first, so marshaling is an O(state)
// operation, not a hot-path one.
func (f *F0) MarshalBinary() ([]byte, error) {
	var w binenc.Writer
	w.Uvarint(f0Magic)
	w.Uvarint(version)
	appendSettings(&w, f.cfg)
	for _, s := range f.fast {
		s.AppendState(&w)
	}
	for _, s := range f.ref {
		s.AppendState(&w)
	}
	return w.Buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// configuration and state entirely.
func (f *F0) UnmarshalBinary(data []byte) error {
	r := binenc.Reader{Buf: data}
	r.Expect(f0Magic, "F0 magic")
	r.Expect(version, "version")
	cfg := readSettings(&r)
	if err := r.Err(); err != nil {
		return err
	}
	if !cfg.valid() {
		return fmt.Errorf("knw: corrupt F0 header")
	}
	fresh := newF0From(cfg)
	for _, s := range fresh.fast {
		if err := s.RestoreState(&r); err != nil {
			return fmt.Errorf("knw: restoring F0 copy: %w", err)
		}
	}
	for _, s := range fresh.ref {
		if err := s.RestoreState(&r); err != nil {
			return fmt.Errorf("knw: restoring F0 copy: %w", err)
		}
	}
	if len(r.Buf) != 0 {
		return fmt.Errorf("knw: %d trailing bytes in F0 payload", len(r.Buf))
	}
	*f = *fresh
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for L0.
func (l *L0) MarshalBinary() ([]byte, error) {
	var w binenc.Writer
	w.Uvarint(l0Magic)
	w.Uvarint(version)
	appendSettings(&w, l.cfg)
	for _, s := range l.copies {
		s.AppendState(&w)
	}
	return w.Buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for L0.
func (l *L0) UnmarshalBinary(data []byte) error {
	r := binenc.Reader{Buf: data}
	r.Expect(l0Magic, "L0 magic")
	r.Expect(version, "version")
	cfg := readSettings(&r)
	if err := r.Err(); err != nil {
		return err
	}
	if !cfg.valid() {
		return fmt.Errorf("knw: corrupt L0 header")
	}
	fresh := newL0From(cfg)
	for _, s := range fresh.copies {
		if err := s.RestoreState(&r); err != nil {
			return fmt.Errorf("knw: restoring L0 copy: %w", err)
		}
	}
	if len(r.Buf) != 0 {
		return fmt.Errorf("knw: %d trailing bytes in L0 payload", len(r.Buf))
	}
	*l = *fresh
	return nil
}
