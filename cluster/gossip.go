package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	knw "repro"
	"repro/internal/binenc"
	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/store"
)

// Anti-entropy gossip replication: every node keeps a merged view of
// the whole cluster — its own store plus one replica envelope per
// (peer, store) — and refreshes it in the background instead of
// scatter-gathering at read time. The loop is classic anti-entropy:
//
//  1. Each round, pick GossipFanout random peers (all of them by
//     default) and fetch each peer's digest — its per-store version
//     vector plus a per-process instance id.
//  2. Diff the digest against the versions held for that peer and POST
//     a pull request listing only the stores that moved, with the held
//     version as the delta base (0 for first contact, and for
//     everything when the instance id changed: a restarted peer's
//     counters share nothing with its old life).
//  3. The peer streams back one envelope per requested store: a KNWD
//     section delta (envelope_delta.go) when it can prove what changed
//     since the base — in the duplicate-heavy steady state of distinct
//     counting, a near-empty frame — or a full KNWE envelope. Both are
//     validated and installed into the ReplicaSet; a delta whose base
//     no longer matches (ErrStaleBase) is re-pulled as a full.
//
// Reads over the merged view (LocalEstimate, /v1/estimate, and
// /v1/cluster/estimate?mode=local) are then O(1) in cluster size: one
// local union, no per-request fan-out. The price is staleness, bounded
// by the gossip cadence: a key ingested on a peer is visible here
// within one round-trip of the next round that reaches that peer, and
// every local answer carries its worst-case lag in the
// X-KNW-Staleness header so clients can judge it.
const (
	gossipMagic   = 0x4b4e5747 // "KNWG"
	gossipVersion = 1
	// maxGossipBody bounds a pull response (it can carry many full
	// envelopes on first contact).
	maxGossipBody = 256 << 20
	// maxGossipStores bounds the store count in one pull request.
	maxGossipStores = 1 << 20
)

// StalenessHeader carries the worst-case replication lag, in seconds,
// of a merged-view estimate: the age of the oldest peer sync the
// answer may predate. Under a healthy gossip loop it stays below two
// gossip intervals.
const StalenessHeader = "X-KNW-Staleness"

// gossipDigest is GET /v1/gossip/digest: the node's version vector.
type gossipDigest struct {
	Self     string            `json:"self"`
	Instance uint64            `json:"instance"`
	Versions map[string]uint64 `json:"versions"`
}

// pullRequest is the POST /v1/gossip/pull body: the stores the caller
// wants, each with the version it already holds as the delta base.
// Instance is the serving node's instance id as the caller saw it in
// the digest; on a mismatch (the node restarted in between) every base
// is treated as zero.
type pullRequest struct {
	Instance uint64            `json:"instance"`
	Versions map[string]uint64 `json:"versions"`
}

// gossipMetrics are the anti-entropy instruments.
type gossipMetrics struct {
	rounds       *metrics.Counter
	roundSeconds *metrics.Histogram
	rxDeltaBytes *metrics.Counter
	rxFullBytes  *metrics.Counter
	txDeltaBytes *metrics.Counter
	txFullBytes  *metrics.Counter
	// Record counts beside the byte counters, so bytes/records gives
	// the average shipped envelope size per kind — the number that
	// proves steady-state deltas undercut full envelopes.
	txDeltas     *metrics.Counter
	txFulls      *metrics.Counter
	peerFailures *metrics.CounterVec // peer
	applyErrors  *metrics.Counter
}

// gossiper drives one node's anti-entropy loop and owns its replica
// view.
type gossiper struct {
	rt       *Router
	replicas *store.ReplicaSet
	instance uint64
	interval time.Duration
	fanout   int
	now      func() time.Time // injectable for tests

	mu        sync.Mutex
	rng       *rand.Rand
	lastSync  map[string]int64 // peer → unix nanos of the last complete sync
	start     int64            // unix nanos the gossiper was built (staleness floor)
	peerStale *metrics.GaugeFuncVec
	watched   map[string]bool // peers with a registered staleness gauge

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}

	met gossipMetrics
}

func newGossiper(rt *Router, reg *metrics.Registry) *gossiper {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	g := &gossiper{
		rt:       rt,
		replicas: store.NewReplicaSet(rt.local),
		instance: rng.Uint64() | 1,
		interval: rt.cfg.GossipInterval,
		fanout:   rt.cfg.GossipFanout,
		now:      time.Now,
		rng:      rng,
		lastSync: make(map[string]int64),
	}
	g.start = g.now().UnixNano()
	g.met = gossipMetrics{
		rounds: reg.NewCounter("knwd_gossip_rounds_total",
			"Anti-entropy rounds completed."),
		roundSeconds: reg.NewHistogram("knwd_gossip_round_seconds",
			"Wall time of anti-entropy rounds.", metrics.DefBuckets),
		rxDeltaBytes: reg.NewCounter("knwd_gossip_rx_delta_bytes_total",
			"Envelope bytes received as KNWD section deltas."),
		rxFullBytes: reg.NewCounter("knwd_gossip_rx_full_bytes_total",
			"Envelope bytes received as full KNWE envelopes."),
		txDeltaBytes: reg.NewCounter("knwd_gossip_tx_delta_bytes_total",
			"Envelope bytes served as KNWD section deltas."),
		txFullBytes: reg.NewCounter("knwd_gossip_tx_full_bytes_total",
			"Envelope bytes served as full KNWE envelopes."),
		txDeltas: reg.NewCounter("knwd_gossip_tx_deltas_total",
			"Envelopes served as KNWD section deltas."),
		txFulls: reg.NewCounter("knwd_gossip_tx_fulls_total",
			"Envelopes served as full KNWE envelopes."),
		peerFailures: reg.NewCounterVec("knwd_gossip_peer_failures_total",
			"Peer syncs abandoned on error.", "peer"),
		applyErrors: reg.NewCounter("knwd_gossip_apply_errors_total",
			"Received envelopes rejected by validation."),
	}
	reg.NewGaugeFunc("knwd_gossip_staleness_seconds",
		"Worst-case replication lag of the merged view.",
		func() float64 { return g.staleness().Seconds() })
	reg.NewGaugeFunc("knwd_gossip_replicas",
		"Replica envelopes held in the merged view.",
		func() float64 { _, n := g.replicas.Stats(); return float64(n) })
	g.peerStale = reg.NewGaugeFuncVec("knwd_gossip_peer_staleness_seconds",
		"Per-peer replication lag: seconds since the last complete sync with the peer.",
		"peer")
	g.watched = make(map[string]bool)
	for _, m := range rt.view().members {
		g.watchPeer(m)
	}
	return g
}

// watchPeer registers the staleness gauge for one peer the first time
// it appears in the membership (join path: gauges are registered
// lazily as the view grows). The gauge reads 0 once the peer leaves
// the view, so a departed member stops alarming dashboards.
func (g *gossiper) watchPeer(peer string) {
	if peer == g.rt.cfg.Self {
		return
	}
	g.mu.Lock()
	seen := g.watched[peer]
	if !seen {
		g.watched[peer] = true
	}
	g.mu.Unlock()
	if seen {
		return
	}
	p := peer
	g.peerStale.With(func() float64 {
		if !memberOf(g.rt.view().members, p) {
			return 0
		}
		return g.peerStaleness(p).Seconds()
	}, p)
}

// dropPeer forgets a departed member: its replicas leave the merged
// view and its sync bookkeeping is discarded. Called on epoch commit.
func (g *gossiper) dropPeer(peer string) {
	n := g.replicas.DropPeer(peer)
	g.mu.Lock()
	delete(g.lastSync, peer)
	g.mu.Unlock()
	g.rt.log.Info("gossip replicas dropped for departed member", "peer", peer, "replicas", n)
}

// memberOf reports whether url is in the sorted member list.
func memberOf(members []string, url string) bool {
	i := sort.SearchStrings(members, url)
	return i < len(members) && members[i] == url
}

// peerStaleness is the age of the last complete sync with one peer
// (the gossiper's own age for peers never reached).
func (g *gossiper) peerStaleness(peer string) time.Duration {
	now := g.now().UnixNano()
	g.mu.Lock()
	last := g.lastSync[peer]
	g.mu.Unlock()
	if last == 0 {
		last = g.start
	}
	return time.Duration(now - last)
}

// GossipEnabled reports whether this router runs anti-entropy
// replication (Config.GossipInterval > 0).
func (rt *Router) GossipEnabled() bool { return rt.gossip != nil }

// Replicas returns the router's replica view, or nil when gossip is
// disabled. The service layer checkpoints it beside the store.
func (rt *Router) Replicas() *store.ReplicaSet {
	if rt.gossip == nil {
		return nil
	}
	return rt.gossip.replicas
}

// Instance returns this node's gossip instance id (0 when disabled).
func (rt *Router) Instance() uint64 {
	if rt.gossip == nil {
		return 0
	}
	return rt.gossip.instance
}

// StartGossip launches the background anti-entropy loop. It is a
// no-op when gossip is disabled or already running.
func (rt *Router) StartGossip() {
	g := rt.gossip
	if g == nil {
		return
	}
	g.loopMu.Lock()
	defer g.loopMu.Unlock()
	if g.stop != nil {
		return
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go g.run(g.stop, g.done)
}

// StopGossip stops the loop started by StartGossip and waits for the
// in-flight round to finish.
func (rt *Router) StopGossip() {
	g := rt.gossip
	if g == nil {
		return
	}
	g.loopMu.Lock()
	stop, done := g.stop, g.done
	g.stop, g.done = nil, nil
	g.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// GossipRound runs one synchronous anti-entropy round (every peer the
// fanout selects). Tests and the smoke harness drive convergence with
// it; the background loop calls exactly this.
func (rt *Router) GossipRound() {
	if rt.gossip != nil {
		rt.gossip.round()
	}
}

// Staleness is the merged view's worst-case replication lag: the age
// of the oldest peer sync (or of the gossiper itself for peers never
// reached). Zero when gossip is disabled or the node has no peers.
func (rt *Router) Staleness() time.Duration {
	if rt.gossip == nil {
		return 0
	}
	return rt.gossip.staleness()
}

func (g *gossiper) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(g.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			g.round()
		}
	}
}

// round syncs the fanout's worth of random peers concurrently. Each
// sync is a traced local operation (subject to the sampling rate), so
// a sampled round shows up in /v1/debug/traces with its pull and apply
// stage split.
func (g *gossiper) round() {
	t0 := time.Now()
	peers := g.pickPeers()
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			act := g.rt.tracer.StartLocal("gossip.sync")
			act.SetPeer(peer)
			err := g.syncPeer(peer, act)
			g.rt.tracer.FinishLocal(act, err)
			if err != nil {
				g.met.peerFailures.With(peer).Inc()
				g.rt.log.Warn("gossip sync failed", "peer", peer, "err", err,
					"trace", act.TraceHex())
			}
		}(peer)
	}
	wg.Wait()
	g.met.rounds.Inc()
	d := time.Since(t0)
	g.met.roundSeconds.Observe(d.Seconds())
	g.rt.log.Debug("gossip round", "peers", len(peers),
		"duration_ms", float64(d)/float64(time.Millisecond))
}

// pickPeers selects this round's sync targets: every other member of
// the current union view (joining and leaving nodes keep gossiping
// until the cutover commits), or a uniform sample of GossipFanout of
// them.
func (g *gossiper) pickPeers() []string {
	v := g.rt.view()
	others := make([]string, 0, len(v.members))
	for i, m := range v.members {
		if i != v.self {
			g.watchPeer(m)
			others = append(others, m)
		}
	}
	if g.fanout <= 0 || g.fanout >= len(others) {
		return others
	}
	g.mu.Lock()
	g.rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	g.mu.Unlock()
	return others[:g.fanout]
}

// syncPeer brings the replica view for one peer up to date: digest,
// diff, pull, and a base-0 re-pull for any delta that no longer
// applies.
func (g *gossiper) syncPeer(peer string, act *trace.Active) error {
	hdr := act.HeaderValue()
	dig, err := g.fetchDigest(peer, hdr)
	if err != nil {
		return err
	}
	g.replicas.SetInstance(peer, dig.Instance)
	bases := g.replicas.BaseVersions(peer)
	want := make(map[string]uint64, len(dig.Versions))
	for name, v := range dig.Versions {
		if bases[name] != v {
			want[name] = bases[name]
		}
	}
	if len(want) > 0 {
		retry, err := g.pull(peer, dig.Instance, want, hdr, act)
		if err != nil {
			return err
		}
		if len(retry) > 0 {
			zero := make(map[string]uint64, len(retry))
			for _, name := range retry {
				zero[name] = 0
			}
			if again, err := g.pull(peer, dig.Instance, zero, hdr, act); err != nil {
				return err
			} else if len(again) > 0 {
				return fmt.Errorf("cluster: %s served stale deltas for base-0 pull of %v", peer, again)
			}
		}
	}
	g.mu.Lock()
	g.lastSync[peer] = g.now().UnixNano()
	g.mu.Unlock()
	return nil
}

func (g *gossiper) fetchDigest(peer, hdr string) (gossipDigest, error) {
	var dig gossipDigest
	req, err := http.NewRequest(http.MethodGet, peer+"/v1/gossip/digest", nil)
	if err != nil {
		return dig, err
	}
	if hdr != "" {
		req.Header.Set(trace.Header, hdr)
	}
	resp, err := g.rt.client.Do(req)
	if err != nil {
		return dig, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return dig, fmt.Errorf("digest: peer answered HTTP %d: %s", resp.StatusCode, msg)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, httpx.MaxBodyBytes)).Decode(&dig); err != nil {
		return dig, fmt.Errorf("digest: %w", err)
	}
	if dig.Instance == 0 {
		return dig, errors.New("digest: peer reports no gossip instance")
	}
	return dig, nil
}

// pull fetches and applies the requested envelopes. It returns the
// names whose deltas hit ErrStaleBase (the caller re-pulls base 0);
// anything else wrong with the stream or its contents is an error.
func (g *gossiper) pull(peer string, instance uint64, want map[string]uint64, hdr string, act *trace.Active) ([]string, error) {
	body, err := json.Marshal(pullRequest{Instance: instance, Versions: want})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, peer+"/v1/gossip/pull", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if hdr != "" {
		req.Header.Set(trace.Header, hdr)
	}
	t0 := time.Now()
	resp, err := g.rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("pull: peer answered HTTP %d: %s", resp.StatusCode, msg)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxGossipBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxGossipBody {
		return nil, fmt.Errorf("pull: response exceeds %d bytes", maxGossipBody)
	}
	pullDur := time.Since(t0)
	g.rt.met.stagePull.Observe(pullDur.Seconds())
	act.Stage("gossip_pull", pullDur)
	applyStart := time.Now()
	defer func() {
		d := time.Since(applyStart)
		g.rt.met.stageApply.Observe(d.Seconds())
		act.Stage("gossip_apply", d)
	}()

	r := binenc.Reader{Buf: data}
	r.Expect(gossipMagic, "gossip magic")
	if v := r.Uvarint(); r.Err() == nil && v != gossipVersion {
		return nil, fmt.Errorf("pull: unsupported gossip version %d", v)
	}
	inst := r.Uvarint()
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pull: bad header: %w", err)
	}
	if count > maxGossipStores {
		return nil, fmt.Errorf("pull: header claims %d stores", count)
	}
	// The peer may have restarted between digest and pull; its versions
	// then belong to the new life.
	g.replicas.SetInstance(peer, inst)
	var retry []string
	for i := uint64(0); i < count; i++ {
		name := string(r.BytesView())
		version := r.Uvarint()
		env := r.BytesView()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("pull: bad record: %w", err)
		}
		if knw.IsDelta(env) {
			g.met.rxDeltaBytes.Add(uint64(len(env)))
			switch err := g.replicas.ApplyDelta(peer, name, env); {
			case errors.Is(err, store.ErrStaleBase):
				retry = append(retry, name)
			case err != nil:
				g.met.applyErrors.Inc()
				return nil, fmt.Errorf("pull: applying delta %q: %w", name, err)
			}
			continue
		}
		g.met.rxFullBytes.Add(uint64(len(env)))
		if err := g.replicas.ApplyFull(peer, name, version, env); err != nil {
			g.met.applyErrors.Inc()
			return nil, fmt.Errorf("pull: applying %q: %w", name, err)
		}
	}
	if len(r.Buf) != 0 {
		return nil, fmt.Errorf("pull: %d trailing bytes", len(r.Buf))
	}
	return retry, nil
}

func (g *gossiper) staleness() time.Duration {
	v := g.rt.view()
	now := g.now().UnixNano()
	g.mu.Lock()
	defer g.mu.Unlock()
	worst := int64(0)
	for i, m := range v.members {
		if i == v.self {
			continue
		}
		last := g.lastSync[m]
		if last == 0 {
			last = g.start
		}
		if d := now - last; d > worst {
			worst = d
		}
	}
	return time.Duration(worst)
}

// LocalEstimate is the merged-view read: the union of this node's own
// sketch and every replica envelope gossip holds for the store.
type LocalEstimate struct {
	Store   string  `json:"store"`
	AllTime float64 `json:"all_time"`
	Mode    string  `json:"mode"`
	// Replicas counts the peer envelopes merged in; LocalFound reports
	// whether this node's own store holds the name.
	Replicas   int  `json:"replicas"`
	LocalFound bool `json:"local_found"`
	Nodes      int  `json:"nodes"`
	// StalenessSeconds is the answer's worst-case replication lag (the
	// X-KNW-Staleness header as a field).
	StalenessSeconds float64 `json:"staleness_seconds"`
}

// LocalEstimate serves name from the merged view in O(1): no network,
// one cached union. It returns store.ErrNotFound when neither the
// local store nor any replica holds the name, and an error when gossip
// is disabled.
func (rt *Router) LocalEstimate(name string) (LocalEstimate, error) {
	if rt.gossip == nil {
		return LocalEstimate{}, errors.New("cluster: gossip replication is disabled (-gossip-interval)")
	}
	if err := store.ValidateName(name); err != nil {
		return LocalEstimate{}, err
	}
	ve, err := rt.gossip.replicas.Estimate(name)
	if err != nil {
		return LocalEstimate{}, err
	}
	return LocalEstimate{
		Store:            name,
		AllTime:          ve.AllTime,
		Mode:             "local",
		Replicas:         ve.Replicas,
		LocalFound:       ve.LocalFound,
		Nodes:            len(rt.view().members),
		StalenessSeconds: rt.gossip.staleness().Seconds(),
	}, nil
}

// HandleGossipDigest is GET /v1/gossip/digest: this node's version
// vector and instance id.
func (rt *Router) HandleGossipDigest(w http.ResponseWriter, _ *http.Request) {
	g := rt.gossip
	if g == nil {
		httpx.Fail(w, http.StatusNotFound, errors.New("gossip replication is disabled"))
		return
	}
	httpx.Reply(w, http.StatusOK, gossipDigest{
		Self:     rt.cfg.Self,
		Instance: g.instance,
		Versions: rt.local.Digest(),
	})
}

// HandleGossipPull is POST /v1/gossip/pull: stream back one envelope
// per requested store — a KNWD delta against the caller's base when
// the store can prove what changed, a full envelope otherwise.
func (rt *Router) HandleGossipPull(w http.ResponseWriter, r *http.Request) {
	g := rt.gossip
	if g == nil {
		httpx.Fail(w, http.StatusNotFound, errors.New("gossip replication is disabled"))
		return
	}
	var req pullRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes)).Decode(&req); err != nil {
		httpx.Fail(w, httpx.ReadStatus(err), err)
		return
	}
	if len(req.Versions) > maxGossipStores {
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("pull requests %d stores", len(req.Versions)))
		return
	}
	names := make([]string, 0, len(req.Versions))
	for name := range req.Versions {
		names = append(names, name)
	}
	sort.Strings(names)

	var body binenc.Writer
	count := uint64(0)
	for _, name := range names {
		base := req.Versions[name]
		if req.Instance != g.instance {
			// The caller's bases belong to a previous life of this
			// process; every version counter has restarted since.
			base = 0
		}
		ds, err := rt.local.DeltaSnapshot(name, base, true)
		if err != nil || ds.Env == nil {
			continue // unknown here, or already current
		}
		body.Bytes([]byte(name))
		body.Uvarint(ds.Version)
		body.Bytes(ds.Env)
		if ds.Delta {
			g.met.txDeltaBytes.Add(uint64(len(ds.Env)))
			g.met.txDeltas.Inc()
		} else {
			g.met.txFullBytes.Add(uint64(len(ds.Env)))
			g.met.txFulls.Inc()
		}
		count++
	}
	var out binenc.Writer
	out.Uvarint(gossipMagic)
	out.Uvarint(gossipVersion)
	out.Uvarint(g.instance)
	out.Uvarint(count)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(out.Buf)+len(body.Buf)))
	w.WriteHeader(http.StatusOK)
	w.Write(out.Buf)
	w.Write(body.Buf)
}
