package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	knw "repro"
	"repro/internal/trace"
	"repro/store"
)

// Estimate is the scatter-gather read-side report: the union estimate
// over every reachable node's sketch for one store.
type Estimate struct {
	Store   string  `json:"store"`
	AllTime float64 `json:"all_time"`
	// Window fields are present only when this node's store is
	// windowed; the window estimate is the union of every reachable
	// node's live window ring.
	Windowed bool    `json:"windowed"`
	Window   float64 `json:"window,omitempty"`
	// Nodes / NodesOK count cluster members and how many contributed.
	Nodes   int `json:"nodes"`
	NodesOK int `json:"nodes_ok"`
	// Partial is set when any peer could not contribute; the response
	// then carries the X-KNW-Partial header naming them.
	Partial     bool     `json:"partial"`
	FailedPeers []string `json:"failed_peers,omitempty"`
	Replication int      `json:"replication"`
	// RingEpoch is the committed membership epoch the answer was
	// assembled under; Rebalancing is set while a transition (union
	// routing + handoff) was in flight — mirrored in the
	// X-KNW-Ring-Epoch / X-KNW-Rebalancing headers.
	RingEpoch   uint64 `json:"ring_epoch"`
	Rebalancing bool   `json:"rebalancing,omitempty"`
}

// errNoData distinguishes "no node holds this store" (404) from
// transport-level gather failures.
var errNoData = errors.New("cluster: store unknown on every reachable node")

// gatherRes is one peer's contribution to a scatter-gather: its
// snapshot envelope (nil when the peer does not hold the store) or the
// failure that kept it from contributing.
type gatherRes struct {
	member int
	env    []byte // all-time envelope; nil on 404
	winEnv []byte // window envelope; nil when absent or unwindowed
	err    error
}

// MergedEstimate assembles the cluster-wide estimate for name: the
// local sketch plus every peer's snapshot envelope, opened and merged
// in this process. Peers that do not hold the store contribute nothing
// and are still counted healthy; peers that cannot be reached (or ship
// incompatible envelopes) are reported in Estimate.FailedPeers, and
// the merged result of everyone else — at minimum the stale local view
// — is served instead of an error. The error return is reserved for
// "no data anywhere": every reachable node 404ed (errors.Is
// store.ErrNotFound) or the store name is invalid.
func (rt *Router) MergedEstimate(name string) (Estimate, error) {
	return rt.mergedEstimate(name, nil)
}

// mergedEstimate is MergedEstimate with the caller's sampled span (nil
// when the request is unsampled or the caller is not a request): the
// scatter carries the trace header so peer snapshot handlers join the
// trace, and the span is annotated with the gather outcome.
func (rt *Router) mergedEstimate(name string, act *trace.Active) (Estimate, error) {
	if err := store.ValidateName(name); err != nil {
		return Estimate{}, err
	}
	t0 := time.Now()
	v := rt.view()
	windowed := rt.local.Window().Buckets > 0
	out := Estimate{
		Store:       name,
		Windowed:    windowed,
		Nodes:       len(v.members),
		Replication: v.replication,
		RingEpoch:   v.epoch,
		Rebalancing: v.rebalancing(),
	}

	results := rt.scatter(v, name, windowed, act.HeaderValue())

	var total, window knw.Estimator
	var failed []int
	merge := func(acc *knw.Estimator, env []byte) error {
		if env == nil {
			return nil
		}
		est, err := knw.Open(env)
		if err != nil {
			return err
		}
		if *acc == nil {
			*acc = est
			return nil
		}
		return knw.MergeInto(*acc, est)
	}
	for _, res := range results {
		if res.err == nil {
			res.err = merge(&total, res.env)
		}
		if res.err == nil && windowed {
			res.err = merge(&window, res.winEnv)
		}
		if res.err != nil {
			failed = append(failed, res.member)
			rt.log.Warn("gather failed", "store", name,
				"peer", v.members[res.member], "err", res.err,
				"trace", act.TraceHex())
			continue
		}
		out.NodesOK++
	}

	out.Partial = len(failed) > 0
	if out.Partial {
		rt.met.gatherPartial.Inc()
		for _, m := range failed {
			out.FailedPeers = append(out.FailedPeers, v.members[m])
		}
	}
	if total == nil {
		if out.Partial {
			// Nothing at all to serve — not even stale-local data.
			return out, fmt.Errorf("cluster: no node could serve %q (unreachable: %v)", name, out.FailedPeers)
		}
		return out, fmt.Errorf("%w: %w %q", errNoData, store.ErrNotFound, name)
	}
	out.AllTime = total.Estimate()
	if window != nil {
		out.Window = window.Estimate()
	}
	if out.Partial {
		// The stale-local fallback path: a 200 assembled without every
		// peer. Counted separately from gatherPartial, which also covers
		// partial gathers that ended in an error.
		rt.met.partialServed.Inc()
	}
	d := time.Since(t0)
	rt.met.gatherSeconds.Observe(d.Seconds())
	act.SetStore(name)
	act.Stage("gather", d)
	return out, nil
}

// scatter collects every member's envelopes for name concurrently: the
// local store is read in-process, peers over GET /v1/snapshot. The
// member space is the view's union list, so mid-rebalance gathers read
// joining and leaving nodes alike. hdr is the caller's rendered trace
// header ("" when unsampled), attached to every peer fetch.
func (rt *Router) scatter(v *ringView, name string, windowed bool, hdr string) []gatherRes {
	results := make([]gatherRes, len(v.members))
	var wg sync.WaitGroup
	for m := range v.members {
		results[m].member = m
		if m == v.self {
			results[m] = rt.localSnapshot(m, name, windowed)
			continue
		}
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			results[m] = rt.fetchSnapshot(v.members[m], m, name, windowed, hdr)
		}(m)
	}
	wg.Wait()
	return results
}

// localSnapshot reads this node's own envelopes without HTTP.
func (rt *Router) localSnapshot(m int, name string, windowed bool) gatherRes {
	res := gatherRes{member: m}
	env, err := rt.local.Snapshot(name, nil)
	if errors.Is(err, store.ErrNotFound) {
		return res
	}
	if err != nil {
		res.err = err
		return res
	}
	res.env = env
	if windowed {
		res.winEnv, err = rt.local.WindowSnapshot(name, nil)
		if err != nil {
			res.err = err
		}
	}
	return res
}

// fetchSnapshot pulls one peer's envelopes for name. A 404 means the
// peer holds no keys for the store — a healthy empty contribution.
func (rt *Router) fetchSnapshot(peer string, m int, name string, windowed bool, hdr string) gatherRes {
	res := gatherRes{member: m}
	env, found, err := rt.getSnapshot(peer, name, "", hdr)
	if err != nil {
		res.err = err
		return res
	}
	if !found {
		return res
	}
	res.env = env
	if windowed {
		res.winEnv, _, res.err = rt.getSnapshot(peer, name, "window", hdr)
	}
	return res
}

// getSnapshot GETs one envelope from a peer; found is false on 404.
func (rt *Router) getSnapshot(peer, name, scope, hdr string) (env []byte, found bool, err error) {
	u := peer + "/v1/snapshot?store=" + url.QueryEscape(name)
	if scope != "" {
		u += "&scope=" + scope
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	if hdr != "" {
		req.Header.Set(trace.Header, hdr)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg)
	}
	env, err = io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, false, err
	}
	return env, true, nil
}

// TraceResult is one peer's contribution to a cluster-wide trace
// gather: the peer URL and its local sampled traces (or the error that
// kept it from answering).
type TraceResult struct {
	Peer   string
	Traces []trace.Tree
	Err    error
}

// GatherTraces fans GET /v1/debug/traces?<query> out to every peer but
// self, concurrently, and returns one result per peer. query is the
// caller's filter set (trace=, store=, min_ms=, limit=) already
// stripped of scope — each peer answers with its local view only,
// and the caller merges.
func (rt *Router) GatherTraces(query string) []TraceResult {
	v := rt.view()
	var peers []string
	for m, peer := range v.members {
		if m != v.self {
			peers = append(peers, peer)
		}
	}
	out := make([]TraceResult, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		out[i].Peer = peer
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i].Traces, out[i].Err = rt.fetchTraces(peer, query)
		}(i, peer)
	}
	wg.Wait()
	return out
}

func (rt *Router) fetchTraces(peer, query string) ([]trace.Tree, error) {
	u := peer + "/v1/debug/traces"
	if query != "" {
		u += "?" + query
	}
	resp, err := rt.client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg)
	}
	var body struct {
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Traces, nil
}
