package cluster_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/cluster"
	"repro/store"
)

// End-to-end /v1/query and /v1/series against in-process clusters:
// routed ingest spreads two overlapping key sets across the ring, and
// every node's query endpoint must answer set algebra within the
// sketch ε of exact truth — in mode=gather (scatter), in mode=local
// (gossip view), and with a member down.

// queryWire mirrors the service's /v1/query response shape.
type queryWire struct {
	Mode             string    `json:"mode"`
	Scope            string    `json:"scope"`
	Cardinalities    []float64 `json:"cardinalities"`
	Union            float64   `json:"union"`
	Intersection     float64   `json:"intersection"`
	Jaccard          float64   `json:"jaccard"`
	Epsilon          float64   `json:"epsilon"`
	Nodes            int       `json:"nodes"`
	NodesOK          int       `json:"nodes_ok"`
	Partial          bool      `json:"partial"`
	StalenessSeconds *float64  `json:"staleness_seconds"`
}

func getQueryWire(t *testing.T, base, params string) (queryWire, http.Header, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/query?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var qw queryWire
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &qw); err != nil {
			t.Fatalf("decoding query: %v (%s)", err, body)
		}
	}
	return qw, resp.Header, resp.StatusCode
}

// seedOverlap ingests the canonical overlapping pair through node 0's
// routed ingest: |A| = |B| = 3000, overlap 1500 → union 4500, J = 1/3.
func seedOverlap(t *testing.T, base string) {
	t.Helper()
	if status, out := ingestLines(t, base, "j/a", genKeys("k", 0, 3000)); status != http.StatusOK {
		t.Fatalf("ingest j/a: HTTP %d: %s", status, out)
	}
	if status, out := ingestLines(t, base, "j/b", genKeys("k", 1500, 4500)); status != http.StatusOK {
		t.Fatalf("ingest j/b: HTTP %d: %s", status, out)
	}
}

// checkOverlap asserts a query answer against the exact truth of
// seedOverlap within the paper bounds: |A∪B| within ε·4500,
// |A∩B| within ε·(|A|+|B|+|A∪B|) = ε·10500.
func checkOverlap(t *testing.T, ctx string, qw queryWire) {
	t.Helper()
	if math.Abs(qw.Union-4500) > testEps*4500 {
		t.Errorf("%s: union = %.0f, want 4500 ± %.0f", ctx, qw.Union, testEps*4500)
	}
	if math.Abs(qw.Intersection-1500) > testEps*10500 {
		t.Errorf("%s: intersection = %.0f, want 1500 ± %.0f", ctx, qw.Intersection, testEps*10500)
	}
	if math.Abs(qw.Jaccard-1.0/3) > 0.15 {
		t.Errorf("%s: jaccard = %.3f, want ~0.333", ctx, qw.Jaccard)
	}
}

func TestClusterQueryGather(t *testing.T) {
	win := store.Window{Buckets: 4, Interval: time.Minute}
	nodes := startCluster(t, 3, 2, win)
	seedOverlap(t, nodes[0].url)

	for i, nd := range nodes {
		for _, scope := range []string{"all", "window"} {
			qw, hdr, status := getQueryWire(t, nd.url, "stores=j/a,j/b&mode=gather&scope="+scope)
			if status != http.StatusOK {
				t.Fatalf("node %d scope=%s: HTTP %d", i, scope, status)
			}
			if qw.Mode != "gather" || qw.Scope != scope {
				t.Errorf("node %d: mode/scope = %s/%s, want gather/%s", i, qw.Mode, qw.Scope, scope)
			}
			if qw.Nodes != 3 || qw.NodesOK != 3 || qw.Partial {
				t.Errorf("node %d scope=%s: completeness %d/%d partial=%v, want 3/3 false",
					i, scope, qw.NodesOK, qw.Nodes, qw.Partial)
			}
			if hdr.Get(cluster.PartialHeader) != "" {
				t.Errorf("node %d: partial header on a complete gather", i)
			}
			checkOverlap(t, nd.url+" scope="+scope, qw)
		}

		// The cluster series: every member ships its ring, same-epoch
		// buckets union. All ingest happened inside the live bucket.
		resp, err := http.Get(nd.url + "/v1/series?store=j/a&mode=gather")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d series: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var sr struct {
			Mode    string  `json:"mode"`
			Window  float64 `json:"window"`
			Nodes   int     `json:"nodes"`
			Buckets []struct {
				Epoch    int64   `json:"epoch"`
				Estimate float64 `json:"estimate"`
			} `json:"buckets"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("node %d series: %v (%s)", i, err, body)
		}
		if sr.Mode != "gather" || sr.Nodes != 3 || len(sr.Buckets) != 4 {
			t.Errorf("node %d series: mode/nodes/buckets = %s/%d/%d, want gather/3/4",
				i, sr.Mode, sr.Nodes, len(sr.Buckets))
		}
		if math.Abs(sr.Window-3000) > testEps*3000 {
			t.Errorf("node %d series window = %.0f, want 3000 ± %.0f", i, sr.Window, testEps*3000)
		}
		// Buckets are wall-aligned, so a rotation mid-test can move the
		// ingest out of the live bucket (and a straddling ingest can even
		// split it). Each key lands in exactly one bucket, so the total
		// across the ring is rotation-proof.
		var total float64
		for _, b := range sr.Buckets {
			total += b.Estimate
		}
		if math.Abs(total-3000) > testEps*3000 {
			t.Errorf("node %d bucket total = %.0f, want ~3000", i, total)
		}
	}

	// Kill one member: with R = 2 every key still has a live owner, so
	// the gather stays within bound — just flagged partial.
	nodes[2].hs.Close()
	qw, hdr, status := getQueryWire(t, nodes[0].url, "stores=j/a,j/b&mode=gather")
	if status != http.StatusOK {
		t.Fatalf("degraded gather: HTTP %d", status)
	}
	if !qw.Partial || qw.NodesOK != 2 {
		t.Errorf("degraded gather: completeness %d/3 partial=%v, want 2/3 true", qw.NodesOK, qw.Partial)
	}
	if hdr.Get(cluster.PartialHeader) == "" {
		t.Error("degraded gather: missing the partial header")
	}
	checkOverlap(t, "degraded gather", qw)
}

func TestClusterQueryLocal(t *testing.T) {
	const interval = 50 * time.Millisecond
	nodes := startGossipCluster(t, 3, 1, interval)
	seedOverlap(t, nodes[0].url)

	// Every node's gossip view converges to the cluster-wide answer —
	// O(1) reads, no scatter. With gossip on, local is also the default
	// mode, so query without ?mode=.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < len(nodes); {
		qw, hdr, status := getQueryWire(t, nodes[i].url, "stores=j/a,j/b")
		ok := status == http.StatusOK &&
			math.Abs(qw.Union-4500) <= testEps*4500 &&
			math.Abs(qw.Intersection-1500) <= testEps*10500
		if ok {
			if qw.Mode != "local" {
				t.Fatalf("node %d: default mode = %q, want local", i, qw.Mode)
			}
			if qw.StalenessSeconds == nil || hdr.Get(cluster.StalenessHeader) == "" {
				t.Fatalf("node %d: local answer missing staleness (body %v, header %q)",
					i, qw.StalenessSeconds, hdr.Get(cluster.StalenessHeader))
			}
			i++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never converged: HTTP %d, union %.0f inter %.0f",
				i, status, qw.Union, qw.Intersection)
		}
		time.Sleep(interval / 2)
	}

	// Windowed scopes cannot answer from the all-time replica view.
	if _, _, status := getQueryWire(t, nodes[0].url, "stores=j/a,j/b&mode=local&scope=window"); status != http.StatusBadRequest {
		t.Errorf("mode=local scope=window: HTTP %d, want 400", status)
	}
	// Nor can a series (and this cluster has no window ring at all).
	resp, err := http.Get(nodes[0].url + "/v1/series?store=j/a&mode=gather")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("series on unwindowed cluster: HTTP %d, want 400", resp.StatusCode)
	}
}
