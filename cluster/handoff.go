package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	knw "repro"
	"repro/internal/binenc"
	"repro/internal/httpx"
	"repro/internal/trace"
	"repro/store"
)

// The handoff engine moves re-owned data to its new owners during a
// membership transition. Mergeability is what makes this O(sketch)
// instead of O(keys): a node does not enumerate or re-route individual
// keys — it ships each store's envelope (a few KB regardless of
// cardinality) to every peer that newly owns any slice this node
// currently owns, and the receiver merges it. Over-transfer is free
// under union semantics (keys the target did not strictly need still
// count once), so the target set errs wide: any peer that gains
// ownership of any hash interval we own today gets our full envelopes.
//
// Wire form ("KNWH", the POST /v1/cluster/handoff body):
//
//	uvarint handoffMagic ("KNWH")
//	uvarint version (1)
//	uvarint epoch (the pending epoch this transfer serves)
//	bytes   source member url
//	uvarint record count
//	per record:
//	  bytes   store name
//	  uvarint scope (0 = all-time envelope, 1 = live-window envelope)
//	  bytes   envelope (KNWE)
//
// Pushes retry with capped exponential backoff until they succeed, the
// attempt budget runs out, or a newer epoch supersedes the transition;
// each push rebuilds the stream from live snapshots, so a retry after
// more ingest simply carries the fresher envelope (idempotent merges).
const (
	handoffMagic   = 0x4b4e5748 // "KNWH"
	handoffVersion = 1
	// maxHandoffBody bounds one handoff stream on the receive side.
	maxHandoffBody = 256 << 20
	// maxHandoffStores bounds the record count in one stream.
	maxHandoffStores = 1 << 20
	// maxHandoffBackoff caps the push retry backoff.
	maxHandoffBackoff = 2 * time.Second
	// maxHandoffAttempts bounds one target's pushes; past it the
	// coordinator's cutover deadline decides (replication covers the
	// data when the target stayed unreachable).
	maxHandoffAttempts = 60
)

const (
	handoffScopeAllTime = 0
	handoffScopeWindow  = 1
)

// HandoffTarget is one peer's transfer progress.
type HandoffTarget struct {
	Done     bool   `json:"done"`
	Attempts int    `json:"attempts"`
	Stores   int    `json:"stores"`
	LastErr  string `json:"error,omitempty"`
}

// HandoffStatus reports one epoch's outbound transfer state — the
// coordinator's poll answer.
type HandoffStatus struct {
	Epoch   uint64                   `json:"epoch"`
	Done    bool                     `json:"done"`
	Targets map[string]HandoffTarget `json:"targets,omitempty"`
}

// handoff drives one pending epoch's outbound pushes.
type handoff struct {
	rt     *Router
	epoch  uint64
	cancel chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	targets map[string]*HandoffTarget
}

// startHandoffLocked cancels any previous engine and starts pushes for
// the view's pending epoch. Callers hold memMu.
func (rt *Router) startHandoffLocked(v *ringView) {
	if rt.ho != nil {
		close(rt.ho.cancel)
	}
	h := &handoff{
		rt:      rt,
		epoch:   v.pendingEpoch,
		cancel:  make(chan struct{}),
		targets: make(map[string]*HandoffTarget),
	}
	for _, peer := range handoffTargets(v) {
		h.targets[peer] = &HandoffTarget{}
	}
	rt.ho = h
	if len(h.targets) == 0 {
		return
	}
	rt.log.Info("handoff started", "epoch", h.epoch, "targets", len(h.targets))
	for peer := range h.targets {
		h.wg.Add(1)
		go h.push(peer)
	}
}

// stopHandoff cancels the running engine and waits for its pushers —
// the shutdown path.
func (rt *Router) stopHandoff() {
	rt.memMu.Lock()
	h := rt.ho
	rt.ho = nil
	rt.memMu.Unlock()
	if h == nil {
		return
	}
	select {
	case <-h.cancel:
	default:
		close(h.cancel)
	}
	h.wg.Wait()
}

// HandoffStatus reports the transfer state for one epoch. Epochs at or
// below the committed one with no live engine read as done: either the
// transfer finished and was superseded, or this node had nothing to
// ship for it.
func (rt *Router) HandoffStatus(epoch uint64) HandoffStatus {
	rt.memMu.Lock()
	h := rt.ho
	committed := rt.cur.Epoch
	pending := uint64(0)
	if rt.pending != nil {
		pending = rt.pending.Epoch
	}
	rt.memMu.Unlock()
	if h != nil && h.epoch == epoch {
		return h.status()
	}
	// No engine for that epoch: done when this node has moved past it
	// (committed or superseded by a newer proposal); not done when the
	// node has never heard of the epoch at all.
	return HandoffStatus{Epoch: epoch, Done: committed >= epoch || pending > epoch}
}

func (h *handoff) status() HandoffStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HandoffStatus{Epoch: h.epoch, Done: true,
		Targets: make(map[string]HandoffTarget, len(h.targets))}
	for peer, t := range h.targets {
		out.Targets[peer] = *t
		if !t.Done {
			out.Done = false
		}
	}
	return out
}

// handoffTargets computes the peers this node must push to: every
// member of the pending ring that newly owns a hash interval this node
// owns in the committed ring. Ownership is piecewise constant between
// ring points, so evaluating the owner sets at every point hash of
// both rings covers every interval exactly once.
func handoffTargets(v *ringView) []string {
	if v.next == nil || v.self < 0 {
		return nil
	}
	hashes := make([]uint64, 0, len(v.cur.points)+len(v.next.points))
	for _, p := range v.cur.points {
		hashes = append(hashes, p.hash)
	}
	for _, p := range v.next.points {
		hashes = append(hashes, p.hash)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })

	self := v.selfURL
	targets := map[string]bool{}
	var curBuf, nextBuf []int
	var prev uint64
	first := true
	for _, hp := range hashes {
		if !first && hp == prev {
			continue
		}
		first, prev = false, hp
		curBuf = v.cur.owners(hp, v.curRepl, curBuf)
		selfOwns := false
		for _, m := range curBuf {
			if v.cur.members[m] == self {
				selfOwns = true
				break
			}
		}
		if !selfOwns {
			continue
		}
		nextBuf = v.next.owners(hp, v.nextRepl, nextBuf)
	outer:
		for _, m := range nextBuf {
			url := v.next.members[m]
			if url == self || targets[url] {
				continue
			}
			for _, c := range curBuf {
				if v.cur.members[c] == url {
					continue outer // owned it before: nothing new to ship
				}
			}
			targets[url] = true
		}
	}
	out := make([]string, 0, len(targets))
	for url := range targets {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

// push drives one target until its transfer lands (or the engine is
// canceled / the attempt budget runs out).
func (h *handoff) push(peer string) {
	defer h.wg.Done()
	rt := h.rt
	backoff := rt.cfg.Backoff
	for attempt := 0; attempt < maxHandoffAttempts; attempt++ {
		if attempt > 0 {
			rt.met.handoffRetries.Inc()
			if !h.pause(backoff) {
				return
			}
			if backoff < maxHandoffBackoff {
				backoff *= 2
			}
		}
		select {
		case <-h.cancel:
			return
		default:
		}
		stores, keys, nbytes, err, permanent := rt.pushHandoff(peer, h.epoch)
		h.mu.Lock()
		t := h.targets[peer]
		t.Attempts = attempt + 1
		if err == nil {
			t.Done = true
			t.Stores = stores
			t.LastErr = ""
			h.mu.Unlock()
			rt.met.handoffStores.Add(uint64(stores))
			rt.met.handoffKeys.Add(keys)
			rt.met.handoffBytes.Add(nbytes)
			rt.log.Info("handoff push complete", "peer", peer, "epoch", h.epoch,
				"stores", stores, "bytes", nbytes)
			return
		}
		t.LastErr = err.Error()
		h.mu.Unlock()
		rt.met.handoffErrors.Inc()
		rt.log.Warn("handoff push failed", "peer", peer, "epoch", h.epoch,
			"attempt", attempt+1, "err", err)
		if permanent {
			return
		}
	}
}

// pause sleeps the retry backoff, returning false when the engine was
// canceled meanwhile. Tests inject Router.sleepFn to run retries on a
// fake clock.
func (h *handoff) pause(d time.Duration) bool {
	if h.rt.sleepFn != nil {
		h.rt.sleepFn(d)
		select {
		case <-h.cancel:
			return false
		default:
			return true
		}
	}
	select {
	case <-h.cancel:
		return false
	case <-time.After(d):
		return true
	}
}

// pushHandoff builds one KNWH stream from live snapshots and delivers
// it. keys is the estimated distinct-key mass shipped (the sum of the
// shipped stores' all-time estimates — what knwd_handoff_keys_total
// accumulates). permanent marks 4xx rejections, which a retry cannot
// fix.
func (rt *Router) pushHandoff(peer string, epoch uint64) (stores int, keys, nbytes uint64, err error, permanent bool) {
	act := rt.tracer.StartLocal("handoff.push")
	act.SetPeer(peer)
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		if err == nil {
			rt.met.handoffSeconds.Observe(d.Seconds())
			rt.met.stageHandoffPush.Observe(d.Seconds())
			act.Stage("handoff_push", d)
		}
		rt.tracer.FinishLocal(act, err)
	}()

	windowed := rt.local.Window().Buckets > 0
	var body binenc.Writer
	count := 0
	var keyMass float64
	for _, name := range rt.local.Names() {
		env, serr := rt.local.Snapshot(name, nil)
		if errors.Is(serr, store.ErrNotFound) {
			continue // deleted between Names and Snapshot
		}
		if serr != nil {
			return 0, 0, 0, serr, false
		}
		body.Bytes([]byte(name))
		body.Uvarint(handoffScopeAllTime)
		body.Bytes(env)
		count++
		if est, oerr := knw.Open(env); oerr == nil {
			keyMass += est.Estimate()
		}
		if !windowed {
			continue
		}
		wenv, werr := rt.local.WindowSnapshot(name, nil)
		if werr != nil {
			if errors.Is(werr, store.ErrNotFound) || errors.Is(werr, store.ErrNotWindowed) {
				continue
			}
			return 0, 0, 0, werr, false
		}
		body.Bytes([]byte(name))
		body.Uvarint(handoffScopeWindow)
		body.Bytes(wenv)
		count++
	}

	var head binenc.Writer
	head.Uvarint(handoffMagic)
	head.Uvarint(handoffVersion)
	head.Uvarint(epoch)
	head.Bytes([]byte(rt.cfg.Self))
	head.Uvarint(uint64(count))
	payload := append(head.Buf, body.Buf...)

	req, rerr := http.NewRequest(http.MethodPost, peer+"/v1/cluster/handoff", bytes.NewReader(payload))
	if rerr != nil {
		return 0, 0, 0, rerr, false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, derr := rt.client.Do(req)
	if derr != nil {
		return 0, 0, 0, derr, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, 0, 0, fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg),
			resp.StatusCode >= 400 && resp.StatusCode < 500
	}
	io.Copy(io.Discard, resp.Body)
	if keyMass < 0 {
		keyMass = 0
	}
	return count, uint64(keyMass + 0.5), uint64(len(payload)), nil, false
}

// HandleHandoff is POST /v1/cluster/handoff: merge an inbound KNWH
// stream into the local store. Merging is idempotent and union-safe,
// so re-deliveries (push retries) and transfers for epochs this node
// has already moved past are accepted rather than bounced — bouncing
// could only lose data.
func (rt *Router) HandleHandoff(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHandoffBody))
	if err != nil {
		httpx.Fail(w, httpx.ReadStatus(err), err)
		return
	}
	act := trace.FromContext(r.Context())
	t0 := time.Now()
	br := binenc.Reader{Buf: data}
	br.Expect(handoffMagic, "handoff magic")
	if v := br.Uvarint(); br.Err() == nil && v != handoffVersion {
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("unsupported handoff version %d", v))
		return
	}
	epoch := br.Uvarint()
	source := string(br.BytesView())
	count := br.Uvarint()
	if err := br.Err(); err != nil {
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("bad handoff header: %w", err))
		return
	}
	if count > maxHandoffStores {
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("handoff claims %d records", count))
		return
	}
	applied := 0
	for i := uint64(0); i < count; i++ {
		name := string(br.BytesView())
		scope := br.Uvarint()
		env := br.BytesView()
		if err := br.Err(); err != nil {
			httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("bad handoff record: %w", err))
			return
		}
		if err := store.ValidateName(name); err != nil {
			httpx.Fail(w, http.StatusBadRequest, err)
			return
		}
		switch scope {
		case handoffScopeAllTime:
			err = rt.local.Merge(name, env)
		case handoffScopeWindow:
			err = rt.local.MergeWindow(name, env)
			if errors.Is(err, store.ErrNotWindowed) {
				// Config skew: fold the peer's window into all-time rather
				// than dropping its keys.
				err = rt.local.Merge(name, env)
			}
		default:
			err = fmt.Errorf("unknown handoff scope %d", scope)
		}
		if err != nil {
			httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("handoff record %q: %w", name, err))
			return
		}
		applied++
	}
	if len(br.Buf) != 0 {
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("handoff has %d trailing bytes", len(br.Buf)))
		return
	}
	rt.met.handoffApplied.Add(uint64(applied))
	d := time.Since(t0)
	rt.met.stageHandoffApply.Observe(d.Seconds())
	act.Stage("handoff_apply", d)
	act.SetPeer(source)
	rt.log.Info("handoff applied", "source", source, "epoch", epoch, "stores", applied)
	rt.ringHeaders(w)
	httpx.Reply(w, http.StatusOK, map[string]any{
		"epoch":  epoch,
		"stores": applied,
	})
}
