package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	knw "repro"
	"repro/internal/trace"
	"repro/store"
)

// Cluster-side query primitives: GatherSketch hands the scatter-gather
// machinery's merged sketch back to the caller (instead of collapsing
// it to a number, as MergedEstimate does), so the service's /v1/query
// can run set algebra across several gathered stores; GatherSeries
// scatters per-bucket ring snapshots and unions them epoch by epoch
// into one cluster-wide time-series; LocalSketch is the O(1)
// gossip-view counterpart for mode=local.

// GatherInfo describes how complete a scatter-gather assembly was —
// the completeness fields of Estimate, reusable by any gathered
// answer.
type GatherInfo struct {
	Nodes       int      `json:"nodes"`
	NodesOK     int      `json:"nodes_ok"`
	Partial     bool     `json:"partial"`
	FailedPeers []string `json:"failed_peers,omitempty"`
}

// Merge folds another gather's completeness into g: a multi-store
// query is partial when any of its per-store gathers was.
func (g *GatherInfo) Merge(o GatherInfo) {
	if g.Nodes == 0 {
		*g = o
		return
	}
	if o.NodesOK < g.NodesOK {
		g.NodesOK = o.NodesOK
	}
	g.Partial = g.Partial || o.Partial
	for _, p := range o.FailedPeers {
		seen := false
		for _, q := range g.FailedPeers {
			if p == q {
				seen = true
				break
			}
		}
		if !seen {
			g.FailedPeers = append(g.FailedPeers, p)
		}
	}
}

// GatherSketch assembles the cluster-wide union sketch for one store:
// the local envelope plus every peer's, opened and merged in this
// process. windowed merges the scope=window envelopes (the live window
// rings) instead of the all-time ones. Failure semantics match
// MergedEstimate: peers that hold no data count healthy, unreachable
// or incompatible peers land in GatherInfo.FailedPeers with the merged
// remainder still returned, and the error return means no data
// anywhere (errors.Is store.ErrNotFound when every node 404ed).
func (rt *Router) GatherSketch(name string, windowed bool, act *trace.Active) (knw.Estimator, GatherInfo, error) {
	if err := store.ValidateName(name); err != nil {
		return nil, GatherInfo{}, err
	}
	t0 := time.Now()
	scope := ""
	if windowed {
		scope = "window"
	}
	v := rt.view()
	results := rt.scatterScope(v, name, scope, act.HeaderValue())
	acc, info := rt.foldEnvelopes(v, name, results, act)
	if acc == nil {
		if info.Partial {
			return nil, info, fmt.Errorf("cluster: no node could serve %q (unreachable: %v)", name, info.FailedPeers)
		}
		return nil, info, fmt.Errorf("%w: %w %q", errNoData, store.ErrNotFound, name)
	}
	d := time.Since(t0)
	rt.met.gatherSeconds.Observe(d.Seconds())
	act.SetStore(name)
	act.Stage("gather", d)
	return acc, info, nil
}

// foldEnvelopes opens and merges one scatter's envelopes, tallying
// completeness (and the partial-serving metrics) as mergedEstimate
// does.
func (rt *Router) foldEnvelopes(v *ringView, name string, results []gatherRes, act *trace.Active) (knw.Estimator, GatherInfo) {
	info := GatherInfo{Nodes: len(v.members)}
	var acc knw.Estimator
	for _, res := range results {
		if res.err == nil && res.env != nil {
			est, err := knw.Open(res.env)
			if err != nil {
				res.err = err
			} else if acc == nil {
				acc = est
			} else {
				res.err = knw.MergeInto(acc, est)
			}
		}
		if res.err != nil {
			info.Partial = true
			info.FailedPeers = append(info.FailedPeers, v.members[res.member])
			rt.log.Warn("gather failed", "store", name,
				"peer", v.members[res.member], "err", res.err,
				"trace", act.TraceHex())
			continue
		}
		info.NodesOK++
	}
	if info.Partial {
		rt.met.gatherPartial.Inc()
		if acc != nil {
			rt.met.partialServed.Inc()
		}
	}
	return acc, info
}

// scatterScope collects every member's envelope for one snapshot scope
// concurrently — scatter generalized beyond the all-time+window pair.
func (rt *Router) scatterScope(v *ringView, name, scope, hdr string) []gatherRes {
	results := make([]gatherRes, len(v.members))
	var wg sync.WaitGroup
	for m := range v.members {
		results[m].member = m
		if m == v.self {
			results[m].env, results[m].err = rt.localScope(name, scope)
			continue
		}
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			env, found, err := rt.getSnapshot(v.members[m], name, scope, hdr)
			results[m].err = err
			if found {
				results[m].env = env
			}
		}(m)
	}
	wg.Wait()
	return results
}

// localScope reads this node's own envelope for a snapshot scope
// without HTTP; a nil envelope with nil error means the store is
// unknown here (the healthy-empty contribution).
func (rt *Router) localScope(name, scope string) ([]byte, error) {
	var env []byte
	var err error
	switch scope {
	case "window":
		env, err = rt.local.WindowSnapshot(name, nil)
	case "buckets":
		var rs store.RingSnapshot
		rs, err = rt.local.RingSnapshot(name)
		if err == nil {
			env = rs.Encode(nil)
		}
	default:
		env, err = rt.local.Snapshot(name, nil)
	}
	if errors.Is(err, store.ErrNotFound) {
		return nil, nil
	}
	return env, err
}

// GatherSeries assembles the cluster-wide cardinality time-series for
// one windowed store: every member ships its per-bucket ring snapshot
// (GET /v1/snapshot?scope=buckets), and because bucket epochs are
// wall-aligned interval indices shared by every same-configured node,
// the buckets union epoch by epoch — per-point union semantics
// identical to a single node that had ingested everything. The span is
// rounded exactly as store.Series rounds it; epochs nobody has data
// for read zero. Requires NTP-sane clocks across members, like the
// window ring itself.
//
// A series cannot be answered from the gossip merged view: replicas
// carry only all-time envelopes (deltas have no event times), so there
// is no mode=local series — the documented trade-off is fan-out per
// series read vs O(1) staleness-bounded point reads.
func (rt *Router) GatherSeries(name string, span time.Duration, act *trace.Active) (store.Series, GatherInfo, error) {
	if err := store.ValidateName(name); err != nil {
		return store.Series{}, GatherInfo{}, err
	}
	win := rt.local.Window()
	if win.Buckets == 0 {
		return store.Series{}, GatherInfo{}, fmt.Errorf("%w (%q)", store.ErrNotWindowed, name)
	}
	t0 := time.Now()
	v := rt.view()
	results := rt.scatterScope(v, name, "buckets", act.HeaderValue())

	info := GatherInfo{Nodes: len(v.members)}
	byEpoch := map[int64]knw.Estimator{}
	var maxEpoch int64
	var sketchName string
	seen := false
	for _, res := range results {
		if res.err == nil && res.env != nil {
			res.err = func() error {
				rs, err := store.DecodeRingSnapshot(res.env)
				if err != nil {
					return err
				}
				if rs.Interval != win.Interval {
					return fmt.Errorf("peer window interval %v differs from local %v", rs.Interval, win.Interval)
				}
				for _, b := range rs.Buckets {
					est, err := knw.Open(b.Env)
					if err != nil {
						return err
					}
					sketchName = est.Name()
					if cur := byEpoch[b.Epoch]; cur == nil {
						byEpoch[b.Epoch] = est
					} else if err := knw.MergeInto(cur, est); err != nil {
						return err
					}
					if !seen || b.Epoch > maxEpoch {
						maxEpoch = b.Epoch
						seen = true
					}
				}
				return nil
			}()
		}
		if res.err != nil {
			info.Partial = true
			info.FailedPeers = append(info.FailedPeers, v.members[res.member])
			rt.log.Warn("series gather failed", "store", name,
				"peer", v.members[res.member], "err", res.err,
				"trace", act.TraceHex())
			continue
		}
		info.NodesOK++
	}
	if info.Partial {
		rt.met.gatherPartial.Inc()
	}
	if !seen {
		if info.Partial {
			return store.Series{}, info, fmt.Errorf("cluster: no node could serve a series for %q (unreachable: %v)", name, info.FailedPeers)
		}
		return store.Series{}, info, fmt.Errorf("%w: %w %q", errNoData, store.ErrNotFound, name)
	}
	if info.Partial {
		rt.met.partialServed.Inc()
	}

	k := store.SpanBuckets(span, win.Interval, win.Buckets)
	out := store.Series{
		Store:    name,
		Sketch:   sketchName,
		Interval: win.Interval.String(),
		Span:     (time.Duration(k) * win.Interval).String(),
		Buckets:  make([]store.SeriesPoint, 0, k),
	}
	// Per-bucket estimates first; the union accumulator below mutates
	// the per-epoch sketches, so read before merging.
	for j := k - 1; j >= 0; j-- {
		epoch := maxEpoch - int64(j)
		start := time.Unix(0, epoch*int64(win.Interval))
		p := store.SeriesPoint{Start: start, End: start.Add(win.Interval), Epoch: epoch}
		if est := byEpoch[epoch]; est != nil {
			p.Estimate = est.Estimate()
		}
		out.Buckets = append(out.Buckets, p)
	}
	var union knw.Estimator
	for j := 0; j < k; j++ {
		est := byEpoch[maxEpoch-int64(j)]
		if est == nil {
			continue
		}
		if union == nil {
			union = est
		} else if err := knw.MergeInto(union, est); err != nil {
			return store.Series{}, info, err
		}
	}
	if union != nil {
		out.Window = union.Estimate()
	}
	// Delta compares the two newest epochs. With k == 1 the previous
	// epoch's sketch is outside the span and so still unmutated by the
	// union accumulator above.
	n := len(out.Buckets)
	var prev float64
	if k >= 2 {
		prev = out.Buckets[n-2].Estimate
	} else if est := byEpoch[maxEpoch-1]; est != nil {
		prev = est.Estimate()
	}
	out.Delta = out.Buckets[n-1].Estimate - prev
	out.RatePerSec = out.Delta / win.Interval.Seconds()

	d := time.Since(t0)
	rt.met.gatherSeconds.Observe(d.Seconds())
	act.SetStore(name)
	act.Stage("series_gather", d)
	return out, info, nil
}

// LocalSketch resolves name to a caller-owned sketch merged from this
// node's own store plus its gossip replicas — the sketch-valued
// counterpart of LocalEstimate, for /v1/query mode=local: O(replicas)
// merging, no network, the X-KNW-Staleness bound of the gossip view.
// The second return carries the replica and staleness detail for
// response assembly.
func (rt *Router) LocalSketch(name string) (knw.Estimator, LocalEstimate, error) {
	if rt.gossip == nil {
		return nil, LocalEstimate{}, errors.New("cluster: gossip replication is disabled (-gossip-interval)")
	}
	if err := store.ValidateName(name); err != nil {
		return nil, LocalEstimate{}, err
	}
	est, ve, err := rt.gossip.replicas.MergedSketch(name)
	if err != nil {
		return nil, LocalEstimate{}, err
	}
	return est, LocalEstimate{
		Store:            name,
		AllTime:          ve.AllTime,
		Mode:             "local",
		Replicas:         ve.Replicas,
		LocalFound:       ve.LocalFound,
		Nodes:            len(rt.view().members),
		StalenessSeconds: rt.gossip.staleness().Seconds(),
	}, nil
}
