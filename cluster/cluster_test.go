package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	knw "repro"
	"repro/cluster"
	"repro/service"
	"repro/store"
)

// testEps is the sketch ε the e2e cluster runs with; the acceptance
// check asserts the merged estimate lands within ε of exact truth.
const testEps = 0.05

// node is one in-process cluster member: a service.Server with the
// cluster routes mounted, listening on a real loopback port.
type node struct {
	srv *service.Server
	hs  *httptest.Server
	url string
}

// startCluster brings up n knwd nodes joined into one cluster with the
// given replication factor. Listeners are bound before the servers are
// built so every node knows the full peer URL list up front — the same
// order of operations a deployment has (addresses first, daemons
// second).
func startCluster(t *testing.T, n, replication int, window store.Window, storeOpts ...func(*store.Config)) []*node {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i := range nodes {
		stCfg := store.Config{
			Kind:    knw.KindConcurrentF0,
			Options: []knw.Option{knw.WithEpsilon(testEps), knw.WithSeed(1)},
			Window:  window,
		}
		for _, opt := range storeOpts {
			opt(&stCfg)
		}
		srv, err := service.New(service.Config{
			Store: stCfg,
			Cluster: &cluster.Config{
				Self:        peers[i],
				Peers:       peers,
				Replication: replication,
				Backoff:     5 * time.Millisecond,
				Timeout:     5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &httptest.Server{
			Listener: lns[i],
			Config:   &http.Server{Handler: srv.Handler()},
		}
		hs.Start()
		nodes[i] = &node{srv: srv, hs: hs, url: peers[i]}
		t.Cleanup(hs.Close)
	}
	return nodes
}

// clusterEstimate GETs one node's scatter-gather estimate, returning
// the decoded report and the X-KNW-Partial header value.
func clusterEstimate(t *testing.T, base, name string) (cluster.Estimate, string, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster/estimate?store=" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var est cluster.Estimate
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &est); err != nil {
			t.Fatalf("decoding estimate: %v (%s)", err, body)
		}
	}
	return est, resp.Header.Get(cluster.PartialHeader), resp.StatusCode
}

// ingestLines POSTs newline keys to a node's routed ingest and returns
// the response status and body.
func ingestLines(t *testing.T, base, name string, keys []string) (int, []byte) {
	t.Helper()
	body := strings.Join(keys, "\n") + "\n"
	resp, err := http.Post(base+"/v1/cluster/ingest?store="+name, "text/plain",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func genKeys(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

// TestClusterEndToEnd is the PR's acceptance scenario: 3 nodes, R=2,
// 100k keys ingested through a single node, merged estimate within ε
// of exact truth from every node; then one node dies and estimates
// keep flowing — flagged partial, still within ε because R=2 leaves a
// live replica of every key.
func TestClusterEndToEnd(t *testing.T) {
	const (
		totalKeys   = 100_000
		replication = 2
	)
	nodes := startCluster(t, 3, replication, store.Window{})

	// All 100k keys enter through node 0 only: the router must spread
	// them over the ring by itself.
	for lo := 0; lo < totalKeys; lo += 10_000 {
		status, out := ingestLines(t, nodes[0].url, "acme/users", genKeys("user", lo, lo+10_000))
		if status != http.StatusOK {
			t.Fatalf("cluster ingest: HTTP %d: %s", status, out)
		}
	}

	// Every node answers the same scatter-gathered union, within ε.
	for i, nd := range nodes {
		est, partial, status := clusterEstimate(t, nd.url, "acme/users")
		if status != http.StatusOK {
			t.Fatalf("node %d estimate: HTTP %d", i, status)
		}
		if partial != "" || est.Partial {
			t.Fatalf("node %d: healthy cluster reported partial (%q)", i, partial)
		}
		if est.Nodes != 3 || est.NodesOK != 3 {
			t.Fatalf("node %d: nodes %d/%d, want 3/3", i, est.NodesOK, est.Nodes)
		}
		if rel := math.Abs(est.AllTime-totalKeys) / totalKeys; rel > testEps {
			t.Fatalf("node %d: merged estimate %.0f vs truth %d: rel err %.3f > ε=%v",
				i, est.AllTime, totalKeys, rel, testEps)
		}
	}

	// The keys really are sharded: each node's local store holds its
	// ring share (~R/N of the keyspace), not everything.
	for i, nd := range nodes {
		local, err := nd.srv.Store().Estimate("acme/users")
		if err != nil {
			t.Fatalf("node %d local estimate: %v", i, err)
		}
		frac := local.AllTime / totalKeys
		if frac > 0.95 {
			t.Errorf("node %d holds %.0f%% of keys locally; routing did not shard", i, frac*100)
		}
		if frac < 0.25 {
			t.Errorf("node %d holds only %.0f%% of keys; ring badly unbalanced", i, frac*100)
		}
	}

	// Kill node 2. Scatter-gather from node 0 must still serve — R=2
	// guarantees every key survives on a live node — and must say so.
	nodes[2].hs.Close()
	est, partial, status := clusterEstimate(t, nodes[0].url, "acme/users")
	if status != http.StatusOK {
		t.Fatalf("estimate with dead peer: HTTP %d", status)
	}
	if !est.Partial || !strings.Contains(partial, nodes[2].url) {
		t.Fatalf("dead peer not reported: partial=%v header=%q", est.Partial, partial)
	}
	if est.NodesOK != 2 {
		t.Fatalf("nodes_ok = %d with one dead peer, want 2", est.NodesOK)
	}
	if rel := math.Abs(est.AllTime-totalKeys) / totalKeys; rel > testEps {
		t.Fatalf("partial estimate %.0f vs truth %d: rel err %.3f > ε=%v (replication failed to cover)",
			est.AllTime, totalKeys, rel, testEps)
	}

	// Routed ingest with a dead peer: still 200 (1 failure < R), the
	// response flags the partial delivery, and the new keys are counted
	// because their surviving owners took them.
	status, out := ingestLines(t, nodes[0].url, "acme/users", genKeys("late", 0, 5_000))
	if status != http.StatusOK {
		t.Fatalf("ingest with dead peer: HTTP %d: %s", status, out)
	}
	var res struct {
		Partial bool           `json:"partial"`
		Lost    map[string]int `json:"lost"`
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Lost[nodes[2].url] == 0 {
		t.Fatalf("dead-peer ingest not flagged partial: %s", out)
	}
	const newTruth = totalKeys + 5_000
	est, _, _ = clusterEstimate(t, nodes[1].url, "acme/users")
	if rel := math.Abs(est.AllTime-newTruth) / newTruth; rel > testEps {
		t.Fatalf("estimate after degraded ingest %.0f vs truth %d: rel err %.3f > ε=%v",
			est.AllTime, newTruth, rel, testEps)
	}
}

// TestClusterWindowedGather: windowed stores scatter-gather their
// window unions too (scope=window envelopes), and the merged window
// tracks only the trailing buckets.
func TestClusterWindowedGather(t *testing.T) {
	nodes := startCluster(t, 3, 2, store.Window{Buckets: 3, Interval: time.Hour})

	if status, out := ingestLines(t, nodes[1].url, "t/m", genKeys("w", 0, 8_000)); status != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", status, out)
	}
	est, _, status := clusterEstimate(t, nodes[0].url, "t/m")
	if status != http.StatusOK {
		t.Fatalf("estimate: HTTP %d", status)
	}
	if !est.Windowed {
		t.Fatal("cluster estimate not windowed on a windowed store")
	}
	for what, v := range map[string]float64{"all_time": est.AllTime, "window": est.Window} {
		if rel := math.Abs(v-8000) / 8000; rel > 0.15 {
			t.Fatalf("windowed gather %s = %.0f, want 8000 ± 15%%", what, v)
		}
	}
}

// TestClusterJSONIngestAndInfo: the JSON document stream routes per
// store, and /v1/cluster/info reports the static membership.
func TestClusterJSONIngestAndInfo(t *testing.T) {
	nodes := startCluster(t, 2, 1, store.Window{})

	var body bytes.Buffer
	for _, doc := range []map[string]any{
		{"store": "a/m", "keys": genKeys("x", 0, 3000)},
		{"store": "b/m", "keys": genKeys("y", 0, 1000)},
	} {
		blob, _ := json.Marshal(doc)
		body.Write(blob)
		body.WriteByte('\n')
	}
	resp, err := http.Post(nodes[0].url+"/v1/cluster/ingest", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON cluster ingest: HTTP %d: %s", resp.StatusCode, out)
	}
	for name, truth := range map[string]float64{"a/m": 3000, "b/m": 1000} {
		est, _, status := clusterEstimate(t, nodes[1].url, name)
		if status != http.StatusOK {
			t.Fatalf("estimate %s: HTTP %d", name, status)
		}
		if rel := math.Abs(est.AllTime-truth) / truth; rel > 0.15 {
			t.Fatalf("%s: estimate %.0f, want %.0f ± 15%%", name, est.AllTime, truth)
		}
	}

	resp, err = http.Get(nodes[0].url + "/v1/cluster/info")
	if err != nil {
		t.Fatal(err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var info struct {
		Self        string   `json:"self"`
		Members     []string `json:"members"`
		Replication int      `json:"replication"`
	}
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if info.Self != nodes[0].url || len(info.Members) != 2 || info.Replication != 1 {
		t.Fatalf("info = %+v", info)
	}
}

// TestClusterHostileKeysReplicateExactly: keys containing newlines,
// CRs, or nothing at all must land byte-identically on every replica
// (forwarding uses the JSON document form, not newline framing), so
// the union estimate counts each literal key once. Regression test
// for replica asymmetry under newline re-framing.
func TestClusterHostileKeysReplicateExactly(t *testing.T) {
	nodes := startCluster(t, 3, 3, store.Window{}) // R=N: every node owns every key
	hostile := []string{"a\nb", "x\r", "", "plain", "tab\tkey", "nul\x00byte"}
	doc, _ := json.Marshal(map[string]any{"store": "h/m", "keys": hostile})
	resp, err := http.Post(nodes[0].url+"/v1/cluster/ingest", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hostile-key ingest: HTTP %d: %s", resp.StatusCode, out)
	}
	// With R=N every node's LOCAL store saw the identical key set; the
	// sketches are seed-shared and deterministic, so their snapshots
	// must be byte-identical — the strongest replica-symmetry check.
	want, err := nodes[0].srv.Store().Snapshot("h/m", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nodes); i++ {
		got, err := nodes[i].srv.Store().Snapshot("h/m", nil)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("node %d replica diverged from node 0 on hostile keys", i)
		}
	}
	est, _, status := clusterEstimate(t, nodes[1].url, "h/m")
	if status != http.StatusOK {
		t.Fatalf("estimate: HTTP %d", status)
	}
	// 6 distinct literal keys, tiny count → the sketch is exact here.
	if math.Abs(est.AllTime-6) > 1 {
		t.Fatalf("hostile keys estimate %.1f, want 6", est.AllTime)
	}
}

// TestClusterEmptyIngestCreatesEverywhere: an empty body creates the
// store on every member — the single-node create-on-empty contract,
// cluster-wide — so later estimates answer 0, not 404, from any node.
func TestClusterEmptyIngestCreatesEverywhere(t *testing.T) {
	nodes := startCluster(t, 2, 1, store.Window{})
	for i, body := range []struct{ ct, data string }{
		{"text/plain", ""},
		{"application/json", ""},
	} {
		name := fmt.Sprintf("empty%d/m", i)
		resp, err := http.Post(nodes[0].url+"/v1/cluster/ingest?store="+name, body.ct,
			strings.NewReader(body.data))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("empty %s body: HTTP %d: %s", body.ct, resp.StatusCode, out)
		}
		for _, nd := range nodes {
			est, _, status := clusterEstimate(t, nd.url, name)
			if status != http.StatusOK || est.AllTime != 0 {
				t.Fatalf("%s after empty %s ingest: HTTP %d, estimate %.1f (want 200, 0)",
					name, body.ct, status, est.AllTime)
			}
			if _, err := nd.srv.Store().Estimate(name); err != nil {
				t.Fatalf("store %s missing on %s after empty ingest: %v", name, nd.url, err)
			}
		}
	}
}

// TestClusterEstimateErrors: unknown stores 404 cluster-wide, invalid
// names 400.
func TestClusterEstimateErrors(t *testing.T) {
	nodes := startCluster(t, 2, 1, store.Window{})
	if _, _, status := clusterEstimate(t, nodes[0].url, "never/written"); status != http.StatusNotFound {
		t.Fatalf("unknown store: HTTP %d, want 404", status)
	}
	if _, _, status := clusterEstimate(t, nodes[0].url, ""); status != http.StatusBadRequest {
		t.Fatalf("empty store name: HTTP %d, want 400", status)
	}
}

// TestConfigValidation: New rejects self-not-in-peers and replication
// outside [1, len(peers)].
func TestConfigValidation(t *testing.T) {
	st, err := store.New(store.Config{
		Kind:    knw.KindF0,
		Options: []knw.Option{knw.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{"http://a:1", "http://b:1"}
	cases := []cluster.Config{
		{Self: "http://c:1", Peers: peers, Replication: 1}, // self missing
		{Self: "http://a:1", Peers: peers, Replication: 3}, // R > peers
		{Self: "http://a:1", Peers: peers, Replication: -1},
		{Self: "http://a:1", Peers: nil, Replication: 1}, // no peers
	}
	for i, cfg := range cases {
		if _, err := cluster.New(cfg, st, nil); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := cluster.New(cluster.Config{Self: "http://a:1", Peers: peers, Replication: 2}, st, nil); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// startGossipCluster is startCluster with anti-entropy gossip enabled.
// The httptest harness never calls Server.Run (which owns the loop in
// production), so the loop is started and stopped here.
func startGossipCluster(t *testing.T, n, replication int, interval time.Duration) []*node {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i := range nodes {
		srv, err := service.New(service.Config{
			Store: store.Config{
				Kind:    knw.KindConcurrentF0,
				Options: []knw.Option{knw.WithEpsilon(testEps), knw.WithSeed(1)},
			},
			Cluster: &cluster.Config{
				Self:           peers[i],
				Peers:          peers,
				Replication:    replication,
				GossipInterval: interval,
				Backoff:        5 * time.Millisecond,
				Timeout:        5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &httptest.Server{
			Listener: lns[i],
			Config:   &http.Server{Handler: srv.Handler()},
		}
		hs.Start()
		srv.Cluster().StartGossip()
		nodes[i] = &node{srv: srv, hs: hs, url: peers[i]}
		t.Cleanup(func() { srv.Cluster().StopGossip(); hs.Close() })
	}
	return nodes
}

// TestGossipEndToEnd drives the full service stack: routed ingest on
// one node, background anti-entropy, then O(1) merged-view estimates
// from every node's plain /v1/estimate — no scatter-gather on the read
// path — plus the mode switch on /v1/cluster/estimate.
func TestGossipEndToEnd(t *testing.T) {
	const (
		totalKeys = 60_000
		interval  = 50 * time.Millisecond
	)
	nodes := startGossipCluster(t, 3, 1, interval)
	if status, out := ingestLines(t, nodes[0].url, "acme/users", genKeys("user", 0, totalKeys)); status != http.StatusOK {
		t.Fatalf("cluster ingest: HTTP %d: %s", status, out)
	}

	// Every node's /v1/estimate converges to the cluster-wide count via
	// background gossip alone.
	type localEst struct {
		AllTime          float64 `json:"all_time"`
		Mode             string  `json:"mode"`
		Replicas         int     `json:"replicas"`
		StalenessSeconds float64 `json:"staleness_seconds"`
	}
	getLocal := func(nd *node, query string) (localEst, http.Header, int) {
		t.Helper()
		resp, err := http.Get(nd.url + "/v1/estimate?store=acme/users" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var est localEst
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &est); err != nil {
				t.Fatalf("decoding: %v (%s)", err, body)
			}
		}
		return est, resp.Header, resp.StatusCode
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < len(nodes); {
		est, hdr, status := getLocal(nodes[i], "")
		if status == http.StatusOK && math.Abs(est.AllTime-totalKeys)/totalKeys <= testEps {
			if est.Mode != "local" {
				t.Fatalf("node %d /v1/estimate mode = %q, want local", i, est.Mode)
			}
			if hdr.Get("X-KNW-Staleness") == "" {
				t.Fatalf("node %d merged estimate missing the staleness header", i)
			}
			i++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never converged: HTTP %d, %.0f vs %d", i, status, est.AllTime, totalKeys)
		}
		time.Sleep(interval / 2)
	}

	// The staleness each node reports stays bounded by ~2x the interval
	// while the loop runs (generous slack for a loaded CI box).
	est, _, _ := getLocal(nodes[1], "")
	if est.StalenessSeconds > 20*interval.Seconds() {
		t.Fatalf("staleness %.3fs way over the gossip interval %v", est.StalenessSeconds, interval)
	}

	// view=shard bypasses the merged view: with 3 nodes and R=1 each
	// shard holds roughly a third of the keys.
	var shard struct {
		AllTime float64 `json:"all_time"`
	}
	resp, err := http.Get(nodes[0].url + "/v1/estimate?store=acme/users&view=shard")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &shard); err != nil {
		t.Fatal(err)
	}
	if shard.AllTime > 0.6*totalKeys || shard.AllTime == 0 {
		t.Fatalf("view=shard estimate %.0f does not look like one shard of %d", shard.AllTime, totalKeys)
	}

	// /v1/cluster/estimate defaults to the merged view when gossip is
	// on; mode=gather still scatter-gathers the same answer.
	for _, q := range []string{"", "&mode=local", "&mode=gather"} {
		resp, err := http.Get(nodes[2].url + "/v1/cluster/estimate?store=acme/users" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %q: HTTP %d: %s", q, resp.StatusCode, body)
		}
		if rel := math.Abs(doc["all_time"].(float64)-totalKeys) / totalKeys; rel > testEps {
			t.Fatalf("mode %q: estimate %.0f vs %d", q, doc["all_time"].(float64), totalKeys)
		}
		wantLocal := q != "&mode=gather"
		if isLocal := doc["mode"] == "local"; isLocal != wantLocal {
			t.Fatalf("mode %q answered local=%v", q, isLocal)
		}
	}
}

// TestEstimateMergedViewNeedsGossip: without gossip, /v1/estimate stays
// the shard-local answer and view=merged is a 400.
func TestEstimateMergedViewNeedsGossip(t *testing.T) {
	nodes := startCluster(t, 2, 1, store.Window{})
	if status, out := ingestLines(t, nodes[0].url, "g/off", genKeys("k", 0, 100)); status != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", status, out)
	}
	resp, err := http.Get(nodes[0].url + "/v1/estimate?store=g/off&view=merged")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("view=merged without gossip: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(nodes[0].url + "/v1/estimate?store=g/off")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if _, merged := doc["mode"]; merged {
		t.Fatalf("gossip-off /v1/estimate answered the merged view: %s", body)
	}
}
