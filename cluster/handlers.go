package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/frame"
	"repro/internal/httpx"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/store"
)

// HTTP handlers for the /v1/cluster/... routes. The service layer
// mounts them (service.Config.Cluster) so they ride the same mux,
// metrics wrapper, and request accounting as the single-node API;
// body limits and error mappings come from internal/httpx, shared
// with the leaf ingest the router forwards to.

// routeBatch is the scan granularity: keys per route() call.
const routeBatch = 1024

// ingestDoc is the JSON body form of POST /v1/cluster/ingest — the
// same {"store","keys"} document stream POST /v1/ingest accepts, so
// clients switch between single-node and routed ingest by path alone.
// (Peer forwarding itself travels as binary frames; see session.send.)
type ingestDoc struct {
	Store string   `json:"store"`
	Keys  []string `json:"keys"`
}

// HandleIngest is POST /v1/cluster/ingest: body formats identical to
// the single-node ingest (newline keys with ?store=, a stream of JSON
// documents, or a binary frame of pre-hashed keys), but every key is
// routed to its R ring owners instead of landing only here. Empty
// bodies create the store on every member, mirroring the single-node
// create-on-empty contract.
//
// Status: 200 when every key reached at least one owner (including
// partial successes that lost fewer than R peers, flagged by
// X-KNW-Partial and "partial": true); 502 once ≥ R peers failed, since
// some keys may then have lost every owner. Mid-stream body failures
// report the progress fields alongside the error — earlier batches
// were already delivered, and re-sends are idempotent.
func (rt *Router) HandleIngest(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	switch {
	case httpx.IsFrame(ct):
		rt.ingestFrames(w, r)
	case httpx.IsJSON(ct):
		rt.ingestJSON(w, r)
	default:
		rt.ingestLines(w, r)
	}
}

// ingestFrames routes a binary frame body (internal/frame): docs carry
// pre-hashed keys, so routing skips the hash entirely and places each
// key by its client-computed value — which matches the string codecs'
// placement because client and cluster share the sketch seed. Docs
// with an empty name target ?store=; a header-only frame creates the
// ?store= target on every member.
func (rt *Router) ingestFrames(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	act := trace.FromContext(r.Context())
	fr := frame.NewReader(http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes), make([]byte, 64<<10))
	if err := fr.ReadHeader(); err != nil {
		httpx.Fail(w, httpx.ReadStatus(err), err)
		return
	}
	var order []*session
	sessions := map[string]*session{}
	batch := make([]uint64, routeBatch)
	for {
		nameView, _, err := fr.NextDoc()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			rt.failIngest(w, httpx.ReadStatus(err), err, order...)
			return
		}
		target := name
		if len(nameView) > 0 {
			target = string(nameView)
		}
		if err := store.ValidateName(target); err != nil {
			rt.failIngest(w, http.StatusBadRequest, err, order...)
			return
		}
		s := sessions[target]
		if s == nil {
			s = rt.newSession(target, act)
			sessions[target] = s
			order = append(order, s)
		}
		for {
			n, err := fr.Keys(batch)
			if n > 0 {
				s.routeHashed(batch[:n])
			}
			if err != nil {
				rt.failIngest(w, httpx.ReadStatus(err), err, order...)
				return
			}
			if n == 0 {
				break
			}
		}
	}
	if len(order) == 0 {
		// Header-only frame: create the ?store= target everywhere,
		// exactly like the zero-document JSON stream.
		if err := store.ValidateName(name); err != nil {
			httpx.Fail(w, http.StatusBadRequest, err)
			return
		}
		s := rt.newSession(name, act)
		s.createAll()
		rt.finishIngest(w, s)
		return
	}
	rt.finishIngest(w, order...)
}

func (rt *Router) ingestLines(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	if err := store.ValidateName(name); err != nil {
		httpx.Fail(w, http.StatusBadRequest, err)
		return
	}
	s := rt.newSession(name, trace.FromContext(r.Context()))
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes))
	sc.Buffer(make([]byte, 64<<10), httpx.MaxKeyBytes)
	batch := make([]string, 0, routeBatch)
	for sc.Scan() {
		line := sc.Bytes()
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		batch = append(batch, string(line))
		if len(batch) == routeBatch {
			s.route(batch)
			batch = batch[:0]
		}
	}
	if err := sc.Err(); err != nil {
		// Route what arrived before the failure (re-sends are idempotent
		// for distinct counting), then report the error with the
		// delivery counts so the client knows this was not a no-op.
		s.route(batch)
		rt.failIngest(w, httpx.ReadStatus(err), err, s)
		return
	}
	s.route(batch)
	if s.received == 0 {
		s.createAll()
	}
	rt.finishIngest(w, s)
}

func (rt *Router) ingestJSON(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	act := trace.FromContext(r.Context())
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes))
	var order []*session
	sessions := map[string]*session{}
	for {
		var doc ingestDoc
		err := dec.Decode(&doc)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			rt.failIngest(w, httpx.ReadStatus(err), err, order...)
			return
		}
		target := name
		if doc.Store != "" {
			target = doc.Store
		}
		if err := store.ValidateName(target); err != nil {
			rt.failIngest(w, http.StatusBadRequest, err, order...)
			return
		}
		s := sessions[target]
		if s == nil {
			s = rt.newSession(target, act)
			sessions[target] = s
			order = append(order, s)
		}
		s.route(doc.Keys)
	}
	if len(order) == 0 {
		// Zero documents: create the ?store= target everywhere, exactly
		// like the single-node JSON path (and a 400 on a bad name).
		if err := store.ValidateName(name); err != nil {
			httpx.Fail(w, http.StatusBadRequest, err)
			return
		}
		s := rt.newSession(name, act)
		s.createAll()
		rt.finishIngest(w, s)
		return
	}
	rt.finishIngest(w, order...)
}

// finishIngest flushes every session and writes the success response:
// the single session's result, or the aggregate for multi-store
// bodies.
func (rt *Router) finishIngest(w http.ResponseWriter, sessions ...*session) {
	res, failed, worst := rt.settle(sessions)
	status := http.StatusOK
	if worst >= res.Replication {
		// A key's owners are R distinct members, so only ≥ R failures
		// within one session can have dropped a key on every replica.
		// (Mid-rebalance the union routing only widens owner sets, so
		// the committed R stays the conservative loss bound.)
		status = http.StatusBadGateway
	}
	if len(failed) > 0 {
		w.Header().Set(PartialHeader, strings.Join(failed, ","))
	}
	rt.ringHeaders(w)
	httpx.Reply(w, status, res)
}

// failIngest flushes the sessions and reports a request failure along
// with the partial-progress counts (the single-node failIngest
// contract, cluster-shaped).
func (rt *Router) failIngest(w http.ResponseWriter, status int, err error, sessions ...*session) {
	res, failed, _ := rt.settle(sessions)
	if len(failed) > 0 {
		w.Header().Set(PartialHeader, strings.Join(failed, ","))
	}
	rt.ringHeaders(w)
	httpx.Reply(w, status, map[string]any{
		"error":       err.Error(),
		"store":       res.Store,
		"received":    res.Received,
		"replication": res.Replication,
		"local":       res.Local,
		"forwarded":   res.Forwarded,
		"lost":        res.Lost,
		"partial":     res.Partial,
	})
}

// settle finishes every session and folds their results: the single
// session's own result, or the aggregate across stores. worst is the
// largest per-session failed-peer count — the number the ≥ R
// key-loss check applies to, since owner sets are per key.
func (rt *Router) settle(sessions []*session) (ingestResult, []string, int) {
	switch len(sessions) {
	case 0:
		return ingestResult{Replication: rt.view().replication}, nil, 0
	case 1:
		sessions[0].finish()
		res, failed := sessions[0].result()
		return res, failed, len(failed)
	}
	agg := ingestResult{Replication: rt.view().replication, Store: "(multiple)"}
	worst := 0
	failedSet := map[string]bool{}
	for _, s := range sessions {
		s.finish()
		res, failed := s.result()
		agg.Received += res.Received
		agg.Local += res.Local
		agg.Partial = agg.Partial || res.Partial
		for _, peer := range failed {
			failedSet[peer] = true
		}
		if len(failed) > worst {
			worst = len(failed)
		}
	}
	failed := make([]string, 0, len(failedSet))
	for peer := range failedSet {
		failed = append(failed, peer)
	}
	sort.Strings(failed)
	return agg, failed, worst
}

// HandleEstimate is GET /v1/cluster/estimate. Two read modes:
//
//   - mode=gather: the scatter-gather union estimate. Partial
//     assemblies answer 200 with X-KNW-Partial; a store unknown
//     everywhere answers 404; a gather that produced nothing at all
//     (every node unreachable and no local data) answers 503.
//   - mode=local: the O(1) merged-view estimate over this node's own
//     sketch plus its gossip replicas, with the X-KNW-Staleness
//     header. Requires gossip replication (400 otherwise).
//
// The default is local when gossip is enabled (reads stop paying
// fan-out the moment replication is on) and gather otherwise.
func (rt *Router) HandleEstimate(w http.ResponseWriter, r *http.Request) {
	switch mode := r.URL.Query().Get("mode"); {
	case mode == "local" || (mode == "" && rt.gossip != nil):
		rt.serveLocalEstimate(w, r)
		return
	case mode != "" && mode != "gather":
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("unknown estimate mode %q (local or gather)", mode))
		return
	}
	est, err := rt.mergedEstimate(r.URL.Query().Get("store"), trace.FromContext(r.Context()))
	if est.Partial {
		w.Header().Set(PartialHeader, strings.Join(est.FailedPeers, ","))
	}
	rt.ringHeaders(w)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			httpx.Fail(w, http.StatusNotFound, err)
		case est.Partial:
			httpx.Fail(w, http.StatusServiceUnavailable, err)
		default:
			httpx.Fail(w, http.StatusBadRequest, err)
		}
		return
	}
	httpx.Reply(w, http.StatusOK, est)
}

// serveLocalEstimate answers an estimate from the gossip merged view.
func (rt *Router) serveLocalEstimate(w http.ResponseWriter, r *http.Request) {
	est, err := rt.LocalEstimate(r.URL.Query().Get("store"))
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			httpx.Fail(w, http.StatusNotFound, err)
		default:
			httpx.Fail(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set(StalenessHeader, strconv.FormatFloat(est.StalenessSeconds, 'f', 3, 64))
	rt.ringHeaders(w)
	httpx.Reply(w, http.StatusOK, est)
}

// HandleInfo is GET /v1/cluster/info: the node's membership view, for
// operators and the examples/cluster demo.
func (rt *Router) HandleInfo(w http.ResponseWriter, _ *http.Request) {
	v := rt.view()
	out := map[string]any{
		"self":        rt.cfg.Self,
		"version":     version.Version,
		"members":     v.cur.members,
		"replication": v.replication,
		"vnodes":      rt.vnodes,
		"gossip":      rt.gossip != nil,
		"ring_epoch":  v.epoch,
	}
	if v.rebalancing() {
		out["pending_epoch"] = v.pendingEpoch
		out["rebalancing"] = true
		out["union_members"] = v.members
	}
	if health := rt.PeerHealth(); len(health) > 0 {
		out["peer_health"] = health
	}
	if rt.gossip != nil {
		peers, replicas := rt.gossip.replicas.Stats()
		out["gossip_interval"] = rt.cfg.GossipInterval.String()
		out["gossip_peers"] = peers
		out["gossip_replicas"] = replicas
		out["staleness_seconds"] = rt.Staleness().Seconds()
	}
	rt.ringHeaders(w)
	httpx.Reply(w, http.StatusOK, out)
}
