// Package cluster turns N knwd processes into one logical sketch
// service. It is the scale-out layer the paper's mergeability makes
// nearly free: a KNW envelope is a tiny lossless summary of a key
// stream, so any node can ingest any slice of the keyspace and a union
// of envelopes is exactly as accurate as a single sketch over the whole
// stream.
//
// The design is symmetric and coordinator-free:
//
//   - Membership is a versioned ring descriptor (descriptor.go): an
//     epoch-numbered, canonically-encoded member list every node
//     holds. A consistent-hash ring over the sorted list — vnodes
//     points per member — assigns each ingested key to R owner nodes
//     (the replication factor). Every node computes identical
//     ownership from the descriptor alone; there is no metadata
//     service. The boot descriptor (epoch 1) comes from the -peers
//     flag, and joins/leaves advance it through the two-phase cutover
//     in membership.go, with sketch handoff (handoff.go) moving
//     re-owned data as whole envelopes — O(sketch), not O(keys).
//   - Writes route. POST /v1/cluster/ingest hashes each key once
//     through the store's pinned sketch hash, places mix64(hash) on
//     the ring, applies locally owned keys directly to the node's own
//     store, and fans the rest out to owner peers as binary frames of
//     pre-hashed keys (internal/frame) over the existing single-node
//     POST /v1/ingest API, with per-peer buffered batches and
//     retry/backoff. Plain /v1/ingest never re-forwards, so forwarding
//     can never loop — and since every replica ingests the same
//     uint64s, replication is byte-identical no matter which codec the
//     client used.
//   - Reads gather. GET /v1/cluster/estimate scatter-gathers snapshot
//     envelopes from every peer, opens them with knw.Open, unions them
//     into the local contribution via knw.MergeInto, and reports the
//     merged estimate. Keys replicated on several nodes count once —
//     union semantics — so replication costs no accuracy.
//   - Partial failure degrades, never errors. An ingest that loses
//     fewer than R peers still lands every key on at least one owner
//     (owner sets are R distinct members) and answers 200. A gather
//     that loses peers serves the union of what answered — at minimum
//     the stale local view — with the X-KNW-Partial header naming the
//     unreachable peers.
//
// All peers must share sketch kind, options, and seed (knwd's -seed
// flag): mergeability is what the whole layer stands on, and a
// misconfigured peer's envelopes are rejected as 409s by the
// compatibility check rather than silently corrupting the union.
package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/store"
)

// PartialHeader is set on cluster responses assembled without every
// peer: the value is the comma-separated list of unreachable peers.
const PartialHeader = "X-KNW-Partial"

// Config configures a cluster Router.
type Config struct {
	// Self is this node's own base URL exactly as it appears in Peers.
	Self string
	// Peers is the full static member list (including Self), as base
	// URLs ("http://10.0.0.1:7070"). Order does not matter: the ring is
	// built over the sorted list, so all nodes agree.
	Peers []string
	// Replication is the number of owner nodes per key, in
	// [1, len(Peers)]. Default 1 (partitioning without redundancy).
	Replication int
	// Vnodes is the number of ring points per member (default 64).
	Vnodes int
	// FlushKeys is the per-peer forward buffer threshold: a peer's
	// pending batch is flushed once it holds this many keys (default
	// 4096, matching the single-node ingest batch).
	FlushKeys int
	// Attempts is how many times a forward batch is tried before the
	// peer is declared failed for the request (default 3).
	Attempts int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Timeout bounds each forward or gather request (default 5s).
	// Ignored when Client is set.
	Timeout time.Duration
	// Client overrides the HTTP client used for peer traffic.
	Client *http.Client
	// GossipInterval enables anti-entropy replication (gossip.go): every
	// interval the node syncs replica envelopes from random peers and
	// serves merged-view estimates locally. Zero disables gossip.
	GossipInterval time.Duration
	// GossipFanout is how many random peers each round syncs (0 = all).
	GossipFanout int
	// HandoffTimeout bounds how long a membership change waits for old
	// owners to confirm their handoff before committing the new ring
	// epoch anyway (default 30s). With replication ≥ 2 a skipped
	// (unreachable) member's keys survive on the other replicas.
	HandoffTimeout time.Duration
	// HandoffPoll is the coordinator's handoff-status poll cadence
	// during the prepare window (default 100ms).
	HandoffPoll time.Duration
	// Log receives structured operational logs. Nil discards them. The
	// service layer passes its own logger down so cluster events share
	// the daemon's -log-level/-log-format.
	Log *slog.Logger
	// Tracer, when non-nil, traces peer traffic: forwards, gathers, and
	// gossip syncs carry the X-KNW-Trace header so remote spans join
	// the caller's trace. The service layer passes its tracer down.
	Tracer *trace.Tracer
	// Stages, when non-nil, receives the cluster's share of the
	// knwd_stage_seconds histogram (peer_forward, gossip_pull,
	// gossip_apply). The service layer owns the vec.
	Stages *metrics.HistogramVec
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replication == 0 {
		out.Replication = 1
	}
	if out.Vnodes == 0 {
		out.Vnodes = defaultVnodes
	}
	if out.FlushKeys == 0 {
		out.FlushKeys = 4096
	}
	if out.Attempts == 0 {
		out.Attempts = 3
	}
	if out.Backoff == 0 {
		out.Backoff = 50 * time.Millisecond
	}
	if out.Timeout == 0 {
		out.Timeout = 5 * time.Second
	}
	if out.HandoffTimeout == 0 {
		out.HandoffTimeout = 30 * time.Second
	}
	if out.HandoffPoll == 0 {
		out.HandoffPoll = 100 * time.Millisecond
	}
	if out.Log == nil {
		out.Log = trace.DiscardLogger()
	}
	return out
}

// Router is one node's view of the cluster: the versioned ring, the
// local store, and the HTTP plumbing for forwarding, gathering, and
// membership changes.
type Router struct {
	cfg    Config
	local  *store.Store
	vnodes int // normalized Config.Vnodes
	client *http.Client
	log    *slog.Logger
	tracer *trace.Tracer // may be nil (library embeddings)
	gossip *gossiper     // nil when Config.GossipInterval is zero
	met    routerMetrics

	// live is the routing snapshot handlers load once per request;
	// memMu guards the descriptor state it is rebuilt from, changeMu
	// serializes local coordinators (Join/Leave), and ho is the current
	// transition's handoff engine.
	live        atomic.Pointer[ringView]
	memMu       sync.Mutex
	changeMu    sync.Mutex
	cur         *RingDescriptor
	curRing     *ring
	pending     *RingDescriptor
	pendingRing *ring
	ho          *handoff

	// now/sleepFn are injectable for the fake-clock cutover tests.
	now     func() time.Time
	sleepFn func(time.Duration)
}

// sleep pauses via the injected clock when tests set one.
func (rt *Router) sleep(d time.Duration) {
	if rt.sleepFn != nil {
		rt.sleepFn(d)
		return
	}
	time.Sleep(d)
}

// routerMetrics are the cluster-layer instruments, labeled by peer URL
// where a peer is involved. All handles are nil-safe.
type routerMetrics struct {
	forwardKeys    *metrics.CounterVec // peer
	forwardErrors  *metrics.CounterVec // peer
	forwardRetries *metrics.CounterVec // peer
	forwardSeconds *metrics.HistogramVec
	gatherSeconds  *metrics.Histogram
	gatherPartial  *metrics.Counter
	partialServed  *metrics.Counter
	routedKeys     *metrics.Counter
	localKeys      *metrics.Counter

	// Handoff progress (membership transitions).
	handoffStores  *metrics.Counter
	handoffKeys    *metrics.Counter
	handoffBytes   *metrics.Counter
	handoffRetries *metrics.Counter
	handoffErrors  *metrics.Counter
	handoffApplied *metrics.Counter
	handoffSeconds *metrics.Histogram

	// Cached knwd_stage_seconds series (Config.Stages; nil without a
	// stage vec).
	stageForward      *metrics.Histogram // successful forward batches
	stagePull         *metrics.Histogram // gossip pull HTTP round-trips
	stageApply        *metrics.Histogram // gossip envelope validation + install
	stageHandoffPush  *metrics.Histogram // successful handoff pushes
	stageHandoffApply *metrics.Histogram // inbound handoff merge
}

// New validates the configuration, builds the ring, and returns the
// node's Router. st is the node's own store — the same registry the
// single-node API serves — and reg (which may be nil) receives the
// cluster instruments.
func New(cfg Config, st *store.Store, reg *metrics.Registry) (*Router, error) {
	if st == nil {
		return nil, fmt.Errorf("cluster: nil store")
	}
	cfg = cfg.withDefaults()
	r, err := newRing(cfg.Peers, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if r.index(cfg.Self) < 0 {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	if cfg.Replication < 1 || cfg.Replication > len(r.members) {
		return nil, fmt.Errorf("cluster: replication %d outside [1, %d]", cfg.Replication, len(r.members))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        4 * len(r.members),
				MaxIdleConnsPerHost: 8,
			},
		}
	}
	vnodes := cfg.Vnodes
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	rt := &Router{cfg: cfg, local: st, vnodes: vnodes, client: client,
		log: cfg.Log, tracer: cfg.Tracer, now: time.Now}
	rt.initMembership(r)
	rt.initMetrics(reg)
	rt.ringEpochGauges(reg)
	if cfg.GossipInterval > 0 {
		rt.gossip = newGossiper(rt, reg)
	}
	return rt, nil
}

// Close cancels any in-flight handoff pushes and waits for them. The
// service layer calls it on shutdown after draining.
func (rt *Router) Close() { rt.stopHandoff() }

func (rt *Router) initMetrics(reg *metrics.Registry) {
	rt.met = routerMetrics{
		forwardKeys: reg.NewCounterVec("knwd_cluster_forward_keys_total",
			"Keys delivered to peer nodes by the ingest router.", "peer"),
		forwardErrors: reg.NewCounterVec("knwd_cluster_forward_errors_total",
			"Forward batches abandoned after exhausting retries.", "peer"),
		forwardRetries: reg.NewCounterVec("knwd_cluster_forward_retries_total",
			"Forward batch retry attempts.", "peer"),
		forwardSeconds: reg.NewHistogramVec("knwd_cluster_forward_seconds",
			"Latency of forward batches to peers (successful attempts).",
			metrics.DefBuckets, "peer"),
		gatherSeconds: reg.NewHistogram("knwd_cluster_gather_seconds",
			"Wall time of full scatter-gather estimate assemblies.",
			metrics.DefBuckets),
		gatherPartial: reg.NewCounter("knwd_cluster_gather_partial_total",
			"Scatter-gather estimates served without every peer."),
		partialServed: reg.NewCounter("knwd_cluster_partial_estimates_total",
			"Cluster estimates answered 200 from a partial gather (the stale-local fallback)."),
		routedKeys: reg.NewCounter("knwd_cluster_routed_keys_total",
			"Keys accepted by POST /v1/cluster/ingest."),
		localKeys: reg.NewCounter("knwd_cluster_local_keys_total",
			"Routed key-replicas owned by this node itself."),
		handoffStores: reg.NewCounter("knwd_handoff_stores_total",
			"Store envelopes shipped to new owners by the handoff engine."),
		handoffKeys: reg.NewCounter("knwd_handoff_keys_total",
			"Estimated distinct keys covered by shipped handoff envelopes."),
		handoffBytes: reg.NewCounter("knwd_handoff_bytes_total",
			"Bytes of handoff streams delivered to new owners."),
		handoffRetries: reg.NewCounter("knwd_handoff_retries_total",
			"Handoff push retry attempts."),
		handoffErrors: reg.NewCounter("knwd_handoff_errors_total",
			"Handoff push attempts that failed."),
		handoffApplied: reg.NewCounter("knwd_handoff_applied_total",
			"Inbound handoff envelopes merged into the local store."),
		handoffSeconds: reg.NewHistogram("knwd_handoff_seconds",
			"Wall time of successful handoff pushes.", metrics.DefBuckets),
	}
	if rt.cfg.Stages != nil {
		rt.met.stageForward = rt.cfg.Stages.With("peer_forward")
		rt.met.stagePull = rt.cfg.Stages.With("gossip_pull")
		rt.met.stageApply = rt.cfg.Stages.With("gossip_apply")
		rt.met.stageHandoffPush = rt.cfg.Stages.With("handoff_push")
		rt.met.stageHandoffApply = rt.cfg.Stages.With("handoff_apply")
	}
}

// Members returns the committed ring's (sorted) member list.
func (rt *Router) Members() []string {
	return append([]string(nil), rt.view().cur.members...)
}

// Replication returns the committed ring's replication factor.
func (rt *Router) Replication() int { return rt.view().replication }

// Self returns this node's member URL.
func (rt *Router) Self() string { return rt.cfg.Self }
