package cluster

import (
	"fmt"
	"testing"
)

func urls(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:7070", i+1)
	}
	return out
}

// TestRingDeterminism: the ring depends only on the member set, not
// the order the peer list was written in — the property that lets
// every node compute ownership locally.
func TestRingDeterminism(t *testing.T) {
	members := urls(5)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1]}
	a, err := newRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 []int
	for i := 0; i < 10_000; i++ {
		h := keyHash(fmt.Sprintf("user-%d", i))
		buf1 = a.owners(h, 2, buf1)
		buf2 = b.owners(h, 2, buf2)
		if len(buf1) != len(buf2) {
			t.Fatalf("owner counts differ at key %d", i)
		}
		for j := range buf1 {
			if a.members[buf1[j]] != b.members[buf2[j]] {
				t.Fatalf("key %d: rings disagree on owner %d: %s vs %s",
					i, j, a.members[buf1[j]], b.members[buf2[j]])
			}
		}
	}
}

// TestRingOwnersDistinct: a key's R owners are R distinct members for
// every R up to the cluster size — the invariant behind "fewer than R
// failed peers cannot lose a key".
func TestRingOwnersDistinct(t *testing.T) {
	r, err := newRing(urls(4), 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	for n := 1; n <= 6; n++ { // n > members must cap, not loop forever
		want := min(n, 4)
		for i := 0; i < 2000; i++ {
			buf = r.owners(keyHash(fmt.Sprintf("k-%d", i)), n, buf)
			if len(buf) != want {
				t.Fatalf("owners(R=%d) returned %d members, want %d", n, len(buf), want)
			}
			seen := map[int]bool{}
			for _, m := range buf {
				if seen[m] {
					t.Fatalf("owners(R=%d) repeated member %d for key %d", n, m, i)
				}
				seen[m] = true
			}
		}
	}
}

// TestRingBalance: with vnodes smoothing, primary ownership of a
// large keyspace should be within a factor ~2 of fair for every node.
func TestRingBalance(t *testing.T) {
	const members, keys = 5, 50_000
	r, err := newRing(urls(members), defaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, members)
	var buf []int
	for i := 0; i < keys; i++ {
		buf = r.owners(keyHash(fmt.Sprintf("user-%d", i)), 1, buf)
		counts[buf[0]]++
	}
	fair := float64(keys) / members
	for m, c := range counts {
		if float64(c) < fair/2 || float64(c) > fair*2 {
			t.Errorf("member %d owns %d of %d keys; fair share %.0f (outside [0.5x, 2x])",
				m, c, keys, fair)
		}
	}
}

// TestRingValidation: duplicate members and empty lists are rejected;
// unknown self is caught by New.
func TestRingValidation(t *testing.T) {
	if _, err := newRing(nil, 8); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := newRing([]string{"http://a", "http://a"}, 8); err == nil {
		t.Error("duplicate member accepted")
	}
	r, err := newRing(urls(3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.index("http://nope"); got != -1 {
		t.Errorf("index(unknown) = %d, want -1", got)
	}
	if got := r.index(urls(3)[1]); got < 0 {
		t.Errorf("index(member) = %d, want >= 0", got)
	}
}
