package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	knw "repro"
	"repro/internal/metrics"
	"repro/store"
)

// gnode is one in-process gossip member: a store, its router, and the
// gossip + estimate routes on a real loopback listener. partitioned
// simulates a network partition: while set, every request is refused
// with a 503.
type gnode struct {
	st          *store.Store
	rt          *Router
	reg         *metrics.Registry
	url         string
	partitioned atomic.Bool
}

// startGossipNodes brings up n nodes with gossip enabled, all driven
// manually through GossipRound (no background loop).
func startGossipNodes(t *testing.T, n int, interval time.Duration) []*gnode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*gnode, n)
	for i := range nodes {
		st, err := store.New(store.Config{
			Kind:    knw.KindConcurrentF0,
			Options: []knw.Option{knw.WithEpsilon(testGossipEps), knw.WithSeed(1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		rt, err := New(Config{
			Self:           peers[i],
			Peers:          peers,
			Replication:    1,
			GossipInterval: interval,
			Timeout:        5 * time.Second,
		}, st, reg)
		if err != nil {
			t.Fatal(err)
		}
		nd := &gnode{st: st, rt: rt, reg: reg, url: peers[i]}
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/gossip/digest", rt.HandleGossipDigest)
		mux.HandleFunc("/v1/gossip/pull", rt.HandleGossipPull)
		mux.HandleFunc("/v1/cluster/estimate", rt.HandleEstimate)
		// Minimal /v1/snapshot so mode=gather can scatter (the real
		// route lives in service, which this package cannot import).
		mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
			env, err := st.Snapshot(r.URL.Query().Get("store"), nil)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Write(env)
		})
		hs := &httptest.Server{
			Listener: lns[i],
			Config: &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if nd.partitioned.Load() {
					http.Error(w, "partitioned", http.StatusServiceUnavailable)
					return
				}
				mux.ServeHTTP(w, r)
			})},
		}
		hs.Start()
		t.Cleanup(hs.Close)
		nodes[i] = nd
	}
	return nodes
}

const testGossipEps = 0.05

func roundAll(nodes []*gnode) {
	for _, nd := range nodes {
		nd.rt.GossipRound()
	}
}

func assertWithin(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Fatalf("%s = %.1f, want %.1f ± %.0f%%", what, got, want, tol*100)
	}
}

// TestGossipConvergenceAndDeltaBytes: after one round every node's
// merged view covers keys it never ingested, and once converged the
// steady-state rounds ship a sliver of the first full transfer.
func TestGossipConvergenceAndDeltaBytes(t *testing.T) {
	nodes := startGossipNodes(t, 3, time.Second)
	name := "acme/users"
	const perNode = 10_000
	for i, nd := range nodes {
		if err := nd.st.Ingest(name, genKeysRange(fmt.Sprintf("n%d", i), 0, perNode)); err != nil {
			t.Fatal(err)
		}
	}

	// One round each: every node pulls every peer directly, so the
	// merged view converges in a single sweep.
	roundAll(nodes)
	truth := float64(len(nodes) * perNode)
	for i, nd := range nodes {
		est, err := nd.rt.LocalEstimate(name)
		if err != nil {
			t.Fatalf("node %d local estimate: %v", i, err)
		}
		if !est.LocalFound || est.Replicas != 2 {
			t.Fatalf("node %d view: %+v", i, est)
		}
		assertWithin(t, fmt.Sprintf("node %d merged view", i), est.AllTime, truth, testGossipEps)
	}
	fullRx := nodes[0].rt.gossip.met.rxFullBytes.Value()
	if fullRx == 0 {
		t.Fatal("first contact shipped no full envelopes")
	}

	// Steady state: peers re-observe known keys (the normal life of a
	// distinct counter). Sections do not change, so the next sweep
	// moves versions but ships near-empty deltas.
	for i, nd := range nodes {
		if err := nd.st.Ingest(name, genKeysRange(fmt.Sprintf("n%d", i), 0, 500)); err != nil {
			t.Fatal(err)
		}
	}
	roundAll(nodes)
	g := nodes[0].rt.gossip
	if g.met.rxFullBytes.Value() != fullRx {
		t.Fatalf("steady-state round re-shipped full envelopes: %d → %d bytes",
			fullRx, g.met.rxFullBytes.Value())
	}
	deltaRx := g.met.rxDeltaBytes.Value()
	if deltaRx == 0 {
		t.Fatal("steady-state round shipped nothing (versions did not move?)")
	}
	if deltaRx*5 > fullRx {
		t.Fatalf("steady-state delta traffic %dB is not ≥5x below the full transfer %dB", deltaRx, fullRx)
	}

	// Fresh keys still converge through deltas.
	if err := nodes[1].st.Ingest(name, genKeysRange("fresh", 0, 2_000)); err != nil {
		t.Fatal(err)
	}
	roundAll(nodes)
	est, err := nodes[2].rt.LocalEstimate(name)
	if err != nil {
		t.Fatal(err)
	}
	assertWithin(t, "view after fresh keys", est.AllTime, truth+2_000, testGossipEps)
}

// TestGossipStalenessBound: under a fake clock, staleness is exactly
// "age of the oldest peer sync" — it resets on a completed round and
// grows with wall time, so a loop at interval I keeps it ≤ 2·I (one
// interval of scheduling lag plus one of round age).
func TestGossipStalenessBound(t *testing.T) {
	nodes := startGossipNodes(t, 3, time.Second)
	g := nodes[0].rt.gossip
	now := time.Unix(1_700_000_000, 0)
	g.now = func() time.Time { return now }
	g.start = now.UnixNano()

	// Never synced: staleness grows from the gossiper's birth.
	now = now.Add(3 * time.Second)
	if got := nodes[0].rt.Staleness(); got != 3*time.Second {
		t.Fatalf("pre-sync staleness = %v, want 3s", got)
	}

	nodes[0].rt.GossipRound()
	if got := nodes[0].rt.Staleness(); got != 0 {
		t.Fatalf("staleness after a full round = %v, want 0", got)
	}
	now = now.Add(1500 * time.Millisecond)
	if got := nodes[0].rt.Staleness(); got != 1500*time.Millisecond {
		t.Fatalf("staleness 1.5s after the round = %v", got)
	}

	// A partitioned peer pins staleness to its last good sync even
	// while the others keep answering.
	nodes[2].partitioned.Store(true)
	now = now.Add(2 * time.Second)
	nodes[0].rt.GossipRound()
	if got := nodes[0].rt.Staleness(); got != 3500*time.Millisecond {
		t.Fatalf("staleness with one dead peer = %v, want 3.5s", got)
	}
	nodes[2].partitioned.Store(false)
	nodes[0].rt.GossipRound()
	if got := nodes[0].rt.Staleness(); got != 0 {
		t.Fatalf("staleness after heal = %v, want 0", got)
	}
}

// TestGossipPartitionHeal: a node that misses rounds while its peer
// keeps ingesting loses nothing — the next successful sync carries the
// whole backlog (as a delta against the last common version).
func TestGossipPartitionHeal(t *testing.T) {
	nodes := startGossipNodes(t, 2, time.Second)
	name := "acme/users"
	if err := nodes[1].st.Ingest(name, genKeysRange("base", 0, 20_000)); err != nil {
		t.Fatal(err)
	}
	roundAll(nodes)
	est, err := nodes[0].rt.LocalEstimate(name)
	if err != nil {
		t.Fatal(err)
	}
	assertWithin(t, "pre-partition view", est.AllTime, 20_000, testGossipEps)

	// Partition node 1 away; it keeps ingesting (mostly re-observed
	// keys plus a genuinely new range, like real traffic).
	nodes[1].partitioned.Store(true)
	failures := nodes[0].rt.gossip.met.peerFailures.With(nodes[1].url).Value()
	if err := nodes[1].st.Ingest(name, genKeysRange("base", 0, 5_000)); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].st.Ingest(name, genKeysRange("during", 0, 3_000)); err != nil {
		t.Fatal(err)
	}
	nodes[0].rt.GossipRound()
	if got := nodes[0].rt.gossip.met.peerFailures.With(nodes[1].url).Value(); got != failures+1 {
		t.Fatalf("partitioned sync not counted as failure: %d → %d", failures, got)
	}
	// The stale view still answers.
	est, err = nodes[0].rt.LocalEstimate(name)
	if err != nil {
		t.Fatal(err)
	}
	assertWithin(t, "mid-partition view", est.AllTime, 20_000, testGossipEps)

	// Heal: one round recovers every key ingested during the partition.
	nodes[1].partitioned.Store(false)
	nodes[0].rt.GossipRound()
	est, err = nodes[0].rt.LocalEstimate(name)
	if err != nil {
		t.Fatal(err)
	}
	assertWithin(t, "post-heal view", est.AllTime, 23_000, testGossipEps)
}

// TestEstimateModes: the mode switch on /v1/cluster/estimate — local
// is the default with gossip on, carries the staleness header, and
// unknown modes 400.
func TestEstimateModes(t *testing.T) {
	nodes := startGossipNodes(t, 2, time.Second)
	name := "acme/users"
	if err := nodes[1].st.Ingest(name, genKeysRange("k", 0, 5_000)); err != nil {
		t.Fatal(err)
	}
	roundAll(nodes)

	get := func(query string) (map[string]any, http.Header, int) {
		t.Helper()
		resp, err := http.Get(nodes[0].url + "/v1/cluster/estimate?store=" + name + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var doc map[string]any
		if len(body) > 0 {
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("decoding %q response: %v (%s)", query, err, body)
			}
		}
		return doc, resp.Header, resp.StatusCode
	}

	// Default with gossip on = local: O(1) merged view + staleness.
	doc, hdr, status := get("")
	if status != http.StatusOK || doc["mode"] != "local" {
		t.Fatalf("default mode: HTTP %d, %v", status, doc)
	}
	if hdr.Get(StalenessHeader) == "" {
		t.Fatal("local estimate missing the staleness header")
	}
	assertWithin(t, "local estimate", doc["all_time"].(float64), 5_000, testGossipEps)

	doc, _, status = get("&mode=gather")
	if status != http.StatusOK || doc["mode"] == "local" {
		t.Fatalf("gather mode: HTTP %d, %v", status, doc)
	}
	assertWithin(t, "gather estimate", doc["all_time"].(float64), 5_000, testGossipEps)

	if _, _, status = get("&mode=bogus"); status != http.StatusBadRequest {
		t.Fatalf("bogus mode: HTTP %d, want 400", status)
	}

	// Unknown stores 404 in local mode too.
	resp, err := http.Get(nodes[0].url + "/v1/cluster/estimate?store=acme/ghost&mode=local")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost store: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestPartialEstimateCounter: the stale-local fallback (a 200 gather
// without every peer) increments knwd_cluster_partial_estimates_total.
func TestPartialEstimateCounter(t *testing.T) {
	nodes := startGossipNodes(t, 2, time.Second)
	name := "acme/users"
	if err := nodes[0].st.Ingest(name, genKeysRange("k", 0, 1_000)); err != nil {
		t.Fatal(err)
	}
	rt := nodes[0].rt
	if got := rt.met.partialServed.Value(); got != 0 {
		t.Fatalf("partial-estimates counter starts at %d", got)
	}
	est, err := rt.MergedEstimate(name)
	if err != nil || est.Partial {
		t.Fatalf("healthy gather: %+v, %v", est, err)
	}
	if got := rt.met.partialServed.Value(); got != 0 {
		t.Fatalf("healthy gather bumped the partial counter to %d", got)
	}

	nodes[1].partitioned.Store(true)
	est, err = rt.MergedEstimate(name)
	if err != nil {
		t.Fatalf("partial gather should fall back to the local view: %v", err)
	}
	if !est.Partial {
		t.Fatalf("gather with a dead peer not flagged partial: %+v", est)
	}
	assertWithin(t, "stale-local fallback", est.AllTime, 1_000, testGossipEps)
	if got := rt.met.partialServed.Value(); got != 1 {
		t.Fatalf("partial-estimates counter = %d, want 1", got)
	}
}

// TestPerPeerStalenessMetric: knwd_gossip_peer_staleness_seconds
// exposes one scrape-time series per peer, tracking each peer's own
// last sync — a partitioned peer's series keeps growing while the
// healthy one resets every round.
func TestPerPeerStalenessMetric(t *testing.T) {
	nodes := startGossipNodes(t, 3, time.Second)
	g := nodes[0].rt.gossip
	now := time.Unix(1_700_000_000, 0)
	g.now = func() time.Time { return now }
	g.start = now.UnixNano()

	scrape := func() string {
		var b strings.Builder
		if err := nodes[0].reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	series := func(peer string) string {
		return `knwd_gossip_peer_staleness_seconds{peer="` + peer + `"} `
	}
	out := scrape()
	for i, nd := range nodes {
		want := i != 0 // every peer but self gets a series
		if got := strings.Contains(out, series(nd.url)); got != want {
			t.Errorf("series for %s present=%v, want %v:\n%s", nd.url, got, want, out)
		}
	}

	nodes[2].partitioned.Store(true)
	now = now.Add(2 * time.Second)
	nodes[0].rt.GossipRound()
	out = scrape()
	if !strings.Contains(out, series(nodes[1].url)+"0\n") {
		t.Errorf("healthy peer staleness != 0 after round:\n%s", out)
	}
	if !strings.Contains(out, series(nodes[2].url)+"2\n") {
		t.Errorf("partitioned peer staleness != 2s:\n%s", out)
	}
}

func genKeysRange(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}
