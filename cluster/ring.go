package cluster

import (
	"fmt"
	"sort"
)

// defaultVnodes is the number of ring points each member contributes.
// 64 virtual nodes keep the per-member key share within a few percent
// of fair for small static clusters without making ring construction
// or lookup noticeable.
const defaultVnodes = 64

// ring is a static-membership consistent-hash ring: every member
// contributes vnodes points at deterministic hash positions, and a
// key's owners are the first R distinct members at or after the key's
// hash, walking clockwise. Because the point set depends only on the
// (sorted) member list and vnode count, every node that shares the
// peer list computes identical ownership — no coordination, no
// metadata exchange.
type ring struct {
	members []string // canonical (sorted) member URLs
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member int32
}

// newRing builds the ring over the member URLs. Members are sorted
// first so peer lists given in any order produce the same ring.
func newRing(members []string, vnodes int) (*ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate member %q", sorted[i])
		}
	}
	r := &ring{
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for m, url := range sorted {
		for v := 0; v < vnodes; v++ {
			h := pointHash(url, v)
			r.points = append(r.points, ringPoint{hash: h, member: int32(m)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic tie-break
	})
	return r, nil
}

// index returns the member index of url, or -1.
func (r *ring) index(url string) int {
	i := sort.SearchStrings(r.members, url)
	if i < len(r.members) && r.members[i] == url {
		return i
	}
	return -1
}

// owners appends the first n distinct members clockwise from h to
// buf[:0] and returns it — the replica set for a key hashing to h.
// n is capped at the member count.
func (r *ring) owners(h uint64, n int, buf []int) []int {
	buf = buf[:0]
	if n > len(r.members) {
		n = len(r.members)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; len(buf) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		m := int(p.member)
		seen := false
		for _, have := range buf {
			if have == m {
				seen = true
				break
			}
		}
		if !seen {
			buf = append(buf, m)
		}
	}
	return buf
}

// keyHash maps a raw key to a well-spread ring position: FNV-1a over
// the key bytes, finished with an avalanche mix. The mix matters —
// ring position is ordered by the HIGH bits of the hash, which raw
// FNV barely moves for short suffix differences. The live routing
// path no longer uses it (placement is mix64 over the store's sketch
// hash, so pre-hashed binary frames and string codecs place keys
// identically; see session.routeOne); it remains the seed-free
// keyspace generator for ring distribution tests.
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return mix64(h)
}

// pointHash places one virtual node on the ring: FNV-1a over the
// member URL followed by the vnode index bytes, avalanche-finished so
// one member's vnodes spread over the whole ring instead of
// clustering (see keyHash).
func pointHash(member string, vnode int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(member); i++ {
		h = (h ^ uint64(member[i])) * 1099511628211
	}
	for s := uint(0); s < 32; s += 8 {
		h = (h ^ uint64(byte(vnode>>s))) * 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: full-avalanche bit diffusion.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
