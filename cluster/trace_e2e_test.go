package cluster_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/store"
)

// TestClusterTracePropagation is the tracing acceptance check: one
// traced POST /v1/cluster/ingest produces a single trace whose spans
// come from at least two nodes, parent/child linked — the routing span
// adopts the client header's span id as parent, and every peer's leaf
// ingest span hangs off the routing span.
func TestClusterTracePropagation(t *testing.T) {
	nodes := startCluster(t, 3, 2, store.Window{})

	const hdr = "00000000deadbeef-0000000000000001-1"
	keys := genKeys("trace", 0, 500)
	req, err := http.NewRequest(http.MethodPost,
		nodes[0].url+"/v1/cluster/ingest?store=traced",
		strings.NewReader(strings.Join(keys, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, hdr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster ingest: HTTP %d: %s", resp.StatusCode, body)
	}

	// scope=cluster merges every node's ring into one tree.
	resp, err = http.Get(nodes[0].url + "/v1/debug/traces?trace=00000000deadbeef&scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug traces: HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Fatalf("got %d traces for id deadbeef, want 1: %s", len(out.Traces), body)
	}
	tree := out.Traces[0]

	// The routing span: handled the cluster ingest, child of the
	// client's span id from the header.
	var routing *trace.SpanView
	for i := range tree.Spans {
		if tree.Spans[i].Name == "/v1/cluster/ingest" {
			routing = &tree.Spans[i]
		}
	}
	if routing == nil {
		t.Fatalf("no routing span in tree: %s", body)
	}
	if routing.Parent != "0000000000000001" {
		t.Errorf("routing span parent = %q, want the header's span id", routing.Parent)
	}
	if routing.Store != "traced" || routing.Keys != len(keys) {
		t.Errorf("routing span = store %q keys %d, want traced/%d", routing.Store, routing.Keys, len(keys))
	}
	hasForward := false
	for _, st := range routing.Stages {
		if st.Stage == "peer_forward" {
			hasForward = true
		}
	}
	if !hasForward {
		t.Errorf("routing span stages = %v, want peer_forward", routing.Stages)
	}

	// Leaf ingest spans recorded by peers, children of the routing span.
	nodesSeen := map[string]bool{routing.Node: true}
	leaves := 0
	for _, sp := range tree.Spans {
		if sp.Name != "/v1/ingest" {
			continue
		}
		leaves++
		nodesSeen[sp.Node] = true
		if sp.Parent != routing.Span {
			t.Errorf("leaf span on %s has parent %q, want routing span %q", sp.Node, sp.Parent, routing.Span)
		}
	}
	if leaves == 0 {
		t.Fatalf("no forwarded leaf spans in tree: %s", body)
	}
	if len(nodesSeen) < 2 {
		t.Fatalf("trace covers %d node(s), want >= 2: %s", len(nodesSeen), body)
	}

	// An unsampled header ('0' flag) must record nothing anywhere.
	req, _ = http.NewRequest(http.MethodPost,
		nodes[1].url+"/v1/cluster/ingest?store=traced",
		strings.NewReader("one-more\n"))
	req.Header.Set(trace.Header, "00000000cafef00d-0000000000000002-0")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, _ = http.Get(nodes[1].url + "/v1/debug/traces?trace=00000000cafef00d&scope=cluster")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var out2 struct {
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.Unmarshal(body, &out2); err != nil {
		t.Fatal(err)
	}
	if len(out2.Traces) != 0 {
		t.Errorf("unsampled header recorded %d traces: %s", len(out2.Traces), body)
	}
}

// TestClusterEstimateTraced: a traced scatter-gather estimate records
// the gather stage on the serving node and snapshot spans on peers.
func TestClusterEstimateTraced(t *testing.T) {
	nodes := startCluster(t, 3, 1, store.Window{})
	if code, body := ingestLines(t, nodes[0].url, "est", genKeys("est", 0, 300)); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, body)
	}

	req, _ := http.NewRequest(http.MethodGet, nodes[0].url+"/v1/cluster/estimate?store=est", nil)
	req.Header.Set(trace.Header, "00000000feedf00d-0000000000000003-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: HTTP %d", resp.StatusCode)
	}

	resp, _ = http.Get(nodes[0].url + "/v1/debug/traces?trace=00000000feedf00d&scope=cluster")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Traces []trace.Tree `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Fatalf("got %d traces, want 1: %s", len(out.Traces), body)
	}
	nodesSeen := map[string]bool{}
	gatherStage := false
	for _, sp := range out.Traces[0].Spans {
		nodesSeen[sp.Node] = true
		for _, st := range sp.Stages {
			if st.Stage == "gather" {
				gatherStage = true
			}
		}
	}
	if !gatherStage {
		t.Errorf("no gather stage in trace: %s", body)
	}
	if len(nodesSeen) < 2 {
		t.Fatalf("estimate trace covers %d node(s), want >= 2: %s", len(nodesSeen), body)
	}
}
