package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/httpx"
	"repro/internal/metrics"
)

// Dynamic membership: the static peer list becomes a sequence of
// epoch-numbered ring descriptors (descriptor.go), and a membership
// change is a two-phase cutover:
//
//  1. Prepare. A coordinator (whichever node served the join/leave)
//     proposes epoch E+1 and broadcasts the descriptor. Every node
//     that adopts it keeps TWO rings — the committed one and the
//     pending one — and from that moment routes every ingested key to
//     the UNION of its old and new owner sets. Union routing is free
//     under sketch semantics (a key counted on extra replicas still
//     counts once in any merged estimate), and it is what keeps every
//     key owned throughout the transition: old owners still receive
//     it, new owners start receiving it.
//  2. Handoff, then commit. Each node that owns data a new owner
//     should hold streams its envelopes over (handoff.go) and merges
//     arrive-side, so the new owners' sketches already cover history
//     when the coordinator commits E+1. Commit atomically swaps the
//     pending ring in as the committed one; readers pick up the new
//     epoch on their next request via one atomic pointer load.
//
// Estimates never dip below the (ε,δ) bound mid-rebalance because no
// step ever removes information: union routing only widens write
// fan-out, handoff only merges envelopes in, and gathers read every
// member of the union view. The one lossy moment — a departed member's
// replica envelopes leaving the gossip view — happens at commit, after
// that member's history was handed off.
//
// Concurrent proposals resolve deterministically: a higher epoch
// always supersedes, and two proposals at the same epoch tie-break on
// canonical descriptor bytes (descriptor.less), so every node that
// sees both keeps the same winner and the losing coordinator gets a
// 409 to retry at a higher epoch.

// RingEpochHeader carries the serving node's committed ring epoch on
// cluster responses, so clients (and the churn harness) can attribute
// answers to membership states.
const RingEpochHeader = "X-KNW-Ring-Epoch"

// RebalancingHeader is set (to the pending epoch) on cluster responses
// served while a membership transition is in flight — the rebalance
// counterpart of X-KNW-Partial/X-KNW-Staleness.
const RebalancingHeader = "X-KNW-Rebalancing"

// errStaleEpoch and errEpochConflict map to HTTP 409: the caller's
// descriptor lost a race and should re-read the ring and retry.
var (
	errStaleEpoch    = errors.New("cluster: descriptor epoch is stale")
	errEpochConflict = errors.New("cluster: conflicting descriptor for epoch")
)

// ringView is one immutable snapshot of the routing state: the
// committed ring, plus — during a transition — the pending ring, with
// both member lists folded into one sorted union so every per-request
// buffer indexes a single member space. Handlers load it once per
// request (Router.view) and use it throughout, so a cutover mid-request
// cannot tear a session's owner bookkeeping.
type ringView struct {
	epoch        uint64
	pendingEpoch uint64 // 0 when no transition is in flight
	members      []string
	self         int // index of selfURL in members; -1 after this node left
	selfURL      string
	replication  int // committed descriptor's replication (reported + loss check)

	cur      *ring
	curIdx   []int // cur member index → union index
	curRepl  int
	next     *ring // nil when stable
	nextIdx  []int
	nextRepl int
}

// buildView assembles the snapshot for one committed/pending pair.
func buildView(selfURL string, cur *RingDescriptor, curRing *ring, pending *RingDescriptor, pendingRing *ring) *ringView {
	members := cur.Members
	if pending != nil {
		members = append(append([]string(nil), cur.Members...), pending.Members...)
		sort.Strings(members)
		n := 0
		for i, m := range members {
			if i == 0 || m != members[n-1] {
				members[n] = m
				n++
			}
		}
		members = members[:n]
	}
	v := &ringView{
		epoch:       cur.Epoch,
		members:     members,
		self:        -1,
		selfURL:     selfURL,
		replication: cur.Replication,
		cur:         curRing,
		curRepl:     cur.Replication,
	}
	if i := sort.SearchStrings(members, selfURL); i < len(members) && members[i] == selfURL {
		v.self = i
	}
	v.curIdx = unionIndex(curRing.members, members)
	if pending != nil {
		v.pendingEpoch = pending.Epoch
		v.next = pendingRing
		v.nextRepl = pending.Replication
		v.nextIdx = unionIndex(pendingRing.members, members)
	}
	return v
}

// unionIndex maps each of sub's (sorted) members to its index in the
// sorted union list.
func unionIndex(sub, union []string) []int {
	idx := make([]int, len(sub))
	for i, m := range sub {
		idx[i] = sort.SearchStrings(union, m)
	}
	return idx
}

// owners appends the union-index owner set for hash h to buf[:0]: the
// committed ring's owners, plus — during a transition — the pending
// ring's, deduplicated. scratch is the per-ring owner scratch slice;
// both slices are returned for reuse.
func (v *ringView) owners(h uint64, buf, scratch []int) ([]int, []int) {
	buf = buf[:0]
	scratch = v.cur.owners(h, v.curRepl, scratch)
	for _, m := range scratch {
		buf = append(buf, v.curIdx[m])
	}
	if v.next != nil {
		scratch = v.next.owners(h, v.nextRepl, scratch)
	outer:
		for _, m := range scratch {
			u := v.nextIdx[m]
			for _, have := range buf {
				if have == u {
					continue outer
				}
			}
			buf = append(buf, u)
		}
	}
	return buf, scratch
}

// rebalancing reports whether a transition is in flight.
func (v *ringView) rebalancing() bool { return v.pendingEpoch != 0 }

// view returns the current routing snapshot. Handlers call it once per
// request and thread the result through, so one request sees one
// consistent membership state.
func (rt *Router) view() *ringView { return rt.live.Load() }

// Epoch returns the committed ring epoch.
func (rt *Router) Epoch() uint64 { return rt.view().epoch }

// Descriptor returns a copy of the committed ring descriptor.
func (rt *Router) Descriptor() RingDescriptor {
	rt.memMu.Lock()
	defer rt.memMu.Unlock()
	d := *rt.cur
	d.Members = append([]string(nil), d.Members...)
	return d
}

// initMembership installs epoch 1 from the static config (the boot
// descriptor every node derives identically from its -peers flag).
func (rt *Router) initMembership(r *ring) {
	rt.cur = &RingDescriptor{
		Epoch:       1,
		Members:     append([]string(nil), r.members...),
		Vnodes:      rt.vnodes,
		Replication: rt.cfg.Replication,
	}
	rt.curRing = r
	rt.live.Store(buildView(rt.cfg.Self, rt.cur, rt.curRing, nil, nil))
}

// rebuildViewLocked refreshes the atomic view from the descriptor
// state. Callers hold memMu.
func (rt *Router) rebuildViewLocked() {
	rt.live.Store(buildView(rt.cfg.Self, rt.cur, rt.curRing, rt.pending, rt.pendingRing))
}

// AdoptDescriptor is the prepare phase on one node: validate the
// proposed descriptor against the committed/pending state, install it
// as pending, switch routing to the union view, and start handing off
// re-owned slices. Idempotent for descriptors already held; stale or
// tie-break-losing proposals return errStaleEpoch/errEpochConflict
// (HTTP 409).
func (rt *Router) AdoptDescriptor(d *RingDescriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r, err := newRing(d.Members, d.Vnodes)
	if err != nil {
		return err
	}
	rt.memMu.Lock()
	defer rt.memMu.Unlock()
	switch {
	case d.Epoch < rt.cur.Epoch:
		return fmt.Errorf("%w: proposed %d, committed %d", errStaleEpoch, d.Epoch, rt.cur.Epoch)
	case d.Epoch == rt.cur.Epoch:
		if d.Equal(rt.cur) {
			return nil // the committed descriptor re-announced
		}
		return fmt.Errorf("%w %d", errEpochConflict, d.Epoch)
	}
	if rt.pending != nil {
		switch {
		case d.Epoch < rt.pending.Epoch:
			return fmt.Errorf("%w: proposed %d, pending %d", errStaleEpoch, d.Epoch, rt.pending.Epoch)
		case d.Epoch == rt.pending.Epoch:
			if d.Equal(rt.pending) {
				return nil // already adopted
			}
			if rt.pending.less(d) {
				return fmt.Errorf("%w %d (tie-break)", errEpochConflict, d.Epoch)
			}
			// The incoming proposal wins the tie-break: fall through and
			// replace ours.
		}
	}
	rt.pending, rt.pendingRing = d, r
	rt.rebuildViewLocked()
	rt.startHandoffLocked(rt.live.Load())
	rt.log.Info("ring epoch adopted", "epoch", d.Epoch,
		"members", len(d.Members), "replication", d.Replication)
	return nil
}

// CommitEpoch is the cutover on one node: the pending descriptor for
// epoch becomes the committed one, the union view collapses to the new
// ring, and replicas of departed members leave the gossip view.
// Idempotent for epochs already committed.
func (rt *Router) CommitEpoch(epoch uint64) error {
	rt.memMu.Lock()
	if rt.cur.Epoch >= epoch {
		rt.memMu.Unlock()
		return nil
	}
	if rt.pending == nil || rt.pending.Epoch != epoch {
		have := uint64(0)
		if rt.pending != nil {
			have = rt.pending.Epoch
		}
		rt.memMu.Unlock()
		return fmt.Errorf("cluster: no pending descriptor for epoch %d (pending %d, committed %d)",
			epoch, have, rt.cur.Epoch)
	}
	old := rt.cur
	rt.cur, rt.curRing = rt.pending, rt.pendingRing
	rt.pending, rt.pendingRing = nil, nil
	rt.rebuildViewLocked()
	departed := make([]string, 0, 1)
	for _, m := range old.Members {
		if !rt.cur.hasMember(m) && m != rt.cfg.Self {
			departed = append(departed, m)
		}
	}
	rt.memMu.Unlock()
	for _, peer := range departed {
		if rt.gossip != nil {
			rt.gossip.dropPeer(peer)
		}
	}
	rt.log.Info("ring epoch committed", "epoch", epoch,
		"members", len(rt.view().cur.members), "departed", len(departed))
	return nil
}

// ChangeResult is the coordinator's summary of one membership change.
type ChangeResult struct {
	Epoch       uint64   `json:"epoch"`
	Members     []string `json:"members"`
	Replication int      `json:"replication"`
	Changed     bool     `json:"changed"`
	// Skipped lists members whose prepare or handoff could not be
	// confirmed before the cutover deadline (dead nodes being removed,
	// typically). With replication ≥ 2 their keys survive on the other
	// replicas.
	Skipped []string `json:"skipped,omitempty"`
}

// Join adds url to the cluster and drives the two-phase cutover to the
// new ring epoch, returning once the epoch is committed. Idempotent:
// joining a current member reports the committed state unchanged.
func (rt *Router) Join(url string) (ChangeResult, error) {
	if err := validateMemberURL(url); err != nil {
		return ChangeResult{}, err
	}
	rt.changeMu.Lock()
	defer rt.changeMu.Unlock()
	base := rt.Descriptor()
	if base.hasMember(url) && rt.view().pendingEpoch == 0 {
		return ChangeResult{Epoch: base.Epoch, Members: base.Members,
			Replication: base.Replication}, nil
	}
	return rt.changeMembership(withMember(base.Members, url))
}

// Leave removes url from the cluster: the departing node (if alive)
// hands its slices off during the prepare window, and the commit drops
// it from routing and the gossip view. Removing an unreachable node is
// allowed — its handoff is skipped after the cutover deadline, which
// is the crash-recovery path (safe at replication ≥ 2). Idempotent for
// non-members.
func (rt *Router) Leave(url string) (ChangeResult, error) {
	if err := validateMemberURL(url); err != nil {
		return ChangeResult{}, err
	}
	rt.changeMu.Lock()
	defer rt.changeMu.Unlock()
	base := rt.Descriptor()
	if !base.hasMember(url) && rt.view().pendingEpoch == 0 {
		return ChangeResult{Epoch: base.Epoch, Members: base.Members,
			Replication: base.Replication}, nil
	}
	members := withoutMember(base.Members, url)
	if len(members) == 0 {
		return ChangeResult{}, fmt.Errorf("cluster: cannot remove the last member %q", url)
	}
	return rt.changeMembership(members)
}

// Drain hands this node's data off and removes it from the ring — the
// SIGTERM path (cmd/knwd -drain). The node keeps serving throughout:
// it must answer snapshot and ingest traffic while its handoff runs.
func (rt *Router) Drain() (ChangeResult, error) {
	return rt.Leave(rt.cfg.Self)
}

func validateMemberURL(url string) error {
	if len(url) < 8 || (url[:7] != "http://" && (len(url) < 9 || url[:8] != "https://")) {
		return fmt.Errorf("cluster: member url %q must be an http(s) base URL", url)
	}
	d := RingDescriptor{Epoch: 1, Members: []string{url}, Vnodes: 1, Replication: 1}
	return d.Validate()
}

// changeMembership runs the coordinator protocol for one target member
// list. Callers hold changeMu.
func (rt *Router) changeMembership(members []string) (ChangeResult, error) {
	rt.memMu.Lock()
	epoch := rt.cur.Epoch + 1
	if rt.pending != nil && rt.pending.Epoch >= epoch {
		epoch = rt.pending.Epoch + 1
	}
	oldMembers := append([]string(nil), rt.cur.Members...)
	// Replication is ring policy, carried forward from the committed
	// descriptor — NOT from this coordinator's boot config. A draining
	// node proposes its own removal, and a joiner that booted alone has
	// replication 1 in its config; either would otherwise downgrade the
	// survivors' replication factor.
	repl := rt.cur.Replication
	rt.memMu.Unlock()
	if repl > len(members) {
		repl = len(members)
	}
	d := &RingDescriptor{Epoch: epoch, Members: members, Vnodes: rt.vnodes, Replication: repl}
	if err := d.Validate(); err != nil {
		return ChangeResult{}, err
	}
	if err := rt.AdoptDescriptor(d); err != nil {
		return ChangeResult{}, err
	}
	out := ChangeResult{Epoch: epoch, Members: d.Members, Replication: repl, Changed: true}

	// Prepare: every member of the new ring must hold the descriptor
	// before we wait on handoff (they are about to own data). Members
	// only in the old ring get it best-effort — the unreachable-node
	// removal path must not block on the node being removed.
	body := d.Encode(nil)
	union := rt.view().members
	for _, peer := range union {
		if peer == rt.cfg.Self {
			continue
		}
		err := rt.postWithRetry(peer, "/v1/cluster/ring", body)
		if err == nil {
			continue
		}
		if d.hasMember(peer) {
			return out, fmt.Errorf("cluster: prepare epoch %d on %s: %w", epoch, peer, err)
		}
		rt.log.Warn("prepare skipped for departing member", "peer", peer, "epoch", epoch, "err", err)
		out.Skipped = append(out.Skipped, peer)
	}

	// Wait for every old member (the nodes that may hold re-owned data)
	// to finish handing off, bounded by the cutover deadline.
	deadline := rt.now().Add(rt.cfg.HandoffTimeout)
	for _, peer := range oldMembers {
		if !rt.waitHandoff(peer, epoch, deadline) {
			rt.log.Warn("handoff not confirmed before cutover deadline", "peer", peer, "epoch", epoch)
			out.Skipped = append(out.Skipped, peer)
		}
	}

	// Commit: locally first (the coordinator must answer the new epoch),
	// then everywhere else, retried; a member that misses the commit
	// catches up from the next prepare or its own join.
	if err := rt.CommitEpoch(epoch); err != nil {
		return out, err
	}
	for _, peer := range union {
		if peer == rt.cfg.Self {
			continue
		}
		if err := rt.postWithRetry(peer, "/v1/cluster/ring?phase=commit&epoch="+strconv.FormatUint(epoch, 10), nil); err != nil {
			rt.log.Warn("commit broadcast failed", "peer", peer, "epoch", epoch, "err", err)
			if !containsStr(out.Skipped, peer) {
				out.Skipped = append(out.Skipped, peer)
			}
		}
	}
	return out, nil
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// waitHandoff polls one member's handoff status for epoch until done
// or the deadline passes. Self is checked in-process.
func (rt *Router) waitHandoff(peer string, epoch uint64, deadline time.Time) bool {
	for {
		if peer == rt.cfg.Self {
			if rt.HandoffStatus(epoch).Done {
				return true
			}
		} else if st, err := rt.fetchHandoffStatus(peer, epoch); err == nil && st.Done {
			return true
		}
		if !rt.now().Before(deadline) {
			return false
		}
		rt.sleep(rt.cfg.HandoffPoll)
	}
}

// postWithRetry POSTs one small control body (descriptor bytes or an
// empty commit) to a peer's cluster endpoint, retrying transient
// failures with the forwarding backoff schedule.
func (rt *Router) postWithRetry(peer, path string, body []byte) error {
	backoff := rt.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Attempts; attempt++ {
		if attempt > 0 {
			rt.sleep(backoff)
			backoff *= 2
		}
		req, err := http.NewRequest(http.MethodPost, peer+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		lastErr = fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return lastErr // permanent: conflict or bad request
		}
	}
	return lastErr
}

// fetchHandoffStatus reads one peer's handoff progress for an epoch.
func (rt *Router) fetchHandoffStatus(peer string, epoch uint64) (HandoffStatus, error) {
	var st HandoffStatus
	resp, err := rt.client.Get(peer + "/v1/cluster/handoff/status?epoch=" + strconv.FormatUint(epoch, 10))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return st, fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
	return st, err
}

// PeerHealth classifies every other member by gossip staleness:
// "alive" within 3 intervals, "suspect" beyond that, "dead" beyond 10
// (the operator's cue to POST /v1/cluster/leave), "unknown" when
// gossip is disabled.
func (rt *Router) PeerHealth() map[string]string {
	v := rt.view()
	out := make(map[string]string, len(v.members))
	for _, m := range v.members {
		if m == v.selfURL {
			continue
		}
		if rt.gossip == nil {
			out[m] = "unknown"
			continue
		}
		switch s := rt.gossip.peerStaleness(m); {
		case s > 10*rt.gossip.interval:
			out[m] = "dead"
		case s > 3*rt.gossip.interval:
			out[m] = "suspect"
		default:
			out[m] = "alive"
		}
	}
	return out
}

// ringHeaders stamps the membership headers on a cluster response.
func (rt *Router) ringHeaders(w http.ResponseWriter) {
	v := rt.view()
	w.Header().Set(RingEpochHeader, strconv.FormatUint(v.epoch, 10))
	if v.rebalancing() {
		w.Header().Set(RebalancingHeader, strconv.FormatUint(v.pendingEpoch, 10))
	}
}

// memberChange is the POST /v1/cluster/join and /leave body.
type memberChange struct {
	URL string `json:"url"`
}

// HandleJoin is POST /v1/cluster/join {"url": "http://host:port"}: add
// a member and cut over, answering once the new epoch is committed.
func (rt *Router) HandleJoin(w http.ResponseWriter, r *http.Request) {
	rt.handleChange(w, r, rt.Join)
}

// HandleLeave is POST /v1/cluster/leave {"url": "..."}: remove a
// member (alive — it drains first — or dead) and cut over.
func (rt *Router) HandleLeave(w http.ResponseWriter, r *http.Request) {
	rt.handleChange(w, r, rt.Leave)
}

func (rt *Router) handleChange(w http.ResponseWriter, r *http.Request, op func(string) (ChangeResult, error)) {
	var req memberChange
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpx.Fail(w, httpx.ReadStatus(err), err)
		return
	}
	res, err := op(req.URL)
	rt.ringHeaders(w)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errStaleEpoch) || errors.Is(err, errEpochConflict) {
			status = http.StatusConflict
		}
		httpx.Fail(w, status, err)
		return
	}
	httpx.Reply(w, http.StatusOK, res)
}

// HandleRing serves the membership control plane:
//
//	GET  /v1/cluster/ring                         → descriptor state (JSON)
//	POST /v1/cluster/ring                         → prepare (KNWM body)
//	POST /v1/cluster/ring?phase=commit&epoch=N    → commit
func (rt *Router) HandleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		rt.memMu.Lock()
		out := map[string]any{
			"epoch":       rt.cur.Epoch,
			"members":     rt.cur.Members,
			"vnodes":      rt.cur.Vnodes,
			"replication": rt.cur.Replication,
		}
		if rt.pending != nil {
			out["pending_epoch"] = rt.pending.Epoch
			out["pending_members"] = rt.pending.Members
		}
		rt.memMu.Unlock()
		rt.ringHeaders(w)
		httpx.Reply(w, http.StatusOK, out)
		return
	}
	if phase := r.URL.Query().Get("phase"); phase == "commit" {
		epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
		if err != nil {
			httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("bad commit epoch: %w", err))
			return
		}
		if err := rt.CommitEpoch(epoch); err != nil {
			httpx.Fail(w, http.StatusConflict, err)
			return
		}
		rt.ringHeaders(w)
		httpx.Reply(w, http.StatusOK, map[string]any{"epoch": rt.Epoch()})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpx.Fail(w, httpx.ReadStatus(err), err)
		return
	}
	d, err := DecodeRingDescriptor(body)
	if err != nil {
		httpx.Fail(w, http.StatusBadRequest, err)
		return
	}
	if err := rt.AdoptDescriptor(d); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errStaleEpoch) || errors.Is(err, errEpochConflict) {
			status = http.StatusConflict
		}
		httpx.Fail(w, status, err)
		return
	}
	rt.ringHeaders(w)
	httpx.Reply(w, http.StatusOK, map[string]any{
		"epoch":   rt.Epoch(),
		"pending": d.Epoch,
	})
}

// HandleHandoffStatus is GET /v1/cluster/handoff/status?epoch=N: the
// coordinator's poll target during the prepare window.
func (rt *Router) HandleHandoffStatus(w http.ResponseWriter, r *http.Request) {
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		httpx.Fail(w, http.StatusBadRequest, fmt.Errorf("bad epoch: %w", err))
		return
	}
	httpx.Reply(w, http.StatusOK, rt.HandoffStatus(epoch))
}

// ringEpochGauges registers the membership gauges. Called after
// initMembership so the atomic view exists before the first scrape.
func (rt *Router) ringEpochGauges(reg *metrics.Registry) {
	reg.NewGaugeFunc("knwd_ring_epoch",
		"Committed ring membership epoch.",
		func() float64 { return float64(rt.view().epoch) })
	reg.NewGaugeFunc("knwd_ring_members",
		"Members in the committed ring.",
		func() float64 { return float64(len(rt.view().cur.members)) })
	reg.NewGaugeFunc("knwd_ring_rebalancing",
		"1 while a membership transition (union routing + handoff) is in flight.",
		func() float64 {
			if rt.view().rebalancing() {
				return 1
			}
			return 0
		})
}
