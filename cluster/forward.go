package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"
)

// session is one cluster-ingest request's routing state for a single
// target store: locally owned keys batched for the node's own store,
// plus one pending buffer per peer, flushed to the peer's single-node
// ingest API whenever it fills and once more when the request body is
// exhausted.
//
// A key's R owners are R distinct members, so as long as fewer than R
// peers fail the request, every key has landed on at least one owner
// and the ingest is reported as a (possibly partial) success; only ≥ R
// failed peers can have lost a key entirely, and that is the one case
// routed ingest reports as an error.
type session struct {
	rt    *Router
	store string

	received int      // keys consumed from the request body
	localBuf []string // pending keys owned by self
	local    int      // keys applied to the local store
	pending  [][]string
	sent     []int  // per-member keys delivered
	lost     []int  // per-member keys abandoned after retries
	failed   []bool // member declared unreachable this request

	owners []int // scratch for ring.owners
}

func (rt *Router) newSession(store string) *session {
	n := len(rt.ring.members)
	return &session{
		rt:      rt,
		store:   store,
		pending: make([][]string, n),
		sent:    make([]int, n),
		lost:    make([]int, n),
		failed:  make([]bool, n),
	}
}

// route consumes one batch of keys: each key is hashed onto the ring
// and appended to the buffers of its R owners, flushing any buffer
// that reaches the threshold.
func (s *session) route(keys []string) {
	rt := s.rt
	s.received += len(keys)
	for _, key := range keys {
		s.owners = rt.ring.owners(keyHash(key), rt.cfg.Replication, s.owners)
		for _, m := range s.owners {
			if m == rt.self {
				s.localBuf = append(s.localBuf, key)
				if len(s.localBuf) >= rt.cfg.FlushKeys {
					s.flushLocal()
				}
				continue
			}
			s.pending[m] = append(s.pending[m], key)
			if len(s.pending[m]) >= rt.cfg.FlushKeys {
				s.flushPeer(m)
			}
		}
	}
}

// finish flushes every remaining buffer and reports the outcome.
func (s *session) finish() error {
	s.flushLocal()
	for m := range s.pending {
		if len(s.pending[m]) > 0 {
			s.flushPeer(m)
		}
	}
	rt := s.rt
	rt.met.routedKeys.Add(uint64(s.received))
	rt.met.localKeys.Add(uint64(s.local))
	return nil
}

func (s *session) flushLocal() {
	if len(s.localBuf) == 0 {
		return
	}
	if err := s.rt.local.Ingest(s.store, s.localBuf); err != nil {
		// The handler validated the store name before routing, so the
		// only way the local store can reject a batch is a programming
		// error; count it against self like any other replica loss.
		s.lost[s.rt.self] += len(s.localBuf)
		s.failed[s.rt.self] = true
		s.rt.cfg.Logf("cluster: local ingest of %d keys failed: %v", len(s.localBuf), err)
	} else {
		s.local += len(s.localBuf)
		s.sent[s.rt.self] += len(s.localBuf)
	}
	s.localBuf = s.localBuf[:0]
}

// flushPeer delivers member m's pending batch; send does the work.
func (s *session) flushPeer(m int) {
	keys := s.pending[m]
	s.pending[m] = keys[:0]
	if len(keys) == 0 {
		return
	}
	s.send(m, keys)
}

// createAll mirrors the single-node create-on-empty-body contract
// cluster-wide: an ingest that carried no keys still creates the store
// on every member, so a later estimate reports 0 instead of 404 no
// matter which node it asks.
func (s *session) createAll() {
	for m := range s.rt.ring.members {
		if m == s.rt.self {
			if err := s.rt.local.Ingest(s.store, nil); err != nil {
				s.failed[m] = true
			}
			continue
		}
		s.send(m, nil)
	}
}

// send delivers one batch (empty = store creation) to member m over
// the peer's plain /v1/ingest API (which never re-forwards), retrying
// with exponential backoff. The body is the JSON document form, not
// newline framing: JSON escaping keeps arbitrary key bytes — newlines,
// CRs, empty strings — byte-identical on every replica, which the
// union invariant depends on. A peer that exhausts its attempts is
// marked failed for the rest of the request; its keys survive on the
// batch's other owners.
func (s *session) send(m int, keys []string) {
	rt := s.rt
	peer := rt.ring.members[m]
	if s.failed[m] {
		// Already unreachable this request: don't stall the stream
		// re-timing-out per batch.
		s.lost[m] += len(keys)
		rt.met.forwardErrors.With(peer).Inc()
		return
	}
	body, err := json.Marshal(ingestDoc{Store: s.store, Keys: keys})
	if err != nil { // strings always marshal
		panic("cluster: marshaling forward batch: " + err.Error())
	}
	backoff := rt.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Attempts; attempt++ {
		if attempt > 0 {
			rt.met.forwardRetries.With(peer).Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		t0 := time.Now()
		err, permanent := rt.postBatch(peer, s.store, body)
		if err == nil {
			rt.met.forwardSeconds.With(peer).Observe(time.Since(t0).Seconds())
			rt.met.forwardKeys.With(peer).Add(uint64(len(keys)))
			s.sent[m] += len(keys)
			return
		}
		lastErr = err
		if permanent {
			break
		}
	}
	s.failed[m] = true
	s.lost[m] += len(keys)
	rt.met.forwardErrors.With(peer).Inc()
	rt.cfg.Logf("cluster: forwarding %d keys to %s failed: %v", len(keys), peer, lastErr)
}

// postBatch sends one JSON batch document to a peer's single-node
// ingest. The second return marks permanent failures (4xx: the peer is
// up but rejects the request — retrying cannot help).
func (rt *Router) postBatch(peer, storeName string, body []byte) (err error, permanent bool) {
	u := peer + "/v1/ingest?store=" + url.QueryEscape(storeName)
	resp, err := rt.client.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return err, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	err = fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg)
	return err, resp.StatusCode >= 400 && resp.StatusCode < 500
}

// result summarizes a finished session for the HTTP response.
type ingestResult struct {
	Store       string         `json:"store"`
	Received    int            `json:"received"`
	Replication int            `json:"replication"`
	Local       int            `json:"local"`
	Forwarded   map[string]int `json:"forwarded,omitempty"`
	Lost        map[string]int `json:"lost,omitempty"`
	Partial     bool           `json:"partial"`
}

func (s *session) result() (ingestResult, []int) {
	out := ingestResult{
		Store:       s.store,
		Received:    s.received,
		Replication: s.rt.cfg.Replication,
		Local:       s.local,
	}
	var failedIdx []int
	for m := range s.sent {
		peer := s.rt.ring.members[m]
		if m != s.rt.self && s.sent[m] > 0 {
			if out.Forwarded == nil {
				out.Forwarded = make(map[string]int)
			}
			out.Forwarded[peer] = s.sent[m]
		}
		if s.lost[m] > 0 {
			if out.Lost == nil {
				out.Lost = make(map[string]int)
			}
			out.Lost[peer] = s.lost[m]
		}
		if s.failed[m] {
			failedIdx = append(failedIdx, m)
		}
	}
	sort.Ints(failedIdx)
	out.Partial = len(failedIdx) > 0
	return out, failedIdx
}
