package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"repro/internal/frame"
	"repro/internal/httpx"
	"repro/internal/trace"
)

// session is one cluster-ingest request's routing state for a single
// target store: locally owned keys batched for the node's own store,
// plus one pending buffer per peer, flushed to the peer's single-node
// ingest API whenever it fills and once more when the request body is
// exhausted.
//
// Keys travel pre-hashed. Whatever codec the client used, the router
// hashes each key through the local store's pinned hash
// (store.HashKey) — or accepts the client's hash from a binary frame —
// places mix64(hash) on the ring, and forwards uint64s to peers as
// binary frames (internal/frame). One hash per key for the whole
// cluster hop, no JSON re-encoding, and every replica ingests the
// exact same uint64 — so the three ingest codecs replicate
// byte-identically. Placement from the sketch hash is safe for the
// same reason forwarding it is: all peers are required to share the
// store seed (see the package comment), so they agree on both.
//
// A key's R owners are R distinct members, so as long as fewer than R
// peers fail the request, every key has landed on at least one owner
// and the ingest is reported as a (possibly partial) success; only ≥ R
// failed peers can have lost a key entirely, and that is the one case
// routed ingest reports as an error.
type session struct {
	rt    *Router
	v     *ringView // the membership snapshot this request routes on
	store string

	received int      // keys consumed from the request body
	localBuf []uint64 // pending key hashes owned by self
	local    int      // keys applied to the local store
	pending  [][]uint64
	sent     []int  // per-member keys delivered
	lost     []int  // per-member keys abandoned after retries
	failed   []bool // member declared unreachable this request

	owners  []int  // scratch for ringView.owners (union indexes)
	scratch []int  // scratch for the per-ring owner walk
	body    []byte // scratch for frame encoding

	// act is the request's sampled span (nil when unsampled); hdr is
	// its rendered X-KNW-Trace value, computed once per session and
	// attached to every forward so peer spans join the trace.
	act *trace.Active
	hdr string
}

func (rt *Router) newSession(store string, act *trace.Active) *session {
	v := rt.view()
	n := len(v.members)
	return &session{
		rt:      rt,
		v:       v,
		store:   store,
		pending: make([][]uint64, n),
		sent:    make([]int, n),
		lost:    make([]int, n),
		failed:  make([]bool, n),
		act:     act,
		hdr:     act.HeaderValue(),
	}
}

// route consumes one batch of string keys: each is hashed once through
// the local store's pinned hash, then routed like a pre-hashed key.
func (s *session) route(keys []string) {
	for _, key := range keys {
		s.routeOne(s.rt.local.HashKey(key))
	}
	s.received += len(keys)
}

// routeHashed consumes one batch of pre-hashed keys (the binary frame
// path — the client already ran the shared hash).
func (s *session) routeHashed(keys []uint64) {
	for _, h := range keys {
		s.routeOne(h)
	}
	s.received += len(keys)
}

// routeOne appends one key hash to the buffers of its owners — the
// committed ring's R owners plus, mid-rebalance, the pending ring's
// (the two-phase cutover's union routing) — flushing any buffer that
// reaches the threshold. Ring placement is mix64(h): the sketch hash
// is already universe-folded (possibly far narrower than 64 bits), and
// ring position sorts by high bits, so the avalanche re-spread is what
// keeps placement uniform.
func (s *session) routeOne(h uint64) {
	rt := s.rt
	s.owners, s.scratch = s.v.owners(mix64(h), s.owners, s.scratch)
	for _, m := range s.owners {
		if m == s.v.self {
			s.localBuf = append(s.localBuf, h)
			if len(s.localBuf) >= rt.cfg.FlushKeys {
				s.flushLocal()
			}
			continue
		}
		s.pending[m] = append(s.pending[m], h)
		if len(s.pending[m]) >= rt.cfg.FlushKeys {
			s.flushPeer(m)
		}
	}
}

// finish flushes every remaining buffer and reports the outcome.
func (s *session) finish() error {
	s.flushLocal()
	for m := range s.pending {
		if len(s.pending[m]) > 0 {
			s.flushPeer(m)
		}
	}
	rt := s.rt
	rt.met.routedKeys.Add(uint64(s.received))
	rt.met.localKeys.Add(uint64(s.local))
	s.act.SetStore(s.store)
	s.act.AddKeys(s.received)
	return nil
}

func (s *session) flushLocal() {
	if len(s.localBuf) == 0 {
		return
	}
	if err := s.rt.local.IngestHashed(s.store, s.localBuf); err != nil {
		// The handler validated the store name before routing, so the
		// only way the local store can reject a batch is a programming
		// error; count it against self like any other replica loss.
		s.lost[s.v.self] += len(s.localBuf)
		s.failed[s.v.self] = true
		s.act.SetError(err)
		s.rt.log.Error("local ingest failed", "keys", len(s.localBuf), "err", err,
			"trace", s.act.TraceHex())
	} else {
		s.local += len(s.localBuf)
		s.sent[s.v.self] += len(s.localBuf)
	}
	s.localBuf = s.localBuf[:0]
}

// flushPeer delivers member m's pending batch; send does the work.
func (s *session) flushPeer(m int) {
	keys := s.pending[m]
	s.pending[m] = keys[:0]
	if len(keys) == 0 {
		return
	}
	s.send(m, keys)
}

// createAll mirrors the single-node create-on-empty-body contract
// cluster-wide: an ingest that carried no keys still creates the store
// on every member, so a later estimate reports 0 instead of 404 no
// matter which node it asks.
func (s *session) createAll() {
	for m := range s.v.members {
		if m == s.v.self {
			if err := s.rt.local.IngestHashed(s.store, nil); err != nil {
				s.failed[m] = true
			}
			continue
		}
		s.send(m, nil)
	}
}

// send delivers one batch (empty = store creation) to member m over
// the peer's plain /v1/ingest API (which never re-forwards), retrying
// with exponential backoff. The body is a binary frame of the key
// hashes: pre-hashed uint64s are byte-identical on every replica by
// construction — no text escaping to fumble — and the peer's zero-
// alloc frame path ingests them without touching key bytes. A peer
// that exhausts its attempts is marked failed for the rest of the
// request; its keys survive on the batch's other owners.
func (s *session) send(m int, keys []uint64) {
	rt := s.rt
	peer := s.v.members[m]
	if s.failed[m] {
		// Already unreachable this request: don't stall the stream
		// re-timing-out per batch.
		s.lost[m] += len(keys)
		rt.met.forwardErrors.With(peer).Inc()
		return
	}
	s.body = frame.AppendHeader(s.body[:0])
	s.body = frame.AppendDoc(s.body, s.store, keys)
	backoff := rt.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Attempts; attempt++ {
		if attempt > 0 {
			rt.met.forwardRetries.With(peer).Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		t0 := time.Now()
		err, permanent := rt.postBatch(peer, s.store, s.body, s.hdr)
		if err == nil {
			d := time.Since(t0)
			rt.met.forwardSeconds.With(peer).Observe(d.Seconds())
			rt.met.stageForward.Observe(d.Seconds())
			rt.met.forwardKeys.With(peer).Add(uint64(len(keys)))
			s.act.Stage("peer_forward", d)
			s.sent[m] += len(keys)
			return
		}
		lastErr = err
		if permanent {
			break
		}
	}
	s.failed[m] = true
	s.lost[m] += len(keys)
	rt.met.forwardErrors.With(peer).Inc()
	s.act.SetError(lastErr)
	rt.log.Warn("forward failed", "peer", peer, "keys", len(keys), "err", lastErr,
		"trace", s.act.TraceHex())
}

// postBatch sends one frame to a peer's single-node ingest, carrying
// the trace header when the request is sampled. The second return
// marks permanent failures (4xx: the peer is up but rejects the
// request — retrying cannot help).
func (rt *Router) postBatch(peer, storeName string, body []byte, hdr string) (err error, permanent bool) {
	u := peer + "/v1/ingest?store=" + url.QueryEscape(storeName)
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return err, false
	}
	req.Header.Set("Content-Type", httpx.FrameContentType)
	if hdr != "" {
		req.Header.Set(trace.Header, hdr)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	err = fmt.Errorf("peer answered HTTP %d: %s", resp.StatusCode, msg)
	return err, resp.StatusCode >= 400 && resp.StatusCode < 500
}

// result summarizes a finished session for the HTTP response.
type ingestResult struct {
	Store       string         `json:"store"`
	Received    int            `json:"received"`
	Replication int            `json:"replication"`
	Local       int            `json:"local"`
	Forwarded   map[string]int `json:"forwarded,omitempty"`
	Lost        map[string]int `json:"lost,omitempty"`
	Partial     bool           `json:"partial"`
}

func (s *session) result() (ingestResult, []string) {
	out := ingestResult{
		Store:       s.store,
		Received:    s.received,
		Replication: s.v.replication,
		Local:       s.local,
	}
	var failed []string
	for m := range s.sent {
		peer := s.v.members[m]
		if m != s.v.self && s.sent[m] > 0 {
			if out.Forwarded == nil {
				out.Forwarded = make(map[string]int)
			}
			out.Forwarded[peer] = s.sent[m]
		}
		if s.lost[m] > 0 {
			if out.Lost == nil {
				out.Lost = make(map[string]int)
			}
			out.Lost[peer] = s.lost[m]
		}
		if s.failed[m] {
			failed = append(failed, peer)
		}
	}
	sort.Strings(failed)
	out.Partial = len(failed) > 0
	return out, failed
}
