package cluster_test

// The membership soak: scale a live cluster 3→5→3 under continuous
// ingest and reads, and prove the merged estimates never leave the
// (ε,δ) envelope at any membership step — including the removal of a
// node that was hard-killed without draining (the crash path R=2
// exists for). This is the PR's acceptance scenario; it runs only in
// full test mode (CI's cluster-churn job), not under -short.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	knw "repro"
	"repro/cluster"
	"repro/service"
	"repro/store"
)

// startMemberNode boots one knwd service on a pre-bound listener with
// the churn-friendly cluster timings (fast retries, a short cutover
// deadline so dead-node removal does not stall the test).
func startMemberNode(t *testing.T, ln net.Listener, self string, peers []string, repl int) *node {
	t.Helper()
	srv, err := service.New(service.Config{
		Store: store.Config{
			Kind:    knw.KindConcurrentF0,
			Options: []knw.Option{knw.WithEpsilon(testEps), knw.WithSeed(1)},
		},
		Cluster: &cluster.Config{
			Self:           self,
			Peers:          peers,
			Replication:    repl,
			Backoff:        5 * time.Millisecond,
			Timeout:        5 * time.Second,
			HandoffTimeout: 3 * time.Second,
			HandoffPoll:    10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &httptest.Server{
		Listener: ln,
		Config:   &http.Server{Handler: srv.Handler()},
	}
	hs.Start()
	nd := &node{srv: srv, hs: hs, url: self}
	t.Cleanup(hs.Close)
	return nd
}

// postMembership drives POST /v1/cluster/join|leave through via and
// returns the decoded change result.
func postMembership(t *testing.T, via, action, member string) cluster.ChangeResult {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"url": member})
	resp, err := http.Post(via+"/v1/cluster/"+action, "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: HTTP %d: %s", action, member, resp.StatusCode, out)
	}
	var res cluster.ChangeResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("decoding %s result: %v (%s)", action, err, out)
	}
	return res
}

// ringEpochOf reads a node's committed epoch off GET /v1/cluster/ring.
func ringEpochOf(t *testing.T, base string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Epoch
}

// metricValue scrapes one node's /metrics for an unlabeled series.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9eE.+-]+)$`).FindSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	return v
}

// TestMembershipSoak is the scale-up/scale-down churn scenario:
//
//	epoch 1: 3 nodes, R=2, ingest begins and never stops
//	epoch 2: standby A joins through node 0 (handoff + cutover)
//	epoch 3: standby B joins — 5 nodes serving
//	epoch 4: A leaves gracefully (drains its slices first)
//	epoch 5: B is HARD-KILLED, then removed — the crash path; its
//	         keys survive because R=2 kept a second replica
//
// After every epoch the ingest gate closes (so exact truth is known)
// and every surviving node's merged estimate must sit within ε of
// truth — the paper's bound, holding through five membership states.
func TestMembershipSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("membership soak skipped in -short mode")
	}
	const storeName = "churn/users"

	// Bind every address up front: 3 stable nodes + 2 standbys.
	lns := make([]net.Listener, 5)
	urls := make([]string, 5)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	stable := urls[:3]
	nodes := make([]*node, 5)
	for i := 0; i < 3; i++ {
		nodes[i] = startMemberNode(t, lns[i], urls[i], stable, 2)
	}
	// Standbys boot alone (epoch 1 containing only themselves), exactly
	// like knwd -join does before announcing; the coordinator's prepare
	// at a higher epoch supersedes their boot descriptor.
	for i := 3; i < 5; i++ {
		nodes[i] = startMemberNode(t, lns[i], urls[i], []string{urls[i]}, 1)
	}

	// The ingester: unique keys through node 0 in 500-key batches, with
	// interleaved reads, until told to stop. The gate mutex is the
	// quiesce point — while a check holds it, every acked key is in
	// truth and nothing is in flight.
	var (
		gate  sync.Mutex
		truth int
		stop  = make(chan struct{})
		done  = make(chan struct{})
	)
	go func() {
		defer close(done)
		for batch := 0; ; batch++ {
			select {
			case <-stop:
				return
			default:
			}
			gate.Lock()
			status, out := ingestLines(t, nodes[0].url, storeName, genKeys("churn", truth, truth+500))
			if status != http.StatusOK {
				t.Errorf("ingest batch %d: HTTP %d: %s", batch, status, out)
				gate.Unlock()
				return
			}
			truth += 500
			gate.Unlock()
			if batch%4 == 0 {
				// A read mid-churn must answer 200 from any stable node.
				if _, _, status := clusterEstimate(t, nodes[batch%3].url, storeName); status != http.StatusOK {
					t.Errorf("mid-churn estimate: HTTP %d", status)
					return
				}
			}
		}
	}()

	// check closes the gate and judges every listed node's merged
	// estimate against the exact acked truth.
	check := func(label string, wantEpoch uint64, from []*node) {
		t.Helper()
		gate.Lock()
		defer gate.Unlock()
		if got := ringEpochOf(t, nodes[0].url); got != wantEpoch {
			t.Fatalf("%s: node 0 epoch %d, want %d", label, got, wantEpoch)
		}
		for i, nd := range from {
			est, _, status := clusterEstimate(t, nd.url, storeName)
			if status != http.StatusOK {
				t.Fatalf("%s: node %d estimate: HTTP %d", label, i, status)
			}
			rel := math.Abs(est.AllTime-float64(truth)) / float64(truth)
			if rel > testEps {
				t.Fatalf("%s: node %d estimate %.0f vs truth %d: rel err %.3f > ε=%v",
					label, i, est.AllTime, truth, rel, testEps)
			}
		}
	}

	// Let the baseline cluster absorb real volume first.
	for {
		gate.Lock()
		n := truth
		gate.Unlock()
		if n >= 30_000 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	check("baseline 3 nodes", 1, nodes[:3])

	// Scale up: both standbys join through node 0 while ingest runs.
	for i, standby := range []string{urls[3], urls[4]} {
		res := postMembership(t, nodes[0].url, "join", standby)
		if !res.Changed || res.Epoch != uint64(2+i) || len(res.Members) != 4+i {
			t.Fatalf("join %s: %+v", standby, res)
		}
		if len(res.Skipped) != 0 {
			t.Fatalf("healthy join skipped peers: %+v", res.Skipped)
		}
		check(fmt.Sprintf("after join %d", i+1), uint64(2+i), nodes[:4+i])
	}

	// The joiners really take traffic: each new node's local store must
	// hold a nontrivial share once the ring includes it and ingest ran.
	for {
		gate.Lock()
		n := truth
		gate.Unlock()
		if n >= 45_000 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 3; i < 5; i++ {
		local, err := nodes[i].srv.Store().Estimate(storeName)
		if err != nil {
			t.Fatalf("joined node %d has no local store: %v", i, err)
		}
		if local.AllTime == 0 {
			t.Fatalf("joined node %d never received a key", i)
		}
	}

	// Scale down, graceful: standby A drains through the leave path.
	res := postMembership(t, nodes[0].url, "leave", urls[3])
	if !res.Changed || res.Epoch != 4 || len(res.Members) != 4 {
		t.Fatalf("graceful leave: %+v", res)
	}
	check("after graceful leave", 4, []*node{nodes[0], nodes[1], nodes[2], nodes[4]})

	// Scale down, crash: standby B dies mid-flight with no drain. R=2
	// means every key it held has a live replica, so removing the
	// corpse must cost nothing but the cutover deadline.
	nodes[4].hs.Close()
	res = postMembership(t, nodes[0].url, "leave", urls[4])
	if !res.Changed || res.Epoch != 5 || len(res.Members) != 3 {
		t.Fatalf("crash leave: %+v", res)
	}
	if !containsURL(res.Skipped, urls[4]) {
		t.Fatalf("dead node's handoff not reported skipped: %+v", res)
	}
	check("after crash leave", 5, nodes[:3])

	close(stop)
	<-done

	// Final state: back to 3 members at epoch 5, gauges agree, and the
	// handoff engine demonstrably moved envelopes during the churn.
	if got := metricValue(t, nodes[0].url, "knwd_ring_epoch"); got != 5 {
		t.Fatalf("knwd_ring_epoch = %v, want 5", got)
	}
	if got := metricValue(t, nodes[0].url, "knwd_ring_members"); got != 3 {
		t.Fatalf("knwd_ring_members = %v, want 3", got)
	}
	if got := metricValue(t, nodes[0].url, "knwd_ring_rebalancing"); got != 0 {
		t.Fatalf("knwd_ring_rebalancing = %v after cutover", got)
	}
	var shipped float64
	for _, nd := range nodes[:3] {
		shipped += metricValue(t, nd.url, "knwd_handoff_stores_total")
	}
	if shipped == 0 {
		t.Fatal("no node shipped a handoff envelope during the churn")
	}
}

func containsURL(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
