package cluster

// Internal membership tests: the ring-descriptor codec, the
// adopt/commit epoch state machine, handoff target selection, and the
// fake-clock cutover edge cases (retry after a dropped peer, the
// cutover deadline, R=1 leave of the sole replica holder). These run
// inside the package so they can inject Router.now/sleepFn and inspect
// the descriptor state directly; the service-level churn scenarios
// live in membership_e2e_test.go.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	knw "repro"
	"repro/internal/binenc"
	"repro/store"
)

func newMemberStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Config{
		Kind:    knw.KindF0,
		Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newMemberRouter builds one Router for unit tests: fast retry
// schedule, and a no-op sleep so background handoff pushers to
// unreachable peers burn their attempt budget instantly instead of
// backing off for real seconds.
func newMemberRouter(t *testing.T, self string, peers []string, repl int) *Router {
	t.Helper()
	rt, err := New(Config{
		Self:           self,
		Peers:          peers,
		Replication:    repl,
		Backoff:        time.Millisecond,
		Timeout:        2 * time.Second,
		HandoffTimeout: 5 * time.Second,
		HandoffPoll:    2 * time.Millisecond,
	}, newMemberStore(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.sleepFn = func(time.Duration) {}
	t.Cleanup(rt.Close)
	return rt
}

// serveMembership mounts the Router's membership endpoints on a bare
// mux (the internal package cannot import service without a cycle) and
// serves them on the pre-bound listener.
func serveMembership(t *testing.T, rt *Router, ln net.Listener) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/ring", rt.HandleRing)
	mux.HandleFunc("/v1/cluster/join", rt.HandleJoin)
	mux.HandleFunc("/v1/cluster/leave", rt.HandleLeave)
	mux.HandleFunc("/v1/cluster/handoff", rt.HandleHandoff)
	mux.HandleFunc("/v1/cluster/handoff/status", rt.HandleHandoffStatus)
	hs := &httptest.Server{Listener: ln, Config: &http.Server{Handler: mux}}
	hs.Start()
	t.Cleanup(hs.Close)
}

// deadURL returns a loopback URL nothing listens on (bound, read, and
// closed), so dials fail fast with connection refused.
func deadURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

func mkDescriptor(epoch uint64, members ...string) *RingDescriptor {
	list := []string(nil)
	for _, m := range members {
		list = withMember(list, m)
	}
	return &RingDescriptor{Epoch: epoch, Members: list, Vnodes: 16, Replication: 1}
}

func pendingOf(rt *Router) *RingDescriptor {
	rt.memMu.Lock()
	defer rt.memMu.Unlock()
	return rt.pending
}

// TestRingDescriptorRoundTrip: Encode/Decode is the identity on
// canonical descriptors.
func TestRingDescriptorRoundTrip(t *testing.T) {
	cases := []*RingDescriptor{
		{Epoch: 1, Members: []string{"http://a:1"}, Vnodes: 1, Replication: 1},
		{Epoch: 42, Members: []string{"http://a:1", "http://b:2", "http://c:3"}, Vnodes: 64, Replication: 2},
		{Epoch: 1 << 40, Members: []string{"https://node-0.knwd.svc:7070", "https://node-1.knwd.svc:7070"}, Vnodes: 4096, Replication: 2},
	}
	for i, d := range cases {
		enc := d.Encode(nil)
		got, err := DecodeRingDescriptor(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !got.Equal(d) {
			t.Fatalf("case %d: round trip changed the descriptor: %+v vs %+v", i, got, d)
		}
		if !bytes.Equal(got.Encode(nil), enc) {
			t.Fatalf("case %d: re-encoding is not byte-stable", i)
		}
	}
}

// TestRingDescriptorValidate: every malformed shape is rejected.
func TestRingDescriptorValidate(t *testing.T) {
	ok := func() *RingDescriptor {
		return &RingDescriptor{Epoch: 3, Members: []string{"http://a:1", "http://b:2"}, Vnodes: 64, Replication: 2}
	}
	if err := ok().Validate(); err != nil {
		t.Fatalf("canonical descriptor rejected: %v", err)
	}
	cases := map[string]func(*RingDescriptor){
		"epoch zero":          func(d *RingDescriptor) { d.Epoch = 0 },
		"no members":          func(d *RingDescriptor) { d.Members = nil },
		"vnodes zero":         func(d *RingDescriptor) { d.Vnodes = 0 },
		"vnodes over cap":     func(d *RingDescriptor) { d.Vnodes = maxRingVnodes + 1 },
		"replication zero":    func(d *RingDescriptor) { d.Replication = 0 },
		"replication over N":  func(d *RingDescriptor) { d.Replication = 3 },
		"empty member":        func(d *RingDescriptor) { d.Members[0] = "" },
		"member with comma":   func(d *RingDescriptor) { d.Members[0] = "http://a:1,b" },
		"member with space":   func(d *RingDescriptor) { d.Members[0] = "http://a b:1" },
		"member with control": func(d *RingDescriptor) { d.Members[0] = "http://a\x01:1" },
		"member with DEL":     func(d *RingDescriptor) { d.Members[0] = "http://a\x7f:1" },
		"unsorted members":    func(d *RingDescriptor) { d.Members = []string{"http://b:2", "http://a:1"} },
		"duplicate members":   func(d *RingDescriptor) { d.Members = []string{"http://a:1", "http://a:1"} },
	}
	for name, mutate := range cases {
		d := ok()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, d)
		}
	}
}

// TestDecodeRingDescriptorRejects: the decoder enforces canonical form
// and exact framing, not just parseability.
func TestDecodeRingDescriptorRejects(t *testing.T) {
	good := mkDescriptor(2, "http://a:1", "http://b:2").Encode(nil)
	if _, err := DecodeRingDescriptor(good); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRingDescriptor(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeRingDescriptor(good[:len(good)-1]); err == nil {
		t.Error("truncated descriptor accepted")
	}
	if _, err := DecodeRingDescriptor(nil); err == nil {
		t.Error("empty payload accepted")
	}

	var w binenc.Writer
	w.Uvarint(ringMagic + 1)
	if _, err := DecodeRingDescriptor(w.Buf); err == nil {
		t.Error("bad magic accepted")
	}

	w = binenc.Writer{}
	w.Uvarint(ringMagic)
	w.Uvarint(ringVersion + 1)
	if _, err := DecodeRingDescriptor(w.Buf); err == nil {
		t.Error("future version accepted")
	}

	// A syntactically valid stream whose members are unsorted must be
	// bounced: non-canonical descriptors would break the byte-order
	// tie-break.
	w = binenc.Writer{}
	w.Uvarint(ringMagic)
	w.Uvarint(ringVersion)
	w.Uvarint(2) // epoch
	w.Uvarint(16)
	w.Uvarint(1)
	w.Uvarint(2)
	w.Bytes([]byte("http://b:2"))
	w.Bytes([]byte("http://a:1"))
	if _, err := DecodeRingDescriptor(w.Buf); err == nil {
		t.Error("unsorted member list accepted")
	}
}

// FuzzRingDescriptor: decoding arbitrary bytes must never panic, and
// anything the decoder accepts must re-encode to a canonical fixed
// point (encode∘decode is idempotent and Validate-clean).
func FuzzRingDescriptor(f *testing.F) {
	f.Add(mkDescriptor(1, "http://a:1").Encode(nil))
	f.Add(mkDescriptor(9, "http://a:1", "http://b:2", "http://c:3").Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0xcd, 0xae, 0xb9, 0xda, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeRingDescriptor(data)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("decoder accepted a descriptor Validate rejects: %v", verr)
		}
		enc := d.Encode(nil)
		d2, err := DecodeRingDescriptor(enc)
		if err != nil {
			t.Fatalf("re-encoded descriptor does not decode: %v", err)
		}
		if !d2.Equal(d) || !bytes.Equal(d2.Encode(nil), enc) {
			t.Fatal("encode∘decode is not a fixed point")
		}
	})
}

// TestAdoptDescriptorRules drives the prepare-phase state machine:
// stale and conflicting proposals bounce, re-announcements are
// idempotent, higher epochs supersede.
func TestAdoptDescriptorRules(t *testing.T) {
	self := "http://127.0.0.1:1"
	peer := "http://127.0.0.1:2"
	rt := newMemberRouter(t, self, []string{self, peer}, 1)

	// Re-announcing the committed descriptor is a no-op.
	cur := rt.Descriptor()
	if err := rt.AdoptDescriptor(&cur); err != nil {
		t.Fatalf("re-announce of committed descriptor: %v", err)
	}
	// A different descriptor at the committed epoch is a conflict.
	if err := rt.AdoptDescriptor(mkDescriptor(1, self)); !errors.Is(err, errEpochConflict) {
		t.Fatalf("conflicting epoch-1 proposal: got %v, want errEpochConflict", err)
	}

	d2 := mkDescriptor(2, self, peer, "http://127.0.0.1:3")
	if err := rt.AdoptDescriptor(d2); err != nil {
		t.Fatalf("adopt epoch 2: %v", err)
	}
	if v := rt.view(); v.pendingEpoch != 2 || !v.rebalancing() {
		t.Fatalf("view after adopt: pending %d, rebalancing %v", v.pendingEpoch, v.rebalancing())
	}
	// Idempotent for the descriptor already pending.
	if err := rt.AdoptDescriptor(d2); err != nil {
		t.Fatalf("re-adopt pending: %v", err)
	}
	// A higher epoch supersedes the pending one.
	d3 := mkDescriptor(3, self, peer)
	if err := rt.AdoptDescriptor(d3); err != nil {
		t.Fatalf("adopt epoch 3 over pending 2: %v", err)
	}
	if got := pendingOf(rt); !got.Equal(d3) {
		t.Fatalf("pending = %+v, want epoch-3 descriptor", got)
	}
	// Now epoch 2 is stale against the pending epoch.
	if err := rt.AdoptDescriptor(d2); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("epoch 2 under pending 3: got %v, want errStaleEpoch", err)
	}

	if err := rt.CommitEpoch(3); err != nil {
		t.Fatal(err)
	}
	// And stale against the committed epoch after the cutover.
	if err := rt.AdoptDescriptor(d2); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("epoch 2 under committed 3: got %v, want errStaleEpoch", err)
	}
}

// TestSimultaneousJoinLeaveTieBreak: a join and a leave proposed
// concurrently for the same epoch resolve to the byte-smaller
// canonical descriptor on every node, regardless of arrival order —
// the deterministic tie-break that keeps split-brain transitions
// impossible without a consensus service.
func TestSimultaneousJoinLeaveTieBreak(t *testing.T) {
	self := "http://127.0.0.1:1"
	peer := "http://127.0.0.1:2"
	join := mkDescriptor(2, self, peer, "http://127.0.0.1:3") // a join's proposal
	leave := mkDescriptor(2, self)                            // a leave's proposal
	winner, loser := join, leave
	if leave.less(join) {
		winner, loser = leave, join
	}

	// Arrival order 1: loser first, winner replaces it.
	rt := newMemberRouter(t, self, []string{self, peer}, 1)
	if err := rt.AdoptDescriptor(loser); err != nil {
		t.Fatalf("adopt first proposal: %v", err)
	}
	if err := rt.AdoptDescriptor(winner); err != nil {
		t.Fatalf("tie-break winner rejected: %v", err)
	}
	if got := pendingOf(rt); !got.Equal(winner) {
		t.Fatalf("pending after winner arrives = %+v", got)
	}
	if err := rt.AdoptDescriptor(loser); !errors.Is(err, errEpochConflict) {
		t.Fatalf("loser re-proposed: got %v, want errEpochConflict", err)
	}

	// Arrival order 2: winner first, loser bounces immediately.
	rt2 := newMemberRouter(t, self, []string{self, peer}, 1)
	if err := rt2.AdoptDescriptor(winner); err != nil {
		t.Fatalf("adopt winner: %v", err)
	}
	if err := rt2.AdoptDescriptor(loser); !errors.Is(err, errEpochConflict) {
		t.Fatalf("loser after winner: got %v, want errEpochConflict", err)
	}
	if got := pendingOf(rt2); !got.Equal(winner) {
		t.Fatalf("pending after loser bounced = %+v", got)
	}
}

// TestCommitEpochRules: commits need a matching pending descriptor,
// collapse the union view, and are idempotent at or below the
// committed epoch.
func TestCommitEpochRules(t *testing.T) {
	self := "http://127.0.0.1:1"
	rt := newMemberRouter(t, self, []string{self}, 1)

	if err := rt.CommitEpoch(2); err == nil {
		t.Fatal("commit with no pending descriptor accepted")
	}
	d2 := mkDescriptor(2, self, "http://127.0.0.1:2")
	if err := rt.AdoptDescriptor(d2); err != nil {
		t.Fatal(err)
	}
	if err := rt.CommitEpoch(3); err == nil {
		t.Fatal("commit for a different epoch than pending accepted")
	}
	if err := rt.CommitEpoch(2); err != nil {
		t.Fatal(err)
	}
	v := rt.view()
	if v.epoch != 2 || v.rebalancing() || len(v.cur.members) != 2 {
		t.Fatalf("view after commit: epoch %d, rebalancing %v, members %v",
			v.epoch, v.rebalancing(), v.cur.members)
	}
	// Idempotent: re-commit and ancient epochs are no-ops.
	if err := rt.CommitEpoch(2); err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	if err := rt.CommitEpoch(1); err != nil {
		t.Fatalf("stale commit: %v", err)
	}
	if rt.Epoch() != 2 {
		t.Fatalf("epoch moved to %d on idempotent commits", rt.Epoch())
	}
}

// TestViewImmutableDuringChange: a request that captured its ringView
// before a membership change (an in-flight gather during a join) keeps
// routing against that exact snapshot — epoch, members, and owner sets
// all frozen — while new requests see the union view.
func TestViewImmutableDuringChange(t *testing.T) {
	self := "http://127.0.0.1:1"
	peer := "http://127.0.0.1:2"
	rt := newMemberRouter(t, self, []string{self, peer}, 1)

	v := rt.view() // the in-flight request's snapshot
	var ownersBefore []int
	buf, scratch := v.owners(0xdeadbeef, nil, nil)
	ownersBefore = append(ownersBefore, buf...)

	if err := rt.AdoptDescriptor(mkDescriptor(2, self, peer, "http://127.0.0.1:3")); err != nil {
		t.Fatal(err)
	}
	if err := rt.CommitEpoch(2); err != nil {
		t.Fatal(err)
	}

	if v.epoch != 1 || v.rebalancing() || len(v.members) != 2 {
		t.Fatalf("captured view mutated: epoch %d, rebalancing %v, members %v",
			v.epoch, v.rebalancing(), v.members)
	}
	buf, _ = v.owners(0xdeadbeef, buf, scratch)
	if len(buf) != len(ownersBefore) || buf[0] != ownersBefore[0] {
		t.Fatalf("captured view's owner set changed: %v vs %v", buf, ownersBefore)
	}
	if nv := rt.view(); nv.epoch != 2 || len(nv.members) != 3 {
		t.Fatalf("new view not cut over: epoch %d, members %v", nv.epoch, nv.members)
	}
}

// TestHandoffTargets: target selection ships only to peers that gain
// ownership — never self, never nodes that already owned the data.
func TestHandoffTargets(t *testing.T) {
	a, b, c, d := "http://a:1", "http://b:1", "http://c:1", "http://d:1"
	mkView := func(self string, cur, next []string) *ringView {
		curRing, err := newRing(cur, 16)
		if err != nil {
			t.Fatal(err)
		}
		curD := &RingDescriptor{Epoch: 1, Members: curRing.members, Vnodes: 16, Replication: 1}
		if next == nil {
			return buildView(self, curD, curRing, nil, nil)
		}
		nextRing, err := newRing(next, 16)
		if err != nil {
			t.Fatal(err)
		}
		nextD := &RingDescriptor{Epoch: 2, Members: nextRing.members, Vnodes: 16, Replication: 1}
		return buildView(self, curD, curRing, nextD, nextRing)
	}

	if got := handoffTargets(mkView(a, []string{a, b, c}, nil)); got != nil {
		t.Fatalf("stable view has targets %v", got)
	}
	// A join: the only peer that can newly own anything is the joiner.
	for _, self := range []string{a, b, c} {
		for _, tgt := range handoffTargets(mkView(self, []string{a, b, c}, []string{a, b, c, d})) {
			if tgt != d {
				t.Fatalf("join targets from %s include %s, want only %s", self, tgt, d)
			}
			if tgt == self {
				t.Fatalf("node %s targets itself", self)
			}
		}
	}
	// The joiner holds nothing anyone newly owns... and is not even in
	// the committed ring, so it pushes nowhere.
	if got := handoffTargets(mkView(d, []string{a, b, c}, []string{a, b, c, d})); len(got) != 0 {
		t.Fatalf("joining node has targets %v", got)
	}
	// A leave: the departing node must ship to whoever inherits its
	// intervals (at vnodes=16 over 2 survivors, someone always does).
	got := handoffTargets(mkView(a, []string{a, b, c}, []string{b, c}))
	if len(got) == 0 {
		t.Fatal("departing node computed no handoff targets")
	}
	for _, tgt := range got {
		if tgt == a {
			t.Fatal("departing node targets itself")
		}
	}
}

// TestJoinLeaveIdempotent: membership no-ops answer the committed
// state without starting a transition.
func TestJoinLeaveIdempotent(t *testing.T) {
	self := "http://127.0.0.1:1"
	rt := newMemberRouter(t, self, []string{self}, 1)

	res, err := rt.Join(self)
	if err != nil || res.Changed || res.Epoch != 1 {
		t.Fatalf("joining an existing member: res %+v, err %v", res, err)
	}
	res, err = rt.Leave("http://127.0.0.1:9")
	if err != nil || res.Changed || res.Epoch != 1 {
		t.Fatalf("leaving a non-member: res %+v, err %v", res, err)
	}
	if _, err := rt.Leave(self); err == nil {
		t.Fatal("removing the last member accepted")
	}
	if _, err := rt.Join("not-a-url"); err == nil {
		t.Fatal("junk member URL accepted")
	}
}

// TestHandoffStatusFallback: epochs this node moved past read as done,
// epochs it never heard of do not — the rule that lets a coordinator
// poll nodes that committed early or were superseded.
func TestHandoffStatusFallback(t *testing.T) {
	self := "http://127.0.0.1:1"
	peer := deadURL(t)
	rt := newMemberRouter(t, self, []string{self, peer}, 1)

	if st := rt.HandoffStatus(1); !st.Done {
		t.Fatal("committed epoch not done")
	}
	if st := rt.HandoffStatus(5); st.Done {
		t.Fatal("unknown future epoch reported done")
	}
	// Pending epoch 2 with an unreachable target: live engine, not done.
	if err := rt.AdoptDescriptor(mkDescriptor(2, self, peer, deadURL(t))); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 superseded by pending 3 → its transfer reads done.
	if err := rt.AdoptDescriptor(mkDescriptor(3, self, peer)); err != nil {
		t.Fatal(err)
	}
	if st := rt.HandoffStatus(2); !st.Done {
		t.Fatal("superseded epoch not done")
	}
	if st := rt.HandoffStatus(4); st.Done {
		t.Fatal("epoch beyond pending reported done")
	}
}

// TestHandoffRetryAfterDroppedPeer: a push target that drops the first
// attempts is retried on the backoff schedule (observed via the
// injected sleep) until the transfer lands.
func TestHandoffRetryAfterDroppedPeer(t *testing.T) {
	var hits atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(flaky.Close)

	self := "http://127.0.0.1:1"
	st := newMemberStore(t)
	rt, err := New(Config{
		Self: self, Peers: []string{self}, Replication: 1,
		Backoff: 10 * time.Millisecond, Timeout: 2 * time.Second,
	}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	var sleepMu sync.Mutex
	var sleeps []time.Duration
	rt.sleepFn = func(d time.Duration) {
		sleepMu.Lock()
		sleeps = append(sleeps, d)
		sleepMu.Unlock()
	}
	if err := st.Ingest("t/m", []string{"k1", "k2", "k3"}); err != nil {
		t.Fatal(err)
	}

	if err := rt.AdoptDescriptor(mkDescriptor(2, self, flaky.URL)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rt.HandoffStatus(2).Done {
		if time.Now().After(deadline) {
			t.Fatalf("handoff never completed: %+v", rt.HandoffStatus(2))
		}
		time.Sleep(time.Millisecond)
	}
	tgt := rt.HandoffStatus(2).Targets[flaky.URL]
	if !tgt.Done || tgt.Attempts != 3 || tgt.LastErr != "" {
		t.Fatalf("target after retries: %+v", tgt)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("peer saw %d pushes, want 3 (2 dropped + 1 landed)", got)
	}
	sleepMu.Lock()
	defer sleepMu.Unlock()
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Fatalf("retry backoff schedule = %v, want [10ms 20ms]", sleeps)
	}
}

// TestCutoverDeadlineSkipsDeadPeer: removing an unreachable node runs
// entirely on the fake clock — the coordinator polls the dead peer's
// handoff until the injected deadline passes, then commits anyway and
// reports the skip.
func TestCutoverDeadlineSkipsDeadPeer(t *testing.T) {
	lnSelf, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + lnSelf.Addr().String()
	dead := deadURL(t)

	st := newMemberStore(t)
	rt, err := New(Config{
		Self: self, Peers: []string{self, dead}, Replication: 1,
		Backoff: 20 * time.Millisecond, Timeout: time.Second,
		HandoffTimeout: time.Second, HandoffPoll: 100 * time.Millisecond,
	}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	serveMembership(t, rt, lnSelf)

	// Fake clock: now() returns the injected time, every sleep advances
	// it. A real 1s handoff timeout with 100ms polls would wall-block;
	// here the whole cutover window elapses in microseconds.
	var clockMu sync.Mutex
	clock := time.Unix(1000, 0)
	var slept atomic.Int64
	rt.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	rt.sleepFn = func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
		slept.Add(int64(d))
	}

	start := time.Now()
	res, err := rt.Leave(dead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed || res.Epoch != 2 || len(res.Members) != 1 {
		t.Fatalf("leave of dead peer: %+v", res)
	}
	if !containsStr(res.Skipped, dead) {
		t.Fatalf("dead peer not reported skipped: %+v", res)
	}
	if rt.Epoch() != 2 || rt.view().rebalancing() {
		t.Fatalf("cutover incomplete: epoch %d, rebalancing %v", rt.Epoch(), rt.view().rebalancing())
	}
	// The deadline was honored on the fake clock (≥ the handoff timeout
	// of virtual waiting), and honoring it did not wall-block.
	if slept.Load() < int64(time.Second) {
		t.Fatalf("virtual sleep %v never reached the 1s handoff timeout", time.Duration(slept.Load()))
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("fake-clock cutover took %v of wall time", wall)
	}
}

// TestLeaveSoleReplicaHandsOff: at R=1 the departing node is the only
// holder of its slices — leaving must move them, not drop them. Two
// real routers over loopback HTTP: all keys live on A, A drains, B
// must answer the full count afterward.
func TestLeaveSoleReplicaHandsOff(t *testing.T) {
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	stores := make([]*store.Store, 2)
	routers := make([]*Router, 2)
	for i := range routers {
		stores[i] = newMemberStore(t)
		rt, err := New(Config{
			Self: urls[i], Peers: urls, Replication: 1,
			Backoff: 2 * time.Millisecond, Timeout: 2 * time.Second,
			HandoffTimeout: 5 * time.Second, HandoffPoll: 2 * time.Millisecond,
		}, stores[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		routers[i] = rt
		serveMembership(t, rt, lns[i])
	}

	// Every key goes straight into A's local store: A is the sole
	// holder of all 5000, B has nothing.
	const truth = 5000
	keys := make([]string, truth)
	for i := range keys {
		keys[i] = fmt.Sprintf("sole-%d", i)
	}
	if err := stores[0].Ingest("acme/users", keys); err != nil {
		t.Fatal(err)
	}

	res, err := routers[0].Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed || res.Epoch != 2 || len(res.Members) != 1 || res.Members[0] != urls[1] {
		t.Fatalf("drain result: %+v", res)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("healthy drain skipped peers: %+v", res.Skipped)
	}

	// Both sides cut over, and the departed node knows it is out.
	if routers[1].Epoch() != 2 {
		t.Fatalf("survivor epoch = %d, want 2", routers[1].Epoch())
	}
	if v := routers[0].view(); v.self != -1 {
		t.Fatalf("departed node still thinks it is member %d", v.self)
	}

	// The data moved: B's local sketch now covers all 5000 keys. The
	// handoff shipped A's envelope, so B's estimate carries the same
	// (ε,δ) guarantee the sketch always had — no loss step in between.
	est, err := stores[1].Estimate("acme/users")
	if err != nil {
		t.Fatalf("survivor store after drain: %v", err)
	}
	if rel := abs64(est.AllTime-truth) / truth; rel > 0.10 {
		t.Fatalf("survivor estimate %.0f vs truth %d: rel err %.3f (handoff lost data)",
			est.AllTime, truth, rel)
	}
}

// TestDrainKeepsRingReplication is the regression test for a silent
// replication downgrade: changeMembership used to stamp the new
// descriptor with the COORDINATOR's configured replication. A node
// that boots alone (replication 1 in its config, like knwd -join)
// coordinates its own removal on drain — and used to hand the
// survivors an R=1 ring. Replication is ring policy: it must carry
// forward from the committed descriptor.
func TestDrainKeepsRingReplication(t *testing.T) {
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	stores := make([]*store.Store, 3)
	routers := make([]*Router, 3)
	for i := range routers {
		stores[i] = newMemberStore(t)
		cfg := Config{
			Self: urls[i], Peers: urls[:2], Replication: 2,
			Backoff: 2 * time.Millisecond, Timeout: 2 * time.Second,
			HandoffTimeout: 5 * time.Second, HandoffPoll: 2 * time.Millisecond,
		}
		if i == 2 { // the joiner boots alone, exactly like knwd -join
			cfg.Peers, cfg.Replication = urls[2:], 1
		}
		rt, err := New(cfg, stores[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		routers[i] = rt
		serveMembership(t, rt, lns[i])
	}

	res, err := routers[0].Join(urls[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 || res.Replication != 2 {
		t.Fatalf("join result: %+v, want epoch 2 replication 2", res)
	}

	// The joiner drains itself back out. Its config says replication 1,
	// but the ring it leaves behind must stay R=2.
	res, err = routers[2].Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed || res.Epoch != 3 || res.Replication != 2 {
		t.Fatalf("drain result: %+v, want epoch 3 replication 2", res)
	}
	for _, i := range []int{0, 1} {
		if d := routers[i].Descriptor(); d.Replication != 2 {
			t.Fatalf("survivor %d descriptor: %+v, want replication 2", i, d)
		}
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
