package cluster_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/httpx"
	"repro/store"
)

// TestClusterCodecsReplicateIdentically is the cross-codec replication
// check: three seed-identical clusters (R=N, so every node owns every
// key) ingest the same key stream through routed ingest — one cluster
// as newline text, one as NDJSON, one as pre-hashed binary frames —
// and every node of every cluster must end with the byte-identical
// sketch snapshot. The coordinator hashes string keys into exactly the
// uint64s the binary frame carries, and routes per key with
// deterministic flush boundaries, so the store-call sequence each
// replica sees is a function of the key stream alone, regardless of
// which codec delivered it. Background epoch drains are disabled so a
// mid-ingest drain can never hold a delta slot busy and perturb the
// slot round-robin — byte-identity needs the deterministic regime
// (estimates are exact under any interleaving either way).
func TestClusterCodecsReplicateIdentically(t *testing.T) {
	const (
		name  = "codec/t"
		total = 2000
		step  = 400 // below the service and forwarder batch floors
	)
	var want []byte // node 0 of the newline cluster sets the reference

	for _, codec := range []string{"newline", "json", "frame"} {
		nodes := startCluster(t, 3, 3, store.Window{},
			func(c *store.Config) { c.EpochInterval = -1 })
		hasher := nodes[0].srv.Store().HashKey
		for lo := 0; lo < total; lo += step {
			keys := genKeys("codec", lo, lo+step)
			var (
				ct   string
				body []byte
			)
			switch codec {
			case "newline":
				ct = "text/plain"
				body = []byte(strings.Join(keys, "\n") + "\n")
			case "json":
				ct = "application/json"
				body, _ = json.Marshal(map[string]any{"store": name, "keys": keys})
			case "frame":
				ct = httpx.FrameContentType
				hashed := make([]uint64, len(keys))
				for i, k := range keys {
					hashed[i] = hasher(k)
				}
				body = frame.AppendDoc(frame.AppendHeader(nil), name, hashed)
			}
			// Rotate the entry node per request: replication must make the
			// coordinator choice invisible.
			node := nodes[(lo/step)%len(nodes)]
			resp, err := http.Post(node.url+"/v1/cluster/ingest?store="+name, ct, bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s request %d: HTTP %d: %s", codec, lo/step, resp.StatusCode, out)
			}
		}
		for i, n := range nodes {
			got, err := n.srv.Store().Snapshot(name, nil)
			if err != nil {
				t.Fatalf("%s node %d snapshot: %v", codec, i, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s node %d snapshot diverged from newline node 0", codec, i)
			}
		}
	}
}
