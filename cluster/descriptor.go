package cluster

import (
	"fmt"
	"sort"

	"repro/internal/binenc"
)

// The ring descriptor is the unit of membership agreement: one
// epoch-numbered, canonically-encoded statement of who the members
// are and how the ring over them is shaped. Dynamic membership is a
// sequence of descriptors — a node's committed descriptor plus (during
// a rebalance) the pending one it is cutting over to — and two nodes
// that hold the same descriptor compute identical vnode ownership with
// no further coordination, exactly as the static peer list did.
//
// Wire form ("KNWM", the POST /v1/cluster/ring body):
//
//	uvarint ringMagic ("KNWM")
//	uvarint version (1)
//	uvarint epoch
//	uvarint vnodes
//	uvarint replication
//	uvarint member count
//	bytes   member url, ×count (strictly ascending)
//
// Decode enforces Validate, so every descriptor that exists in memory
// is canonical: members sorted and unique, bounds sane. That makes
// byte-wise comparison of encodings a total order on descriptors —
// the deterministic tie-break for concurrent proposals at one epoch.
const (
	ringMagic   = 0x4b4e574d // "KNWM"
	ringVersion = 1
	// maxRingMembers bounds a descriptor's member list; far above any
	// deployment this codebase targets, low enough to reject garbage.
	maxRingMembers = 1024
	// maxMemberURL bounds one member URL's byte length.
	maxMemberURL = 512
	// maxRingVnodes bounds the per-member vnode count.
	maxRingVnodes = 4096
)

// RingDescriptor is one versioned membership statement.
type RingDescriptor struct {
	Epoch       uint64   `json:"epoch"`
	Members     []string `json:"members"` // sorted, unique base URLs
	Vnodes      int      `json:"vnodes"`
	Replication int      `json:"replication"`
}

// Validate checks bounds and canonical form (sorted, unique, sane
// member URLs). Member URLs may not contain commas, whitespace, or
// control bytes: they travel in comma-separated headers
// (X-KNW-Partial) and structured logs.
func (d *RingDescriptor) Validate() error {
	if d.Epoch == 0 {
		return fmt.Errorf("cluster: ring descriptor epoch 0")
	}
	if n := len(d.Members); n < 1 || n > maxRingMembers {
		return fmt.Errorf("cluster: ring descriptor has %d members (want 1..%d)", n, maxRingMembers)
	}
	if d.Vnodes < 1 || d.Vnodes > maxRingVnodes {
		return fmt.Errorf("cluster: ring descriptor vnodes %d outside [1, %d]", d.Vnodes, maxRingVnodes)
	}
	if d.Replication < 1 || d.Replication > len(d.Members) {
		return fmt.Errorf("cluster: ring descriptor replication %d outside [1, %d]", d.Replication, len(d.Members))
	}
	for i, m := range d.Members {
		if len(m) == 0 || len(m) > maxMemberURL {
			return fmt.Errorf("cluster: ring descriptor member %d has bad length %d", i, len(m))
		}
		for j := 0; j < len(m); j++ {
			if m[j] <= ' ' || m[j] == ',' || m[j] == 0x7f {
				return fmt.Errorf("cluster: ring descriptor member %q contains byte %#x", m, m[j])
			}
		}
		if i > 0 && d.Members[i-1] >= m {
			return fmt.Errorf("cluster: ring descriptor members not strictly sorted at %d (%q >= %q)",
				i, d.Members[i-1], m)
		}
	}
	return nil
}

// Encode appends the canonical wire form to buf (which may be nil).
func (d *RingDescriptor) Encode(buf []byte) []byte {
	w := binenc.Writer{Buf: buf}
	w.Uvarint(ringMagic)
	w.Uvarint(ringVersion)
	w.Uvarint(d.Epoch)
	w.Uvarint(uint64(d.Vnodes))
	w.Uvarint(uint64(d.Replication))
	w.Uvarint(uint64(len(d.Members)))
	for _, m := range d.Members {
		w.Bytes([]byte(m))
	}
	return w.Buf
}

// DecodeRingDescriptor parses and validates one KNWM descriptor,
// rejecting trailing bytes — the exact inverse of Encode.
func DecodeRingDescriptor(data []byte) (*RingDescriptor, error) {
	r := binenc.Reader{Buf: data}
	r.Expect(ringMagic, "ring descriptor magic")
	if v := r.Uvarint(); r.Err() == nil && v != ringVersion {
		return nil, fmt.Errorf("cluster: unsupported ring descriptor version %d", v)
	}
	d := &RingDescriptor{Epoch: r.Uvarint()}
	d.Vnodes = int(r.Uvarint())
	d.Replication = int(r.Uvarint())
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cluster: bad ring descriptor header: %w", err)
	}
	if count < 1 || count > maxRingMembers {
		return nil, fmt.Errorf("cluster: ring descriptor claims %d members", count)
	}
	d.Members = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		d.Members = append(d.Members, string(r.BytesView()))
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cluster: bad ring descriptor member: %w", err)
	}
	if len(r.Buf) != 0 {
		return nil, fmt.Errorf("cluster: ring descriptor has %d trailing bytes", len(r.Buf))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Equal reports descriptor identity (canonical forms compare
// field-wise).
func (d *RingDescriptor) Equal(o *RingDescriptor) bool {
	if d.Epoch != o.Epoch || d.Vnodes != o.Vnodes || d.Replication != o.Replication ||
		len(d.Members) != len(o.Members) {
		return false
	}
	for i := range d.Members {
		if d.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// less orders two descriptors at the same epoch deterministically (the
// concurrent-proposal tie-break): byte-wise order of the canonical
// encodings. Every node that sees both proposals keeps the same one.
func (d *RingDescriptor) less(o *RingDescriptor) bool {
	a, b := d.Encode(nil), o.Encode(nil)
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// hasMember reports whether url is in the (sorted) member list.
func (d *RingDescriptor) hasMember(url string) bool {
	i := sort.SearchStrings(d.Members, url)
	return i < len(d.Members) && d.Members[i] == url
}

// withMember returns d's member list with url added (a no-op when
// already present), sorted.
func withMember(members []string, url string) []string {
	out := append(append([]string(nil), members...), url)
	sort.Strings(out)
	n := 0
	for i, m := range out {
		if i == 0 || m != out[n-1] {
			out[n] = m
			n++
		}
	}
	return out[:n]
}

// withoutMember returns the member list with url removed.
func withoutMember(members []string, url string) []string {
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m != url {
			out = append(out, m)
		}
	}
	return out
}
