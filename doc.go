// Package knw is a production-quality Go implementation of
//
//	Kane, Nelson, Woodruff.
//	"An Optimal Algorithm for the Distinct Elements Problem."
//	PODS 2010. doi:10.1145/1807085.1807094
//
// the first algorithm to estimate the number of distinct elements (F0)
// in a data stream using the optimal O(ε⁻² + log n) bits of space with
// O(1) worst-case update and reporting times, together with the
// paper's near-optimal L0 (Hamming norm) estimator for streams with
// deletions.
//
// # Quick start
//
//	sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1))
//	for _, ip := range packets {
//		sk.Add(ip)
//	}
//	fmt.Printf("≈%.0f distinct\n", sk.Estimate())
//
// For turnstile streams (inserts and deletes):
//
//	hs := knw.NewL0(knw.WithEpsilon(0.1), knw.WithSeed(1))
//	hs.Update(key, +3)
//	hs.Update(key, -3) // fully deleted: no longer counts
//	fmt.Printf("≈%.0f nonzero coordinates\n", hs.Estimate())
//
// # Batched and concurrent ingestion
//
// Every sketch implements Estimator (see sketch.go): AddBatch (and
// UpdateBatch on the turnstile types) ingests keys in bulk with
// per-call overhead amortized, producing state byte-identical to
// sequential Add. For shared writers, ConcurrentF0 and ConcurrentL0
// route batches to same-seed shards with one lock acquisition per
// shard per batch and merge shards into a pooled scratch sketch on
// Estimate; see examples/pipeline for the full ingest → estimate →
// checkpoint/restore loop:
//
//	c := knw.NewConcurrentF0(8, knw.WithEpsilon(0.05))
//	go func() { c.AddBatch(keys) }() // many goroutines
//	fmt.Printf("≈%.0f distinct\n", c.Estimate())
//
// Same-seed sketches Merge for scale-out, and MarshalBinary /
// UnmarshalBinary checkpoint any sketch — including the sharded
// wrappers — in a versioned wire format.
//
// # Typed keys, kinds, and the envelope
//
// Keyed[K] is the typed front door: it hashes string, []byte, or
// uint64 keys into the wrapped sketch's universe with a documented
// seeded hash (see hasher.go) and forwards through the batch pipeline:
//
//	users := knw.NewKeyed[string](knw.NewF0(knw.WithSeed(1)))
//	users.AddBatch([]string{"alice", "bob", "carol"})
//
// Kind names every implementation — the four sketch types plus the
// internal/baseline comparators — and New(kind, opts...) is the
// uniform factory. Every MarshalBinary wraps its payload in a
// self-describing envelope (kind tag + payload), and Open(data)
// restores the right concrete type from it; pre-envelope payloads
// still load. See README.md for the kind table and migration notes.
//
// # Set algebra across sketches
//
// Because same-seed sketches merge exactly, a merged clone is an
// honest sketch of the union stream — and inclusion–exclusion derives
// the rest. Union, Intersection, Jaccard, Difference, and NewSetStats
// (setalgebra.go) answer set questions across 2–8 sketches without
// touching the originals; Hamming merges a sign-negated clone (L0
// kinds only) so matching counts cancel linearly:
//
//	st, _ := knw.NewSetStats(pageViewsA, pageViewsB)
//	fmt.Printf("J ≈ %.2f, |∩| ≈ %.0f ± %.0f\n",
//		st.Jaccard, st.Intersection, st.IntersectionErrBound)
//
// The union keeps the plain (ε, δ) guarantee; derived quantities
// compound it — intersection error is bounded by ε·(|A|+|B|+|A∪B|)
// with probability ≥ 1−3δ, scaling with the union magnitudes rather
// than the intersection. SetStats reports that budget alongside the
// estimates; DESIGN.md §21 has the derivations and limits. The knwd
// service exposes the same algebra as GET /v1/query and per-bucket
// window time-series as GET /v1/series.
//
// # The knwd service
//
// The store and service packages (plus cmd/knwd) run the library as a
// multi-tenant daemon: named sketches created on first write, optional
// time-bucketed window rotation, an HTTP ingest/estimate/merge/
// snapshot API, and atomic envelope-backed checkpointing. MergeInto
// and Compatible lift merging to the Estimator interface for such
// callers, with kind/settings mismatches reported via the typed
// ErrIncompatible. See README.md ("Running knwd") and DESIGN.md §15.
//
// # What's inside
//
// The top-level F0 and L0 types run a median over independent copies
// of the paper's single-shot sketches (internal/core and
// internal/l0core), as Section 1 prescribes for boosting the constant
// success probability to 1 − δ. The substrates — k-wise independent
// hashing over F_{2^61−1}, tabulation hashing, variable-bit-length
// arrays, the Appendix A.2 logarithm table, and the balls-and-bins
// estimator theory of Section 2 — live in internal/ packages, each
// individually tested against the paper's lemmas. See DESIGN.md for
// the full inventory and EXPERIMENTS.md for measured-vs-paper results
// for every figure, table, and theorem.
package knw
