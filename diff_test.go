package knw

import (
	"math"
	"testing"
)

func TestHammingDiffBasic(t *testing.T) {
	opts := []Option{WithSeed(70), WithEpsilon(0.1), WithCopies(1)}
	a, b := NewL0(opts...), NewL0(opts...)
	// 50k shared keys with equal counts, 800 extra in a, 400 extra in b.
	for i := 0; i < 50_000; i++ {
		k := uint64(i)*0x9e3779b97f4a7c15 + 1
		a.Update(k, 2)
		b.Update(k, 2)
	}
	for i := 0; i < 800; i++ {
		a.Update(uint64(i)*7919+3, 1)
	}
	for i := 0; i < 400; i++ {
		b.Update(uint64(i)*104729+5, 1)
	}
	got, err := HammingDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1200)/1200 > 0.25 {
		t.Errorf("diff %v want ~1200", got)
	}
	// HammingDiff must not modify its arguments.
	av, _ := a.EstimateErr()
	if math.Abs(av-50_800)/50_800 > 0.25 {
		t.Errorf("a was modified: %v", av)
	}
}

func TestHammingDiffIdenticalStreams(t *testing.T) {
	opts := []Option{WithSeed(71), WithEpsilon(0.2), WithCopies(1)}
	a, b := NewL0(opts...), NewL0(opts...)
	for i := 0; i < 20_000; i++ {
		k := uint64(i)*2654435761 + 1
		v := int64(i%7 + 1)
		a.Update(k, v)
		b.Update(k, v)
	}
	got, err := HammingDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("identical streams diff %v want 0", got)
	}
}

func TestHammingDiffCountMismatch(t *testing.T) {
	// Same key set but different multiplicities: every key differs.
	opts := []Option{WithSeed(72), WithEpsilon(0.2), WithCopies(1)}
	a, b := NewL0(opts...), NewL0(opts...)
	for i := 0; i < 80; i++ {
		k := uint64(i) + 1
		a.Update(k, 1)
		b.Update(k, 2)
	}
	got, err := HammingDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 80 {
		t.Errorf("diff %v want exactly 80 (small regime)", got)
	}
}

func TestHammingDiffOrderIndependent(t *testing.T) {
	// The same multiset streamed in different orders must diff to zero.
	opts := []Option{WithSeed(73), WithEpsilon(0.2), WithCopies(1)}
	a, b := NewL0(opts...), NewL0(opts...)
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	for _, k := range keys {
		a.Update(k, 1)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Update(keys[i], 1)
	}
	got, err := HammingDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("reordered identical streams diff %v want 0", got)
	}
}

func TestMergeNegatedConfigMismatch(t *testing.T) {
	a := NewL0(WithSeed(74), WithCopies(1), WithEpsilon(0.3))
	b := NewL0(WithSeed(75), WithCopies(1), WithEpsilon(0.3))
	if err := a.MergeNegated(b); err == nil {
		t.Error("different seeds must be rejected")
	}
	if _, err := HammingDiff(a, b); err == nil {
		t.Error("HammingDiff must reject mismatched sketches")
	}
}

func TestMergeNegatedSelfInverse(t *testing.T) {
	// x − x = 0: negated-merging a sketch with a copy of itself must
	// zero every counter.
	opts := []Option{WithSeed(76), WithEpsilon(0.2), WithCopies(1)}
	a := NewL0(opts...)
	for i := 0; i < 30_000; i++ {
		a.Update(uint64(i)*31+1, int64(i%5+1))
	}
	data, _ := a.MarshalBinary()
	var clone L0
	if err := clone.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := a.MergeNegated(&clone); err != nil {
		t.Fatal(err)
	}
	got, err := a.EstimateErr()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("x - x should be 0, got %v", got)
	}
}
