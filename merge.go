package knw

import (
	"errors"
	"fmt"
)

// ErrIncompatible is wrapped by every merge/restore failure that stems
// from a kind, configuration, or seed mismatch — as opposed to corrupt
// bytes. Callers holding only Estimator interfaces (the store and
// service layers, which accept foreign envelopes over the network) test
// for it with errors.Is to distinguish "this peer is configured
// differently" (a client error, HTTP 409) from "this payload is
// garbage" (HTTP 400).
var ErrIncompatible = errors.New("knw: incompatible sketch configuration")

// errIncompatible builds a mismatch error carrying detail text.
func errIncompatible(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrIncompatible)...)
}

// Compatible reports whether src can be merged into dst: both must be
// the same concrete wire type with equal options and seed (so their
// hash functions coincide). It returns nil on success and an error
// wrapping ErrIncompatible otherwise. It never mutates either sketch.
func Compatible(dst, src Estimator) error {
	switch d := dst.(type) {
	case *F0:
		s, ok := src.(*F0)
		if !ok {
			return errKindMismatch(dst, src)
		}
		if d.cfg != s.cfg {
			return errCfgMismatch(dst)
		}
	case *L0:
		s, ok := src.(*L0)
		if !ok {
			return errKindMismatch(dst, src)
		}
		if d.cfg != s.cfg {
			return errCfgMismatch(dst)
		}
	case *ConcurrentF0:
		s, ok := src.(*ConcurrentF0)
		if !ok {
			return errKindMismatch(dst, src)
		}
		if d.cfg != s.cfg {
			return errCfgMismatch(dst)
		}
	case *ConcurrentL0:
		s, ok := src.(*ConcurrentL0)
		if !ok {
			return errKindMismatch(dst, src)
		}
		if d.cfg != s.cfg {
			return errCfgMismatch(dst)
		}
	default:
		return errIncompatible("knw: %s does not support merging", dst.Name())
	}
	return nil
}

// MergeInto folds src into dst through the Estimator interface,
// dispatching to the concrete Merge of the four wire types. It is the
// interface-level counterpart of the typed Merge methods, for callers
// (stores, services) that hold sketches behind Estimator — e.g. after
// knw.Open on a peer's envelope. Mismatched kinds or configurations
// return an error wrapping ErrIncompatible; nothing panics on foreign
// payloads.
func MergeInto(dst, src Estimator) error {
	if err := Compatible(dst, src); err != nil {
		return err
	}
	switch d := dst.(type) {
	case *F0:
		return d.Merge(src.(*F0))
	case *L0:
		return d.Merge(src.(*L0))
	case *ConcurrentF0:
		return d.Merge(src.(*ConcurrentF0))
	case *ConcurrentL0:
		return d.Merge(src.(*ConcurrentL0))
	}
	return errIncompatible("knw: %s does not support merging", dst.Name())
}

func errKindMismatch(dst, src Estimator) error {
	return errIncompatible("knw: cannot merge a %s into a %s", kindOf(src), kindOf(dst))
}

func errCfgMismatch(dst Estimator) error {
	return errIncompatible("knw: cannot merge %s sketches with different configurations", kindOf(dst))
}

// kindOf names an estimator for error messages: the registry kind when
// the sketch has one, its Name() otherwise.
func kindOf(e Estimator) string {
	if k, ok := e.(interface{ Kind() Kind }); ok {
		return k.Kind().String()
	}
	return e.Name()
}
