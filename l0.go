package knw

import (
	"math"
	"sort"

	"repro/internal/l0core"
)

// L0 estimates the Hamming norm |{i : x_i ≠ 0}| of a vector maintained
// by a turnstile stream of (key, delta) updates, with relative error ε
// and failure probability δ — the paper's Section 4 algorithm
// (Theorem 10): O(ε⁻²·log n·(log 1/ε + loglog mM)) bits per copy, O(1)
// update and reporting times, and no x_i ≥ 0 restriction.
//
// An L0 is not safe for concurrent use. Sketches with the same options
// and seed are mergeable (all counters are linear over F_p), which
// also means a merged sketch of streams A and +(−1)·B estimates the
// number of coordinates where A and B differ — the paper's data
// cleaning application.
type L0 struct {
	cfg    settings
	copies []*l0core.Sketch
}

// NewL0 builds a sketch. With no options: ε = 0.05, δ = 0.05, 32-bit
// universe, 32-bit frequency bound, time-seeded randomness.
func NewL0(opts ...Option) *L0 {
	cfg := defaultSettings()
	cfg.resolve(opts)
	return newL0From(cfg)
}

// newL0From builds a sketch from resolved settings (shared by NewL0
// and UnmarshalBinary, which must reproduce the exact hash draws).
func newL0From(cfg settings) *L0 {
	cfg.takeShards() // construction-only hint; keep stored cfgs comparable
	l := &L0{cfg: cfg}
	rng := cfg.rng()
	lc := l0core.Config{
		LogN:      cfg.logN,
		K:         cfg.k(),
		LogMM:     cfg.logMM,
		Reference: cfg.reference,
	}
	for i := 0; i < cfg.copies; i++ {
		l.copies = append(l.copies, l0core.NewSketch(lc, rng))
	}
	return l
}

// Update applies x_key ← x_key + delta. Deltas of either sign are
// supported; a zero delta is a no-op.
func (l *L0) Update(key uint64, delta int64) {
	for _, s := range l.copies {
		s.Update(key, delta)
	}
}

// Add is shorthand for Update(key, 1), giving L0 the same insert-only
// interface as F0 (an F0 stream is the special case of L0 where every
// update is +1, as the paper notes).
func (l *L0) Add(key uint64) { l.Update(key, 1) }

// UpdateBatch applies the updates as if Update had been called on each
// (key, delta) pair in order, with per-call overhead amortized across
// the batch. A nil deltas slice means every delta is +1; otherwise
// len(deltas) must equal len(keys).
func (l *L0) UpdateBatch(keys []uint64, deltas []int64) {
	for _, s := range l.copies {
		s.UpdateBatch(keys, deltas)
	}
}

// AddBatch records the keys with delta +1 each.
func (l *L0) AddBatch(keys []uint64) { l.UpdateBatch(keys, nil) }

// AddString records a string element via the default seeded hasher.
//
// Deprecated: wrap the sketch in NewKeyed[string] instead, which
// shares this hash, adds batching and typed turnstile updates, and
// documents the collision semantics (hasher.go).
func (l *L0) AddString(s string) { l.Add(NewHasher[string](l.cfg.seed, l.cfg.logN).Hash(s)) }

// AddBytes records a byte-slice element via the default seeded hasher.
//
// Deprecated: wrap the sketch in NewKeyed[[]byte] instead.
func (l *L0) AddBytes(b []byte) { l.Add(NewHasher[[]byte](l.cfg.seed, l.cfg.logN).Hash(b)) }

// Reset returns the sketch to its freshly constructed state while
// keeping its configuration, seed, and hash draws (see F0.Reset).
func (l *L0) Reset() {
	for _, s := range l.copies {
		s.Reset()
	}
}

// Estimate returns the median estimate across copies (NaN if every
// copy errored — see EstimateErr).
func (l *L0) Estimate() float64 {
	v, err := l.EstimateErr()
	if err != nil {
		return math.NaN()
	}
	return v
}

// EstimateErr is Estimate with an explicit error.
func (l *L0) EstimateErr() (float64, error) {
	vals := make([]float64, 0, len(l.copies))
	var lastErr error
	for _, s := range l.copies {
		v, err := s.Estimate()
		if err != nil {
			lastErr = err
			continue
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0, lastErr
	}
	sort.Float64s(vals)
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m], nil
	}
	return (vals[m-1] + vals[m]) / 2, nil
}

// Merge folds other into l (same options and seed required). The
// merged sketch estimates the L0 of the sum of the two streams'
// frequency vectors.
func (l *L0) Merge(other *L0) error {
	if l.cfg != other.cfg {
		return errCfgMismatch(l)
	}
	for i := range l.copies {
		l.copies[i].MergeFrom(other.copies[i])
	}
	return nil
}

// Copies returns the number of independent copies.
func (l *L0) Copies() int { return len(l.copies) }

// Seed returns the seed the sketch's hash functions were drawn from
// (see F0.Seed).
func (l *L0) Seed() int64 { return l.cfg.seed }

// UniverseBits returns log2 of the configured key universe.
func (l *L0) UniverseBits() uint { return l.cfg.logN }

// Epsilon returns the configured target relative standard error ε
// (see F0.Epsilon).
func (l *L0) Epsilon() float64 { return l.cfg.eps }

// Kind returns KindL0 (the registry/envelope tag).
func (l *L0) Kind() Kind { return KindL0 }

// SpaceBits returns the total accounted state across copies.
func (l *L0) SpaceBits() int {
	total := 0
	for _, s := range l.copies {
		total += s.SpaceBits()
	}
	return total
}

// Name labels the sketch in experiment tables.
func (l *L0) Name() string { return "KNW-L0" }
