package knw

import "sync"

// Keyed is the typed front door to any Estimator: it hashes caller
// keys (strings, byte slices, or pre-hashed uint64s) into the wrapped
// sketch's key universe and forwards through the batch pipeline, so
// callers stop hand-rolling string→uint64 shims per sketch type.
//
//	sk := knw.NewF0(knw.WithSeed(1))
//	users := knw.NewKeyed[string](sk)
//	users.Add("alice")
//	users.AddBatch([]string{"bob", "carol"})
//	fmt.Println(users.Estimate())
//
// A Keyed is exactly as goroutine-safe as the estimator it wraps: a
// Keyed around a ConcurrentF0/ConcurrentL0 is safe for concurrent use
// (the batch scratch is pooled, not shared), one around F0/L0 is not.
//
// The default hasher is the documented seeded hash of hasher.go,
// picking up the wrapped sketch's seed and universe width so that two
// Keyed sketches over same-seed sketches hash identically — which is
// what makes their underlying sketches mergeable and their
// checkpoints interchangeable. Supplying WithKeyHasher replaces it;
// the replacement then carries the same burden (determinism, universe
// fold) itself.
type Keyed[K Key] struct {
	est    Estimator
	turn   TurnstileEstimator // non-nil iff est supports deletions
	hasher Hasher[K]

	// scratch pools hash buffers for AddBatch/UpdateBatch so the
	// batched path stays allocation-free in steady state and safe for
	// concurrent use when the wrapped estimator is.
	scratch sync.Pool
}

// KeyedOption configures a Keyed estimator.
type KeyedOption[K Key] func(*Keyed[K])

// WithKeyHasher replaces the default hasher. The hasher must be
// deterministic and fold into the wrapped sketch's universe; see
// Hasher.
func WithKeyHasher[K Key](h Hasher[K]) KeyedOption[K] {
	return func(k *Keyed[K]) { k.hasher = h }
}

// seeded and universeSized are the optional introspection interfaces
// the default hasher derives its parameters from. All sketches in this
// package implement both; foreign estimators fall back to seed 0 and
// the full 64-bit universe.
type seeded interface{ Seed() int64 }
type universeSized interface{ UniverseBits() uint }

// NewKeyed wraps est with a typed-key front-end. If est also
// implements TurnstileEstimator (L0, ConcurrentL0), the returned Keyed
// supports Update/UpdateBatch; otherwise those methods panic.
func NewKeyed[K Key](est Estimator, opts ...KeyedOption[K]) *Keyed[K] {
	k := &Keyed[K]{est: est}
	k.turn, _ = est.(TurnstileEstimator)
	for _, o := range opts {
		o(k)
	}
	if k.hasher == nil {
		var seed int64
		bits := uint(64)
		if s, ok := est.(seeded); ok {
			seed = s.Seed()
		}
		if u, ok := est.(universeSized); ok {
			bits = u.UniverseBits()
		}
		k.hasher = NewHasher[K](seed, bits)
	}
	k.scratch.New = func() any { return new([]uint64) }
	return k
}

// Add records one element.
func (k *Keyed[K]) Add(key K) { k.est.Add(k.hasher.Hash(key)) }

// AddBatch records the keys as if Add had been called on each in
// order, hashing the whole batch up front and feeding the wrapped
// estimator's batch path (one shard-lock acquisition per shard per
// batch on the concurrent wrappers, pipelined hash evaluation on the
// cores).
func (k *Keyed[K]) AddBatch(keys []K) {
	if len(keys) == 0 {
		return
	}
	buf := k.hashBatch(keys)
	k.est.AddBatch(*buf)
	k.putScratch(buf)
}

// Update applies x_key ← x_key + delta. It panics unless the wrapped
// estimator is a TurnstileEstimator (use Turnstile to probe).
func (k *Keyed[K]) Update(key K, delta int64) {
	if k.turn == nil {
		panic("knw: Update on a Keyed estimator that does not support deletions (wrap an L0 or ConcurrentL0)")
	}
	k.turn.Update(k.hasher.Hash(key), delta)
}

// UpdateBatch applies the updates as if Update had been called on each
// (key, delta) pair in order. A nil deltas slice means every delta is
// +1; otherwise len(deltas) must equal len(keys). It panics unless the
// wrapped estimator is a TurnstileEstimator.
func (k *Keyed[K]) UpdateBatch(keys []K, deltas []int64) {
	if k.turn == nil {
		panic("knw: UpdateBatch on a Keyed estimator that does not support deletions (wrap an L0 or ConcurrentL0)")
	}
	if deltas != nil && len(deltas) != len(keys) {
		panic("knw: UpdateBatch length mismatch")
	}
	if len(keys) == 0 {
		return
	}
	buf := k.hashBatch(keys)
	k.turn.UpdateBatch(*buf, deltas)
	k.putScratch(buf)
}

// hashBatch hashes keys into a pooled scratch slice.
func (k *Keyed[K]) hashBatch(keys []K) *[]uint64 {
	buf := k.scratch.Get().(*[]uint64)
	if cap(*buf) < len(keys) {
		*buf = make([]uint64, len(keys))
	}
	*buf = (*buf)[:len(keys)]
	h := k.hasher
	for i, key := range keys {
		(*buf)[i] = h.Hash(key)
	}
	return buf
}

func (k *Keyed[K]) putScratch(buf *[]uint64) {
	k.scratch.Put(buf)
}

// Estimate reports the wrapped estimator's current estimate.
func (k *Keyed[K]) Estimate() float64 { return k.est.Estimate() }

// SpaceBits reports the wrapped estimator's accounted state.
func (k *Keyed[K]) SpaceBits() int { return k.est.SpaceBits() }

// Name labels the estimator in experiment tables.
func (k *Keyed[K]) Name() string { return k.est.Name() }

// Turnstile reports whether Update/UpdateBatch are available (the
// wrapped estimator supports deletions).
func (k *Keyed[K]) Turnstile() bool { return k.turn != nil }

// Hasher returns the hasher in use, e.g. to pre-hash keys on the
// sending side of an ingestion pipeline and ship uint64s.
func (k *Keyed[K]) Hasher() Hasher[K] { return k.hasher }

// Unwrap returns the wrapped estimator, e.g. to Merge it, marshal it,
// or read a typed-specific surface (EstimateErr, Shards, …).
func (k *Keyed[K]) Unwrap() Estimator { return k.est }
