package knw

import (
	"fmt"
	"sync"

	"repro/internal/bitutil"
)

// ConcurrentF0 is a goroutine-safe wrapper around F0: keys are routed
// to one of several same-seed shards (each guarded by its own mutex),
// and Estimate merges the shards into a pooled scratch sketch. Because
// the shards share hash functions and the KNW counters are
// max-mergeable, the merged estimate is exactly what a single sketch
// over the whole stream would report (up to rough-estimator timing, as
// with Merge).
//
// Add takes one shard lock per key; AddBatch pre-routes the batch and
// takes one lock per shard per batch, which is the intended ingestion
// path under heavy write traffic. Estimate is O(shards · state) and
// intended for periodic reads, not per-update calls.
type ConcurrentF0 struct {
	cfg    settings
	mask   uint64
	shards []f0Shard

	// scratch pools same-seed sketches for Estimate so repeated reads
	// reuse hash draws instead of re-deriving them; routers pools the
	// group-by-shard scratch for AddBatch.
	scratch *sync.Pool
	routers *sync.Pool
}

type f0Shard struct {
	mu sync.Mutex
	sk *F0
	_  [40]byte // keep shard locks on distinct cache lines
}

// NewConcurrentF0 builds a wrapper with the given shard count (rounded
// up to a power of two) and the same options NewF0 accepts. A seed is
// chosen automatically if none is given; all shards share it.
func NewConcurrentF0(shards int, opts ...Option) *ConcurrentF0 {
	if shards < 1 {
		panic("knw: need at least one shard")
	}
	if shards > maxShards {
		panic("knw: shard count exceeds the supported maximum")
	}
	n := int(bitutil.NextPow2(uint64(shards)))
	cfg := defaultSettings()
	cfg.resolve(opts)
	cfg.takeShards() // the explicit argument wins over WithShards
	c := &ConcurrentF0{cfg: cfg, mask: uint64(n - 1), shards: make([]f0Shard, n)}
	for i := range c.shards {
		c.shards[i].sk = newF0From(cfg)
	}
	c.initPools()
	return c
}

// initPools (re)creates the scratch and router pools; shared by the
// constructor and UnmarshalBinary.
func (c *ConcurrentF0) initPools() {
	cfg := c.cfg
	c.scratch = &sync.Pool{New: func() any { return newF0From(cfg) }}
	c.routers = &sync.Pool{New: func() any { return new(batchRouter) }}
}

// shardIndex routes a key by a cheap mix so shards stay balanced even
// on sequential keys. Routing only affects contention, not
// correctness: shards merge by max (F0) or sum (L0).
func shardIndex(key, mask uint64) int {
	return int((key * 0x9e3779b97f4a7c15 >> 32) & mask)
}

// Add records one stream element; safe for concurrent use.
func (c *ConcurrentF0) Add(key uint64) {
	s := &c.shards[shardIndex(key, c.mask)]
	s.mu.Lock()
	s.sk.Add(key)
	s.mu.Unlock()
}

// AddBatch records a batch of stream elements; safe for concurrent
// use. The batch is grouped by destination shard first, so each shard
// lock is taken at most once per batch (instead of once per key) and
// each shard ingests its sub-batch through the core batch path.
func (c *ConcurrentF0) AddBatch(keys []uint64) {
	if len(keys) == 0 {
		return
	}
	if len(c.shards) == 1 {
		s := &c.shards[0]
		s.mu.Lock()
		s.sk.AddBatch(keys)
		s.mu.Unlock()
		return
	}
	rt := c.routers.Get().(*batchRouter)
	rt.route(keys, nil, c.mask)
	for i := range c.shards {
		g := rt.keyGroup(i)
		if len(g) == 0 {
			continue
		}
		s := &c.shards[i]
		s.mu.Lock()
		s.sk.AddBatch(g)
		s.mu.Unlock()
	}
	c.routers.Put(rt)
}

// AddString records a string element via the default seeded hasher;
// safe for concurrent use.
//
// Deprecated: wrap the sketch in NewKeyed[string] instead, which
// shares this hash, adds batching, and documents the collision
// semantics (hasher.go).
func (c *ConcurrentF0) AddString(s string) { c.Add(NewHasher[string](c.cfg.seed, c.cfg.logN).Hash(s)) }

// AddBytes records a byte-slice element via the default seeded hasher;
// safe for concurrent use.
//
// Deprecated: wrap the sketch in NewKeyed[[]byte] instead.
func (c *ConcurrentF0) AddBytes(b []byte) { c.Add(NewHasher[[]byte](c.cfg.seed, c.cfg.logN).Hash(b)) }

// Estimate merges all shards into a pooled scratch sketch and returns
// its estimate; safe for concurrent use with Add and AddBatch. The
// scratch sketch shares the wrapper's seed, so reuse skips the hash-
// function derivation a fresh sketch would repeat on every call.
func (c *ConcurrentF0) Estimate() float64 {
	scratch := c.scratch.Get().(*F0)
	scratch.Reset()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		// Merge mutates only the receiver; the shard is read (and its
		// deamortized phases drained) under its lock.
		if err := scratch.Merge(s.sk); err != nil {
			s.mu.Unlock()
			panic("knw: shard configuration diverged: " + err.Error())
		}
		s.mu.Unlock()
	}
	v := scratch.Estimate()
	c.scratch.Put(scratch)
	return v
}

// Merge folds other into c so that c reflects the union of both
// streams. Both wrappers must share options and seed; shard counts may
// differ (other's shards fold into c's modulo c's shard count). Safe
// for concurrent use with Add/AddBatch on either wrapper, but two
// wrappers must not be concurrently merged into each other.
func (c *ConcurrentF0) Merge(other *ConcurrentF0) error {
	if c == other {
		return fmt.Errorf("knw: cannot merge a sketch into itself")
	}
	if c.cfg != other.cfg {
		return errCfgMismatch(c)
	}
	for i := range other.shards {
		os := &other.shards[i]
		cs := &c.shards[uint64(i)&c.mask]
		os.mu.Lock()
		cs.mu.Lock()
		err := cs.sk.Merge(os.sk)
		cs.mu.Unlock()
		os.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset returns every shard to its freshly constructed state while
// keeping configuration, seed, and hash draws (see F0.Reset). Safe for
// concurrent use, though concurrent writers may land keys on either
// side of the reset.
func (c *ConcurrentF0) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.sk.Reset()
		s.mu.Unlock()
	}
}

// Shards returns the shard count.
func (c *ConcurrentF0) Shards() int { return len(c.shards) }

// Seed returns the seed shared by every shard (see F0.Seed).
func (c *ConcurrentF0) Seed() int64 { return c.cfg.seed }

// UniverseBits returns log2 of the configured key universe.
func (c *ConcurrentF0) UniverseBits() uint { return c.cfg.logN }

// Epsilon returns the configured target relative standard error ε
// (see F0.Epsilon).
func (c *ConcurrentF0) Epsilon() float64 { return c.cfg.eps }

// Kind returns KindConcurrentF0 (the registry/envelope tag).
func (c *ConcurrentF0) Kind() Kind { return KindConcurrentF0 }

// SpaceBits sums the shards' accounted state.
func (c *ConcurrentF0) SpaceBits() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.sk.SpaceBits()
		s.mu.Unlock()
	}
	return total
}

// Name labels the sketch in experiment tables.
func (c *ConcurrentF0) Name() string { return "KNW-F0(sharded)" }

// ConcurrentL0 is the goroutine-safe wrapper for L0 turnstile streams,
// built the same way (same-seed shards, linear-counter merge on read,
// batched pre-routed ingestion).
type ConcurrentL0 struct {
	cfg    settings
	mask   uint64
	shards []l0Shard

	scratch *sync.Pool
	routers *sync.Pool
}

type l0Shard struct {
	mu sync.Mutex
	sk *L0
	_  [40]byte
}

// NewConcurrentL0 builds a wrapper with the given shard count (rounded
// up to a power of two) and the same options NewL0 accepts.
func NewConcurrentL0(shards int, opts ...Option) *ConcurrentL0 {
	if shards < 1 {
		panic("knw: need at least one shard")
	}
	if shards > maxShards {
		panic("knw: shard count exceeds the supported maximum")
	}
	n := int(bitutil.NextPow2(uint64(shards)))
	cfg := defaultSettings()
	cfg.resolve(opts)
	cfg.takeShards() // the explicit argument wins over WithShards
	c := &ConcurrentL0{cfg: cfg, mask: uint64(n - 1), shards: make([]l0Shard, n)}
	for i := range c.shards {
		c.shards[i].sk = newL0From(cfg)
	}
	c.initPools()
	return c
}

func (c *ConcurrentL0) initPools() {
	cfg := c.cfg
	c.scratch = &sync.Pool{New: func() any { return newL0From(cfg) }}
	c.routers = &sync.Pool{New: func() any { return new(batchRouter) }}
}

// Update applies x_key ← x_key + delta; safe for concurrent use.
// Updates to the same key may land on the same shard lock, but any
// routing is correct: the merged frequency vector is the sum over
// shards.
func (c *ConcurrentL0) Update(key uint64, delta int64) {
	s := &c.shards[shardIndex(key, c.mask)]
	s.mu.Lock()
	s.sk.Update(key, delta)
	s.mu.Unlock()
}

// UpdateBatch applies a batch of turnstile updates; safe for
// concurrent use. A nil deltas slice means every delta is +1;
// otherwise len(deltas) must equal len(keys). The batch is grouped by
// destination shard first, taking one lock per shard per batch.
func (c *ConcurrentL0) UpdateBatch(keys []uint64, deltas []int64) {
	if deltas != nil && len(deltas) != len(keys) {
		panic("knw: UpdateBatch length mismatch")
	}
	if len(keys) == 0 {
		return
	}
	if len(c.shards) == 1 {
		s := &c.shards[0]
		s.mu.Lock()
		s.sk.UpdateBatch(keys, deltas)
		s.mu.Unlock()
		return
	}
	rt := c.routers.Get().(*batchRouter)
	rt.route(keys, deltas, c.mask)
	for i := range c.shards {
		g := rt.keyGroup(i)
		if len(g) == 0 {
			continue
		}
		var dg []int64
		if deltas != nil {
			dg = rt.deltaGroup(i)
		}
		s := &c.shards[i]
		s.mu.Lock()
		s.sk.UpdateBatch(g, dg)
		s.mu.Unlock()
	}
	c.routers.Put(rt)
}

// Add records one insertion (delta +1); safe for concurrent use.
func (c *ConcurrentL0) Add(key uint64) { c.Update(key, 1) }

// AddBatch records the keys with delta +1 each; safe for concurrent use.
func (c *ConcurrentL0) AddBatch(keys []uint64) { c.UpdateBatch(keys, nil) }

// AddString records a string element via the default seeded hasher;
// safe for concurrent use.
//
// Deprecated: wrap the sketch in NewKeyed[string] instead.
func (c *ConcurrentL0) AddString(s string) { c.Add(NewHasher[string](c.cfg.seed, c.cfg.logN).Hash(s)) }

// AddBytes records a byte-slice element via the default seeded hasher;
// safe for concurrent use.
//
// Deprecated: wrap the sketch in NewKeyed[[]byte] instead.
func (c *ConcurrentL0) AddBytes(b []byte) { c.Add(NewHasher[[]byte](c.cfg.seed, c.cfg.logN).Hash(b)) }

// Estimate merges all shards into a pooled scratch sketch and returns
// its estimate; safe for concurrent use with Update and UpdateBatch.
func (c *ConcurrentL0) Estimate() float64 {
	scratch := c.scratch.Get().(*L0)
	scratch.Reset()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if err := scratch.Merge(s.sk); err != nil {
			s.mu.Unlock()
			panic("knw: shard configuration diverged: " + err.Error())
		}
		s.mu.Unlock()
	}
	v := scratch.Estimate()
	c.scratch.Put(scratch)
	return v
}

// Merge folds other into c so that c estimates the L0 of the summed
// frequency vectors. Both wrappers must share options and seed; shard
// counts may differ. Safe for concurrent use with writers on either
// wrapper, but two wrappers must not be concurrently merged into each
// other.
func (c *ConcurrentL0) Merge(other *ConcurrentL0) error {
	if c == other {
		return fmt.Errorf("knw: cannot merge a sketch into itself")
	}
	if c.cfg != other.cfg {
		return errCfgMismatch(c)
	}
	for i := range other.shards {
		os := &other.shards[i]
		cs := &c.shards[uint64(i)&c.mask]
		os.mu.Lock()
		cs.mu.Lock()
		err := cs.sk.Merge(os.sk)
		cs.mu.Unlock()
		os.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset returns every shard to its freshly constructed state while
// keeping configuration, seed, and hash draws (see F0.Reset). Safe for
// concurrent use, though concurrent writers may land keys on either
// side of the reset.
func (c *ConcurrentL0) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.sk.Reset()
		s.mu.Unlock()
	}
}

// Shards returns the shard count.
func (c *ConcurrentL0) Shards() int { return len(c.shards) }

// Seed returns the seed shared by every shard (see F0.Seed).
func (c *ConcurrentL0) Seed() int64 { return c.cfg.seed }

// UniverseBits returns log2 of the configured key universe.
func (c *ConcurrentL0) UniverseBits() uint { return c.cfg.logN }

// Epsilon returns the configured target relative standard error ε
// (see F0.Epsilon).
func (c *ConcurrentL0) Epsilon() float64 { return c.cfg.eps }

// Kind returns KindConcurrentL0 (the registry/envelope tag).
func (c *ConcurrentL0) Kind() Kind { return KindConcurrentL0 }

// SpaceBits sums the shards' accounted state.
func (c *ConcurrentL0) SpaceBits() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.sk.SpaceBits()
		s.mu.Unlock()
	}
	return total
}

// Name labels the sketch in experiment tables.
func (c *ConcurrentL0) Name() string { return "KNW-L0(sharded)" }

// batchRouter is the reusable group-by-shard scratch used by the
// concurrent wrappers' batch paths: a counting sort of the batch into
// per-shard contiguous groups, so ingestion takes one lock per shard
// per batch and feeds each shard a contiguous sub-batch.
type batchRouter struct {
	cursors []int
	starts  []int
	sids    []uint16 // per-key shard index from the counting pass
	keys    []uint64
	deltas  []int64
}

// route groups keys (and, when non-nil, their parallel deltas) by
// shardIndex under the given mask. Group i then occupies
// [starts[i], starts[i+1]) of the scratch slices. Relative order
// within a group is preserved, so per-shard replay order matches the
// per-key path.
func (r *batchRouter) route(keys []uint64, deltas []int64, mask uint64) {
	n := int(mask) + 1
	if cap(r.cursors) < n {
		r.cursors = make([]int, n)
		r.starts = make([]int, n+1)
	}
	r.cursors = r.cursors[:n]
	r.starts = r.starts[:n+1]
	clear(r.cursors)
	if cap(r.keys) < len(keys) {
		r.keys = make([]uint64, len(keys))
		r.sids = make([]uint16, len(keys))
	}
	r.keys = r.keys[:len(keys)]
	r.sids = r.sids[:len(keys)]
	for j, k := range keys {
		i := shardIndex(k, mask)
		r.sids[j] = uint16(i) // mask < maxShards ≤ 2^16, so this fits
		r.cursors[i]++
	}
	off := 0
	for i, cnt := range r.cursors {
		r.starts[i] = off
		r.cursors[i] = off
		off += cnt
	}
	r.starts[n] = off
	if deltas == nil {
		for j, k := range keys {
			i := r.sids[j]
			r.keys[r.cursors[i]] = k
			r.cursors[i]++
		}
		return
	}
	if cap(r.deltas) < len(deltas) {
		r.deltas = make([]int64, len(deltas))
	}
	r.deltas = r.deltas[:len(deltas)]
	for j, k := range keys {
		i := r.sids[j]
		p := r.cursors[i]
		r.keys[p] = k
		r.deltas[p] = deltas[j]
		r.cursors[i]++
	}
}

// keyGroup returns shard i's routed keys.
func (r *batchRouter) keyGroup(i int) []uint64 { return r.keys[r.starts[i]:r.starts[i+1]] }

// deltaGroup returns shard i's routed deltas (valid only after a route
// call with non-nil deltas).
func (r *batchRouter) deltaGroup(i int) []int64 { return r.deltas[r.starts[i]:r.starts[i+1]] }
