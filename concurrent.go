package knw

import (
	"sync"

	"repro/internal/bitutil"
)

// ConcurrentF0 is a goroutine-safe wrapper around F0: keys are routed
// to one of several same-seed shards (each guarded by its own mutex),
// and Estimate merges the shards into a scratch sketch. Because the
// shards share hash functions and the KNW counters are max-mergeable,
// the merged estimate is exactly what a single sketch over the whole
// stream would report (up to rough-estimator timing, as with Merge).
//
// Add is cheap and scales with the shard count; Estimate is O(shards ·
// state) and intended for periodic reads, not per-update calls.
type ConcurrentF0 struct {
	cfg    settings
	mask   uint64
	shards []f0Shard
}

type f0Shard struct {
	mu sync.Mutex
	sk *F0
	_  [40]byte // keep shard locks on distinct cache lines
}

// NewConcurrentF0 builds a wrapper with the given shard count (rounded
// up to a power of two) and the same options NewF0 accepts. A seed is
// chosen automatically if none is given; all shards share it.
func NewConcurrentF0(shards int, opts ...Option) *ConcurrentF0 {
	if shards < 1 {
		panic("knw: need at least one shard")
	}
	n := int(bitutil.NextPow2(uint64(shards)))
	cfg := defaultSettings()
	cfg.resolve(opts)
	c := &ConcurrentF0{cfg: cfg, mask: uint64(n - 1), shards: make([]f0Shard, n)}
	for i := range c.shards {
		c.shards[i].sk = newF0From(cfg)
	}
	return c
}

// Add records one stream element; safe for concurrent use.
func (c *ConcurrentF0) Add(key uint64) {
	// Route by a cheap mix of the key so shards stay balanced even on
	// sequential keys. Routing only affects contention, not
	// correctness: shards merge by max.
	s := &c.shards[(key*0x9e3779b97f4a7c15>>32)&c.mask]
	s.mu.Lock()
	s.sk.Add(key)
	s.mu.Unlock()
}

// AddString records a string element; safe for concurrent use.
func (c *ConcurrentF0) AddString(s string) { c.Add(fnv1a([]byte(s))) }

// Estimate merges all shards into a fresh scratch sketch and returns
// its estimate; safe for concurrent use with Add.
func (c *ConcurrentF0) Estimate() float64 {
	scratch := newF0From(c.cfg)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		// Merge mutates only the receiver; the shard is read (and its
		// deamortized phases drained) under its lock.
		if err := scratch.Merge(s.sk); err != nil {
			s.mu.Unlock()
			panic("knw: shard configuration diverged: " + err.Error())
		}
		s.mu.Unlock()
	}
	return scratch.Estimate()
}

// Shards returns the shard count.
func (c *ConcurrentF0) Shards() int { return len(c.shards) }

// SpaceBits sums the shards' accounted state.
func (c *ConcurrentF0) SpaceBits() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.sk.SpaceBits()
		s.mu.Unlock()
	}
	return total
}

// ConcurrentL0 is the goroutine-safe wrapper for L0 turnstile streams,
// built the same way (same-seed shards, linear-counter merge on read).
type ConcurrentL0 struct {
	cfg    settings
	mask   uint64
	shards []l0Shard
}

type l0Shard struct {
	mu sync.Mutex
	sk *L0
	_  [40]byte
}

// NewConcurrentL0 builds a wrapper with the given shard count (rounded
// up to a power of two) and the same options NewL0 accepts.
func NewConcurrentL0(shards int, opts ...Option) *ConcurrentL0 {
	if shards < 1 {
		panic("knw: need at least one shard")
	}
	n := int(bitutil.NextPow2(uint64(shards)))
	cfg := defaultSettings()
	cfg.resolve(opts)
	c := &ConcurrentL0{cfg: cfg, mask: uint64(n - 1), shards: make([]l0Shard, n)}
	for i := range c.shards {
		c.shards[i].sk = newL0From(cfg)
	}
	return c
}

// Update applies x_key ← x_key + delta; safe for concurrent use.
// Updates to the same key may land on the same shard lock, but any
// routing is correct: the merged frequency vector is the sum over
// shards.
func (c *ConcurrentL0) Update(key uint64, delta int64) {
	s := &c.shards[(key*0x9e3779b97f4a7c15>>32)&c.mask]
	s.mu.Lock()
	s.sk.Update(key, delta)
	s.mu.Unlock()
}

// Estimate merges all shards into a scratch sketch and returns its
// estimate; safe for concurrent use with Update.
func (c *ConcurrentL0) Estimate() float64 {
	scratch := newL0From(c.cfg)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if err := scratch.Merge(s.sk); err != nil {
			s.mu.Unlock()
			panic("knw: shard configuration diverged: " + err.Error())
		}
		s.mu.Unlock()
	}
	return scratch.Estimate()
}

// Shards returns the shard count.
func (c *ConcurrentL0) Shards() int { return len(c.shards) }
