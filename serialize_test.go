package knw

import (
	"encoding"
	"math"
	"testing"
)

var (
	_ encoding.BinaryMarshaler   = (*F0)(nil)
	_ encoding.BinaryUnmarshaler = (*F0)(nil)
	_ encoding.BinaryMarshaler   = (*L0)(nil)
	_ encoding.BinaryUnmarshaler = (*L0)(nil)
)

func TestF0SerializeRoundTrip(t *testing.T) {
	for _, opts := range [][]Option{
		{WithSeed(50), WithEpsilon(0.1), WithCopies(3)},
		{WithSeed(51), WithEpsilon(0.2), WithCopies(1), WithReference()},
		{WithSeed(52), WithEpsilon(0.2), WithCopies(1), WithLnTable()},
	} {
		orig := NewF0(opts...)
		for i := 0; i < 150_000; i++ {
			orig.Add(uint64(i)*0x9e3779b97f4a7c15 + 1)
		}
		data, err := orig.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back F0
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if got, want := back.Estimate(), orig.Estimate(); got != want {
			t.Fatalf("restored estimate %v != original %v", got, want)
		}
		// The restored sketch must keep working: adds continue the stream.
		for i := 150_000; i < 200_000; i++ {
			k := uint64(i)*0x9e3779b97f4a7c15 + 1
			orig.Add(k)
			back.Add(k)
		}
		g, w := back.Estimate(), orig.Estimate()
		if g != w {
			t.Fatalf("post-restore divergence: %v vs %v", g, w)
		}
		if rel := math.Abs(w-200000) / 200000; rel > 0.3 {
			t.Fatalf("post-restore accuracy: %v", w)
		}
	}
}

func TestF0SerializeSmallRegime(t *testing.T) {
	orig := NewF0(WithSeed(53), WithCopies(1))
	for i := 0; i < 42; i++ {
		orig.Add(uint64(i) + 1)
	}
	data, _ := orig.MarshalBinary()
	var back F0
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != 42 {
		t.Fatalf("exact regime lost: %v", back.Estimate())
	}
	back.Add(999_999_999)
	if back.Estimate() != 43 {
		t.Fatalf("restored exact set not live: %v", back.Estimate())
	}
}

func TestL0SerializeRoundTrip(t *testing.T) {
	orig := NewL0(WithSeed(54), WithEpsilon(0.2), WithCopies(1))
	keys := make([]uint64, 40_000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		orig.Update(keys[i], 3)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back L0
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != orig.Estimate() {
		t.Fatalf("restored %v != original %v", back.Estimate(), orig.Estimate())
	}
	// Deletions must work against restored state: delete half on BOTH
	// and compare exactly (linear counters, same hashes).
	for i := 0; i < 20_000; i++ {
		orig.Update(keys[i], -3)
		back.Update(keys[i], -3)
	}
	if back.Estimate() != orig.Estimate() {
		t.Fatalf("post-restore deletion divergence: %v vs %v", back.Estimate(), orig.Estimate())
	}
}

func TestSerializeRejectsGarbage(t *testing.T) {
	var f F0
	for _, bad := range [][]byte{
		nil,
		{0x01},
		[]byte("not a sketch at all, definitely"),
	} {
		if err := f.UnmarshalBinary(bad); err == nil {
			t.Errorf("garbage %q accepted", bad)
		}
	}
	// An L0 payload must not unmarshal as F0 and vice versa.
	l := NewL0(WithSeed(55), WithCopies(1), WithEpsilon(0.3))
	data, _ := l.MarshalBinary()
	if err := f.UnmarshalBinary(data); err == nil {
		t.Error("L0 payload accepted as F0")
	}
}

func TestSerializeRejectsTruncation(t *testing.T) {
	orig := NewF0(WithSeed(56), WithCopies(1), WithEpsilon(0.3))
	for i := 0; i < 10_000; i++ {
		orig.Add(uint64(i) + 1)
	}
	data, _ := orig.MarshalBinary()
	for _, cut := range []int{1, len(data) / 4, len(data) / 2, len(data) - 1} {
		var back F0
		if err := back.UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must also be rejected.
	var back F0
	if err := back.UnmarshalBinary(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSerializedSizeTracksState(t *testing.T) {
	// Payload must scale with ε⁻² (counter state), not with the
	// tabulation tables (which are reconstructed from the seed).
	small := NewF0(WithSeed(57), WithCopies(1), WithEpsilon(0.2))
	big := NewF0(WithSeed(57), WithCopies(1), WithEpsilon(0.05))
	for i := 0; i < 100_000; i++ {
		k := uint64(i) + 1
		small.Add(k)
		big.Add(k)
	}
	ds, _ := small.MarshalBinary()
	db, _ := big.MarshalBinary()
	if len(db) <= len(ds) {
		t.Fatalf("sizes: eps=0.2 %dB, eps=0.05 %dB", len(ds), len(db))
	}
	// And stay far below the in-memory tabulation footprint.
	if len(db)*8 > big.SpaceBits() {
		t.Errorf("payload %d bits exceeds accounted state %d", len(db)*8, big.SpaceBits())
	}
}
