package knw

import (
	"math"
	"sort"

	"repro/internal/core"
)

// F0 estimates the number of distinct elements in an insertion-only
// stream with relative error ε and failure probability δ, in
// O(log(1/δ)·(ε⁻² + log n)) bits with O(1) worst-case update and
// reporting time per copy — the paper's main result (Theorems 2, 3,
// 9), amplified by the median over independent copies.
//
// An F0 is not safe for concurrent use; shard streams across sketches
// and Merge them instead (counters are max-mergeable).
type F0 struct {
	cfg  settings
	fast []*core.FastSketch
	ref  []*core.Sketch
}

// NewF0 builds a sketch. With no options: ε = 0.05, δ = 0.05, 32-bit
// universe, time-seeded randomness, Theorem 9 fast implementation.
func NewF0(opts ...Option) *F0 {
	cfg := defaultSettings()
	cfg.resolve(opts)
	return newF0From(cfg)
}

// newF0From builds a sketch from resolved settings (shared by NewF0
// and UnmarshalBinary, which must reproduce the exact hash draws).
func newF0From(cfg settings) *F0 {
	cfg.takeShards() // construction-only hint; keep stored cfgs comparable
	f := &F0{cfg: cfg}
	rng := cfg.rng()
	cc := core.Config{
		LogN:          cfg.logN,
		K:             cfg.k(),
		StrictRescale: cfg.strict,
		UseLnTable:    cfg.lnTable,
	}
	for i := 0; i < cfg.copies; i++ {
		if cfg.reference {
			f.ref = append(f.ref, core.NewSketch(cc, rng))
		} else {
			f.fast = append(f.fast, core.NewFastSketch(cc, rng))
		}
	}
	return f
}

// Add records one stream element.
func (f *F0) Add(key uint64) {
	for _, s := range f.fast {
		s.Add(key)
	}
	for _, s := range f.ref {
		s.Add(key)
	}
}

// AddBatch records a batch of stream elements, equivalent to calling
// Add on each key in order (the resulting state is byte-identical
// under MarshalBinary) but with per-call overhead amortized: each copy
// evaluates its hash functions over the batch in tight pipelined
// loops. Prefer it whenever keys arrive in groups.
func (f *F0) AddBatch(keys []uint64) {
	for _, s := range f.fast {
		s.AddBatch(keys)
	}
	for _, s := range f.ref {
		s.AddBatch(keys)
	}
}

// Reset returns the sketch to its freshly constructed state while
// keeping its configuration, seed, and hash draws, so it remains
// mergeable with sketches it was mergeable with before. Used to reuse
// scratch sketches instead of re-deriving hash functions.
func (f *F0) Reset() {
	for _, s := range f.fast {
		s.Reset()
	}
	for _, s := range f.ref {
		s.Reset()
	}
}

// AddString records a string element via the default seeded hasher.
//
// Deprecated: wrap the sketch in NewKeyed[string] instead, which
// shares this hash, adds batching, and documents the collision
// semantics (hasher.go).
func (f *F0) AddString(s string) { f.Add(NewHasher[string](f.cfg.seed, f.cfg.logN).Hash(s)) }

// AddBytes records a byte-slice element via the default seeded hasher.
//
// Deprecated: wrap the sketch in NewKeyed[[]byte] instead.
func (f *F0) AddBytes(b []byte) { f.Add(NewHasher[[]byte](f.cfg.seed, f.cfg.logN).Hash(b)) }

// Estimate returns the median estimate across copies. It returns NaN
// if every copy has failed (probability ≤ (1/32)^copies; see
// EstimateErr to distinguish failure from a zero estimate).
func (f *F0) Estimate() float64 {
	v, err := f.EstimateErr()
	if err != nil {
		return math.NaN()
	}
	return v
}

// EstimateErr is Estimate with an explicit error for the all-copies-
// failed case.
func (f *F0) EstimateErr() (float64, error) {
	vals := make([]float64, 0, f.cfg.copies)
	for _, s := range f.fast {
		if v, err := s.Estimate(); err == nil {
			vals = append(vals, v)
		}
	}
	for _, s := range f.ref {
		if v, err := s.Estimate(); err == nil {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, core.ErrAllCopiesFailed
	}
	sort.Float64s(vals)
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m], nil
	}
	return (vals[m-1] + vals[m]) / 2, nil
}

// Merge folds other into f so that f reflects the union of both
// streams. Both sketches must have been built with the same options
// and seed (so their hash functions coincide); a mismatch returns an
// error wrapping ErrIncompatible.
func (f *F0) Merge(other *F0) error {
	if f.cfg != other.cfg {
		return errCfgMismatch(f)
	}
	for i := range f.fast {
		f.fast[i].MergeFrom(other.fast[i])
	}
	for i := range f.ref {
		f.ref[i].MergeFrom(other.ref[i])
	}
	return nil
}

// Copies returns the number of independent copies.
func (f *F0) Copies() int { return f.cfg.copies }

// Seed returns the seed the sketch's hash functions were drawn from.
// Sketches are mergeable only when built from the same options and
// seed; Keyed front-ends derive their default hasher from it.
func (f *F0) Seed() int64 { return f.cfg.seed }

// UniverseBits returns log2 of the configured key universe.
func (f *F0) UniverseBits() uint { return f.cfg.logN }

// Epsilon returns the configured target relative standard error ε
// (WithEpsilon), which the set-algebra helpers use to propagate error
// bounds through inclusion–exclusion.
func (f *F0) Epsilon() float64 { return f.cfg.eps }

// Kind returns KindF0 (the registry/envelope tag).
func (f *F0) Kind() Kind { return KindF0 }

// K returns the per-copy counter count.
func (f *F0) K() int { return f.cfg.k() }

// SpaceBits returns the total accounted state across copies.
func (f *F0) SpaceBits() int {
	total := 0
	for _, s := range f.fast {
		total += s.SpaceBits()
	}
	for _, s := range f.ref {
		total += s.SpaceBits()
	}
	return total
}

// Name labels the sketch in experiment tables.
func (f *F0) Name() string {
	if f.cfg.reference {
		return "KNW-F0(ref)"
	}
	return "KNW-F0"
}
