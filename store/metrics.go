package store

import (
	"time"

	"repro/internal/metrics"
)

// storeMetrics are the store-layer instruments. All handles are
// nil-safe (see internal/metrics), so an unconfigured store pays one
// predictable branch per operation and registers nothing.
type storeMetrics struct {
	entries      *metrics.Gauge   // live registry entries
	ingestedKeys *metrics.Counter // keys accepted by Ingest/IngestHashed
	rotations    *metrics.Counter // window buckets recycled
	ckptSeconds  *metrics.Histogram
	ckptBytes    *metrics.Gauge // size of the last checkpoint file
	ckptTotal    *metrics.Counter
	ckptErrors   *metrics.Counter
	flushSeconds *metrics.Histogram // epoch drain wall time per entry
	flushes      *metrics.Counter   // entry drains that merged keys

	// Cached knwd_stage_seconds series (Config.Stages; nil without a
	// stage vec). Cached once here so the hot path never takes the
	// vec's series-lookup lock.
	stageClaim  *metrics.Histogram // delta-slot CAS claim
	stageHash   *metrics.Histogram // string-key hash + append (Ingest)
	stageAppend *metrics.Histogram // pre-hashed append (IngestHashed)
	stageMerge  *metrics.Histogram // epoch drain of one entry
}

// initMetrics registers the store instruments on reg (nil disables
// instrumentation) and installs the scrape-time checkpoint-age gauge.
func (s *Store) initMetrics(reg *metrics.Registry) {
	s.met = storeMetrics{
		entries: reg.NewGauge("knwd_store_entries",
			"Number of named sketch entries in the registry."),
		ingestedKeys: reg.NewCounter("knwd_store_ingested_keys_total",
			"Keys accepted into store entries (all-time sketches)."),
		rotations: reg.NewCounter("knwd_store_window_rotations_total",
			"Window ring buckets recycled by lazy rotation."),
		ckptSeconds: reg.NewHistogram("knwd_store_checkpoint_seconds",
			"Wall time of full-store checkpoint writes.",
			metrics.ExponentialBuckets(0.001, 2, 13)), // 1ms .. ~4s
		ckptBytes: reg.NewGauge("knwd_store_checkpoint_bytes",
			"Size of the most recent checkpoint file."),
		ckptTotal: reg.NewCounter("knwd_store_checkpoints_total",
			"Completed checkpoint writes."),
		ckptErrors: reg.NewCounter("knwd_store_checkpoint_errors_total",
			"Checkpoint writes that failed."),
		flushSeconds: reg.NewHistogram("knwd_store_epoch_flush_seconds",
			"Wall time of one entry's delta drain (slot claim + merges).",
			metrics.ExponentialBuckets(0.00001, 2, 14)), // 10µs .. ~80ms
		flushes: reg.NewCounter("knwd_store_epoch_flushes_total",
			"Entry drains that merged at least one pending key."),
	}
	if s.cfg.Stages != nil {
		s.met.stageClaim = s.cfg.Stages.With("slot_claim")
		s.met.stageHash = s.cfg.Stages.With("hash")
		s.met.stageAppend = s.cfg.Stages.With("append")
		s.met.stageMerge = s.cfg.Stages.With("epoch_merge")
	}
	reg.NewGaugeFunc("knwd_store_epoch_flush_floor_keys",
		"Adaptive per-entry pending-key floor below which epoch ticks defer draining.",
		func() float64 { return float64(s.flushFloor.Load()) })
	reg.NewGaugeFunc("knwd_store_pending_delta_keys",
		"Keys accepted into delta slots but not yet merged into canonical sketches.",
		func() float64 { return float64(s.pendingKeys.Load()) })
	reg.NewGaugeFunc("knwd_store_epoch_lag_seconds",
		"Age of the oldest undrained delta (0 when no deltas are pending).",
		func() float64 {
			if s.pendingKeys.Load() == 0 {
				return 0
			}
			// The backlog started when the dirty list last became
			// non-empty, or at the last flush pass if one ran since.
			since := max(s.dirtySince.Load(), s.lastFlush.Load())
			if since == 0 {
				return 0
			}
			return time.Since(time.Unix(0, since)).Seconds()
		})
	reg.NewGaugeFunc("knwd_store_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint (-1 before the first).",
		func() float64 {
			last := s.lastCkpt.Load()
			if last == 0 {
				return -1
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
}

// noteCheckpoint records one checkpoint attempt's outcome.
func (s *Store) noteCheckpoint(start time.Time, bytes int, err error) {
	if err != nil {
		s.met.ckptErrors.Inc()
		return
	}
	s.met.ckptSeconds.Observe(time.Since(start).Seconds())
	s.met.ckptBytes.Set(float64(bytes))
	s.met.ckptTotal.Inc()
	s.lastCkpt.Store(time.Now().UnixNano())
}
