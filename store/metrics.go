package store

import (
	"time"

	"repro/internal/metrics"
)

// storeMetrics are the store-layer instruments. All handles are
// nil-safe (see internal/metrics), so an unconfigured store pays one
// predictable branch per operation and registers nothing.
type storeMetrics struct {
	entries      *metrics.Gauge   // live registry entries
	ingestedKeys *metrics.Counter // keys accepted by Ingest/IngestHashed
	rotations    *metrics.Counter // window buckets recycled
	ckptSeconds  *metrics.Histogram
	ckptBytes    *metrics.Gauge // size of the last checkpoint file
	ckptTotal    *metrics.Counter
	ckptErrors   *metrics.Counter
}

// initMetrics registers the store instruments on reg (nil disables
// instrumentation) and installs the scrape-time checkpoint-age gauge.
func (s *Store) initMetrics(reg *metrics.Registry) {
	s.met = storeMetrics{
		entries: reg.NewGauge("knwd_store_entries",
			"Number of named sketch entries in the registry."),
		ingestedKeys: reg.NewCounter("knwd_store_ingested_keys_total",
			"Keys accepted into store entries (all-time sketches)."),
		rotations: reg.NewCounter("knwd_store_window_rotations_total",
			"Window ring buckets recycled by lazy rotation."),
		ckptSeconds: reg.NewHistogram("knwd_store_checkpoint_seconds",
			"Wall time of full-store checkpoint writes.",
			metrics.ExponentialBuckets(0.001, 2, 13)), // 1ms .. ~4s
		ckptBytes: reg.NewGauge("knwd_store_checkpoint_bytes",
			"Size of the most recent checkpoint file."),
		ckptTotal: reg.NewCounter("knwd_store_checkpoints_total",
			"Completed checkpoint writes."),
		ckptErrors: reg.NewCounter("knwd_store_checkpoint_errors_total",
			"Checkpoint writes that failed."),
	}
	reg.NewGaugeFunc("knwd_store_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint (-1 before the first).",
		func() float64 {
			last := s.lastCkpt.Load()
			if last == 0 {
				return -1
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
}

// noteCheckpoint records one checkpoint attempt's outcome.
func (s *Store) noteCheckpoint(start time.Time, bytes int, err error) {
	if err != nil {
		s.met.ckptErrors.Inc()
		return
	}
	s.met.ckptSeconds.Observe(time.Since(start).Seconds())
	s.met.ckptBytes.Set(float64(bytes))
	s.met.ckptTotal.Inc()
	s.lastCkpt.Store(time.Now().UnixNano())
}
