package store

import (
	"time"

	knw "repro"
)

// windowRing is one entry's time-bucketed window state: a ring of N
// same-seed sketches, each receiving the keys that arrive during one
// Interval-wide slice of wall time. Rotation is lazy — ingest and
// estimate advance the ring to the caller's clock before touching it —
// so an idle store pays nothing and no background goroutine is needed.
//
// The windowed estimate is the merge of all N buckets into a scratch
// sketch. Because every bucket shares the store's options and seed,
// their hash functions coincide and the KNW counters merge exactly
// (max for F0, linear sum for L0): the merged sketch is byte-identical
// to one that ingested the union of the buckets' streams, so the
// window estimate carries the same (ε, δ) guarantee as a single sketch
// over the trailing window. Keys seen in several buckets count once —
// union semantics, not sum of per-bucket counts.
//
// All methods are called with the owning entry's mutex held.
type windowRing struct {
	buckets  []knw.Estimator
	interval time.Duration
	started  bool
	epoch    int64 // interval index of the current bucket
	cur      int   // ring index of the current bucket
	scratch  knw.Estimator
	fresh    func() knw.Estimator
}

func newWindowRing(cfg Window, fresh func() knw.Estimator) *windowRing {
	w := &windowRing{
		buckets:  make([]knw.Estimator, cfg.Buckets),
		interval: cfg.Interval,
		fresh:    fresh,
	}
	for i := range w.buckets {
		w.buckets[i] = fresh()
	}
	return w
}

// current returns the bucket receiving writes now. Callers rotate
// first.
func (w *windowRing) current() knw.Estimator { return w.buckets[w.cur] }

// rotate advances the ring to now's interval index, recycling one
// bucket per elapsed interval (all of them after a gap of ≥ N
// intervals). Buckets are recycled with Reset, which keeps their hash
// draws, so a recycled bucket stays mergeable with its ring mates. It
// returns the number of buckets recycled (the store's rotation
// metric).
func (w *windowRing) rotate(now time.Time) int {
	e := now.UnixNano() / int64(w.interval)
	if !w.started {
		w.started = true
		w.epoch = e
		return 0
	}
	steps := e - w.epoch
	if steps <= 0 {
		// Same interval, or a clock step backwards: keep writing to the
		// current bucket rather than resurrecting expired ones.
		return 0
	}
	n := int64(len(w.buckets))
	if steps > n {
		steps = n
	}
	for i := int64(0); i < steps; i++ {
		w.cur = (w.cur + 1) % len(w.buckets)
		w.recycle(w.cur)
	}
	w.epoch = e
	return int(steps)
}

// recycle empties bucket i for reuse as the new current bucket.
func (w *windowRing) recycle(i int) {
	if r, ok := w.buckets[i].(interface{ Reset() }); ok {
		r.Reset()
		return
	}
	w.buckets[i] = w.fresh()
}

// bucketAt returns the bucket j intervals behind the current one
// (bucketAt(0) is the live bucket); it covers epoch − j. Callers
// rotate first and keep j < len(buckets).
func (w *windowRing) bucketAt(j int) knw.Estimator {
	n := len(w.buckets)
	return w.buckets[(w.cur-j+n)%n]
}

// merged folds the live ring into the scratch sketch and returns it —
// the union sketch over the trailing window. The scratch is reused
// across calls and is only valid until the next merged or mergedSpan
// call.
func (w *windowRing) merged() knw.Estimator { return w.mergedSpan(len(w.buckets)) }

// mergedSpan is merged restricted to the newest k buckets: the union
// sketch over the trailing k·interval span. Same scratch contract.
func (w *windowRing) mergedSpan(k int) knw.Estimator {
	if w.scratch == nil {
		w.scratch = w.fresh()
	}
	if r, ok := w.scratch.(interface{ Reset() }); ok {
		r.Reset()
	} else {
		w.scratch = w.fresh()
	}
	for j := 0; j < k; j++ {
		if err := knw.MergeInto(w.scratch, w.bucketAt(j)); err != nil {
			// Ring mates share construction by invariant; a mismatch
			// here is a program bug, not foreign input.
			panic("store: window bucket diverged from ring: " + err.Error())
		}
	}
	return w.scratch
}

// estimate reports the distinct count over the trailing window.
func (w *windowRing) estimate() float64 { return w.merged().Estimate() }

// spaceBits sums the ring's accounted state.
func (w *windowRing) spaceBits() int {
	total := 0
	for _, b := range w.buckets {
		total += b.SpaceBits()
	}
	return total
}
