package store

import (
	"fmt"
	"time"

	knw "repro"
	"repro/internal/binenc"
)

// Query-side exports of the window ring: per-bucket cardinality
// time-series (Series) and the raw per-bucket envelopes a peer needs
// to answer a cluster-wide series (RingSnapshot). Both rotate the ring
// to the store clock first, so answers never include expired buckets.

// SeriesPoint is one window bucket of a cardinality time-series.
type SeriesPoint struct {
	// Start/End delimit the wall-clock slice the bucket covers; Epoch
	// is its absolute interval index (Start = Epoch·interval). Epochs
	// are wall-aligned, so same-configured nodes bucket identically
	// and a cluster gather can union points epoch by epoch.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Epoch int64     `json:"epoch"`
	// Estimate is the distinct count of keys that arrived during the
	// bucket's slice. The newest bucket is live and still filling.
	Estimate float64 `json:"estimate"`
}

// Series is a per-bucket cardinality time-series over the trailing
// window, plus the union estimate across the requested span and a
// rate-of-change reading for alerting.
type Series struct {
	Store    string `json:"store"`
	Sketch   string `json:"sketch"`
	Interval string `json:"interval"`
	// Span is the covered span k·interval for the clamped bucket
	// count k (see Store.Series).
	Span string `json:"span"`
	// Buckets runs oldest → newest; the last point is the live,
	// still-filling bucket.
	Buckets []SeriesPoint `json:"buckets"`
	// Window is the union estimate over the span's buckets — distinct
	// keys across the span, not the sum of per-bucket counts (keys
	// seen in several buckets count once).
	Window float64 `json:"window"`
	// Delta = newest bucket estimate − previous bucket estimate, and
	// RatePerSec = Delta / interval seconds: the rate-of-change signal
	// (a cardinality spike alert triggers on RatePerSec, e.g. a DDoS
	// source-address explosion). The newest bucket is still filling,
	// so a steady stream reads slightly negative until the bucket
	// closes.
	Delta      float64 `json:"delta"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// Series reports the per-bucket cardinality time-series over the
// trailing span for a windowed store. The span is clamped to
// [interval, ring span] and rounded up to whole buckets
// (k = ⌈span/interval⌉); span ≤ 0 means the full ring. It returns
// ErrNotWindowed for unwindowed stores and ErrNotFound for
// never-written names.
func (s *Store) Series(name string, span time.Duration) (Series, error) {
	e, err := s.lookup(name, false)
	if err != nil {
		return Series{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.window == nil {
		return Series{}, fmt.Errorf("%w (%q)", ErrNotWindowed, name)
	}
	s.drainLocked(e) // read barrier: include acknowledged writes
	w := e.window
	s.met.rotations.Add(uint64(w.rotate(s.now())))
	k := SpanBuckets(span, w.interval, len(w.buckets))
	out := Series{
		Store:    name,
		Sketch:   e.total.Name(),
		Interval: w.interval.String(),
		Span:     (time.Duration(k) * w.interval).String(),
		Buckets:  make([]SeriesPoint, 0, k),
	}
	for j := k - 1; j >= 0; j-- {
		epoch := w.epoch - int64(j)
		start := time.Unix(0, epoch*int64(w.interval))
		out.Buckets = append(out.Buckets, SeriesPoint{
			Start:    start,
			End:      start.Add(w.interval),
			Epoch:    epoch,
			Estimate: w.bucketAt(j).Estimate(),
		})
	}
	out.Window = w.mergedSpan(k).Estimate()
	out.Delta = out.Buckets[len(out.Buckets)-1].Estimate - w.bucketAt(1).Estimate()
	out.RatePerSec = out.Delta / w.interval.Seconds()
	return out, nil
}

// SpanBuckets converts a requested span to a bucket count:
// ⌈span/interval⌉ clamped to [1, n], with span ≤ 0 meaning the full
// ring — the span-rounding rule Series applies, exported so the
// cluster series gather rounds identically.
func SpanBuckets(span, interval time.Duration, n int) int {
	if span <= 0 {
		return n
	}
	k := int((span + interval - 1) / interval)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// BucketSnapshot is one live window bucket: its absolute interval
// index and its sketch envelope.
type BucketSnapshot struct {
	Epoch int64
	Env   []byte
}

// RingSnapshot is the per-bucket export of a windowed entry — what a
// peer needs to answer a cluster-wide series: epochs are wall-aligned
// across same-configured nodes, so buckets union epoch by epoch.
// Buckets run oldest → newest.
type RingSnapshot struct {
	Interval time.Duration
	Buckets  []BucketSnapshot
}

// RingSnapshot captures name's live window ring bucket by bucket,
// rotated to the store clock first. Unlike WindowSnapshot (one merged
// envelope) it preserves bucket boundaries, at N envelopes of cost; it
// exists for the cluster series gather and is not a checkpoint format.
func (s *Store) RingSnapshot(name string) (RingSnapshot, error) {
	e, err := s.lookup(name, false)
	if err != nil {
		return RingSnapshot{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.window == nil {
		return RingSnapshot{}, fmt.Errorf("%w (%q)", ErrNotWindowed, name)
	}
	s.drainLocked(e)
	w := e.window
	s.met.rotations.Add(uint64(w.rotate(s.now())))
	out := RingSnapshot{Interval: w.interval, Buckets: make([]BucketSnapshot, 0, len(w.buckets))}
	for j := len(w.buckets) - 1; j >= 0; j-- {
		env, err := appendSketch(nil, w.bucketAt(j))
		if err != nil {
			return RingSnapshot{}, err
		}
		out.Buckets = append(out.Buckets, BucketSnapshot{Epoch: w.epoch - int64(j), Env: env})
	}
	return out, nil
}

// Ring-snapshot wire format ("KNWB"), the scope=buckets snapshot body:
//
//	uvarint ringMagic ("KNWB")
//	uvarint version (1)
//	varint  interval nanos
//	uvarint bucket count
//	per bucket: varint epoch, bytes envelope
const (
	ringMagic   = 0x4b4e5742 // "KNWB"
	ringVersion = 1
)

// Encode appends the wire form to buf (which may be nil).
func (rs RingSnapshot) Encode(buf []byte) []byte {
	w := binenc.Writer{Buf: buf}
	w.Uvarint(ringMagic)
	w.Uvarint(ringVersion)
	w.Varint(int64(rs.Interval))
	w.Uvarint(uint64(len(rs.Buckets)))
	for _, b := range rs.Buckets {
		w.Varint(b.Epoch)
		w.Bytes(b.Env)
	}
	return w.Buf
}

// DecodeRingSnapshot parses a KNWB blob. Envelope bytes are copied out
// of data, so the caller may recycle the buffer.
func DecodeRingSnapshot(data []byte) (RingSnapshot, error) {
	r := binenc.Reader{Buf: data}
	r.Expect(ringMagic, "ring snapshot magic")
	r.Expect(ringVersion, "ring snapshot version")
	rs := RingSnapshot{Interval: time.Duration(r.Varint())}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return RingSnapshot{}, err
	}
	if rs.Interval <= 0 {
		return RingSnapshot{}, fmt.Errorf("store: ring snapshot has non-positive interval %d", rs.Interval)
	}
	if n > 1024 { // the Window.validate bucket ceiling
		return RingSnapshot{}, fmt.Errorf("store: ring snapshot claims %d buckets", n)
	}
	rs.Buckets = make([]BucketSnapshot, 0, n)
	for i := uint64(0); i < n; i++ {
		rs.Buckets = append(rs.Buckets, BucketSnapshot{Epoch: r.Varint(), Env: r.Bytes()})
	}
	if err := r.Err(); err != nil {
		return RingSnapshot{}, err
	}
	return rs, nil
}

// SetQuery opens each named store's snapshot (all-time, or the merged
// window ring under windowed=true) and runs one inclusion–exclusion
// pass over them (knw.NewSetStats): the single-node answer behind
// GET /v1/query. Entry locks are taken one store at a time, so the
// sketches are a per-store-atomic (not cross-store-atomic) view, like
// any two independent reads.
func (s *Store) SetQuery(names []string, windowed bool) (knw.SetStats, error) {
	sketches := make([]knw.Estimator, 0, len(names))
	var buf []byte
	for _, name := range names {
		var env []byte
		var err error
		if windowed {
			env, err = s.WindowSnapshot(name, buf[:0])
		} else {
			env, err = s.Snapshot(name, buf[:0])
		}
		if err != nil {
			return knw.SetStats{}, err
		}
		buf = env
		est, err := knw.Open(env)
		if err != nil {
			return knw.SetStats{}, err
		}
		sketches = append(sketches, est)
	}
	return knw.NewSetStats(sketches...)
}
