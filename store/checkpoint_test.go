package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	knw "repro"
)

// writeCheckpointBytes drops raw bytes where LoadCheckpoint will look.
func writeCheckpointBytes(t *testing.T, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, CheckpointFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// realCheckpoint builds a store with several entries (one windowed
// ring mid-rotation) and returns its checkpoint bytes plus the config
// that can read them back. The sketches are deliberately tiny (one
// 32-counter copy): the corruption sweep below reloads the file once
// per flipped bit position, so file size is the test's running time.
func realCheckpoint(t *testing.T) ([]byte, Config, map[string]Estimate) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	cfg := Config{
		Kind: knw.KindF0,
		Options: []knw.Option{
			knw.WithEpsilon(0.3), knw.WithCopies(1), knw.WithK(32),
			knw.WithUniverseBits(16), knw.WithSeed(1),
		},
		Window: Window{Buckets: 3, Interval: time.Minute},
		Now:    func() time.Time { return now },
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a/m", "b/m", "c/m"} {
		if err := s.Ingest(name, keys(name, 0, 500*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(time.Minute)
	if err := s.Ingest("a/m", keys("late", 0, 200)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Estimate{}
	for _, name := range s.Names() {
		want[name], _ = s.Estimate(name)
	}
	return data, cfg, want
}

// TestLoadCheckpointTruncated: every truncation of a real checkpoint
// must fail with the typed corruption error and leave the registry
// completely empty — no partially restored entries, ever.
func TestLoadCheckpointTruncated(t *testing.T) {
	data, cfg, _ := realCheckpoint(t)
	cuts := []int{0, 1, 2, len(data) / 4, len(data) / 2, 3 * len(data) / 4, len(data) - 1}
	for _, cut := range cuts {
		dir := writeCheckpointBytes(t, data[:cut])
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n, err := fresh.LoadCheckpoint(dir)
		if err == nil {
			t.Errorf("truncation to %d/%d bytes loaded cleanly", cut, len(data))
			continue
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("truncation to %d bytes: error not typed ErrCorruptCheckpoint: %v", cut, err)
		}
		if n != 0 || fresh.Len() != 0 {
			t.Errorf("truncation to %d bytes: partial registry survived (n=%d, Len=%d): %v",
				cut, n, fresh.Len(), fresh.Names())
		}
	}

	// Trailing garbage is corruption too, not silently ignored.
	dir := writeCheckpointBytes(t, append(append([]byte{}, data...), 0xEE, 0xEE))
	fresh, _ := New(cfg)
	if _, err := fresh.LoadCheckpoint(dir); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("trailing bytes: got %v, want ErrCorruptCheckpoint", err)
	}
	if fresh.Len() != 0 {
		t.Errorf("trailing bytes: partial registry survived (Len=%d)", fresh.Len())
	}
}

// TestLoadCheckpointBitFlips: flipping any single bit of a real
// checkpoint either still decodes to a complete registry (flips inside
// counter state change values, not structure) or fails atomically with
// a typed error and an untouched store — never a partial registry,
// never a panic, never an untyped error.
func TestLoadCheckpointBitFlips(t *testing.T) {
	data, cfg, _ := realCheckpoint(t)
	// Every 13th byte keeps the sweep dense but the test fast; the
	// stride is coprime with the varint framing so flips land in
	// headers, name frames, envelope frames, and sketch payloads alike.
	for pos := 0; pos < len(data); pos += 13 {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= mask
			dir := writeCheckpointBytes(t, mut)
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n, err := fresh.LoadCheckpoint(dir)
			if err == nil {
				if n != 3 || fresh.Len() != 3 {
					t.Fatalf("flip at %d/%#02x: clean load but registry has %d/%d entries",
						pos, mask, n, fresh.Len())
				}
				continue
			}
			if !errors.Is(err, ErrCorruptCheckpoint) && !errors.Is(err, knw.ErrIncompatible) {
				t.Errorf("flip at %d/%#02x: untyped error %v", pos, mask, err)
			}
			if n != 0 || fresh.Len() != 0 {
				t.Errorf("flip at %d/%#02x: partial registry survived (n=%d, Len=%d)",
					pos, mask, n, fresh.Len())
			}
		}
	}
}

// TestLoadCheckpointReplacesCleanly: a successful load over a store
// that already has entries replaces the same-named ones (the restart
// path New takes), proving staging installs everything it decoded.
func TestLoadCheckpointReplacesCleanly(t *testing.T) {
	data, cfg, want := realCheckpoint(t)
	dir := writeCheckpointBytes(t, data)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("a/m", keys("pre", 0, 50)); err != nil {
		t.Fatal(err)
	}
	n, err := s.LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || s.Len() != 3 {
		t.Fatalf("restored %d entries into Len()=%d, want 3/3", n, s.Len())
	}
	// Restores are byte-exact sketch replacements: every estimate
	// (window state included) matches the checkpointed store, and a/m's
	// 50 pre-load keys are gone, not merged in.
	for name, w := range want {
		got, err := s.Estimate(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("%s: restored estimate %+v != checkpointed %+v", name, got, w)
		}
	}
}
