// Package store is a multi-tenant registry of named KNW sketches: the
// state layer of the knwd service. Each name (by convention
// "tenant/metric") maps to one all-time sketch plus, optionally, a ring
// of time-bucketed window sketches, all created on first write from the
// store's default Kind and options. The registry is sharded and
// concurrency-safe; every sketch a store creates shares one seed, so
// everything inside a store — window buckets, checkpoint restores,
// snapshots exchanged with same-configured peers — stays mergeable.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	knw "repro"
	"repro/internal/metrics"
)

// ErrNotFound is returned by read operations on names that have never
// been written.
var ErrNotFound = errors.New("store: unknown store")

// ErrNotWindowed is returned by WindowSnapshot on stores built without
// a window configuration.
var ErrNotWindowed = errors.New("store: store is not windowed")

// registryShards is the shard count of the name→entry map. Entry
// lookup is a read-lock on one shard; only first-write creation takes
// a write lock.
const registryShards = 16

// maxNameLen bounds store names so foreign input cannot grow headers
// and checkpoint frames without bound.
const maxNameLen = 256

// Window configures time-bucketed rotation. The zero value disables
// windowing. With Buckets = N and Interval = d, each bucket covers one
// d-wide slice of wall time and the ring covers the last N·d: a
// windowed estimate merges all N buckets, so it reports the distinct
// count over at least (N−1)·d and at most N·d of trailing stream —
// bucket-granular sliding-window semantics.
type Window struct {
	Buckets  int
	Interval time.Duration
}

func (w Window) enabled() bool { return w.Buckets > 0 }

func (w Window) validate() error {
	if !w.enabled() {
		return nil
	}
	if w.Buckets < 2 || w.Buckets > 1024 {
		return fmt.Errorf("store: window buckets must be in [2, 1024], got %d", w.Buckets)
	}
	if w.Interval <= 0 {
		return fmt.Errorf("store: window interval must be positive, got %v", w.Interval)
	}
	return nil
}

// Span is the wall-clock width the full ring covers.
func (w Window) Span() time.Duration { return time.Duration(w.Buckets) * w.Interval }

// Config describes how a Store builds sketches.
type Config struct {
	// Kind is the estimator kind for every sketch the store creates.
	// It must be a wire kind (Kind.Wire): the store checkpoints through
	// MarshalBinary/knw.Open. Defaults to KindConcurrentF0.
	Kind knw.Kind
	// Options are the default construction options. If they do not pin
	// a seed, the store draws one at creation and pins it, so all
	// sketches in the store (and its checkpoints) stay mergeable.
	Options []knw.Option
	// Window enables time-bucketed rotation for every store entry.
	Window Window
	// Now overrides the clock used for window rotation (tests). Nil
	// means time.Now.
	Now func() time.Time
	// CheckpointFullEvery is the cadence of full checkpoint rewrites
	// under CheckpointIncremental: every Nth call writes the full file,
	// the calls between write a cumulative delta file against it
	// (checkpoint.go). Zero means the default (8); 1 makes every
	// incremental call a full checkpoint.
	CheckpointFullEvery int
	// EpochInterval is the background delta-drain cadence (see
	// delta.go). Zero means the default (10ms) with the real clock; when
	// Now is overridden, zero disables the background loop so a test's
	// fake clock is never read from another goroutine — reads still
	// drain on demand, and tests can Flush explicitly. Negative disables
	// the loop unconditionally.
	EpochInterval time.Duration
	// Metrics, when non-nil, receives the store-layer instruments
	// (entry count, ingested keys, window rotations, checkpoint
	// duration/size/age, epoch drain backlog/latency). Nil disables
	// instrumentation.
	Metrics *metrics.Registry
	// Stages, when non-nil, receives the store's share of the
	// knwd_stage_seconds pipeline-stage histogram (stage labels
	// slot_claim, hash, append, epoch_merge). The service layer owns
	// the vec so one family spans the HTTP, store, and cluster layers.
	Stages *metrics.HistogramVec
}

// Store is the sharded, concurrency-safe sketch registry.
type Store struct {
	cfg      Config
	opts     []knw.Option // Config.Options with the seed pinned
	template knw.Estimator
	now      func() time.Time
	shards   [registryShards]registryShard
	met      storeMetrics
	lastCkpt atomic.Int64 // unix nanos of the last successful checkpoint

	// Incremental-checkpoint chain state (checkpoint.go): the id of the
	// last full checkpoint this process wrote, how many delta files have
	// been written against it, and the per-entry versions it captured.
	ckptMu   sync.Mutex
	ckptID   uint64
	ckptSeq  uint64
	ckptBase map[string]uint64

	// Hashing identity, pinned at New: what clients pre-hashing keys on
	// their side (the binary frame codec) must reproduce.
	seed         int64
	universeBits uint
	hasher       knw.SeededHasher[string]

	// Epoch drain state (delta.go).
	slots        int  // delta slots per entry
	persistSlots bool // slots survive drains (max-merge kinds, no window)
	flushFloor   atomic.Int64
	dirtyMu      sync.Mutex
	dirty        []*entry
	pendingKeys  atomic.Int64 // undrained keys across all entries
	dirtySince   atomic.Int64 // unix nanos the dirty list became non-empty
	lastFlush    atomic.Int64 // unix nanos of the last completed Flush pass
	stop         chan struct{}
	loopDone     chan struct{}
	closeOnce    sync.Once
}

type registryShard struct {
	mu sync.RWMutex
	m  map[string]*entry
}

// entry is one named sketch: the all-time total, the optional window
// ring, and the per-P delta slots ingestion writes through (delta.go).
// The entry mutex serializes drains, rotation, estimation, merging,
// and checkpoint capture — so the non-concurrent kinds (F0, L0) are as
// safe inside a store as the sharded ones — while Ingest/IngestHashed
// never take it: they only claim a delta slot.
type entry struct {
	mu     sync.Mutex
	total  knw.Estimator
	window *windowRing
	// version counts state changes to total (drains that merged keys,
	// Merge, Restore, checkpoint install), starting at 1 on creation;
	// enc is the section-level encode cache DeltaSnapshot serves from
	// (version.go). enc is guarded by mu.
	version atomic.Uint64
	enc     *sectionCache

	slots      []deltaSlot
	rr         atomic.Uint32 // round-robin slot-claim hint
	pending    atomic.Int64  // keys in slots not yet drained
	queued     atomic.Bool   // on the store's dirty list
	writeStamp atomic.Int64  // store-clock nanos of the last windowed write
	lastDrain  atomic.Int64  // real-clock nanos of the last drain (floor aging)
}

// New builds an empty store. The configured kind must serialize
// (checkpointing needs MarshalBinary / knw.Open).
func New(cfg Config) (*Store, error) {
	if cfg.Kind == knw.KindInvalid {
		cfg.Kind = knw.KindConcurrentF0
	}
	if !cfg.Kind.Wire() {
		return nil, fmt.Errorf("store: kind %s does not serialize and cannot be checkpointed", cfg.Kind)
	}
	if err := cfg.Window.validate(); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, now: cfg.Now}
	if s.now == nil {
		s.now = time.Now
	}
	// Pin the seed: build one probe sketch with the caller's options and
	// re-append whatever seed it resolved (the caller's when given, a
	// time-drawn one otherwise). Every subsequent sketch then shares it.
	probe, err := knw.New(cfg.Kind, cfg.Options...)
	if err != nil {
		return nil, err
	}
	seeded, ok := probe.(interface{ Seed() int64 })
	if !ok {
		return nil, fmt.Errorf("store: kind %s does not expose its seed", cfg.Kind)
	}
	s.opts = append(append([]knw.Option{}, cfg.Options...), knw.WithSeed(seeded.Seed()))
	s.template = probe // never ingested into; used for compatibility checks
	s.seed = seeded.Seed()
	s.universeBits = 64
	if u, ok := probe.(interface{ UniverseBits() uint }); ok {
		s.universeBits = u.UniverseBits()
	}
	s.hasher = knw.NewHasher[string](s.seed, s.universeBits)
	s.slots = slotsPerEntry()
	// Max-merge kinds on unwindowed stores keep their delta slots across
	// drains (see the drain-policy note in delta.go): re-merging a
	// persistent slot is idempotent, and a slot that is never reset stops
	// re-paying the sketch's expensive low-offset early life every epoch.
	// Turnstile kinds merge by sum (re-merge double-counts) and windowed
	// stores need true per-epoch deltas for bucket attribution, so both
	// reset after every drain.
	s.persistSlots = !cfg.Kind.Turnstile() && !cfg.Window.enabled()
	s.flushFloor.Store(flushFloorMin)
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry)
	}
	s.initMetrics(cfg.Metrics)
	if interval := s.epochInterval(); interval > 0 {
		s.stop = make(chan struct{})
		s.loopDone = make(chan struct{})
		go s.run(interval)
	}
	return s, nil
}

// epochInterval resolves the background drain cadence: the configured
// interval, the default under the real clock, off under a fake clock
// (unless explicitly set) or a negative config.
func (s *Store) epochInterval() time.Duration {
	switch {
	case s.cfg.EpochInterval > 0:
		return s.cfg.EpochInterval
	case s.cfg.EpochInterval < 0 || s.cfg.Now != nil:
		return 0
	default:
		return defaultEpochInterval
	}
}

// Seed returns the store's pinned sketch seed — with UniverseBits,
// the hashing identity a pre-hashing client must reproduce.
func (s *Store) Seed() int64 { return s.seed }

// UniverseBits returns the store's key-universe width.
func (s *Store) UniverseBits() uint { return s.universeBits }

// HashKey maps a string key exactly as the store's ingest path does
// (knw.NewHasher over the pinned seed and universe). IngestHashed on
// the result is equivalent to Ingest on the key — the contract the
// binary frame codec and the cluster forwarder stand on.
func (s *Store) HashKey(key string) uint64 { return s.hasher.Hash(key) }

// Kind returns the store's sketch kind.
func (s *Store) Kind() knw.Kind { return s.cfg.Kind }

// Window returns the store's window configuration (zero if disabled).
func (s *Store) Window() Window { return s.cfg.Window }

// newSketch builds a sketch with the store's kind and pinned options.
// Construction cannot fail: New validated the kind and options once.
func (s *Store) newSketch() knw.Estimator {
	est, err := knw.New(s.cfg.Kind, s.opts...)
	if err != nil {
		panic("store: sketch construction failed after validation: " + err.Error())
	}
	return est
}

// ValidateName checks a store name: non-empty, at most 256 bytes, no
// control bytes. Slashes are allowed (and conventional: tenant/metric).
func ValidateName(name string) error {
	if name == "" {
		return errors.New("store: empty store name")
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("store: store name exceeds %d bytes", maxNameLen)
	}
	if strings.ContainsFunc(name, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
		return errors.New("store: store name contains control characters")
	}
	return nil
}

func (s *Store) shardFor(name string) *registryShard {
	// Inline FNV-1a: hash/fnv would heap-allocate a hasher and a byte
	// copy of the name on every lookup, i.e. on every request.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &s.shards[h%registryShards]
}

// lookup returns the entry for name, creating it (from the store
// defaults) when create is set.
func (s *Store) lookup(name string, create bool) (*entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	sh := s.shardFor(name)
	sh.mu.RLock()
	e := sh.m[name]
	sh.mu.RUnlock()
	if e != nil {
		return e, nil
	}
	if !create {
		return nil, fmt.Errorf("%w %q", ErrNotFound, name)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e = sh.m[name]; e != nil { // lost the create race
		return e, nil
	}
	e = s.newEntry()
	sh.m[name] = e
	s.met.entries.Add(1)
	return e, nil
}

// newEntry builds an empty entry with the store defaults.
func (s *Store) newEntry() *entry {
	e := &entry{total: s.newSketch(), slots: make([]deltaSlot, s.slots)}
	e.version.Store(1) // creation is itself replicable state
	if s.cfg.Window.enabled() {
		e.window = newWindowRing(s.cfg.Window, s.newSketch)
	}
	return e
}

// Ingest records a batch of string keys under name, creating the store
// entry on first write. The batch is hashed and appended to a private
// per-P delta sketch — no entry lock — and merged into the canonical
// total and current window bucket by the next epoch drain or read
// barrier, whichever comes first (delta.go).
func (s *Store) Ingest(name string, keys []string) error {
	e, err := s.lookup(name, true)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}
	if e.window != nil {
		e.writeStamp.Store(s.now().UnixNano())
	}
	// Stage attribution costs three clock reads per batch — amortized
	// over thousands of keys — and only when a stage vec is configured,
	// so library users and microbenchmarks pay nothing.
	var t0, t1 time.Time
	timed := s.met.stageClaim != nil
	if timed {
		t0 = time.Now()
	}
	sl := e.claim()
	if timed {
		t1 = time.Now()
	}
	if sl.sk == nil {
		sl.sk = s.newSketch()
		// The slot's Keyed derives its hasher from the slot sketch's
		// pinned seed and universe, so every slot in the store hashes
		// identically (and identically to Store.HashKey).
		sl.keyed = knw.NewKeyed[string](sl.sk)
	}
	sl.keyed.AddBatch(keys)
	if timed {
		t2 := time.Now()
		s.met.stageClaim.Observe(t1.Sub(t0).Seconds())
		s.met.stageHash.Observe(t2.Sub(t1).Seconds())
	}
	sl.pending += len(keys)
	e.pending.Add(int64(len(keys)))
	s.pendingKeys.Add(int64(len(keys)))
	sl.release()
	s.met.ingestedKeys.Add(uint64(len(keys)))
	s.markDirty(e)
	return nil
}

// IngestHashed is Ingest for pre-hashed keys (clients that run the
// store's hash on their side — Store.HashKey, or knw.NewHasher with
// the store's seed and universe — and ship uint64s).
func (s *Store) IngestHashed(name string, keys []uint64) error {
	e, err := s.lookup(name, true)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}
	if e.window != nil {
		e.writeStamp.Store(s.now().UnixNano())
	}
	var t0, t1 time.Time
	timed := s.met.stageClaim != nil
	if timed {
		t0 = time.Now()
	}
	sl := e.claim()
	if timed {
		t1 = time.Now()
	}
	if sl.sk == nil {
		sl.sk = s.newSketch()
		sl.keyed = knw.NewKeyed[string](sl.sk)
	}
	sl.sk.AddBatch(keys)
	if timed {
		t2 := time.Now()
		s.met.stageClaim.Observe(t1.Sub(t0).Seconds())
		s.met.stageAppend.Observe(t2.Sub(t1).Seconds())
	}
	sl.pending += len(keys)
	e.pending.Add(int64(len(keys)))
	s.pendingKeys.Add(int64(len(keys)))
	sl.release()
	s.met.ingestedKeys.Add(uint64(len(keys)))
	s.markDirty(e)
	return nil
}

// Estimate is one store entry's read-side report.
type Estimate struct {
	Store     string  `json:"store"`
	Sketch    string  `json:"sketch"`
	AllTime   float64 `json:"all_time"`
	SpaceBits int     `json:"space_bits"`
	// Window fields are present only for windowed stores.
	Windowed   bool    `json:"windowed"`
	Window     float64 `json:"window,omitempty"`
	WindowSpan string  `json:"window_span,omitempty"`
}

// Estimate reports the all-time estimate and, for windowed stores, the
// merged estimate over the live window ring. It returns ErrNotFound
// for never-written names.
func (s *Store) Estimate(name string) (Estimate, error) {
	e, err := s.lookup(name, false)
	if err != nil {
		return Estimate{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s.drainLocked(e) // read barrier: include this caller's completed writes
	out := Estimate{
		Store:     name,
		Sketch:    e.total.Name(),
		AllTime:   e.total.Estimate(),
		SpaceBits: e.total.SpaceBits(),
	}
	if e.window != nil {
		s.met.rotations.Add(uint64(e.window.rotate(s.now())))
		out.Windowed = true
		out.Window = e.window.estimate()
		out.WindowSpan = s.cfg.Window.Span().String()
		out.SpaceBits += e.window.spaceBits()
	}
	return out, nil
}

// Merge folds a peer's envelope (the bytes of its snapshot for the
// same logical store) into name's all-time sketch, creating the entry
// if needed — the cross-node aggregation primitive. The envelope must
// hold the store's kind with the store's exact options and seed;
// mismatches return an error wrapping knw.ErrIncompatible and corrupt
// payloads an ordinary decode error. Merged keys are not attributed to
// window buckets: the peer's event times are unknown, so remote counts
// appear only in the all-time estimate.
func (s *Store) Merge(name string, envelope []byte) error {
	peer, err := knw.Open(envelope)
	if err != nil {
		return err
	}
	// Validate against the store template before create-on-merge, so a
	// rejected envelope never leaves behind an empty ghost entry.
	if err := knw.Compatible(s.template, peer); err != nil {
		return err
	}
	e, lerr := s.lookup(name, true)
	if lerr != nil {
		return lerr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := knw.MergeInto(e.total, peer); err != nil {
		return err
	}
	e.version.Add(1)
	return nil
}

// MergeWindow folds a peer's window envelope into name's current
// window bucket, creating the entry if needed — the windowed
// counterpart of Merge, used by cluster handoff when a node ships its
// live window to a new owner. The merged keys land in the bucket that
// is current at arrival: the peer's per-bucket event times are not in
// the envelope, so the receiving ring treats them as "seen now", which
// keeps the window estimate an upper-bounded union (a key can only
// stay visible slightly longer, never disappear early). The all-time
// sketch and its delta version are untouched.
func (s *Store) MergeWindow(name string, envelope []byte) error {
	peer, err := knw.Open(envelope)
	if err != nil {
		return err
	}
	if err := knw.Compatible(s.template, peer); err != nil {
		return err
	}
	e, lerr := s.lookup(name, true)
	if lerr != nil {
		return lerr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.window == nil {
		return fmt.Errorf("%w (%q)", ErrNotWindowed, name)
	}
	s.met.rotations.Add(uint64(e.window.rotate(s.now())))
	return knw.MergeInto(e.window.current(), peer)
}

// Snapshot appends name's all-time sketch as a self-describing
// envelope to buf (which may be nil) — the bytes a peer feeds to Merge
// or PUT back through Restore. It returns ErrNotFound for
// never-written names.
func (s *Store) Snapshot(name string, buf []byte) ([]byte, error) {
	e, err := s.lookup(name, false)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s.drainLocked(e) // envelopes must carry every acknowledged write
	return appendSketch(buf, e.total)
}

// WindowSnapshot appends the union of name's live window ring as a
// single self-describing envelope — the windowed counterpart of
// Snapshot. A peer merges it like any other envelope, so cluster
// scatter-gather can union windowed estimates across nodes without
// shipping the full per-bucket ring state (which only checkpoints
// need). The ring is rotated to the store clock first, so the envelope
// never contains expired buckets. It returns ErrNotWindowed for
// unwindowed stores and ErrNotFound for never-written names.
func (s *Store) WindowSnapshot(name string, buf []byte) ([]byte, error) {
	e, err := s.lookup(name, false)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.window == nil {
		return nil, fmt.Errorf("%w (%q)", ErrNotWindowed, name)
	}
	s.drainLocked(e)
	s.met.rotations.Add(uint64(e.window.rotate(s.now())))
	return appendSketch(buf, e.window.merged())
}

// Restore replaces name's all-time sketch with the envelope's,
// creating the entry if needed. Like Merge it rejects envelopes whose
// kind or settings mismatch the store (wrapping knw.ErrIncompatible).
// Window buckets are left untouched: restored history has no event
// times.
func (s *Store) Restore(name string, envelope []byte) error {
	peer, err := knw.Open(envelope)
	if err != nil {
		return err
	}
	if err := knw.Compatible(s.template, peer); err != nil {
		return err
	}
	e, lerr := s.lookup(name, true)
	if lerr != nil {
		return lerr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Fold pending deltas into the outgoing total first: writes
	// acknowledged before the Restore belong to the replaced state, not
	// the restored one. Then discard the slots — persistent ones retain
	// history that must not leak into the restored sketch.
	s.drainLocked(e)
	s.discardSlotsLocked(e)
	e.total = peer
	e.version.Add(1)
	return nil
}

// appendSketch appends est's envelope to buf through the pooled
// AppendBinary path when the concrete type provides it.
func appendSketch(buf []byte, est knw.Estimator) ([]byte, error) {
	type appender interface {
		AppendBinary([]byte) ([]byte, error)
	}
	if a, ok := est.(appender); ok {
		return a.AppendBinary(buf)
	}
	type marshaler interface {
		MarshalBinary() ([]byte, error)
	}
	m, ok := est.(marshaler)
	if !ok {
		return nil, fmt.Errorf("store: %s does not serialize", est.Name())
	}
	b, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(buf, b...), nil
}

// Names returns every store name in sorted order.
func (s *Store) Names() []string {
	var names []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name := range sh.m {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Len returns the number of store entries.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
