package store_test

import (
	"fmt"
	"time"

	knw "repro"
	"repro/store"
)

// A windowed store answers cardinality time-series of arbitrary span:
// each ring bucket is its own same-seed sketch, per-bucket estimates
// are read directly, and the span estimate is their union — keys seen
// in several buckets count once. Delta compares the live bucket to the
// previous one, the rate-of-change signal a cardinality-spike alert
// (e.g. a DDoS source-address explosion) triggers on. Small counts are
// exact, so the output is deterministic.
func ExampleStore_Series() {
	base := time.Unix(1_700_000_000, 0).Truncate(time.Minute)
	now := base
	st, err := store.New(store.Config{
		Kind:    knw.KindF0,
		Options: []knw.Option{knw.WithSeed(7)},
		Window:  store.Window{Buckets: 4, Interval: time.Minute},
		Now:     func() time.Time { return now },
	})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	ingest := func(lo, hi int) {
		ks := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ks = append(ks, fmt.Sprintf("ip-%d", i))
		}
		if err := st.Ingest("edge/src", ks); err != nil {
			panic(err)
		}
		// Read barrier: fold the write into the live bucket before the
		// fake clock leaves the interval (a real clock drains on its own).
		if _, err := st.Estimate("edge/src"); err != nil {
			panic(err)
		}
	}
	ingest(0, 20) // 20 source addresses
	now = base.Add(time.Minute)
	ingest(10, 30) // 10 returning, 10 new
	now = base.Add(2 * time.Minute)
	ingest(0, 80) // spike

	s, err := st.Series("edge/src", 3*time.Minute)
	if err != nil {
		panic(err)
	}
	for _, b := range s.Buckets {
		fmt.Printf("t+%-4s %.0f sources\n", b.Start.Sub(base), b.Estimate)
	}
	fmt.Printf("span union: %.0f, delta: %+.0f\n", s.Window, s.Delta)
	// Output:
	// t+0s   20 sources
	// t+1m0s 20 sources
	// t+2m0s 80 sources
	// span union: 80, delta: +60
}
