package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	knw "repro"
	"repro/internal/binenc"
)

// ReplicaSet is a node's merged view of its peers: for every (peer,
// store) pair the last envelope gossip pulled, held open beside the
// canonical local Store. Estimates over the set are the union of the
// local sketch and every replica — the O(1) read path that replaces
// per-request scatter-gather — and the whole set checkpoints to disk
// so a restarted node serves a warm view while gossip re-converges.
//
// The set is passive storage: cluster/gossip.go drives it (digest →
// pull → ApplyFull/ApplyDelta). Every applied envelope is validated
// against the store's template (kind, options, seed) before it is
// accepted, so a misconfigured peer can corrupt nothing.

// ErrStaleBase is returned by ApplyDelta when the delta's base version
// does not match the replica's held version: the caller must re-pull a
// full envelope (base 0).
var ErrStaleBase = errors.New("store: delta base does not match held replica version")

// replica is one (peer, store) envelope: the raw bytes (the delta
// base for the next apply, and what checkpoints persist) plus the
// opened estimator estimates merge from.
type replica struct {
	version uint64
	env     []byte
	est     knw.Estimator
}

// peerReplicas is everything held from one peer, pinned to the peer's
// process instance id.
type peerReplicas struct {
	instance uint64
	stores   map[string]*replica
}

// ViewEstimate is one merged-view read.
type ViewEstimate struct {
	// AllTime is the union estimate over the local sketch and every
	// replica holding the store.
	AllTime float64
	// Replicas counts the peer replicas that contributed.
	Replicas int
	// LocalFound reports whether the local store holds the name itself.
	LocalFound bool
}

// viewCache is one store's memoized merged estimate, valid while the
// local entry version and the replica apply counter both stand still.
type viewCache struct {
	localVer uint64
	touch    uint64
	out      ViewEstimate
}

// ReplicaSet holds and serves the replica view. All methods are safe
// for concurrent use.
type ReplicaSet struct {
	st *Store

	mu    sync.Mutex
	peers map[string]*peerReplicas
	touch map[string]uint64 // per-store apply counter (cache invalidation)
	cache map[string]viewCache
}

// NewReplicaSet builds an empty replica view over st.
func NewReplicaSet(st *Store) *ReplicaSet {
	return &ReplicaSet{
		st:    st,
		peers: make(map[string]*peerReplicas),
		touch: make(map[string]uint64),
		cache: make(map[string]viewCache),
	}
}

// SetInstance records peer's process instance id, creating the peer on
// first contact. When the id changes (the peer restarted), every held
// version resets to zero — the peer's new counters share nothing with
// its old life, so the next pull must fetch full envelopes — while the
// envelopes themselves stay serving reads until replaced. It reports
// whether the id changed.
func (rs *ReplicaSet) SetInstance(peer string, instance uint64) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	pr := rs.peers[peer]
	if pr == nil {
		rs.peers[peer] = &peerReplicas{instance: instance, stores: make(map[string]*replica)}
		return false
	}
	if pr.instance == instance {
		return false
	}
	pr.instance = instance
	for _, r := range pr.stores {
		r.version = 0
	}
	return true
}

// BaseVersions returns the versions held from peer, the base vector a
// pull request sends. Unknown peers return an empty map.
func (rs *ReplicaSet) BaseVersions(peer string) map[string]uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]uint64)
	if pr := rs.peers[peer]; pr != nil {
		for name, r := range pr.stores {
			out[name] = r.version
		}
	}
	return out
}

// ApplyFull replaces the (peer, name) replica with a full envelope at
// version. The envelope is validated against the store template;
// incompatible or undecodable envelopes are rejected wrapping
// knw.ErrIncompatible or a decode error, leaving the old replica in
// place.
func (rs *ReplicaSet) ApplyFull(peer, name string, version uint64, env []byte) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	est, err := rs.st.openCompatible(env)
	if err != nil {
		return fmt.Errorf("store: replica %q from %s: %w", name, peer, err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	pr := rs.peers[peer]
	if pr == nil {
		pr = &peerReplicas{stores: make(map[string]*replica)}
		rs.peers[peer] = pr
	}
	pr.stores[name] = &replica{version: version, env: append([]byte(nil), env...), est: est}
	rs.touch[name]++
	return nil
}

// ApplyDelta splices a KNWD delta onto the held (peer, name) replica.
// A missing replica or a base-version mismatch returns ErrStaleBase
// (re-pull full); a structurally incompatible or corrupt delta returns
// the underlying error. The old replica survives any failure.
func (rs *ReplicaSet) ApplyDelta(peer, name string, delta []byte) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	d, err := knw.DecodeDelta(delta)
	if err != nil {
		return err
	}
	rs.mu.Lock()
	pr := rs.peers[peer]
	var r *replica
	if pr != nil {
		r = pr.stores[name]
	}
	if r == nil || r.version != d.Base || r.version == 0 {
		rs.mu.Unlock()
		return fmt.Errorf("%w (%q from %s: held %d, delta base %d)",
			ErrStaleBase, name, peer, heldVersion(r), d.Base)
	}
	baseEnv := r.env
	rs.mu.Unlock()

	// Splice and validate outside the lock: ApplyDelta allocates and
	// openCompatible decodes a whole sketch.
	env, err := knw.ApplyDelta(baseEnv, delta)
	if err != nil {
		return err
	}
	est, err := rs.st.openCompatible(env)
	if err != nil {
		return fmt.Errorf("store: replica %q from %s after delta: %w", name, peer, err)
	}

	rs.mu.Lock()
	defer rs.mu.Unlock()
	// Re-check under the lock: a concurrent apply may have moved the
	// replica past our base.
	if pr = rs.peers[peer]; pr != nil {
		r = pr.stores[name]
	} else {
		r = nil
	}
	if r == nil || r.version != d.Base {
		return fmt.Errorf("%w (%q from %s: concurrent apply)", ErrStaleBase, name, peer)
	}
	pr.stores[name] = &replica{version: d.Next, env: env, est: est}
	rs.touch[name]++
	return nil
}

func heldVersion(r *replica) uint64 {
	if r == nil {
		return 0
	}
	return r.version
}

// Estimate serves the merged local+replica estimate for name. The
// local store is read through a versioned snapshot (which drains, so
// the view keeps read-your-writes for local ingest); the merge across
// replicas is memoized and only recomputed when the local version or
// the replica set actually changed. ErrNotFound means neither the
// local store nor any replica holds the name.
func (rs *ReplicaSet) Estimate(name string) (ViewEstimate, error) {
	ds, err := rs.st.DeltaSnapshot(name, 0, false)
	localFound := err == nil
	if err != nil && !errors.Is(err, ErrNotFound) {
		return ViewEstimate{}, err
	}
	var localVer uint64
	if localFound {
		localVer = ds.Version
	}

	rs.mu.Lock()
	defer rs.mu.Unlock()
	if c, ok := rs.cache[name]; ok && c.localVer == localVer && c.touch == rs.touch[name] {
		return c.out, nil
	}
	var acc knw.Estimator
	if localFound {
		acc, err = knw.Open(ds.Env)
		if err != nil {
			return ViewEstimate{}, err
		}
	}
	replicas := 0
	for _, pr := range rs.peers {
		r := pr.stores[name]
		if r == nil {
			continue
		}
		// Replicas were validated at apply time, so failures here are
		// bugs; reads degrade to the remaining contributions rather than
		// erroring.
		if acc == nil {
			// Open a fresh copy from the raw envelope: the accumulator is
			// mutated by later merges and must never be a held replica.
			fresh, err := knw.Open(r.env)
			if err != nil {
				continue
			}
			acc = fresh
		} else if err := knw.MergeInto(acc, r.est); err != nil {
			continue
		}
		replicas++
	}
	if acc == nil {
		return ViewEstimate{}, fmt.Errorf("%w %q", ErrNotFound, name)
	}
	out := ViewEstimate{AllTime: acc.Estimate(), Replicas: replicas, LocalFound: localFound}
	rs.cache[name] = viewCache{localVer: localVer, touch: rs.touch[name], out: out}
	return out, nil
}

// MergedSketch builds a fresh estimator holding the union of the local
// store's sketch and every held replica for name — the sketch-valued
// counterpart of Estimate, for set-algebra reads over the O(1) gossip
// view (the cluster's /v1/query mode=local). The returned sketch is
// freshly opened and caller-owned; nothing aliases held replicas, so
// the caller may merge or diff it freely. Unlike Estimate the result
// is not memoized: a shared cached sketch could not be handed out for
// mutation.
func (rs *ReplicaSet) MergedSketch(name string) (knw.Estimator, ViewEstimate, error) {
	ds, err := rs.st.DeltaSnapshot(name, 0, false)
	localFound := err == nil
	if err != nil && !errors.Is(err, ErrNotFound) {
		return nil, ViewEstimate{}, err
	}

	rs.mu.Lock()
	defer rs.mu.Unlock()
	var acc knw.Estimator
	if localFound {
		acc, err = knw.Open(ds.Env)
		if err != nil {
			return nil, ViewEstimate{}, err
		}
	}
	replicas := 0
	for _, pr := range rs.peers {
		r := pr.stores[name]
		if r == nil {
			continue
		}
		// As in Estimate: replicas were validated at apply time, so reads
		// degrade to the remaining contributions rather than erroring.
		if acc == nil {
			fresh, err := knw.Open(r.env)
			if err != nil {
				continue
			}
			acc = fresh
		} else if err := knw.MergeInto(acc, r.est); err != nil {
			continue
		}
		replicas++
	}
	if acc == nil {
		return nil, ViewEstimate{}, fmt.Errorf("%w %q", ErrNotFound, name)
	}
	return acc, ViewEstimate{AllTime: acc.Estimate(), Replicas: replicas, LocalFound: localFound}, nil
}

// DropPeer discards every replica held for one peer and returns how
// many were dropped — called when cluster membership removes the peer,
// so merged-view estimates stop counting a departed node's envelopes.
// (Its keys survive: handoff merged them into the new owners' own
// stores before the membership change committed.) Each affected
// store's view cache is invalidated.
func (rs *ReplicaSet) DropPeer(peer string) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	pr := rs.peers[peer]
	if pr == nil {
		return 0
	}
	for name := range pr.stores {
		rs.touch[name]++
	}
	delete(rs.peers, peer)
	return len(pr.stores)
}

// Stats reports the view's size: peers known, replicas held.
func (rs *ReplicaSet) Stats() (peers, replicas int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, pr := range rs.peers {
		replicas += len(pr.stores)
	}
	return len(rs.peers), replicas
}

// Replica checkpoint file ("KNWR"): the serialized replica view,
// written beside the store checkpoint so a restarted node serves a
// warm merged view immediately. Peer instance ids are persisted —
// they identify the peer's process, not ours — so held versions stay
// valid across our own restarts for peers that kept running.
//
//	uvarint replicaMagic ("KNWR")
//	uvarint version (1)
//	uvarint peer count
//	per peer (sorted by url):
//	  bytes   peer url
//	  uvarint instance
//	  uvarint store count
//	  per store (sorted by name):
//	    bytes   name
//	    uvarint version
//	    bytes   envelope
const (
	replicaMagic   = 0x4b4e5752 // "KNWR"
	replicaVersion = 1
	// ReplicaFile is the file name ReplicaSet.Checkpoint writes inside
	// its directory argument.
	ReplicaFile = "replicas.knwr"
)

// Checkpoint atomically writes the replica view to dir/replicas.knwr.
func (rs *ReplicaSet) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rs.mu.Lock()
	w := binenc.Writer{}
	w.Uvarint(replicaMagic)
	w.Uvarint(replicaVersion)
	w.Uvarint(uint64(len(rs.peers)))
	peers := make([]string, 0, len(rs.peers))
	for peer := range rs.peers {
		peers = append(peers, peer)
	}
	sort.Strings(peers)
	for _, peer := range peers {
		pr := rs.peers[peer]
		w.Bytes([]byte(peer))
		w.Uvarint(pr.instance)
		w.Uvarint(uint64(len(pr.stores)))
		names := make([]string, 0, len(pr.stores))
		for name := range pr.stores {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r := pr.stores[name]
			w.Bytes([]byte(name))
			w.Uvarint(r.version)
			w.Bytes(r.env)
		}
	}
	rs.mu.Unlock()
	return writeFileAtomic(filepath.Join(dir, ReplicaFile), w.Buf)
}

// LoadCheckpoint restores the replica view written by Checkpoint,
// replacing the current view. A missing file is not an error. Loading
// is all-or-nothing: every envelope is decoded and validated before
// any of it is installed, and corrupt files return an error wrapping
// ErrCorruptCheckpoint. It returns the number of replicas restored.
func (rs *ReplicaSet) LoadCheckpoint(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, ReplicaFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	r := binenc.Reader{Buf: data}
	r.Expect(replicaMagic, "replica checkpoint magic")
	if v := r.Uvarint(); r.Err() == nil && v != replicaVersion {
		return 0, fmt.Errorf("%w: unsupported replica version %d", ErrCorruptCheckpoint, v)
	}
	peerCount := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("%w: bad replica header: %v", ErrCorruptCheckpoint, err)
	}
	if peerCount > 1<<16 {
		return 0, fmt.Errorf("%w: replica header claims %d peers", ErrCorruptCheckpoint, peerCount)
	}
	staged := make(map[string]*peerReplicas, peerCount)
	total := 0
	for p := uint64(0); p < peerCount; p++ {
		peer := string(r.BytesView())
		instance := r.Uvarint()
		storeCount := r.Uvarint()
		if err := r.Err(); err != nil {
			return 0, fmt.Errorf("%w: bad replica peer frame: %v", ErrCorruptCheckpoint, err)
		}
		if peer == "" || storeCount > 1<<20 || staged[peer] != nil {
			return 0, fmt.Errorf("%w: bad replica peer %q", ErrCorruptCheckpoint, peer)
		}
		pr := &peerReplicas{instance: instance, stores: make(map[string]*replica, storeCount)}
		for i := uint64(0); i < storeCount; i++ {
			name := string(r.BytesView())
			version := r.Uvarint()
			env := r.Bytes()
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("%w: bad replica frame: %v", ErrCorruptCheckpoint, err)
			}
			if err := ValidateName(name); err != nil {
				return 0, fmt.Errorf("%w: replica name: %v", ErrCorruptCheckpoint, err)
			}
			if pr.stores[name] != nil {
				return 0, fmt.Errorf("%w: duplicate replica %q from %s", ErrCorruptCheckpoint, name, peer)
			}
			est, err := rs.st.openCompatible(env)
			if err != nil {
				return 0, wrapEntryErr(name, err)
			}
			pr.stores[name] = &replica{version: version, env: env, est: est}
			total++
		}
		staged[peer] = pr
	}
	if len(r.Buf) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes in replica file", ErrCorruptCheckpoint, len(r.Buf))
	}
	rs.mu.Lock()
	rs.peers = staged
	for _, pr := range staged {
		for name := range pr.stores {
			rs.touch[name]++
		}
	}
	rs.mu.Unlock()
	return total, nil
}
