package store

import (
	"testing"
	"time"

	knw "repro"
)

// Window-ring edge cases: rotation landing exactly on a bucket
// boundary, the clock stepping backwards, and gaps long enough to
// expire every bucket. All drive the ring through the store with a
// fake clock; bucket occupancy is asserted through the windowed
// estimate and the rotation counter.

// windowTestStore builds a windowed store whose clock the test owns.
// The returned setter moves absolute time (in intervals from epoch 0).
func windowTestStore(t *testing.T, buckets int, interval time.Duration) (*Store, func(float64)) {
	t.Helper()
	// Start exactly ON a bucket boundary so "landing on a boundary"
	// cases are exercised by integer steps.
	base := time.Unix(0, 0).Add(1_000_000 * interval)
	now := base
	cfg := Config{
		Kind:    knw.KindF0,
		Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(1)},
		Window:  Window{Buckets: buckets, Interval: interval},
		Now:     func() time.Time { return now },
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, func(intervals float64) {
		now = base.Add(time.Duration(intervals * float64(interval)))
	}
}

// step is one scripted action against the windowed store.
type step struct {
	at         float64 // clock position, in intervals since the base boundary
	ingest     []string
	wantWindow float64 // expected windowed estimate after the action (-1: skip)
	tol        float64 // relative tolerance on wantWindow (0 means exact)
}

func runSteps(t *testing.T, buckets int, steps []step) {
	t.Helper()
	s, setClock := windowTestStore(t, buckets, time.Minute)
	for i, st := range steps {
		setClock(st.at)
		if st.ingest != nil {
			if err := s.Ingest("t/m", st.ingest); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		if st.wantWindow < 0 {
			continue
		}
		est, err := s.Estimate("t/m")
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if st.tol == 0 {
			if est.Window != st.wantWindow {
				t.Fatalf("step %d (t=%.2f): window = %.1f, want exactly %.1f",
					i, st.at, est.Window, st.wantWindow)
			}
			continue
		}
		within(t, "window estimate", est.Window, st.wantWindow, st.tol)
	}
}

// TestWindowBoundaryRotation: ingests landing exactly on bucket
// boundaries go to the NEW bucket (epoch semantics: a boundary instant
// belongs to the interval it opens), and each boundary crossing
// advances the ring by exactly one bucket.
func TestWindowBoundaryRotation(t *testing.T) {
	runSteps(t, 3, []step{
		// t=0: exactly on a boundary; first write starts the ring.
		{at: 0, ingest: keys("a", 0, 1000), wantWindow: 1000, tol: 0.25},
		// t=1.0 exactly: one rotation; both buckets live.
		{at: 1.0, ingest: keys("b", 0, 1000), wantWindow: 2000, tol: 0.25},
		// t=2.0 exactly: second rotation; three buckets live (ring full).
		{at: 2.0, ingest: keys("c", 0, 1000), wantWindow: 3000, tol: 0.25},
		// t=3.0 exactly: the ring wraps — bucket "a" is recycled, so the
		// window drops to b+c+d.
		{at: 3.0, ingest: keys("d", 0, 1000), wantWindow: 3000, tol: 0.25},
		// Still inside interval 3 (t=3.999…): no further rotation, "b"
		// still live.
		{at: 3.9999, ingest: keys("e", 0, 1000), wantWindow: 4000, tol: 0.25},
		// t=4.0 exactly: "b" expires.
		{at: 4.0, wantWindow: 3000, tol: 0.25},
	})
}

// TestWindowClockBackwards: a clock step backwards must not rotate,
// must not resurrect expired buckets, and the ring must pick up where
// it left off once the clock passes its high-water mark again.
func TestWindowClockBackwards(t *testing.T) {
	runSteps(t, 3, []step{
		{at: 0, ingest: keys("a", 0, 1000), wantWindow: 1000, tol: 0.25},
		{at: 1.0, ingest: keys("b", 0, 1000), wantWindow: 2000, tol: 0.25},
		// Clock jumps 2 intervals back (NTP step, VM resume). Writes keep
		// landing in the CURRENT bucket; nothing rotates, nothing expires.
		{at: -1.0, ingest: keys("c", 0, 1000), wantWindow: 3000, tol: 0.25},
		// Still behind the high-water mark: same story.
		{at: 0.5, ingest: keys("d", 0, 500), wantWindow: 3500, tol: 0.25},
		// Clock recovers past the mark: exactly one rotation (epoch 1→2),
		// everything written during the rewind is in the bucket that was
		// current the whole time — the window keeps all 4000 keys.
		{at: 2.0, ingest: keys("e", 0, 500), wantWindow: 4000, tol: 0.25},
		// Two more intervals: the pre-rewind bucket "a" and the rewind
		// bucket (b+c+d) expire; only e's and later buckets remain.
		{at: 4.0, wantWindow: 500, tol: 0.3},
	})
}

// TestWindowFullExpiry: gaps of exactly N, more than N, and hugely
// more than N intervals all drain the whole window (and only the
// window — the all-time total survives), without over-rotating.
func TestWindowFullExpiry(t *testing.T) {
	cases := []struct {
		name string
		gap  float64 // intervals between last write and the read
	}{
		{"exactly N", 3.0},
		{"N plus one", 4.0},
		{"enormous gap", 1e6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, setClock := windowTestStore(t, 3, time.Minute)
			if err := s.Ingest("t/m", keys("a", 0, 2000)); err != nil {
				t.Fatal(err)
			}
			setClock(tc.gap)
			est, err := s.Estimate("t/m")
			if err != nil {
				t.Fatal(err)
			}
			if est.Window != 0 {
				t.Fatalf("window after %s gap = %.1f, want exactly 0", tc.name, est.Window)
			}
			within(t, "all-time survives expiry", est.AllTime, 2000, 0.25)

			// The drained ring keeps working: a fresh write is visible.
			if err := s.Ingest("t/m", keys("b", 0, 300)); err != nil {
				t.Fatal(err)
			}
			est, _ = s.Estimate("t/m")
			within(t, "window after re-ingest", est.Window, 300, 0.3)
		})
	}
}

// TestWindowRotationCounter: the rotation metric advances by exactly
// the number of recycled buckets — one per elapsed interval, capped at
// the ring size for long gaps, zero for backwards steps.
func TestWindowRotationCounter(t *testing.T) {
	ring := newWindowRing(Window{Buckets: 3, Interval: time.Minute}, func() knw.Estimator {
		return knw.NewF0(knw.WithEpsilon(0.3), knw.WithCopies(1), knw.WithSeed(1))
	})
	at := func(iv int64) time.Time { return time.Unix(0, iv*int64(time.Minute)) }
	steps := []struct {
		iv   int64
		want int
	}{
		{100, 0},  // first observation starts the ring, no recycling
		{100, 0},  // same interval
		{101, 1},  // boundary crossing
		{99, 0},   // backwards: no rotation
		{101, 0},  // back to the high-water interval: still nothing new
		{104, 3},  // +3 intervals
		{1000, 3}, // gap ≫ N: capped at ring size
	}
	for i, st := range steps {
		if got := ring.rotate(at(st.iv)); got != st.want {
			t.Fatalf("step %d (interval %d): rotate = %d, want %d", i, st.iv, got, st.want)
		}
	}
}
