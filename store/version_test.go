package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	knw "repro"
)

// TestVersionBumps: the version counter moves on exactly the
// operations that change canonical state.
func TestVersionBumps(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Version("acme/users"); got != 0 {
		t.Fatalf("version before write = %d", got)
	}
	if err := s.Ingest("acme/users", keys("u", 0, 100)); err != nil {
		t.Fatal(err)
	}
	if got := s.Version("acme/users"); got != 1 {
		t.Fatalf("version before drain = %d, want 1 (creation)", got)
	}
	s.Flush()
	v := s.Version("acme/users")
	if v != 2 {
		t.Fatalf("version after drain = %d, want 2", v)
	}
	s.Flush() // nothing pending: no bump
	if got := s.Version("acme/users"); got != v {
		t.Fatalf("idle flush bumped version %d → %d", v, got)
	}
	env, err := s.Snapshot("acme/users", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("acme/users", env); err != nil {
		t.Fatal(err)
	}
	if got := s.Version("acme/users"); got != v+1 {
		t.Fatalf("version after merge = %d, want %d", got, v+1)
	}
	if err := s.Restore("acme/users", env); err != nil {
		t.Fatal(err)
	}
	if got := s.Version("acme/users"); got != v+2 {
		t.Fatalf("version after restore = %d, want %d", got, v+2)
	}
	d := s.Digest()
	if d["acme/users"] != v+2 {
		t.Fatalf("digest = %v", d)
	}
}

// TestDeltaSnapshot: full on first contact, nil when current, a
// byte-identical splice when served from a known base — and smaller
// than the full envelope once the sketch has warmed up.
func TestDeltaSnapshot(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	name := "acme/users"
	if _, err := s.DeltaSnapshot(name, 0, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delta snapshot before write: %v", err)
	}
	if err := s.Ingest(name, keys("u", 0, 50_000)); err != nil {
		t.Fatal(err)
	}
	full, err := s.DeltaSnapshot(name, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta || full.Env == nil {
		t.Fatalf("base-0 snapshot: delta=%v env=%dB", full.Delta, len(full.Env))
	}
	want, err := s.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Env, want) {
		t.Fatal("base-0 snapshot differs from Snapshot")
	}

	// Current base: nothing to ship.
	cur, err := s.DeltaSnapshot(name, full.Version, false)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Env != nil || cur.Version != full.Version {
		t.Fatalf("current-base snapshot: %+v", cur)
	}

	// Steady state: re-ingesting keys the sketch already holds bumps the
	// version (the drain merged a batch) but leaves every section
	// byte-identical, so the delta is a near-empty envelope — the size
	// win replication stands on.
	if err := s.Ingest(name, keys("u", 0, 200)); err != nil {
		t.Fatal(err)
	}
	ds, err := s.DeltaSnapshot(name, full.Version, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Delta {
		t.Fatalf("steady-state snapshot served full (%dB)", len(ds.Env))
	}
	if ds.Version <= full.Version {
		t.Fatalf("delta version %d not past base %d", ds.Version, full.Version)
	}
	if len(ds.Env)*5 > len(full.Env) {
		t.Fatalf("steady-state delta %dB is not ≥5x smaller than full %dB",
			len(ds.Env), len(full.Env))
	}
	newFull, err := s.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := knw.ApplyDelta(full.Env, ds.Env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newFull) {
		t.Fatal("applied delta differs from the new full envelope")
	}

	// A few genuinely fresh keys change some (not all) copy sections: the
	// delta splices them into the old full and reproduces the new full
	// byte for byte — the merge-equivalence the wire relies on.
	if err := s.Ingest(name, keys("v", 0, 3)); err != nil {
		t.Fatal(err)
	}
	ds2, err := s.DeltaSnapshot(name, ds.Version, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Delta {
		t.Fatalf("fresh-key snapshot served full (%dB)", len(ds2.Env))
	}
	newFull2, err := s.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := knw.ApplyDelta(newFull, ds2.Env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, newFull2) {
		t.Fatal("spliced delta differs from the new full envelope")
	}

	// Future/unknown bases fall back to full.
	fb, err := s.DeltaSnapshot(name, ds.Version+100, false)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Delta || fb.Env == nil {
		t.Fatalf("future base served delta: %+v", fb)
	}
}

// TestReplicaSetFlow: full apply, delta apply, stale-base rejection,
// instance change, and the merged estimate.
func TestReplicaSetFlow(t *testing.T) {
	local, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New(testConfig()) // same seed: compatible
	if err != nil {
		t.Fatal(err)
	}
	rs := NewReplicaSet(local)

	if err := local.Ingest("acme/users", keys("local", 0, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := remote.Ingest("acme/users", keys("remote", 0, 3000)); err != nil {
		t.Fatal(err)
	}

	rs.SetInstance("http://peer-a", 42)
	snap, err := remote.DeltaSnapshot("acme/users", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ApplyFull("http://peer-a", "acme/users", snap.Version, snap.Env); err != nil {
		t.Fatal(err)
	}
	bases := rs.BaseVersions("http://peer-a")
	if bases["acme/users"] != snap.Version {
		t.Fatalf("bases = %v, want version %d", bases, snap.Version)
	}

	ve, err := rs.Estimate("acme/users")
	if err != nil {
		t.Fatal(err)
	}
	if !ve.LocalFound || ve.Replicas != 1 {
		t.Fatalf("view = %+v", ve)
	}
	within(t, "merged view estimate", ve.AllTime, 6000, 0.25)

	// Delta catch-up: more remote keys, pull the delta, apply.
	if err := remote.Ingest("acme/users", keys("remote", 3000, 3500)); err != nil {
		t.Fatal(err)
	}
	ds, err := remote.DeltaSnapshot("acme/users", snap.Version, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Delta {
		t.Fatalf("expected a delta, got %dB full", len(ds.Env))
	}
	if err := rs.ApplyDelta("http://peer-a", "acme/users", ds.Env); err != nil {
		t.Fatal(err)
	}
	ve2, err := rs.Estimate("acme/users")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "view after delta", ve2.AllTime, 6500, 0.25)
	// The held replica must now be byte-identical to the remote's own
	// snapshot (the delta-vs-full merge equivalence the wire relies on).
	wantEnv, err := remote.Snapshot("acme/users", nil)
	if err != nil {
		t.Fatal(err)
	}
	gotEnv := rs.peers["http://peer-a"].stores["acme/users"].env
	if !bytes.Equal(gotEnv, wantEnv) {
		t.Fatal("replica after delta differs from the remote's full snapshot")
	}

	// Re-applying the same delta is a stale base now.
	if err := rs.ApplyDelta("http://peer-a", "acme/users", ds.Env); !errors.Is(err, ErrStaleBase) {
		t.Fatalf("stale delta: %v", err)
	}
	// A delta for a replica we do not hold is a stale base too.
	if err := rs.ApplyDelta("http://peer-b", "acme/users", ds.Env); !errors.Is(err, ErrStaleBase) {
		t.Fatalf("unknown-peer delta: %v", err)
	}

	// Instance change: bases reset to 0 (full re-pull) but reads keep
	// serving the old envelope.
	if changed := rs.SetInstance("http://peer-a", 43); !changed {
		t.Fatal("instance change not reported")
	}
	if got := rs.BaseVersions("http://peer-a")["acme/users"]; got != 0 {
		t.Fatalf("base after instance change = %d", got)
	}
	if _, err := rs.Estimate("acme/users"); err != nil {
		t.Fatalf("estimate after instance change: %v", err)
	}

	// Unknown names 404 even with replicas present.
	if _, err := rs.Estimate("acme/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost estimate: %v", err)
	}

	// Incompatible envelopes are rejected.
	foreign, err := New(Config{Kind: knw.KindF0,
		Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(999)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := foreign.Ingest("acme/users", keys("x", 0, 10)); err != nil {
		t.Fatal(err)
	}
	fenv, err := foreign.Snapshot("acme/users", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ApplyFull("http://peer-a", "acme/users", 1, fenv); !errors.Is(err, knw.ErrIncompatible) {
		t.Fatalf("foreign envelope: %v", err)
	}
}

// TestReplicaCheckpoint: the view round-trips through its checkpoint
// file, and corrupt files are rejected whole.
func TestReplicaCheckpoint(t *testing.T) {
	local, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := NewReplicaSet(local)
	rs.SetInstance("http://peer-a", 42)
	for _, name := range []string{"t/a", "t/b"} {
		if err := remote.Ingest(name, keys(name, 0, 1000)); err != nil {
			t.Fatal(err)
		}
		snap, err := remote.DeltaSnapshot(name, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.ApplyFull("http://peer-a", name, snap.Version, snap.Env); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := rs.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	fresh := NewReplicaSet(local)
	n, err := fresh.LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d replicas, want 2", n)
	}
	if got := fresh.BaseVersions("http://peer-a"); len(got) != 2 {
		t.Fatalf("bases after restore = %v", got)
	}
	ve, err := fresh.Estimate("t/a")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "restored view estimate", ve.AllTime, 1000, 0.25)

	// Missing file: clean empty start.
	if n, err := NewReplicaSet(local).LoadCheckpoint(t.TempDir()); n != 0 || err != nil {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}

	// Truncation anywhere must reject the whole file.
	path := filepath.Join(dir, ReplicaFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(data) / 2, len(data) - 3} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewReplicaSet(local).LoadCheckpoint(dir); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncated at %d: %v", cut, err)
		}
	}
}
