package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	knw "repro"
	"repro/internal/binenc"
)

// Checkpoint file format ("KNWC"): one file holding every store entry,
// written atomically (temp file + fsync + rename) so a crash mid-write
// leaves the previous checkpoint intact and a restart loses at most
// one checkpoint interval of ingestion.
//
//	uvarint ckptMagic ("KNWC")
//	uvarint ckptVersion (1)
//	uvarint entry count
//	per entry:
//	  bytes  name
//	  bytes  all-time sketch envelope (the PR-2 self-describing format)
//	  bool   windowed
//	  if windowed:
//	    bool    started
//	    varint  epoch
//	    uvarint current bucket index
//	    uvarint bucket count
//	    bytes   bucket envelope × count
//
// Every sketch is stored as its own envelope, so a checkpoint is just
// a named collection of the same blobs /v1/snapshot serves and
// knw.Open restores — there is exactly one sketch wire format in the
// system.
const (
	ckptMagic   = 0x4b4e5743 // "KNWC"
	ckptVersion = 1
	// CheckpointFile is the file name Checkpoint writes inside its
	// directory argument.
	CheckpointFile = "checkpoint.knwc"
)

// ckptBufs pools whole-checkpoint encode buffers across ticks.
var ckptBufs = sync.Pool{New: func() any { return new([]byte) }}

// Checkpoint atomically writes every store entry to
// dir/checkpoint.knwc, creating dir if needed. Each entry is captured
// under its own lock: the file is per-entry consistent, which is the
// granularity ingestion already has.
func (s *Store) Checkpoint(dir string) error {
	start := time.Now()
	size, err := s.checkpoint(dir)
	s.noteCheckpoint(start, size, err)
	return err
}

func (s *Store) checkpoint(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	buf := ckptBufs.Get().(*[]byte)
	defer ckptBufs.Put(buf)
	var err error
	*buf, err = s.appendCheckpoint((*buf)[:0])
	if err != nil {
		return 0, err
	}
	return len(*buf), writeFileAtomic(filepath.Join(dir, CheckpointFile), *buf)
}

// appendCheckpoint encodes the whole store to buf.
func (s *Store) appendCheckpoint(buf []byte) ([]byte, error) {
	names := s.Names()
	w := binenc.Writer{Buf: buf}
	w.Uvarint(ckptMagic)
	w.Uvarint(ckptVersion)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		e, err := s.lookup(name, false)
		if err != nil {
			// Entries are never deleted; a name from Names() resolves.
			return nil, err
		}
		if err := e.appendCheckpoint(s, &w, name); err != nil {
			return nil, err
		}
	}
	return w.Buf, nil
}

// appendCheckpoint encodes one entry under its lock.
func (e *entry) appendCheckpoint(s *Store, w *binenc.Writer, name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.drainLocked(e) // checkpoints must carry every acknowledged write
	w.Bytes([]byte(name))
	env := envBufs.Get().(*[]byte)
	defer envBufs.Put(env)
	var err error
	*env, err = appendSketch((*env)[:0], e.total)
	if err != nil {
		return fmt.Errorf("store: checkpointing %q: %w", name, err)
	}
	w.Bytes(*env)
	w.Bool(e.window != nil)
	if e.window == nil {
		return nil
	}
	win := e.window
	w.Bool(win.started)
	w.Varint(win.epoch)
	w.Uvarint(uint64(win.cur))
	w.Uvarint(uint64(len(win.buckets)))
	for _, b := range win.buckets {
		*env, err = appendSketch((*env)[:0], b)
		if err != nil {
			return fmt.Errorf("store: checkpointing %q window: %w", name, err)
		}
		w.Bytes(*env)
	}
	return nil
}

// envBufs pools the per-sketch envelope scratch the checkpoint writer
// frames into the file buffer.
var envBufs = sync.Pool{New: func() any { return new([]byte) }}

// ErrCorruptCheckpoint is wrapped by every LoadCheckpoint failure that
// stems from truncated or malformed checkpoint bytes (as opposed to a
// kind/options/seed mismatch, which wraps knw.ErrIncompatible).
// Callers test for it with errors.Is to distinguish "the file is
// damaged, restore from a replica" from "this daemon is configured
// differently from the one that wrote the file".
var ErrCorruptCheckpoint = errors.New("store: corrupt checkpoint")

// ckptEntry is one fully decoded, validated checkpoint entry, staged
// before installation so a failure partway through the file never
// leaves a partially restored registry behind.
type ckptEntry struct {
	name     string
	total    knw.Estimator
	windowed bool
	started  bool
	epoch    int64
	cur      int
	buckets  []knw.Estimator // nil when the ring is dropped (shape changed)
}

// LoadCheckpoint restores the checkpoint written by Checkpoint into
// the store, replacing any same-named entries. A missing checkpoint
// file is not an error (the store simply starts empty). Loading is
// all-or-nothing: the whole file is decoded and validated before any
// entry is installed, so a truncated or bit-flipped checkpoint returns
// an error wrapping ErrCorruptCheckpoint (or knw.ErrIncompatible for
// mismatched sketch configurations) and leaves the store exactly as it
// was — never a partial registry, never a panic. It returns the number
// of entries restored.
//
// Window rings restore only when the store's window config matches the
// file's bucket count; otherwise the entry keeps its all-time sketch
// (which already contains every windowed key) and starts a fresh ring.
func (s *Store) LoadCheckpoint(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	staged, err := s.decodeCheckpoint(data)
	if err != nil {
		return 0, err
	}
	for i := range staged {
		s.installEntry(&staged[i])
	}
	return len(staged), nil
}

// decodeCheckpoint decodes and validates every entry of a checkpoint
// file without touching the registry.
func (s *Store) decodeCheckpoint(data []byte) ([]ckptEntry, error) {
	r := binenc.Reader{Buf: data}
	r.Expect(ckptMagic, "checkpoint magic")
	if v := r.Uvarint(); r.Err() == nil && v != ckptVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptCheckpoint, v)
	}
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: bad header: %v", ErrCorruptCheckpoint, err)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: header claims %d entries", ErrCorruptCheckpoint, count)
	}
	staged := make([]ckptEntry, 0, count)
	prev := ""
	for i := uint64(0); i < count; i++ {
		ent, err := s.decodeEntry(&r)
		if err != nil {
			return nil, err
		}
		// Checkpoint writes entries in sorted name order, so anything
		// else (duplicates included) is damage, not data.
		if i > 0 && ent.name <= prev {
			return nil, fmt.Errorf("%w: entry %q out of order after %q", ErrCorruptCheckpoint, ent.name, prev)
		}
		prev = ent.name
		staged = append(staged, ent)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if len(r.Buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptCheckpoint, len(r.Buf))
	}
	return staged, nil
}

// decodeEntry decodes and validates one checkpoint entry.
func (s *Store) decodeEntry(r *binenc.Reader) (ckptEntry, error) {
	var ent ckptEntry
	ent.name = string(r.BytesView())
	envTotal := r.BytesView()
	ent.windowed = r.Bool()
	if err := r.Err(); err != nil {
		return ent, fmt.Errorf("%w: bad entry frame: %v", ErrCorruptCheckpoint, err)
	}
	if err := ValidateName(ent.name); err != nil {
		return ent, fmt.Errorf("%w: entry name: %v", ErrCorruptCheckpoint, err)
	}
	total, err := s.openCompatible(envTotal)
	if err != nil {
		return ent, wrapEntryErr(ent.name, err)
	}
	ent.total = total
	if !ent.windowed {
		return ent, nil
	}
	ent.started = r.Bool()
	ent.epoch = r.Varint()
	cur := r.Uvarint()
	buckets := r.Uvarint()
	if err := r.Err(); err != nil {
		return ent, fmt.Errorf("%w: bad window header for %q: %v", ErrCorruptCheckpoint, ent.name, err)
	}
	if buckets > 1024 || cur >= max(buckets, 1) {
		return ent, fmt.Errorf("%w: bad window header for %q", ErrCorruptCheckpoint, ent.name)
	}
	ent.cur = int(cur)
	restore := s.cfg.Window.enabled() && uint64(s.cfg.Window.Buckets) == buckets
	if restore {
		ent.buckets = make([]knw.Estimator, 0, buckets)
	}
	for i := uint64(0); i < buckets; i++ {
		env := r.BytesView()
		if err := r.Err(); err != nil {
			return ent, fmt.Errorf("%w: bad window frame for %q: %v", ErrCorruptCheckpoint, ent.name, err)
		}
		if !restore {
			continue // window config changed; drop the saved ring
		}
		b, err := s.openCompatible(env)
		if err != nil {
			return ent, wrapEntryErr(ent.name, err)
		}
		ent.buckets = append(ent.buckets, b)
	}
	return ent, nil
}

// wrapEntryErr classifies an envelope-open failure: configuration
// mismatches keep their knw.ErrIncompatible identity, everything else
// (undecodable bytes) is corruption.
func wrapEntryErr(name string, err error) error {
	if errors.Is(err, knw.ErrIncompatible) {
		return fmt.Errorf("store: checkpoint entry %q: %w", name, err)
	}
	return fmt.Errorf("%w: entry %q: %v", ErrCorruptCheckpoint, name, err)
}

// installEntry swaps a staged checkpoint entry into the registry.
func (s *Store) installEntry(ent *ckptEntry) {
	e, err := s.lookup(ent.name, true)
	if err != nil {
		// decodeEntry validated the name; lookup cannot fail here.
		panic("store: installing validated checkpoint entry: " + err.Error())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Same contract as Restore: deltas pending at install time belong
	// to the pre-restore state, not the checkpointed one — and
	// persistent slots must not re-merge it later.
	s.drainLocked(e)
	s.discardSlotsLocked(e)
	e.total = ent.total
	if ent.buckets == nil || e.window == nil {
		return
	}
	copy(e.window.buckets, ent.buckets)
	e.window.started = ent.started
	e.window.epoch = ent.epoch
	e.window.cur = ent.cur
}

// openCompatible opens an envelope and verifies it matches the store's
// kind, options, and seed.
func (s *Store) openCompatible(env []byte) (knw.Estimator, error) {
	est, err := knw.Open(env)
	if err != nil {
		return nil, err
	}
	if err := knw.Compatible(s.template, est); err != nil {
		return nil, err
	}
	return est, nil
}

// writeFileAtomic writes data next to path and renames it into place,
// syncing the file first so the rename never publishes a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
