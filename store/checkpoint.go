package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	knw "repro"
	"repro/internal/binenc"
)

// Checkpoint files come in two kinds that chain together:
//
// The full file ("KNWC") holds every store entry, written atomically
// (temp file + fsync + rename) so a crash mid-write leaves the
// previous checkpoint intact:
//
//	uvarint ckptMagic ("KNWC")
//	uvarint ckptVersion (2)
//	uvarint checkpoint id (nonzero; 0 only in legacy v1 files)
//	uvarint entry count
//	per entry (sorted by name):
//	  bytes   name
//	  uvarint entry version at capture
//	  bytes   all-time sketch envelope (the PR-2 self-describing format)
//	  bool    windowed
//	  if windowed:
//	    bool    started
//	    varint  epoch
//	    uvarint current bucket index
//	    uvarint bucket count
//	    bytes   bucket envelope × count
//
// Version-1 files (no checkpoint id, no per-entry versions) still
// load; they simply cannot anchor a delta file.
//
// The delta file ("KNWI") is what CheckpointIncremental writes between
// full rewrites: a cumulative set of the entries whose version moved
// since the full file was captured, each carried either as a KNWD
// delta envelope against the full file's envelope (envelope_delta.go —
// the same codec gossip ships) or as a full KNWE envelope (new
// entries, windowed entries, deltas that would not shrink):
//
//	uvarint ckptDeltaMagic ("KNWI")
//	uvarint ckptDeltaVersion (1)
//	uvarint base checkpoint id (must match the full file's)
//	uvarint sequence (1, 2, ... since the full rewrite)
//	uvarint entry count
//	per entry: as the full file, with the envelope KNWE or KNWD
//
// Because the delta is cumulative, loading needs exactly two files:
// the full file, then the latest delta whose base id matches. A stale
// delta (left behind by a crash between the full rewrite and the delta
// removal) has a mismatched base id and is ignored whole.
//
// Every sketch is stored as its own envelope, so a checkpoint is just
// a named collection of the same blobs /v1/snapshot serves and
// knw.Open restores — there is exactly one sketch wire format in the
// system, plus its one delta form.
const (
	ckptMagic        = 0x4b4e5743 // "KNWC"
	ckptVersion      = 2
	ckptDeltaMagic   = 0x4b4e5749 // "KNWI"
	ckptDeltaVersion = 1
	// CheckpointFile is the full-checkpoint file name Checkpoint writes
	// inside its directory argument.
	CheckpointFile = "checkpoint.knwc"
	// CheckpointDeltaFile is the cumulative delta file
	// CheckpointIncremental writes between full rewrites.
	CheckpointDeltaFile = "checkpoint.knwi"
	// defaultCkptFullEvery is the Config.CheckpointFullEvery default:
	// every 8th CheckpointIncremental call rewrites the full file.
	defaultCkptFullEvery = 8
)

// ckptBufs pools whole-checkpoint encode buffers across ticks.
var ckptBufs = sync.Pool{New: func() any { return new([]byte) }}

// Checkpoint atomically writes every store entry to
// dir/checkpoint.knwc, creating dir if needed, and restarts the
// incremental chain on it. Each entry is captured under its own lock:
// the file is per-entry consistent, which is the granularity ingestion
// already has.
func (s *Store) Checkpoint(dir string) error {
	start := time.Now()
	s.ckptMu.Lock()
	size, err := s.checkpointFullLocked(dir)
	s.ckptMu.Unlock()
	s.noteCheckpoint(start, size, err)
	return err
}

// CheckpointIncremental writes the cheapest checkpoint that still
// makes dir recoverable: a full rewrite when there is no chain to
// extend (first call, or every CheckpointFullEvery-th call), otherwise
// the cumulative delta file against the last full rewrite. In the
// steady state of a distinct-count store — most traffic re-observing
// known keys — the delta file is orders of magnitude smaller than the
// full one, and knwd_store_checkpoint_bytes shows exactly that.
func (s *Store) CheckpointIncremental(dir string) error {
	start := time.Now()
	s.ckptMu.Lock()
	var size int
	var err error
	if s.ckptID == 0 || s.ckptSeq >= uint64(s.ckptFullEvery())-1 {
		size, err = s.checkpointFullLocked(dir)
	} else {
		size, err = s.checkpointDeltaLocked(dir)
	}
	s.ckptMu.Unlock()
	s.noteCheckpoint(start, size, err)
	return err
}

func (s *Store) ckptFullEvery() int {
	if s.cfg.CheckpointFullEvery > 0 {
		return s.cfg.CheckpointFullEvery
	}
	return defaultCkptFullEvery
}

// checkpointFullLocked writes the full file and, on success, resets
// the chain state to it. Callers hold ckptMu.
func (s *Store) checkpointFullLocked(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	buf := ckptBufs.Get().(*[]byte)
	defer ckptBufs.Put(buf)
	id := uint64(time.Now().UnixNano()) | 1
	var base map[string]uint64
	var err error
	*buf, base, err = s.appendCheckpoint((*buf)[:0], id)
	if err != nil {
		return 0, err
	}
	if err := writeFileAtomic(filepath.Join(dir, CheckpointFile), *buf); err != nil {
		return 0, err
	}
	s.ckptID = id
	s.ckptSeq = 0
	s.ckptBase = base
	// The old delta file chains to the replaced full file. Best-effort
	// removal: if it survives (or a crash lands here), its base id no
	// longer matches and LoadCheckpoint ignores it.
	_ = os.Remove(filepath.Join(dir, CheckpointDeltaFile))
	return len(*buf), nil
}

// appendCheckpoint encodes the whole store to buf and returns the
// per-entry versions it captured.
func (s *Store) appendCheckpoint(buf []byte, id uint64) ([]byte, map[string]uint64, error) {
	names := s.Names()
	base := make(map[string]uint64, len(names))
	w := binenc.Writer{Buf: buf}
	w.Uvarint(ckptMagic)
	w.Uvarint(ckptVersion)
	w.Uvarint(id)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		e, err := s.lookup(name, false)
		if err != nil {
			// Entries are never deleted; a name from Names() resolves.
			return nil, nil, err
		}
		v, err := e.appendCheckpoint(s, &w, name)
		if err != nil {
			return nil, nil, err
		}
		base[name] = v
	}
	return w.Buf, base, nil
}

// appendCheckpoint encodes one entry under its lock and returns the
// entry version the frame captured.
func (e *entry) appendCheckpoint(s *Store, w *binenc.Writer, name string) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.drainLocked(e) // checkpoints must carry every acknowledged write
	// Serve the envelope from the section cache: the bytes the file
	// holds are then the exact generation the cache's section stamps
	// describe, so a later delta file's "unchanged since the full
	// rewrite" is a statement about these bytes, not a re-marshal.
	if err := s.refreshEncLocked(e); err != nil {
		return 0, fmt.Errorf("store: checkpointing %q: %w", name, err)
	}
	w.Bytes([]byte(name))
	w.Uvarint(e.enc.version)
	w.Bytes(e.enc.full)
	if err := e.appendWindowLocked(w); err != nil {
		return 0, fmt.Errorf("store: checkpointing %q window: %w", name, err)
	}
	return e.enc.version, nil
}

// appendWindowLocked encodes the windowed flag and, when set, the
// window ring. Callers hold e.mu.
func (e *entry) appendWindowLocked(w *binenc.Writer) error {
	w.Bool(e.window != nil)
	if e.window == nil {
		return nil
	}
	win := e.window
	w.Bool(win.started)
	w.Varint(win.epoch)
	w.Uvarint(uint64(win.cur))
	w.Uvarint(uint64(len(win.buckets)))
	env := envBufs.Get().(*[]byte)
	defer envBufs.Put(env)
	var err error
	for _, b := range win.buckets {
		*env, err = appendSketch((*env)[:0], b)
		if err != nil {
			return err
		}
		w.Bytes(*env)
	}
	return nil
}

// checkpointDeltaLocked writes the cumulative delta file: every entry
// whose version moved past the last full rewrite, as a KNWD section
// delta when the encode cache can prove what changed, as a full
// envelope otherwise. Callers hold ckptMu with a live chain.
func (s *Store) checkpointDeltaLocked(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	body := ckptBufs.Get().(*[]byte)
	defer ckptBufs.Put(body)
	bw := binenc.Writer{Buf: (*body)[:0]}
	count := uint64(0)
	for _, name := range s.Names() {
		e, err := s.lookup(name, false)
		if err != nil {
			return 0, err
		}
		changed, err := e.appendCheckpointDelta(s, &bw, name)
		if err != nil {
			return 0, err
		}
		if changed {
			count++
		}
	}
	*body = bw.Buf
	buf := ckptBufs.Get().(*[]byte)
	defer ckptBufs.Put(buf)
	w := binenc.Writer{Buf: (*buf)[:0]}
	w.Uvarint(ckptDeltaMagic)
	w.Uvarint(ckptDeltaVersion)
	w.Uvarint(s.ckptID)
	w.Uvarint(s.ckptSeq + 1)
	w.Uvarint(count)
	w.Buf = append(w.Buf, *body...)
	*buf = w.Buf
	if err := writeFileAtomic(filepath.Join(dir, CheckpointDeltaFile), *buf); err != nil {
		return 0, err
	}
	s.ckptSeq++
	return len(*buf), nil
}

// appendCheckpointDelta encodes one entry's delta-file frame if its
// version moved past the chain base, reporting whether it wrote one.
func (e *entry) appendCheckpointDelta(s *Store, w *binenc.Writer, name string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.drainLocked(e)
	v := e.version.Load()
	base, inBase := s.ckptBase[name]
	if inBase && v == base {
		return false, nil // unchanged since the full rewrite
	}
	if err := s.refreshEncLocked(e); err != nil {
		return false, fmt.Errorf("store: checkpointing %q: %w", name, err)
	}
	c := e.enc
	env := c.full
	// Window rings are not versioned, so windowed entries always carry
	// the full envelope plus the full ring.
	if inBase && base < c.version && c.sections && e.window == nil {
		var idx []int
		for i, sv := range c.secVers {
			if sv > base {
				idx = append(idx, i)
			}
		}
		if d, err := knw.AppendDelta(nil, c.split, base, c.version, idx, true); err == nil && len(d) < len(env) {
			env = d
		}
	}
	w.Bytes([]byte(name))
	w.Uvarint(c.version)
	w.Bytes(env)
	if err := e.appendWindowLocked(w); err != nil {
		return false, fmt.Errorf("store: checkpointing %q window: %w", name, err)
	}
	return true, nil
}

// envBufs pools the per-sketch envelope scratch the checkpoint writer
// frames into the file buffer.
var envBufs = sync.Pool{New: func() any { return new([]byte) }}

// ErrCorruptCheckpoint is wrapped by every LoadCheckpoint failure that
// stems from truncated or malformed checkpoint bytes (as opposed to a
// kind/options/seed mismatch, which wraps knw.ErrIncompatible).
// Callers test for it with errors.Is to distinguish "the file is
// damaged, restore from a replica" from "this daemon is configured
// differently from the one that wrote the file".
var ErrCorruptCheckpoint = errors.New("store: corrupt checkpoint")

// rawCkptEntry is one checkpoint-file entry before any envelope is
// opened: name, version, raw envelope bytes (KNWE, or KNWD in a delta
// file), and the raw window ring. Raw staging is what lets the loader
// splice delta files into full-file bytes before validating anything.
type rawCkptEntry struct {
	name     string
	version  uint64
	env      []byte
	windowed bool
	started  bool
	epoch    int64
	cur      uint64
	buckets  [][]byte
}

// ckptEntry is one fully decoded, validated checkpoint entry, staged
// before installation so a failure partway through the file never
// leaves a partially restored registry behind.
type ckptEntry struct {
	name     string
	total    knw.Estimator
	windowed bool
	started  bool
	epoch    int64
	cur      int
	buckets  []knw.Estimator // nil when the ring is dropped (shape changed)
}

// LoadCheckpoint restores the checkpoint written by Checkpoint or
// CheckpointIncremental into the store, replacing any same-named
// entries: the full file first, then the delta file spliced over it
// when its base id matches (a mismatched delta file is a stale
// leftover and is ignored whole). A missing checkpoint file is not an
// error (the store simply starts empty). Loading is all-or-nothing:
// both files are decoded and validated before any entry is installed,
// so a truncated or bit-flipped checkpoint returns an error wrapping
// ErrCorruptCheckpoint (or knw.ErrIncompatible for mismatched sketch
// configurations) and leaves the store exactly as it was — never a
// partial registry, never a panic. It returns the number of entries
// restored.
//
// Window rings restore only when the store's window config matches the
// file's bucket count; otherwise the entry keeps its all-time sketch
// (which already contains every windowed key) and starts a fresh ring.
func (s *Store) LoadCheckpoint(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	id, raw, err := parseCheckpoint(data)
	if err != nil {
		return 0, err
	}
	ddata, derr := os.ReadFile(filepath.Join(dir, CheckpointDeltaFile))
	if derr == nil {
		baseID, _, drecs, err := parseCheckpointDelta(ddata)
		if err != nil {
			return 0, err
		}
		if id != 0 && baseID == id {
			if raw, err = spliceCheckpointDelta(raw, drecs); err != nil {
				return 0, err
			}
		}
	} else if !errors.Is(derr, fs.ErrNotExist) {
		return 0, derr
	}
	staged := make([]ckptEntry, 0, len(raw))
	for i := range raw {
		ent, err := s.stageEntry(&raw[i])
		if err != nil {
			return 0, err
		}
		staged = append(staged, ent)
	}
	for i := range staged {
		s.installEntry(&staged[i])
	}
	return len(staged), nil
}

// parseCheckpoint decodes a full checkpoint file into raw entries
// without opening any envelope.
func parseCheckpoint(data []byte) (uint64, []rawCkptEntry, error) {
	r := binenc.Reader{Buf: data}
	r.Expect(ckptMagic, "checkpoint magic")
	ver := r.Uvarint()
	if r.Err() == nil && ver != 1 && ver != ckptVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptCheckpoint, ver)
	}
	id := uint64(0)
	if ver == ckptVersion {
		id = r.Uvarint()
	}
	entries, err := parseCkptEntries(&r, ver >= 2, "checkpoint")
	if err != nil {
		return 0, nil, err
	}
	return id, entries, nil
}

// parseCheckpointDelta decodes a delta checkpoint file into raw
// entries (whose envelopes may be KNWD).
func parseCheckpointDelta(data []byte) (uint64, uint64, []rawCkptEntry, error) {
	r := binenc.Reader{Buf: data}
	r.Expect(ckptDeltaMagic, "checkpoint delta magic")
	if v := r.Uvarint(); r.Err() == nil && v != ckptDeltaVersion {
		return 0, 0, nil, fmt.Errorf("%w: unsupported delta version %d", ErrCorruptCheckpoint, v)
	}
	baseID := r.Uvarint()
	seq := r.Uvarint()
	entries, err := parseCkptEntries(&r, true, "checkpoint delta")
	if err != nil {
		return 0, 0, nil, err
	}
	return baseID, seq, entries, nil
}

// parseCkptEntries decodes the shared entry-list tail of both file
// kinds, enforcing sorted unique names and zero trailing bytes.
func parseCkptEntries(r *binenc.Reader, versioned bool, what string) ([]rawCkptEntry, error) {
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: bad %s header: %v", ErrCorruptCheckpoint, what, err)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: %s header claims %d entries", ErrCorruptCheckpoint, what, count)
	}
	entries := make([]rawCkptEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var ent rawCkptEntry
		ent.name = string(r.BytesView())
		if versioned {
			ent.version = r.Uvarint()
		}
		ent.env = r.BytesView()
		ent.windowed = r.Bool()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: bad %s entry frame: %v", ErrCorruptCheckpoint, what, err)
		}
		if err := ValidateName(ent.name); err != nil {
			return nil, fmt.Errorf("%w: %s entry name: %v", ErrCorruptCheckpoint, what, err)
		}
		if i > 0 && ent.name <= entries[i-1].name {
			// Writers emit sorted names, so anything else (duplicates
			// included) is damage, not data.
			return nil, fmt.Errorf("%w: %s entry %q out of order after %q",
				ErrCorruptCheckpoint, what, ent.name, entries[i-1].name)
		}
		if ent.windowed {
			ent.started = r.Bool()
			ent.epoch = r.Varint()
			ent.cur = r.Uvarint()
			buckets := r.Uvarint()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("%w: bad window header for %q: %v", ErrCorruptCheckpoint, ent.name, err)
			}
			if buckets > 1024 || ent.cur >= max(buckets, 1) {
				return nil, fmt.Errorf("%w: bad window header for %q", ErrCorruptCheckpoint, ent.name)
			}
			ent.buckets = make([][]byte, 0, buckets)
			for b := uint64(0); b < buckets; b++ {
				env := r.BytesView()
				if err := r.Err(); err != nil {
					return nil, fmt.Errorf("%w: bad window frame for %q: %v", ErrCorruptCheckpoint, ent.name, err)
				}
				ent.buckets = append(ent.buckets, env)
			}
		}
		entries = append(entries, ent)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if len(r.Buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in %s", ErrCorruptCheckpoint, len(r.Buf), what)
	}
	return entries, nil
}

// spliceCheckpointDelta folds a delta file's records over the full
// file's: KNWD envelopes are applied to the matching base entry's
// bytes, full envelopes replace the entry, new names are appended.
func spliceCheckpointDelta(full []rawCkptEntry, delta []rawCkptEntry) ([]rawCkptEntry, error) {
	byName := make(map[string]int, len(full))
	for i := range full {
		byName[full[i].name] = i
	}
	for _, rec := range delta {
		i, held := byName[rec.name]
		if knw.IsDelta(rec.env) {
			if !held {
				return nil, fmt.Errorf("%w: delta for unknown entry %q", ErrCorruptCheckpoint, rec.name)
			}
			d, err := knw.DecodeDelta(rec.env)
			if err != nil {
				return nil, fmt.Errorf("%w: entry %q: %v", ErrCorruptCheckpoint, rec.name, err)
			}
			if d.Base != full[i].version || d.Next != rec.version {
				return nil, fmt.Errorf("%w: entry %q delta chain %d→%d does not extend version %d",
					ErrCorruptCheckpoint, rec.name, d.Base, d.Next, full[i].version)
			}
			env, err := knw.ApplyDelta(full[i].env, rec.env)
			if err != nil {
				return nil, fmt.Errorf("%w: entry %q: %v", ErrCorruptCheckpoint, rec.name, err)
			}
			rec.env = env
		}
		if held {
			full[i] = rec
		} else {
			byName[rec.name] = len(full)
			full = append(full, rec)
		}
	}
	sort.Slice(full, func(i, j int) bool { return full[i].name < full[j].name })
	return full, nil
}

// stageEntry opens and validates one raw entry's envelopes.
func (s *Store) stageEntry(raw *rawCkptEntry) (ckptEntry, error) {
	ent := ckptEntry{
		name:     raw.name,
		windowed: raw.windowed,
		started:  raw.started,
		epoch:    raw.epoch,
		cur:      int(raw.cur),
	}
	total, err := s.openCompatible(raw.env)
	if err != nil {
		return ent, wrapEntryErr(raw.name, err)
	}
	ent.total = total
	if !raw.windowed {
		return ent, nil
	}
	if !s.cfg.Window.enabled() || s.cfg.Window.Buckets != len(raw.buckets) {
		return ent, nil // window config changed; drop the saved ring
	}
	ent.buckets = make([]knw.Estimator, 0, len(raw.buckets))
	for _, env := range raw.buckets {
		b, err := s.openCompatible(env)
		if err != nil {
			return ent, wrapEntryErr(raw.name, err)
		}
		ent.buckets = append(ent.buckets, b)
	}
	return ent, nil
}

// wrapEntryErr classifies an envelope-open failure: configuration
// mismatches keep their knw.ErrIncompatible identity, everything else
// (undecodable bytes) is corruption.
func wrapEntryErr(name string, err error) error {
	if errors.Is(err, knw.ErrIncompatible) {
		return fmt.Errorf("store: checkpoint entry %q: %w", name, err)
	}
	return fmt.Errorf("%w: entry %q: %v", ErrCorruptCheckpoint, name, err)
}

// installEntry swaps a staged checkpoint entry into the registry.
func (s *Store) installEntry(ent *ckptEntry) {
	e, err := s.lookup(ent.name, true)
	if err != nil {
		// stageEntry validated the name; lookup cannot fail here.
		panic("store: installing validated checkpoint entry: " + err.Error())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Same contract as Restore: deltas pending at install time belong
	// to the pre-restore state, not the checkpointed one — and
	// persistent slots must not re-merge it later.
	s.drainLocked(e)
	s.discardSlotsLocked(e)
	e.total = ent.total
	e.version.Add(1)
	if ent.buckets == nil || e.window == nil {
		return
	}
	copy(e.window.buckets, ent.buckets)
	e.window.started = ent.started
	e.window.epoch = ent.epoch
	e.window.cur = ent.cur
}

// openCompatible opens an envelope and verifies it matches the store's
// kind, options, and seed.
func (s *Store) openCompatible(env []byte) (knw.Estimator, error) {
	est, err := knw.Open(env)
	if err != nil {
		return nil, err
	}
	if err := knw.Compatible(s.template, est); err != nil {
		return nil, err
	}
	return est, nil
}

// writeFileAtomic writes data next to path and renames it into place,
// syncing the file first so the rename never publishes a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
