package store

import (
	"runtime"
	"sync/atomic"
	"time"

	knw "repro"
)

// Epoch-based lock-free ingest.
//
// The KNW sketches merge exactly (max for F0 counters, linear sum for
// L0), so ingestion needs no shared state: each writer accumulates
// into a private delta sketch and publishes by merge, and the merged
// result is byte-identical to a single sketch that saw the union
// stream — the (ε, δ) bound is untouched. The store exploits that with
// a small fixed set of per-entry delta slots (GOMAXPROCS+1, so a
// writer always finds a free slot even while the drainer holds one):
//
//   - Ingest/IngestHashed claim a slot with one CAS (free → busy),
//     append the batch to the slot's private sketch, bump the entry's
//     pending count, release the slot, and mark the entry dirty. No
//     mutex, no contention except slot-claim CAS traffic.
//   - A background epoch loop (Config.EpochInterval) walks the dirty
//     list and drains each entry under its mutex: every slot is
//     claimed, merged into the canonical total + current window
//     bucket, reset, and released.
//   - Reads (Estimate, Snapshot, WindowSnapshot, checkpoint capture)
//     drain on demand before reading, so a reader always observes its
//     own completed writes — read-your-writes within one epoch — and
//     snapshots/checkpoints never miss pending keys.
//
// Ordering argument (why no key is ever stranded): a writer's order is
// slot-write → pending.Add → slot-release → markDirty; the drainer
// clears the entry's queued flag before draining. If the writer's
// markDirty lands before the clear, the drain that follows claims the
// slot and (because pending.Add preceded markDirty) sees the keys. If
// it lands after, the entry simply re-queues for the next epoch. The
// slot CAS pair (release in the writer, claim in the drainer) carries
// the happens-before edge that makes the slot sketch's contents
// visible to the drainer.
//
// Window-bucket attribution happens at drain time: the ring first
// rotates to the entry's last write stamp, then the deltas merge into
// the bucket current at that stamp. A key's attribution can therefore
// skew by at most the span between its write and the entry's last
// write before the next drain — bounded by one epoch interval (or one
// read barrier, whichever comes first), far below any sane bucket
// width.
//
// Drain policy (persistent vs reset slots): the F0 kinds pay a steep
// "early life" per sketch — until the rough estimator lifts the
// subsampling offset, every key costs a packed-counter read — and a
// slot that is reset after each drain replays that cost every epoch,
// forever. F0 merges are max/union on every component (counters,
// rough estimator, small-F0 set), so re-merging an un-reset slot is
// idempotent: on unwindowed non-turnstile stores the slots therefore
// persist across drains, mature like any long-lived sketch, and reach
// the raw AddBatch floor. Final counter values are path-independent
// under offset rebasing (a key's contribution at final offset b is
// max(lvl−b, dropped) no matter when b advanced), so the merged total
// is byte-identical to single-sketch ingest either way. Turnstile (L0)
// kinds merge by linear sum — re-merge double-counts — and window
// buckets need true per-epoch deltas, so those stores reset each slot
// after draining it. State-replacing operations (Restore, checkpoint
// install) discard persistent slots outright: their history is merged
// into the outgoing total, and must not resurface in the new one.

// defaultEpochInterval is the background drain cadence when
// Config.EpochInterval is zero and the store uses the real clock.
const defaultEpochInterval = 10 * time.Millisecond

// Adaptive flush floor: draining an entry costs a fixed O(K·copies)
// sketch merge per slot no matter how few keys are pending, so epoch
// ticks skip entries whose backlog is too small to amortize it. The
// floor self-tunes from observed drain latency — expensive sketches
// (small ε, many copies) push it up, cheap ones pull it down — between
// a minimum that keeps small configs fresh and a maximum that bounds
// how much an op-visible gauge can lag. Entries older than
// maxEpochAge drain regardless, so a trickle-rate store is never more
// than a second stale; read barriers, Flush, and Close ignore the
// floor entirely.
const (
	flushFloorMin    = 4 << 10
	flushFloorMax    = 512 << 10
	flushBudget      = 2 * time.Millisecond
	maxEpochAge      = time.Second
	flushFloorShrink = flushBudget / 8
)

// Slot claim states.
const (
	slotFree int32 = iota
	slotBusy
)

// deltaSlot is one private ingest accumulator. The state word is the
// only cross-goroutine field; everything else is owned by whoever
// holds the slot. The pad keeps neighboring slots off one cache line
// so claim CAS traffic on slot i does not bounce slot i+1.
type deltaSlot struct {
	state   atomic.Int32
	sk      knw.Estimator      // lazily built, store-compatible delta
	keyed   *knw.Keyed[string] // typed front-end over sk
	pending int                // keys in sk not yet drained
	_       [96]byte
}

// claim acquires a free slot, round-robin from a per-entry hint, and
// yields once per full sweep so a spin under oversubscription cannot
// starve the slot holders.
func (e *entry) claim() *deltaSlot {
	n := uint32(len(e.slots))
	start := e.rr.Add(1)
	for attempt := uint32(0); ; attempt++ {
		sl := &e.slots[(start+attempt)%n]
		if sl.state.CompareAndSwap(slotFree, slotBusy) {
			return sl
		}
		if attempt%n == n-1 {
			runtime.Gosched()
		}
	}
}

// release publishes the slot's contents (atomic store pairs with the
// next claim's CAS).
func (sl *deltaSlot) release() { sl.state.Store(slotFree) }

// slotsPerEntry sizes the delta set: one slot per P plus one spare so
// writers never wait on the drainer.
func slotsPerEntry() int { return runtime.GOMAXPROCS(0) + 1 }

// markDirty queues e for the next epoch drain. Only the 0→dirty
// transition touches the shared list, so steady-state ingest pays one
// atomic swap here.
func (s *Store) markDirty(e *entry) {
	if e.queued.Swap(true) {
		return
	}
	s.dirtyMu.Lock()
	if len(s.dirty) == 0 {
		s.dirtySince.Store(time.Now().UnixNano())
	}
	s.dirty = append(s.dirty, e)
	s.dirtyMu.Unlock()
}

// drainLocked merges every pending delta slot into the entry's
// canonical total and current window bucket. Callers hold e.mu. It
// returns the number of keys drained.
func (s *Store) drainLocked(e *entry) int {
	if e.pending.Load() == 0 {
		return 0
	}
	if e.window != nil {
		// Rotate to the time of the last windowed write, not to now:
		// pending keys belong to the bucket that was current when they
		// were written, and a read after a long idle gap must find them
		// in a bucket old enough to expire. Readers rotate to their own
		// clock after the drain.
		s.met.rotations.Add(uint64(e.window.rotate(time.Unix(0, e.writeStamp.Load()))))
	}
	drained := 0
	for i := range e.slots {
		sl := &e.slots[i]
		// Wait out a writer mid-batch: its keys were written before any
		// barrier-triggering read returned, so taking them now keeps
		// read-your-writes exact rather than approximate.
		for !sl.state.CompareAndSwap(slotFree, slotBusy) {
			runtime.Gosched()
		}
		if sl.pending > 0 {
			if err := knw.MergeInto(e.total, sl.sk); err != nil {
				sl.release()
				// Slots are built from the store's pinned options; a
				// mismatch is a program bug, not foreign input.
				panic("store: delta slot diverged from entry: " + err.Error())
			}
			if e.window != nil {
				if err := knw.MergeInto(e.window.current(), sl.sk); err != nil {
					sl.release()
					panic("store: delta slot diverged from window: " + err.Error())
				}
			}
			drained += sl.pending
			sl.pending = 0
			if !s.persistSlots {
				resetSketch(&sl.sk, &sl.keyed)
			}
		}
		sl.release()
	}
	if drained > 0 {
		e.pending.Add(int64(-drained))
		s.pendingKeys.Add(int64(-drained))
		e.version.Add(1) // the epoch flush is the versioning quantum
	}
	e.lastDrain.Store(time.Now().UnixNano())
	return drained
}

// discardSlotsLocked empties every delta slot without merging, for
// state-replacing operations (Restore, checkpoint install) that have
// already drained: persistent slots hold the entry's full ingest
// history, which must not be re-merged into the replacement state on a
// later drain. Keys a racing writer parked after the caller's drain
// are dropped with the old state — the write was concurrent with the
// replacement, so either order is correct. Callers hold e.mu.
func (s *Store) discardSlotsLocked(e *entry) {
	for i := range e.slots {
		sl := &e.slots[i]
		for !sl.state.CompareAndSwap(slotFree, slotBusy) {
			runtime.Gosched()
		}
		if sl.pending > 0 {
			e.pending.Add(int64(-sl.pending))
			s.pendingKeys.Add(int64(-sl.pending))
			sl.pending = 0
		}
		resetSketch(&sl.sk, &sl.keyed)
		sl.release()
	}
}

// resetSketch empties a slot sketch for reuse, preserving its hash
// draws (Reset) so the slot stays mergeable; kinds without Reset are
// rebuilt lazily on the next claim.
func resetSketch(sk *knw.Estimator, keyed **knw.Keyed[string]) {
	if r, ok := (*sk).(interface{ Reset() }); ok {
		r.Reset()
		return
	}
	*sk = nil
	*keyed = nil
}

// Flush drains every dirty entry now — the barrier Close and tests
// use. Safe to call concurrently with ingest and reads.
func (s *Store) Flush() { s.flush(true) }

// flush drains the dirty list; without force it is the epoch-tick
// body and applies the adaptive floor — entries with too small a
// backlog (and a recent enough last drain) stay queued for a later
// tick instead of paying a full sketch merge now.
func (s *Store) flush(force bool) {
	s.dirtyMu.Lock()
	work := s.dirty
	s.dirty = nil
	s.dirtyMu.Unlock()
	var deferred []*entry
	floor := s.flushFloor.Load()
	for _, e := range work {
		if !force && e.pending.Load() < floor &&
			time.Since(time.Unix(0, e.lastDrain.Load())) < maxEpochAge {
			// Still queued (e.queued stays true, so markDirty won't
			// double-append); goes back on the list below.
			deferred = append(deferred, e)
			continue
		}
		// Clear queued before draining: a writer that marks after this
		// re-queues the entry; one that marked before is drained here.
		e.queued.Store(false)
		start := time.Now()
		e.mu.Lock()
		n := s.drainLocked(e)
		e.mu.Unlock()
		if n > 0 {
			d := time.Since(start)
			s.met.flushSeconds.Observe(d.Seconds())
			s.met.stageMerge.Observe(d.Seconds())
			s.met.flushes.Inc()
			s.adaptFloor(d)
		}
		if e.pending.Load() > 0 {
			s.markDirty(e) // writer raced the drain; catch it next epoch
		}
	}
	if len(deferred) > 0 {
		s.dirtyMu.Lock()
		s.dirty = append(s.dirty, deferred...)
		s.dirtyMu.Unlock()
	}
	s.lastFlush.Store(time.Now().UnixNano())
}

// adaptFloor is the AIMD-ish floor controller: a drain that blew the
// budget doubles the floor (batch more before the next fixed-cost
// merge), a drain far under it halves the floor (freshness is cheap
// here). Lost updates under concurrent drains just slow convergence.
func (s *Store) adaptFloor(d time.Duration) {
	floor := s.flushFloor.Load()
	switch {
	case d > flushBudget && floor < flushFloorMax:
		s.flushFloor.CompareAndSwap(floor, min(2*floor, flushFloorMax))
	case d < flushFloorShrink && floor > flushFloorMin:
		s.flushFloor.CompareAndSwap(floor, max(floor/2, flushFloorMin))
	}
}

// run is the background epoch loop.
func (s *Store) run(interval time.Duration) {
	defer close(s.loopDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.flush(false)
		case <-s.stop:
			s.Flush()
			return
		}
	}
}

// Close stops the epoch loop (when one is running) after a final
// flush. The store remains usable — ingest keeps accumulating deltas
// and read barriers keep draining them — only the background cadence
// stops. Close is idempotent.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
			<-s.loopDone
			return
		}
		s.Flush()
	})
}

// PendingKeys reports the keys written but not yet drained into
// canonical sketches, across all entries (the epoch backlog).
func (s *Store) PendingKeys() int64 { return s.pendingKeys.Load() }
