package store

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	knw "repro"
)

// testConfig is a small deterministic store config: plain F0 keeps the
// unit tests fast, the pinned seed makes merges and restores exact.
func testConfig() Config {
	return Config{
		Kind:    knw.KindF0,
		Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(1)},
	}
}

func keys(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

// within asserts |got − want| ≤ tol·want.
func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol*want {
		t.Fatalf("%s: got %.1f, want %.1f ± %.0f%%", what, got, want, tol*100)
	}
}

func TestCreateOnFirstWriteAndEstimate(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Estimate("acme/users"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("estimate before write: got %v, want ErrNotFound", err)
	}
	if err := s.Ingest("acme/users", keys("u", 0, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("acme/users", keys("u", 0, 5000)); err != nil { // duplicates
		t.Fatal(err)
	}
	est, err := s.Estimate("acme/users")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "all-time estimate", est.AllTime, 5000, 0.25)
	if est.Windowed {
		t.Fatal("windowed estimate reported by an unwindowed store")
	}
	if got := s.Names(); len(got) != 1 || got[0] != "acme/users" {
		t.Fatalf("Names() = %v", got)
	}
}

func TestNameValidation(t *testing.T) {
	s, _ := New(testConfig())
	for _, bad := range []string{"", "a\x00b", "x\n", string(make([]byte, 300))} {
		if err := s.Ingest(bad, []string{"k"}); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
}

func TestConcurrentIngest(t *testing.T) {
	cfg := testConfig()
	cfg.Kind = knw.KindConcurrentF0
	cfg.Window = Window{Buckets: 4, Interval: time.Hour}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant%d/users", g%4)
			for b := 0; b < 10; b++ {
				if err := s.Ingest(name, keys("k", b*100, b*100+100)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Estimate(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	// Each tenant saw the same 1000 distinct keys from 2 goroutines.
	for i := 0; i < 4; i++ {
		est, err := s.Estimate(fmt.Sprintf("tenant%d/users", i))
		if err != nil {
			t.Fatal(err)
		}
		within(t, "concurrent estimate", est.AllTime, 1000, 0.25)
		within(t, "concurrent window estimate", est.Window, 1000, 0.25)
	}
}

// TestWindowRotation drives a fake clock through bucket boundaries and
// checks the bucket-granular sliding-window semantics: the windowed
// estimate is the union over the live ring, old buckets expire, and
// the all-time estimate keeps everything.
func TestWindowRotation(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig()
	cfg.Window = Window{Buckets: 3, Interval: time.Minute}
	cfg.Now = func() time.Time { return now }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Minute 0: 1000 keys. Minute 1: 1000 more (500 overlapping).
	if err := s.Ingest("t/m", keys("a", 0, 1000)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	if err := s.Ingest("t/m", keys("a", 500, 1500)); err != nil {
		t.Fatal(err)
	}
	est, _ := s.Estimate("t/m")
	if !est.Windowed {
		t.Fatal("store should be windowed")
	}
	// Both buckets live: union of [0,1500).
	within(t, "window union across buckets", est.Window, 1500, 0.25)
	within(t, "all-time", est.AllTime, 1500, 0.25)

	// Advance past the ring (3 more minutes): minute-0 and minute-1
	// buckets expire; a fresh bucket gets 200 new keys.
	now = now.Add(3 * time.Minute)
	if err := s.Ingest("t/m", keys("b", 0, 200)); err != nil {
		t.Fatal(err)
	}
	est, _ = s.Estimate("t/m")
	within(t, "window after expiry", est.Window, 200, 0.25)
	within(t, "all-time after expiry", est.AllTime, 1700, 0.25)

	// A long idle gap empties the whole window but not the total.
	now = now.Add(time.Hour)
	est, _ = s.Estimate("t/m")
	if est.Window != 0 {
		t.Fatalf("window after idle gap = %.1f, want 0", est.Window)
	}
	within(t, "all-time after idle gap", est.AllTime, 1700, 0.25)
}

func TestSnapshotMergeRoundTrip(t *testing.T) {
	a, _ := New(testConfig())
	b, _ := New(testConfig()) // same pinned seed → mergeable
	if err := a.Ingest("t/m", keys("x", 0, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest("t/m", keys("x", 2000, 5000)); err != nil {
		t.Fatal(err)
	}
	env, err := a.Snapshot("t/m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Merge("t/m", env); err != nil {
		t.Fatal(err)
	}
	est, _ := b.Estimate("t/m")
	within(t, "merged union", est.AllTime, 5000, 0.25)

	// Merge into a never-written name creates the entry.
	if err := b.Merge("fresh/m", env); err != nil {
		t.Fatal(err)
	}
	est, _ = b.Estimate("fresh/m")
	within(t, "merge-created store", est.AllTime, 3000, 0.25)
}

// TestMergeRestoreMismatch is the regression test for the 409 path:
// foreign envelopes (wrong kind, wrong options, wrong seed, corrupt
// bytes) are rejected with a typed error and never panic.
func TestMergeRestoreMismatch(t *testing.T) {
	s, _ := New(testConfig())
	if err := s.Ingest("t/m", keys("x", 0, 100)); err != nil {
		t.Fatal(err)
	}

	foreign := map[string][]byte{}
	wrongKind, _ := knw.New(knw.KindL0, knw.WithEpsilon(0.05), knw.WithSeed(1))
	foreign["kind"], _ = wrongKind.(*knw.L0).MarshalBinary()
	wrongEps := knw.NewF0(knw.WithEpsilon(0.1), knw.WithSeed(1))
	foreign["epsilon"], _ = wrongEps.MarshalBinary()
	wrongSeed := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(99))
	foreign["seed"], _ = wrongSeed.MarshalBinary()

	for what, env := range foreign {
		if err := s.Merge("t/m", env); !errors.Is(err, knw.ErrIncompatible) {
			t.Fatalf("Merge(%s mismatch): got %v, want ErrIncompatible", what, err)
		}
		if err := s.Restore("t/m", env); !errors.Is(err, knw.ErrIncompatible) {
			t.Fatalf("Restore(%s mismatch): got %v, want ErrIncompatible", what, err)
		}
	}

	// Corrupt bytes are a decode error, not a mismatch (and never a
	// panic).
	if err := s.Merge("t/m", []byte("not an envelope")); err == nil || errors.Is(err, knw.ErrIncompatible) {
		t.Fatalf("Merge(corrupt): got %v, want plain decode error", err)
	}

	// A rejected merge into a never-written name must not leave a ghost
	// entry behind (it would shadow 404s and pollute checkpoints).
	if err := s.Merge("ghost/m", foreign["seed"]); !errors.Is(err, knw.ErrIncompatible) {
		t.Fatalf("Merge(ghost): got %v, want ErrIncompatible", err)
	}
	if _, err := s.Estimate("ghost/m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected merge created a ghost entry: %v", err)
	}

	// Nothing above disturbed the existing sketch.
	est, _ := s.Estimate("t/m")
	within(t, "estimate after rejected merges", est.AllTime, 100, 0.3)
}

func TestRestoreReplacesState(t *testing.T) {
	s, _ := New(testConfig())
	if err := s.Ingest("t/m", keys("x", 0, 4000)); err != nil {
		t.Fatal(err)
	}
	donor := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(1))
	hasher := knw.NewHasher[string](1, 32)
	for _, k := range keys("y", 0, 700) {
		donor.Add(hasher.Hash(k))
	}
	env, _ := donor.MarshalBinary()
	if err := s.Restore("t/m", env); err != nil {
		t.Fatal(err)
	}
	est, _ := s.Estimate("t/m")
	within(t, "restored estimate", est.AllTime, 700, 0.25)

	// Ingestion continues on the restored sketch with the same hashing.
	if err := s.Ingest("t/m", keys("y", 0, 700)); err != nil { // duplicates
		t.Fatal(err)
	}
	est, _ = s.Estimate("t/m")
	within(t, "restored + duplicate ingest", est.AllTime, 700, 0.25)
}

// TestCheckpointRoundTrip proves restart semantics at the store level:
// a loaded checkpoint reproduces byte-identical snapshots and
// estimates, including window ring state.
func TestCheckpointRoundTrip(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig()
	cfg.Window = Window{Buckets: 3, Interval: time.Minute}
	cfg.Now = func() time.Time { return now }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a/m", "b/m", "c/m", "d/m"} {
		if err := s.Ingest(name, keys(name, 0, 1000*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(time.Minute)
	if err := s.Ingest("a/m", keys("late", 0, 500)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := restored.LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("restored %d entries, want 4", n)
	}
	for _, name := range s.Names() {
		want, _ := s.Estimate(name)
		got, err := restored.Estimate(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: restored estimate %+v != original %+v", name, got, want)
		}
		wantEnv, _ := s.Snapshot(name, nil)
		gotEnv, _ := restored.Snapshot(name, nil)
		if string(wantEnv) != string(gotEnv) {
			t.Fatalf("%s: restored snapshot differs from original", name)
		}
	}

	// The restored ring keeps rotating correctly: expire everything and
	// check the window drains while the total stays.
	now = now.Add(time.Hour)
	est, _ := restored.Estimate("a/m")
	if est.Window != 0 {
		t.Fatalf("restored window after expiry = %.1f, want 0", est.Window)
	}
	within(t, "restored all-time after expiry", est.AllTime, 1500, 0.25)
}

// TestLoadCheckpointMismatch: a checkpoint written under different
// options must be rejected with the typed error, not installed.
func TestLoadCheckpointMismatch(t *testing.T) {
	s, _ := New(testConfig())
	if err := s.Ingest("t/m", keys("x", 0, 100)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	other := testConfig()
	other.Options = []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(2)}
	s2, _ := New(other)
	if _, err := s2.LoadCheckpoint(dir); !errors.Is(err, knw.ErrIncompatible) {
		t.Fatalf("LoadCheckpoint(mismatched store): got %v, want ErrIncompatible", err)
	}

	// A missing checkpoint is not an error.
	s3, _ := New(testConfig())
	if n, err := s3.LoadCheckpoint(t.TempDir()); n != 0 || err != nil {
		t.Fatalf("LoadCheckpoint(empty dir) = %d, %v", n, err)
	}
}

// TestWindowConfigChangeDropsRing: loading a checkpoint whose ring
// shape differs keeps the totals and silently starts a fresh ring.
func TestWindowConfigChangeDropsRing(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig()
	cfg.Window = Window{Buckets: 3, Interval: time.Minute}
	cfg.Now = func() time.Time { return now }
	s, _ := New(cfg)
	if err := s.Ingest("t/m", keys("x", 0, 1000)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Window = Window{Buckets: 5, Interval: time.Minute}
	s2, _ := New(cfg2)
	if _, err := s2.LoadCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	est, err := s2.Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "all-time survives ring change", est.AllTime, 1000, 0.25)
	if est.Window != 0 {
		t.Fatalf("window after ring change = %.1f, want 0 (fresh ring)", est.Window)
	}
}
