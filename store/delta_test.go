package store

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	knw "repro"
)

// The delta/epoch machinery (delta.go) is what makes Ingest lock-free:
// writers append to private per-entry slots and the canonical sketches
// only advance at flush time or behind a read barrier. These tests pin
// the three promises that layer makes: reads always see their own
// completed writes, explicit Flush fully drains the backlog with
// deterministic window attribution, and checkpoints taken mid-epoch
// capture pending keys.

// TestReadYourWrites: an Estimate immediately after Ingest — no Flush,
// no background loop (fake clock disables it) — must already include
// the ingested keys, and the read barrier must clear the backlog.
func TestReadYourWrites(t *testing.T) {
	cfg := testConfig()
	cfg.Now = func() time.Time { return time.Unix(1_700_000_000, 0) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("t/m", keys("k", 0, 3000)); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingKeys(); got != 3000 {
		t.Fatalf("PendingKeys before read = %d, want 3000", got)
	}
	est, err := s.Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "estimate after un-flushed ingest", est.AllTime, 3000, 0.25)
	if got := s.PendingKeys(); got != 0 {
		t.Fatalf("PendingKeys after read barrier = %d, want 0", got)
	}
}

// TestFlushWindowAttribution drives a deterministic clock through
// ingest→Flush cycles and checks drain-time bucket attribution: a
// batch flushed while bucket i was current must expire with bucket i,
// even though the canonical merge happened at Flush, not at write.
func TestFlushWindowAttribution(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig()
	cfg.Window = Window{Buckets: 3, Interval: time.Minute}
	cfg.Now = func() time.Time { return now }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Batch A in bucket 0, flushed there; batch B one interval later.
	if err := s.Ingest("t/m", keys("a", 0, 2000)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if got := s.PendingKeys(); got != 0 {
		t.Fatalf("PendingKeys after Flush = %d, want 0", got)
	}
	now = now.Add(time.Minute)
	if err := s.Ingest("t/m", keys("b", 0, 1000)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	// Advance until batch A's bucket has fallen off the 3-bucket ring
	// but batch B's has not: only B remains windowed, both all-time.
	now = now.Add(2 * time.Minute)
	est, err := s.Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "all-time after expiry", est.AllTime, 3000, 0.25)
	within(t, "window after expiry", est.Window, 1000, 0.25)
}

// TestCheckpointDuringEpoch: a checkpoint taken while keys are still
// pending in delta slots must capture them — the capture path drains
// behind the entry lock — so a restore of that file reproduces the
// pre-checkpoint estimates exactly.
func TestCheckpointDuringEpoch(t *testing.T) {
	cfg := testConfig()
	cfg.Now = func() time.Time { return time.Unix(1_700_000_000, 0) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("t/m", keys("k", 0, 4000)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// No Flush: the 4000 keys ride into the checkpoint via the capture
	// barrier alone.
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	want, err := s.Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s2.LoadCheckpoint(dir); err != nil || n != 1 {
		t.Fatalf("LoadCheckpoint = (%d, %v), want (1, nil)", n, err)
	}
	got, err := s2.Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	if got.AllTime != want.AllTime {
		t.Fatalf("restored estimate %.1f != source %.1f", got.AllTime, want.AllTime)
	}
}

// TestIngestHashedMatchesIngest pins the pre-hashing contract the
// binary frame codec and the cluster forwarder stand on:
// IngestHashed(HashKey(k)) must leave the exact same sketch state as
// Ingest(k) — snapshots byte-identical, not merely close.
func TestIngestHashedMatchesIngest(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	ks := keys("k", 0, 5000)
	hashed := make([]uint64, len(ks))
	for i, k := range ks {
		hashed[i] = b.HashKey(k)
	}
	if err := a.Ingest("t/m", ks); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestHashed("t/m", hashed); err != nil {
		t.Fatal(err)
	}
	snapA, err := a.Snapshot("t/m", nil)
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := b.Snapshot("t/m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("Ingest and IngestHashed(HashKey) snapshots differ")
	}
}

// TestDeltaIngestStress hammers ONE entry from 2×GOMAXPROCS writers
// (mixing string and pre-hashed ingest) while readers estimate and the
// background epoch loop flushes at 1ms — the full concurrent surface
// of the slot protocol. Meant to run under -race; the final estimate
// must account for every written key (union of w disjoint ranges).
func TestDeltaIngestStress(t *testing.T) {
	cfg := testConfig()
	cfg.Kind = knw.KindConcurrentF0
	cfg.EpochInterval = time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	writers := 2 * runtime.GOMAXPROCS(0)
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * perWriter
			for b := 0; b < perWriter; b += 100 {
				batch := keys("k", base+b, base+b+100)
				if w%2 == 0 {
					if err := s.Ingest("hot/entry", batch); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				hashed := make([]uint64, len(batch))
				for i, k := range batch {
					hashed[i] = s.HashKey(k)
				}
				if err := s.IngestHashed("hot/entry", hashed); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers force drain barriers to interleave with the
	// epoch loop and the writers' slot claims.
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
				s.Estimate("hot/entry")
				s.Snapshot("hot/entry", nil)
			}
		}
	}()
	wg.Wait()
	close(stopRead)
	rg.Wait()
	est, err := s.Estimate("hot/entry")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "stress estimate", est.AllTime, float64(writers*perWriter), 0.25)
	if got := s.PendingKeys(); got != 0 {
		t.Fatalf("PendingKeys after final read = %d, want 0", got)
	}
}

// TestCloseFlushesAndStaysUsable: Close stops the epoch loop after a
// final flush but the store keeps working — ingest still lands and
// read barriers still drain.
func TestCloseFlushesAndStaysUsable(t *testing.T) {
	s, err := New(testConfig()) // real clock: background loop running
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("t/m", keys("k", 0, 1000)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := s.PendingKeys(); got != 0 {
		t.Fatalf("PendingKeys after Close = %d, want 0", got)
	}
	s.Close() // idempotent
	if err := s.Ingest("t/m", keys("k", 1000, 2000)); err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate("t/m")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "estimate after Close", est.AllTime, 2000, 0.25)
}

// TestSlotOverflowNeverBlocks: more concurrent writers than delta
// slots must still make progress (claim spins with Gosched, and the
// drainer holds at most one slot at a time).
func TestSlotOverflowNeverBlocks(t *testing.T) {
	cfg := testConfig()
	cfg.Kind = knw.KindConcurrentF0
	cfg.EpochInterval = time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	writers := 4 * slotsPerEntry()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 20; b++ {
				name := fmt.Sprintf("w%d", w*1000+b)
				if err := s.Ingest("one/entry", []string{name}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	est, err := s.Estimate("one/entry")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "overflow estimate", est.AllTime, float64(writers*20), 0.25)
}
