package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	knw "repro"
)

// Ingest-path benchmarks for the lock-free delta layer. The ns/key
// numbers here are the store's share of the service ingest budget —
// what sits between the HTTP codecs and the raw sketch Add.
//
//	go test -run=NONE -bench='BenchmarkStoreIngest' -benchmem ./store

func benchConfig() Config {
	return Config{
		Kind:    knw.KindConcurrentF0,
		Options: []knw.Option{knw.WithEpsilon(0.05), knw.WithSeed(1)},
	}
}

// BenchmarkStoreIngest measures the string path: hash + delta-slot
// append per key, background epoch loop running.
func BenchmarkStoreIngest(b *testing.B) {
	for _, batch := range []int{64, 1024, 8192} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s, err := New(benchConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ks := make([]string, batch)
			for i := range ks {
				ks[i] = fmt.Sprintf("user-%d", i)
			}
			b.SetBytes(int64(batch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Ingest("bench/t", ks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreIngestHashed measures the pre-hashed path the binary
// frame codec feeds: delta-slot append only, no key bytes touched.
func BenchmarkStoreIngestHashed(b *testing.B) {
	for _, batch := range []int{64, 1024, 8192} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s, err := New(benchConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ks := make([]uint64, batch)
			for i := range ks {
				ks[i] = s.HashKey(fmt.Sprintf("user-%d", i))
			}
			b.SetBytes(int64(batch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.IngestHashed("bench/t", ks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreIngestParallel is the contention case the slot
// protocol exists for: every P hammering one entry at once.
func BenchmarkStoreIngestParallel(b *testing.B) {
	s, err := New(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const batch = 1024
	var worker atomic.Int64
	b.SetBytes(batch)
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		ks := make([]uint64, batch)
		for i := range ks {
			ks[i] = s.HashKey(fmt.Sprintf("user-%d-%d", w, i))
		}
		for pb.Next() {
			if err := s.IngestHashed("bench/hot", ks); err != nil {
				b.Fatal(err)
			}
		}
	})
}
