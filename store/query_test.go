package store

import (
	"errors"
	"testing"
	"time"

	knw "repro"
)

// Series exact-boundary tables: with ε=0.05 the counts below sit in
// the sketch's exact small-count regime, so every expectation is
// asserted exactly — bucket attribution, span clamping, epochs,
// wall-clock bounds, union-not-sum window semantics, and expiry.

// seriesFixture ingests three intervals into a 4-bucket ring:
//
//	t=0: 24 keys "a"           → bucket epoch e
//	t=1: 12 keys "b"           → bucket epoch e+1
//	t=2: 48 keys "c" + 12 "a"  → bucket epoch e+2 (60 distinct,
//	                             12 shared with the t=0 bucket)
//
// and leaves the clock at t=2. Each ingest is followed by a read
// barrier: under the fake clock there is no background drain loop, and
// delta slots attribute keys to the bucket current at drain time, so
// the drain must happen before the clock leaves the interval.
func seriesFixture(t *testing.T) (*Store, func(float64)) {
	t.Helper()
	s, setClock := windowTestStore(t, 4, time.Minute)
	ingest := func(ks []string) {
		t.Helper()
		if err := s.Ingest("t/m", ks); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Estimate("t/m"); err != nil {
			t.Fatal(err)
		}
	}
	setClock(0)
	ingest(keys("a", 0, 24))
	setClock(1)
	ingest(keys("b", 0, 12))
	setClock(2)
	ingest(append(keys("c", 0, 48), keys("a", 0, 12)...))
	return s, setClock
}

func TestSeriesBoundaries(t *testing.T) {
	cases := []struct {
		name       string
		span       time.Duration
		wantEsts   []float64 // oldest → newest
		wantWindow float64   // union over the span, NOT the bucket sum
	}{
		// span 0 = the full ring: the 4th bucket predates the ring's
		// first write and is empty. Union is 84, not the 96 a
		// per-bucket sum would give: the 12 "a" keys in the newest
		// bucket already count in the oldest.
		{"full ring", 0, []float64{0, 24, 12, 60}, 84},
		// One interval exactly: just the live bucket.
		{"one interval", time.Minute, []float64{60}, 60},
		// 90s rounds up to 2 buckets.
		{"rounds up", 90 * time.Second, []float64{12, 60}, 72},
		// Three whole buckets: the t=0 bucket is inside the span, so
		// the shared "a" keys still count once.
		{"three buckets", 3 * time.Minute, []float64{24, 12, 60}, 84},
		// A span beyond the ring clamps to the ring.
		{"clamped", 10 * time.Hour, []float64{0, 24, 12, 60}, 84},
		// Sub-interval spans round up to one bucket.
		{"sub-interval", time.Second, []float64{60}, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := seriesFixture(t)
			got, err := s.Series("t/m", tc.span)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Buckets) != len(tc.wantEsts) {
				t.Fatalf("got %d buckets, want %d", len(got.Buckets), len(tc.wantEsts))
			}
			for i, want := range tc.wantEsts {
				if got.Buckets[i].Estimate != want {
					t.Errorf("bucket %d estimate = %.1f, want exactly %.1f", i, got.Buckets[i].Estimate, want)
				}
			}
			if got.Window != tc.wantWindow {
				t.Errorf("window = %.1f, want exactly %.1f", got.Window, tc.wantWindow)
			}
			// Delta/rate always compare the two newest ring buckets:
			// 60 − 12 over a one-minute interval.
			if got.Delta != 48 {
				t.Errorf("delta = %.1f, want exactly 48", got.Delta)
			}
			if got.RatePerSec != 48.0/60 {
				t.Errorf("rate = %v, want %v", got.RatePerSec, 48.0/60)
			}
		})
	}
}

// Epochs are consecutive, wall-aligned (Start = Epoch·interval), and
// each bucket covers exactly one interval.
func TestSeriesEpochAlignment(t *testing.T) {
	s, _ := seriesFixture(t)
	got, err := s.Series("t/m", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got.Buckets {
		if want := time.Unix(0, b.Epoch*int64(time.Minute)); !b.Start.Equal(want) {
			t.Errorf("bucket %d start = %v, want %v", i, b.Start, want)
		}
		if !b.End.Equal(b.Start.Add(time.Minute)) {
			t.Errorf("bucket %d end = %v, want start+interval", i, b.End)
		}
		if i > 0 && b.Epoch != got.Buckets[i-1].Epoch+1 {
			t.Errorf("bucket %d epoch %d does not follow %d", i, b.Epoch, got.Buckets[i-1].Epoch)
		}
	}
	// The newest bucket ends in the future: it is still filling.
	if got.Interval != "1m0s" || got.Span != "4m0s" {
		t.Errorf("interval/span = %q/%q, want 1m0s/4m0s", got.Interval, got.Span)
	}
}

// A gap past the ring span expires every bucket: the series reads all
// zeros but keeps its shape, and rates read 0.
func TestSeriesFullExpiry(t *testing.T) {
	s, setClock := seriesFixture(t)
	setClock(10)
	got, err := s.Series("t/m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Buckets) != 4 {
		t.Fatalf("got %d buckets, want 4", len(got.Buckets))
	}
	for i, b := range got.Buckets {
		if b.Estimate != 0 {
			t.Errorf("bucket %d after expiry = %.1f, want 0", i, b.Estimate)
		}
	}
	if got.Window != 0 || got.Delta != 0 || got.RatePerSec != 0 {
		t.Errorf("window/delta/rate after expiry = %v/%v/%v, want zeros", got.Window, got.Delta, got.RatePerSec)
	}
}

func TestSeriesErrors(t *testing.T) {
	s, _ := seriesFixture(t)
	if _, err := s.Series("never/written", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown store: err = %v, want ErrNotFound", err)
	}
	flat, err := New(Config{Kind: knw.KindF0, Options: []knw.Option{knw.WithSeed(1)}})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if err := flat.Ingest("t/m", keys("a", 0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Series("t/m", 0); !errors.Is(err, ErrNotWindowed) {
		t.Errorf("unwindowed store: err = %v, want ErrNotWindowed", err)
	}
	if _, err := flat.RingSnapshot("t/m"); !errors.Is(err, ErrNotWindowed) {
		t.Errorf("unwindowed ring snapshot: err = %v, want ErrNotWindowed", err)
	}
	_ = s
}

// RingSnapshot round-trips through the KNWB wire form, and the decoded
// buckets union to exactly the windowed estimate.
func TestRingSnapshotRoundTrip(t *testing.T) {
	s, _ := seriesFixture(t)
	rs, err := s.RingSnapshot("t/m")
	if err != nil {
		t.Fatal(err)
	}
	blob := rs.Encode(nil)
	dec, err := DecodeRingSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Interval != time.Minute {
		t.Errorf("interval = %v, want 1m", dec.Interval)
	}
	if len(dec.Buckets) != 4 {
		t.Fatalf("got %d buckets, want 4", len(dec.Buckets))
	}
	var union knw.Estimator
	for i, b := range dec.Buckets {
		if b.Epoch != rs.Buckets[i].Epoch {
			t.Errorf("bucket %d epoch = %d, want %d", i, b.Epoch, rs.Buckets[i].Epoch)
		}
		est, err := knw.Open(b.Env)
		if err != nil {
			t.Fatalf("bucket %d: %v", i, err)
		}
		if union == nil {
			union = est
		} else if err := knw.MergeInto(union, est); err != nil {
			t.Fatalf("bucket %d: %v", i, err)
		}
	}
	if got := union.Estimate(); got != 84 {
		t.Errorf("union of decoded buckets = %.1f, want exactly 84", got)
	}

	// Truncated and corrupt blobs fail loudly, not silently.
	if _, err := DecodeRingSnapshot(blob[:len(blob)/2]); err == nil {
		t.Error("truncated blob decoded")
	}
	if _, err := DecodeRingSnapshot([]byte{0x01, 0x02}); err == nil {
		t.Error("garbage blob decoded")
	}
}

// SetQuery runs inclusion–exclusion over store snapshots: exact in the
// small-count regime, for both all-time and windowed scopes.
func TestSetQuery(t *testing.T) {
	s, setClock := windowTestStore(t, 4, time.Minute)
	setClock(0)
	if err := s.Ingest("col/a", keys("k", 0, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("col/b", keys("k", 20, 60)); err != nil {
		t.Fatal(err)
	}
	for _, windowed := range []bool{false, true} {
		st, err := s.SetQuery([]string{"col/a", "col/b"}, windowed)
		if err != nil {
			t.Fatalf("windowed=%v: %v", windowed, err)
		}
		if st.Union != 60 || st.Intersection != 20 {
			t.Errorf("windowed=%v: union/inter = %.1f/%.1f, want 60/20", windowed, st.Union, st.Intersection)
		}
		if st.Jaccard != 20.0/60 {
			t.Errorf("windowed=%v: jaccard = %v, want %v", windowed, st.Jaccard, 20.0/60)
		}
	}
	// Windowed scope sees only live buckets: advance past the span so
	// everything expires, then re-ingest only col/b.
	setClock(10)
	if err := s.Ingest("col/b", keys("k", 20, 60)); err != nil {
		t.Fatal(err)
	}
	st, err := s.SetQuery([]string{"col/a", "col/b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cards[0] != 0 || st.Cards[1] != 40 || st.Intersection != 0 {
		t.Errorf("after expiry: cards/inter = %v/%v/%.1f, want 0/40/0", st.Cards[0], st.Cards[1], st.Intersection)
	}
	// All-time scope still remembers everything.
	st, err = s.SetQuery([]string{"col/a", "col/b"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Union != 60 {
		t.Errorf("all-time union after expiry = %.1f, want 60", st.Union)
	}
	if _, err := s.SetQuery([]string{"col/a", "missing"}, false); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing store: err = %v, want ErrNotFound", err)
	}
}
