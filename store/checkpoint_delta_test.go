package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	knw "repro"
	"repro/internal/metrics"
)

func fileSize(t *testing.T, path string) int {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return int(fi.Size())
}

// loadedSnapshot loads dir into a fresh store and returns name's
// snapshot bytes.
func loadedSnapshot(t *testing.T, cfg Config, dir, name string) []byte {
	t.Helper()
	cfg.Metrics = nil // a second store cannot re-register the gauges
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.LoadCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	env, err := fresh.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestCheckpointIncremental: the incremental path writes a full file
// first, then cumulative delta files that are a tiny fraction of it in
// the duplicate-heavy steady state — and every load reproduces the
// live store's snapshot bytes exactly.
func TestCheckpointIncremental(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointFullEvery = 4
	cfg.Metrics = metrics.NewRegistry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := "acme/users"
	if err := s.Ingest(name, keys("u", 0, 50_000)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fullPath := filepath.Join(dir, CheckpointFile)
	deltaPath := filepath.Join(dir, CheckpointDeltaFile)

	// Call 1: no chain yet — a full rewrite, no delta file.
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	fullSize := fileSize(t, fullPath)
	if _, err := os.Stat(deltaPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("delta file after the full rewrite: %v", err)
	}
	if got := int(s.met.ckptBytes.Value()); got != fullSize {
		t.Fatalf("checkpoint bytes gauge = %d, want full size %d", got, fullSize)
	}

	// Steady state: re-observed keys bump versions but change no
	// section, so the cumulative delta file is a sliver of the full one.
	if err := s.Ingest(name, keys("u", 0, 500)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	deltaSize := fileSize(t, deltaPath)
	if deltaSize*5 > fullSize {
		t.Fatalf("steady-state delta file %dB not ≥5x smaller than full %dB", deltaSize, fullSize)
	}
	if got := int(s.met.ckptBytes.Value()); got != deltaSize {
		t.Fatalf("checkpoint bytes gauge = %d, want delta size %d", got, deltaSize)
	}
	want, err := s.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loadedSnapshot(t, cfg, dir, name), want) {
		t.Fatal("load after steady-state delta differs from the live store")
	}

	// Fresh keys and a brand-new entry: the delta file carries changed
	// sections for one and a full envelope for the other, cumulatively.
	if err := s.Ingest(name, keys("v", 0, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("acme/new", keys("n", 0, 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	want, err = s.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loadedSnapshot(t, cfg, dir, name), want) {
		t.Fatal("load after fresh-key delta differs from the live store")
	}
	wantNew, err := s.Snapshot("acme/new", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loadedSnapshot(t, cfg, dir, "acme/new"), wantNew) {
		t.Fatal("entry created after the full rewrite did not survive the load")
	}

	// CheckpointFullEvery = 4: the cycle is one full rewrite then three
	// deltas, so call 4 still extends the chain and call 5 restarts it —
	// full file rewritten, delta file removed.
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(deltaPath); err != nil {
		t.Fatalf("call 4 should still write the delta file: %v", err)
	}
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(deltaPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("delta file survived the scheduled full rewrite: %v", err)
	}
	if !bytes.Equal(loadedSnapshot(t, cfg, dir, name), want) {
		t.Fatal("load after the full rewrite differs from the live store")
	}
}

// TestCheckpointDeltaStale: a delta file whose base id does not match
// the full file (a crash between the full rewrite and the delta
// removal) is ignored whole, not applied and not an error.
func TestCheckpointDeltaStale(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := "acme/users"
	if err := s.Ingest(name, keys("u", 0, 5_000)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(name, keys("u", 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(filepath.Join(dir, CheckpointDeltaFile))
	if err != nil {
		t.Fatal(err)
	}
	// A new full rewrite removes the delta file; resurrect the old one.
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, CheckpointDeltaFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := s.Snapshot(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loadedSnapshot(t, cfg, dir, name), want) {
		t.Fatal("stale delta file changed the loaded state")
	}
}

// TestCheckpointDeltaCorrupt: truncating the delta file anywhere fails
// the whole load with the typed corruption error and an empty store.
func TestCheckpointDeltaCorrupt(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("acme/users", keys("u", 0, 5_000)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("acme/users", keys("w", 0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CheckpointDeltaFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 4, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n, err := fresh.LoadCheckpoint(dir)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncated delta at %d: %v", cut, err)
		}
		if n != 0 || fresh.Len() != 0 {
			t.Fatalf("truncated delta at %d: partial registry (n=%d, Len=%d)", cut, n, fresh.Len())
		}
	}
}

// TestCheckpointIncrementalWindowed: windowed entries ride the delta
// file as full envelopes plus their ring, and restore mid-rotation.
func TestCheckpointIncrementalWindowed(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := Config{
		Kind:    knw.KindF0,
		Options: []knw.Option{knw.WithEpsilon(0.1), knw.WithSeed(1)},
		Window:  Window{Buckets: 3, Interval: time.Minute},
		Now:     func() time.Time { return now },
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := "acme/win"
	if err := s.Ingest(name, keys("a", 0, 2_000)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	if err := s.Ingest(name, keys("b", 0, 500)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointIncremental(dir); err != nil {
		t.Fatal(err)
	}
	want, err := s.Estimate(name)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.LoadCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Estimate(name)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("windowed restore %+v != live %+v", got, want)
	}
}
