package store

import (
	"bytes"

	knw "repro"
)

// Per-entry version counters and delta snapshots: the store side of
// the gossip protocol (cluster/gossip.go) and of incremental
// checkpoints (checkpoint.go).
//
// Every entry carries a monotonically increasing version, bumped by
// exactly the operations that change its canonical all-time state: an
// epoch drain that merged pending keys, a Merge, a Restore, and a
// checkpoint install. Versions start at 1 on creation (so "store
// exists, still empty" is itself replicable state) and are
// process-local — they are never persisted, and peers pair them with a
// per-process instance id (see cluster/gossip.go) so a restarted
// node's counters can never be confused with its previous life's.
//
// DeltaSnapshot serves the versioned read: "give me what changed since
// base". The entry keeps a section-level encode cache — the last full
// envelope, split via knw.SplitEnvelope, with a per-section version
// stamp recording when each section last changed. Serving a delta is
// then a stamp comparison: sections stamped after the requested base
// go into a KNWD envelope, everything else is omitted. Stamps are
// maintained by bytes-comparing each refresh against the previous
// cache, so an entry whose drain touched 2 of 600 copies ships 2
// sections, not 600. Over-inclusion (a fresh cache stamps everything
// current) is always safe — sketch sections are whole-state, not
// diffs — it only costs bytes.

// DeltaSnap is one versioned snapshot response.
type DeltaSnap struct {
	// Version is the entry's current version — what the receiver holds
	// after applying Env.
	Version uint64
	// Delta reports whether Env is a KNWD delta against the requested
	// base (false: a full KNWE envelope). Meaningless when Env is nil.
	Delta bool
	// Env is the envelope bytes, or nil when the requested base is
	// already current. It aliases the entry's encode cache: treat as
	// read-only, copy if it must outlive the next store write.
	Env []byte
}

// sectionCache is an entry's section-level encode cache, guarded by
// the entry mutex. A refresh replaces the whole struct, so a DeltaSnap
// handed out earlier keeps aliasing the immutable previous generation.
type sectionCache struct {
	version  uint64 // entry version this cache encodes
	full     []byte // the full KNWE envelope
	split    knw.EnvelopeSections
	secVers  []uint64 // entry version at which each section last changed
	sections bool     // split succeeded; deltas can be served
}

// refreshEncLocked brings the entry's encode cache to its current
// version. Callers hold e.mu and have drained.
func (s *Store) refreshEncLocked(e *entry) error {
	v := e.version.Load()
	if c := e.enc; c != nil && c.version == v {
		return nil
	}
	full, err := appendSketch(nil, e.total)
	if err != nil {
		return err
	}
	nc := &sectionCache{version: v, full: full}
	split, serr := knw.SplitEnvelope(full)
	if serr == nil {
		nc.split = split
		nc.sections = true
		nc.secVers = make([]uint64, len(split.Sections))
		prev := e.enc
		carry := prev != nil && prev.sections &&
			len(prev.split.Sections) == len(split.Sections) &&
			bytes.Equal(prev.split.Header, split.Header)
		for i := range nc.secVers {
			if carry && bytes.Equal(prev.split.Sections[i], split.Sections[i]) {
				nc.secVers[i] = prev.secVers[i]
			} else {
				nc.secVers[i] = v
			}
		}
	}
	e.enc = nc
	return nil
}

// DeltaSnapshot returns name's envelope relative to base: nil bytes
// when base is already current, a KNWD delta when the entry can prove
// which sections changed since base, and a full KNWE envelope
// otherwise (first contact, an unknown or future base, a section
// structure the splitter cannot frame, or a delta that would not
// actually be smaller). With compress set, delta bodies are
// DEFLATE-compressed when that shrinks them.
func (s *Store) DeltaSnapshot(name string, base uint64, compress bool) (DeltaSnap, error) {
	e, err := s.lookup(name, false)
	if err != nil {
		return DeltaSnap{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s.drainLocked(e) // versioned reads carry every acknowledged write
	v := e.version.Load()
	if base == v {
		return DeltaSnap{Version: v}, nil
	}
	if err := s.refreshEncLocked(e); err != nil {
		return DeltaSnap{}, err
	}
	c := e.enc
	if base == 0 || base > v || !c.sections {
		return DeltaSnap{Version: v, Env: c.full}, nil
	}
	var changed []int
	for i, sv := range c.secVers {
		if sv > base {
			changed = append(changed, i)
		}
	}
	delta, err := knw.AppendDelta(nil, c.split, base, v, changed, compress)
	if err != nil || len(delta) >= len(c.full) {
		return DeltaSnap{Version: v, Env: c.full}, nil
	}
	return DeltaSnap{Version: v, Delta: true, Env: delta}, nil
}

// Version returns name's current entry version, or 0 for never-written
// names. It does not drain: pending delta-slot keys version on their
// next drain, so a version observed here is at most one epoch behind.
func (s *Store) Version(name string) uint64 {
	e, err := s.lookup(name, false)
	if err != nil {
		return 0
	}
	return e.version.Load()
}

// Digest returns the store's version vector: every entry name mapped
// to its current version. This is what gossip digests exchange, so
// entries with buffered writes are drained first — an advertised
// version always covers every acknowledged write, which is what keeps
// the replication staleness bound at the gossip interval rather than
// interval + epoch age.
func (s *Store) Digest() map[string]uint64 {
	out := make(map[string]uint64, s.Len())
	var dirty []*entry
	var names []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name, e := range sh.m {
			if e.pending.Load() > 0 {
				dirty = append(dirty, e)
				names = append(names, name)
				continue
			}
			out[name] = e.version.Load()
		}
		sh.mu.RUnlock()
	}
	for i, e := range dirty {
		e.mu.Lock()
		s.drainLocked(e)
		out[names[i]] = e.version.Load()
		e.mu.Unlock()
	}
	return out
}
