package knw

import (
	"math"
	"sync"
	"testing"
)

func TestConcurrentF0Basic(t *testing.T) {
	c := NewConcurrentF0(4, WithSeed(60), WithEpsilon(0.1), WithCopies(1))
	if c.Shards() != 4 {
		t.Fatalf("Shards=%d", c.Shards())
	}
	const f0 = 100_000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < f0; i += 8 {
				k := uint64(i)*0x9e3779b97f4a7c15 + 1
				c.Add(k)
				c.Add(k) // concurrent duplicates
			}
		}(g)
	}
	wg.Wait()
	got := c.Estimate()
	if rel := math.Abs(got-f0) / f0; rel > 0.15 {
		t.Errorf("concurrent estimate %v (rel %.3f)", got, rel)
	}
	if c.SpaceBits() <= 0 {
		t.Error("SpaceBits")
	}
}

func TestConcurrentF0MatchesSequentialUnion(t *testing.T) {
	// The sharded wrapper must agree with a single same-seed sketch
	// over the same stream (max-merge makes the union exact up to
	// rough-estimator timing).
	c := NewConcurrentF0(8, WithSeed(61), WithEpsilon(0.1), WithCopies(1))
	single := NewF0(WithSeed(61), WithEpsilon(0.1), WithCopies(1))
	for i := 0; i < 200_000; i++ {
		k := uint64(i)*2654435761 + 1
		c.Add(k)
		single.Add(k)
	}
	a, b := c.Estimate(), single.Estimate()
	if math.Abs(a-b)/b > 0.2 {
		t.Errorf("sharded %v vs single %v", a, b)
	}
}

func TestConcurrentF0EstimateDuringWrites(t *testing.T) {
	// Estimate must be safe to call while writers are running; run with
	// -race to verify synchronization.
	c := NewConcurrentF0(4, WithSeed(62), WithEpsilon(0.2), WithCopies(1))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
					c.Add(i*0x9e3779b97f4a7c15 + 1)
					i += 4
				}
			}
		}(g)
	}
	prev := 0.0
	for r := 0; r < 10; r++ {
		est := c.Estimate()
		if est+1 < prev*0.5 { // monotone-ish: gross decreases indicate a race
			t.Errorf("estimate collapsed: %v after %v", est, prev)
		}
		prev = est
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentF0AddString(t *testing.T) {
	c := NewConcurrentF0(2, WithSeed(63), WithCopies(1))
	c.AddString("x")
	c.AddString("x")
	c.AddString("y")
	if got := c.Estimate(); got != 2 {
		t.Errorf("got %v want 2", got)
	}
}

func TestConcurrentF0ShardRounding(t *testing.T) {
	if got := NewConcurrentF0(3, WithSeed(64), WithCopies(1), WithEpsilon(0.3)).Shards(); got != 4 {
		t.Errorf("3 shards should round to 4, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("0 shards should panic")
		}
	}()
	NewConcurrentF0(0)
}

func TestConcurrentL0(t *testing.T) {
	c := NewConcurrentL0(4, WithSeed(65), WithEpsilon(0.1), WithCopies(1))
	const live = 50_000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < live+20_000; i += 8 {
				k := uint64(i)*0x9e3779b97f4a7c15 + 1
				c.Update(k, 5)
				if i >= live {
					c.Update(k, -5) // net zero for the extras
				}
			}
		}(g)
	}
	wg.Wait()
	got := c.Estimate()
	if rel := math.Abs(got-live) / live; rel > 0.2 {
		t.Errorf("concurrent L0 %v (rel %.3f)", got, rel)
	}
	if c.Shards() != 4 {
		t.Errorf("Shards=%d", c.Shards())
	}
}

func BenchmarkConcurrentF0Add(b *testing.B) {
	c := NewConcurrentF0(8, WithSeed(1), WithCopies(1))
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			c.Add(i*0x9e3779b97f4a7c15 + 1)
			i++
		}
	})
}
