package knw

import (
	"encoding"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Set algebra over mergeable sketches.
//
// The KNW summaries are linear (L0) or max-mergeable (F0), so a union
// of streams is answered by merging their sketches — and every other
// set statistic follows from unions by inclusion–exclusion:
//
//	|A ∩ B|     = |A| + |B| − |A ∪ B|
//	J(A, B)     = |A ∩ B| / |A ∪ B|
//	|A \ B|     = |A ∪ B| − |B|
//	|A Δ B|     = 2|A ∪ B| − |A| − |B|
//
// and, for k sets, |∩ᵢ Aᵢ| = Σ_{∅≠S⊆[k]} (−1)^{|S|+1} |∪_{i∈S} Aᵢ|.
// Each union term carries the sketch's ε relative error, so the
// absolute error of an inclusion–exclusion answer is bounded by
// ε·Σ_S |∪_{i∈S} Aᵢ| — it scales with the magnitude of the unions,
// not with the (possibly tiny) intersection. See SetStats for the
// bound each answer ships with.
//
// All helpers take sketches behind the Estimator interface (as the
// store and service layers hold them after knw.Open) and never mutate
// their arguments beyond draining deamortized phases, exactly like
// Merge.

// MaxSetQuery caps the number of sketches a k-way inclusion–exclusion
// helper accepts: the identity sums 2^k − 1 union terms, so both cost
// and error budget grow exponentially in k.
const MaxSetQuery = 8

// Clone deep-copies a wire-kind estimator through its serialized form
// (MarshalBinary + Open), so the copy shares configuration, seed, and
// hash draws with the original and the two never alias state. Kinds
// without an envelope encoding (the experiment baselines) return an
// error wrapping ErrIncompatible.
func Clone(est Estimator) (Estimator, error) {
	m, ok := est.(encoding.BinaryMarshaler)
	if !ok {
		return nil, errIncompatible("knw: %s has no envelope encoding to clone through", est.Name())
	}
	data, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return Open(data)
}

// UnionSketch returns a new sketch summarizing the union of the given
// streams: a clone of the first argument with every other argument
// merged in. All sketches must be merge-compatible (same wire kind,
// options, and seed). The arguments are not modified.
func UnionSketch(sketches ...Estimator) (Estimator, error) {
	if len(sketches) == 0 {
		return nil, errors.New("knw: union of no sketches")
	}
	dst, err := Clone(sketches[0])
	if err != nil {
		return nil, err
	}
	for _, s := range sketches[1:] {
		if err := MergeInto(dst, s); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// Union estimates |A₁ ∪ … ∪ A_k|, the number of distinct keys across
// all the streams, by merging clones of the sketches.
func Union(sketches ...Estimator) (float64, error) {
	u, err := UnionSketch(sketches...)
	if err != nil {
		return 0, err
	}
	return estimateOf(u)
}

// Intersection estimates |A₁ ∩ … ∩ A_k| by inclusion–exclusion over
// all 2^k − 1 subset unions (k between 2 and MaxSetQuery). The answer
// is clamped to [0, minᵢ|Aᵢ|]; its absolute error is bounded by
// ε·Σ_S |∪_{i∈S} Aᵢ| (see SetStats.IntersectionErrBound), which for
// two sets is ε·(|A| + |B| + |A ∪ B|) ≤ 3ε·|A ∪ B|.
func Intersection(sketches ...Estimator) (float64, error) {
	r, err := incExcRun(sketches)
	if err != nil {
		return 0, err
	}
	return r.inter, nil
}

// Jaccard estimates the Jaccard similarity |∩ᵢAᵢ| / |∪ᵢAᵢ| of k
// streams (k between 2 and MaxSetQuery), clamped to [0, 1]. An empty
// union reports similarity 0.
func Jaccard(sketches ...Estimator) (float64, error) {
	r, err := incExcRun(sketches)
	if err != nil {
		return 0, err
	}
	return r.jaccard(), nil
}

// Difference estimates |A \ B| = |A ∪ B| − |B|, the number of distinct
// keys of a's stream that b's stream never saw, clamped to ≥ 0.
func Difference(a, b Estimator) (float64, error) {
	u, err := Union(a, b)
	if err != nil {
		return 0, err
	}
	cb, err := estimateOf(b)
	if err != nil {
		return 0, err
	}
	return math.Max(0, u-cb), nil
}

// Hamming estimates |{i : count_a(i) ≠ count_b(i)}| between two
// turnstile (L0-kind) sketches without modifying either: the receiver
// side is cloned, −1× the other stream is folded in (MergeNegated),
// and the L0 of the difference vector is reported. Only the L0 wire
// kinds support it — F0's max-merge cannot subtract — so other kinds
// return an error wrapping ErrIncompatible. For insertion-only streams
// this equals the symmetric difference |A Δ B|.
func Hamming(a, b Estimator) (float64, error) {
	switch x := a.(type) {
	case *L0:
		y, ok := b.(*L0)
		if !ok {
			return 0, errKindMismatch(a, b)
		}
		return HammingDiff(x, y)
	case *ConcurrentL0:
		y, ok := b.(*ConcurrentL0)
		if !ok {
			return 0, errKindMismatch(a, b)
		}
		c, err := Clone(x)
		if err != nil {
			return 0, err
		}
		if err := c.(*ConcurrentL0).MergeNegated(y); err != nil {
			return 0, err
		}
		return estimateOf(c)
	}
	return 0, errIncompatible("knw: %s does not support Hamming distance (turnstile L0 kinds only)", kindOf(a))
}

// SetStats is the full inclusion–exclusion picture for k sketches, as
// computed by NewSetStats and served by the daemon's /v1/query.
type SetStats struct {
	// Cards[i] is the per-stream distinct-count estimate |Aᵢ|.
	Cards []float64
	// Union and Intersection estimate |∪ᵢAᵢ| and |∩ᵢAᵢ|; Jaccard is
	// their ratio clamped to [0, 1]. Intersection is clamped to
	// [0, minᵢ Cards[i]].
	Union        float64
	Intersection float64
	Jaccard      float64
	// DiffAB = |A \ B|, DiffBA = |B \ A|, and SymmetricDiff = |A Δ B|
	// are filled for two-sketch queries only (zero otherwise).
	DiffAB        float64
	DiffBA        float64
	SymmetricDiff float64
	// Hamming is the turnstile L0 distance |{i : count_a(i) ≠
	// count_b(i)}|, filled only when HammingOK: two sketches of an L0
	// wire kind. For insertion-only streams it coincides with
	// SymmetricDiff up to sketch error.
	Hamming   float64
	HammingOK bool
	// Epsilon is the sketches' configured relative standard error;
	// IntersectionErrBound = ε·Σ_S |∪_{i∈S}Aᵢ| bounds the absolute
	// error of Intersection (and of Union·Jaccard): inclusion–
	// exclusion error scales with the union magnitudes, never with
	// the intersection itself. Terms counts the 2^k − 1 union terms
	// the bound sums over.
	Epsilon              float64
	IntersectionErrBound float64
	Terms                int
}

// NewSetStats runs one inclusion–exclusion pass over k merge-
// compatible sketches (2 ≤ k ≤ MaxSetQuery) and reports every set
// statistic the pass yields. The arguments are not modified.
func NewSetStats(sketches ...Estimator) (SetStats, error) {
	r, err := incExcRun(sketches)
	if err != nil {
		return SetStats{}, err
	}
	st := SetStats{
		Cards:                r.cards,
		Union:                r.union,
		Intersection:         r.inter,
		Jaccard:              r.jaccard(),
		Epsilon:              epsilonOf(sketches[0]),
		IntersectionErrBound: epsilonOf(sketches[0]) * r.sumU,
		Terms:                r.terms,
	}
	if len(sketches) == 2 {
		st.DiffAB = math.Max(0, st.Union-st.Cards[1])
		st.DiffBA = math.Max(0, st.Union-st.Cards[0])
		st.SymmetricDiff = st.DiffAB + st.DiffBA
		if h, err := Hamming(sketches[0], sketches[1]); err == nil {
			st.Hamming, st.HammingOK = h, true
		}
	}
	return st, nil
}

// incExc accumulates one inclusion–exclusion pass.
type incExc struct {
	cards []float64
	union float64 // full-mask union estimate
	inter float64 // signed sum, clamped
	sumU  float64 // Σ over subset terms, for the error bound
	terms int
}

func (r incExc) jaccard() float64 {
	if r.union <= 0 {
		return 0
	}
	return math.Min(1, r.inter/r.union)
}

// incExcRun evaluates |∪_{i∈S} Aᵢ| for every non-empty S ⊆ [k] and
// combines the terms into the intersection estimate. Singleton terms
// read the argument sketches directly; larger terms clone the first
// member and merge the rest, so the pass costs O(2^k·k) merges and one
// live clone at a time.
func incExcRun(sketches []Estimator) (incExc, error) {
	k := len(sketches)
	if k < 2 {
		return incExc{}, errors.New("knw: set algebra needs at least two sketches")
	}
	if k > MaxSetQuery {
		return incExc{}, fmt.Errorf("knw: set algebra over %d sketches exceeds the %d-sketch cap", k, MaxSetQuery)
	}
	for _, s := range sketches[1:] {
		if err := Compatible(sketches[0], s); err != nil {
			return incExc{}, err
		}
	}
	r := incExc{cards: make([]float64, k)}
	for i, s := range sketches {
		v, err := estimateOf(s)
		if err != nil {
			return incExc{}, err
		}
		r.cards[i] = v
	}
	full := 1<<k - 1
	for mask := 1; mask <= full; mask++ {
		var u float64
		if bits.OnesCount(uint(mask)) == 1 {
			u = r.cards[bits.TrailingZeros(uint(mask))]
		} else {
			first := bits.TrailingZeros(uint(mask))
			dst, err := Clone(sketches[first])
			if err != nil {
				return incExc{}, err
			}
			for j := first + 1; j < k; j++ {
				if mask&(1<<j) == 0 {
					continue
				}
				if err := MergeInto(dst, sketches[j]); err != nil {
					return incExc{}, err
				}
			}
			u, err = estimateOf(dst)
			if err != nil {
				return incExc{}, err
			}
		}
		if bits.OnesCount(uint(mask))%2 == 1 {
			r.inter += u
		} else {
			r.inter -= u
		}
		r.sumU += u
		r.terms++
		if mask == full {
			r.union = u
		}
	}
	minCard := r.cards[0]
	for _, c := range r.cards[1:] {
		minCard = math.Min(minCard, c)
	}
	r.inter = math.Max(0, math.Min(r.inter, minCard))
	return r, nil
}

// estimateOf reads an estimate with failure reporting: the typed
// EstimateErr when the kind has one, otherwise Estimate with NaN
// mapped to an error, so set-algebra answers never propagate NaN.
func estimateOf(e Estimator) (float64, error) {
	if ee, ok := e.(interface{ EstimateErr() (float64, error) }); ok {
		return ee.EstimateErr()
	}
	v := e.Estimate()
	if math.IsNaN(v) {
		return 0, errors.New("knw: estimate failed (all copies errored)")
	}
	return v, nil
}

// epsilonOf reads the configured ε when the kind exposes it (all four
// wire kinds do); 0 means unknown and disables the error bound.
func epsilonOf(e Estimator) float64 {
	if ee, ok := e.(interface{ Epsilon() float64 }); ok {
		return ee.Epsilon()
	}
	return 0
}
