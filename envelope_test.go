package knw

import (
	"bytes"
	"encoding"
	"strings"
	"testing"
)

// buildWireSketches returns one ingested sketch per wire kind, all
// deterministic (fixed seeds, fixed streams).
func buildWireSketches() map[Kind]Estimator {
	keys := batchKeys(40_000)
	f := NewF0(WithSeed(91), WithEpsilon(0.1), WithCopies(3))
	f.AddBatch(keys)
	l := NewL0(WithSeed(92), WithEpsilon(0.2), WithCopies(3))
	deltas := make([]int64, len(keys))
	for i := range deltas {
		deltas[i] = int64(i%5 - 2)
	}
	l.UpdateBatch(keys, deltas)
	cf := NewConcurrentF0(4, WithSeed(93), WithEpsilon(0.1), WithCopies(3))
	cf.AddBatch(keys)
	cl := NewConcurrentL0(4, WithSeed(94), WithEpsilon(0.2), WithCopies(3))
	cl.UpdateBatch(keys, deltas)
	return map[Kind]Estimator{
		KindF0: f, KindL0: l, KindConcurrentF0: cf, KindConcurrentL0: cl,
	}
}

// TestOpenRoundTripsAllKinds is the acceptance gate: for every wire
// kind, Open(MarshalBinary()) restores the concrete type to
// byte-identical state.
func TestOpenRoundTripsAllKinds(t *testing.T) {
	for kind, orig := range buildWireSketches() {
		blob, err := orig.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", kind, err)
		}
		back, err := Open(blob)
		if err != nil {
			t.Fatalf("%s: Open: %v", kind, err)
		}
		switch kind {
		case KindF0:
			if _, ok := back.(*F0); !ok {
				t.Fatalf("%s: Open returned %T", kind, back)
			}
		case KindL0:
			if _, ok := back.(*L0); !ok {
				t.Fatalf("%s: Open returned %T", kind, back)
			}
		case KindConcurrentF0:
			if _, ok := back.(*ConcurrentF0); !ok {
				t.Fatalf("%s: Open returned %T", kind, back)
			}
		case KindConcurrentL0:
			if _, ok := back.(*ConcurrentL0); !ok {
				t.Fatalf("%s: Open returned %T", kind, back)
			}
		}
		blob2, err := back.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", kind, err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: Open(MarshalBinary()) is not byte-identical", kind)
		}
		if got, want := back.Estimate(), orig.Estimate(); got != want {
			t.Fatalf("%s: restored estimate %v != %v", kind, got, want)
		}
		// Turnstile-ness survives the round trip.
		_, wasTurnstile := orig.(TurnstileEstimator)
		_, isTurnstile := back.(TurnstileEstimator)
		if wasTurnstile != isTurnstile {
			t.Fatalf("%s: turnstile surface lost in Open", kind)
		}
	}
}

// TestOpenLegacyPayloads: pre-envelope blobs — bare version-2 and the
// unframed version-1 format — still load, both through Open and the
// per-type UnmarshalBinary.
func TestOpenLegacyPayloads(t *testing.T) {
	sketches := buildWireSketches()

	bare := map[Kind][]byte{
		KindF0:           sketches[KindF0].(*F0).marshalLegacy(),
		KindL0:           sketches[KindL0].(*L0).marshalLegacy(),
		KindConcurrentF0: sketches[KindConcurrentF0].(*ConcurrentF0).marshalLegacy(),
		KindConcurrentL0: sketches[KindConcurrentL0].(*ConcurrentL0).marshalLegacy(),
	}
	for kind, payload := range bare {
		back, err := Open(payload)
		if err != nil {
			t.Fatalf("%s: Open(bare v2): %v", kind, err)
		}
		if got, want := back.Estimate(), sketches[kind].Estimate(); got != want {
			t.Fatalf("%s: bare v2 estimate %v != %v", kind, got, want)
		}
	}

	// v1 (unframed) payloads, as written before the framed format.
	v1f := marshalV1F0(sketches[KindF0].(*F0))
	back, err := Open(v1f)
	if err != nil {
		t.Fatalf("Open(v1 F0): %v", err)
	}
	if got, want := back.Estimate(), sketches[KindF0].Estimate(); got != want {
		t.Fatalf("v1 F0 estimate %v != %v", got, want)
	}
	v1l := marshalV1L0(sketches[KindL0].(*L0))
	back, err = Open(v1l)
	if err != nil {
		t.Fatalf("Open(v1 L0): %v", err)
	}
	if got, want := back.Estimate(), sketches[KindL0].Estimate(); got != want {
		t.Fatalf("v1 L0 estimate %v != %v", got, want)
	}

	// The per-type decoders accept all three framings.
	var f F0
	for _, payload := range [][]byte{v1f, bare[KindF0], mustMarshal(t, sketches[KindF0])} {
		if err := f.UnmarshalBinary(payload); err != nil {
			t.Fatalf("F0.UnmarshalBinary on legacy framing: %v", err)
		}
	}
}

func mustMarshal(t *testing.T, e Estimator) []byte {
	t.Helper()
	b, err := e.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMergeAfterRestore: a sketch merges with its own restored
// checkpoint even when the seed was time-derived (regression: the
// settings comparison used to include the internal seed-was-explicit
// flag, which restore always sets, so un-seeded sketches rejected
// their own checkpoints).
func TestMergeAfterRestore(t *testing.T) {
	a := NewConcurrentF0(2, WithEpsilon(0.3), WithCopies(1)) // no WithSeed
	for i := uint64(1); i <= 5000; i++ {
		a.Add(i)
	}
	blob := mustMarshal(t, a)
	restored, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(restored.(*ConcurrentF0)); err != nil {
		t.Fatalf("merge with own restored checkpoint: %v", err)
	}

	f := NewF0(WithEpsilon(0.3), WithCopies(1)) // no WithSeed
	f.Add(1)
	var fr F0
	if err := fr.UnmarshalBinary(mustMarshal(t, f)); err != nil {
		t.Fatal(err)
	}
	if err := f.Merge(&fr); err != nil {
		t.Fatalf("F0 merge with own restored checkpoint: %v", err)
	}
}

// TestEnvelopeKindMismatch: a blob of one kind refuses to unmarshal as
// another, with an error naming both kinds.
func TestEnvelopeKindMismatch(t *testing.T) {
	l := NewL0(WithSeed(95), WithEpsilon(0.3), WithCopies(1))
	blob := mustMarshal(t, l)
	var f F0
	err := f.UnmarshalBinary(blob)
	if err == nil {
		t.Fatal("L0 envelope accepted by F0")
	}
	if !strings.Contains(err.Error(), "l0") || !strings.Contains(err.Error(), "f0") {
		t.Errorf("mismatch error does not name the kinds: %v", err)
	}
}

// TestOpenRejectsCorrupt: malformed envelopes error out (never panic,
// never succeed).
func TestOpenRejectsCorrupt(t *testing.T) {
	f := NewF0(WithSeed(96), WithEpsilon(0.3), WithCopies(1))
	for i := 0; i < 5000; i++ {
		f.Add(uint64(i) + 1)
	}
	blob := mustMarshal(t, f)

	for name, data := range map[string][]byte{
		"empty":    nil,
		"one byte": {0x45},
		"text":     []byte("not a sketch at all, definitely"),
		"trailing": append(append([]byte{}, blob...), 0x00),
	} {
		if _, err := Open(data); err == nil {
			t.Errorf("Open accepted %s", name)
		}
	}
	for _, cut := range []int{1, 3, len(blob) / 4, len(blob) / 2, len(blob) - 1} {
		if _, err := Open(blob[:cut]); err == nil {
			t.Errorf("Open accepted truncation at %d", cut)
		}
	}

	// Unknown kind tag.
	unknown := wrapEnvelope(Kind(250), []byte("payload"))
	if _, err := Open(unknown); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("unknown kind: %v", err)
	}
	// Non-wire kind tag.
	nonWire := wrapEnvelope(KindHyperLogLog, []byte("payload"))
	if _, err := Open(nonWire); err == nil || !strings.Contains(err.Error(), "does not serialize") {
		t.Errorf("non-wire kind: %v", err)
	}
	// Future envelope version.
	var w = wrapEnvelope(KindF0, f.marshalLegacy())
	w[5]++ // envMagic is a 5-byte uvarint; byte 5 is the version
	if _, err := Open(w); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: %v", err)
	}
}
