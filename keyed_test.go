package knw

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// sketchBytes marshals and fails the test on error (state fingerprint
// for byte-identical comparisons).
func sketchBytes(t *testing.T, m interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testStrings(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user-%d-%d", i%1000, i)
	}
	return out
}

// TestKeyedStringMatchesAddString: the Keyed front-end and the
// deprecated AddString forwarder share one hash, so same-seed sketches
// ingesting the same strings through either path end byte-identical.
func TestKeyedStringMatchesAddString(t *testing.T) {
	opts := []Option{WithSeed(71), WithEpsilon(0.1), WithCopies(3)}
	viaForwarder := NewF0(opts...)
	viaKeyed := NewKeyed[string](NewF0(opts...))
	for _, s := range testStrings(20_000) {
		viaForwarder.AddString(s)
		viaKeyed.Add(s)
	}
	if !bytes.Equal(sketchBytes(t, viaForwarder), sketchBytes(t, viaKeyed.Unwrap().(*F0))) {
		t.Fatal("AddString and Keyed[string].Add diverged")
	}
}

// TestKeyedBatchMatchesScalar: AddBatch must equal sequential Add for
// every key type, byte-identically.
func TestKeyedBatchMatchesScalar(t *testing.T) {
	opts := []Option{WithSeed(72), WithEpsilon(0.1), WithCopies(3)}
	strs := testStrings(30_000)

	scalar := NewKeyed[string](NewF0(opts...))
	batched := NewKeyed[string](NewF0(opts...))
	for _, s := range strs {
		scalar.Add(s)
	}
	batched.AddBatch(strs)
	if !bytes.Equal(sketchBytes(t, scalar.Unwrap().(*F0)), sketchBytes(t, batched.Unwrap().(*F0))) {
		t.Fatal("Keyed[string] batch != scalar")
	}

	bscalar := NewKeyed[[]byte](NewF0(opts...))
	bbatched := NewKeyed[[]byte](NewF0(opts...))
	raw := make([][]byte, len(strs))
	for i, s := range strs {
		raw[i] = []byte(s)
	}
	for _, b := range raw {
		bscalar.Add(b)
	}
	bbatched.AddBatch(raw)
	if !bytes.Equal(sketchBytes(t, bscalar.Unwrap().(*F0)), sketchBytes(t, bbatched.Unwrap().(*F0))) {
		t.Fatal("Keyed[[]byte] batch != scalar")
	}

	// A string and its bytes must hash identically.
	if !bytes.Equal(sketchBytes(t, scalar.Unwrap().(*F0)), sketchBytes(t, bscalar.Unwrap().(*F0))) {
		t.Fatal("string and []byte keys hash differently")
	}
}

// TestKeyedUint64Identity: for keys already inside the universe the
// default Keyed[uint64] path is exactly Add (the fold is the identity
// below 2^logN), so raw-key pipelines can adopt the typed front door
// without changing state.
func TestKeyedUint64Identity(t *testing.T) {
	opts := []Option{WithSeed(73), WithEpsilon(0.1), WithCopies(3)} // logN = 32
	direct := NewF0(opts...)
	keyed := NewKeyed[uint64](NewF0(opts...))
	keys := batchKeys(30_000)
	for i := range keys {
		keys[i] &= 1<<32 - 1 // in-universe
	}
	direct.AddBatch(keys)
	keyed.AddBatch(keys)
	if !bytes.Equal(sketchBytes(t, direct), sketchBytes(t, keyed.Unwrap().(*F0))) {
		t.Fatal("Keyed[uint64] is not the identity on in-universe keys")
	}
}

// TestHasherFoldsToUniverse: the default hasher lands inside the
// configured universe for every key type — the silent truncation bug
// the typed layer replaces (hashing into 64 bits while the sketch was
// built with logN < 64).
func TestHasherFoldsToUniverse(t *testing.T) {
	const logN = 16
	h := NewHasher[string](99, logN)
	hb := NewHasher[[]byte](99, logN)
	hu := NewHasher[uint64](99, logN)
	for i := 0; i < 50_000; i++ {
		s := fmt.Sprintf("key-%d", i)
		if v := h.Hash(s); v >= 1<<logN {
			t.Fatalf("string hash %d escapes %d-bit universe", v, logN)
		}
		if v := hb.Hash([]byte(s)); v >= 1<<logN {
			t.Fatalf("bytes hash %d escapes %d-bit universe", v, logN)
		}
		if v := hu.Hash(uint64(i) * 0x9e3779b97f4a7c15); v >= 1<<logN {
			t.Fatalf("uint64 fold %d escapes %d-bit universe", v, logN)
		}
	}
	// In-universe uint64 keys pass through unchanged.
	if got := hu.Hash(12345); got != 12345 {
		t.Fatalf("in-universe fold changed key: %d", got)
	}
	// Seeds matter: different seeds give different string hashes.
	if NewHasher[string](1, 32).Hash("x") == NewHasher[string](2, 32).Hash("x") {
		t.Fatal("seed does not affect the default hash")
	}
	// Keyed picks the sketch's universe up automatically.
	k := NewKeyed[string](NewF0(WithSeed(3), WithUniverseBits(logN), WithCopies(1)))
	if v := k.Hasher().Hash("probe"); v >= 1<<logN {
		t.Fatalf("Keyed default hasher ignored the sketch universe: %d", v)
	}
}

// TestKeyedTurnstile: Update/UpdateBatch work over an L0 and match the
// raw path; over an F0 they panic with a clear message.
func TestKeyedTurnstile(t *testing.T) {
	opts := []Option{WithSeed(74), WithEpsilon(0.2), WithCopies(1)}
	direct := NewL0(opts...)
	keyed := NewKeyed[string](NewL0(opts...))
	if !keyed.Turnstile() {
		t.Fatal("Keyed over L0 must report Turnstile")
	}
	strs := testStrings(10_000)
	h := keyed.Hasher()
	deltas := make([]int64, len(strs))
	for i, s := range strs {
		deltas[i] = int64(i%7 - 3)
		direct.Update(h.Hash(s), deltas[i])
	}
	keyed.UpdateBatch(strs, deltas)
	if !bytes.Equal(sketchBytes(t, direct), sketchBytes(t, keyed.Unwrap().(*L0))) {
		t.Fatal("Keyed turnstile batch != raw updates")
	}

	f := NewKeyed[string](NewF0(opts...))
	if f.Turnstile() {
		t.Fatal("Keyed over F0 must not report Turnstile")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Update on insertion-only Keyed did not panic")
		}
	}()
	f.Update("x", -1)
}

// TestKeyedConcurrent: a Keyed over a ConcurrentF0 is safe for
// concurrent batched ingestion (the hash scratch is pooled, not
// shared). Run under -race in CI.
func TestKeyedConcurrent(t *testing.T) {
	k := NewKeyed[string](NewConcurrentF0(4, WithSeed(75), WithEpsilon(0.1), WithCopies(3)))
	const workers, perWorker = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]string, 0, 256)
			for i := 0; i < perWorker; i++ {
				batch = append(batch, fmt.Sprintf("item-%d", (w*perWorker+i)%8000))
				if len(batch) == cap(batch) {
					k.AddBatch(batch)
					batch = batch[:0]
				}
			}
			k.AddBatch(batch)
		}(w)
	}
	wg.Wait()
	if est := k.Estimate(); est < 8000*0.6 || est > 8000*1.4 {
		t.Fatalf("concurrent keyed estimate %v far from 8000", est)
	}
}

// TestKeyedCustomHasher: WithKeyHasher replaces the default.
type modHasher struct{ mod uint64 }

func (m modHasher) Hash(k uint64) uint64 { return k % m.mod }

func TestKeyedCustomHasher(t *testing.T) {
	k := NewKeyed[uint64](NewF0(WithSeed(76), WithCopies(1)),
		WithKeyHasher[uint64](modHasher{mod: 10}))
	for i := uint64(0); i < 1000; i++ {
		k.Add(i)
	}
	if est := k.Estimate(); est != 10 {
		t.Fatalf("custom hasher ignored: estimate %v, want 10", est)
	}
}

// TestKeyedHasherDeterminism: two Keyed fronts over same-seed sketches
// hash identically, so their sketches stay mergeable — the contract
// that makes typed ingestion distributable.
func TestKeyedHasherDeterminism(t *testing.T) {
	opts := []Option{WithSeed(77), WithEpsilon(0.1), WithCopies(3)}
	a := NewKeyed[string](NewF0(opts...))
	b := NewKeyed[string](NewF0(opts...))
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("probe-%d", i)
		if a.Hasher().Hash(s) != b.Hasher().Hash(s) {
			t.Fatalf("same-seed Keyed fronts hash %q differently", s)
		}
	}
	strs := testStrings(20_000)
	a.AddBatch(strs[:10_000])
	b.AddBatch(strs[10_000:])
	if err := a.Unwrap().(*F0).Merge(b.Unwrap().(*F0)); err != nil {
		t.Fatal(err)
	}
	// testStrings(20k) has ~19k distinct values; the merged estimate
	// must land near it (ε = 0.1, 3 copies → generous 20% gate).
	exact := make(map[string]struct{}, len(strs))
	for _, s := range strs {
		exact[s] = struct{}{}
	}
	truth := float64(len(exact))
	if est := a.Estimate(); est < truth*0.8 || est > truth*1.2 {
		t.Fatalf("merged keyed shards estimate %v, truth %v", est, truth)
	}
}
