package knw_test

// Statistical acceptance test for the paper's headline guarantee:
//
//	Pr[ |estimate − F0| > ε·F0 ] ≤ δ
//
// Nothing else in the suite checks the (ε, δ) form directly — the
// accuracy tests assert single pinned-seed runs land inside a band,
// which can neither detect a miscalibrated failure probability nor a
// subtly biased estimator. Here we run each sketch across many
// independent seeds and compare the *empirical failure rate* against
// δ, with binomial slack so the test is deterministic to run yet
// sharp enough that a real calibration bug trips it: the observed
// failure count of a correct sketch is far below the δ·N budget
// (median-of-copies amplification overshoots), while an estimator
// whose error rate actually exceeds δ lands above budget + 3σ with
// overwhelming probability. (Harness sanity was checked during
// development by deliberately biasing estimates by (1+2ε), which
// fails every table row.)

import (
	"fmt"
	"math"
	"testing"

	knw "repro"
)

// statTrials is the number of independent sketch seeds per table row.
const statTrials = 200

// statSettings are the (ε, δ) rows the guarantee is checked at.
var statSettings = []struct{ eps, delta float64 }{
	{0.10, 0.05},
	{0.15, 0.10},
	{0.20, 0.02},
}

// failureBudget is the largest acceptable failure count for N trials
// at failure probability δ: the mean δ·N plus three binomial standard
// deviations. A correct estimator's rate sits well under δ; one whose
// true rate exceeds δ overshoots this bound with probability → 1.
func failureBudget(trials int, delta float64) int {
	n := float64(trials)
	return int(math.Floor(delta*n + 3*math.Sqrt(n*delta*(1-delta))))
}

// TestEpsilonDeltaGuaranteeF0: for each (ε, δ) row, the fraction of
// 200 independent F0 sketches estimating outside (1 ± ε)·F0 must stay
// within the δ budget. The stream (including duplicates) is identical
// across trials; independence comes entirely from the sketch seeds,
// exactly the probability space the theorem quantifies over.
func TestEpsilonDeltaGuaranteeF0(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	const truth = 3000
	keys := make([]uint64, 0, truth+truth/2)
	for i := uint64(0); i < truth; i++ {
		keys = append(keys, i)
	}
	for i := uint64(0); i < truth/2; i++ { // duplicates: distinctness, not counting
		keys = append(keys, i)
	}
	for _, s := range statSettings {
		s := s
		t.Run(fmt.Sprintf("eps=%g_delta=%g", s.eps, s.delta), func(t *testing.T) {
			failures := 0
			for trial := 0; trial < statTrials; trial++ {
				sk := knw.NewF0(
					knw.WithEpsilon(s.eps), knw.WithDelta(s.delta),
					knw.WithSeed(int64(1000*trial+7)),
				)
				sk.AddBatch(keys)
				est := sk.Estimate()
				if math.IsNaN(est) || math.Abs(est-truth) > s.eps*truth {
					failures++
				}
			}
			if budget := failureBudget(statTrials, s.delta); failures > budget {
				t.Errorf("F0(ε=%g, δ=%g): %d/%d estimates outside (1±ε)·F0; budget %d (δ·N+3σ) — (ε,δ) guarantee violated",
					s.eps, s.delta, failures, statTrials, budget)
			} else {
				t.Logf("F0(ε=%g, δ=%g): %d/%d failures (budget %d)",
					s.eps, s.delta, failures, statTrials, budget)
			}
		})
	}
}

// TestEpsilonDeltaGuaranteeL0 is the turnstile counterpart: streams
// with real deletions, truth = the number of keys whose net frequency
// is non-zero. Every trial inserts truth+removed keys and fully
// deletes `removed` of them, so the sketch must see through the
// deletions to pass.
func TestEpsilonDeltaGuaranteeL0(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	const (
		truth   = 2000
		removed = 500
	)
	inserted := make([]uint64, 0, truth+removed)
	for i := uint64(0); i < truth+removed; i++ {
		inserted = append(inserted, i)
	}
	deleted := make([]uint64, 0, removed)
	negOnes := make([]int64, 0, removed)
	for i := uint64(truth); i < truth+removed; i++ {
		deleted = append(deleted, i)
		negOnes = append(negOnes, -1)
	}
	for _, s := range statSettings {
		s := s
		t.Run(fmt.Sprintf("eps=%g_delta=%g", s.eps, s.delta), func(t *testing.T) {
			failures := 0
			for trial := 0; trial < statTrials; trial++ {
				sk := knw.NewL0(
					knw.WithEpsilon(s.eps), knw.WithDelta(s.delta),
					knw.WithSeed(int64(1000*trial+13)),
				)
				sk.UpdateBatch(inserted, nil) // all +1
				sk.UpdateBatch(deleted, negOnes)
				est := sk.Estimate()
				if math.IsNaN(est) || math.Abs(est-truth) > s.eps*truth {
					failures++
				}
			}
			if budget := failureBudget(statTrials, s.delta); failures > budget {
				t.Errorf("L0(ε=%g, δ=%g): %d/%d estimates outside (1±ε)·L0; budget %d (δ·N+3σ) — (ε,δ) guarantee violated",
					s.eps, s.delta, failures, statTrials, budget)
			} else {
				t.Logf("L0(ε=%g, δ=%g): %d/%d failures (budget %d)",
					s.eps, s.delta, failures, statTrials, budget)
			}
		})
	}
}
