package knw_test

// Statistical acceptance test for the paper's headline guarantee:
//
//	Pr[ |estimate − F0| > ε·F0 ] ≤ δ
//
// Nothing else in the suite checks the (ε, δ) form directly — the
// accuracy tests assert single pinned-seed runs land inside a band,
// which can neither detect a miscalibrated failure probability nor a
// subtly biased estimator. Here we run each sketch across many
// independent seeds and compare the *empirical failure rate* against
// δ, with binomial slack so the test is deterministic to run yet
// sharp enough that a real calibration bug trips it: the observed
// failure count of a correct sketch is far below the δ·N budget
// (median-of-copies amplification overshoots), while an estimator
// whose error rate actually exceeds δ lands above budget + 3σ with
// overwhelming probability. (Harness sanity was checked during
// development by deliberately biasing estimates by (1+2ε), which
// fails every table row.)

import (
	"fmt"
	"math"
	"testing"

	knw "repro"
)

// statTrials is the number of independent sketch seeds per table row.
const statTrials = 200

// statSettings are the (ε, δ) rows the guarantee is checked at.
var statSettings = []struct{ eps, delta float64 }{
	{0.10, 0.05},
	{0.15, 0.10},
	{0.20, 0.02},
}

// failureBudget is the largest acceptable failure count for N trials
// at failure probability δ: the mean δ·N plus three binomial standard
// deviations. A correct estimator's rate sits well under δ; one whose
// true rate exceeds δ overshoots this bound with probability → 1.
func failureBudget(trials int, delta float64) int {
	n := float64(trials)
	return int(math.Floor(delta*n + 3*math.Sqrt(n*delta*(1-delta))))
}

// TestEpsilonDeltaGuaranteeF0: for each (ε, δ) row, the fraction of
// 200 independent F0 sketches estimating outside (1 ± ε)·F0 must stay
// within the δ budget. The stream (including duplicates) is identical
// across trials; independence comes entirely from the sketch seeds,
// exactly the probability space the theorem quantifies over.
func TestEpsilonDeltaGuaranteeF0(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	const truth = 3000
	keys := make([]uint64, 0, truth+truth/2)
	for i := uint64(0); i < truth; i++ {
		keys = append(keys, i)
	}
	for i := uint64(0); i < truth/2; i++ { // duplicates: distinctness, not counting
		keys = append(keys, i)
	}
	for _, s := range statSettings {
		s := s
		t.Run(fmt.Sprintf("eps=%g_delta=%g", s.eps, s.delta), func(t *testing.T) {
			failures := 0
			for trial := 0; trial < statTrials; trial++ {
				sk := knw.NewF0(
					knw.WithEpsilon(s.eps), knw.WithDelta(s.delta),
					knw.WithSeed(int64(1000*trial+7)),
				)
				sk.AddBatch(keys)
				est := sk.Estimate()
				if math.IsNaN(est) || math.Abs(est-truth) > s.eps*truth {
					failures++
				}
			}
			if budget := failureBudget(statTrials, s.delta); failures > budget {
				t.Errorf("F0(ε=%g, δ=%g): %d/%d estimates outside (1±ε)·F0; budget %d (δ·N+3σ) — (ε,δ) guarantee violated",
					s.eps, s.delta, failures, statTrials, budget)
			} else {
				t.Logf("F0(ε=%g, δ=%g): %d/%d failures (budget %d)",
					s.eps, s.delta, failures, statTrials, budget)
			}
		})
	}
}

// TestEpsilonDeltaGuaranteeSetAlgebra checks the guarantees that
// inclusion–exclusion *derives* from the sketch guarantee (DESIGN.md
// §21): with |A| = 3000, |B| = 2500, |A∩B| = 1500,
//
//   - |Union − |A∪B|| ≤ ε·|A∪B| with prob ≥ 1−δ (a merged sketch is
//     just a sketch of the union stream);
//   - |Intersection − |A∩B|| ≤ ε·(|A|+|B|+|A∪B|) with prob ≥ 1−3δ
//     (union bound over the three estimates the identity combines —
//     the error budget scales with the union magnitudes, NOT the
//     intersection, which is why small overlaps of large sets are the
//     hard regime);
//   - |Jaccard − J| ≤ E/((1−ε)·|A∪B|) + J·ε/(1−ε) with prob ≥ 1−3δ,
//     where E is the intersection budget (numerator and denominator
//     errors propagated through the quotient).
//
// Failure fractions are judged against δ (resp. 3δ) with the same
// binomial slack as the headline test.
func TestEpsilonDeltaGuaranteeSetAlgebra(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	const (
		cardA   = 3000
		cardB   = 2500
		overlap = 1500
		union   = cardA + cardB - overlap // 4000
	)
	jac := float64(overlap) / float64(union) // 0.375
	aKeys := make([]uint64, 0, cardA)
	for i := uint64(0); i < cardA; i++ {
		aKeys = append(aKeys, i)
	}
	bKeys := make([]uint64, 0, cardB)
	for i := uint64(cardA - overlap); i < cardA-overlap+cardB; i++ {
		bKeys = append(bKeys, i)
	}
	for _, s := range statSettings {
		s := s
		t.Run(fmt.Sprintf("eps=%g_delta=%g", s.eps, s.delta), func(t *testing.T) {
			interBound := s.eps * float64(cardA+cardB+union) // ε·9500
			jacBound := interBound/((1-s.eps)*union) + jac*s.eps/(1-s.eps)
			unionFails, interFails, jacFails := 0, 0, 0
			for trial := 0; trial < statTrials; trial++ {
				opts := []knw.Option{
					knw.WithEpsilon(s.eps), knw.WithDelta(s.delta),
					knw.WithSeed(int64(1000*trial + 31)), // same seed: mergeable pair
				}
				a := knw.NewF0(opts...)
				a.AddBatch(aKeys)
				b := knw.NewF0(opts...)
				b.AddBatch(bKeys)
				st, err := knw.NewSetStats(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if math.IsNaN(st.Union) || math.Abs(st.Union-union) > s.eps*union {
					unionFails++
				}
				if math.Abs(st.Intersection-overlap) > interBound {
					interFails++
				}
				if math.Abs(st.Jaccard-jac) > jacBound {
					jacFails++
				}
			}
			unionBudget := failureBudget(statTrials, s.delta)
			derivedBudget := failureBudget(statTrials, math.Min(1, 3*s.delta))
			if unionFails > unionBudget {
				t.Errorf("Union(ε=%g, δ=%g): %d/%d outside ε·|A∪B|; budget %d",
					s.eps, s.delta, unionFails, statTrials, unionBudget)
			}
			if interFails > derivedBudget {
				t.Errorf("Intersection(ε=%g, δ=%g): %d/%d outside ε·(|A|+|B|+|A∪B|); budget %d (3δ·N+3σ)",
					s.eps, s.delta, interFails, statTrials, derivedBudget)
			}
			if jacFails > derivedBudget {
				t.Errorf("Jaccard(ε=%g, δ=%g): %d/%d outside the quotient bound %.4f; budget %d",
					s.eps, s.delta, jacFails, statTrials, jacBound, derivedBudget)
			}
			t.Logf("set algebra (ε=%g, δ=%g): union %d, intersection %d, jaccard %d failures of %d (budgets %d/%d/%d)",
				s.eps, s.delta, unionFails, interFails, jacFails, statTrials,
				unionBudget, derivedBudget, derivedBudget)
		})
	}
}

// TestEpsilonDeltaGuaranteeRebalance: the guarantee must survive a
// mid-stream membership change. Each trial shards the first half of
// the stream over 3 node sketches, then scales to 5: the two joiners
// bootstrap by merging full envelopes from old owners (exactly what
// the cluster handoff ships — whole sketches, deliberately
// over-transferred), and the second half lands across all 5. The final
// merged estimate must obey the same (ε, δ) row as a single sketch
// over the whole stream — mergeability is what makes handoff lossless
// and duplicate-free, and this is the statistical check of that claim.
func TestEpsilonDeltaGuaranteeRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	const truth = 3000
	keys := make([]uint64, 0, truth+truth/2)
	for i := uint64(0); i < truth; i++ {
		keys = append(keys, i)
	}
	for i := uint64(0); i < truth/2; i++ { // duplicates: distinctness, not counting
		keys = append(keys, i)
	}
	half := len(keys) / 2
	for _, s := range statSettings {
		s := s
		t.Run(fmt.Sprintf("eps=%g_delta=%g", s.eps, s.delta), func(t *testing.T) {
			failures := 0
			for trial := 0; trial < statTrials; trial++ {
				opts := []knw.Option{
					knw.WithEpsilon(s.eps), knw.WithDelta(s.delta),
					knw.WithSeed(int64(1000*trial + 57)), // shared seed: the cluster invariant
				}
				nodes := make([]*knw.F0, 5)
				for i := range nodes {
					nodes[i] = knw.NewF0(opts...)
				}
				// Phase 1: three nodes shard the first half of the stream.
				for i, k := range keys[:half] {
					nodes[i%3].Add(k)
				}
				// Handoff: each joiner receives a full envelope from an old
				// owner. Keys now counted on two nodes must still count once.
				if err := knw.MergeInto(nodes[3], nodes[0]); err != nil {
					t.Fatal(err)
				}
				if err := knw.MergeInto(nodes[4], nodes[1]); err != nil {
					t.Fatal(err)
				}
				// Phase 2: five nodes shard the rest, then a gather merges
				// every node's envelope into one union estimate.
				for i, k := range keys[half:] {
					nodes[i%5].Add(k)
				}
				union := knw.NewF0(opts...)
				for _, nd := range nodes {
					if err := knw.MergeInto(union, nd); err != nil {
						t.Fatal(err)
					}
				}
				est := union.Estimate()
				if math.IsNaN(est) || math.Abs(est-truth) > s.eps*truth {
					failures++
				}
			}
			if budget := failureBudget(statTrials, s.delta); failures > budget {
				t.Errorf("rebalance(ε=%g, δ=%g): %d/%d post-handoff estimates outside (1±ε)·F0; budget %d (δ·N+3σ) — handoff broke the guarantee",
					s.eps, s.delta, failures, statTrials, budget)
			} else {
				t.Logf("rebalance(ε=%g, δ=%g): %d/%d failures (budget %d)",
					s.eps, s.delta, failures, statTrials, budget)
			}
		})
	}
}

// TestEpsilonDeltaGuaranteeL0 is the turnstile counterpart: streams
// with real deletions, truth = the number of keys whose net frequency
// is non-zero. Every trial inserts truth+removed keys and fully
// deletes `removed` of them, so the sketch must see through the
// deletions to pass.
func TestEpsilonDeltaGuaranteeL0(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	const (
		truth   = 2000
		removed = 500
	)
	inserted := make([]uint64, 0, truth+removed)
	for i := uint64(0); i < truth+removed; i++ {
		inserted = append(inserted, i)
	}
	deleted := make([]uint64, 0, removed)
	negOnes := make([]int64, 0, removed)
	for i := uint64(truth); i < truth+removed; i++ {
		deleted = append(deleted, i)
		negOnes = append(negOnes, -1)
	}
	for _, s := range statSettings {
		s := s
		t.Run(fmt.Sprintf("eps=%g_delta=%g", s.eps, s.delta), func(t *testing.T) {
			failures := 0
			for trial := 0; trial < statTrials; trial++ {
				sk := knw.NewL0(
					knw.WithEpsilon(s.eps), knw.WithDelta(s.delta),
					knw.WithSeed(int64(1000*trial+13)),
				)
				sk.UpdateBatch(inserted, nil) // all +1
				sk.UpdateBatch(deleted, negOnes)
				est := sk.Estimate()
				if math.IsNaN(est) || math.Abs(est-truth) > s.eps*truth {
					failures++
				}
			}
			if budget := failureBudget(statTrials, s.delta); failures > budget {
				t.Errorf("L0(ε=%g, δ=%g): %d/%d estimates outside (1±ε)·L0; budget %d (δ·N+3σ) — (ε,δ) guarantee violated",
					s.eps, s.delta, failures, statTrials, budget)
			} else {
				t.Logf("L0(ε=%g, δ=%g): %d/%d failures (budget %d)",
					s.eps, s.delta, failures, statTrials, budget)
			}
		})
	}
}
