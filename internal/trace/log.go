package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// The slog shim: every knwd component logs through a *slog.Logger
// built here (or a caller-supplied one), so -log-level / -log-format
// govern the whole daemon and log.Printf stays banned outside this
// package (see the CI lint step).

// NewLogger builds the daemon logger. level is one of debug, info,
// warn, error (default info); format is text or json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("trace: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("trace: unknown log format %q (text or json)", format)
}

// DiscardLogger returns a logger that drops everything — the default
// for library embeddings that configure no logging.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is a no-op slog.Handler. (slog.DiscardHandler is Go
// 1.24+; the module targets 1.23.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
