package trace

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		h := formatHeader(0xdeadbeef01234567, 0x89abcdef00000001, sampled)
		if len(h) != headerLen {
			t.Fatalf("header %q length = %d, want %d", h, len(h), headerLen)
		}
		traceID, spanID, s, ok := parseHeader(h)
		if !ok || traceID != 0xdeadbeef01234567 || spanID != 0x89abcdef00000001 || s != sampled {
			t.Fatalf("round trip of %q = (%x, %x, %v, %v)", h, traceID, spanID, s, ok)
		}
	}
}

func TestParseHeaderRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"short",
		"deadbeef01234567-89abcdef00000001",      // no flag
		"deadbeef01234567-89abcdef00000001-2",    // bad flag
		"deadbeef01234567_89abcdef00000001-1",    // bad separator
		"0000000000000000-89abcdef00000001-1",    // zero trace id
		"xeadbeef01234567-89abcdef00000001-1",    // non-hex
		"deadbeef01234567-89abcdef00000001-1 ",   // trailing junk
		"deadbeef012345678-9abcdef00000001-1",    // dash misplaced
		strings.Repeat("a", headerLen-2) + "-1x", // length right, shape wrong
	} {
		if _, _, _, ok := parseHeader(bad); ok {
			t.Errorf("parseHeader(%q) accepted", bad)
		}
	}
	// Uppercase hex is accepted (header values survive proxies that
	// canonicalize).
	if _, _, _, ok := parseHeader("DEADBEEF01234567-89ABCDEF00000001-1"); !ok {
		t.Error("uppercase hex rejected")
	}
}

func TestHexRoundTrip(t *testing.T) {
	if got := Hex(0xab); got != "00000000000000ab" {
		t.Fatalf("Hex = %q", got)
	}
	v, ok := ParseHex("00000000000000ab")
	if !ok || v != 0xab {
		t.Fatalf("ParseHex = (%x, %v)", v, ok)
	}
	if _, ok := ParseHex("ab"); ok {
		t.Error("ParseHex accepted a short string")
	}
}

func TestSamplingAlwaysAndNever(t *testing.T) {
	always := New(Config{Node: "n1", Sample: 1})
	for i := 0; i < 32; i++ {
		if always.StartRequest("/x", "") == nil {
			t.Fatal("sample=1 returned nil")
		}
	}
	never := New(Config{Node: "n1", Sample: 0})
	for i := 0; i < 32; i++ {
		if never.StartRequest("/x", "") != nil {
			t.Fatal("sample=0 returned a span")
		}
	}
}

// TestHeaderAdoption: a sampled incoming header wins over the local
// rate in both directions — recorded at sample 0, and the child adopts
// the sender's trace id and span id as parent.
func TestHeaderAdoption(t *testing.T) {
	tr := New(Config{Node: "n2", Sample: 0})
	hdr := formatHeader(0xfeed, 0xbeef, true)
	act := tr.StartRequest("/v1/ingest", hdr)
	if act == nil {
		t.Fatal("sampled header ignored at local sample 0")
	}
	if act.sp.TraceID != 0xfeed || act.sp.Parent != 0xbeef {
		t.Fatalf("child span = trace %x parent %x, want feed/beef", act.sp.TraceID, act.sp.Parent)
	}
	// An explicitly unsampled header suppresses tracing even at rate 1.
	tr2 := New(Config{Node: "n2", Sample: 1})
	if tr2.StartRequest("/x", formatHeader(0xfeed, 0xbeef, false)) != nil {
		t.Error("unsampled header should suppress tracing")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.StartRequest("/x", "") != nil || tr.StartLocal("x") != nil {
		t.Fatal("nil tracer must return nil spans")
	}
	tr.SetNode("n")
	tr.FinishRequest(nil, "/x", 200, time.Now(), time.Second)
	tr.FinishLocal(nil, nil)
	if tr.Snapshot(Filter{}) != nil || tr.Node() != "" || tr.Slow() != 0 {
		t.Fatal("nil tracer reads must be zero")
	}

	var a *Active
	if a.HeaderValue() != "" || a.TraceHex() != "" {
		t.Fatal("nil active must render empty header")
	}
	a.Stage("x", time.Second)
	a.StageStart("x")()
	a.SetStore("s")
	a.SetPeer("p")
	a.AddKeys(1)
	a.SetError(errors.New("x"))
}

func TestRingWraparound(t *testing.T) {
	tr := New(Config{Node: "n", Sample: 1, Buffer: 4})
	for i := 0; i < 10; i++ {
		act := tr.StartRequest("/x", "")
		tr.FinishRequest(act, "/x", 200, time.Now(), time.Millisecond)
	}
	trees := tr.Snapshot(Filter{})
	n := 0
	for _, tree := range trees {
		n += len(tree.Spans)
	}
	if n != 4 {
		t.Fatalf("ring holds %d spans, want 4 (buffer size)", n)
	}
}

func TestSnapshotFilters(t *testing.T) {
	tr := New(Config{Node: "n", Sample: 0})
	mk := func(traceID uint64, store string, d time.Duration) {
		act := tr.start("/x", traceID, 0)
		act.SetStore(store)
		tr.FinishRequest(act, "/x", 200, time.Now().Add(-d), d)
	}
	mk(1, "a", 5*time.Millisecond)
	mk(2, "b", 50*time.Millisecond)
	mk(3, "a", 500*time.Millisecond)

	if got := tr.Snapshot(Filter{}); len(got) != 3 {
		t.Fatalf("unfiltered = %d trees, want 3", len(got))
	}
	if got := tr.Snapshot(Filter{Trace: 2}); len(got) != 1 || got[0].Trace != Hex(2) {
		t.Fatalf("trace filter = %+v", got)
	}
	if got := tr.Snapshot(Filter{Store: "a"}); len(got) != 2 {
		t.Fatalf("store filter = %d trees, want 2", len(got))
	}
	if got := tr.Snapshot(Filter{MinDuration: 40 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("min duration filter = %d trees, want 2", len(got))
	}
	if got := tr.Snapshot(Filter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit = %d trees, want 1", len(got))
	}
}

func TestStageAccumulates(t *testing.T) {
	tr := New(Config{Node: "n", Sample: 1})
	act := tr.StartRequest("/x", "")
	act.Stage("hash", 2*time.Millisecond)
	act.Stage("hash", 3*time.Millisecond)
	act.Stage("scan", time.Millisecond)
	tr.FinishRequest(act, "/x", 200, time.Now(), 6*time.Millisecond)
	trees := tr.Snapshot(Filter{})
	if len(trees) != 1 || len(trees[0].Spans) != 1 {
		t.Fatalf("snapshot = %+v", trees)
	}
	sp := trees[0].Spans[0]
	if len(sp.Stages) != 2 {
		t.Fatalf("stages = %+v, want hash+scan", sp.Stages)
	}
	for _, st := range sp.Stages {
		if st.Stage == "hash" && st.Ms != 5 {
			t.Errorf("hash stage = %vms, want 5 (accumulated)", st.Ms)
		}
	}
}

// TestSlowUnsampledRecorded: a request over the slow threshold is
// recorded and logged even when sampling said no.
func TestSlowUnsampledRecorded(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{Node: "n", Sample: 0, Slow: time.Millisecond, Log: log})
	tr.FinishRequest(nil, "/v1/ingest", 200, time.Now().Add(-5*time.Millisecond), 5*time.Millisecond)
	if got := tr.Snapshot(Filter{}); len(got) != 1 {
		t.Fatalf("slow unsampled request not recorded: %+v", got)
	}
	if !strings.Contains(buf.String(), "slow request") || !strings.Contains(buf.String(), "/v1/ingest") {
		t.Fatalf("slow request not logged: %q", buf.String())
	}
	// Fast unsampled requests stay invisible.
	tr.FinishRequest(nil, "/v1/ingest", 200, time.Now(), 10*time.Microsecond)
	if got := tr.Snapshot(Filter{}); len(got) != 1 {
		t.Fatalf("fast unsampled request recorded: %+v", got)
	}
}

func TestMergeTrees(t *testing.T) {
	base := time.Now()
	a := []Tree{{
		Trace: Hex(7), Start: base, DurationMs: 10,
		Spans: []SpanView{{Trace: Hex(7), Span: Hex(1), Node: "n1", Start: base}},
	}}
	b := []Tree{{
		Trace: Hex(7), Start: base.Add(time.Millisecond), DurationMs: 4,
		Spans: []SpanView{{Trace: Hex(7), Span: Hex(2), Parent: Hex(1), Node: "n2", Start: base.Add(time.Millisecond)}},
	}, {
		Trace: Hex(9), Start: base.Add(2 * time.Millisecond), DurationMs: 1,
		Spans: []SpanView{{Trace: Hex(9), Span: Hex(3), Node: "n2", Start: base.Add(2 * time.Millisecond)}},
	}}
	merged := MergeTrees(a, b)
	if len(merged) != 2 {
		t.Fatalf("merged = %d trees, want 2", len(merged))
	}
	// Newest-first: trace 9 started later.
	if merged[0].Trace != Hex(9) || merged[1].Trace != Hex(7) {
		t.Fatalf("merge order = %s, %s", merged[0].Trace, merged[1].Trace)
	}
	cross := merged[1]
	if len(cross.Spans) != 2 || cross.Spans[0].Node != "n1" || cross.Spans[1].Parent != Hex(1) {
		t.Fatalf("cross-node tree = %+v", cross)
	}
	if cross.DurationMs != 10 {
		t.Fatalf("merged duration = %v, want the longest (10)", cross.DurationMs)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := New(Config{Node: "n", Sample: 1})
	act := tr.StartRequest("/x", "")
	ctx := NewContext(context.Background(), act)
	if FromContext(ctx) != act {
		t.Fatal("FromContext lost the span")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should yield nil")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"msg":"hello"`) || !strings.Contains(buf.String(), `"k":"v"`) {
		t.Fatalf("json log = %q", buf.String())
	}
	log.Debug("invisible")
	if strings.Contains(buf.String(), "invisible") {
		t.Error("info level should drop debug records")
	}
	if _, err := NewLogger(&buf, "nope", "text"); err == nil {
		t.Error("unknown level should error")
	}
	if _, err := NewLogger(&buf, "info", "nope"); err == nil {
		t.Error("unknown format should error")
	}
	DiscardLogger().Info("dropped")
}
