package trace

import (
	"sort"
	"time"
)

// JSON views for GET /v1/debug/traces. Ids travel as 16-digit hex
// strings so trees from different nodes merge by plain string
// comparison.

// SpanView is the wire form of one recorded span.
type SpanView struct {
	Trace      string      `json:"trace"`
	Span       string      `json:"span"`
	Parent     string      `json:"parent,omitempty"`
	Node       string      `json:"node"`
	Name       string      `json:"name"`
	Store      string      `json:"store,omitempty"`
	Peer       string      `json:"peer,omitempty"`
	Status     int         `json:"status,omitempty"`
	Keys       int         `json:"keys,omitempty"`
	Err        string      `json:"error,omitempty"`
	Start      time.Time   `json:"start"`
	DurationMs float64     `json:"duration_ms"`
	Stages     []StageView `json:"stages,omitempty"`
}

// StageView is one stage's share of a span, in milliseconds.
type StageView struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

// Tree is every span this node holds for one trace id.
type Tree struct {
	Trace      string     `json:"trace"`
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Spans      []SpanView `json:"spans"`
}

// Filter selects traces out of the ring.
type Filter struct {
	// Trace keeps only the given trace id (0 = all).
	Trace uint64
	// Store keeps traces with at least one span touching the store.
	Store string
	// MinDuration keeps traces whose longest span is at least this.
	MinDuration time.Duration
	// Limit caps the number of traces returned (default 50), newest
	// first.
	Limit int
}

func view(sp *Span) SpanView {
	v := SpanView{
		Trace:      Hex(sp.TraceID),
		Span:       Hex(sp.SpanID),
		Node:       sp.Node,
		Name:       sp.Name,
		Store:      sp.Store,
		Peer:       sp.Peer,
		Status:     sp.Status,
		Keys:       sp.Keys,
		Err:        sp.Err,
		Start:      sp.Start,
		DurationMs: float64(sp.Dur) / float64(time.Millisecond),
	}
	if sp.Parent != 0 {
		v.Parent = Hex(sp.Parent)
	}
	for _, st := range sp.Stages {
		v.Stages = append(v.Stages, StageView{
			Stage: st.Stage,
			Ms:    float64(st.D) / float64(time.Millisecond),
		})
	}
	return v
}

// Snapshot groups the ring's completed spans into per-trace trees,
// filtered and sorted newest-first. Lock-free: concurrent recording
// at worst slips a just-finished span into or out of the view.
func (t *Tracer) Snapshot(f Filter) []Tree {
	if t == nil {
		return nil
	}
	byTrace := make(map[uint64][]*Span)
	for i := range t.ring {
		sp := t.ring[i].Load()
		if sp == nil {
			continue
		}
		if f.Trace != 0 && sp.TraceID != f.Trace {
			continue
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	trees := make([]Tree, 0, len(byTrace))
	for id, spans := range byTrace {
		keep, longest := f.Store == "", time.Duration(0)
		for _, sp := range spans {
			if sp.Store == f.Store {
				keep = true
			}
			if sp.Dur > longest {
				longest = sp.Dur
			}
		}
		if !keep || longest < f.MinDuration {
			continue
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		tr := Tree{
			Trace:      Hex(id),
			Start:      spans[0].Start,
			DurationMs: float64(longest) / float64(time.Millisecond),
		}
		for _, sp := range spans {
			tr.Spans = append(tr.Spans, view(sp))
		}
		trees = append(trees, tr)
	}
	sort.Slice(trees, func(i, j int) bool { return trees[i].Start.After(trees[j].Start) })
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	if len(trees) > limit {
		trees = trees[:limit]
	}
	return trees
}

// MergeTrees folds span lists from several nodes into one newest-first
// tree list — the scope=cluster assembly of /v1/debug/traces.
func MergeTrees(lists ...[]Tree) []Tree {
	byTrace := make(map[string]*Tree)
	var order []string
	for _, list := range lists {
		for _, tr := range list {
			dst, ok := byTrace[tr.Trace]
			if !ok {
				cp := Tree{Trace: tr.Trace, Start: tr.Start}
				byTrace[tr.Trace] = &cp
				order = append(order, tr.Trace)
				dst = &cp
			}
			dst.Spans = append(dst.Spans, tr.Spans...)
			if tr.Start.Before(dst.Start) {
				dst.Start = tr.Start
			}
			if tr.DurationMs > dst.DurationMs {
				dst.DurationMs = tr.DurationMs
			}
		}
	}
	out := make([]Tree, 0, len(order))
	for _, id := range order {
		tr := byTrace[id]
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start.Before(tr.Spans[j].Start) })
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
