package trace

// The X-KNW-Trace wire form: "tttttttttttttttt-ssssssssssssssss-f",
// 16 lowercase hex digits of trace id, 16 of the sender's span id, and
// a one-character sampled flag. Fixed width keeps parsing a simple
// index walk with no allocation on the unsampled path.

const headerLen = 16 + 1 + 16 + 1 + 1

const hexDigits = "0123456789abcdef"

// Hex renders v as 16 lowercase hex digits (trace and span ids in JSON
// and log output).
func Hex(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseHex decodes a 16-digit hex id (the ?trace= query filter).
func ParseHex(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, ok := parseHex16(s)
	return v, ok
}

func parseHex16(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

func formatHeader(traceID, spanID uint64, sampled bool) string {
	var b [headerLen]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[traceID&0xf]
		traceID >>= 4
	}
	b[16] = '-'
	for i := 32; i >= 17; i-- {
		b[i] = hexDigits[spanID&0xf]
		spanID >>= 4
	}
	b[33] = '-'
	b[34] = '0'
	if sampled {
		b[34] = '1'
	}
	return string(b[:])
}

func parseHeader(h string) (traceID, spanID uint64, sampled, ok bool) {
	if len(h) != headerLen || h[16] != '-' || h[33] != '-' {
		return 0, 0, false, false
	}
	traceID, ok = parseHex16(h[:16])
	if !ok || traceID == 0 {
		return 0, 0, false, false
	}
	spanID, ok = parseHex16(h[17:33])
	if !ok {
		return 0, 0, false, false
	}
	switch h[34] {
	case '1':
		return traceID, spanID, true, true
	case '0':
		return traceID, spanID, false, true
	}
	return 0, 0, false, false
}
