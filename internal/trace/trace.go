// Package trace is knwd's zero-dependency request tracer: a
// per-request span recorder with stage-level timings, a bounded
// in-process ring buffer of completed spans, and an X-KNW-Trace header
// that carries the trace across node hops so one cluster ingest shows
// up as a parent/child span tree spanning every node it touched.
//
// Design points:
//
//   - Sampling is decided once, at request start. An unsampled request
//     costs one header lookup and one random draw — no allocation, no
//     context clone, no per-stage bookkeeping — because every Active
//     method is nil-receiver safe and the middleware only attaches a
//     span when the decision was yes.
//   - A request that arrives with a sampled X-KNW-Trace header is
//     always recorded, regardless of the local sampling rate: the
//     client (or upstream node) that opened the trace decides for the
//     whole tree, which is what makes cross-node trees complete.
//   - Slow requests are recorded even when unsampled (-trace-slow-ms):
//     the span is allocated after the request finished, off the hot
//     path, and logged with its trace id.
//   - The ring buffer overwrites oldest-first and is read lock-free
//     (atomic pointers), so GET /v1/debug/traces never blocks ingest.
package trace

import (
	"context"
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the trace-propagation request header. Its value is
// "<16 hex trace-id>-<16 hex span-id>-<flag>", flag '1' when sampled.
// Forwarded hops carry the sender's span id, which becomes the child
// span's parent.
const Header = "X-KNW-Trace"

// Config configures a Tracer.
type Config struct {
	// Node names this process in recorded spans (the cluster self URL,
	// or the listen address). Settable later via SetNode when the bound
	// address is not known at construction.
	Node string
	// Sample is the probability an unsolicited request starts a trace,
	// in [0, 1]. Requests carrying a sampled header are always traced.
	Sample float64
	// Slow, when positive, records and logs every request at least this
	// slow even when unsampled.
	Slow time.Duration
	// Buffer is the completed-span ring capacity (default 512).
	Buffer int
	// Log receives slow-request events. Nil discards them.
	Log *slog.Logger
}

// StageTiming is one named stage's share of a span.
type StageTiming struct {
	Stage string
	D     time.Duration
}

// Span is one recorded unit of work: a request handled by this node,
// or a local background operation (a gossip sync).
type Span struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64 // 0 for root spans
	Node    string
	Name    string // route or operation name
	Store   string
	Peer    string
	Status  int
	Keys    int
	Err     string
	Start   time.Time
	Dur     time.Duration
	Stages  []StageTiming
}

// Tracer owns the sampling decision and the completed-span ring.
// A nil *Tracer is safe: every method no-ops.
type Tracer struct {
	sample float64
	slow   time.Duration
	log    *slog.Logger
	node   atomic.Pointer[string]
	ring   []atomic.Pointer[Span]
	seq    atomic.Uint64
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 512
	}
	if cfg.Log == nil {
		cfg.Log = DiscardLogger()
	}
	t := &Tracer{
		sample: cfg.Sample,
		slow:   cfg.Slow,
		log:    cfg.Log,
		ring:   make([]atomic.Pointer[Span], cfg.Buffer),
	}
	node := cfg.Node
	t.node.Store(&node)
	return t
}

// SetNode names this process in spans recorded from now on — called
// once the listen address is known, when Config.Node was empty.
func (t *Tracer) SetNode(n string) {
	if t != nil {
		t.node.Store(&n)
	}
}

// Node returns the tracer's node name.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return *t.node.Load()
}

// Slow returns the always-record threshold (0 when disabled).
func (t *Tracer) Slow() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

func (t *Tracer) id() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// Active is a span under construction. A nil *Active is safe — every
// method no-ops — so handlers annotate unconditionally and unsampled
// requests pay only the nil check.
type Active struct {
	tr *Tracer
	mu sync.Mutex
	sp Span
}

// StartRequest decides whether the request starting now is traced:
// always when header carries a sampled trace (the span becomes a child
// of the sender's), by local probability otherwise. Nil means
// unsampled.
func (t *Tracer) StartRequest(name, header string) *Active {
	if t == nil {
		return nil
	}
	if traceID, parent, sampled, ok := parseHeader(header); ok {
		if !sampled {
			return nil
		}
		return t.start(name, traceID, parent)
	}
	if t.sample <= 0 || (t.sample < 1 && rand.Float64() >= t.sample) {
		return nil
	}
	return t.start(name, t.id(), 0)
}

// StartLocal opens a root span for a background operation (no incoming
// header), subject to the local sampling rate.
func (t *Tracer) StartLocal(name string) *Active {
	if t == nil {
		return nil
	}
	if t.sample <= 0 || (t.sample < 1 && rand.Float64() >= t.sample) {
		return nil
	}
	return t.start(name, t.id(), 0)
}

func (t *Tracer) start(name string, traceID, parent uint64) *Active {
	return &Active{tr: t, sp: Span{
		TraceID: traceID,
		SpanID:  t.id(),
		Parent:  parent,
		Node:    *t.node.Load(),
		Name:    name,
		Start:   time.Now(),
	}}
}

// HeaderValue renders the header to send downstream so remote spans
// join this trace as children of this span. Empty when unsampled.
func (a *Active) HeaderValue() string {
	if a == nil {
		return ""
	}
	return formatHeader(a.sp.TraceID, a.sp.SpanID, true)
}

// TraceHex returns the trace id as 16 hex digits ("" when unsampled)
// — the correlation key for log lines.
func (a *Active) TraceHex() string {
	if a == nil {
		return ""
	}
	return Hex(a.sp.TraceID)
}

// Stage adds d to the named stage (accumulating across batches).
func (a *Active) Stage(stage string, d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.sp.Stages {
		if a.sp.Stages[i].Stage == stage {
			a.sp.Stages[i].D += d
			return
		}
	}
	a.sp.Stages = append(a.sp.Stages, StageTiming{Stage: stage, D: d})
}

// noop is what StageStart hands back on unsampled requests, so the
// cold path closes stages without allocating a closure.
var noop = func() {}

// StageStart opens a named stage; the returned func closes it.
func (a *Active) StageStart(stage string) func() {
	if a == nil {
		return noop
	}
	t0 := time.Now()
	return func() { a.Stage(stage, time.Since(t0)) }
}

// SetStore records the store the span touched ("(multiple)" when a
// body spanned stores).
func (a *Active) SetStore(store string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	switch a.sp.Store {
	case "", store:
		a.sp.Store = store
	default:
		a.sp.Store = "(multiple)"
	}
	a.mu.Unlock()
}

// SetPeer records the remote peer of a client-side span.
func (a *Active) SetPeer(peer string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sp.Peer = peer
	a.mu.Unlock()
}

// AddKeys adds to the span's key count.
func (a *Active) AddKeys(n int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sp.Keys += n
	a.mu.Unlock()
}

// SetError records a failure on the span.
func (a *Active) SetError(err error) {
	if a == nil || err == nil {
		return
	}
	a.mu.Lock()
	a.sp.Err = err.Error()
	a.mu.Unlock()
}

// FinishRequest closes the request that started at start and took d:
// sampled spans are recorded (and logged when slow); unsampled ones
// are recorded only when slow, with the span allocated here — after
// the response — so the hot path never pays for it.
func (t *Tracer) FinishRequest(a *Active, name string, status int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	if a != nil {
		a.mu.Lock()
		a.sp.Status = status
		a.sp.Dur = d
		sp := a.sp
		a.mu.Unlock()
		t.record(&sp)
		if t.slow > 0 && d >= t.slow {
			t.log.Warn("slow request",
				"route", name, "status", status, "store", sp.Store,
				"duration_ms", float64(d)/float64(time.Millisecond),
				"trace", Hex(sp.TraceID), "span", Hex(sp.SpanID))
		}
		return
	}
	if t.slow > 0 && d >= t.slow {
		sp := &Span{
			TraceID: t.id(), SpanID: t.id(),
			Node: *t.node.Load(), Name: name,
			Status: status, Start: start, Dur: d,
		}
		t.record(sp)
		t.log.Warn("slow request (unsampled)",
			"route", name, "status", status,
			"duration_ms", float64(d)/float64(time.Millisecond),
			"trace", Hex(sp.TraceID))
	}
}

// FinishLocal closes a background-operation span opened by StartLocal.
func (t *Tracer) FinishLocal(a *Active, err error) {
	if t == nil || a == nil {
		return
	}
	a.SetError(err)
	a.mu.Lock()
	a.sp.Dur = time.Since(a.sp.Start)
	sp := a.sp
	a.mu.Unlock()
	t.record(&sp)
}

func (t *Tracer) record(sp *Span) {
	i := (t.seq.Add(1) - 1) % uint64(len(t.ring))
	t.ring[i].Store(sp)
}

// --- context plumbing ----------------------------------------------

type ctxKey struct{}

// NewContext attaches a to ctx.
func NewContext(ctx context.Context, a *Active) context.Context {
	return context.WithValue(ctx, ctxKey{}, a)
}

// FromContext returns the request's Active span, or nil.
func FromContext(ctx context.Context) *Active {
	a, _ := ctx.Value(ctxKey{}).(*Active)
	return a
}
