// Package version pins the build identity knwd reports: the -version
// flag, the knwd_build_info gauge, and /v1/cluster/info all read it.
package version

// Version identifies this build. Overridable at link time:
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3"
var Version = "v0.8.0-dev"
