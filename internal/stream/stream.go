// Package stream provides the synthetic workload generators used by
// the experiments and examples (DESIGN.md §5(3)): the paper's
// motivating workloads — router traffic with distinct destination
// IPs, Code-Red-style worm spread, port scans, search-engine query
// logs — are not distributable, so we generate streams with the same
// shapes and *known ground truth*, which the algorithms (consuming
// only a sequence of 64-bit keys) cannot distinguish from the real
// thing. Every generator is deterministic given its seed.
package stream

import (
	"fmt"
	"math/rand"
)

// F0Stream is a finite stream of keys with known distinct count.
type F0Stream interface {
	// Next returns the next key, or ok=false at end of stream.
	Next() (key uint64, ok bool)
	// TrueF0 returns the exact number of distinct keys in the whole
	// stream (valid at any time; it describes the full stream).
	TrueF0() int
	// Name labels the workload in tables.
	Name() string
}

// Uniform emits length keys drawn from a pool of exactly f0 distinct
// random 64-bit keys, guaranteeing every pool element appears at least
// once (the first f0 emissions cover the pool in random order).
type Uniform struct {
	pool []uint64
	rng  *rand.Rand
	pos  int
	len  int
}

// NewUniform builds a uniform workload with f0 distinct keys and the
// given total length (length ≥ f0).
func NewUniform(f0, length int, seed int64) *Uniform {
	if f0 < 1 || length < f0 {
		panic("stream: need length >= f0 >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([]uint64, f0)
	seen := make(map[uint64]struct{}, f0)
	for i := range pool {
		for {
			k := rng.Uint64()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				pool[i] = k
				break
			}
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return &Uniform{pool: pool, rng: rng, len: length}
}

// Next implements F0Stream.
func (u *Uniform) Next() (uint64, bool) {
	if u.pos >= u.len {
		return 0, false
	}
	var k uint64
	if u.pos < len(u.pool) {
		k = u.pool[u.pos] // first pass covers the pool
	} else {
		k = u.pool[u.rng.Intn(len(u.pool))]
	}
	u.pos++
	return k, true
}

// TrueF0 implements F0Stream.
func (u *Uniform) TrueF0() int { return len(u.pool) }

// Name implements F0Stream.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(F0=%d,m=%d)", len(u.pool), u.len) }

// Sequential emits 0, 1, …, f0−1 cycled until length keys have been
// produced — the adversarially-regular input that trips up weak hash
// functions (structured keys are simple tabulation's hard case).
type Sequential struct {
	f0, length, pos int
}

// NewSequential builds the sequential workload.
func NewSequential(f0, length int) *Sequential {
	if f0 < 1 || length < f0 {
		panic("stream: need length >= f0 >= 1")
	}
	return &Sequential{f0: f0, length: length}
}

// Next implements F0Stream.
func (s *Sequential) Next() (uint64, bool) {
	if s.pos >= s.length {
		return 0, false
	}
	k := uint64(s.pos % s.f0)
	s.pos++
	return k, true
}

// TrueF0 implements F0Stream.
func (s *Sequential) TrueF0() int { return s.f0 }

// Name implements F0Stream.
func (s *Sequential) Name() string { return fmt.Sprintf("sequential(F0=%d,m=%d)", s.f0, s.length) }

// Zipf emits keys with a heavy-tailed (Zipfian) popularity
// distribution over a universe of size u — the query-log / URL shape
// from the paper's data-mining motivation. The exact distinct count is
// tracked during generation.
type Zipf struct {
	z      *rand.Zipf
	length int
	pos    int
	seen   map[uint64]struct{}
	f0     int
	keys   []uint64 // pre-generated so TrueF0 is exact up front
}

// NewZipf builds a Zipf(s, v) workload over universe [u] of the given
// length (s > 1 controls skew; 1.1 is web-like).
func NewZipf(universe uint64, s float64, length int, seed int64) *Zipf {
	if universe < 2 || length < 1 || s <= 1 {
		panic("stream: bad Zipf parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	zg := rand.NewZipf(rng, s, 1, universe-1)
	z := &Zipf{length: length, seen: make(map[uint64]struct{})}
	z.keys = make([]uint64, length)
	// Scramble the Zipf ranks so popular keys are not tiny integers
	// (mirrors hashing real URLs/IPs into the key space).
	const scramble = 0x9e3779b97f4a7c15
	for i := range z.keys {
		k := zg.Uint64()*scramble + 1
		z.keys[i] = k
		z.seen[k] = struct{}{}
	}
	z.f0 = len(z.seen)
	return z
}

// Next implements F0Stream.
func (z *Zipf) Next() (uint64, bool) {
	if z.pos >= z.length {
		return 0, false
	}
	k := z.keys[z.pos]
	z.pos++
	return k, true
}

// TrueF0 implements F0Stream.
func (z *Zipf) TrueF0() int { return z.f0 }

// Name implements F0Stream.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(F0=%d,m=%d)", z.f0, z.length) }

// Drain runs a stream to completion through fn.
func Drain(s F0Stream, fn func(uint64)) int {
	n := 0
	for {
		k, ok := s.Next()
		if !ok {
			return n
		}
		fn(k)
		n++
	}
}

// DrainBatch runs a stream to completion through fn in batches of up
// to batchSize keys — the batched-ingestion analogue of Drain (the
// final batch may be short).
func DrainBatch(s F0Stream, batchSize int, fn func([]uint64)) int {
	if batchSize < 1 {
		panic("stream: batch size must be positive")
	}
	buf := make([]uint64, 0, batchSize)
	n := 0
	for {
		k, ok := s.Next()
		if !ok {
			break
		}
		buf = append(buf, k)
		n++
		if len(buf) == batchSize {
			fn(buf)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		fn(buf)
	}
	return n
}
