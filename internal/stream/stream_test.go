package stream

import (
	"math"
	"testing"
)

func TestUniformGroundTruth(t *testing.T) {
	s := NewUniform(1000, 5000, 1)
	seen := make(map[uint64]struct{})
	n := Drain(s, func(k uint64) { seen[k] = struct{}{} })
	if n != 5000 {
		t.Errorf("length %d", n)
	}
	if len(seen) != 1000 || s.TrueF0() != 1000 {
		t.Errorf("distinct %d TrueF0 %d", len(seen), s.TrueF0())
	}
}

func TestUniformCoversPoolEvenIfTruncated(t *testing.T) {
	// The first f0 emissions are exactly the pool.
	s := NewUniform(100, 100, 2)
	seen := make(map[uint64]struct{})
	Drain(s, func(k uint64) { seen[k] = struct{}{} })
	if len(seen) != 100 {
		t.Errorf("pool not covered: %d", len(seen))
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential(10, 35)
	var keys []uint64
	Drain(s, func(k uint64) { keys = append(keys, k) })
	if len(keys) != 35 || keys[0] != 0 || keys[10] != 0 || keys[34] != 4 {
		t.Errorf("sequential wrong: %v", keys[:5])
	}
	if s.TrueF0() != 10 {
		t.Errorf("TrueF0 %d", s.TrueF0())
	}
}

func TestZipfGroundTruthAndSkew(t *testing.T) {
	s := NewZipf(1<<20, 1.2, 100000, 3)
	seen := make(map[uint64]int)
	Drain(s, func(k uint64) { seen[k]++ })
	if len(seen) != s.TrueF0() {
		t.Errorf("distinct %d TrueF0 %d", len(seen), s.TrueF0())
	}
	// Heavy tail: the most popular key should dominate.
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 100000/20 {
		t.Errorf("no heavy hitter: max count %d", max)
	}
	if s.TrueF0() >= 100000 {
		t.Error("Zipf produced no repeats")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := NewUniform(500, 2000, 42)
	b := NewUniform(500, 2000, 42)
	for {
		ka, oka := a.Next()
		kb, okb := b.Next()
		if oka != okb || ka != kb {
			t.Fatal("same seed, different streams")
		}
		if !oka {
			break
		}
	}
}

func TestBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewUniform(0, 10, 1) },
		func() { NewUniform(10, 5, 1) },
		func() { NewSequential(0, 10) },
		func() { NewZipf(1, 1.2, 10, 1) },
		func() { NewZipf(100, 1.0, 10, 1) },
		func() { NewColumnPair(-1, 0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNetTracePhases(t *testing.T) {
	tr := NewNetTrace(NetTraceConfig{Seed: 7})
	if tr.Len() == 0 || tr.DDoSStart >= tr.DDoSEnd || tr.ScanStart >= tr.ScanEnd {
		t.Fatalf("degenerate trace: %+v", tr)
	}
	// Verify ground truth by exact counting.
	srcsBase := make(map[uint32]struct{})
	srcsDDoS := make(map[uint32]struct{})
	ports := make(map[uint16]struct{})
	i := 0
	for {
		p, ok := tr.Next()
		if !ok {
			break
		}
		switch {
		case i < tr.DDoSStart:
			srcsBase[p.SrcIP] = struct{}{}
		case i < tr.DDoSEnd:
			srcsDDoS[p.SrcIP] = struct{}{}
		default:
			ports[p.DstPort] = struct{}{}
		}
		i++
	}
	if len(srcsBase) != tr.BaselineSrcs {
		t.Errorf("baseline sources %d want %d", len(srcsBase), tr.BaselineSrcs)
	}
	// The attack window also carries benign background traffic, so the
	// distinct-source count there is at least the spoofed count.
	if len(srcsDDoS) < tr.DDoSSrcs {
		t.Errorf("ddos sources %d < %d", len(srcsDDoS), tr.DDoSSrcs)
	}
	// The scan phase's distinct port count is dominated by the scanner.
	if len(ports) < tr.ScanPorts {
		t.Errorf("scan ports %d < %d", len(ports), tr.ScanPorts)
	}
}

func TestPacketKeys(t *testing.T) {
	p := Packet{SrcIP: 0x01020304, DstIP: 0x05060708, DstPort: 99}
	if p.SrcKey() != 0x01020304 {
		t.Error("SrcKey")
	}
	if p.FlowKey() != 0x0102030405060708 {
		t.Error("FlowKey")
	}
	if p.ScanKey() != 0x01020304<<16|99 {
		t.Error("ScanKey")
	}
}

func TestChurnGroundTruth(t *testing.T) {
	c := NewChurn(ChurnConfig{Live: 2000, Churned: 3000, Negative: 200, Seed: 9})
	model := make(map[uint64]int64)
	n := DrainTurnstile(c, func(k uint64, v int64) { model[k] += v })
	if n != c.Len() {
		t.Errorf("drained %d of %d", n, c.Len())
	}
	live := 0
	neg := 0
	for _, v := range model {
		if v != 0 {
			live++
		}
		if v < 0 {
			neg++
		}
	}
	if live != c.TrueL0() || live != 2000 {
		t.Errorf("live %d TrueL0 %d", live, c.TrueL0())
	}
	if neg == 0 {
		t.Error("no negative frequencies despite Negative=200")
	}
}

func TestColumnPairGroundTruth(t *testing.T) {
	cp := NewColumnPair(5000, 300, 200, 11)
	model := make(map[uint64]int64)
	DrainTurnstile(cp, func(k uint64, v int64) { model[k] += v })
	diff := 0
	for _, v := range model {
		if v != 0 {
			diff++
		}
	}
	if diff != 500 || cp.TrueL0() != 500 {
		t.Errorf("diff %d TrueL0 %d want 500", diff, cp.TrueL0())
	}
}

func TestColumnPairIdenticalColumns(t *testing.T) {
	cp := NewColumnPair(1000, 0, 0, 12)
	model := make(map[uint64]int64)
	DrainTurnstile(cp, func(k uint64, v int64) { model[k] += v })
	for _, v := range model {
		if v != 0 {
			t.Fatal("identical columns should cancel exactly")
		}
	}
	if cp.TrueL0() != 0 {
		t.Errorf("TrueL0 %d want 0", cp.TrueL0())
	}
}

func TestChurnUpdateMagnitudes(t *testing.T) {
	c := NewChurn(ChurnConfig{Live: 500, MaxDelta: 10, Seed: 13})
	maxAbs := int64(0)
	DrainTurnstile(c, func(_ uint64, v int64) {
		if a := int64(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	})
	// Residual parts can exceed MaxDelta by the split factor but stay
	// within a small multiple.
	if maxAbs > 50 {
		t.Errorf("update magnitude %d far above MaxDelta", maxAbs)
	}
}
