package stream

import (
	"fmt"
	"math/rand"
)

// Packet is one simulated network event: a (source IP, destination IP,
// destination port) triple. Keys for distinct-counting are derived
// from it (SrcKey for "distinct sources", FlowKey for "distinct
// source-destination pairs" — the statistics the paper's introduction
// says routers track).
type Packet struct {
	SrcIP   uint32
	DstIP   uint32
	DstPort uint16
}

// SrcKey is the distinct-sources key ("number of distinct Code Red
// sources passing through a link", Estan et al. per the paper's intro).
func (p Packet) SrcKey() uint64 { return uint64(p.SrcIP) }

// FlowKey is the source-destination pair key.
func (p Packet) FlowKey() uint64 { return uint64(p.SrcIP)<<32 | uint64(p.DstIP) }

// ScanKey is the (source, destination port) key used for port-scan
// detection: a scanner touches many distinct ports from one source.
func (p Packet) ScanKey() uint64 { return uint64(p.SrcIP)<<16 | uint64(p.DstPort) }

// NetTrace generates a three-phase synthetic router trace:
//
//  1. baseline: popular servers contacted by a stable population of
//     benign sources (heavy-tailed popularity);
//  2. DDoS window: a victim destination is flooded by spoofed, mostly
//     never-repeating source IPs (the distinct-sources signal spikes);
//  3. port scan: one source probes a range of destination ports.
//
// The generator records exact ground truth for each phase so the
// netmon example and experiment E12 can validate detection thresholds.
type NetTrace struct {
	rng     *rand.Rand
	packets []Packet

	pos int

	// Ground truth.
	BaselineSrcs int // distinct benign sources
	DDoSSrcs     int // distinct spoofed sources in the attack window
	ScanPorts    int // distinct ports probed by the scanner
	DDoSStart    int // packet index where the attack begins
	DDoSEnd      int
	ScanStart    int
	ScanEnd      int
}

// NetTraceConfig sizes the trace.
type NetTraceConfig struct {
	BenignSources int // stable population (default 5000)
	BaselinePkts  int // phase 1 length (default 200000)
	DDoSSources   int // spoofed sources (default 80000)
	DDoSPkts      int // phase 2 length (default 100000)
	ScanPorts     int // ports probed (default 20000)
	Seed          int64
}

func (c *NetTraceConfig) normalize() {
	if c.BenignSources == 0 {
		c.BenignSources = 5000
	}
	if c.BaselinePkts == 0 {
		c.BaselinePkts = 200000
	}
	if c.DDoSSources == 0 {
		c.DDoSSources = 80000
	}
	if c.DDoSPkts == 0 {
		c.DDoSPkts = 100000
	}
	if c.ScanPorts == 0 {
		c.ScanPorts = 20000
	}
}

// NewNetTrace generates the full trace up front (ground truth requires
// materializing it anyway; a few hundred thousand packets).
func NewNetTrace(cfg NetTraceConfig) *NetTrace {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &NetTrace{rng: rng}

	benign := make([]uint32, cfg.BenignSources)
	seen := make(map[uint32]struct{}, cfg.BenignSources)
	for i := range benign {
		for {
			ip := rng.Uint32()
			if _, dup := seen[ip]; !dup {
				seen[ip] = struct{}{}
				benign[i] = ip
				break
			}
		}
	}
	servers := make([]uint32, 50)
	for i := range servers {
		servers[i] = rng.Uint32()
	}

	// Phase 1: benign traffic. Source popularity is heavy-tailed via a
	// Zipf over the benign population; the tail of the population may
	// never appear, so ground truth counts who actually did.
	zs := rand.NewZipf(rng, 1.2, 1, uint64(cfg.BenignSources-1))
	appeared := make(map[uint32]struct{}, cfg.BenignSources)
	for i := 0; i < cfg.BaselinePkts; i++ {
		src := benign[zs.Uint64()]
		appeared[src] = struct{}{}
		t.packets = append(t.packets, Packet{
			SrcIP:   src,
			DstIP:   servers[rng.Intn(len(servers))],
			DstPort: uint16(80 + rng.Intn(4)),
		})
	}
	t.BaselineSrcs = len(appeared)

	// Phase 2: DDoS — spoofed sources flood one victim.
	t.DDoSStart = len(t.packets)
	victim := servers[0]
	spoofed := make(map[uint32]struct{}, cfg.DDoSSources)
	for i := 0; i < cfg.DDoSPkts; i++ {
		var src uint32
		if len(spoofed) < cfg.DDoSSources {
			src = rng.Uint32()
			spoofed[src] = struct{}{}
		} else {
			src = benign[rng.Intn(len(benign))]
		}
		t.packets = append(t.packets, Packet{SrcIP: src, DstIP: victim, DstPort: 80})
		// Background traffic continues during the attack.
		if i%4 == 0 {
			t.packets = append(t.packets, Packet{
				SrcIP:   benign[zs.Uint64()],
				DstIP:   servers[rng.Intn(len(servers))],
				DstPort: 80,
			})
		}
	}
	t.DDoSSrcs = len(spoofed)
	t.DDoSEnd = len(t.packets)

	// Phase 3: port scan from a single source.
	t.ScanStart = len(t.packets)
	scanner := rng.Uint32()
	target := servers[1]
	for port := 0; port < cfg.ScanPorts; port++ {
		t.packets = append(t.packets, Packet{
			SrcIP:   scanner,
			DstIP:   target,
			DstPort: uint16(port),
		})
		if port%8 == 0 {
			t.packets = append(t.packets, Packet{
				SrcIP:   benign[zs.Uint64()],
				DstIP:   servers[rng.Intn(len(servers))],
				DstPort: 80,
			})
		}
	}
	t.ScanPorts = cfg.ScanPorts
	t.ScanEnd = len(t.packets)
	return t
}

// Next returns the next packet.
func (t *NetTrace) Next() (Packet, bool) {
	if t.pos >= len(t.packets) {
		return Packet{}, false
	}
	p := t.packets[t.pos]
	t.pos++
	return p, true
}

// Len returns the total packet count.
func (t *NetTrace) Len() int { return len(t.packets) }

// Pos returns the index of the next packet to be returned.
func (t *NetTrace) Pos() int { return t.pos }

// Name labels the trace.
func (t *NetTrace) Name() string {
	return fmt.Sprintf("nettrace(benign=%d,ddos=%d,scan=%d)", t.BaselineSrcs, t.DDoSSrcs, t.ScanPorts)
}
