package stream

import (
	"fmt"
	"math/rand"
)

// TurnstileUpdate is one (key, delta) update in the L0 model.
type TurnstileUpdate struct {
	Key   uint64
	Delta int64
}

// TurnstileStream is a finite update stream with known final L0.
type TurnstileStream interface {
	Next() (TurnstileUpdate, bool)
	// TrueL0 is the exact |{i : x_i ≠ 0}| after the whole stream.
	TrueL0() int
	Name() string
}

// Churn generates an insert/delete workload: live items that survive,
// churned items that are inserted and later fully deleted, and
// optionally items driven to negative frequencies (which still count
// toward L0 — the capability Ganguly's algorithm lacks).
type Churn struct {
	updates []TurnstileUpdate
	pos     int
	l0      int
}

// ChurnConfig sizes a Churn workload.
type ChurnConfig struct {
	Live     int   // items with nonzero final frequency (default 10000)
	Churned  int   // items inserted then fully deleted (default Live)
	Negative int   // of the live items, how many end negative (default Live/10)
	MaxDelta int64 // per-update magnitude bound M (default 100)
	Seed     int64
}

func (c *ChurnConfig) normalize() {
	if c.Live == 0 {
		c.Live = 10000
	}
	if c.Churned == 0 {
		c.Churned = c.Live
	}
	if c.Negative == 0 {
		c.Negative = c.Live / 10
	}
	if c.MaxDelta == 0 {
		c.MaxDelta = 100
	}
}

// NewChurn builds the workload, shuffling all updates together so
// inserts and deletes interleave arbitrarily.
func NewChurn(cfg ChurnConfig) *Churn {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ups []TurnstileUpdate
	seen := make(map[uint64]struct{}, cfg.Live+cfg.Churned)
	fresh := func() uint64 {
		for {
			k := rng.Uint64()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				return k
			}
		}
	}
	// Live items: one or more updates summing to a nonzero total.
	for i := 0; i < cfg.Live; i++ {
		k := fresh()
		total := rng.Int63n(cfg.MaxDelta) + 1
		if i < cfg.Negative {
			total = -total
		}
		// Split the total across up to 3 updates.
		parts := rng.Intn(3) + 1
		rem := total
		for p := 0; p < parts-1; p++ {
			d := rng.Int63n(cfg.MaxDelta)*2 - cfg.MaxDelta
			ups = append(ups, TurnstileUpdate{k, d})
			rem -= d
		}
		ups = append(ups, TurnstileUpdate{k, rem})
	}
	// Churned items: updates summing to exactly zero.
	for i := 0; i < cfg.Churned; i++ {
		k := fresh()
		v := rng.Int63n(cfg.MaxDelta) + 1
		ups = append(ups, TurnstileUpdate{k, v}, TurnstileUpdate{k, -v})
	}
	// Shuffle while keeping each key's internal order (swapping whole
	// updates is fine — addition commutes, the final vector is what
	// matters for L0).
	rng.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
	return &Churn{updates: ups, l0: cfg.Live}
}

// Next implements TurnstileStream.
func (c *Churn) Next() (TurnstileUpdate, bool) {
	if c.pos >= len(c.updates) {
		return TurnstileUpdate{}, false
	}
	u := c.updates[c.pos]
	c.pos++
	return u, true
}

// TrueL0 implements TurnstileStream.
func (c *Churn) TrueL0() int { return c.l0 }

// Len returns the number of updates.
func (c *Churn) Len() int { return len(c.updates) }

// Name implements TurnstileStream.
func (c *Churn) Name() string {
	return fmt.Sprintf("churn(L0=%d,updates=%d)", c.l0, len(c.updates))
}

// ColumnPair models the paper's data-cleaning application (Section 1:
// "L0-estimation can be applied to a pair of streams to measure the
// number of unequal item counts … to find columns that are mostly
// similar, even if the rows are in different orders"). Two columns A
// and B share `common` values; A has `onlyA` extra rows and B has
// `onlyB`. Feeding A with +1 and B with −1 makes L0 of the difference
// vector equal the number of value slots where the multisets differ.
type ColumnPair struct {
	updates []TurnstileUpdate
	pos     int
	l0      int
	rows    int
}

// NewColumnPair builds the workload. Rows of each column are emitted
// in independently shuffled order.
func NewColumnPair(common, onlyA, onlyB int, seed int64) *ColumnPair {
	if common < 0 || onlyA < 0 || onlyB < 0 {
		panic("stream: negative column sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]struct{})
	fresh := func() uint64 {
		for {
			k := rng.Uint64()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				return k
			}
		}
	}
	shared := make([]uint64, common)
	for i := range shared {
		shared[i] = fresh()
	}
	var colA, colB []uint64
	colA = append(colA, shared...)
	for i := 0; i < onlyA; i++ {
		colA = append(colA, fresh())
	}
	colB = append(colB, shared...)
	for i := 0; i < onlyB; i++ {
		colB = append(colB, fresh())
	}
	rng.Shuffle(len(colA), func(i, j int) { colA[i], colA[j] = colA[j], colA[i] })
	rng.Shuffle(len(colB), func(i, j int) { colB[i], colB[j] = colB[j], colB[i] })
	cp := &ColumnPair{l0: onlyA + onlyB, rows: len(colA) + len(colB)}
	for _, v := range colA {
		cp.updates = append(cp.updates, TurnstileUpdate{v, +1})
	}
	for _, v := range colB {
		cp.updates = append(cp.updates, TurnstileUpdate{v, -1})
	}
	return cp
}

// Next implements TurnstileStream.
func (c *ColumnPair) Next() (TurnstileUpdate, bool) {
	if c.pos >= len(c.updates) {
		return TurnstileUpdate{}, false
	}
	u := c.updates[c.pos]
	c.pos++
	return u, true
}

// TrueL0 implements TurnstileStream.
func (c *ColumnPair) TrueL0() int { return c.l0 }

// Name implements TurnstileStream.
func (c *ColumnPair) Name() string {
	return fmt.Sprintf("columnpair(L0=%d,rows=%d)", c.l0, c.rows)
}

// DrainTurnstile runs a turnstile stream through fn.
func DrainTurnstile(s TurnstileStream, fn func(uint64, int64)) int {
	n := 0
	for {
		u, ok := s.Next()
		if !ok {
			return n
		}
		fn(u.Key, u.Delta)
		n++
	}
}

// DrainTurnstileBatch runs a turnstile stream through fn in batches of
// up to batchSize parallel (keys, deltas) updates — the batched
// analogue of DrainTurnstile.
func DrainTurnstileBatch(s TurnstileStream, batchSize int, fn func([]uint64, []int64)) int {
	if batchSize < 1 {
		panic("stream: batch size must be positive")
	}
	keys := make([]uint64, 0, batchSize)
	deltas := make([]int64, 0, batchSize)
	n := 0
	for {
		u, ok := s.Next()
		if !ok {
			break
		}
		keys = append(keys, u.Key)
		deltas = append(deltas, u.Delta)
		n++
		if len(keys) == batchSize {
			fn(keys, deltas)
			keys, deltas = keys[:0], deltas[:0]
		}
	}
	if len(keys) > 0 {
		fn(keys, deltas)
	}
	return n
}
