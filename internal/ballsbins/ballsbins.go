// Package ballsbins implements the balls-and-bins machinery of
// Section 2 of the paper, which underlies every estimator in the
// reproduction:
//
//   - Fact 1: throwing A balls into K bins uniformly, the expected
//     number of occupied bins is E[X] = K(1 − (1 − 1/K)^A).
//   - Lemma 1: for 100 ≤ A ≤ K/20, Var[X] < 4A²/K.
//   - Lemmas 2–3: a k-wise independent hash with
//     k = Θ(log(K/ε)/loglog(K/ε)) preserves E[X] to within (1±ε) and
//     Var[X] to within an additive ε², so the occupancy count remains
//     concentrated: Pr[|X′ − E[X]| ≤ 8ε·E[X]] ≥ 4/5 for K = 1/ε².
//
// The estimators invert Fact 1: observing T occupied bins, the number
// of balls is estimated as ln(1 − T/K)/ln(1 − 1/K). This package
// provides the forward map, the inversion, the variance bound, and a
// simulation harness used by experiment E10 to verify Lemmas 1–3
// empirically for every hash family in internal/hashfn.
package ballsbins

import (
	"math"
	"math/rand"

	"repro/internal/hashfn"
)

// ExpectedOccupied returns E[X] = K(1 − (1 − 1/K)^A) (Fact 1).
func ExpectedOccupied(a, k float64) float64 {
	if k <= 0 {
		panic("ballsbins: K must be positive")
	}
	if a < 0 {
		panic("ballsbins: negative ball count")
	}
	// Compute (1-1/K)^A as exp(A·log1p(-1/K)) for numerical stability
	// when K is large and A is small.
	return k * -math.Expm1(a*math.Log1p(-1/k))
}

// Invert returns the balls-and-bins estimate of the number of balls
// given T occupied bins out of K: ln(1 − T/K)/ln(1 − 1/K). This is the
// estimator of Figure 3 step 7 (up to the 2^b subsampling factor) and
// of Figure 4 step 6. T = K (all bins occupied) returns +Inf — the
// caller treats a saturated sketch as out of range.
func Invert(t, k int) float64 {
	if k <= 0 || t < 0 || t > k {
		panic("ballsbins: bad occupancy")
	}
	if t == 0 {
		return 0
	}
	if t == k {
		return math.Inf(1)
	}
	return math.Log1p(-float64(t)/float64(k)) / math.Log1p(-1/float64(k))
}

// VarianceBound returns Lemma 1's bound 4A²/K, valid for 100 ≤ A ≤ K/20.
func VarianceBound(a, k float64) float64 { return 4 * a * a / k }

// Lemma1Applies reports whether (A, K) is in the regime of Lemma 1.
func Lemma1Applies(a, k float64) bool { return a >= 100 && a <= k/20 }

// Throw simulates throwing the balls {base, base+1, …, base+a−1} into
// k bins using hash family h (which must have Range() == k) and
// returns the number of occupied bins. Using a drawn hash family
// rather than rand directly is the point: Lemma 2 is about what
// happens when h is only k-wise independent.
func Throw(h hashfn.Family, base uint64, a, k int) int {
	if int(h.Range()) != k {
		panic("ballsbins: hash range does not match bin count")
	}
	occupied := make([]bool, k)
	count := 0
	for i := 0; i < a; i++ {
		b := h.Hash(base + uint64(i))
		if !occupied[b] {
			occupied[b] = true
			count++
		}
	}
	return count
}

// ThrowFullyRandom simulates the idealized process with a fresh truly
// random assignment per ball — the X of Lemmas 1–2 against which
// limited-independence families are compared.
func ThrowFullyRandom(rng *rand.Rand, a, k int) int {
	occupied := make([]bool, k)
	count := 0
	for i := 0; i < a; i++ {
		b := rng.Intn(k)
		if !occupied[b] {
			occupied[b] = true
			count++
		}
	}
	return count
}

// Moments holds the empirical mean and variance of an occupancy sample.
type Moments struct {
	Mean, Var float64
	N         int
}

// SampleMoments runs trials independent experiments, each drawing a
// fresh hash function via newHash and throwing a balls into k bins,
// and returns the sample mean and (unbiased) variance of the occupancy.
func SampleMoments(trials, a, k int, newHash func() hashfn.Family) Moments {
	xs := make([]float64, trials)
	for t := 0; t < trials; t++ {
		xs[t] = float64(Throw(newHash(), uint64(t)<<32, a, k))
	}
	return momentsOf(xs)
}

// SampleMomentsFullyRandom is SampleMoments for the idealized process.
func SampleMomentsFullyRandom(rng *rand.Rand, trials, a, k int) Moments {
	xs := make([]float64, trials)
	for t := 0; t < trials; t++ {
		xs[t] = float64(ThrowFullyRandom(rng, a, k))
	}
	return momentsOf(xs)
}

func momentsOf(xs []float64) Moments {
	n := len(xs)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	v := 0.0
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	if n > 1 {
		v /= float64(n - 1)
	}
	return Moments{Mean: mean, Var: v, N: n}
}
