package ballsbins

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hashfn"
)

func TestExpectedOccupiedBasics(t *testing.T) {
	if got := ExpectedOccupied(0, 100); got != 0 {
		t.Errorf("A=0: got %v", got)
	}
	// One ball occupies exactly one bin.
	if got := ExpectedOccupied(1, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("A=1: got %v want 1", got)
	}
	// Monotone and bounded by K (stop before float saturation at E→K).
	prev := 0.0
	for a := 1.0; a < 1e4; a *= 3 {
		e := ExpectedOccupied(a, 1000)
		if e <= prev || e > 1000 {
			t.Fatalf("E[X] not in (prev, K]: a=%v e=%v", a, e)
		}
		prev = e
	}
	// A=K: E[X] = K(1-(1-1/K)^K) ≈ K(1-1/e).
	k := 10000.0
	if got, want := ExpectedOccupied(k, k), k*(1-1/math.E); math.Abs(got-want) > k*0.001 {
		t.Errorf("A=K: got %v want about %v", got, want)
	}
}

func TestInvertIsInverseOfExpectation(t *testing.T) {
	// Invert(E[X]) should recover A (this is exactly how the paper's
	// estimator achieves (1±ε): X concentrates about E[X] and the
	// inverse map has bounded derivative in the operating range).
	const k = 4096
	for _, a := range []int{1, 10, 100, 1000, 3000} {
		e := ExpectedOccupied(float64(a), k)
		got := Invert(int(math.Round(e)), k)
		if math.Abs(got-float64(a)) > 0.02*float64(a)+2 {
			t.Errorf("A=%d: Invert(E)=%v", a, got)
		}
	}
}

func TestInvertEdges(t *testing.T) {
	if Invert(0, 100) != 0 {
		t.Error("T=0 should invert to 0")
	}
	if !math.IsInf(Invert(100, 100), 1) {
		t.Error("T=K should invert to +Inf")
	}
	if got := Invert(1, 100); math.Abs(got-1) > 0.01 {
		t.Errorf("T=1: got %v want about 1", got)
	}
	for _, f := range []func(){
		func() { Invert(-1, 100) },
		func() { Invert(101, 100) },
		func() { Invert(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestLemma1Variance is part of experiment E10: empirical variance of
// the fully random process must respect Var[X] < 4A²/K for
// 100 ≤ A ≤ K/20.
func TestLemma1Variance(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	const k = 4096
	for _, a := range []int{100, 150, 204} { // up to K/20 = 204
		if !Lemma1Applies(float64(a), k) {
			t.Fatalf("test parameters outside Lemma 1 regime: A=%d", a)
		}
		m := SampleMomentsFullyRandom(rng, 3000, a, k)
		bound := VarianceBound(float64(a), k)
		if m.Var >= bound {
			t.Errorf("A=%d K=%d: sample Var=%v >= Lemma 1 bound %v", a, k, m.Var, bound)
		}
		// And the sample mean must track Fact 1.
		want := ExpectedOccupied(float64(a), k)
		if math.Abs(m.Mean-want) > 0.02*want {
			t.Errorf("A=%d: mean %v want %v", a, m.Mean, want)
		}
	}
}

// TestLemma2LimitedIndependence (experiment E10): k-wise polynomial
// hashing with the Lemma 2 independence preserves the occupancy mean
// within (1±ε)E[X] and keeps the variance within the fully-random
// variance plus a small additive term.
func TestLemma2LimitedIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	seed := int64(31)
	const kBins = 1024 // K = 1/ε² with ε = 1/32
	eps := 1 / math.Sqrt(float64(kBins))
	const a = 150 // within [100, K/20]
	kInd := hashfn.KForEps(uint64(kBins), eps)
	rng := rand.New(rand.NewSource(seed))

	trials := 4000
	mPoly := SampleMoments(trials, a, kBins, func() hashfn.Family {
		return hashfn.NewKWise(rng, 2*(kInd+1), uint64(kBins))
	})
	mTab := SampleMoments(trials, a, kBins, func() hashfn.Family {
		return hashfn.NewMixedTabulation(rng, uint64(kBins))
	})
	mIdeal := SampleMomentsFullyRandom(rng, trials, a, kBins)

	want := ExpectedOccupied(a, kBins)
	for name, m := range map[string]Moments{"poly": mPoly, "mixedtab": mTab, "ideal": mIdeal} {
		if math.Abs(m.Mean-want) > 3*eps*want {
			t.Errorf("%s: mean %v deviates from E[X]=%v beyond 3ε", name, m.Mean, want)
		}
		// Lemma 2(2): Var[X'] ≤ Var[X] + ε² — allow sampling slack on
		// both sides by comparing against the Lemma 1 bound instead.
		if m.Var > VarianceBound(a, kBins) {
			t.Errorf("%s: Var %v exceeds Lemma 1 bound %v", name, m.Var, VarianceBound(a, kBins))
		}
	}
}

// TestLemma3Concentration (experiment E10): with K = 1/ε² and
// 100 ≤ A ≤ K/20, a single throw using the prescribed limited
// independence lands within 8ε·E[X] of E[X] with probability ≥ 4/5.
func TestLemma3Concentration(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const kBins = 1600 // ε = 1/40
	eps := 1 / math.Sqrt(float64(kBins))
	const a = 80 // K/20 = 80
	kInd := hashfn.KForEps(uint64(kBins), eps)
	rng := rand.New(rand.NewSource(32))
	want := ExpectedOccupied(a, kBins)

	const trials = 2000
	good := 0
	for i := 0; i < trials; i++ {
		h := hashfn.NewKWise(rng, 2*(kInd+1), uint64(kBins))
		x := float64(Throw(h, uint64(i)<<32, a, kBins))
		if math.Abs(x-want) <= 8*eps*want {
			good++
		}
	}
	if frac := float64(good) / trials; frac < 0.8 {
		t.Errorf("Lemma 3 concentration: only %.3f of trials within 8ε·E[X], want >= 0.8", frac)
	}
}

func TestThrowMatchesHashRange(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	h := hashfn.NewTwoWise(rng, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("range mismatch should panic")
		}
	}()
	Throw(h, 0, 10, 128)
}

func TestThrowCountsDistinctBins(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	h := hashfn.NewTabulation(rng, 16)
	// Throwing many balls into 16 bins must eventually occupy all 16.
	if got := Throw(h, 0, 10000, 16); got != 16 {
		t.Errorf("expected all bins occupied, got %d", got)
	}
	// Throwing 1 ball occupies exactly 1.
	if got := Throw(h, 0, 1, 16); got != 1 {
		t.Errorf("one ball occupies %d bins", got)
	}
	if got := Throw(h, 0, 0, 16); got != 0 {
		t.Errorf("zero balls occupy %d bins", got)
	}
}

func TestMomentsOf(t *testing.T) {
	m := momentsOf([]float64{1, 2, 3, 4, 5})
	if m.Mean != 3 || math.Abs(m.Var-2.5) > 1e-12 || m.N != 5 {
		t.Errorf("moments of 1..5: %+v", m)
	}
	one := momentsOf([]float64{7})
	if one.Mean != 7 || one.Var != 0 {
		t.Errorf("single sample moments: %+v", one)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { ExpectedOccupied(-1, 10) },
		func() { ExpectedOccupied(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkThrowPoly(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := hashfn.NewKWise(rng, 8, 1024)
	for i := 0; i < b.N; i++ {
		Throw(h, uint64(i), 100, 1024)
	}
}
