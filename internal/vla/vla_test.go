package vla

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroFresh(t *testing.T) {
	a := New(100)
	if a.Len() != 100 {
		t.Fatalf("Len=%d", a.Len())
	}
	for i := 0; i < 100; i++ {
		if a.Read(i) != 0 {
			t.Fatalf("fresh entry %d nonzero", i)
		}
	}
	if a.PayloadBits() != 0 {
		t.Errorf("fresh PayloadBits=%d want 0", a.PayloadBits())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := New(64)
	vals := []uint64{0, 1, 2, 15, 16, 255, 256, 1<<20 - 1, 1 << 40, 1<<60 - 1}
	for i, v := range vals {
		a.Write(i, v)
	}
	for i, v := range vals {
		if got := a.Read(i); got != v {
			t.Errorf("Read(%d)=%d want %d", i, got, v)
		}
	}
}

func TestOverwriteShrinkGrow(t *testing.T) {
	a := New(16)
	a.Write(5, 1<<50)
	a.Write(5, 3) // shrink
	if a.Read(5) != 3 {
		t.Fatal("shrink lost value")
	}
	a.Write(5, 1<<59) // grow
	if a.Read(5) != 1<<59 {
		t.Fatal("grow lost value")
	}
	a.Write(5, 0) // to zero: zero payload
	if a.Read(5) != 0 {
		t.Fatal("zeroing failed")
	}
}

func TestNeighborsUndisturbed(t *testing.T) {
	// Writes that change an entry's length shift its block-mates'
	// positions; their values must survive the repack.
	a := New(32)
	for i := 0; i < 32; i++ {
		a.Write(i, uint64(i)*7+1)
	}
	a.Write(7, 1<<55) // force a large repack in block 0
	a.Write(20, 0)    // and a shrink in block 1
	for i := 0; i < 32; i++ {
		want := uint64(i)*7 + 1
		if i == 7 {
			want = 1 << 55
		}
		if i == 20 {
			want = 0
		}
		if got := a.Read(i); got != want {
			t.Errorf("entry %d: got %d want %d", i, got, want)
		}
	}
}

func TestAgainstSliceModel(t *testing.T) {
	// Randomized differential test against a plain []uint64.
	rng := rand.New(rand.NewSource(20))
	const n = 500
	a := New(n)
	model := make([]uint64, n)
	for op := 0; op < 100000; op++ {
		i := rng.Intn(n)
		if rng.Intn(3) > 0 {
			v := rng.Uint64() >> uint(rng.Intn(64)+4) // varied magnitudes, < 2^60
			a.Write(i, v)
			model[i] = v
		} else if got := a.Read(i); got != model[i] {
			t.Fatalf("op %d: Read(%d)=%d model=%d", op, i, got, model[i])
		}
	}
	for i := 0; i < n; i++ {
		if a.Read(i) != model[i] {
			t.Fatalf("final mismatch at %d", i)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	a := New(1000)
	f := func(idx uint16, v uint64) bool {
		i := int(idx) % 1000
		v >>= 4 // keep < 2^60
		a.Write(i, v)
		return a.Read(i) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPayloadBitsAccounting(t *testing.T) {
	a := New(16)
	if a.PayloadBits() != 0 {
		t.Fatal("empty array has payload")
	}
	a.Write(0, 1) // 1 granule = 4 bits
	if a.PayloadBits() != 4 {
		t.Errorf("PayloadBits=%d want 4", a.PayloadBits())
	}
	a.Write(1, 255) // 2 granules = 8 bits
	if a.PayloadBits() != 12 {
		t.Errorf("PayloadBits=%d want 12", a.PayloadBits())
	}
	a.Write(0, 0) // back to zero
	if a.PayloadBits() != 8 {
		t.Errorf("PayloadBits=%d want 8", a.PayloadBits())
	}
}

func TestSpaceBitsStaysCompactForSmallValues(t *testing.T) {
	// The whole point (Theorem 8 + Figure 3): K counters holding small
	// offsets must take O(K) bits, not O(K·log n). With every entry < 16
	// (one granule) the payload is 4 bits/entry and overhead is
	// 64 bits per 16-entry block: ~8 bits/entry total.
	const n = 1 << 12
	a := New(n)
	for i := 0; i < n; i++ {
		a.Write(i, uint64(i%15)+1)
	}
	if got, lim := a.SpaceBits(), 10*n; got > lim {
		t.Errorf("SpaceBits=%d exceeds %d (not compact)", got, lim)
	}
}

func TestReset(t *testing.T) {
	a := New(40)
	for i := 0; i < 40; i++ {
		a.Write(i, 1<<30+uint64(i))
	}
	a.Reset()
	for i := 0; i < 40; i++ {
		if a.Read(i) != 0 {
			t.Fatalf("Reset left entry %d", i)
		}
	}
	if a.PayloadBits() != 0 {
		t.Error("Reset left payload bits")
	}
}

func TestBoundsPanics(t *testing.T) {
	a := New(4)
	for _, f := range []func(){
		func() { a.Read(4) },
		func() { a.Read(-1) },
		func() { a.Write(4, 1) },
		func() { a.Write(0, 1<<60) }, // value too wide
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCodeFor(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint64
	}{
		{0, 0}, {1, 1}, {15, 1}, {16, 2}, {255, 2}, {256, 3},
		{1<<59 | 1, 15}, {1<<60 - 1, 15},
	}
	for _, c := range cases {
		if got := codeFor(c.v); got != c.want {
			t.Errorf("codeFor(%d)=%d want %d", c.v, got, c.want)
		}
	}
}

func TestExtractDepositAcrossWordBoundary(t *testing.T) {
	data := make([]uint64, 3)
	depositBits(data, 60, 20, 0xABCDE)
	if got := extractBits(data, 60, 20); got != 0xABCDE {
		t.Fatalf("cross-boundary roundtrip: got %#x", got)
	}
	// Neighbors unaffected.
	depositBits(data, 0, 60, 0x123456789ABCDEF)
	depositBits(data, 80, 40, 0xFFFFFFFFFF)
	if got := extractBits(data, 60, 20); got != 0xABCDE {
		t.Fatalf("neighbor writes disturbed value: %#x", got)
	}
	if got := extractBits(data, 0, 60); got != 0x123456789ABCDEF {
		t.Fatalf("low field disturbed: %#x", got)
	}
}

func BenchmarkWriteSameLength(b *testing.B) {
	a := New(1 << 12)
	for i := 0; i < b.N; i++ {
		a.Write(i&(1<<12-1), uint64(i&7)+8) // constant length code
	}
}

func BenchmarkWriteVaryingLength(b *testing.B) {
	a := New(1 << 12)
	for i := 0; i < b.N; i++ {
		a.Write(i&(1<<12-1), uint64(i)&(1<<(uint(i)%48)-1))
	}
}

func BenchmarkRead(b *testing.B) {
	a := New(1 << 12)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<12; i++ {
		a.Write(i, rng.Uint64()>>10)
	}
	var s uint64
	for i := 0; i < b.N; i++ {
		s += a.Read(i & (1<<12 - 1))
	}
	_ = s
}
