// Package vla implements a variable-bit-length array — the
// Blandford–Blelloch compact-dictionary structure the paper invokes as
// Theorem 8 — storing n entries whose binary representations have
// unequal lengths, in O(n + Σ len(C_i)) bits with O(1)-word-operation
// reads and updates.
//
// The KNW F0 algorithm (Figure 3) stores K = 1/ε² counters C_j whose
// values are offsets from the subsampling base b; each counter occupies
// O(1 + log(C_j + 2)) bits, and the algorithm guarantees (by outputting
// FAIL when the tracked total A exceeds 3K) that the combined payload
// stays O(K) bits. A fixed-width array would instead cost
// Θ(K·loglog n) bits and break the O(ε⁻² + log n) space bound, which is
// exactly why the paper reaches for this structure.
//
// Layout: entries are grouped into blocks of blockSize = 16. A block
// stores a 4-bit-granular length code per entry (lengths are rounded up
// to multiples of 4 bits, preserving the O(1 + len) charge) and a
// packed payload of []uint64 words. Because the block size is a fixed
// constant and every entry is at most one machine word, a block spans
// O(1) words whenever entries are short (as in Figure 3, where offsets
// are O(loglog n) bits), so reading or rewriting a block is O(1) word
// operations — the same accounting Blandford–Blelloch use.
package vla

import "fmt"

const (
	blockSize = 16 // entries per block; constant so block ops are O(1)
	granule   = 4  // lengths are multiples of 4 bits; codes fit in 4 bits
)

// Array is a variable-bit-length array of uint64 values.
type Array struct {
	n      int
	blocks []block
}

type block struct {
	codes uint64   // 4-bit length code per entry: length = code*granule
	data  []uint64 // packed payload, little-endian bit order
}

// New returns an Array of n entries, all zero. A zero entry occupies
// zero payload bits (length code 0).
func New(n int) *Array {
	if n < 0 {
		panic("vla: negative length")
	}
	return &Array{
		n:      n,
		blocks: make([]block, (n+blockSize-1)/blockSize),
	}
}

// Len returns the number of entries.
func (a *Array) Len() int { return a.n }

// codeFor returns the 4-bit length code for value v: the number of
// 4-bit granules needed to represent v (0 for v == 0, up to 15 for a
// 60-bit value; values needing more than 60 bits are rejected, which is
// far beyond anything Figure 3 stores).
func codeFor(v uint64) uint64 {
	if v >= 1<<60 {
		panic("vla: value exceeds 60 bits")
	}
	c := uint64(0)
	for x := v; x != 0; x >>= granule {
		c++
	}
	return c
}

func (b *block) code(slot int) uint64 {
	return (b.codes >> (4 * uint(slot))) & 0xF
}

func (b *block) setCode(slot int, c uint64) {
	shift := 4 * uint(slot)
	b.codes = b.codes&^(0xF<<shift) | c<<shift
}

// bitOffset returns the payload bit position where slot's entry starts:
// the sum of preceding entries' lengths. blockSize is constant, so this
// is O(1) word operations.
func (b *block) bitOffset(slot int) uint {
	off := uint(0)
	for s := 0; s < slot; s++ {
		off += uint(b.code(s)) * granule
	}
	return off
}

// Read returns entry i.
func (a *Array) Read(i int) uint64 {
	a.check(i)
	b := &a.blocks[i/blockSize]
	slot := i % blockSize
	nbits := uint(b.code(slot)) * granule
	if nbits == 0 {
		return 0
	}
	return extractBits(b.data, b.bitOffset(slot), nbits)
}

// Write sets entry i to v, repacking the containing block if the
// entry's bit length changed. Repacking touches one constant-size
// block: O(1) word operations.
func (a *Array) Write(i int, v uint64) {
	a.check(i)
	b := &a.blocks[i/blockSize]
	slot := i % blockSize
	oldCode := b.code(slot)
	newCode := codeFor(v)
	if oldCode == newCode {
		if newCode != 0 {
			depositBits(b.data, b.bitOffset(slot), uint(newCode)*granule, v)
		}
		return
	}
	// Length changed: decode the whole block, update, re-encode.
	var vals [blockSize]uint64
	off := uint(0)
	for s := 0; s < blockSize; s++ {
		n := uint(b.code(s)) * granule
		if n > 0 {
			vals[s] = extractBits(b.data, off, n)
		} else {
			vals[s] = 0
		}
		off += n
	}
	vals[slot] = v
	b.setCode(slot, newCode)
	total := uint(0)
	for s := 0; s < blockSize; s++ {
		total += uint(b.code(s)) * granule
	}
	words := int((total + 63) / 64)
	if cap(b.data) < words {
		nd := make([]uint64, words, words+2)
		b.data = nd
	} else {
		b.data = b.data[:words]
		for w := range b.data {
			b.data[w] = 0
		}
	}
	off = 0
	for s := 0; s < blockSize; s++ {
		n := uint(b.code(s)) * granule
		if n > 0 {
			depositBits(b.data, off, n, vals[s])
		}
		off += n
	}
}

// PayloadBits returns Σ len(C_i) as stored (each entry rounded up to a
// granule), the quantity Theorem 8's space bound is expressed in.
func (a *Array) PayloadBits() int {
	total := 0
	for bi := range a.blocks {
		b := &a.blocks[bi]
		for s := 0; s < blockSize; s++ {
			total += int(b.code(s)) * granule
		}
	}
	return total
}

// SpaceBits returns the structure's total footprint: payload words plus
// the per-block length codes — O(n + Σ len(C_i)) bits as in Theorem 8.
func (a *Array) SpaceBits() int {
	total := 0
	for bi := range a.blocks {
		total += 64 * len(a.blocks[bi].data) // packed payload
		total += 64                          // length-code word
	}
	return total
}

// Reset zeroes every entry, releasing payload storage.
func (a *Array) Reset() {
	for bi := range a.blocks {
		a.blocks[bi].codes = 0
		a.blocks[bi].data = a.blocks[bi].data[:0]
	}
}

func (a *Array) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("vla: index %d out of range [0,%d)", i, a.n))
	}
}

// extractBits reads nbits (1..64) starting at bit position off from the
// little-endian packed word slice.
func extractBits(data []uint64, off, nbits uint) uint64 {
	w, b := off/64, off%64
	v := data[w] >> b
	if b+nbits > 64 {
		v |= data[w+1] << (64 - b)
	}
	if nbits < 64 {
		v &= (1 << nbits) - 1
	}
	return v
}

// depositBits writes the low nbits of v at bit position off.
func depositBits(data []uint64, off, nbits uint, v uint64) {
	if nbits < 64 {
		v &= (1 << nbits) - 1
	}
	w, b := off/64, off%64
	data[w] = data[w]&^(maskBits(nbits)<<b) | v<<b
	if b+nbits > 64 {
		rem := b + nbits - 64
		data[w+1] = data[w+1]&^maskBits(rem) | v>>(64-b)
	}
}

func maskBits(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}
