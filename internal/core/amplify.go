package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrAllCopiesFailed is returned by Amplified.Estimate when every
// underlying copy has FAILed — probability ≤ (1/32)^copies by
// Theorem 3, so seeing it indicates misuse (e.g. adversarial keys
// correlated with the hash seeds).
var ErrAllCopiesFailed = errors.New("core: all sketch copies failed")

// F0Sketch is the interface shared by Sketch and FastSketch, and by
// Amplified itself, so amplification composes with either variant.
type F0Sketch interface {
	Add(key uint64)
	Estimate() (float64, error)
	SpaceBits() int
	Failed() bool
}

// CopiesForDelta returns how many independent copies are needed to
// boost the per-copy success probability to 1 − δ via the median
// (standard Chernoff argument: the median of c copies fails only if
// ≥ c/2 copies fail). The paper's proven per-copy rate is 11/20, whose
// razor-thin margin would demand ~600·ln(1/δ) copies; the measured
// per-copy rate of staying within the ε band is ≥ 0.85 (experiment
// E3, EXPERIMENTS.md), giving exp(−2c(0.85−1/2)²) ≤ δ at
// c ≈ 4.1·ln(1/δ). The result is floored at 3 and kept odd so the
// median is a single copy's output.
func CopiesForDelta(delta float64) int {
	if delta <= 0 || delta >= 1 {
		panic("core: delta must be in (0,1)")
	}
	c := int(math.Ceil(math.Log(1/delta) / (2 * 0.35 * 0.35)))
	if c < 3 {
		c = 3
	}
	if c%2 == 0 {
		c++
	}
	return c
}

// Amplified runs several independent sketch copies and reports the
// median estimate (Section 1: "This probability can be amplified by
// independent repetition", and Section 3.2: "the 5/8 can be boosted to
// 1 − δ … by running O(log(1/δ)) instantiations … and returning the
// median estimate").
type Amplified struct {
	copies []F0Sketch
}

// NewAmplified builds c independent copies using the constructor mk,
// which is called with a distinct rng for each copy.
func NewAmplified(c int, rng *rand.Rand, mk func(*rand.Rand) F0Sketch) *Amplified {
	if c < 1 {
		panic("core: need at least one copy")
	}
	a := &Amplified{copies: make([]F0Sketch, c)}
	for i := range a.copies {
		a.copies[i] = mk(rand.New(rand.NewSource(rng.Int63())))
	}
	return a
}

// Add feeds the key to every copy.
func (a *Amplified) Add(key uint64) {
	for _, s := range a.copies {
		s.Add(key)
	}
}

// Estimate returns the median of the copies' estimates. FAILed or
// saturated copies are excluded; if every copy is excluded,
// ErrAllCopiesFailed is returned.
func (a *Amplified) Estimate() (float64, error) {
	vals := make([]float64, 0, len(a.copies))
	for _, s := range a.copies {
		if v, err := s.Estimate(); err == nil {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, ErrAllCopiesFailed
	}
	sort.Float64s(vals)
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m], nil
	}
	return (vals[m-1] + vals[m]) / 2, nil
}

// Failed reports whether every copy has failed.
func (a *Amplified) Failed() bool {
	for _, s := range a.copies {
		if !s.Failed() {
			return false
		}
	}
	return true
}

// Copies returns the number of underlying sketches.
func (a *Amplified) Copies() int { return len(a.copies) }

// SpaceBits is the sum over copies.
func (a *Amplified) SpaceBits() int {
	total := 0
	for _, s := range a.copies {
		total += s.SpaceBits()
	}
	return total
}
