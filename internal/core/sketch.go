package core

import (
	"math"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
	"repro/internal/rough"
)

// Sketch is the reference implementation of Figure 3 plus the
// Section 3.3 small-F0 companion. See the package documentation for how
// it relates to FastSketch. A Sketch is not safe for concurrent use.
type Sketch struct {
	cfg     Config
	keyMask uint64 // restricts h1's output to [0, 2^LogN)

	h1 *hashfn.TwoWise // level hash: lsb(h1(i)) is the subsampling depth
	h2 *hashfn.TwoWise // [n] → [K³]: collision-avoidance stage
	h3 *hashfn.Poly    // [K³] → [2K]: balls-and-bins stage (k-wise)

	re    *rough.Estimator
	small smallF0

	c    []int8 // K counters: offset-from-b of deepest level, −1 = empty
	a    int    // A = Σ ⌈log2(C_j + 2)⌉, the packed-bits accounting
	b    int    // subsampling offset
	est  int    // log2 of the last rough estimate acted upon
	tOcc int    // T = |{j : C_j ≥ 0}|, maintained for O(1) reporting

	failed bool
	// rescales counts offset changes; exposed for the E6 experiment.
	rescales int
}

// NewSketch draws a fresh reference sketch using randomness from rng.
func NewSketch(cfg Config, rng *rand.Rand) *Sketch {
	cfg.normalize()
	k := cfg.K
	s := &Sketch{
		cfg:     cfg,
		keyMask: bitutil.Mask(cfg.LogN),
		h1:      hashfn.NewTwoWise(rng, 1),
		h2:      hashfn.NewTwoWise(rng, uint64(k)*uint64(k)*uint64(k)),
		h3: hashfn.NewKWise(rng,
			hashfn.KForEps(uint64(k), 1/math.Sqrt(float64(k))), uint64(2*k)),
		re:    rough.New(rough.Config{LogN: cfg.LogN, KRE: cfg.RoughKRE}, rng),
		small: newSmallF0(k),
		c:     make([]int8, k),
	}
	for i := range s.c {
		s.c[i] = -1
	}
	return s
}

// K returns the counter count (the paper's K = 1/ε²).
func (s *Sketch) K() int { return s.cfg.K }

// Add processes stream item key (Figure 3, step 6).
func (s *Sketch) Add(key uint64) {
	lvl := int(bitutil.LSB(s.h1.HashField(key)&s.keyMask, s.cfg.LogN))
	bit := int(s.h3.Hash(s.h2.Hash(key))) // ∈ [0, 2K)
	s.addHashed(key, lvl, bit)
}

// AddBatch processes the keys exactly as sequential Add calls would,
// with each hash family — including the rough estimator's — evaluated
// over the chunk in its own tight loop (see FastSketch.AddBatch).
func (s *Sketch) AddBatch(keys []uint64) {
	var red, z [batchChunk]uint64
	var lvls, bits, cidx [batchChunk]int32
	var rsc rough.Scratch
	var cest [batchChunk]uint64
	checked := false // see FastSketch.AddBatch on the consultation skip
	for len(keys) > 0 {
		n := len(keys)
		if n > batchChunk {
			n = batchChunk
		}
		chunk := keys[:n]
		keys = keys[n:]
		hashfn.ReduceChunk(chunk, red[:n])
		s.h1.HashFieldChunkReduced(red[:n], z[:n])
		for i, v := range z[:n] {
			lvls[i] = int32(bitutil.LSB(v&s.keyMask, s.cfg.LogN))
		}
		s.h2.HashChunkReduced(red[:n], z[:n])
		for i, v := range z[:n] {
			bits[i] = int32(s.h3.Hash(v))
		}
		s.re.PrecomputeReduced(red[:n], &rsc)
		r, m := s.re.ApplyChunk(&rsc, n, &cidx, &cest)
		p := 0
		for i, key := range chunk {
			s.applyHashed(key, int(lvls[i]), int(bits[i]))
			if p < m && int(cidx[p]) == i {
				r = cest[p]
				p++
			} else if checked {
				continue
			}
			if r > 0 && r > uint64(1)<<uint(s.est) {
				s.applyRough(r)
			}
			checked = true
		}
	}
}

// addHashed is the post-hashing tail of Add, shared with AddBatch.
func (s *Sketch) addHashed(key uint64, lvl, bit int) {
	s.applyHashed(key, lvl, bit)
	s.re.Update(key)
	s.checkRough()
}

// checkRough is Figure 3's per-update "if R > 2^est" consultation.
func (s *Sketch) checkRough() {
	if r := s.re.Estimate(); r > 0 && r > uint64(1)<<uint(s.est) {
		s.applyRough(r)
	}
}

// applyHashed applies the main-sketch half of one update, shared by
// the scalar and batched paths.
func (s *Sketch) applyHashed(key uint64, lvl, bit int) {
	s.small.observe(key, bit)

	j := bit & (s.cfg.K - 1) // h3 reduced mod K for the counter index
	x := lvl - s.b
	if cur := int(s.c[j]); x > cur {
		// A ← A − ⌈log(2+C_j)⌉ + ⌈log(2+x)⌉
		s.a += int(bitutil.CeilLog2(uint64(x+2))) - int(bitutil.CeilLog2(uint64(cur+2)))
		if s.a > 3*s.cfg.K {
			s.failed = true // Figure 3: "Output FAIL"
		}
		if cur < 0 {
			s.tOcc++
		}
		s.c[j] = int8(x)
	}
}

// applyRough handles Figure 3's "if R > 2^est" block: recompute est and
// the offset b_new = max(0, est − log(K/32)), then shift every counter
// by b − b_new and retotal A. The reference implementation does the
// O(K) shift inline; FastSketch deamortizes it (Theorem 9).
func (s *Sketch) applyRough(r uint64) {
	s.est = int(bitutil.FloorLog2(r))
	bnew := s.est - (int(bitutil.FloorLog2(uint64(s.cfg.K))) - 5) // log2(K/32)
	if bnew < 0 {
		bnew = 0
	}
	if bnew == s.b {
		return
	}
	s.rescales++
	delta := s.b - bnew // negative: counters shift down
	s.a = 0
	s.tOcc = 0
	for j := range s.c {
		nc := int(s.c[j]) + delta
		if nc < -1 {
			nc = -1
		}
		s.c[j] = int8(nc)
		s.a += int(bitutil.CeilLog2(uint64(nc + 2)))
		if nc >= 0 {
			s.tOcc++
		}
	}
	s.b = bnew
}

// Estimate returns F̃0 (Figure 3, step 7, with the Section 3.3 regime
// selection). The error contract is Theorem 3/4's: (1 ± O(ε))F0 with
// probability ≥ 11/20 for a single sketch; use Amplified for 1 − δ.
func (s *Sketch) Estimate() (float64, error) {
	if v, ok := s.small.estimate(s.cfg.K); ok {
		return v, nil
	}
	if s.failed {
		return 0, ErrFailed
	}
	k := s.cfg.K
	if s.tOcc == k {
		return 0, ErrSaturated
	}
	// F̃0 = 2^b · ln(1 − T/K)/ln(1 − 1/K)
	return exp2(s.b) * math.Log1p(-float64(s.tOcc)/float64(k)) /
		math.Log1p(-1/float64(k)), nil
}

// Failed reports whether the FAIL event has occurred.
func (s *Sketch) Failed() bool { return s.failed }

// Rescales returns how many times the offset b changed (experiment E6).
func (s *Sketch) Rescales() int { return s.rescales }

// B returns the current subsampling offset (for tests and experiments).
func (s *Sketch) B() int { return s.b }

// Occupied returns T = |{j : C_j ≥ 0}|.
func (s *Sketch) Occupied() int { return s.tOcc }

// A returns the maintained packed-size accounting Σ⌈log2(C_j+2)⌉.
func (s *Sketch) A() int { return s.a }

// MergeFrom merges another sketch built from the same Config and rng
// seed (identical hash draws) so that s reflects the union of both
// streams. Counters are max-merged after aligning offsets; the rough
// estimators and small-F0 structures merge likewise. Estimates after
// merging obey the same guarantees as a single sketch over the
// concatenated streams.
func (s *Sketch) MergeFrom(o *Sketch) {
	if s.cfg.K != o.cfg.K || s.cfg.LogN != o.cfg.LogN {
		panic("core: merge of incompatible sketches")
	}
	// Align to the larger offset and rough-estimate level.
	if o.est > s.est {
		s.est = o.est
	}
	if o.b > s.b {
		s.shiftTo(o.b)
	}
	s.a = 0
	s.tOcc = 0
	for j := range s.c {
		oc := int(o.c[j]) + o.b - s.b // express o's counter at s's offset
		if oc < -1 {
			oc = -1
		}
		if oc > int(s.c[j]) {
			s.c[j] = int8(oc)
		}
		s.a += int(bitutil.CeilLog2(uint64(int(s.c[j]) + 2)))
		if s.c[j] >= 0 {
			s.tOcc++
		}
	}
	if s.a > 3*s.cfg.K {
		s.failed = true
	}
	s.failed = s.failed || o.failed
	s.re.MergeFrom(o.re)
	s.small.mergeFrom(&o.small)
}

// shiftTo rebases counters to offset bnew ≥ s.b.
func (s *Sketch) shiftTo(bnew int) {
	if bnew == s.b {
		return
	}
	delta := s.b - bnew
	for j := range s.c {
		nc := int(s.c[j]) + delta
		if nc < -1 {
			nc = -1
		}
		s.c[j] = int8(nc)
	}
	s.b = bnew
}

// Reset returns the sketch to its freshly constructed state without
// redrawing hash functions (scratch-sketch reuse; see FastSketch.Reset).
func (s *Sketch) Reset() {
	for i := range s.c {
		s.c[i] = -1
	}
	s.a, s.b, s.est, s.tOcc = 0, 0, 0, 0
	s.failed = false
	s.rescales = 0
	s.re.Reset()
	s.small.reset()
}

// SpaceBits reports the sketch's accounted footprint. For the reference
// implementation counters are charged at their actual int8 storage;
// FastSketch charges the bit-packed VLA (the representation Theorem 2's
// O(ε⁻² + log n) bound refers to).
func (s *Sketch) SpaceBits() int {
	total := 8 * len(s.c) // int8 counters
	total += s.h1.SeedBits() + s.h2.SeedBits() + s.h3.SeedBits()
	total += s.re.SpaceBits()
	total += s.small.spaceBits(s.cfg.LogN)
	total += 3 * 64 // A, b, est
	return total
}
