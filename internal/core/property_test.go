package core

// Property-based tests on the sketch algebra: the merge operation is a
// semilattice join (counters combine by max), so union order must
// never matter, merging a sketch with itself must be the identity, and
// the two implementations must agree on identical inputs.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildPair(seed int64, keysA, keysB []uint64) (*FastSketch, *FastSketch) {
	a := NewFastSketch(Config{K: 256, LogN: 32}, rand.New(rand.NewSource(seed)))
	b := NewFastSketch(Config{K: 256, LogN: 32}, rand.New(rand.NewSource(seed)))
	for _, k := range keysA {
		a.Add(k)
	}
	for _, k := range keysB {
		b.Add(k)
	}
	return a, b
}

func TestMergeCommutative(t *testing.T) {
	f := func(seed int64, rawA, rawB []uint64) bool {
		ab1, ab2 := buildPair(seed, rawA, rawB)
		ba1, ba2 := buildPair(seed, rawB, rawA)
		ab1.MergeFrom(ab2) // A ∪ B
		ba1.MergeFrom(ba2) // B ∪ A
		va, ea := ab1.Estimate()
		vb, eb := ba1.Estimate()
		if (ea == nil) != (eb == nil) {
			return false
		}
		if ea != nil {
			return true
		}
		return va == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	f := func(seed int64, raw []uint64) bool {
		a, b := buildPair(seed, raw, raw) // identical streams
		before, err1 := a.Estimate()
		a.MergeFrom(b)
		after, err2 := a.Estimate()
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeAssociativeAcrossThree(t *testing.T) {
	mk := func(keys []uint64) *FastSketch {
		s := NewFastSketch(Config{K: 256, LogN: 32}, rand.New(rand.NewSource(99)))
		for _, k := range keys {
			s.Add(k)
		}
		return s
	}
	f := func(ka, kb, kc []uint64) bool {
		// (A ∪ B) ∪ C
		left := mk(ka)
		left.MergeFrom(mk(kb))
		left.MergeFrom(mk(kc))
		// A ∪ (B ∪ C)
		bc := mk(kb)
		bc.MergeFrom(mk(kc))
		right := mk(ka)
		right.MergeFrom(bc)
		lv, le := left.Estimate()
		rv, re := right.Estimate()
		if (le == nil) != (re == nil) {
			return false
		}
		if le != nil {
			return true
		}
		return lv == rv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEstimateNonNegativeAndFinite(t *testing.T) {
	f := func(seed int64, raw []uint64) bool {
		s := NewFastSketch(Config{K: 64, LogN: 16}, rand.New(rand.NewSource(seed)))
		for _, k := range raw {
			s.Add(k)
		}
		v, err := s.Estimate()
		if err != nil {
			return true // FAIL/saturation surfaces as error, never as NaN
		}
		return v >= 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestImplementationsAgreeOnSmallStreams(t *testing.T) {
	// Below ExactCap both implementations are exact, so they must agree
	// bit-for-bit regardless of their different internals.
	f := func(raw []uint64) bool {
		ref := NewSketch(Config{K: 64, LogN: 32}, rand.New(rand.NewSource(5)))
		fast := NewFastSketch(Config{K: 64, LogN: 32}, rand.New(rand.NewSource(5)))
		seen := map[uint64]struct{}{}
		for _, k := range raw {
			if len(seen) >= ExactCap-1 {
				break
			}
			seen[k] = struct{}{}
			ref.Add(k)
			fast.Add(k)
		}
		rv, _ := ref.Estimate()
		fv, _ := fast.Estimate()
		return rv == float64(len(seen)) && fv == float64(len(seen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOffsetNeverNegativeProperty(t *testing.T) {
	// b = max(0, est − log(K/32)) must never go negative no matter the
	// stream shape (Figure 3 step a).
	rng := rand.New(rand.NewSource(6))
	s := NewFastSketch(Config{K: 32}, rng) // smallest legal K stresses bnew
	for i := 0; i < 200000; i++ {
		s.Add(rng.Uint64())
		if s.B() < 0 {
			t.Fatalf("offset went negative at update %d", i)
		}
	}
}

func TestAInvariantMatchesCounters(t *testing.T) {
	// The maintained A must equal Σ⌈log2(C_j+2)⌉ recomputed from
	// scratch at any point (Figure 3's accounting, which the FAIL
	// bound depends on).
	rng := rand.New(rand.NewSource(7))
	s := NewSketch(Config{K: 1024}, rng)
	for i := 0; i < 300000; i++ {
		s.Add(rng.Uint64())
		if i%50000 == 0 {
			want := 0
			occ := 0
			for _, c := range s.c {
				want += ceilLog2ForTest(int(c) + 2)
				if c >= 0 {
					occ++
				}
			}
			if s.A() != want {
				t.Fatalf("A=%d but recomputed %d at update %d", s.A(), want, i)
			}
			if s.Occupied() != occ {
				t.Fatalf("T=%d but recomputed %d at update %d", s.Occupied(), occ, i)
			}
		}
	}
}

func ceilLog2ForTest(x int) int {
	if x <= 1 {
		return 0
	}
	n, p := 0, 1
	for p < x {
		p <<= 1
		n++
	}
	return n
}
