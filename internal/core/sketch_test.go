package core

import (
	"math"
	"math/rand"
	"testing"
)

// mkBoth returns constructors for both implementations so every test
// runs against the reference and the Theorem 9 variant.
func mkBoth(cfg Config) map[string]func(*rand.Rand) F0Sketch {
	return map[string]func(*rand.Rand) F0Sketch{
		"reference": func(rng *rand.Rand) F0Sketch { return NewSketch(cfg, rng) },
		"fast":      func(rng *rand.Rand) F0Sketch { return NewFastSketch(cfg, rng) },
	}
}

func TestKForEpsilon(t *testing.T) {
	for _, eps := range []float64{0.3, 0.1, 0.05, 0.01} {
		k := KForEpsilon(eps)
		if k < 32 || k&(k-1) != 0 {
			t.Errorf("KForEpsilon(%v)=%d: not a power of two >= 32", eps, k)
		}
		if float64(k) < 81/(eps*eps) {
			t.Errorf("KForEpsilon(%v)=%d below 81/ε²", eps, k)
		}
	}
	if KForEpsilon(0) != KForEpsilon(0.05) {
		t.Error("invalid eps should default to 0.05")
	}
	if KForEpsilon(0.3) >= KForEpsilon(0.03) {
		t.Error("K must grow as eps shrinks")
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []Config{
		{LogN: 3},
		{LogN: 63},
		{K: 31},
		{K: 100}, // not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewSketch(cfg, rng)
		}()
	}
}

// TestExactSmallF0 is experiment E5's first half: below ExactCap
// distinct items the answer is exact (Section 3.3), including under
// heavy duplication.
func TestExactSmallF0(t *testing.T) {
	for name, mk := range mkBoth(Config{K: 1024}) {
		for _, f0 := range []int{0, 1, 2, 10, 50, 99, 100} {
			rng := rand.New(rand.NewSource(60 + int64(f0)))
			s := mk(rng)
			keys := make([]uint64, f0)
			for i := range keys {
				keys[i] = rng.Uint64()
			}
			for rep := 0; rep < 5; rep++ {
				for _, k := range keys {
					s.Add(k)
				}
			}
			got, err := s.Estimate()
			if err != nil {
				t.Fatalf("%s F0=%d: %v", name, f0, err)
			}
			if got != float64(f0) {
				t.Errorf("%s F0=%d: got %v, want exact", name, f0, got)
			}
		}
	}
}

// TestSmallF0Estimator is E5's second half: between ExactCap and the
// Theorem 4 switch at K/16, the 2K-bit array answers within a few
// percent (its error is ~2/√(2K), far below the Figure 3 band).
func TestSmallF0Estimator(t *testing.T) {
	const k = 4096
	for name, mk := range mkBoth(Config{K: k}) {
		for _, f0 := range []int{150, 200, k / 32} {
			var worst float64
			for trial := 0; trial < 10; trial++ {
				rng := rand.New(rand.NewSource(70 + int64(trial)))
				s := mk(rng)
				for i := 0; i < f0; i++ {
					s.Add(rng.Uint64())
				}
				got, err := s.Estimate()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				rel := math.Abs(got-float64(f0)) / float64(f0)
				if rel > worst {
					worst = rel
				}
			}
			if worst > 0.10 {
				t.Errorf("%s F0=%d: worst relative error %.3f > 0.10", name, f0, worst)
			}
		}
	}
}

// TestTheorem3Accuracy is experiment E3: across the Figure 3 regime the
// per-copy estimate is within the paper's O(ε) band. We require RMS
// relative error ≤ 10/√K and ≥ 80% of copies within 16/√K (the paper
// promises 11/20 within O(ε); our measured distribution is much
// tighter, see EXPERIMENTS.md).
func TestTheorem3Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const k = 4096
	epsPrime := 1 / math.Sqrt(float64(k))
	for name, mk := range mkBoth(Config{K: k}) {
		for _, f0 := range []int{k, 10 * k, 30 * k} {
			const trials = 20
			sum2 := 0.0
			within := 0
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(1000*int64(f0) + int64(trial)))
				s := mk(rng)
				for i := 0; i < f0; i++ {
					s.Add(rng.Uint64())
				}
				got, err := s.Estimate()
				if err != nil {
					t.Fatalf("%s F0=%d trial %d: %v", name, f0, trial, err)
				}
				rel := math.Abs(got-float64(f0)) / float64(f0)
				sum2 += rel * rel
				if rel <= 16*epsPrime {
					within++
				}
			}
			rms := math.Sqrt(sum2 / trials)
			if rms > 10*epsPrime {
				t.Errorf("%s F0=%d: RMS %.4f > %.4f", name, f0, rms, 10*epsPrime)
			}
			if float64(within)/trials < 0.8 {
				t.Errorf("%s F0=%d: only %d/%d within 16ε′", name, f0, within, trials)
			}
		}
	}
}

func TestDuplicatesDoNotChangeEstimate(t *testing.T) {
	for name, mk := range mkBoth(Config{K: 1024}) {
		rng := rand.New(rand.NewSource(80))
		s := mk(rng)
		keys := make([]uint64, 50000)
		for i := range keys {
			keys[i] = rng.Uint64()
			s.Add(keys[i])
		}
		before, err := s.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			for _, k := range keys {
				s.Add(k)
			}
		}
		after, err := s.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if before != after {
			t.Errorf("%s: duplicates moved estimate %v -> %v", name, before, after)
		}
	}
}

func TestEstimateMidStreamAnytime(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping million-update midstream suite in -short mode")
	}
	// The paper's reporting guarantee is "at any point midstream". Check
	// estimates stay within a generous band at every power-of-two
	// checkpoint of a growing stream.
	for name, mk := range mkBoth(Config{K: 4096}) {
		rng := rand.New(rand.NewSource(81))
		s := mk(rng)
		n := 0
		for _, target := range []int{100, 1000, 10000, 100000, 1000000} {
			for n < target {
				n++
				s.Add(rng.Uint64())
			}
			got, err := s.Estimate()
			if err != nil {
				t.Fatalf("%s at n=%d: %v", name, n, err)
			}
			if rel := math.Abs(got-float64(n)) / float64(n); rel > 0.5 {
				t.Errorf("%s at n=%d: estimate %v (rel %.3f)", name, n, got, rel)
			}
		}
	}
}

// TestTheorem2SpaceScaling is experiment E4: total accounted space must
// scale like c1·K + c2·log n — i.e., roughly linearly in K at fixed n,
// and grow only additively when LogN grows.
func TestTheorem2SpaceScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	load := func(s F0Sketch) int {
		for i := 0; i < 200000; i++ {
			s.Add(rng.Uint64())
		}
		return s.SpaceBits()
	}
	s1 := load(NewFastSketch(Config{K: 1 << 10}, rng))
	s2 := load(NewFastSketch(Config{K: 1 << 12}, rng))
	s3 := load(NewFastSketch(Config{K: 1 << 14}, rng))
	// Fixed overheads (tabulation tables, rough estimator) dominate at
	// small K; between K=2^12 and 2^14 the K-linear part must show.
	growth := float64(s3-s2) / float64(s2-s1)
	if growth < 2 || growth > 8 {
		t.Errorf("space growth ratio %.2f, want ~4 (linear in K): %d %d %d", growth, s1, s2, s3)
	}
	// Per-counter cost of the VLA-packed counters must be O(1) bits on
	// average (the 3K FAIL bound): check payload via A proxy — total
	// space minus the K-independent overheads stays below ~40 bits/counter.
	overhead := NewFastSketch(Config{K: 1 << 10}, rng).SpaceBits() // fresh, unloaded small-K sketch
	perCounter := float64(s3-overhead) / float64(1<<14)
	if perCounter > 40 {
		t.Errorf("per-counter cost %.1f bits too high", perCounter)
	}
}

// TestLnTableMode exercises the paper-exact reporting path (Theorem 9
// via Lemma 7's table) and checks it agrees with the hardware-log path
// to within the table's guaranteed relative error.
func TestLnTableMode(t *testing.T) {
	rngA := rand.New(rand.NewSource(95))
	rngB := rand.New(rand.NewSource(95))
	tab := NewFastSketch(Config{K: 4096, UseLnTable: true}, rngA)
	hw := NewFastSketch(Config{K: 4096}, rngB)
	data := rand.New(rand.NewSource(96))
	for i := 0; i < 300000; i++ {
		key := data.Uint64()
		tab.Add(key)
		hw.Add(key)
	}
	a, err1 := tab.Estimate()
	b, err2 := hw.Estimate()
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	eta := 1 / math.Sqrt(4096.0)
	if math.Abs(a-b)/b > eta {
		t.Errorf("table path %v vs hw path %v differ beyond η=%v", a, b, eta)
	}
	if tab.SpaceBits() <= hw.SpaceBits() {
		t.Error("UseLnTable should account the table's bits")
	}
}

// TestFailureInjectionA3K forces the FAIL path (Figure 3's A > 3K) by
// building a sketch whose rough estimator is crippled (tiny K_RE makes
// it under-estimate with decent probability at small scale — but to be
// deterministic we instead drive counters directly with a hostile
// level pattern via a huge LogN and tiny K).
func TestFailureInjectionA3K(t *testing.T) {
	if testing.Short() {
		// The RoughKRE=2^16 reference estimator below evaluates a
		// degree-131071 polynomial per update — minutes of runtime.
		t.Skip("skipping FAIL-injection statistical suite in -short mode")
	}
	// With K=32 the FAIL bound is A > 96. Feed enough distinct keys
	// before the rough estimator can raise b... in practice the easiest
	// deterministic trigger is a sketch with RoughKRE large enough that
	// R stays 0 (threshold never met) while counters fill with deep
	// levels: use a short stream of many distinct keys against K=32.
	rng := rand.New(rand.NewSource(83))
	s := NewSketch(Config{K: 32, LogN: 62, RoughKRE: 1 << 16}, rng)
	for i := 0; i < (1 << 16); i++ {
		s.Add(rng.Uint64())
	}
	if !s.Failed() {
		t.Skip("FAIL not triggered at this seed; probabilistic path")
	}
	if _, err := s.Estimate(); err != ErrFailed {
		t.Errorf("failed sketch must return ErrFailed, got %v", err)
	}
}

func TestMergeEqualsUnionReference(t *testing.T) {
	mk := func() *Sketch {
		return NewSketch(Config{K: 4096}, rand.New(rand.NewSource(84)))
	}
	testMergeUnion(t, "reference",
		func() (F0Sketch, F0Sketch, F0Sketch) { return mk(), mk(), mk() },
		func(a, b F0Sketch) { a.(*Sketch).MergeFrom(b.(*Sketch)) })
}

func TestMergeEqualsUnionFast(t *testing.T) {
	mk := func() *FastSketch {
		return NewFastSketch(Config{K: 4096}, rand.New(rand.NewSource(85)))
	}
	testMergeUnion(t, "fast",
		func() (F0Sketch, F0Sketch, F0Sketch) { return mk(), mk(), mk() },
		func(a, b F0Sketch) { a.(*FastSketch).MergeFrom(b.(*FastSketch)) })
}

func testMergeUnion(t *testing.T, name string,
	mk3 func() (F0Sketch, F0Sketch, F0Sketch), merge func(a, b F0Sketch)) {
	t.Helper()
	a, b, whole := mk3()
	rng := rand.New(rand.NewSource(86))
	for i := 0; i < 60000; i++ {
		key := rng.Uint64()
		whole.Add(key)
		if i%2 == 0 {
			a.Add(key)
		} else {
			b.Add(key)
		}
	}
	// Overlap: both halves also share some keys.
	for i := 0; i < 10000; i++ {
		key := rng.Uint64()
		whole.Add(key)
		a.Add(key)
		b.Add(key)
	}
	merge(a, b)
	got, err1 := a.Estimate()
	want, err2 := whole.Estimate()
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: %v %v", name, err1, err2)
	}
	// Merged sketch must agree with the whole-stream sketch. The two
	// can differ in the offset b (their rough estimators saw different
	// prefixes), which re-rolls the subsampling noise — so we allow the
	// combined two-copy noise band rather than exact equality, and also
	// require both to be near the truth.
	const truth = 70000.0
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("%s: merged %v vs whole %v", name, got, want)
	}
	if math.Abs(got-truth)/truth > 0.3 {
		t.Errorf("%s: merged %v far from truth %v", name, got, truth)
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	a := NewSketch(Config{K: 1024}, rand.New(rand.NewSource(1)))
	b := NewSketch(Config{K: 2048}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.MergeFrom(b)
}

func TestRescalesHappen(t *testing.T) {
	// Over a long growing stream the offset b must advance (E6 sanity):
	// each rough-estimate doubling beyond K/32 shifts b.
	rng := rand.New(rand.NewSource(87))
	s := NewFastSketch(Config{K: 1024}, rng)
	for i := 0; i < 2_000_000; i++ {
		s.Add(rng.Uint64())
	}
	if s.Rescales() < 3 {
		t.Errorf("expected several rescales over 2M distinct, got %d", s.Rescales())
	}
	if s.B() == 0 {
		t.Error("offset b never advanced")
	}
	if s.Failed() {
		t.Error("sketch failed on a benign stream")
	}
	if s.Drains() > 2 {
		t.Errorf("too many synchronous drains on benign stream: %d", s.Drains())
	}
}

func TestFastMatchesReferenceOnB(t *testing.T) {
	// The two implementations follow the same est/b schedule when fed
	// the same rough estimates; check b lands in the same ballpark on
	// identically sized streams.
	rngA := rand.New(rand.NewSource(88))
	rngB := rand.New(rand.NewSource(88))
	ref := NewSketch(Config{K: 1024}, rngA)
	fast := NewFastSketch(Config{K: 1024}, rngB)
	data := rand.New(rand.NewSource(89))
	for i := 0; i < 500000; i++ {
		key := data.Uint64()
		ref.Add(key)
		fast.Add(key)
	}
	if d := ref.B() - fast.B(); d < -2 || d > 2 {
		t.Errorf("offset divergence: reference b=%d fast b=%d", ref.B(), fast.B())
	}
}

func TestAmplifiedMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	a := NewAmplified(5, rng, func(r *rand.Rand) F0Sketch {
		return NewFastSketch(Config{K: 1024}, r)
	})
	const f0 = 200000
	for i := 0; i < f0; i++ {
		a.Add(rng.Uint64())
	}
	got, err := a.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-f0) / f0; rel > 0.35 {
		t.Errorf("amplified estimate %v (rel %.3f)", got, rel)
	}
	if a.Copies() != 5 {
		t.Errorf("Copies()=%d", a.Copies())
	}
	if a.SpaceBits() <= 5*1024 {
		t.Error("SpaceBits should sum the copies")
	}
}

func TestAmplifiedBeatsSingleCopyTails(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Median-of-7 must shrink the tail: count trials with rel error
	// beyond 12ε′ for single vs amplified at the same K.
	const k = 1024
	const f0 = 100000
	band := 12 / math.Sqrt(float64(k))
	singleBad, ampBad := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(2000 + int64(trial)))
		single := NewFastSketch(Config{K: k}, rng)
		amp := NewAmplified(7, rng, func(r *rand.Rand) F0Sketch {
			return NewFastSketch(Config{K: k}, r)
		})
		data := rand.New(rand.NewSource(3000 + int64(trial)))
		for i := 0; i < f0; i++ {
			key := data.Uint64()
			single.Add(key)
			amp.Add(key)
		}
		if v, err := single.Estimate(); err != nil || math.Abs(v-f0)/f0 > band {
			singleBad++
		}
		if v, err := amp.Estimate(); err != nil || math.Abs(v-f0)/f0 > band {
			ampBad++
		}
	}
	if ampBad > singleBad {
		t.Errorf("amplified tails (%d) worse than single (%d)", ampBad, singleBad)
	}
	if ampBad > trials/4 {
		t.Errorf("amplified bad in %d/%d trials", ampBad, trials)
	}
}

func TestCopiesForDelta(t *testing.T) {
	if c := CopiesForDelta(0.5); c < 3 || c%2 == 0 {
		t.Errorf("CopiesForDelta(0.5)=%d", c)
	}
	if CopiesForDelta(0.001) <= CopiesForDelta(0.1) {
		t.Error("copies must grow as delta shrinks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("delta=0 should panic")
		}
	}()
	CopiesForDelta(0)
}

func TestStrictRescaleFailPath(t *testing.T) {
	// With StrictRescale and a deliberately unstable rough estimator
	// (tiny K_RE), mid-phase est jumps may trigger the paper's FAIL.
	// This is probabilistic; we only require that IF it fails, the
	// error surface is ErrFailed, and the flag agrees.
	rng := rand.New(rand.NewSource(91))
	s := NewFastSketch(Config{K: 8192, RoughKRE: 8, StrictRescale: true}, rng)
	for i := 0; i < 1_000_000 && !s.Failed(); i++ {
		s.Add(rng.Uint64())
	}
	if s.Failed() {
		if _, err := s.Estimate(); err == nil {
			t.Error("failed sketch returned an estimate")
		}
	}
}

func BenchmarkReferenceAdd(b *testing.B) {
	s := NewSketch(Config{K: 4096}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 2654435761)
	}
}

func BenchmarkFastAdd(b *testing.B) {
	s := NewFastSketch(Config{K: 4096}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 2654435761)
	}
}

func BenchmarkFastEstimate(b *testing.B) {
	s := NewFastSketch(Config{K: 4096}, rand.New(rand.NewSource(1)))
	for i := 0; i < 1<<20; i++ {
		s.Add(uint64(i) * 2654435761)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		v, _ = s.Estimate()
	}
	_ = v
}
