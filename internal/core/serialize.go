package core

import (
	"slices"

	"repro/internal/binenc"
	"repro/internal/bitutil"
)

// Sketch serialization: the dynamic state only. Hash functions are
// reconstructed from the seed by the caller (the public knw package
// serializes its settings — including the seed — alongside each
// copy's state), so payloads stay proportional to the counter state.

// AppendState serializes the reference sketch's dynamic state.
func (s *Sketch) AppendState(w *binenc.Writer) {
	w.Uvarint(uint64(s.cfg.K))
	cs := make([]uint64, len(s.c))
	for i, c := range s.c {
		cs[i] = uint64(int(c) + 1)
	}
	w.Uints(cs)
	w.Varint(int64(s.b))
	w.Varint(int64(s.est))
	w.Bool(s.failed)
	w.Uvarint(uint64(s.rescales))
	s.small.appendState(w)
	s.re.AppendState(w)
}

// RestoreState loads state produced by AppendState into a sketch built
// from the same Config and seed. Derived quantities (A, T) are
// recomputed from the counters.
func (s *Sketch) RestoreState(r *binenc.Reader) error {
	if k := r.Uvarint(); r.Err() == nil && int(k) != s.cfg.K {
		return binenc.ErrCorrupt
	}
	cs := r.Uints(s.cfg.K)
	b := r.Varint()
	est := r.Varint()
	failed := r.Bool()
	rescales := r.Uvarint()
	if err := s.small.restoreState(r, s.cfg.K); err != nil {
		return err
	}
	if err := s.re.RestoreState(r); err != nil {
		return err
	}
	if r.Err() != nil {
		return r.Err()
	}
	if len(cs) != s.cfg.K || b < 0 || est < 0 {
		return binenc.ErrCorrupt
	}
	s.a, s.tOcc = 0, 0
	for i, v := range cs {
		c := int(v) - 1
		if c > 127 {
			return binenc.ErrCorrupt
		}
		s.c[i] = int8(c)
		s.a += int(bitutil.CeilLog2(uint64(c + 2)))
		if c >= 0 {
			s.tOcc++
		}
	}
	s.b, s.est = int(b), int(est)
	s.failed = failed
	s.rescales = int(rescales)
	return nil
}

// AppendState serializes the fast sketch's dynamic state. Any
// in-progress deamortized copy phase is drained first so only the
// primary array needs encoding (an O(K) step — serialization is not a
// hot path).
func (s *FastSketch) AppendState(w *binenc.Writer) {
	if s.copyPos >= 0 {
		s.advanceCopy(s.cfg.K)
	}
	if s.resetPos < s.cfg.K {
		s.advanceReset(s.cfg.K)
	}
	w.Uvarint(uint64(s.cfg.K))
	pri := s.arr[s.cur]
	cs := make([]uint64, s.cfg.K)
	for i := range cs {
		cs[i] = pri.Read(i)
	}
	w.Uints(cs)
	w.Varint(int64(s.b))
	w.Varint(int64(s.est))
	w.Bool(s.failed)
	w.Uvarint(uint64(s.rescales))
	w.Uvarint(uint64(s.drains))
	s.small.appendState(w)
	s.re.AppendState(w)
}

// RestoreState loads state produced by AppendState into a sketch built
// from the same Config and seed.
func (s *FastSketch) RestoreState(r *binenc.Reader) error {
	if k := r.Uvarint(); r.Err() == nil && int(k) != s.cfg.K {
		return binenc.ErrCorrupt
	}
	cs := r.Uints(s.cfg.K)
	b := r.Varint()
	est := r.Varint()
	failed := r.Bool()
	rescales := r.Uvarint()
	drains := r.Uvarint()
	if err := s.small.restoreState(r, s.cfg.K); err != nil {
		return err
	}
	if err := s.re.RestoreState(r); err != nil {
		return err
	}
	if r.Err() != nil {
		return r.Err()
	}
	if len(cs) != s.cfg.K || b < 0 || est < 0 {
		return binenc.ErrCorrupt
	}
	pri := s.arr[s.cur]
	s.aPri, s.tPri = 0, 0
	for i, v := range cs {
		if v > 0 {
			pri.Write(i, v)
			s.tPri++
		} else if pri.Read(i) != 0 {
			pri.Write(i, 0)
		}
		s.aPri += int(bitutil.CeilLog2(v + 1))
	}
	s.b, s.est = int(b), int(est)
	s.failed = failed
	s.rescales = int(rescales)
	s.drains = int(drains)
	return nil
}

// appendState serializes the small-F0 companion. The exact-key set is
// written sorted so the encoding is canonical: equal states always
// marshal to equal bytes (map iteration order would otherwise leak
// into the payload).
func (s *smallF0) appendState(w *binenc.Writer) {
	keys := make([]uint64, 0, len(s.exact))
	for k := range s.exact {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	w.Uints(keys)
	w.Bool(s.overflow)
	w.Uints(s.bv.Words())
}

// restoreState loads the small-F0 companion.
func (s *smallF0) restoreState(r *binenc.Reader, k int) error {
	keys := r.Uints(ExactCap + 1)
	overflow := r.Bool()
	words := r.Uints((2*k + 63) / 64)
	if r.Err() != nil {
		return r.Err()
	}
	if len(words) != len(s.bv.Words()) {
		return binenc.ErrCorrupt
	}
	s.exact = make(map[uint64]struct{}, len(keys))
	for _, key := range keys {
		s.exact[key] = struct{}{}
	}
	s.overflow = overflow
	s.bv.Reset()
	for i := 0; i < s.bv.Len(); i++ {
		if words[i>>6]&(1<<(uint(i)&63)) != 0 {
			s.bv.Set(i)
		}
	}
	return nil
}
