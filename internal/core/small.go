package core

import (
	"math"

	"repro/internal/ballsbins"
	"repro/internal/bitutil"
)

// smallF0 is the Section 3.3 companion structure shared by both sketch
// implementations. It answers exactly while F0 < ExactCap and via a
// 2K-bit balls-and-bins array while F0 = O(K), and decides when the
// Figure 3 estimator takes over (Theorem 4's switch at F̃B ≥ K/16).
type smallF0 struct {
	exact    map[uint64]struct{}
	overflow bool
	bv       *bitutil.BitVector // K′ = 2K bits, indexed by h3's full range
}

func newSmallF0(k int) smallF0 {
	return smallF0{
		exact: make(map[uint64]struct{}, ExactCap+1),
		bv:    bitutil.NewBitVector(2 * k),
	}
}

// observe records the item. bit is h3(h2(i)) in [0, 2K) — the paper has
// h3 range over K′ = 2K here and reduces it mod K for the counter index.
func (s *smallF0) observe(key uint64, bit int) {
	s.bv.Set(bit)
	if s.overflow {
		return
	}
	if _, seen := s.exact[key]; seen {
		return
	}
	if len(s.exact) < ExactCap {
		s.exact[key] = struct{}{}
		return
	}
	// The (ExactCap+1)-th distinct item: the exact phase is over.
	s.overflow = true
}

// estimate returns (value, true) when the small-F0 machinery should
// answer — exactly (F0 < ExactCap) or via the bit array (F̃B < K/16) —
// and (0, false) when the Figure 3 estimator governs.
func (s *smallF0) estimate(k int) (float64, bool) {
	if !s.overflow {
		return float64(len(s.exact)), true
	}
	k2 := 2 * k
	tb := s.bv.Count()
	if tb == k2 {
		return 0, false // saturated: defer to the main estimator
	}
	fb := ballsbins.Invert(tb, k2)
	if fb < float64(k)/16 {
		return fb, true
	}
	return 0, false
}

// mergeFrom merges another small-F0 structure built with the same
// hashes (bit arrays OR; exact sets union with overflow propagation).
func (s *smallF0) mergeFrom(o *smallF0) {
	s.bv.Or(o.bv)
	if s.overflow || o.overflow {
		s.overflow = true
		return
	}
	for key := range o.exact {
		if _, seen := s.exact[key]; seen {
			continue
		}
		if len(s.exact) < ExactCap {
			s.exact[key] = struct{}{}
		} else {
			s.overflow = true
			return
		}
	}
}

// reset clears the structure for reuse (see FastSketch.Reset).
func (s *smallF0) reset() {
	clear(s.exact)
	s.overflow = false
	s.bv.Reset()
}

// spaceBits charges the bit array plus the ≤100 stored indices at
// log n bits each (Section 3.3: O(log n) space total, with the paper's
// constant 100).
func (s *smallF0) spaceBits(logN uint) int {
	return s.bv.SpaceBits() + ExactCap*int(logN)
}

// exp2 is a tiny helper for 2^b as float64.
func exp2(b int) float64 { return math.Exp2(float64(b)) }
