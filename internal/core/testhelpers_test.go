package core

import (
	"math/rand"

	"repro/internal/rough"
)

// newRoughForTest builds a fast-mode RoughEstimator with an explicit
// K_RE for the ablation sweeps.
func newRoughForTest(kre int, rng *rand.Rand) *rough.Estimator {
	return rough.New(rough.Config{LogN: 32, KRE: kre, Fast: true}, rng)
}
