package core

import (
	"errors"
	"math"

	"repro/internal/bitutil"
)

// ErrFailed is returned by Estimate when the sketch has output FAIL
// (Figure 3: the bit-packed counters would exceed 3K bits). Theorem 3
// bounds the probability of this event by 1/32 per sketch; Amplified
// absorbs failed copies into its median.
var ErrFailed = errors.New("core: sketch failed (packed counters exceeded 3K bits)")

// ErrSaturated is returned when every counter is occupied (T = K), so
// the balls-and-bins inversion is undefined. This only happens when the
// rough estimator has under-estimated F0 by a large factor — an event
// inside Theorem 1's o(1) failure probability.
var ErrSaturated = errors.New("core: sketch saturated (all counters occupied)")

// ExactCap is the number of distinct items tracked exactly before the
// sketch transitions to its estimators (Section 3.3: "The case
// F0 < 100 can be dealt with simply by keeping the first 100 distinct
// indices seen in the stream in memory").
const ExactCap = 100

// Config parameterizes a Sketch or FastSketch.
type Config struct {
	// LogN is log2 of the universe size; keys are treated as elements
	// of [2^LogN]. Defaults to 32. Must be in [4, 62].
	LogN uint

	// K is the number of counters (the paper's K = 1/ε²). It must be a
	// power of two ≥ 32 (Figure 3 divides K by 32 to set the
	// subsampling offset). Zero selects KForEpsilon(0.05).
	K int

	// RoughKRE overrides the RoughEstimator's K_RE; zero uses
	// rough.DefaultKRE. Tests use small values to exercise failure paths.
	RoughKRE int

	// StrictRescale, when true, reproduces the paper's Theorem 9
	// behaviour exactly: if the offset b needs to change again while a
	// deamortized copy phase is still running (possible only when the
	// rough estimate jumped by more than the 8x Theorem 1 allows), the
	// sketch FAILs. When false (the default), the sketch drains the
	// copy phase synchronously — an O(K) hiccup in a case the paper
	// assigns probability o(1) — and keeps going. Only FastSketch
	// consults this.
	StrictRescale bool

	// UseLnTable, when true, routes FastSketch reporting through the
	// Appendix A.2 lookup table (Lemma 7) as the paper's Theorem 9
	// prescribes for O(1) reporting on a word RAM without floating
	// point. The default uses the hardware log1p, which is O(1) on any
	// real machine and avoids the table's Θ(√K·log K)-bit footprint
	// (whose constants exceed the counters themselves at practical K —
	// see DESIGN.md §5 and experiment E11). Only FastSketch consults
	// this.
	UseLnTable bool
}

// KForEpsilon converts a target standard-error ε into the counter count
// K, applying the paper's "run with ε′ = ε/C" rule (Theorem 3 gives
// (1 ± O(ε′)) with the constant determined by the subsampling window
// E[B] ∈ [K/256, K/16]; experiment E3 measured the end-to-end RMS
// error at ≈ 8·K^{-1/2}, dominated by the binomial noise of
// subsampling ~√(64/K), so C = 9 delivers RMS ≤ ε with margin).
// The result is rounded up to a power of two and floored at 32.
func KForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		eps = 0.05
	}
	const c = 9.0
	k := c * c / (eps * eps)
	kk := int(bitutil.NextPow2(uint64(math.Ceil(k))))
	if kk < 32 {
		kk = 32
	}
	return kk
}

func (cfg *Config) normalize() {
	if cfg.LogN == 0 {
		cfg.LogN = 32
	}
	if cfg.LogN < 4 || cfg.LogN > 62 {
		panic("core: LogN must be in [4, 62]")
	}
	if cfg.K == 0 {
		cfg.K = KForEpsilon(0.05)
	}
	if cfg.K < 32 || !bitutil.IsPow2(uint64(cfg.K)) {
		panic("core: K must be a power of two >= 32")
	}
}
