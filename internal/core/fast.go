package core

import (
	"math"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
	"repro/internal/lntable"
	"repro/internal/rough"
	"repro/internal/vla"
)

// copyChunk is the number of counters migrated per stream update during
// a deamortized offset rescale — the paper's 3·256 (proof of
// Theorem 9: est can rise by at most 3 within K/256 updates when
// RoughEstimator is correct, so copying 3·256 counters per update
// finishes each phase in time).
const copyChunk = 3 * 256

// FastSketch is the Theorem 9 implementation of Figure 3, with O(1)
// worst-case update and reporting times:
//
//   - counters live in a variable-bit-length array (Theorem 8) as
//     v = C_j + 1, so an empty counter (−1) stores zero payload bits;
//   - h3 is an O(1)-evaluation tabulation family (Theorems 6–7
//     substitution; DESIGN.md §5);
//   - reporting uses the maintained occupancy T and the Appendix A.2
//     logarithm table (Lemma 7);
//   - when the offset b must change, a copy phase migrates copyChunk
//     counters per update from the primary array into a secondary one
//     at the new offset, while updates are applied to both and
//     estimates are answered from the primary (proof of Theorem 9).
//
// A FastSketch is not safe for concurrent use.
type FastSketch struct {
	cfg     Config
	keyMask uint64

	h1 *hashfn.TwoWise
	h2 *hashfn.TwoWise
	h3 *hashfn.Tabulation32 // [K³] → [2K], O(1) evaluation

	re    *rough.Estimator
	small smallF0
	ln    *lntable.Table // non-nil only when Config.UseLnTable
	lnK   float64        // ln(1 − 1/K), the estimator's fixed denominator

	arr  [2]*vla.Array // counter arrays; arr[cur] is primary
	cur  int
	aPri int // A of the primary (Figure 3's packed-bits accounting)
	tPri int // occupancy T of the primary
	b    int // primary's offset
	est  int

	// Copy-phase state (Theorem 9's primary/secondary scheme).
	copyPos int // next slot to migrate; −1 when no phase is active
	bPend   int // the offset the secondary is being built at
	aSec    int
	tSec    int

	// Lazy reset of the retired array after a swap.
	resetPos int

	failed bool

	// Statistics for experiment E6.
	rescales int // offset changes
	drains   int // synchronous drains (rough-estimate jumps mid-phase)
}

// NewFastSketch draws a fresh Theorem 9 sketch using randomness from rng.
func NewFastSketch(cfg Config, rng *rand.Rand) *FastSketch {
	cfg.normalize()
	k := cfg.K
	s := &FastSketch{
		cfg:     cfg,
		keyMask: bitutil.Mask(cfg.LogN),
		h1:      hashfn.NewTwoWise(rng, 1),
		h2:      hashfn.NewTwoWise(rng, uint64(k)*uint64(k)*uint64(k)),
		h3:      hashfn.NewTabulation32(rng, uint64(2*k)),
		re:      rough.New(rough.Config{LogN: cfg.LogN, KRE: cfg.RoughKRE, Fast: true}, rng),
		small:   newSmallF0(k),
		lnK:     math.Log1p(-1 / float64(k)),
		copyPos: -1,
	}
	if cfg.UseLnTable {
		s.ln = lntable.New(k)
	}
	s.arr[0] = vla.New(k)
	s.arr[1] = vla.New(k)
	s.resetPos = k // the off array starts clean
	return s
}

// K returns the counter count.
func (s *FastSketch) K() int { return s.cfg.K }

// Add processes stream item key in O(1) worst-case word operations.
func (s *FastSketch) Add(key uint64) {
	lvl := int(bitutil.LSB(s.h1.HashField(key)&s.keyMask, s.cfg.LogN))
	bit := int(s.h3.Hash(s.h2.Hash(key)))
	s.addHashed(key, lvl, bit)
}

// batchChunk is the number of keys whose hash values AddBatch
// precomputes per inner chunk. Small enough to stay in L1, large
// enough to amortize loop overhead and let the independent hash
// evaluations pipeline. It matches the rough estimator's chunk size so
// one chunk walk precomputes every hash the update path needs.
const batchChunk = rough.ChunkSize

// AddBatch processes the keys exactly as sequential Add calls would —
// the resulting state is identical update for update — but evaluates
// each hash family (the sketch's own h1/h2/h3 and the rough
// estimator's nine per-key evaluations) over the whole chunk in tight
// loops, so per-key call overhead and hash-to-hash data dependencies
// are amortized across the batch. Only the O(1) counter writes, phase
// advances, and rescale checks remain per key, preserving the exact
// scalar state machine.
func (s *FastSketch) AddBatch(keys []uint64) {
	var red, z [batchChunk]uint64
	var lvls, bits, cidx [batchChunk]int32
	var rsc rough.Scratch
	var cest [batchChunk]uint64
	// The first rough consultation of the batch always runs (the
	// estimate may already exceed 2^est after a merge or restore);
	// after that, consultations replay only at the recorded change
	// points — between them the estimate is provably unmoved, so the
	// skipped checks could not have fired.
	checked := false
	for len(keys) > 0 {
		n := len(keys)
		if n > batchChunk {
			n = batchChunk
		}
		chunk := keys[:n]
		keys = keys[n:]
		hashfn.ReduceChunk(chunk, red[:n])
		s.h1.HashFieldChunkReduced(red[:n], z[:n])
		for i, v := range z[:n] {
			lvls[i] = int32(bitutil.LSB(v&s.keyMask, s.cfg.LogN))
		}
		s.h2.HashChunkReduced(red[:n], z[:n])
		s.h3.HashChunk32(z[:n], bits[:n])
		s.re.PrecomputeReduced(red[:n], &rsc)
		// The rough estimator evolves independently of the main
		// counters, so its chunk can be applied up front; the per-key
		// consultations below replay against the recorded change
		// points, exactly as the scalar path would have seen them.
		r, m := s.re.ApplyChunk(&rsc, n, &cidx, &cest)
		p := 0
		if s.small.overflow {
			// Past the exact regime, observing a key is just an OR into
			// the bit array — fold the whole chunk in one pass.
			for _, b := range bits[:n] {
				s.small.bv.Set(int(b))
			}
			for i := range chunk {
				s.applyCounter(int(lvls[i]), int(bits[i]))
				if p < m && int(cidx[p]) == i {
					r = cest[p]
					p++
				} else if checked {
					continue
				}
				if r > 0 && r > uint64(1)<<uint(s.est) {
					s.onRoughChange(r)
				}
				checked = true
			}
		} else {
			for i, key := range chunk {
				s.applyHashed(key, int(lvls[i]), int(bits[i]))
				if p < m && int(cidx[p]) == i {
					r = cest[p]
					p++
				} else if checked {
					continue
				}
				if r > 0 && r > uint64(1)<<uint(s.est) {
					s.onRoughChange(r)
				}
				checked = true
			}
		}
	}
}

// addHashed is the post-hashing tail of Add: lvl is the subsampling
// level lsb(h1(key)) and bit is h3(h2(key)) ∈ [0, 2K).
func (s *FastSketch) addHashed(key uint64, lvl, bit int) {
	s.applyHashed(key, lvl, bit)
	s.re.Update(key)
	s.checkRough()
}

// checkRough is Figure 3's per-update "if R > 2^est" consultation.
func (s *FastSketch) checkRough() {
	if r := s.re.Estimate(); r > 0 && r > uint64(1)<<uint(s.est) {
		s.onRoughChange(r)
	}
}

// applyHashed applies the main-sketch half of one update — small-F0
// observation, counter write, and deamortized phase bookkeeping —
// shared by the scalar and batched paths.
func (s *FastSketch) applyHashed(key uint64, lvl, bit int) {
	s.small.observe(key, bit)
	s.applyCounter(lvl, bit)
}

// applyCounter is applyHashed minus the small-F0 observation (the
// batched path folds post-overflow observations in bulk).
func (s *FastSketch) applyCounter(lvl, bit int) {
	if x := lvl - s.b; x >= 0 {
		// A negative offset can never beat a counter (all are ≥ −1),
		// so the write — and the A re-check, since A is unchanged — is
		// skipped without touching the VLA. With a positive b this is
		// the (1 − 2^−b)-probability path.
		j := bit & (s.cfg.K - 1)
		s.writeMax(s.arr[s.cur], &s.aPri, &s.tPri, j, x)
		if s.aPri > 3*s.cfg.K {
			s.failed = true
		}
	}
	if s.copyPos >= 0 {
		// During a phase the secondary also receives the update, but
		// only for already-migrated slots: un-migrated slots will be
		// overwritten by the (update-inclusive) primary value anyway.
		if j := bit & (s.cfg.K - 1); j < s.copyPos {
			s.writeMax(s.arr[1-s.cur], &s.aSec, &s.tSec, j, lvl-s.bPend)
		}
		s.advanceCopy(copyChunk)
	} else if s.resetPos < s.cfg.K {
		s.advanceReset(copyChunk)
	}
}

// writeMax performs C_j ← max(C_j, x) on the given array (stored as
// C+1) while maintaining its A and T accumulators.
func (s *FastSketch) writeMax(a *vla.Array, accA, accT *int, j, x int) {
	if x < 0 {
		// Counters are ≥ −1 ≥ x: the max is a no-op, so the packed
		// read can be skipped. Once the offset b is positive this is
		// the common case (a key subsamples below b with probability
		// 1 − 2^−b), and it keeps the hot path off the VLA entirely.
		return
	}
	cur := int(a.Read(j)) - 1
	if x <= cur {
		return
	}
	*accA += int(bitutil.CeilLog2(uint64(x+2))) - int(bitutil.CeilLog2(uint64(cur+2)))
	if cur < 0 { // x > cur ≥ −1 implies x ≥ 0: the counter becomes occupied
		*accT++
	}
	a.Write(j, uint64(x+1))
}

// onRoughChange recomputes est and the target offset, starting (or, if
// the rough estimate jumped while a phase was still running, draining)
// a deamortized copy phase.
func (s *FastSketch) onRoughChange(r uint64) {
	s.est = int(bitutil.FloorLog2(r))
	bnew := s.est - (int(bitutil.FloorLog2(uint64(s.cfg.K))) - 5)
	if bnew < 0 {
		bnew = 0
	}
	if s.copyPos >= 0 {
		if bnew == s.bPend {
			return
		}
		// est moved again mid-phase: per the paper this means
		// RoughEstimator jumped by more than its 8x guarantee within
		// K/256 updates. Theorem 9's proof outputs FAIL; by default we
		// instead drain the phase synchronously (an O(K) hiccup with
		// probability o(1)) and start over.
		if s.cfg.StrictRescale {
			s.failed = true
			return
		}
		s.drains++
		s.advanceCopy(s.cfg.K)
	}
	if bnew == s.b {
		return
	}
	if s.resetPos < s.cfg.K {
		// The retired array is not yet clean (possible only when two
		// rescales land within ~K/256 updates of each other).
		s.drains++
		s.advanceReset(s.cfg.K)
	}
	s.rescales++
	s.bPend = bnew
	s.aSec, s.tSec = 0, 0
	s.copyPos = 0
	s.advanceCopy(copyChunk)
}

// advanceCopy migrates up to n counters from the primary to the
// secondary at the pending offset, swapping the arrays when done.
func (s *FastSketch) advanceCopy(n int) {
	pri, sec := s.arr[s.cur], s.arr[1-s.cur]
	end := s.copyPos + n
	if end > s.cfg.K {
		end = s.cfg.K
	}
	delta := s.b - s.bPend
	for ; s.copyPos < end; s.copyPos++ {
		nc := int(pri.Read(s.copyPos)) - 1
		if nc >= 0 {
			nc += delta
			if nc < -1 {
				nc = -1
			}
		}
		if nc >= 0 {
			sec.Write(s.copyPos, uint64(nc+1))
			s.tSec++
		} else if sec.Read(s.copyPos) != 0 {
			sec.Write(s.copyPos, 0)
		}
		s.aSec += int(bitutil.CeilLog2(uint64(nc + 2)))
	}
	if s.copyPos == s.cfg.K {
		// Phase complete: the secondary becomes primary.
		s.cur = 1 - s.cur
		s.aPri, s.tPri = s.aSec, s.tSec
		s.b = s.bPend
		s.copyPos = -1
		s.resetPos = 0 // retired array is now dirty; reset it lazily
		if s.aPri > 3*s.cfg.K {
			s.failed = true
		}
	}
}

// advanceReset lazily zeroes up to n slots of the retired array.
func (s *FastSketch) advanceReset(n int) {
	off := s.arr[1-s.cur]
	end := s.resetPos + n
	if end > s.cfg.K {
		end = s.cfg.K
	}
	for ; s.resetPos < end; s.resetPos++ {
		if off.Read(s.resetPos) != 0 {
			off.Write(s.resetPos, 0)
		}
	}
}

// Estimate returns F̃0 with the same contract as Sketch.Estimate, in
// O(1) worst-case time (maintained T, table-based logarithm).
func (s *FastSketch) Estimate() (float64, error) {
	if v, ok := s.small.estimate(s.cfg.K); ok {
		return v, nil
	}
	if s.failed {
		return 0, ErrFailed
	}
	k := s.cfg.K
	if s.tPri == k {
		return 0, ErrSaturated
	}
	num := math.Log1p(-float64(s.tPri) / float64(k))
	if s.ln != nil {
		num = s.ln.Ln1MinusCOverK(s.tPri)
	}
	return exp2(s.b) * num / s.lnK, nil
}

// Failed reports whether the FAIL event has occurred.
func (s *FastSketch) Failed() bool { return s.failed }

// Rescales returns how many offset changes have happened (E6).
func (s *FastSketch) Rescales() int { return s.rescales }

// Drains returns how many synchronous drains were forced by mid-phase
// rough-estimate jumps (0 in healthy runs; E6 failure injection).
func (s *FastSketch) Drains() int { return s.drains }

// B returns the current subsampling offset.
func (s *FastSketch) B() int { return s.b }

// Occupied returns the primary's occupancy T.
func (s *FastSketch) Occupied() int { return s.tPri }

// InPhase reports whether a deamortized copy phase is running.
func (s *FastSketch) InPhase() bool { return s.copyPos >= 0 }

// MergeFrom merges another FastSketch built from the same Config and
// rng seed. Any active copy phases are drained first (merging is not a
// hot-path operation).
func (s *FastSketch) MergeFrom(o *FastSketch) {
	if s.cfg.K != o.cfg.K || s.cfg.LogN != o.cfg.LogN {
		panic("core: merge of incompatible sketches")
	}
	if s.copyPos >= 0 {
		s.advanceCopy(s.cfg.K)
	}
	if o.copyPos >= 0 {
		o.advanceCopy(o.cfg.K)
	}
	if o.est > s.est {
		s.est = o.est
	}
	if o.b > s.b {
		s.shiftTo(o.b)
	}
	pri, opri := s.arr[s.cur], o.arr[o.cur]
	s.aPri, s.tPri = 0, 0
	for j := 0; j < s.cfg.K; j++ {
		cv := int(pri.Read(j)) - 1
		ov := int(opri.Read(j)) - 1
		if ov >= 0 {
			ov += o.b - s.b
			if ov < -1 {
				ov = -1
			}
		}
		if ov > cv {
			cv = ov
			pri.Write(j, uint64(cv+1))
		}
		s.aPri += int(bitutil.CeilLog2(uint64(cv + 2)))
		if cv >= 0 {
			s.tPri++
		}
	}
	if s.aPri > 3*s.cfg.K {
		s.failed = true
	}
	s.failed = s.failed || o.failed
	s.re.MergeFrom(o.re)
	s.small.mergeFrom(&o.small)
}

// shiftTo rebases the primary to offset bnew ≥ s.b (merge support).
func (s *FastSketch) shiftTo(bnew int) {
	if bnew == s.b {
		return
	}
	pri := s.arr[s.cur]
	delta := s.b - bnew
	for j := 0; j < s.cfg.K; j++ {
		cv := int(pri.Read(j)) - 1
		if cv < 0 {
			continue
		}
		cv += delta
		if cv < -1 {
			cv = -1
		}
		pri.Write(j, uint64(cv+1))
	}
	s.b = bnew
}

// Reset returns the sketch to its freshly constructed state without
// redrawing hash functions, so a scratch sketch can be pooled and
// reused across merge-and-estimate passes.
func (s *FastSketch) Reset() {
	s.arr[0].Reset()
	s.arr[1].Reset()
	s.cur = 0
	s.aPri, s.tPri = 0, 0
	s.b, s.est = 0, 0
	s.copyPos = -1
	s.bPend, s.aSec, s.tSec = 0, 0, 0
	s.resetPos = s.cfg.K
	s.failed = false
	s.rescales, s.drains = 0, 0
	s.re.Reset()
	s.small.reset()
}

// SpaceBits reports the accounted footprint: both counter arrays (the
// secondary exists throughout, as in the paper's primary/secondary
// scheme), hash seeds, the rough estimator, the small-F0 structure,
// the logarithm table, and O(1) words of bookkeeping.
func (s *FastSketch) SpaceBits() int {
	total := s.arr[0].SpaceBits() + s.arr[1].SpaceBits()
	total += s.h1.SeedBits() + s.h2.SeedBits() + s.h3.SeedBits()
	total += s.re.SpaceBits()
	total += s.small.spaceBits(s.cfg.LogN)
	if s.ln != nil {
		total += s.ln.SpaceBits()
	}
	total += 10 * 64 // scalar bookkeeping
	return total
}
