// Package core implements the paper's primary contribution: the
// space-optimal F0 (distinct elements) sketch of Section 3, in two
// interchangeable implementations plus a median-amplification wrapper.
//
//   - Sketch is the reference implementation: Figure 3 exactly as
//     printed, with the Section 3.3 small-F0 companion (exact set of
//     the first 100 distinct items plus a 2K-bit balls-and-bins
//     array), plain int8 counters, the Carter–Wegman polynomial h3,
//     and an O(K) rescan when the subsampling offset b changes. It is
//     the implementation the correctness proofs (Theorems 2–4) talk
//     about; its update time is O(1) amortized.
//
//   - FastSketch is the Theorem 9 implementation with O(1) *worst-case*
//     update and reporting time: counters live in a Blandford–Blelloch
//     variable-bit-length array (Theorem 8), h3 is an O(1)-evaluation
//     tabulation family (Theorem 6/7 substitution, DESIGN.md §5),
//     reporting uses the maintained occupancy count T and the
//     Appendix A.2 logarithm table (Lemma 7), and offset rescales are
//     deamortized through a primary/secondary copy phase that moves
//     3·256 counters per update, exactly as in the proof of Theorem 9.
//
// Both variants expose the same behaviour:
//
//   - Add(key) processes a stream item (O(1) time).
//   - Estimate() returns F̃0 with the guarantees of Theorem 3/4: for
//     F0 below 100 the answer is exact; for F0 up to Θ(K) it comes
//     from the 2K-bit array; beyond that from the Figure 3 estimator
//     2^b · ln(1−T/K)/ln(1−1/K). A single sketch succeeds with
//     constant probability; Amplified runs O(log 1/δ) copies and
//     returns the median, as the paper prescribes.
//   - The FAIL event of Figure 3 (packed counters exceeding 3K bits,
//     probability ≤ 1/32 by Theorem 3) is surfaced as ErrFailed.
//
// Space is O(ε⁻² + log n) bits (Theorem 2); SpaceBits reports the
// exact accounted footprint used by the Figure 1 experiments.
package core
