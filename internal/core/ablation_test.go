package core

// Ablation benchmarks for the design choices Theorem 9 stacks together
// (DESIGN.md §7): each isolates one substitution so its cost/benefit
// is visible independently of the others.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hashfn"
	"repro/internal/lntable"
	"repro/internal/vla"
)

// --- Ablation 1: VLA-packed counters vs plain int8 array ------------
//
// The VLA buys Theorem 2's O(K)-bit counter storage (vs K·8 here, or
// K·loglog n in general) at the cost of bit-twiddling on access.

func BenchmarkAblationCountersVLA(b *testing.B) {
	const k = 1 << 14
	a := vla.New(k)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		j := int(rng.Uint64() & (k - 1))
		x := uint64(rng.Intn(12))
		if cur := a.Read(j); x > cur {
			a.Write(j, x)
		}
	}
	b.ReportMetric(float64(a.SpaceBits())/k, "bits/counter")
}

func BenchmarkAblationCountersInt8(b *testing.B) {
	const k = 1 << 14
	a := make([]int8, k)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		j := int(rng.Uint64() & (k - 1))
		x := int8(rng.Intn(12))
		if x > a[j] {
			a[j] = x
		}
	}
	b.ReportMetric(8, "bits/counter")
}

// TestAblationVLASpace quantifies the packing with Figure 3's offset
// distribution (geometric, mostly empty or tiny). Finding (recorded in
// EXPERIMENTS.md §E4): our VLA lands at ≈ 8 bits/counter — its 4-bit
// length codes plus word-granular payload match a fixed
// ⌈log2(logn+2)⌉-bit array at n = 2³², so Theorem 8's O(n + Σ len)
// bound is honored but its *benefit over fixed width* is asymptotic
// (it matters when counter values can be ω(1) bits, i.e. very large
// log n, or when the FAIL bound's Σ⌈log(C_j+2)⌉ ≤ 3K is nearly tight).
// The test pins the measured constant so regressions are visible.
func TestAblationVLASpace(t *testing.T) {
	const k = 1 << 14
	a := vla.New(k)
	rng := rand.New(rand.NewSource(2))
	// Figure 3 steady state: ~40% occupancy, offsets geometric in [0, 12).
	for j := 0; j < k; j++ {
		if rng.Intn(5) < 2 {
			lvl := 0
			for rng.Intn(2) == 0 && lvl < 11 {
				lvl++
			}
			a.Write(j, uint64(lvl+1)) // stored as C+1
		}
	}
	perCounter := float64(a.SpaceBits()) / k
	if perCounter > 9 {
		t.Errorf("VLA packing regressed: %.2f bits/counter, want <= 9", perCounter)
	}
	// The structure must respect Theorem 8's O(n + Σ len) form: payload
	// bits alone stay near the FAIL-bound accounting (≤ 3K plus granule
	// rounding), far below n·wordsize.
	if a.PayloadBits() > 4*k {
		t.Errorf("payload %d bits exceeds the 3K accounting envelope", a.PayloadBits())
	}
	t.Logf("VLA: %.2f bits/counter total, %d payload bits (K=%d)", perCounter, a.PayloadBits(), k)
}

// --- Ablation 2: h3 families — tabulation vs k-wise polynomial ------
//
// Theorem 6/7's point: O(1) hashing instead of O(k) Horner evaluation.
// The polynomial's k here is the Figure 3 prescription for K = 2^14.

func BenchmarkAblationH3Tabulation32(b *testing.B) {
	h := hashfn.NewTabulation32(rand.New(rand.NewSource(1)), 1<<15)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += h.Hash(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = s
	b.ReportMetric(float64(h.SeedBits()), "seed-bits")
}

func BenchmarkAblationH3Polynomial(b *testing.B) {
	k := hashfn.KForEps(1<<14, 1/math.Sqrt(1<<14))
	h := hashfn.NewKWise(rand.New(rand.NewSource(1)), k, 1<<15)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += h.Hash(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = s
	b.ReportMetric(float64(h.SeedBits()), "seed-bits")
}

// --- Ablation 3: reporting — Lemma 7 table vs hardware log1p --------

func BenchmarkAblationReportLnTable(b *testing.B) {
	tab := lntable.New(1 << 14)
	lnK := math.Log1p(-1.0 / (1 << 14))
	var v float64
	for i := 0; i < b.N; i++ {
		v = tab.Ln1MinusCOverK(i%(4*(1<<14)/5)+1) / lnK
	}
	_ = v
	b.ReportMetric(float64(tab.SpaceBits()), "table-bits")
}

func BenchmarkAblationReportLog1p(b *testing.B) {
	const k = float64(1 << 14)
	lnK := math.Log1p(-1 / k)
	var v float64
	for i := 0; i < b.N; i++ {
		v = math.Log1p(-float64(i%13106+1)/k) / lnK
	}
	_ = v
	b.ReportMetric(0, "table-bits")
}

// --- Ablation 4: rescale strategy — deamortized vs synchronous ------
//
// Runs the identical stream through a FastSketch (copy phases) and a
// reference Sketch (inline Θ(K) rescans) and reports how much total
// work the rescales contributed. Complements BenchmarkWorstCaseUpdate
// (which measures the latency *distribution*).

func BenchmarkAblationRescaleDeamortized(b *testing.B) {
	s := NewFastSketch(Config{K: 1 << 14}, rand.New(rand.NewSource(3)))
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ReportMetric(float64(s.Rescales()), "rescales")
	b.ReportMetric(float64(s.Drains()), "drains")
}

func BenchmarkAblationRescaleInline(b *testing.B) {
	s := NewSketch(Config{K: 1 << 14}, rand.New(rand.NewSource(3)))
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ReportMetric(float64(s.Rescales()), "rescales")
}

// --- Ablation 5: RoughEstimator quality knob K_RE -------------------
//
// TestAblationKREQuality measures the containment rate of the
// Theorem 1 event at the paper's asymptotic K_RE vs the library
// default, quantifying the DESIGN.md §5(3) resizing.
func TestAblationKREQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	rate := func(kre int) float64 {
		const trials = 30
		ok := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(9000 + int64(trial)))
			re := newRoughForTest(kre, rng)
			const n = 1 << 14
			good := true
			for i := 1; i <= n; i++ {
				re.Update(rng.Uint64())
				if i >= 256 && i%128 == 0 {
					est := re.Estimate()
					if est < uint64(i) || est > 8*uint64(i) {
						good = false
						break
					}
				}
			}
			if good {
				ok++
			}
		}
		return float64(ok) / trials
	}
	paper := rate(8)
	library := rate(64)
	if library < paper {
		t.Errorf("K_RE=64 containment %.2f should not be below K_RE=8's %.2f", library, paper)
	}
	if library < 0.9 {
		t.Errorf("K_RE=64 all-times containment %.2f below 0.9", library)
	}
	t.Logf("all-times containment: K_RE=8 %.2f, K_RE=64 %.2f", paper, library)
}
