package lntable

import (
	"math"
	"testing"
)

func TestZeroAndExactEdge(t *testing.T) {
	tab := New(1024)
	if got := tab.Ln1MinusCOverK(0); got != 0 {
		t.Errorf("c=0: got %v want 0", got)
	}
}

// TestAccuracyEveryC is experiment E11: Lemma 7 promises relative error
// at most η = 1/√K for every integer c ∈ [1, 4K/5]. We check every c
// exhaustively for several K.
func TestAccuracyEveryC(t *testing.T) {
	for _, k := range []int{64, 256, 1024, 4096, 16384} {
		tab := New(k)
		eta := 1 / math.Sqrt(float64(k))
		worst := 0.0
		for c := 1; c <= tab.MaxC(); c++ {
			exact := math.Log(1 - float64(c)/float64(k))
			got := tab.Ln1MinusCOverK(c)
			rel := math.Abs(got-exact) / math.Abs(exact)
			if rel > worst {
				worst = rel
			}
		}
		if worst > eta {
			t.Errorf("K=%d: worst relative error %.3g exceeds η=%.3g", k, worst, eta)
		}
	}
}

func TestFallbackBeyondRange(t *testing.T) {
	tab := New(100)
	// Beyond 4K/5 the table falls back to the exact expression.
	for _, c := range []int{81, 90, 99} {
		want := math.Log(1 - float64(c)/100)
		if got := tab.Ln1MinusCOverK(c); math.Abs(got-want) > 1e-12 {
			t.Errorf("c=%d: got %v want %v", c, got, want)
		}
	}
	if got := tab.Ln1MinusCOverK(100); !math.IsInf(got, -1) {
		t.Errorf("c=K should be -Inf, got %v", got)
	}
}

func TestNegativeCPanics(t *testing.T) {
	tab := New(100)
	defer func() {
		if recover() == nil {
			t.Fatal("negative c should panic")
		}
	}()
	tab.Ln1MinusCOverK(-1)
}

func TestTinyKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K<5 should panic")
		}
	}()
	New(4)
}

func TestSpaceGrowsLikeSqrtK(t *testing.T) {
	// Lemma 7: O(η⁻¹ log 1/η) = Õ(√K) — table size must grow far
	// slower than K. Quadrupling K should roughly double the size.
	s1 := New(1 << 10).SpaceBits()
	s2 := New(1 << 12).SpaceBits()
	s3 := New(1 << 14).SpaceBits()
	r12 := float64(s2) / float64(s1)
	r23 := float64(s3) / float64(s2)
	for _, r := range []float64{r12, r23} {
		if r < 1.5 || r > 3.2 {
			t.Errorf("space ratio per 4x K: %v, want about 2 (sqrt growth)", r)
		}
	}
	// The constant factors (η' = η/15, bucketed log₂ table) mean the
	// crossover versus a naive 64-bit-per-c table happens at larger K;
	// at K = 2^20 the compact table must win clearly.
	big := New(1 << 20).SpaceBits()
	naive := 64 * (4 * (1 << 20) / 5)
	if big >= naive/2 {
		t.Errorf("K=2^20: compact table %d bits vs naive %d bits; expected < half", big, naive)
	}
}

func TestMonotoneInC(t *testing.T) {
	// ln(1 - c/K) is decreasing in c; the table is built from geometric
	// points of the same function so its answers must be non-increasing.
	tab := New(2048)
	prev := tab.Ln1MinusCOverK(0)
	for c := 1; c <= tab.MaxC(); c++ {
		got := tab.Ln1MinusCOverK(c)
		if got > prev+1e-15 {
			t.Fatalf("not monotone at c=%d: %v > %v", c, got, prev)
		}
		prev = got
	}
}

func BenchmarkLookup(b *testing.B) {
	tab := New(1 << 14)
	var s float64
	for i := 0; i < b.N; i++ {
		s += tab.Ln1MinusCOverK(i%tab.MaxC() + 1)
	}
	_ = s
}

func BenchmarkMathLogBaseline(b *testing.B) {
	k := float64(1 << 14)
	var s float64
	for i := 0; i < b.N; i++ {
		s += math.Log(1 - float64(i%13106+1)/k)
	}
	_ = s
}
