// Package lntable implements the compact natural-logarithm lookup table
// of Appendix A.2 of the paper (Lemma 7): a structure of
// O(η⁻¹·log(1/η)) bits, η = 1/√K, from which ln(1 − c/K) can be
// computed in O(1) time with relative error at most η for every integer
// c ∈ [0, 4K/5].
//
// The F0 estimator (Figure 3, step 7) reports
// 2^b · ln(1 − T/K)/ln(1 − 1/K); a direct math-library logarithm would
// be fine in practice, but the paper's O(1) reporting-time claim
// (Theorem 9) is explicitly routed through this table, so we build it.
//
// Construction, exactly as in the paper's proof: set η' = η/15 and
// discretize [1, 4K/5] geometrically by powers of (1+η'), precomputing
// ln(1 − ρ/K) at each discretization point ρ into table A. A query for
// c is answered by the entry at index ⌈log_{1+η'}(c)⌉, located in O(1)
// time by writing c = d·2^k (k = msb(c), computable in O(1)), reading
// an additive approximation of log₂(d) from a second evenly-spaced
// table B over [1, 2), and combining: log_{1+η'}(c) = (k + log₂ d)/
// log₂(1+η').
package lntable

import (
	"math"

	"repro/internal/bitutil"
)

// Table answers ln(1 − c/K) queries in O(1) with relative error ≤ 1/√K.
type Table struct {
	k       int       // the K of the sketch
	maxC    int       // 4K/5, the proven query range
	etaP    float64   // η' = η/15
	invLogB float64   // 1 / log₂(1+η')
	logA    []float64 // A: ln(1 − ρ_j/K) at geometric points ρ_j = (1+η')^j
	logD    []float64 // B: log₂(d) for d ∈ [1,2) evenly discretized
	logDInv float64   // buckets per unit for indexing B
}

// New builds the lookup table for a given K (number of balls-and-bins
// counters; K ≥ 5 so that the range [1, 4K/5] is nonempty).
func New(k int) *Table {
	if k < 5 {
		panic("lntable: K must be at least 5")
	}
	eta := 1 / math.Sqrt(float64(k))
	etaP := eta / 15
	maxC := 4 * k / 5
	t := &Table{
		k:       k,
		maxC:    maxC,
		etaP:    etaP,
		invLogB: 1 / math.Log2(1+etaP),
	}
	// Table A: geometric discretization of [1, maxC].
	numA := int(math.Ceil(math.Log(float64(maxC))/math.Log(1+etaP))) + 2
	t.logA = make([]float64, numA)
	rho := 1.0
	for j := range t.logA {
		r := rho
		if r > float64(maxC) {
			r = float64(maxC)
		}
		t.logA[j] = math.Log(1 - r/float64(k))
		rho *= 1 + etaP
	}
	// Table B: log₂ over [1,2), evenly discretized into O(1/η') buckets.
	// Bucket width η'/4 makes the additive index error well below 1/3
	// (the proof's tolerance) after multiplying by 1/log₂(1+η') — the
	// derivative of log₂ on [1,2) is in [1/(2 ln 2), 1/ln 2].
	numB := int(math.Ceil(4/etaP)) + 1
	t.logD = make([]float64, numB)
	for i := range t.logD {
		d := 1 + (float64(i)+0.5)/float64(numB)
		t.logD[i] = math.Log2(d)
	}
	t.logDInv = float64(numB)
	return t
}

// K returns the table's K parameter.
func (t *Table) K() int { return t.k }

// MaxC returns the largest c the table answers from its precomputed
// entries (4K/5, the range Lemma 7 proves).
func (t *Table) MaxC() int { return t.maxC }

// Ln1MinusCOverK returns an approximation of ln(1 − c/K) with relative
// error at most 1/√K, in O(1) time, for 0 ≤ c ≤ 4K/5. For c = 0 it
// returns exactly 0. Queries beyond 4K/5 (the estimator only issues
// them when the sketch is nearly saturated, outside the paper's
// operating regime) fall back to the math library and remain O(1);
// c ≥ K yields −Inf just like the exact expression.
func (t *Table) Ln1MinusCOverK(c int) float64 {
	switch {
	case c == 0:
		return 0
	case c < 0:
		panic("lntable: negative c")
	case c > t.maxC:
		return math.Log(1 - float64(c)/float64(t.k))
	}
	// Index: ⌈log_{1+η'}(c)⌉ via c = d·2^k.
	msb := bitutil.MSB(uint64(c))
	d := float64(c) / float64(uint64(1)<<msb) // ∈ [1, 2)
	bIdx := int((d - 1) * t.logDInv)
	if bIdx >= len(t.logD) {
		bIdx = len(t.logD) - 1
	}
	idx := int(math.Round((float64(msb) + t.logD[bIdx]) * t.invLogB))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(t.logA) {
		idx = len(t.logA) - 1
	}
	return t.logA[idx]
}

// SpaceBits returns the table footprint: both tables at 64 bits per
// entry — Θ(√K · log K) bits, matching Lemma 7's O(η⁻¹ log(1/η))
// up to the word size of the stored values.
func (t *Table) SpaceBits() int {
	return 64 * (len(t.logA) + len(t.logD))
}
