package prime

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMersenne61IsPrime(t *testing.T) {
	if !IsPrime(Mersenne61) {
		t.Fatal("2^61-1 must be prime")
	}
}

func TestAddSubM61(t *testing.T) {
	cases := []struct{ a, b, sum uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{Mersenne61 - 1, 1, 0},
		{Mersenne61 - 1, Mersenne61 - 1, Mersenne61 - 2},
	}
	for _, c := range cases {
		if got := AddM61(c.a, c.b); got != c.sum {
			t.Errorf("AddM61(%d,%d)=%d want %d", c.a, c.b, got, c.sum)
		}
		if got := SubM61(c.sum, c.b); got != c.a {
			t.Errorf("SubM61(%d,%d)=%d want %d", c.sum, c.b, got, c.a)
		}
	}
}

func TestMulM61AgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := new(big.Int).SetUint64(Mersenne61)
	for i := 0; i < 5000; i++ {
		a := rng.Uint64() % Mersenne61
		b := rng.Uint64() % Mersenne61
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got := MulM61(a, b); got != want.Uint64() {
			t.Fatalf("MulM61(%d,%d)=%d want %v", a, b, got, want)
		}
	}
}

func TestReduceM61(t *testing.T) {
	f := func(x uint64) bool {
		return ReduceM61(x) == x%Mersenne61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	if ReduceM61(Mersenne61) != 0 {
		t.Error("ReduceM61(p) != 0")
	}
	if ReduceM61(^uint64(0)) != (^uint64(0))%Mersenne61 {
		t.Error("ReduceM61(max) wrong")
	}
}

func TestPowM61(t *testing.T) {
	// Fermat: a^(p-1) = 1 mod p for a != 0.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		a := rng.Uint64()%(Mersenne61-1) + 1
		if PowM61(a, Mersenne61-1) != 1 {
			t.Fatalf("Fermat fails for a=%d", a)
		}
	}
	if PowM61(2, 61) != 1 {
		t.Error("2^61 mod 2^61-1 should be 1")
	}
	if PowM61(5, 0) != 1 {
		t.Error("a^0 should be 1")
	}
}

func TestInvM61(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a := rng.Uint64()%(Mersenne61-1) + 1
		if MulM61(a, InvM61(a)) != 1 {
			t.Fatalf("InvM61(%d) wrong", a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("InvM61(0) should panic")
		}
	}()
	InvM61(0)
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		4: false, 6: false, 9: false, 15: false, 21: false, 25: false,
		0: false, 1: false,
		97: true, 91: false, 561: false /* Carmichael */, 1105: false,
		7919: true, 104729: true,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 20000
	sieve := make([]bool, limit)
	for i := 2; i < limit; i++ {
		sieve[i] = true
	}
	for i := 2; i*i < limit; i++ {
		if sieve[i] {
			for j := i * i; j < limit; j += i {
				sieve[j] = false
			}
		}
	}
	for n := uint64(0); n < limit; n++ {
		if IsPrime(n) != sieve[n] {
			t.Fatalf("IsPrime(%d) disagrees with sieve", n)
		}
	}
}

func TestIsPrimeLarge(t *testing.T) {
	// Known large primes and composites near them.
	known := map[uint64]bool{
		1<<61 - 1:            true,
		1<<61 + 1:            false, // divisible by 3? 2^61+1 = 3 * ...; composite either way
		18446744073709551557: true,  // largest prime < 2^64
		18446744073709551556: false,
		4294967291:           true, // largest prime < 2^32
		4294967295:           false,
	}
	for n, want := range known {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {90, 97}, {7918, 7919},
	}
	for _, c := range cases {
		if got := NextPrime(c.n); got != c.want {
			t.Errorf("NextPrime(%d)=%d want %d", c.n, got, c.want)
		}
	}
}

func TestRandPrimeIn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		lo := uint64(1000 + i*37)
		hi := lo + 5000
		p := RandPrimeIn(rng, lo, hi)
		if p < lo || p >= hi || !IsPrime(p) {
			t.Fatalf("RandPrimeIn(%d,%d) returned %d", lo, hi, p)
		}
	}
	// Lemma 6 magnitudes: D = 100·K·log(mM).
	D := uint64(100 * 4096 * 64)
	p := RandPrimeIn(rng, D, 2*D)
	if p < D || p >= 2*D || !IsPrime(p) {
		t.Fatalf("Lemma-6-scale RandPrimeIn returned %d", p)
	}
}

func TestRandPrimeInTinyInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if p := RandPrimeIn(rng, 13, 14); p != 13 {
		t.Errorf("only prime in [13,14) is 13, got %d", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty interval should panic")
		}
	}()
	RandPrimeIn(rng, 24, 25) // no prime in [24,25)
}

func TestFieldOps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range []uint64{2, 3, 101, 65537, 4294967291, Mersenne61} {
		f := NewField(p)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % p
			b := rng.Uint64() % p
			if got := f.Add(a, b); got != (a+b)%p && !(a+b < a) {
				t.Fatalf("p=%d Add(%d,%d)=%d", p, a, b, got)
			}
			if f.Sub(f.Add(a, b), b) != a {
				t.Fatalf("p=%d Sub/Add roundtrip fails", p)
			}
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, new(big.Int).SetUint64(p))
			if got := f.Mul(a, b); got != want.Uint64() {
				t.Fatalf("p=%d Mul(%d,%d)=%d want %v", p, a, b, got, want)
			}
		}
	}
}

func TestFieldReduceInt(t *testing.T) {
	f := NewField(101)
	cases := []struct {
		v    int64
		want uint64
	}{
		{0, 0}, {1, 1}, {-1, 100}, {101, 0}, {-101, 0}, {-102, 100},
		{202, 0}, {-9223372036854775808, uint64(((-9223372036854775808 % 101) + 101) % 101)},
	}
	for _, c := range cases {
		if got := f.ReduceInt(c.v); got != c.want {
			t.Errorf("ReduceInt(%d)=%d want %d", c.v, got, c.want)
		}
	}
}

func TestFieldRandUniform(t *testing.T) {
	// Chi-square-ish check on a small field.
	f := NewField(17)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 17)
	const trials = 170000
	for i := 0; i < trials; i++ {
		counts[f.Rand(rng)]++
	}
	want := float64(trials) / 17
	for v, c := range counts {
		if float64(c) < 0.93*want || float64(c) > 1.07*want {
			t.Errorf("field element %d drawn %d times, want about %v", v, c, want)
		}
	}
}

func TestNewFieldRejectsComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewField(100) should panic")
		}
	}()
	NewField(100)
}

func BenchmarkMulM61(b *testing.B) {
	x, y := uint64(123456789012345), uint64(987654321098765)
	var s uint64
	for i := 0; i < b.N; i++ {
		s = MulM61(s^x, y)
	}
	_ = s
}

func BenchmarkIsPrime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		IsPrime(18446744073709551557)
	}
}
