// Package prime provides the finite-field arithmetic the KNW algorithms
// are built on: fast arithmetic modulo the Mersenne prime 2^61−1 (the
// field underlying our Carter–Wegman polynomial hash families), a
// deterministic Miller–Rabin primality test for 64-bit integers, and
// random-prime sampling.
//
// Random primes appear in two places in the paper:
//
//   - Lemma 6 (L0 sketch): a prime p is drawn from [D, D^3] with
//     D = 100·K·log(mM) so that every nonzero frequency |x_i| ≤ mM,
//     having at most log(mM) prime factors, stays nonzero mod p with
//     probability 1 − O(1/K²).
//   - Lemma 8 (exact small-L0): a prime p = Θ(log(mM)·loglog(mM)) plays
//     the same role for the constant-size structure.
package prime

import (
	"math/bits"
	"math/rand"
)

// Mersenne61 is the Mersenne prime 2^61 − 1, the modulus of the field
// used by all polynomial hash families in this repository. Products of
// two residues fit in 122 bits, so Horner evaluation needs only one
// 64×64→128 multiply and a cheap Mersenne reduction per coefficient.
const Mersenne61 uint64 = 1<<61 - 1

// AddM61 returns (a + b) mod 2^61−1 for a, b < 2^61−1.
func AddM61(a, b uint64) uint64 {
	s := a + b // < 2^62, no overflow
	if s >= Mersenne61 {
		s -= Mersenne61
	}
	return s
}

// SubM61 returns (a − b) mod 2^61−1 for a, b < 2^61−1.
func SubM61(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + Mersenne61 - b
}

// MulM61 returns (a · b) mod 2^61−1 for a, b < 2^61−1, using the
// classic Mersenne folding: if a·b = hi·2^64 + lo, then
// a·b ≡ (a·b mod 2^61) + (a·b div 2^61) (mod 2^61−1).
func MulM61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a·b = hi·2^64 + lo = (hi·8 + lo>>61)·2^61 + (lo & mask61)
	sum := (lo & Mersenne61) + (hi<<3 | lo>>61)
	if sum >= Mersenne61 {
		sum -= Mersenne61
	}
	return sum
}

// ReduceM61 reduces an arbitrary uint64 modulo 2^61−1.
func ReduceM61(x uint64) uint64 {
	x = (x & Mersenne61) + (x >> 61)
	if x >= Mersenne61 {
		x -= Mersenne61
	}
	return x
}

// PowM61 returns a^e mod 2^61−1 by square-and-multiply.
func PowM61(a, e uint64) uint64 {
	a = ReduceM61(a)
	result := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			result = MulM61(result, a)
		}
		a = MulM61(a, a)
		e >>= 1
	}
	return result
}

// InvM61 returns the multiplicative inverse of a modulo 2^61−1 for
// a ≢ 0, via Fermat's little theorem (p is prime, so a^(p−2) = a^{-1}).
func InvM61(a uint64) uint64 {
	if ReduceM61(a) == 0 {
		panic("prime: inverse of zero")
	}
	return PowM61(a, Mersenne61-2)
}

// mulMod returns (a · b) mod m for any m > 0, using 128-bit
// intermediate arithmetic. Used by Miller–Rabin and by the L0
// counters, whose modulus is a freshly sampled prime rather than 2^61−1.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a%m, b%m)
	// bits.Div64 requires hi < m, which holds since both operands < m.
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// powMod returns a^e mod m.
func powMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	a %= m
	result := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, a, m)
		}
		a = mulMod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinWitnesses is a witness set that makes Miller–Rabin
// deterministic for all 64-bit integers (Sinclair/Jaeschke bound).
var millerRabinWitnesses = [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for all uint64.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n%2 == 0:
		return false
	}
	// Write n−1 = d · 2^s with d odd.
	d, s := n-1, 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	for _, a := range millerRabinWitnesses {
		if a%n == 0 {
			continue
		}
		x := powMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for r := 1; r < s; r++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n. It panics if no prime
// exists below 2^64 (unreachable for the magnitudes used here).
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; ; n += 2 {
		if IsPrime(n) {
			return n
		}
		if n > n+2 {
			panic("prime: NextPrime overflow")
		}
	}
}

// RandPrimeIn returns a uniformly-ish random prime in [lo, hi), sampled
// by rejection: draw a random odd candidate and Miller–Rabin test it.
// By the prime number theorem the expected number of draws is
// O(log hi); we cap attempts defensively and fall back to a linear
// scan, so the function always terminates with a prime when one exists
// in the interval. It panics if [lo, hi) contains no prime.
//
// Lemma 6 draws p from [D, D^3]; Lemma 8 from Θ(log mM · loglog mM).
// Callers pass the interval appropriate to their space budget.
func RandPrimeIn(rng *rand.Rand, lo, hi uint64) uint64 {
	if hi <= lo {
		panic("prime: empty interval")
	}
	if hi <= 3 {
		if lo <= 2 {
			return 2
		}
		panic("prime: no prime in interval")
	}
	span := hi - lo
	for attempt := 0; attempt < 64*64; attempt++ {
		c := lo + uint64(rng.Int63n(int64(min64(span, 1<<62))))
		if c < 3 {
			c = 3
		}
		c |= 1 // odd
		if c >= hi {
			continue
		}
		if IsPrime(c) {
			return c
		}
	}
	// Fallback: deterministic scan (only reachable for tiny intervals).
	for c := lo; c < hi; c++ {
		if IsPrime(c) {
			return c
		}
	}
	panic("prime: no prime in interval")
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Field is arithmetic modulo an arbitrary prime p < 2^63, used for the
// L0 counters B_{i,j} of Lemma 6, which maintain dot products of the
// frequency vector with a random vector over F_p.
type Field struct {
	P uint64
}

// NewField returns a Field with modulus p. It panics if p is not prime
// (all call sites obtain p from RandPrimeIn or NextPrime, so a failure
// here indicates a programming error, not bad input).
func NewField(p uint64) Field {
	if !IsPrime(p) {
		panic("prime: NewField modulus is not prime")
	}
	return Field{P: p}
}

// Add returns (a+b) mod p for a, b < p.
func (f Field) Add(a, b uint64) uint64 {
	s := a + b
	if s >= f.P || s < a { // s < a detects wraparound when p > 2^63
		s -= f.P
	}
	return s
}

// Sub returns (a−b) mod p for a, b < p.
func (f Field) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + (f.P - b)
}

// Mul returns (a·b) mod p.
func (f Field) Mul(a, b uint64) uint64 { return mulMod(a, b, f.P) }

// Reduce maps an arbitrary uint64 into [0, p).
func (f Field) Reduce(x uint64) uint64 { return x % f.P }

// ReduceInt maps a signed update value v (possibly negative, as in the
// turnstile model's (i, v) updates with v ∈ {−M..M}) into [0, p).
func (f Field) ReduceInt(v int64) uint64 {
	m := v % int64(f.P)
	if m < 0 {
		m += int64(f.P)
	}
	return uint64(m)
}

// Rand returns a uniformly random field element.
func (f Field) Rand(rng *rand.Rand) uint64 {
	// Rejection sampling over the smallest power-of-two range >= p
	// keeps the distribution exactly uniform.
	bitsNeeded := 64 - bits.LeadingZeros64(f.P-1)
	mask := uint64(1)<<uint(bitsNeeded) - 1
	for {
		if x := rng.Uint64() & mask; x < f.P {
			return x
		}
	}
}
