package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("knw_test_total", "a test counter")
	g := r.NewGauge("knw_test_gauge", "a test gauge")
	c.Add(41)
	c.Inc()
	g.Set(2.5)
	g.Add(-0.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP knw_test_total a test counter\n",
		"# TYPE knw_test_total counter\n",
		"knw_test_total 42\n",
		"# TYPE knw_test_gauge gauge\n",
		"knw_test_gauge 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 42 {
		t.Errorf("counter value = %d, want 42", c.Value())
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("knw_requests_total", "requests", "route", "code")
	v.With("/v1/ingest", "200").Add(3)
	v.With("/v1/ingest", "400").Inc()
	v.With("/v1/estimate", "200").Inc()
	// Same labels resolve to the same series.
	v.With("/v1/ingest", "200").Inc()

	out := render(t, r)
	for _, want := range []string{
		`knw_requests_total{route="/v1/ingest",code="200"} 4`,
		`knw_requests_total{route="/v1/ingest",code="400"} 1`,
		`knw_requests_total{route="/v1/estimate",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("knw_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`knw_lat_seconds_bucket{le="0.01"} 1`,
		`knw_lat_seconds_bucket{le="0.1"} 3`,
		`knw_lat_seconds_bucket{le="1"} 4`,
		`knw_lat_seconds_bucket{le="+Inf"} 5`,
		`knw_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.NewGaugeFunc("knw_age_seconds", "age", func() float64 { return v })
	if !strings.Contains(render(t, r), "knw_age_seconds 7\n") {
		t.Error("gauge func value missing")
	}
	v = 8
	if !strings.Contains(render(t, r), "knw_age_seconds 8\n") {
		t.Error("gauge func should be read at scrape time")
	}
}

// TestNilRegistrySafe: a nil registry hands out nil instruments whose
// methods all no-op — uninstrumented components need no branches.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.NewCounter("a", "")
	g := r.NewGauge("b", "")
	h := r.NewHistogram("c", "", DefBuckets)
	cv := r.NewCounterVec("d", "", "x")
	hv := r.NewHistogramVec("e", "", DefBuckets, "x")
	r.NewGaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	g.Set(1)
	h.Observe(1)
	cv.With("y").Inc()
	hv.With("y").Observe(1)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read zero")
	}
}

// TestExpositionDeterministic: families and series render in sorted
// order regardless of registration/creation order.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("zz_total", "", "k")
	r.NewCounter("aa_total", "")
	v.With("b").Inc()
	v.With("a").Inc()
	out := render(t, r)
	if !strings.Contains(out, "# TYPE aa_total counter\naa_total 0\n# TYPE zz_total counter\n"+
		`zz_total{k="a"} 1`+"\n"+`zz_total{k="b"} 1`+"\n") {
		t.Errorf("exposition not deterministic:\n%s", out)
	}
	if out != render(t, r) {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "k")
	v.With("a\"b\\c\nd").Inc()
	if want := `esc_total{k="a\"b\\c\nd"} 1`; !strings.Contains(render(t, r), want) {
		t.Errorf("escaped label missing %q:\n%s", want, render(t, r))
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines; run under -race this is the data-race gate, and the
// totals must still be exact.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", DefBuckets)
	v := r.NewCounterVec("v_total", "", "i")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := strconv.Itoa(w % 3)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				v.With(lbl).Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 10; i++ {
		render(t, r)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	sum := uint64(0)
	for i := 0; i < 3; i++ {
		sum += v.With(strconv.Itoa(i)).Value()
	}
	if sum != workers*per {
		t.Errorf("vec total = %d, want %d", sum, workers*per)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ExponentialBuckets = %v, want %v", got, want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	r.NewCounter("dup_total", "")
}
