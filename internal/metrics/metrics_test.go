package metrics

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("knw_test_total", "a test counter")
	g := r.NewGauge("knw_test_gauge", "a test gauge")
	c.Add(41)
	c.Inc()
	g.Set(2.5)
	g.Add(-0.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP knw_test_total a test counter\n",
		"# TYPE knw_test_total counter\n",
		"knw_test_total 42\n",
		"# TYPE knw_test_gauge gauge\n",
		"knw_test_gauge 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 42 {
		t.Errorf("counter value = %d, want 42", c.Value())
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("knw_requests_total", "requests", "route", "code")
	v.With("/v1/ingest", "200").Add(3)
	v.With("/v1/ingest", "400").Inc()
	v.With("/v1/estimate", "200").Inc()
	// Same labels resolve to the same series.
	v.With("/v1/ingest", "200").Inc()

	out := render(t, r)
	for _, want := range []string{
		`knw_requests_total{route="/v1/ingest",code="200"} 4`,
		`knw_requests_total{route="/v1/ingest",code="400"} 1`,
		`knw_requests_total{route="/v1/estimate",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("knw_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`knw_lat_seconds_bucket{le="0.01"} 1`,
		`knw_lat_seconds_bucket{le="0.1"} 3`,
		`knw_lat_seconds_bucket{le="1"} 4`,
		`knw_lat_seconds_bucket{le="+Inf"} 5`,
		`knw_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.NewGaugeFunc("knw_age_seconds", "age", func() float64 { return v })
	if !strings.Contains(render(t, r), "knw_age_seconds 7\n") {
		t.Error("gauge func value missing")
	}
	v = 8
	if !strings.Contains(render(t, r), "knw_age_seconds 8\n") {
		t.Error("gauge func should be read at scrape time")
	}
}

// TestNilRegistrySafe: a nil registry hands out nil instruments whose
// methods all no-op — uninstrumented components need no branches.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.NewCounter("a", "")
	g := r.NewGauge("b", "")
	h := r.NewHistogram("c", "", DefBuckets)
	cv := r.NewCounterVec("d", "", "x")
	hv := r.NewHistogramVec("e", "", DefBuckets, "x")
	r.NewGaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	g.Set(1)
	h.Observe(1)
	cv.With("y").Inc()
	hv.With("y").Observe(1)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read zero")
	}
}

// TestExpositionDeterministic: families and series render in sorted
// order regardless of registration/creation order.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("zz_total", "", "k")
	r.NewCounter("aa_total", "")
	v.With("b").Inc()
	v.With("a").Inc()
	out := render(t, r)
	if !strings.Contains(out, "# TYPE aa_total counter\naa_total 0\n# TYPE zz_total counter\n"+
		`zz_total{k="a"} 1`+"\n"+`zz_total{k="b"} 1`+"\n") {
		t.Errorf("exposition not deterministic:\n%s", out)
	}
	if out != render(t, r) {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "k")
	v.With("a\"b\\c\nd").Inc()
	if want := `esc_total{k="a\"b\\c\nd"} 1`; !strings.Contains(render(t, r), want) {
		t.Errorf("escaped label missing %q:\n%s", want, render(t, r))
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines; run under -race this is the data-race gate, and the
// totals must still be exact.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", DefBuckets)
	v := r.NewCounterVec("v_total", "", "i")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := strconv.Itoa(w % 3)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				v.With(lbl).Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 10; i++ {
		render(t, r)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	sum := uint64(0)
	for i := 0; i < 3; i++ {
		sum += v.With(strconv.Itoa(i)).Value()
	}
	if sum != workers*per {
		t.Errorf("vec total = %d, want %d", sum, workers*per)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ExponentialBuckets = %v, want %v", got, want)
	}
}

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("knw_info", "build info", "version", "go")
	v.With("v1", "go1.23").Set(1)
	v.With("v2", "go1.24").Set(1)
	// Same labels resolve to the same series.
	v.With("v1", "go1.23").Set(3)
	out := render(t, r)
	for _, want := range []string{
		"# TYPE knw_info gauge\n",
		`knw_info{version="v1",go="go1.23"} 3`,
		`knw_info{version="v2",go="go1.24"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFuncVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeFuncVec("knw_peer_age_seconds", "per-peer age", "peer")
	a := 1.0
	v.With(func() float64 { return a }, "http://a:1")
	v.With(func() float64 { return 2 }, "http://b:2")
	out := render(t, r)
	for _, want := range []string{
		`knw_peer_age_seconds{peer="http://a:1"} 1`,
		`knw_peer_age_seconds{peer="http://b:2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Callbacks are read at scrape time, and re-With replaces in place
	// without duplicating the series.
	a = 5
	v.With(func() float64 { return 7 }, "http://b:2")
	out = render(t, r)
	if !strings.Contains(out, `knw_peer_age_seconds{peer="http://a:1"} 5`) {
		t.Errorf("callback not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, `knw_peer_age_seconds{peer="http://b:2"} 7`) {
		t.Errorf("re-With should replace the callback:\n%s", out)
	}
	if n := strings.Count(out, `peer="http://b:2"`); n != 1 {
		t.Errorf("re-With duplicated the series %d times:\n%s", n, out)
	}
}

func TestGaugeFuncVecLabelArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong label count should panic")
		}
	}()
	r := NewRegistry()
	v := r.NewGaugeFuncVec("knw_arity", "", "a", "b")
	v.With(func() float64 { return 0 }, "only-one")
}

// TestGaugeFuncPanicFailsScrape: a panicking scrape-time callback must
// surface as a scrape error (WriteText) and an HTTP 500 (Handler) with
// no partial exposition — never crash the daemon or ship a truncated
// body Prometheus would half-parse.
func TestGaugeFuncPanicFailsScrape(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("aa_ok_total", "renders before the broken family")
	r.NewGaugeFunc("bb_broken", "", func() float64 { panic("boom") })
	var b strings.Builder
	err := r.WriteText(&b)
	if err == nil || !strings.Contains(err.Error(), "bb_broken") {
		t.Fatalf("WriteText error = %v, want panic surfaced with family name", err)
	}
	if b.Len() != 0 {
		t.Errorf("WriteText wrote %d bytes before failing; scrape must be all-or-nothing:\n%s", b.Len(), b.String())
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("Handler status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "bb_broken") {
		t.Errorf("500 body should name the broken family: %q", rec.Body.String())
	}

	// A panicking labeled callback fails the same way.
	r2 := NewRegistry()
	v := r2.NewGaugeFuncVec("cc_vec", "", "peer")
	v.With(func() float64 { return 1 }, "ok")
	v.With(func() float64 { panic("vec boom") }, "bad")
	if err := r2.WriteText(&strings.Builder{}); err == nil {
		t.Error("WriteText should fail when a vec callback panics")
	}
}

// TestHistogramUnsortedBounds: bounds are sorted at construction, so
// the exposition's le= buckets ascend with +Inf last and cumulative
// counts monotone — regardless of the order the caller listed them.
func TestHistogramUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("knw_rev_seconds", "", []float64{1, 0.01, 0.1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	lines := []string{
		`knw_rev_seconds_bucket{le="0.01"} 1`,
		`knw_rev_seconds_bucket{le="0.1"} 2`,
		`knw_rev_seconds_bucket{le="1"} 3`,
		`knw_rev_seconds_bucket{le="+Inf"} 4`,
	}
	pos := -1
	for _, want := range lines {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
		if i < pos {
			t.Fatalf("bucket %q out of order:\n%s", want, out)
		}
		pos = i
	}
}

func TestNilGaugeVecsSafe(t *testing.T) {
	var r *Registry
	gv := r.NewGaugeVec("x", "", "k")
	fv := r.NewGaugeFuncVec("y", "", "k")
	gv.With("a").Set(1)
	fv.With(func() float64 { return 1 }, "a")
	if gv.With("a").Value() != 0 {
		t.Error("nil gauge vec must read zero")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	r.NewCounter("dup_total", "")
}
