// Package metrics is a zero-dependency instrumentation registry for
// knwd: counters, gauges, and histograms with Prometheus text
// exposition (format 0.0.4), small enough to keep the module
// dependency-free and fast enough to sit on the ingest hot path.
//
// Design points:
//
//   - All mutation is lock-free (sync/atomic); a counter increment is
//     one atomic add, a histogram observation one add per of three
//     words. Only series creation (Vec.With on a new label set) and
//     exposition take locks.
//   - Every method is nil-receiver safe: a component whose registry is
//     nil instruments itself with nil handles and pays a single
//     predictable branch per operation instead of scattering nil
//     checks through call sites.
//   - Exposition is deterministic — families sorted by name, series by
//     label values — so tests can diff scrapes and scrape parsers stay
//     simple.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets with an exact
// sum, the Prometheus histogram model: quantiles are derived at query
// time from the bucket counts.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bucket index by linear scan: bound lists are short (≤ ~20) and a
	// scan over a contiguous slice beats binary search at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets are the default latency buckets (seconds), Prometheus's
// conventional spread: 1ms request handling through 10s outliers.
var DefBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the last — byte-size and duration spreads.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// --- labeled families ----------------------------------------------

// CounterVec is a family of Counters keyed by label values.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on
// first use). The number of values must match the family's label
// names.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.seriesFor(values).(*Counter)
}

// GaugeVec is a family of Gauges keyed by label values.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values (created on first
// use).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.seriesFor(values).(*Gauge)
}

// HistogramVec is a family of Histograms keyed by label values.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.seriesFor(values).(*Histogram)
}

// gaugeFn is a labeled scrape-time gauge callback (a GaugeFuncVec
// series value).
type gaugeFn func() float64

// GaugeFuncVec is a family of scrape-time gauge callbacks keyed by
// label values — per-peer ages and lags without updater goroutines.
type GaugeFuncVec struct{ fam *family }

// With installs fn as the series for the given label values, replacing
// any previous callback registered for the same values.
func (v *GaugeFuncVec) With(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	f := v.fam
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := f.seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		f.order = append(f.order, key)
	}
	f.series[key] = gaugeFn(fn)
}

// --- registry -------------------------------------------------------

// family is one exposition block: a metric name with its help, type,
// label schema, and live series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu     sync.Mutex
	series map[string]any // label-values key → *Counter / *Gauge / *Histogram
	order  []string       // insertion-keyed; sorted at exposition

	fn     func() float64 // GaugeFunc callback (labels unused)
	mk     func() any     // vec series constructor
	bounds []float64      // histogram bounds (for vec constructor docs)
	single any            // the one series of an unlabeled metric
}

func (f *family) seriesKey(values []string) string {
	return strings.Join(values, "\x00")
}

func (f *family) seriesFor(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := f.seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := f.mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry. A nil *Registry is
// safe: every New* constructor returns a nil handle whose methods
// no-op.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(f *family) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic("metrics: duplicate registration of " + f.name)
	}
	r.fams[f.name] = f
	return f
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", single: c})
	return c
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", single: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape
// time — clock-derived values (ages, uptimes) without an updater
// goroutine.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// NewHistogram registers an unlabeled histogram with the given upper
// bounds (+Inf implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", single: h})
	return h
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	f := r.register(&family{
		name: name, help: help, typ: "counter", labels: labels,
		series: make(map[string]any),
		mk:     func() any { return &Counter{} },
	})
	return &CounterVec{fam: f}
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	f := r.register(&family{
		name: name, help: help, typ: "gauge", labels: labels,
		series: make(map[string]any),
		mk:     func() any { return &Gauge{} },
	})
	return &GaugeVec{fam: f}
}

// NewGaugeFuncVec registers a family of scrape-time gauge callbacks
// with the given label names; install series with GaugeFuncVec.With.
func (r *Registry) NewGaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	if r == nil {
		return nil
	}
	f := r.register(&family{
		name: name, help: help, typ: "gauge", labels: labels,
		series: make(map[string]any),
	})
	return &GaugeFuncVec{fam: f}
}

// NewHistogramVec registers a histogram family with the given bounds
// and label names.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	bcopy := append([]float64(nil), bounds...)
	f := r.register(&family{
		name: name, help: help, typ: "histogram", labels: labels,
		series: make(map[string]any),
		bounds: bcopy,
		mk:     func() any { return newHistogram(bcopy) },
	})
	return &HistogramVec{fam: f}
}

// --- exposition -----------------------------------------------------

// WriteText renders every family in Prometheus text exposition format
// 0.0.4, families sorted by name and series by label values. A
// GaugeFunc callback that panics surfaces here as an error — nothing
// is written to w in that case, so the scrape fails cleanly instead of
// shipping a truncated exposition (or crashing the daemon).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if err := f.writeText(&b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry as
// text/plain; version=0.0.4 — mount it at GET /metrics. A scrape that
// fails (a panicking GaugeFunc) answers 500 with the error.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			http.Error(w, "scrape failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, b.String())
	})
}

func (f *family) writeText(b *strings.Builder) error {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	switch {
	case f.fn != nil:
		v, err := safeCall(f.name, f.fn)
		if err != nil {
			return err
		}
		writeSample(b, f.name, "", v)
	case f.single != nil:
		return writeSeries(b, f.name, "", f.single)
	default:
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			if err := writeSeries(b, f.name, f.labelPairs(k), series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// safeCall evaluates a scrape-time callback, converting a panic into a
// scrape error instead of letting it unwind through /metrics.
func safeCall(name string, fn func() float64) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("metrics: gauge func %s panicked: %v", name, r)
		}
	}()
	return fn(), nil
}

// labelPairs renders `name="v1",name2="v2"` for a series key.
func (f *family) labelPairs(key string) string {
	values := strings.Split(key, "\x00")
	var b strings.Builder
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func writeSeries(b *strings.Builder, name, labels string, s any) error {
	switch s := s.(type) {
	case *Counter:
		writeSampleUint(b, name, labels, s.Value())
	case *Gauge:
		writeSample(b, name, labels, s.Value())
	case gaugeFn:
		v, err := safeCall(name, s)
		if err != nil {
			return err
		}
		writeSample(b, name, labels, v)
	case *Histogram:
		cum := uint64(0)
		for i, bound := range s.bounds {
			cum += s.counts[i].Load()
			writeSampleUint(b, name+"_bucket", joinLabels(labels, `le="`+formatFloat(bound)+`"`), cum)
		}
		cum += s.counts[len(s.bounds)].Load()
		writeSampleUint(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), cum)
		writeSample(b, name+"_sum", labels, s.Sum())
		writeSampleUint(b, name+"_count", labels, s.Count())
	}
	return nil
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeSampleUint(b *strings.Builder, name, labels string, v uint64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(v, 10))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
